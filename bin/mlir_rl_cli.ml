(* mlir-rl: command-line driver for the RL environment, the baseline
   auto-scheduler and the comparators.

   Try:
     dune exec bin/mlir_rl_cli.exe -- show matmul:512x512x512
     dune exec bin/mlir_rl_cli.exe -- schedule matmul:512x512x512 "P(64,64,0) T(8,64,64) S(1) V"
     dune exec bin/mlir_rl_cli.exe -- autoschedule conv2d:56x56x64,k3,f128,s1
     dune exec bin/mlir_rl_cli.exe -- train --iterations 20 --hidden 64
     dune exec bin/mlir_rl_cli.exe -- compare maxpool:112x112x64,k2,s2 *)

open Cmdliner

let op_of_spec spec =
  match Op_spec.parse spec with
  | Ok op -> op
  | Error e ->
      Format.eprintf "bad op spec %S: %s@.examples:@." spec e;
      List.iter (Format.eprintf "  %s@.") Op_spec.examples;
      exit 2

let spec_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"OP"
        ~doc:"Operation spec, e.g. matmul:1024x1024x1024 or conv2d:56x56x64,k3,f128,s1")

(* Uniform --jobs validation, shared by every command that takes the
   flag (train / infer / autoschedule / serve): reject below 1 with one
   message, before any other work. The default is 1 everywhere —
   parallelism is always opt-in. *)
let check_jobs jobs =
  if jobs < 1 then begin
    Format.eprintf "--jobs must be >= 1 (got %d)@." jobs;
    exit 2
  end

(* Verifier / differential-sanitizer counters, printed to stderr (the
   determinism smokes diff stdout) at the end of commands that apply
   transformations. Silent unless a check layer is on. *)
let report_check_stats () =
  if Verifier.enabled () then begin
    let v = Verifier.stats () in
    Format.eprintf "verifier: %d checks, %d violations@." v.Verifier.checks
      v.Verifier.violations
  end;
  if Sanitizer.enabled () then begin
    let s = Sanitizer.stats () in
    Format.eprintf "sanitizer: %d differential runs, %d skips, %d violations@."
      s.Sanitizer.runs s.Sanitizer.skips s.Sanitizer.violations
  end

(* --- show --- *)

let show_cmd =
  let run spec =
    let op = op_of_spec spec in
    Format.printf "%a@.@." Linalg.pp op;
    Format.printf "%s@." (Ir_printer.to_string (Lower.to_loop_nest op))
  in
  Cmd.v (Cmd.info "show" ~doc:"Print an operation and its canonical loop nest")
    Term.(const run $ spec_arg)

(* --- schedule --- *)

let schedule_cmd =
  let run spec sched_str =
    let op = op_of_spec spec in
    let sched =
      match Schedule.of_string sched_str with
      | Ok s -> s
      | Error e ->
          Format.eprintf "bad schedule %S: %s@." sched_str e;
          exit 2
    in
    match Sched_state.apply_all op sched with
    | Error e ->
        Format.eprintf "schedule rejected: %s@." e;
        exit 1
    | Ok st ->
        Format.printf "%s@.@." (Ir_printer.to_string st.Sched_state.nest);
        let ev = Evaluator.create () in
        let base = Evaluator.base_seconds ev op in
        let speedup = Evaluator.speedup ev st in
        Format.printf "base time : %.6f s@." base;
        Format.printf "time      : %.6f s@." (base /. speedup);
        Format.printf "speedup   : %.2fx@." speedup
  in
  let sched_arg =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"SCHEDULE" ~doc:"Schedule, e.g. \"P(64,64,0) T(8,64,64) S(1) V\"")
  in
  Cmd.v
    (Cmd.info "schedule"
       ~doc:"Apply a schedule to an operation; print the nest and estimated speedup")
    Term.(const run $ spec_arg $ sched_arg)

(* --- features --- *)

let features_cmd =
  let run spec =
    let op = op_of_spec spec in
    let cfg = Env_config.default in
    let st = Sched_state.init op in
    let obs = Observation.extract cfg st in
    Format.printf "observation length: %d (Table 1: N + L*D*(N+1) + D*(N+1) + 6 + N*3*tau)@."
      (Array.length obs);
    let info = Observation.loop_info cfg st in
    Format.printf "loop info: [%s]@."
      (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.3f") info)));
    Array.iteri
      (fun i o ->
        Format.printf "access matrix of input %d (%s):@." i o.Linalg.name;
        let m = Affine.to_matrix o.Linalg.map in
        Array.iter
          (fun row ->
            Format.printf "  [%s]@."
              (String.concat " " (Array.to_list (Array.map string_of_int row))))
          m)
      op.Linalg.inputs;
    Format.printf "math op counts (add sub mul div exp log): [%s]@."
      (String.concat "; "
         (Array.to_list (Array.map string_of_int (Linalg.math_op_counts op))))
  in
  Cmd.v
    (Cmd.info "features" ~doc:"Print the observation extracted from an operation")
    Term.(const run $ spec_arg)

(* --- autoschedule --- *)

let autoschedule_cmd =
  let run spec budget surrogate rerank_k jobs =
    check_jobs jobs;
    let op = op_of_spec spec in
    let ev = Evaluator.create () in
    let config =
      { Auto_scheduler.default_config with Auto_scheduler.max_schedules = budget }
    in
    (* The parallelism banner goes to stderr: stdout must stay
       byte-identical across --jobs values (the CI smoke diffs it). *)
    if jobs > 1 then
      Format.eprintf
        "parallel search: %d worker domains (results identical to --jobs 1)@."
        jobs;
    let r =
      match surrogate with
      | None -> Auto_scheduler.search ~config ~jobs ev op
      | Some path -> (
          (* Staged mode: the checkpointed surrogate ranks the candidate
             set and only the top rerank_k get the exact cost model. *)
          match
            Surrogate.Ranker.of_checkpoint ~machine:(Evaluator.machine ev)
              ~path ()
          with
          | Error e ->
              Format.eprintf "surrogate checkpoint rejected: %s@." e;
              exit 2
          | Ok ranker ->
              Surrogate.Ranker.attach ranker ev;
              Surrogate.Counters.incr_searches ();
              let r =
                Auto_scheduler.search_staged ~config
                  ~ranker:(Surrogate.Ranker.schedule_scorer ranker op)
                  ~rerank_k ~jobs ev op
              in
              Surrogate.Counters.add_reranked r.Auto_scheduler.explored;
              r)
    in
    Format.printf "explored : %d schedules@." r.Auto_scheduler.explored;
    Format.printf "best     : %s@." (Schedule.to_string r.Auto_scheduler.best_schedule);
    Format.printf "speedup  : %.2fx@." r.Auto_scheduler.best_speedup;
    let base = Evaluator.base_seconds ev op in
    Format.printf "time     : %.6f s (base %.6f s)@."
      (base /. r.Auto_scheduler.best_speedup)
      base;
    (* Cache counters go to stderr: under --jobs > 1 the hit/miss split
       across the shared sharded caches is scheduling-dependent (the
       cached values are pure, so the search result is byte-identical),
       and stdout must stay diffable across --jobs values. *)
    Format.eprintf "caches   : %s@."
      (Evaluator.render_cache_stats (Evaluator.cache_stats ev));
    report_check_stats ()
  in
  let budget_arg =
    Arg.(value & opt int 3000 & info [ "budget" ] ~doc:"Exploration budget")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker domains for parallel candidate evaluation (default 1). \
             The search result is bit-identical for any value (see \
             docs/parallelism.md)")
  in
  let surrogate_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "surrogate" ] ~docv:"CKPT"
          ~doc:
            "Surrogate checkpoint (see $(b,surrogate train)); enables staged \
             re-ranking. Without it the exact search runs, byte-identical to \
             previous releases.")
  in
  let rerank_arg =
    Arg.(
      value
      & opt int Auto_scheduler.default_rerank_k
      & info [ "rerank-k" ]
          ~doc:"Candidates handed from the surrogate to the exact model")
  in
  Cmd.v
    (Cmd.info "autoschedule"
       ~doc:"Run the baseline exhaustive auto-scheduler on an operation")
    Term.(const run $ spec_arg $ budget_arg $ surrogate_arg $ rerank_arg $ jobs_arg)

(* --- compare --- *)

let compare_cmd =
  let run spec budget =
    let op = op_of_spec spec in
    let ev = Evaluator.create () in
    let base = Evaluator.base_seconds ev op in
    let config =
      { Auto_scheduler.default_config with Auto_scheduler.max_schedules = budget }
    in
    let auto = Auto_scheduler.search ~config ev op in
    let expert_sched, expert_speedup = Tf_baseline.expert_schedule ev op in
    let tf = Tf_baseline.tf_seconds ev op in
    let tf_jit = Tf_baseline.tf_jit_seconds ev op in
    Format.printf "%-18s %14s %10s@." "method" "time (s)" "speedup";
    let row name t =
      Format.printf "%-18s %14.6f %9.1fx@." name t (base /. t)
    in
    row "base (no opt)" base;
    row "auto-scheduler" (base /. auto.Auto_scheduler.best_speedup);
    row "expert menu" (base /. expert_speedup);
    row "tensorflow" tf;
    row "tensorflow-jit" tf_jit;
    Format.printf "@.auto-scheduler schedule: %s@."
      (Schedule.to_string auto.Auto_scheduler.best_schedule);
    Format.printf "expert schedule        : %s@." (Schedule.to_string expert_sched)
  in
  let budget_arg =
    Arg.(value & opt int 3000 & info [ "budget" ] ~doc:"Auto-scheduler budget")
  in
  Cmd.v
    (Cmd.info "compare" ~doc:"Compare base / auto-scheduler / TF on one operation")
    Term.(const run $ spec_arg $ budget_arg)

(* --- dataset --- *)

let dataset_cmd =
  let run seed samples =
    let split = Generator.generate ~seed () in
    Format.printf "Table 2 reproduction (seed %d)@." seed;
    Format.printf "%-12s %8s %12s@." "operation" "training" "validation";
    let train_counts = Generator.kind_counts split.Generator.train in
    let val_counts = Generator.kind_counts split.Generator.validation in
    List.iter
      (fun (k, n_train) ->
        Format.printf "%-12s %8d %12d@." k n_train (List.assoc k val_counts))
      train_counts;
    Format.printf "%-12s %8d %12d@." "total"
      (Array.length split.Generator.train)
      (Array.length split.Generator.validation);
    if samples > 0 then begin
      Format.printf "@.sample validation ops:@.";
      Array.iteri
        (fun i op ->
          if i < samples then
            Format.printf "  %s@."
              (Option.value ~default:op.Linalg.op_name (Op_spec.to_spec op)))
        split.Generator.validation
    end
  in
  let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Generator seed") in
  let samples_arg =
    Arg.(value & opt int 5 & info [ "samples" ] ~doc:"How many sample specs to print")
  in
  Cmd.v
    (Cmd.info "dataset" ~doc:"Generate and summarize the Table 2 dataset")
    Term.(const run $ seed_arg $ samples_arg)

(* --- train --- *)

let train_cmd =
  let run iterations hidden seed immediate specs save_path fault_rate fault_seed
      noise checkpoint_path checkpoint_every resume jobs =
    check_jobs jobs;
    let cfg = Env_config.default in
    let cfg =
      if immediate then Env_config.with_reward_mode Env_config.Immediate cfg
      else cfg
    in
    let evaluator =
      Evaluator.create ~machine:cfg.Env_config.machine ~noise
        ~noise_seed:(seed + 13) ()
    in
    if resume && checkpoint_path = None then begin
      Format.eprintf "--resume requires --checkpoint PREFIX@.";
      exit 2
    end;
    let robust =
      if fault_rate > 0.0 then begin
        let config = Faults.flaky ~rate:fault_rate () in
        (match Faults.validate config with
        | Ok () -> ()
        | Error e ->
            Format.eprintf "bad --fault-rate %g: %s@." fault_rate e;
            exit 2);
        let faults =
          Faults.create ~config
            ~seed:(match fault_seed with Some s -> s | None -> seed + 31)
            ()
        in
        Some (Robust_evaluator.create ~faults evaluator)
      end
      else None
    in
    let env =
      match robust with
      | Some r -> Env.create ~robust:r cfg
      | None -> Env.create ~evaluator cfg
    in
    let rng = Util.Rng.create seed in
    let policy = Policy.create ~hidden ~backbone_layers:2 rng cfg in
    let ops =
      if specs = [] then begin
        let split = Generator.generate ~seed () in
        split.Generator.train
      end
      else Array.of_list (List.map op_of_spec specs)
    in
    Format.printf "training on %d ops | %d iterations | hidden %d | %s reward | %d params@."
      (Array.length ops) iterations hidden
      (if immediate then "Immediate" else "Final")
      (Policy.param_count policy);
    if fault_rate > 0.0 then
      Format.printf
        "fault injection: %.0f%% transient failures (robust evaluator: retries + degradation)@."
        (fault_rate *. 100.0);
    (match checkpoint_path with
    | Some p ->
        Format.printf "checkpointing to %s every %d iterations%s@." p
          checkpoint_every
          (if resume then " (resuming if a checkpoint exists)" else "")
    | None -> ());
    (* The parallelism banner goes to stderr: stdout must stay
       byte-identical across --jobs values (that equality is what the
       determinism smoke tests diff). *)
    if jobs > 1 then
      Format.eprintf
        "parallel collection: %d worker domains (results identical to --jobs 1)@."
        jobs;
    Format.printf "@.";
    let config =
      {
        Trainer.default_config with
        Trainer.iterations;
        seed;
        checkpoint_path;
        checkpoint_every;
        jobs;
      }
    in
    let _ =
      try
        Trainer.train config env policy ~ops ~resume ~callback:(fun s ->
            Format.printf
              "iter %4d | return %7.3f | geomean speedup %9.2fx | best %9.1fx | kl %.4f%s@."
              s.Trainer.iteration s.Trainer.mean_episode_return
              s.Trainer.mean_final_speedup s.Trainer.best_speedup
              s.Trainer.ppo_stats.Ppo.approx_kl
              (if s.Trainer.degraded_measurements > 0 then
                 Printf.sprintf " | degraded %d" s.Trainer.degraded_measurements
               else ""))
      with Invalid_argument msg
        when String.length msg >= 8 && String.sub msg 0 8 = "Trainer:" ->
        (* a corrupt or mismatched checkpoint is a user error, not a bug *)
        Format.eprintf "%s@." msg;
        exit 2
    in
    (match Env.robust env with
    | Some r ->
        Format.printf
          "@.robust evaluator: %d measurements, %d retries, %d degraded@."
          (Robust_evaluator.measurements r)
          (Robust_evaluator.retry_count r)
          (Robust_evaluator.degraded_count r)
    | None -> ());
    (* Cache counters go to stderr: under --jobs > 1 speculative
       episodes make hit/miss splits scheduling-dependent (the cached
       values are pure, so the training results stay byte-identical),
       and stdout must stay byte-identical across --jobs values. *)
    Format.eprintf "evaluator caches: %s@."
      (Evaluator.render_cache_stats (Evaluator.cache_stats evaluator));
    report_check_stats ();
    Format.printf "@.greedy schedules:@.";
    Array.iteri
      (fun i op ->
        if i < 5 then begin
          let sched, speedup = Trainer.greedy_rollout env policy op in
          Format.printf "  %-40s %9.1fx  %s@." op.Linalg.op_name speedup
            (Schedule.to_string sched)
        end)
      ops;
    match save_path with
    | Some path ->
        Policy.save policy path;
        Format.printf "@.weights saved to %s@." path
    | None -> ()
  in
  let iters = Arg.(value & opt int 30 & info [ "iterations" ] ~doc:"PPO iterations") in
  let hidden = Arg.(value & opt int 64 & info [ "hidden" ] ~doc:"Hidden width") in
  let seed = Arg.(value & opt int 0 & info [ "seed" ] ~doc:"Seed") in
  let immediate =
    Arg.(value & flag & info [ "immediate" ] ~doc:"Use the Immediate reward")
  in
  let specs =
    Arg.(value & opt_all string [] & info [ "op" ] ~doc:"Train on specific op specs")
  in
  let save_path =
    Arg.(value & opt (some string) None & info [ "save" ] ~doc:"Save weights to FILE")
  in
  let fault_rate =
    Arg.(
      value & opt float 0.0
      & info [ "fault-rate" ]
          ~doc:
            "Transient-failure probability of the simulated measurement \
             backend (enables the robust evaluator)")
  in
  let fault_seed =
    Arg.(
      value & opt (some int) None
      & info [ "fault-seed" ] ~doc:"Seed of the fault stream (default: seed+31)")
  in
  let noise =
    Arg.(
      value & opt float 0.0
      & info [ "noise" ] ~doc:"Log-normal measurement jitter sigma")
  in
  let checkpoint_path =
    Arg.(
      value & opt (some string) None
      & info [ "checkpoint" ]
          ~doc:"Checkpoint file prefix (writes PREFIX.meta/.params/.optim)")
  in
  let checkpoint_every =
    Arg.(
      value & opt int 5
      & info [ "checkpoint-every" ] ~doc:"Iterations between checkpoints")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Resume from the checkpoint at --checkpoint (starts fresh when \
             none exists); the resumed run is deterministic")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker domains for parallel episode collection. Training \
             results are bit-identical for any value (see \
             docs/parallelism.md)")
  in
  Cmd.v
    (Cmd.info "train" ~doc:"Train the multi-action PPO agent")
    Term.(
      const run $ iters $ hidden $ seed $ immediate $ specs $ save_path
      $ fault_rate $ fault_seed $ noise $ checkpoint_path $ checkpoint_every
      $ resume $ jobs)

(* --- infer --- *)

let infer_cmd =
  let run spec hidden load_path trials jobs seed greedy_only =
    check_jobs jobs;
    let op = op_of_spec spec in
    let cfg = Env_config.default in
    let env = Env.create cfg in
    let rng = Util.Rng.create 0 in
    let policy = Policy.create ~hidden ~backbone_layers:2 rng cfg in
    (match Policy.load policy load_path with
    | Ok () -> ()
    | Error e ->
        Format.eprintf "failed to load %s: %s@." load_path e;
        exit 1);
    Format.printf "checkpoint: %s@." (Digest.to_hex (Digest.file load_path));
    let sched, speedup = Trainer.greedy_rollout env policy op in
    Format.printf "greedy   : %s (%.1fx)@." (Schedule.to_string sched) speedup;
    if trials > 0 && not greedy_only then begin
      let sched_s, speedup_s =
        Trainer.sampled_best ~jobs (Util.Rng.create seed) env policy op ~trials
      in
      Format.printf "best of %d (seed %d): %s (%.1fx)@." trials seed
        (Schedule.to_string sched_s) speedup_s
    end
  in
  let hidden =
    Arg.(value & opt int 64 & info [ "hidden" ] ~doc:"Hidden width used at training")
  in
  let load_path =
    Arg.(
      required
      & opt (some string) None
      & info [ "load" ] ~doc:"Weights file written by train --save")
  in
  let trials =
    Arg.(value & opt int 16 & info [ "trials" ] ~doc:"Sampled rollouts to try")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:"Worker domains for the sampled trials (same result for any value)")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ]
          ~doc:
            "Seed of the sampled-trials search. The greedy line and the \
             checkpoint digest never depend on it")
  in
  let greedy_only =
    Arg.(
      value & flag
      & info [ "greedy-only" ]
          ~doc:
            "Skip the sampled search entirely: deterministic output, no rng \
             consumed (what the serving daemon runs per request)")
  in
  Cmd.v
    (Cmd.info "infer" ~doc:"Run a trained agent on one operation")
    Term.(
      const run $ spec_arg $ hidden $ load_path $ trials $ jobs $ seed
      $ greedy_only)

(* --- serve / request / fleet-status: the schedule-serving daemon
   (single replica or supervised fleet), its client, and the fleet
   status probe (see docs/serving.md) --- *)

let serve_cmd =
  (* A single replica: engine + batched server in this process. *)
  let run_single ~hidden ~load_path ~workers ~max_batch ~max_queue
      ~max_wait_ms ~cache_capacity ~measure_delay_ms ~jobs ~socket =
    let engine_cfg =
      {
        Serve.Engine.default_config with
        Serve.Engine.hidden;
        checkpoint = load_path;
        cache_capacity;
        measure_delay_s = measure_delay_ms /. 1000.0;
        jobs;
      }
    in
    let engine =
      match Serve.Engine.create engine_cfg with
      | Ok e -> e
      | Error e ->
          Format.eprintf "cannot start server: %s@." e;
          exit 1
    in
    let config =
      {
        Serve.Server.workers;
        batcher =
          {
            Serve.Batcher.max_queue;
            max_batch;
            max_wait_s = max_wait_ms /. 1000.0;
          };
      }
    in
    let server = Serve.Server.create ~config engine in
    (* Banner on stderr: stdout carries only protocol lines in stdio
       mode. *)
    Format.eprintf
      "mlir-rl serve: policy %s | workers %d | batch <= %d, wait <= %gms, \
       queue <= %d | %s@."
      (Serve.Engine.policy_digest engine)
      workers max_batch max_wait_ms max_queue
      (match socket with
      | Some p -> "unix socket " ^ p
      | None -> "stdio");
    match socket with
    | Some path -> Serve.Frontend.listen_unix server ~path
    | None ->
        Serve.Frontend.serve_channels server stdin stdout;
        Serve.Server.drain server
  in
  (* A supervised fleet: spawn [replicas] copies of this executable as
     single-replica daemons on private sockets, put the supervisor in
     front (crash restart, health checks, breaker shedding,
     consistent-hash routing, hedged retries). *)
  let run_fleet ~replicas ~hidden ~load_path ~workers ~max_batch ~max_queue
      ~max_wait_ms ~cache_capacity ~measure_delay_ms ~jobs ~socket =
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "mlir-rl-fleet-%d" (Unix.getpid ()))
    in
    (try Unix.mkdir dir 0o700
     with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
    let replica_socket i = Filename.concat dir (Printf.sprintf "replica-%d.sock" i) in
    let child_args i =
      [
        "serve";
        "--socket"; replica_socket i;
        "--hidden"; string_of_int hidden;
        "--workers"; string_of_int workers;
        "--max-batch"; string_of_int max_batch;
        "--max-queue"; string_of_int max_queue;
        "--max-wait-ms"; Printf.sprintf "%g" max_wait_ms;
        "--cache-capacity"; string_of_int cache_capacity;
        "--measure-delay-ms"; Printf.sprintf "%g" measure_delay_ms;
        "--jobs"; string_of_int jobs;
      ]
      @ (match load_path with Some p -> [ "--load"; p ] | None -> [])
    in
    let launcher ~index =
      Serve.Replica.spawn ~exe:Sys.executable_name ~args:(child_args index)
        ~socket:(replica_socket index) ()
    in
    let config = { Serve.Supervisor.default_config with replicas } in
    let sup =
      match Serve.Supervisor.create ~config ~launcher () with
      | Ok s -> s
      | Error e ->
          Format.eprintf "cannot start fleet: %s@." e;
          exit 1
    in
    if not (Serve.Supervisor.await_ready sup ~timeout_s:60.0) then
      Format.eprintf
        "mlir-rl serve: warning: fleet not fully up after 60s; supervisor \
         keeps retrying@.";
    Serve.Supervisor.start_heartbeat sup;
    let cleanup () =
      Serve.Supervisor.drain sup;
      for i = 0 to replicas - 1 do
        try Sys.remove (replica_socket i) with Sys_error _ -> ()
      done;
      try Unix.rmdir dir with Unix.Unix_error _ -> ()
    in
    (* The OCaml runtime may run a signal handler on any thread at a
       safe point — including the heartbeat thread while it holds the
       supervisor mutex inside tick — and Supervisor.drain locks that
       (non-reentrant) mutex, waits on its condition variable and
       joins the heartbeat. So the handler must not drain: it only
       pokes a self-pipe, and a dedicated shutdown thread (which holds
       no supervisor state) performs drain/cleanup/exit. *)
    let stop_rd, stop_wr = Unix.pipe ~cloexec:true () in
    let (_shutdown : Thread.t) =
      Thread.create
        (fun () ->
          let b = Bytes.create 1 in
          let rec await () =
            match Unix.read stop_rd b 0 1 with
            | _ -> ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> await ()
          in
          await ();
          cleanup ();
          exit 0)
        ()
    in
    let stop _ =
      try ignore (Unix.write stop_wr (Bytes.make 1 '!') 0 1)
      with Unix.Unix_error _ -> ()
    in
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Format.eprintf
      "mlir-rl serve: fleet of %d replicas (sockets under %s) | %s@." replicas
      dir
      (match socket with
      | Some p -> "unix socket " ^ p
      | None -> "stdio");
    (* Optimize requests run on their own thread so one slow rollout
       does not head-of-line-block a connection's pipelined requests;
       clients correlate replies by id. *)
    let handler req k =
      match req with
      | Serve.Protocol.Optimize _ ->
          ignore
            (Thread.create (fun () -> k (Serve.Supervisor.call sup req)) ())
      | _ -> k (Serve.Supervisor.call sup req)
    in
    match socket with
    | Some path -> Serve.Frontend.listen_unix_handler handler ~path
    | None ->
        Serve.Frontend.serve_channels_handler handler stdin stdout;
        cleanup ()
  in
  let run hidden load_path workers max_batch max_queue max_wait_ms
      cache_capacity socket replicas measure_delay_ms jobs =
    check_jobs jobs;
    if max_wait_ms < 0.0 then begin
      Format.eprintf "--max-wait-ms must be >= 0@.";
      exit 2
    end;
    if measure_delay_ms < 0.0 then begin
      Format.eprintf "--measure-delay-ms must be >= 0@.";
      exit 2
    end;
    if replicas < 1 then begin
      Format.eprintf "--replicas must be >= 1@.";
      exit 2
    end;
    if replicas = 1 then
      run_single ~hidden ~load_path ~workers ~max_batch ~max_queue
        ~max_wait_ms ~cache_capacity ~measure_delay_ms ~jobs ~socket
    else
      run_fleet ~replicas ~hidden ~load_path ~workers ~max_batch ~max_queue
        ~max_wait_ms ~cache_capacity ~measure_delay_ms ~jobs ~socket
  in
  let hidden =
    Arg.(value & opt int 64 & info [ "hidden" ] ~doc:"Hidden width used at training")
  in
  let load_path =
    Arg.(
      value
      & opt (some string) None
      & info [ "load" ]
          ~doc:
            "Weights file written by train --save (default: a fixed-seed \
             random-init policy, for smoke tests)")
  in
  let workers =
    Arg.(value & opt int 1 & info [ "workers" ] ~doc:"Rollout worker domains")
  in
  let max_batch =
    Arg.(value & opt int 8 & info [ "max-batch" ] ~doc:"Micro-batch size cap")
  in
  let max_queue =
    Arg.(
      value & opt int 64
      & info [ "max-queue" ]
          ~doc:"Admission bound; beyond it requests are answered overloaded")
  in
  let max_wait_ms =
    Arg.(
      value & opt float 2.0
      & info [ "max-wait-ms" ]
          ~doc:"How long an under-full batch may wait for company")
  in
  let cache_capacity =
    Arg.(
      value & opt int 4096
      & info [ "cache-capacity" ] ~doc:"Result-cache entries")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ]
          ~doc:
            "Serve on a Unix-domain socket at PATH instead of stdin/stdout; \
             runs until killed")
  in
  let replicas =
    Arg.(
      value & opt int 1
      & info [ "replicas" ]
          ~doc:
            "Run a supervised fleet of N replica processes behind this front \
             door: crash restart with capped backoff, health checks, circuit \
             breakers, consistent-hash routing, hedged retries. 1 (default) \
             serves in-process")
  in
  let measure_delay_ms =
    Arg.(
      value & opt float 0.0
      & info [ "measure-delay-ms" ]
          ~doc:
            "Emulated hardware-measurement time per unique uncached nest \
             (cache hits stay instant); models a deployment that times \
             schedules on real hardware")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ]
          ~doc:
            "Worker domains per engine for chunked batch rollouts (default \
             1); with --replicas each replica gets its own pool. Results are \
             identical for any value (see docs/parallelism.md)")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the batched schedule-serving daemon (line protocol on \
          stdin/stdout or a Unix socket), optionally as a supervised \
          multi-replica fleet")
    Term.(
      const run $ hidden $ load_path $ workers $ max_batch $ max_queue
      $ max_wait_ms $ cache_capacity $ socket $ replicas $ measure_delay_ms
      $ jobs)

let request_cmd =
  let run id spec ir_file stats metrics ping deadline_ms socket timeout_ms =
    let fail msg =
      Format.eprintf "%s@." msg;
      exit 2
    in
    let chosen =
      List.filter
        (fun b -> b)
        [ spec <> None; ir_file <> None; stats; metrics; ping ]
    in
    if List.length chosen <> 1 then
      fail "pick exactly one of --spec, --ir, --stats, --metrics, --ping";
    if timeout_ms <= 0.0 then fail "--timeout-ms must be > 0";
    let req =
      if stats then Serve.Protocol.Stats { id }
      else if metrics then Serve.Protocol.Metrics { id }
      else if ping then Serve.Protocol.Ping { id }
      else
        let target =
          match (spec, ir_file) with
          | Some s, _ -> Serve.Protocol.Spec s
          | None, Some path ->
              if not (Sys.file_exists path) then
                fail (Printf.sprintf "no such file: %s" path);
              let ic = open_in path in
              let text = really_input_string ic (in_channel_length ic) in
              close_in ic;
              Serve.Protocol.Ir text
          | None, None -> assert false
        in
        Serve.Protocol.Optimize { id; target; deadline_ms }
    in
    match socket with
    | None ->
        (* Encoder mode: print the line for piping into a daemon. *)
        print_endline (Serve.Protocol.encode_request req)
    | Some path -> (
        (* Client mode: one round trip with a connect + reply deadline,
           so a dead or wedged daemon is a typed fast failure, never a
           hang. *)
        match
          Serve.Replica.call_once ~socket:path
            ~timeout_s:(timeout_ms /. 1000.0) req
        with
        | Ok resp -> print_endline (Serve.Protocol.encode_response resp)
        | Error err ->
            Format.eprintf "request failed: %s@."
              (Serve.Replica.error_to_string err);
            exit 1)
  in
  let id = Arg.(value & opt string "r1" & info [ "id" ] ~doc:"Request id") in
  let spec =
    Arg.(
      value
      & opt (some string) None
      & info [ "spec" ] ~doc:"Optimize an op spec, e.g. matmul:64x64x64")
  in
  let ir_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "ir" ] ~doc:"Optimize the loop-nest file at PATH (textual IR)")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Ask for server statistics")
  in
  let metrics =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Ask for the Prometheus dump")
  in
  let ping = Arg.(value & flag & info [ "ping" ] ~doc:"Liveness probe") in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~doc:"Per-request deadline in milliseconds")
  in
  let socket =
    Arg.(
      value
      & opt (some string) None
      & info [ "socket" ]
          ~doc:
            "Send the request to the daemon at this Unix socket and print \
             the reply (default: just print the encoded request line)")
  in
  let timeout_ms =
    Arg.(
      value & opt float 5000.0
      & info [ "timeout-ms" ]
          ~doc:
            "With --socket: fail with a typed error if connecting or the \
             reply takes longer than this")
  in
  Cmd.v
    (Cmd.info "request"
       ~doc:
         "Encode one serve-protocol request line (pipe it into mlir-rl \
          serve), or send it with --socket")
    Term.(
      const run $ id $ spec $ ir_file $ stats $ metrics $ ping $ deadline_ms
      $ socket $ timeout_ms)

let fleet_status_cmd =
  let run socket timeout_ms metrics =
    if timeout_ms <= 0.0 then begin
      Format.eprintf "--timeout-ms must be > 0@.";
      exit 2
    end;
    let req =
      if metrics then Serve.Protocol.Metrics { id = "fleet-status" }
      else Serve.Protocol.Stats { id = "fleet-status" }
    in
    match
      Serve.Replica.call_once ~socket ~timeout_s:(timeout_ms /. 1000.0) req
    with
    | Ok (Serve.Protocol.Stats_reply { body; _ })
    | Ok (Serve.Protocol.Metrics_reply { body; _ }) ->
        print_string body;
        if String.length body > 0 && body.[String.length body - 1] <> '\n'
        then print_newline ()
    | Ok resp ->
        Format.eprintf "unexpected reply: %s@."
          (Serve.Protocol.encode_response resp);
        exit 1
    | Error err ->
        Format.eprintf "fleet-status failed: %s@."
          (Serve.Replica.error_to_string err);
        exit 1
  in
  let socket =
    Arg.(
      required
      & opt (some string) None
      & info [ "socket" ] ~doc:"Unix socket of the fleet front door (or any serve daemon)")
  in
  let timeout_ms =
    Arg.(
      value & opt float 5000.0
      & info [ "timeout-ms" ] ~doc:"Connect + reply deadline")
  in
  let metrics =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the fleet-aggregated Prometheus dump (per-replica \
             up/restarts/breaker gauges, merged latency histograms) instead \
             of the status summary")
  in
  Cmd.v
    (Cmd.info "fleet-status"
       ~doc:
         "Show replica states, restarts, breakers and fleet metrics of a \
          running fleet")
    Term.(const run $ socket $ timeout_ms $ metrics)

(* --- analyze: dependence analysis, legality verdicts, lint --- *)

let analyze_cmd =
  let nest_of_target target =
    if Sys.file_exists target then begin
      let ic = open_in target in
      let len = in_channel_length ic in
      let text = really_input_string ic len in
      close_in ic;
      match Ir_parser.parse_result text with
      | Ok nest -> nest
      | Error e ->
          Format.eprintf "%s: parse error: %s@." target e;
          exit 2
    end
    else Lower.to_loop_nest (op_of_spec target)
  in
  (* Hand-rolled JSON (no external dependency): strings escaped per RFC
     8259, structure emitted directly into a buffer. *)
  let json_escape s =
    let b = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | '\n' -> Buffer.add_string b "\\n"
        | '\t' -> Buffer.add_string b "\\t"
        | '\r' -> Buffer.add_string b "\\r"
        | c when Char.code c < 0x20 ->
            Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  let json_of_target target (nest : Loop_nest.t) =
    let b = Buffer.create 1024 in
    let str s = Printf.sprintf "\"%s\"" (json_escape s) in
    let bool v = if v then "true" else "false" in
    let arr items = "[" ^ String.concat "," items ^ "]" in
    let deps = Dependence.analyze nest in
    let leg = Legality.analyze nest in
    let v = Legality.verdicts leg in
    let n = Legality.n_loops leg in
    let bounds = Bounds.analyze nest in
    let fp = Footprint.analyze nest in
    let diags = Nest_lint.run nest in
    Printf.bprintf b "{\"target\":%s,\"name\":%s,\"loops\":%d," (str target)
      (str nest.Loop_nest.name) n;
    Printf.bprintf b "\"trip_counts\":%s,"
      (arr
         (Array.to_list
            (Array.map string_of_int (Loop_nest.trip_counts nest))));
    Printf.bprintf b "\"dependences\":%d," (List.length deps);
    Printf.bprintf b
      "\"legality\":{\"tile\":%s,\"vectorize\":%s,\"unroll\":%s,\"parallelize\":%s,\"interchange\":%s},"
      (bool v.Legality.tile) (bool v.Legality.vectorize)
      (bool v.Legality.unroll)
      (arr (Array.to_list (Array.map bool v.Legality.parallelize)))
      (arr (Array.to_list (Array.map bool v.Legality.interchange)));
    Printf.bprintf b "\"bounds\":{\"checked\":%d,\"violations\":%s},"
      bounds.Bounds.checked
      (arr
         (List.map
            (fun viol -> str (Bounds.violation_to_string viol))
            bounds.Bounds.violations));
    Printf.bprintf b "\"footprint\":{\"levels\":%s,\"reuse\":%s},"
      (arr
         (Array.to_list
            (Array.map
               (fun (l : Footprint.level) -> string_of_int l.Footprint.elements)
               fp.Footprint.levels)))
      (arr
         (List.init n (fun k ->
              string_of_int (Footprint.reuse_distance fp k))));
    Printf.bprintf b "\"diagnostics\":%s}"
      (arr
         (List.map
            (fun (d : Nest_lint.diagnostic) ->
              Printf.sprintf "{\"severity\":%s,\"loc\":%s,\"message\":%s}"
                (str (Nest_lint.severity_label d.Nest_lint.severity))
                (str d.Nest_lint.loc) (str d.Nest_lint.message))
            diags));
    (Buffer.contents b, Nest_lint.has_error diags)
  in
  let analyze_one ~ci target =
    let nest = nest_of_target target in
    Format.printf "=== %s (%s) ===@." target nest.Loop_nest.name;
    Format.printf "%s@." (Ir_printer.to_string nest);
    let deps = Dependence.analyze nest in
    Format.printf "@.dependences (%d):@." (List.length deps);
    if deps = [] then Format.printf "  (none)@."
    else
      List.iter
        (fun d -> Format.printf "  %a@." Dependence.pp_dependence d)
        deps;
    let leg = Legality.analyze nest in
    let v = Legality.verdicts leg in
    let n = Legality.n_loops leg in
    let yn b = if b then "yes" else "no" in
    Format.printf "@.legality:@.";
    Format.printf "  %-22s %s@." "tile (band permutable)" (yn v.Legality.tile);
    Format.printf "  %-22s %s@." "vectorize" (yn v.Legality.vectorize);
    Format.printf "  %-22s %s@." "unroll" (yn v.Legality.unroll);
    for k = 0 to n - 1 do
      Format.printf "  %-22s %-4s%s@."
        (Printf.sprintf "parallelize loop %%%d" k)
        (yn v.Legality.parallelize.(k))
        (if Legality.carries_dependence leg k then "  (carries a dependence)"
         else "")
    done;
    for k = 0 to n - 2 do
      Format.printf "  %-22s %s@."
        (Printf.sprintf "interchange %%%d<->%%%d" k (k + 1))
        (yn v.Legality.interchange.(k))
    done;
    let fp = Footprint.analyze nest in
    Format.printf "@.footprint (distinct elements touched):@.";
    Array.iter
      (fun (l : Footprint.level) ->
        Format.printf "  depth %d: %d%s@." l.Footprint.depth
          l.Footprint.elements
          (if l.Footprint.depth = 0 then "  (whole nest)"
           else if l.Footprint.depth = n then "  (one body execution)"
           else ""))
      fp.Footprint.levels;
    for k = 0 to n - 1 do
      Format.printf "  reuse distance loop %%%d: %d@." k
        (Footprint.reuse_distance fp k)
    done;
    let diags = Nest_lint.run nest in
    Format.printf "@.lint (%d):@." (List.length diags);
    if diags = [] then Format.printf "  (clean)@."
    else
      List.iter
        (fun d -> Format.printf "  %a@." Nest_lint.pp_diagnostic d)
        diags;
    Format.printf "@.";
    if ci && Nest_lint.has_error diags then begin
      Format.eprintf "%s: lint reported Error-severity diagnostics@." target;
      exit 1
    end
  in
  let run targets ci json =
    if json then begin
      (* Machine-readable mode: one JSON array on stdout, nothing else.
         All targets are analyzed (and printed) before --ci exits. *)
      let results =
        List.map (fun t -> json_of_target t (nest_of_target t)) targets
      in
      print_string
        ("[" ^ String.concat ",\n" (List.map fst results) ^ "]\n");
      if ci && List.exists snd results then exit 1
    end
    else List.iter (analyze_one ~ci) targets
  in
  let targets_arg =
    Arg.(
      non_empty & pos_all string []
      & info [] ~docv:"TARGET"
          ~doc:
            "An op spec (matmul:64x64x64) or a path to a loop-nest file in \
             the textual IR syntax")
  in
  let ci_arg =
    Arg.(
      value & flag
      & info [ "ci" ]
          ~doc:"Exit non-zero when lint reports an Error-severity diagnostic")
  in
  let json_arg =
    Arg.(
      value & flag
      & info [ "json" ]
          ~doc:
            "Emit one JSON array on stdout (diagnostics, legality verdicts, \
             bounds report, footprint summary) instead of the human-readable \
             report")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:
         "Print dependences, direction vectors, per-action legality, bounds, \
          footprint and lint diagnostics for operations or loop-nest files"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P
             "Exit codes are stable and suitable for CI gating: $(b,0) — \
              every target analyzed and (with $(b,--ci)) no Error-severity \
              diagnostics; $(b,1) — $(b,--ci) was given and at least one \
              target has an Error-severity diagnostic (in $(b,--json) mode \
              the full array is still printed first); $(b,2) — a target \
              failed to parse (bad op spec or IR file).";
         ])
    Term.(const run $ targets_arg $ ci_arg $ json_arg)

(* --- play: interactive environment session --- *)

let play_cmd =
  let run spec immediate =
    let op = op_of_spec spec in
    let cfg =
      if immediate then Env_config.with_reward_mode Env_config.Immediate Env_config.default
      else Env_config.default
    in
    let env = Env.create cfg in
    ignore (Env.reset env op);
    Format.printf "%s@.@." (Env.render env);
    Format.printf
      "enter transformations (e.g. \"P(32,32,0)\", \"T(0,8,8)\", \"S(1)\", \"C\", \"V\"),@.\
       or: obs | mask | ir | quit@.@.";
    let finished = ref false in
    (try
       while not !finished do
         Format.printf "> %!";
         let line = String.trim (input_line stdin) in
         match line with
         | "" -> ()
         | "quit" | "q" | "exit" -> raise Exit
         | "ir" ->
             Format.printf "%s@."
               (Ir_printer.to_string (Env.state env).Sched_state.nest)
         | "obs" ->
             let obs = Observation.extract cfg (Env.state env) in
             Format.printf "observation (%d floats): [" (Array.length obs);
             Array.iteri
               (fun i v -> if i < 24 then Format.printf "%s%.3f" (if i > 0 then "; " else "") v)
               obs;
             Format.printf "; ...]@."
         | "mask" ->
             let m = Env.masks env in
             Format.printf "transformations: [%s]@."
               (String.concat "; "
                  (List.mapi
                     (fun i b ->
                       Printf.sprintf "%s=%b" (Action_space.transformation_label i) b)
                     (Array.to_list m.Action_space.t_mask)))
         | _ -> (
             match Schedule.of_string line with
             | Error e -> Format.printf "parse error: %s@." e
             | Ok [] -> ()
             | Ok (tr :: _) ->
                 let r = Env.step env (Some tr) in
                 Format.printf "reward %.4f%s%s%s@.@.%s@.@." r.Env.reward
                   (if r.Env.invalid then " (INVALID)" else "")
                   (if r.Env.timed_out then " (TIMEOUT)" else "")
                   (match r.Env.error with
                   | Some e -> " [" ^ Env_error.to_string e ^ "]"
                   | None -> "")
                   (Env.render env);
                 if r.Env.terminal then begin
                   Format.printf "episode over: final speedup %.2fx@."
                     (Env.current_speedup env);
                   finished := true
                 end)
       done
     with Exit | End_of_file -> ());
    Format.printf "bye.@."
  in
  let immediate =
    Arg.(value & flag & info [ "immediate" ] ~doc:"Show Immediate rewards per step")
  in
  Cmd.v
    (Cmd.info "play"
       ~doc:"Drive the RL environment interactively, one transformation at a time")
    Term.(const run $ spec_arg $ immediate)

(* --- surrogate --- *)

let machine_of_name name =
  match String.lowercase_ascii name with
  | "e5_2680_v4" | "xeon" -> Machine.e5_2680_v4
  | "avx512" | "avx512_server" -> Machine.avx512_server
  | "mobile" | "mobile_quad" -> Machine.mobile_quad
  | other ->
      Format.eprintf
        "unknown machine %S (try e5_2680_v4, avx512_server, mobile_quad)@."
        other;
      exit 2

let log_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "log" ] ~docv:"PATH" ~doc:"Evaluation log (surrogate-log v1)")

let surrogate_collect_cmd =
  let run out seed n_ops budget machine_name =
    let machine = machine_of_name machine_name in
    let ev = Evaluator.create ~machine () in
    let log = Surrogate.Dataset_log.create () in
    Surrogate.Dataset_log.attach log ev;
    let split = Generator.generate ~seed () in
    let ops =
      Array.sub split.Generator.train 0
        (min n_ops (Array.length split.Generator.train))
    in
    let config =
      { Auto_scheduler.default_config with Auto_scheduler.max_schedules = budget }
    in
    Array.iteri
      (fun i op ->
        let r = Auto_scheduler.search ~config ev op in
        Format.eprintf "[%d/%d] %s: explored %d, log size %d@." (i + 1)
          (Array.length ops)
          (Option.value ~default:op.Linalg.op_name (Op_spec.to_spec op))
          r.Auto_scheduler.explored
          (Surrogate.Dataset_log.length log))
      ops;
    Surrogate.Dataset_log.detach ev;
    let rows = Surrogate.Dataset_log.save log ~path:out in
    let s = Surrogate.Dataset_log.stats log in
    Format.printf
      "collected %d entries (%d duplicates deduped, %d rotated out); %s now \
       holds %d rows@."
      s.Surrogate.Dataset_log.added s.Surrogate.Dataset_log.duplicates
      s.Surrogate.Dataset_log.rotated out rows
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"PATH"
          ~doc:"Log file to write (merged with existing rows)")
  in
  let seed_arg =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Dataset generator seed")
  in
  let ops_arg =
    Arg.(value & opt int 12 & info [ "ops" ] ~doc:"How many dataset ops to search")
  in
  let budget_arg =
    Arg.(value & opt int 400 & info [ "budget" ] ~doc:"Search budget per op")
  in
  let machine_arg =
    Arg.(
      value
      & opt string "e5_2680_v4"
      & info [ "machine" ] ~doc:"Machine profile to price on")
  in
  Cmd.v
    (Cmd.info "collect"
       ~doc:
         "Run exact searches over dataset ops with the evaluation tap on and \
          append the measurements to a log")
    Term.(const run $ out_arg $ seed_arg $ ops_arg $ budget_arg $ machine_arg)

let parse_hidden s =
  let parts = List.filter (fun x -> x <> "") (String.split_on_char ',' s) in
  let dims = List.filter_map int_of_string_opt parts in
  if List.length dims <> List.length parts || dims = [] then begin
    Format.eprintf "bad --hidden %S (want e.g. 24,12)@." s;
    exit 2
  end;
  dims

let load_log_or_die path =
  match Surrogate.Dataset_log.load ~path with
  | Error e ->
      Format.eprintf "cannot load log %s: %s@." path e;
      exit 1
  | Ok log -> Surrogate.Dataset_log.entries log

let surrogate_train_cmd =
  let run log_path out hidden epochs batch_size lr seed =
    let entries = load_log_or_die log_path in
    let model = Surrogate.Model.create ~hidden:(parse_hidden hidden) ~seed () in
    let r =
      Surrogate.Model.fit ~epochs ~batch_size ~learning_rate:lr ~seed model
        entries
    in
    Format.printf "examples      : %d (%d train / %d val)@."
      r.Surrogate.Model.examples r.Surrogate.Model.train_examples
      r.Surrogate.Model.val_examples;
    Array.iteri
      (fun e (tl : float) ->
        Format.eprintf "epoch %2d: train mse %.5f  val mse %.5f@." (e + 1) tl
          r.Surrogate.Model.val_losses.(e))
      r.Surrogate.Model.train_losses;
    Format.printf "val mse       : %.5f -> %.5f@."
      r.Surrogate.Model.initial_val_loss
      r.Surrogate.Model.val_losses.(r.Surrogate.Model.epochs_run - 1);
    Format.printf "val spearman  : %.3f@." r.Surrogate.Model.spearman;
    Surrogate.Model.save model ~path:out;
    Format.printf "checkpoint    : %s@." out
  in
  let out_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "out" ] ~docv:"CKPT" ~doc:"Checkpoint file to write")
  in
  let hidden_arg =
    Arg.(value & opt string "24,12" & info [ "hidden" ] ~doc:"Hidden layer dims")
  in
  let epochs_arg =
    Arg.(value & opt int 40 & info [ "epochs" ] ~doc:"Training epochs")
  in
  let batch_arg =
    Arg.(value & opt int 64 & info [ "batch" ] ~doc:"Minibatch size")
  in
  let lr_arg =
    Arg.(value & opt float 1e-3 & info [ "lr" ] ~doc:"Adam learning rate")
  in
  let seed_arg =
    Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Init and shuffle seed")
  in
  Cmd.v
    (Cmd.info "train"
       ~doc:"Train the latency surrogate on an evaluation log (deterministic)")
    Term.(
      const run $ log_arg $ out_arg $ hidden_arg $ epochs_arg $ batch_arg
      $ lr_arg $ seed_arg)

let surrogate_eval_cmd =
  let run log_path ckpt =
    let entries = load_log_or_die log_path in
    match Surrogate.Model.load ~path:ckpt with
    | Error e ->
        Format.eprintf "cannot load checkpoint %s: %s@." ckpt e;
        exit 1
    | Ok model ->
        let train, validation = Surrogate.Model.split entries in
        Format.printf "examples      : %d (%d train / %d val)@."
          (Array.length entries) (Array.length train)
          (Array.length validation);
        Format.printf "train mse     : %.5f@."
          (Surrogate.Model.eval_loss model train);
        Format.printf "val mse       : %.5f@."
          (Surrogate.Model.eval_loss model validation);
        Format.printf "val spearman  : %.3f@."
          (Surrogate.Model.spearman model
             (if Array.length validation >= 2 then validation else entries))
  in
  let ckpt_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "ckpt" ] ~docv:"CKPT" ~doc:"Checkpoint to evaluate")
  in
  Cmd.v
    (Cmd.info "eval" ~doc:"Score a trained surrogate against an evaluation log")
    Term.(const run $ log_arg $ ckpt_arg)

let surrogate_cmd =
  Cmd.group
    (Cmd.info "surrogate"
       ~doc:
         "Learned cost-model surrogate: collect evaluation logs, train the \
          latency predictor, evaluate checkpoints")
    [ surrogate_collect_cmd; surrogate_train_cmd; surrogate_eval_cmd ]

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "mlir-rl" ~version:"1.0.0"
             ~doc:"RL environment for automatic code optimization in a mini-MLIR")
          ~default
          [
            show_cmd; schedule_cmd; features_cmd; analyze_cmd; autoschedule_cmd;
            compare_cmd; dataset_cmd; train_cmd; infer_cmd; serve_cmd;
            request_cmd; fleet_status_cmd; play_cmd; surrogate_cmd;
          ]))
