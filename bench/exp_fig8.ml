(* Figure 8 — Simple (flat) vs Hierarchical action space: the
   hierarchical product space converges more slowly but explores a wider
   space. The paper evaluates on one Matmul; we additionally include a
   convolution, where the gap is much starker (the flat menu cannot
   coordinate tile sizes across seven loops). *)

let run_pair (c : Bench_common.config) op =
  let cfg = Env_config.default in
  let iterations = c.Bench_common.ablation_iterations in
  Bench_common.subheading
    (Printf.sprintf "%s (%d PPO iterations each)" op.Linalg.op_name iterations);
  Printf.printf
    "flat space: %d actions | hierarchical replaces a flat space of %.3g actions\n%!"
    (Array.length (Action_space.simple_menu cfg ~n_loops:(Linalg.n_loops op)))
    (Action_space.cardinality cfg ~n_loops:(Linalg.n_loops op));
  let config =
    {
      Trainer.default_config with
      Trainer.ppo =
        { Ppo.default_config with Ppo.entropy_coef = c.Bench_common.entropy_coef };
      iterations;
      seed = c.Bench_common.seed;
    }
  in
  let env_h = Env.create cfg in
  let rng_h = Util.Rng.create c.Bench_common.seed in
  let policy_h =
    Policy.create ~hidden:c.Bench_common.hidden ~backbone_layers:2 rng_h cfg
  in
  let hier = Trainer.train config env_h policy_h ~ops:[| op |] in
  let env_f = Env.create cfg in
  let rng_f = Util.Rng.create c.Bench_common.seed in
  let policy_f =
    Flat_policy.create ~hidden:c.Bench_common.hidden ~backbone_layers:2 rng_f cfg
      ~n_loops:(Linalg.n_loops op)
  in
  let flat = Trainer.train_flat config env_f policy_f ~ops:[| op |] in
  Printf.printf "\n%-10s %22s %22s\n" "iteration" "simple space x" "hierarchical x";
  List.iter2
    (fun (f : Trainer.iteration_stats) (h : Trainer.iteration_stats) ->
      if f.Trainer.iteration mod 5 = 0 || f.Trainer.iteration = 1 then
        Printf.printf "%-10d %22.1f %22.1f\n" f.Trainer.iteration
          f.Trainer.mean_final_speedup h.Trainer.mean_final_speedup)
    flat hier;
  let best l =
    List.fold_left
      (fun acc (s : Trainer.iteration_stats) -> Float.max acc s.Trainer.best_speedup)
      0.0 l
  in
  Printf.printf "\nbest schedule found: simple %.1fx, hierarchical %.1fx\n"
    (best flat) (best hier)

let run (c : Bench_common.config) =
  Bench_common.heading "Figure 8 — Simple vs Hierarchical action space";
  run_pair c (Linalg.matmul ~m:1024 ~n:1024 ~k:1024 ());
  run_pair c
    (Linalg.conv2d
       {
         Linalg.batch = 1;
         in_h = 58;
         in_w = 58;
         channels = 64;
         kernel_h = 3;
         kernel_w = 3;
         filters = 128;
         stride = 1;
       });
  Printf.printf
    "\n(paper, on Matmul: hierarchical converges more slowly but ends higher.\n\
    \ Our legalized flat menu is unusually strong on 3-loop matmuls, so the\n\
    \ two spaces tie there; on the 7-loop convolution the flat menu cannot\n\
    \ coordinate per-loop tile sizes and the hierarchical space wins by >10x.)\n"
