(* Multicore search engine: candidates/sec scaling of the domain-parallel
   exhaustive (prefix-sharing) and beam searches across --jobs 1/2/4,
   with byte-identity of the results enforced before any number is
   reported.

   The evaluator runs with [measure_delay_s] > 0: each state-seconds
   computation (transposition-cache miss) sleeps like a hardware
   measurement would, so the bench measures how well the search overlaps
   measurement latency — the quantity that matters on a real tuning box —
   instead of this container's core count. Sleeps on different domains
   overlap regardless of cores; compute does not, and is negligible at
   these delays.

   Every parallel run is fingerprinted (best schedule, speedup, explored,
   digest of the full trace) against the jobs=1 run; a divergence prints
   MISMATCH and fails the gate. The committed full run is
   BENCH_search.json; the CI quick run greps the gate line. *)

let now () = Unix.gettimeofday ()

let mismatch = ref false

let require_equal what a b =
  if a <> b then begin
    mismatch := true;
    Printf.printf "MISMATCH: %s\n  jobs=1: %s\n  parallel: %s\n" what a b
  end

type point = { jobs : int; wall_s : float; explored : int }

let rate p = float_of_int p.explored /. p.wall_s

(* Fingerprints carry the trace as a digest: the full trace is thousands
   of points, and byte-identity of the digest is byte-identity of the
   trace. *)
let search_fp (r : Auto_scheduler.result) =
  let trace =
    String.concat ";"
      (Array.to_list
         (Array.map
            (fun (i, s) -> Printf.sprintf "%d:%.17g" i s)
            r.Auto_scheduler.trace))
  in
  Printf.sprintf "%s|%.17g|%d|%s"
    (Schedule.to_string r.Auto_scheduler.best_schedule)
    r.Auto_scheduler.best_speedup r.Auto_scheduler.explored
    (Digest.to_hex (Digest.string trace))

let beam_fp (r : Beam_search.result) =
  Printf.sprintf "%s|%.17g|%d"
    (Schedule.to_string r.Beam_search.best_schedule)
    r.Beam_search.best_speedup r.Beam_search.explored

(* A conv small enough to enumerate fully (under 2k candidates including
   the im2col twin space) yet deep enough that every candidate is a
   distinct measurement. *)
let bench_op () =
  Linalg.conv2d
    {
      Linalg.batch = 1;
      in_h = 5;
      in_w = 5;
      channels = 1;
      kernel_h = 3;
      kernel_w = 3;
      filters = 2;
      stride = 1;
    }

let jobs_list = [ 1; 2; 4 ]

let repeats = 2

let run_scaling ~label ~delay ~run_search ~fp =
  let points =
    List.map
      (fun jobs ->
        (* The pool is created before the clock starts: domain spawns
           cost milliseconds, which is real noise against the beam
           search's sub-second walls and not part of search
           throughput (callers reuse one pool across searches). *)
        let pool =
          if jobs > 1 then Some (Util.Domain_pool.create_stealing ~size:jobs)
          else None
        in
        (* Best-of-N walls, fresh evaluator per repetition (a warm
           transposition cache would skip the simulated measurement
           sleeps). Jitter on a shared container only ever slows a run
           down, so the minimum is the honest throughput; fingerprints
           must agree on every repetition, not just the fastest. *)
        let best_wall = ref infinity in
        let last_fp = ref None in
        let explored = ref 0 in
        for _ = 1 to repeats do
          let ev = Evaluator.create ~measure_delay_s:delay () in
          let t0 = now () in
          let r = run_search ~jobs ?pool ev in
          let wall = now () -. t0 in
          let f = fp r in
          (match !last_fp with
          | Some prev ->
              require_equal
                (Printf.sprintf "%s jobs=%d across repeats" label jobs)
                prev f
          | None -> ());
          last_fp := Some f;
          explored := Evaluator.explored ev;
          if wall < !best_wall then best_wall := wall
        done;
        Option.iter Util.Domain_pool.shutdown pool;
        ( (jobs, Option.get !last_fp),
          { jobs; wall_s = !best_wall; explored = !explored } ))
      jobs_list
  in
  let fps = List.map fst points in
  let points = List.map snd points in
  let base_fp = List.assoc 1 fps in
  List.iter
    (fun (jobs, f) ->
      if jobs <> 1 then
        require_equal (Printf.sprintf "%s jobs=%d vs jobs=1" label jobs)
          base_fp f)
    fps;
  let base = rate (List.hd points) in
  Printf.printf "%-12s %6s %10s %10s %14s %9s\n" "search" "jobs" "wall (s)"
    "explored" "cands/sec" "scaling";
  List.iter
    (fun p ->
      Printf.printf "%-12s %6d %10.2f %10d %14.0f %8.2fx\n" label p.jobs
        p.wall_s p.explored (rate p) (rate p /. base))
    points;
  points

let json_points b key points =
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  let base = rate (List.hd points) in
  add "  \"%s\": [\n" key;
  List.iteri
    (fun i p ->
      add
        "    {\"jobs\": %d, \"wall_seconds\": %.3f, \"explored\": %d, \
         \"candidates_per_sec\": %.0f, \"scaling_vs_jobs1\": %.2f}%s\n"
        p.jobs p.wall_s p.explored (rate p) (rate p /. base)
        (if i = List.length points - 1 then "" else ","))
    points;
  add "  ],\n"

let run ?(quick = false) (_ : Bench_common.config) =
  mismatch := false;
  Bench_common.heading
    "multicore search: domain-parallel exhaustive + beam scaling";
  let delay = if quick then 0.0015 else 0.003 in
  let threshold = if quick then 2.0 else 3.0 in
  let op = bench_op () in
  let budget = Auto_scheduler.space_total Auto_scheduler.default_config op + 1 in
  Printf.printf
    "op %s | space_total %d (full enumeration) | measure delay %.1f ms\n"
    op.Linalg.op_name budget (delay *. 1000.0);

  Bench_common.subheading "exhaustive prefix-sharing search";
  let config =
    { Auto_scheduler.default_config with Auto_scheduler.max_schedules = budget }
  in
  let exhaustive =
    run_scaling ~label:"exhaustive" ~delay
      ~run_search:(fun ~jobs ?pool ev ->
        Auto_scheduler.search ~config ~jobs ?pool ev op)
      ~fp:search_fp
  in

  Bench_common.subheading "beam search, per-depth parallel scoring";
  (* Beam parallelism is per-depth with a selection barrier between
     depths, so scaling needs enough children per depth to keep the
     pool busy across the barrier; the default width 8 on this tiny op
     leaves single-digit candidates per wave. Width 16 is the regime
     the flag targets. *)
  let beam_config =
    { Beam_search.default_config with Beam_search.beam_width = 16 }
  in
  let beam =
    run_scaling ~label:"beam" ~delay
      ~run_search:(fun ~jobs ?pool ev ->
        Beam_search.search ~config:beam_config ~jobs ?pool ev op)
      ~fp:beam_fp
  in

  let scaling4 points =
    match List.find_opt (fun p -> p.jobs = 4) points with
    | Some p -> rate p /. rate (List.hd points)
    | None -> 0.0
  in
  let ex4 = scaling4 exhaustive in
  let beam4 = scaling4 beam in
  let pass = (not !mismatch) && ex4 >= threshold && beam4 >= threshold in
  Printf.printf
    "\nsearch gate: %s (exhaustive %.2fx, beam %.2fx at jobs 4; threshold \
     %.1fx%s)\n"
    (if pass then "PASS" else "FAIL")
    ex4 beam4 threshold
    (if !mismatch then "; MISMATCH present" else "");

  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"bench\": \"search\",\n";
  add "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  add "  \"op\": \"%s\",\n" op.Linalg.op_name;
  add "  \"measure_delay_ms\": %.1f,\n" (delay *. 1000.0);
  json_points b "exhaustive" exhaustive;
  json_points b "beam" beam;
  add "  \"scaling_jobs4\": {\"exhaustive\": %.2f, \"beam\": %.2f},\n" ex4
    beam4;
  add "  \"threshold\": %.1f,\n" threshold;
  add "  \"identical_across_jobs\": %b,\n" (not !mismatch);
  add "  \"gate_pass\": %b\n" pass;
  add "}\n";
  let path = "BENCH_search.json" in
  (* Atomic (temp + rename): a reader or a crash mid-run never sees a
     half-written artifact. *)
  Util.Atomic_file.write_string ~path (Buffer.contents b);
  Printf.printf "wrote %s%s\n" path
    (if !mismatch then " (MISMATCH present!)" else "")
