(* Learned cost-model surrogate: collect -> train -> staged re-ranking.

   Four phases, mirroring the production pipeline:

   1. collect: exact searches over a training op set with the
      evaluator's measurement tap on, filling a Surrogate.Dataset_log
      (per machine profile in full mode);
   2. train: deterministic seeded fit of the MLP latency predictor on
      the log, checkpoint round-tripped through save/load before use —
      the gate asserts validation loss decreased;
   3. staged vs exact: per held-out eval op, wall-clock and best-found
      schedule of the exact search vs the staged search (surrogate
      ranks the whole candidate set in one batched forward, top
      rerank_k get the exact model). Budgets are per-case so every
      deep-nest case runs in the budget < space sampling regime — the
      regime the surrogate exists for. The gates assert the staged
      best is within 2% schedule cost of the exact best on EVERY case,
      and that the deep-nest cases consider candidates >= 5x faster
      (full mode). The elementwise rows (add, relu) are context, not
      throughput-gated: a 2-deep pointwise nest costs the exact model
      about as little as the surrogate, so staging cannot and need not
      win there;
   4. fallback: without a ranker, search_staged must be byte-identical
      to the exact search.

   Greppable verdicts ("surrogate gate: ... : PASS") feed the CI gate;
   the committed full run is BENCH_surrogate.json and EXPERIMENTS.md
   records the interpretation. *)

let now () = Unix.gettimeofday ()

(* -- op sets ----------------------------------------------------------- *)

let conv ~hw ~c ~k ~f ~s =
  Linalg.conv2d
    {
      Linalg.batch = 1;
      in_h = hw;
      in_w = hw;
      channels = c;
      kernel_h = k;
      kernel_w = k;
      filters = f;
      stride = s;
    }

let pool ~hw ~c ~k ~s =
  Linalg.maxpool
    {
      Linalg.p_batch = 1;
      p_in_h = hw;
      p_in_w = hw;
      p_channels = c;
      p_kernel = k;
      p_stride = s;
    }

(* Training ops: one small-but-rich search space per family, shapes
   deliberately different from the eval set below. *)
let train_ops ~quick =
  let base =
    [
      Linalg.matmul ~m:64 ~n:96 ~k:32 ();
      Linalg.matmul ~m:128 ~n:64 ~k:128 ();
      Linalg.batch_matmul ~b:4 ~m:48 ~n:32 ~k:64 ();
      conv ~hw:12 ~c:4 ~k:3 ~f:8 ~s:1;
      pool ~hw:24 ~c:16 ~k:2 ~s:2;
      Linalg.add [| 192; 192 |];
      Linalg.relu [| 256; 96 |];
    ]
  in
  if quick then base
  else
    base
    @ [
        Linalg.matmul ~m:96 ~n:96 ~k:96 ();
        Linalg.matmul ~m:256 ~n:128 ~k:64 ();
        Linalg.batch_matmul ~b:2 ~m:64 ~n:64 ~k:32 ();
        conv ~hw:10 ~c:8 ~k:3 ~f:4 ~s:1;
        conv ~hw:16 ~c:4 ~k:2 ~f:8 ~s:2;
        pool ~hw:16 ~c:8 ~k:2 ~s:2;
        pool ~hw:32 ~c:4 ~k:4 ~s:4;
        Linalg.add [| 384; 128 |];
        Linalg.relu [| 128; 384 |];
      ]

(* Eval ops: held out from training. Per-case budgets keep every
   deep-nest case in the budget < space sampling regime, where each
   exact evaluation replays the whole schedule ([Sched_state.apply_all]
   plus the cost model) and the staged search has real work to save.
   [gated] marks the cases whose throughput feeds the >= 5x gate; the
   elementwise rows are context only (see the header comment). *)
type eval_case = {
  e_label : string;
  e_op : Linalg.t;
  e_tiles : int list;
  e_budget : int;
  gated : bool;
}

let eval_cases ~quick =
  let case e_label e_op e_tiles e_budget gated =
    { e_label; e_op; e_tiles; e_budget; gated }
  in
  let matmul = case "matmul_48x48x48" (Linalg.matmul ~m:48 ~n:48 ~k:48 ()) [] 4000 true in
  let add = case "add_256x256" (Linalg.add [| 256; 256 |]) [] 4000 false in
  if quick then [ matmul; add ]
  else
    [
      matmul;
      case "batch_matmul_8x32x32x32"
        (Linalg.batch_matmul ~b:8 ~m:32 ~n:32 ~k:32 ())
        [] 20000 true;
      case "conv2d_14x14x8_k3_f16" (conv ~hw:14 ~c:8 ~k:3 ~f:16 ~s:1) [] 20000 true;
      case "maxpool_28x28x32_k2" (pool ~hw:28 ~c:32 ~k:2 ~s:2) [ 2; 4; 7; 14 ]
        12000 true;
      add;
      case "relu_384x128" (Linalg.relu [| 384; 128 |]) [] 4000 false;
    ]

(* -- phase 1: collect -------------------------------------------------- *)

let collect ~quick ~budget machines ops =
  let log = Surrogate.Dataset_log.create () in
  let t0 = now () in
  List.iter
    (fun machine ->
      let ev = Evaluator.create ~machine () in
      Surrogate.Dataset_log.attach log ev;
      let config =
        { Auto_scheduler.default_config with Auto_scheduler.max_schedules = budget }
      in
      List.iter (fun op -> ignore (Auto_scheduler.search ~config ev op)) ops;
      Surrogate.Dataset_log.detach ev)
    machines;
  let wall = now () -. t0 in
  let s = Surrogate.Dataset_log.stats log in
  Printf.printf
    "collected %d entries in %.2f s (%d ops x %d machines, budget %d%s)\n"
    s.Surrogate.Dataset_log.added wall (List.length ops)
    (List.length machines) budget
    (if quick then ", quick" else "");
  log

(* -- phase 3: staged vs exact ------------------------------------------ *)

type point = {
  label : string;
  candidates : int;  (* candidate set both variants consider *)
  budget : int;
  p_gated : bool;  (* counts toward the throughput gate *)
  exact_wall : float;
  staged_wall : float;
  exact_speedup : float;
  staged_speedup : float;
  exact_explored : int;
  staged_explored : int;
  scored : int;  (* surrogate forwards in the staged run *)
}

let ratio p = p.exact_wall /. p.staged_wall

(* Schedule-cost regression of the staged result, in percent: how much
   slower the staged best-found schedule would run than the exact best
   (0 when staged finds an equal or better schedule). *)
let regression_pct p =
  Float.max 0.0 ((p.exact_speedup /. p.staged_speedup -. 1.0) *. 100.0)

(* Both variants run twice from cold state (fresh evaluator, fresh
   ranker) and keep the faster wall — single-shot timings on a shared
   container are too noisy to gate on. Results are deterministic, so
   the repetitions agree on everything but the clock. *)
let reps = 3

let staged_vs_exact ~rerank_k model
    { e_label = label; e_op = op; e_tiles; e_budget; gated } =
  let config =
    {
      Auto_scheduler.default_config with
      Auto_scheduler.max_schedules = e_budget;
      tile_sizes = e_tiles;
    }
  in
  let exact = ref None and exact_wall = ref infinity in
  for _ = 1 to reps do
    let ev = Evaluator.create () in
    let t0 = now () in
    let r = Auto_scheduler.search ~config ev op in
    exact_wall := Float.min !exact_wall (now () -. t0);
    exact := Some r
  done;
  let exact = Option.get !exact in
  let staged = ref None and staged_wall = ref infinity in
  let scored = ref 0 in
  for _ = 1 to reps do
    let ranker = Surrogate.Ranker.create ~machine:Machine.e5_2680_v4 model in
    let ev = Evaluator.create () in
    Surrogate.Ranker.attach ranker ev;
    let before = (Surrogate.Counters.stats ()).Surrogate.Counters.scored in
    Surrogate.Counters.incr_searches ();
    let t0 = now () in
    let r =
      Auto_scheduler.search_staged ~config
        ~ranker:(Surrogate.Ranker.schedule_scorer ranker op)
        ~rerank_k ev op
    in
    staged_wall := Float.min !staged_wall (now () -. t0);
    Surrogate.Counters.add_reranked r.Auto_scheduler.explored;
    scored := (Surrogate.Counters.stats ()).Surrogate.Counters.scored - before;
    staged := Some r
  done;
  let staged = Option.get !staged in
  {
    label;
    candidates = exact.Auto_scheduler.explored;
    budget = e_budget;
    p_gated = gated;
    exact_wall = !exact_wall;
    staged_wall = !staged_wall;
    exact_speedup = exact.Auto_scheduler.best_speedup;
    staged_speedup = staged.Auto_scheduler.best_speedup;
    exact_explored = exact.Auto_scheduler.explored;
    staged_explored = staged.Auto_scheduler.explored;
    scored = !scored;
  }

(* -- phase 4: fallback differential ------------------------------------ *)

let fingerprint (r : Auto_scheduler.result) =
  Printf.sprintf "%s|%.17g|%d"
    (Schedule.to_string r.Auto_scheduler.best_schedule)
    r.Auto_scheduler.best_speedup r.Auto_scheduler.explored

let fallback_identical () =
  List.for_all
    (fun op ->
      let a = Auto_scheduler.search (Evaluator.create ()) op in
      let b = Auto_scheduler.search_staged (Evaluator.create ()) op in
      fingerprint a = fingerprint b)
    [ Linalg.matmul ~m:48 ~n:48 ~k:48 (); conv ~hw:8 ~c:4 ~k:3 ~f:4 ~s:1 ]

(* -- harness ----------------------------------------------------------- *)

let geomean = function
  | [] -> 0.0
  | xs ->
      exp
        (List.fold_left (fun acc x -> acc +. log x) 0.0 xs
        /. float_of_int (List.length xs))

let gate name ok =
  Printf.printf "surrogate gate: %s : %s\n" name (if ok then "PASS" else "FAIL");
  ok

let json_of_results ~quick (report : Surrogate.Model.report) points ~ratio_gm
    ~max_regression ~fallback_ok ~all_ok =
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"bench\": \"surrogate\",\n";
  add "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  add "  \"training\": {\n";
  add "    \"examples\": %d, \"train\": %d, \"val\": %d, \"epochs\": %d,\n"
    report.Surrogate.Model.examples report.Surrogate.Model.train_examples
    report.Surrogate.Model.val_examples report.Surrogate.Model.epochs_run;
  add "    \"initial_val_mse\": %.5f, \"final_val_mse\": %.5f, \"val_spearman\": %.4f\n"
    report.Surrogate.Model.initial_val_loss
    report.Surrogate.Model.val_losses.(report.Surrogate.Model.epochs_run - 1)
    report.Surrogate.Model.spearman;
  add "  },\n";
  add "  \"staged_vs_exact\": [\n";
  List.iteri
    (fun i p ->
      add
        "    {\"op\": \"%s\", \"candidates\": %d, \"budget\": %d, \
         \"throughput_gated\": %b, \"exact_wall_s\": %.4f, \
         \"staged_wall_s\": %.4f, \"candidates_per_sec_ratio\": %.2f, \
         \"exact_best_speedup\": %.2f, \"staged_best_speedup\": %.2f, \
         \"cost_regression_pct\": %.3f, \"exact_evals\": %d, \
         \"staged_exact_evals\": %d, \"surrogate_scored\": %d}%s\n"
        p.label p.candidates p.budget p.p_gated p.exact_wall p.staged_wall
        (ratio p) p.exact_speedup p.staged_speedup (regression_pct p)
        p.exact_explored p.staged_explored p.scored
        (if i = List.length points - 1 then "" else ","))
    points;
  add "  ],\n";
  add "  \"candidates_per_sec_ratio_geomean_gated\": %.2f,\n" ratio_gm;
  add "  \"max_cost_regression_pct\": %.3f,\n" max_regression;
  add "  \"fallback_byte_identical\": %b,\n" fallback_ok;
  add "  \"pass\": %b\n" all_ok;
  add "}\n";
  Buffer.contents b

let run ?(quick = false) (c : Bench_common.config) =
  Bench_common.heading
    "learned cost-model surrogate: evaluation logging, training, staged re-ranking";

  Bench_common.subheading "collect (exact searches with the measurement tap on)";
  let machines =
    if quick then [ Machine.e5_2680_v4 ]
    else [ Machine.e5_2680_v4; Machine.avx512_server ]
  in
  let log =
    collect ~quick ~budget:(if quick then 250 else 600) machines
      (train_ops ~quick)
  in

  Bench_common.subheading "train (seeded, deterministic)";
  let entries = Surrogate.Dataset_log.entries log in
  let model = Surrogate.Model.create ~seed:(c.Bench_common.seed + 3) () in
  let epochs = if quick then 8 else 30 in
  let t0 = now () in
  let report =
    Surrogate.Model.fit ~epochs ~seed:(c.Bench_common.seed + 3) model entries
  in
  Printf.printf
    "fit %d examples (%d train / %d val) in %.2f s: val mse %.4f -> %.4f, \
     spearman %.3f\n"
    report.Surrogate.Model.examples report.Surrogate.Model.train_examples
    report.Surrogate.Model.val_examples (now () -. t0)
    report.Surrogate.Model.initial_val_loss
    report.Surrogate.Model.val_losses.(epochs - 1)
    report.Surrogate.Model.spearman;
  (* Round-trip through the checkpoint format: the staged runs below
     use the LOADED model, so a format bug cannot pass the gates. *)
  let ckpt = Filename.temp_file "surrogate_bench" ".ckpt" in
  Surrogate.Model.save model ~path:ckpt;
  let loaded =
    match Surrogate.Model.load ~path:ckpt with
    | Ok m -> m
    | Error e -> failwith ("checkpoint roundtrip failed: " ^ e)
  in
  (try Sys.remove ckpt with Sys_error _ -> ());

  Bench_common.subheading "staged re-ranking vs exact search (held-out ops)";
  let rerank_k = 192 in
  let points = List.map (staged_vs_exact ~rerank_k loaded) (eval_cases ~quick) in
  Printf.printf "%-24s %9s %10s %10s %7s %9s %9s %8s\n" "op" "cands"
    "exact (s)" "staged (s)" "ratio" "exact sp" "staged sp" "regr %";
  List.iter
    (fun p ->
      Printf.printf "%-24s %9d %10.4f %10.4f %6.1fx %8.1fx %8.1fx %7.3f%s\n"
        p.label p.candidates p.exact_wall p.staged_wall (ratio p)
        p.exact_speedup p.staged_speedup (regression_pct p)
        (if p.p_gated then "" else "  (context)"))
    points;

  Bench_common.subheading "gates";
  (* Throughput is gated on the deep-nest cases only: an elementwise
     2-deep nest is nearly as cheap for the exact path as for a
     batched surrogate forward, so staging is not expected to win
     there (the context rows above show it stays a modest win, not a
     loss). The <= 2% cost-regression gate covers EVERY case. *)
  let gated = List.filter (fun p -> p.p_gated) points in
  let ratio_gm = geomean (List.map ratio gated) in
  let max_regression =
    List.fold_left (fun acc p -> Float.max acc (regression_pct p)) 0.0 points
  in
  Printf.printf
    "candidates/sec ratio geomean (deep-nest cases): %.2fx; max cost \
     regression (all cases): %.3f%%\n"
    ratio_gm max_regression;
  let fallback_ok = fallback_identical () in
  let loss_ok =
    gate "val loss decreased"
      (report.Surrogate.Model.val_losses.(epochs - 1)
      < report.Surrogate.Model.initial_val_loss)
  in
  let tol_ok = gate "staged within tolerance" (max_regression <= 2.0) in
  let thr_ok =
    gate "staged throughput" (ratio_gm >= if quick then 1.5 else 5.0)
  in
  let fb_ok = gate "fallback byte-identical" fallback_ok in
  let all_ok = loss_ok && tol_ok && thr_ok && fb_ok in
  ignore (gate "overall" all_ok);
  Printf.printf "surrogate gate: %s\n" (if all_ok then "PASS" else "FAIL");

  let json =
    json_of_results ~quick report points ~ratio_gm ~max_regression
      ~fallback_ok ~all_ok
  in
  let path = "BENCH_surrogate.json" in
  Util.Atomic_file.write_string ~path json;
  Printf.printf "\nwrote %s\n" path
