(* Figure 7 — Immediate vs Final reward: achieved speedup over training
   iterations, and over (simulated) training wall-clock time. The
   wall-clock axis uses the environment's measurement accounting: every
   compile+run the reward function demands is charged, which is exactly
   why the paper found Final reward much cheaper to train. *)

type point = { iteration : int; speedup : float; sim_hours : float }

let train_mode (c : Bench_common.config) ~mode ~op =
  let cfg = Env_config.with_reward_mode mode Env_config.default in
  let env = Env.create cfg in
  let rng = Util.Rng.create c.Bench_common.seed in
  let policy =
    Policy.create ~hidden:c.Bench_common.hidden ~backbone_layers:2 rng cfg
  in
  let config =
    {
      Trainer.default_config with
      Trainer.ppo =
        { Ppo.default_config with Ppo.entropy_coef = c.Bench_common.entropy_coef };
      iterations = c.Bench_common.ablation_iterations;
      seed = c.Bench_common.seed;
    }
  in
  let points = ref [] in
  let _ =
    Trainer.train config env policy ~ops:[| op |] ~callback:(fun s ->
        points :=
          {
            iteration = s.Trainer.iteration;
            speedup = s.Trainer.mean_final_speedup;
            sim_hours = s.Trainer.measurement_seconds /. 3600.0;
          }
          :: !points)
  in
  List.rev !points

let run (c : Bench_common.config) =
  Bench_common.heading "Figure 7 — Immediate vs Final reward (single Matmul)";
  let op = Linalg.matmul ~m:1024 ~n:1024 ~k:1024 () in
  Printf.printf "op: %s | %d PPO iterations each\n%!" op.Linalg.op_name
    c.Bench_common.ablation_iterations;
  let final = train_mode c ~mode:Env_config.Final ~op in
  let immediate = train_mode c ~mode:Env_config.Immediate ~op in
  Printf.printf "\n%-10s | %24s | %24s\n" "" "Final reward" "Immediate reward";
  Printf.printf "%-10s | %11s %12s | %11s %12s\n" "iteration" "speedup x"
    "sim hours" "speedup x" "sim hours";
  List.iter2
    (fun (f : point) (i : point) ->
      Printf.printf "%-10d | %11.1f %12.2f | %11.1f %12.2f\n" f.iteration
        f.speedup f.sim_hours i.speedup i.sim_hours)
    final immediate;
  let last l = List.nth l (List.length l - 1) in
  let lf = last final and li = last immediate in
  Printf.printf
    "\nFinal reward reaches %.1fx using %.2f simulated hours of measurements;\n"
    lf.speedup lf.sim_hours;
  Printf.printf
    "Immediate reward reaches %.1fx but needs %.2f hours (%.1fx more measurement time).\n"
    li.speedup li.sim_hours
    (li.sim_hours /. Float.max lf.sim_hours 1e-9);
  Printf.printf
    "(paper: comparable speedups, Final reward significantly cheaper to train)\n"
