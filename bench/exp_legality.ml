(* Legality-mask experiment: what the static dependence analysis adds on
   top of the paper's syntactic masks (EXPERIMENTS.md "Static legality
   masks").

   Three questions:
   1. Audit — on the generated dataset, how often does a verdict differ
      between paper-masks-only and masks intersected with the analysis?
      (Expected: never. The paper's syntactic rules — reduction dims not
      parallelized, vectorize terminal — are exactly what the dependence
      tests derive for matmul/conv/pool-style ops. The analysis earns
      its keep on nests the syntactic rules cannot see, cf. the
      adversarial examples under examples/nests/.)
   2. Cost — microseconds per mask computation with and without the
      analysis, and per Legality.analyze call as nests grow under
      tiling.
   3. Outcome — random-policy episode reward and wall time under both
      configurations, same seeds: identical rewards expected on the
      dataset, with the analysis overhead quantified. *)

let geomean xs =
  match xs with
  | [] -> 0.0
  | _ ->
      exp
        (List.fold_left (fun a x -> a +. log (Float.max x 1e-9)) 0.0 xs
        /. float_of_int (List.length xs))

let count_mask (m : Action_space.masks) =
  let bools b = Array.fold_left (fun a x -> if x then a + 1 else a) 0 b in
  bools m.Action_space.t_mask
  + Array.fold_left (fun a r -> a + bools r) 0 m.Action_space.tile_mask
  + Array.fold_left (fun a r -> a + bools r) 0 m.Action_space.par_mask
  + bools m.Action_space.swap_mask

(* entries admitted by [loose] but rejected by [strict] *)
let tightened (strict : Action_space.masks) (loose : Action_space.masks) =
  let row a b =
    let n = ref 0 in
    Array.iteri (fun i x -> if b.(i) && not x then incr n) a;
    !n
  in
  let rows a b =
    let n = ref 0 in
    Array.iteri (fun i r -> n := !n + row r b.(i)) a;
    !n
  in
  row strict.Action_space.t_mask loose.Action_space.t_mask
  + rows strict.Action_space.tile_mask loose.Action_space.tile_mask
  + rows strict.Action_space.par_mask loose.Action_space.par_mask
  + row strict.Action_space.swap_mask loose.Action_space.swap_mask

let audit (c : Bench_common.config) =
  Bench_common.subheading "Mask audit over the generated dataset";
  let split = Generator.generate ~seed:c.Bench_common.seed () in
  let with_cfg = Env_config.default in
  let without_cfg = Env_config.with_static_legality false Env_config.default in
  let ops = Array.append split.Generator.train split.Generator.validation in
  let total = ref 0 and removed = ref 0 and unsound = ref 0 in
  Array.iter
    (fun op ->
      let st = Sched_state.init op in
      let strict = Action_space.masks with_cfg st in
      let loose = Action_space.masks without_cfg st in
      total := !total + count_mask loose;
      removed := !removed + tightened strict loose;
      (* the strict mask may never admit what the loose one rejects *)
      unsound := !unsound + tightened loose strict)
    ops;
  Printf.printf "%d ops | %d mask entries admitted by paper rules\n"
    (Array.length ops) !total;
  Printf.printf "entries removed by the dependence analysis : %d\n" !removed;
  Printf.printf "entries added (must be 0)                  : %d\n" !unsound;
  if !removed = 0 then
    Printf.printf
      "-> the syntactic rules are exactly sound on the dataset ops; see\n\
      \   examples/nests/ for nests where only the analysis gets it right\n"

let cost (_c : Bench_common.config) =
  Bench_common.subheading "Analysis cost per mask computation";
  let op = Linalg.matmul ~m:512 ~n:512 ~k:512 () in
  let time calls f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to calls do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int calls *. 1e6
  in
  let with_cfg = Env_config.default in
  let without_cfg = Env_config.with_static_legality false Env_config.default in
  Printf.printf "%-44s %12s\n" "state" "us/masks";
  let states =
    [
      ("matmul, untransformed (3 loops)", Sched_state.init op);
      ( "matmul tiled+parallelized (8 loops)",
        Result.get_ok
          (Sched_state.apply_all op
             [
               Schedule.Parallelize [| 64; 64; 0 |]; Schedule.Tile [| 8; 64; 64 |];
             ]) );
    ]
  in
  List.iter
    (fun (label, st) ->
      let us_on = time 200 (fun () -> ignore (Action_space.masks with_cfg st)) in
      let us_off =
        time 200 (fun () -> ignore (Action_space.masks without_cfg st))
      in
      Printf.printf "%-44s %12.1f   (syntactic only: %.1f)\n" label us_on us_off)
    states

let episodes (c : Bench_common.config) =
  Bench_common.subheading
    "Random-policy episodes: static masks vs paper masks only";
  let split = Generator.generate ~seed:c.Bench_common.seed () in
  let n_ops = min 12 (Array.length split.Generator.train) in
  let ops = Array.sub split.Generator.train 0 n_ops in
  let per_op = 10 in
  let run cfg =
    let env = Env.create cfg in
    let rng = Util.Rng.create (c.Bench_common.seed + 5) in
    let speedups = ref [] in
    let t0 = Unix.gettimeofday () in
    Array.iter
      (fun op ->
        for _ = 1 to per_op do
          ignore (Env.reset env op);
          let menu =
            Action_space.simple_menu cfg ~n_loops:(Linalg.n_loops op)
          in
          let finished = ref false in
          while not !finished do
            let st = Env.state env in
            let mask = Action_space.simple_mask cfg st menu in
            let legal = ref [] in
            Array.iteri (fun i b -> if b then legal := i :: !legal) mask;
            let tr =
              match !legal with
              | [] -> None
              | l ->
                  let i = List.nth l (Util.Rng.int rng (List.length l)) in
                  let ctx = Action_space.legality_of cfg st in
                  Action_space.legalize ?ctx st
                    menu.(i).Action_space.transformation
            in
            let r = Env.step env tr in
            if r.Env.terminal then finished := true
          done;
          speedups := Env.current_speedup env :: !speedups
        done)
      ops;
    (Unix.gettimeofday () -. t0, geomean !speedups)
  in
  let secs_on, sp_on = run Env_config.default in
  let secs_off, sp_off =
    run (Env_config.with_static_legality false Env_config.default)
  in
  Printf.printf "%-28s %14s %18s\n" "masks" "wall (s)" "geomean speedup";
  Printf.printf "%-28s %14.2f %18.2fx\n" "paper + static legality" secs_on sp_on;
  Printf.printf "%-28s %14.2f %18.2fx\n" "paper only" secs_off sp_off;
  Printf.printf
    "(identical speedups expected: on dataset ops the verdicts coincide)\n"

let run (c : Bench_common.config) =
  Bench_common.heading
    "Legality experiment: dependence-analysis masks vs paper masks";
  audit c;
  cost c;
  episodes c
