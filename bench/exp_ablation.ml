(* Extension ablations (beyond the paper's figures):

   1. search strategies at equal evaluation budget — exhaustive (the
      paper's baseline), beam search (the Halide/Tiramisu-style search
      the paper positions itself against), and sampling from the trained
      RL agent;
   2. the learned cost model of §6.1 (future work): regression quality
      and the measurement time it amortizes;
   3. the unrolling extension (§6.1): effect on scalar reductions. *)

let strategies (c : Bench_common.config) (trained : Bench_common.trained) =
  Bench_common.subheading
    "Search strategies at equal evaluation budget (speedup over base)";
  let ev = Env.evaluator trained.Bench_common.env in
  let rng = Util.Rng.create (c.Bench_common.seed + 9) in
  Printf.printf "%-34s %8s %12s %12s %12s\n" "operation" "budget" "exhaustive"
    "beam" "RL sampling";
  List.iter
    (fun op ->
      let beam = Beam_search.search ev op in
      let budget = beam.Beam_search.explored in
      let exhaustive =
        Auto_scheduler.search
          ~config:
            {
              Auto_scheduler.default_config with
              Auto_scheduler.max_schedules = budget;
            }
          ev op
      in
      let _, rl =
        Trainer.sampled_best rng trained.Bench_common.env
          trained.Bench_common.policy op ~trials:budget
      in
      Printf.printf "%-34s %8d %12.1f %12.1f %12.1f\n%!" op.Linalg.op_name budget
        exhaustive.Auto_scheduler.best_speedup beam.Beam_search.best_speedup rl)
    [
      Linalg.matmul ~m:1024 ~n:1024 ~k:1024 ();
      Linalg.conv2d
        { Linalg.batch = 1; in_h = 56; in_w = 56; channels = 64; kernel_h = 3;
          kernel_w = 3; filters = 128; stride = 1 };
      Linalg.batch_matmul ~b:8 ~m:256 ~n:256 ~k:256 ();
      Linalg.maxpool
        { Linalg.p_batch = 1; p_in_h = 112; p_in_w = 112; p_channels = 64;
          p_kernel = 2; p_stride = 2 };
    ]

let learned_cost (c : Bench_common.config) =
  Bench_common.subheading "Learned cost model (paper §6.1 future work)";
  let cfg = Env_config.default in
  let rng = Util.Rng.create (c.Bench_common.seed + 10) in
  let ev = Evaluator.create () in
  let split = Generator.generate ~seed:c.Bench_common.seed () in
  let train_ops = Array.sub split.Generator.train 0 200 in
  let t0 = Unix.gettimeofday () in
  let train_data = Learned_cost.collect ~samples:768 rng cfg ev ~ops:train_ops in
  let test_data =
    Learned_cost.collect ~samples:128 rng cfg ev ~ops:split.Generator.validation
  in
  let collect_s = Unix.gettimeofday () -. t0 in
  let model = Learned_cost.create ~hidden:96 ~layers:2 rng cfg in
  let t1 = Unix.gettimeofday () in
  let report = Learned_cost.fit ~epochs:60 model train_data in
  let fit_s = Unix.gettimeofday () -. t1 in
  let rho = Learned_cost.rank_correlation model test_data in
  Printf.printf
    "dataset: 768 measured schedules (%.1fs) | fit: MSE %.3f -> %.3f in %.1fs\n"
    collect_s report.Learned_cost.initial_loss report.Learned_cost.final_loss fit_s;
  Printf.printf
    "held-out Spearman rank correlation on unseen validation ops: %.3f\n" rho;
  (* What the model amortizes: each real measurement costs a compile+run
     round (the paper's motivation for a learned model). *)
  let per_measure = cfg.Env_config.compile_seconds in
  Printf.printf
    "replacing the oracle during training would save ~%.1f simulated hours per\n\
     1000 PPO iterations (batch 64, Final reward: one compile+run per episode,\n\
     ~%.0fs each)\n"
    (1000.0 *. 64.0 /. 4.0 *. per_measure /. 3600.0)
    per_measure

let unrolling () =
  Bench_common.subheading "Unrolling extension (scalar reductions)";
  let op = Linalg.matmul ~m:512 ~n:512 ~k:512 () in
  let ev = Evaluator.create () in
  let base = Evaluator.base_seconds ev op in
  Printf.printf "%-28s %12s %10s\n" "schedule" "time (s)" "speedup";
  List.iter
    (fun sched_str ->
      match Schedule.of_string sched_str with
      | Error e -> Printf.printf "%-28s bad schedule: %s\n" sched_str e
      | Ok sched -> (
          match Evaluator.schedule_speedup ev op sched with
          | Error e -> Printf.printf "%-28s rejected: %s\n" sched_str e
          | Ok sp ->
              Printf.printf "%-28s %12.6f %9.1fx\n" sched_str (base /. sp) sp))
    [ "U(2)"; "U(4)"; "U(8)"; "U(16)"; "T(8,8,64) U(8)"; "V" ];
  Printf.printf
    "(unrolling breaks the memory-accumulator chain of unvectorized reductions;\n\
    \ vectorization subsumes it, which is why the paper's action space omits it)\n"

let portability () =
  Bench_common.subheading
    "Schedule portability across machines (best beam schedule per machine)";
  let machines =
    [
      ("xeon (paper)", Machine.e5_2680_v4);
      ("avx512 server", Machine.avx512_server);
      ("mobile quad", Machine.mobile_quad);
    ]
  in
  let op = Linalg.matmul ~m:1024 ~n:1024 ~k:1024 () in
  let tuned =
    List.map
      (fun (name, m) ->
        let ev = Evaluator.create ~machine:m () in
        let r = Beam_search.search ev op in
        (name, m, r.Beam_search.best_schedule))
      machines
  in
  Printf.printf "%-16s" "run on \\ tuned for";
  List.iter (fun (name, _, _) -> Printf.printf " %16s" name) tuned;
  Printf.printf "\n";
  List.iter
    (fun (run_name, run_machine) ->
      let ev = Evaluator.create ~machine:run_machine () in
      Printf.printf "%-16s" run_name;
      List.iter
        (fun (_, _, sched) ->
          match Evaluator.schedule_speedup ev op sched with
          | Ok sp -> Printf.printf " %15.1fx" sp
          | Error _ -> Printf.printf " %16s" "-")
        tuned;
      Printf.printf "\n")
    machines;
  Printf.printf
    "(diagonal = natively tuned; off-diagonal shows the penalty of reusing a\n\
    \ schedule tuned for another machine — why per-target search matters)\n"

let fusion () =
  Bench_common.subheading "Fusion extension (bias_add + relu, 2048x2048)";
  let shape = [| 2048; 2048 |] in
  let producer = Linalg.bias_add shape in
  let consumer = Linalg.relu shape in
  let ev = Evaluator.create () in
  match Fusion.fuse ~producer ~consumer ~consumer_input:0 with
  | Error e -> Printf.printf "fusion failed: %s\n" e
  | Ok fused ->
      let best op =
        let r = Beam_search.search ev op in
        Evaluator.base_seconds ev op /. r.Beam_search.best_speedup
      in
      let separate = best producer +. best consumer in
      let fused_t = best fused in
      Printf.printf "best scheduled, separate ops : %.6f s\n" separate;
      Printf.printf "best scheduled, fused op     : %.6f s (%.2fx faster)\n"
        fused_t (separate /. fused_t);
      Printf.printf
        "(the intermediate buffer round-trip disappears; the model prices the\n\
        \ saved memory traffic automatically)\n"

(* One mixed-dataset training run (where the exploration-collapse effect
   lives); returns (validation-matmul geomean with sampled inference,
   final entropy). *)
let quick_train ?(noise = 0.0) ?(entropy_coef = 0.01) ?features ~iterations seed =
  let cfg = Env_config.default in
  let cfg =
    match features with None -> cfg | Some f -> { cfg with Env_config.features = f }
  in
  let evaluator =
    Evaluator.create ~machine:cfg.Env_config.machine ~noise ~noise_seed:seed ()
  in
  let env = Env.create ~evaluator cfg in
  let rng = Util.Rng.create seed in
  let policy = Policy.create ~hidden:96 ~backbone_layers:2 rng cfg in
  let split = Generator.generate ~seed () in
  let config =
    {
      Trainer.default_config with
      Trainer.ppo = { Ppo.default_config with Ppo.entropy_coef };
      iterations;
      seed;
    }
  in
  let stats = Trainer.train config env policy ~ops:split.Generator.train in
  let entropy =
    (List.nth stats (List.length stats - 1)).Trainer.ppo_stats.Ppo.entropy_mean
  in
  (* evaluation uses a clean (noiseless) oracle *)
  let eval_env = Env.create cfg in
  let irng = Util.Rng.create (seed + 1) in
  let speedups = ref [] in
  Array.iter
    (fun op ->
      if Linalg.kind_name op = "matmul" then begin
        let _, greedy = Trainer.greedy_rollout eval_env policy op in
        let _, sampled = Trainer.sampled_best irng eval_env policy op ~trials:12 in
        speedups := Float.max greedy sampled :: !speedups
      end)
    split.Generator.validation;
  (Util.Stats.geomean !speedups, entropy)

let noise_vs_entropy (c : Bench_common.config) =
  Bench_common.subheading
    "Why entropy 0.03: measurement noise vs exploration (mixed dataset)";
  let iterations = 2 * c.Bench_common.ablation_iterations in
  Printf.printf "%d PPO iterations each; quality = geomean over the 15 validation matmuls\n"
    iterations;
  Printf.printf "%-42s %18s %10s\n" "training condition" "matmul geomean x"
    "entropy";
  List.iter
    (fun (label, noise, ent) ->
      let speedup, entropy =
        quick_train ~noise ~entropy_coef:ent ~iterations c.Bench_common.seed
      in
      Printf.printf "%-42s %18.1f %10.2f\n%!" label speedup entropy)
    [
      ("deterministic reward, ent 0.01 (paper cfg)", 0.0, 0.01);
      ("deterministic reward, ent 0.03 (ours)", 0.0, 0.03);
      ("10% measurement noise, ent 0.01", 0.1, 0.01);
    ];
  Printf.printf
    "(at the paper's coefficient the policy collapses — entropy ~0.1 — and\n\
    \ plateaus early; 0.03 keeps entropy ~1 and ends higher. Injecting synthetic\n\
    \ measurement noise does NOT substitute for entropy regularization here:\n\
    \ it adds gradient variance without preventing the collapse)\n"

let feature_ablation (c : Bench_common.config) =
  Bench_common.subheading "Observation feature ablation (mixed dataset)";
  let iterations = 2 * c.Bench_common.ablation_iterations in
  let all = Env_config.all_features in
  Printf.printf "%-34s %18s\n" "observation" "matmul geomean x";
  List.iter
    (fun (label, features) ->
      let speedup, _ =
        quick_train ~features ~entropy_coef:c.Bench_common.entropy_coef
          ~iterations c.Bench_common.seed
      in
      Printf.printf "%-34s %18.1f\n%!" label speedup)
    [
      ("all features (paper)", all);
      ("without history tensor", { all with Env_config.use_history = false });
      ("without access matrices",
       { all with Env_config.use_access_matrices = false });
      ("without loop info", { all with Env_config.use_loop_info = false });
    ];
  Printf.printf
    "(single-seed, directions only: the access matrices are the load-bearing\n\
    \ feature — without them the agent cannot see which loops index which\n\
    \ arrays and quality halves; the history tensor helps modestly; loop\n\
    \ info is largely redundant with the divisor masks at this scale)\n"

let run (c : Bench_common.config) (trained : Bench_common.trained) =
  Bench_common.heading "Extension ablations (beyond the paper)";
  strategies c trained;
  learned_cost c;
  unrolling ();
  fusion ();
  portability ();
  noise_vs_entropy c;
  feature_ablation c
