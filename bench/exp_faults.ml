(* Robustness micro-benchmark: what the retrying robust evaluator costs
   on top of the plain one, in real per-call time and in the simulated
   measurement budget it charges, across fault rates. Also prints a
   fault-sweep of training outcomes — how much injected flakiness a
   short PPO run tolerates before quality moves. *)

let per_call_overhead () =
  Bench_common.subheading
    "Per-call wall-clock overhead (1000 measurements of a scheduled matmul)";
  let op = Linalg.matmul ~m:512 ~n:512 ~k:512 () in
  let sched =
    match Schedule.of_string "P(64,64,0) T(8,64,64) S(1) V" with
    | Ok s -> s
    | Error e -> failwith e
  in
  let state = Result.get_ok (Sched_state.apply_all op sched) in
  let calls = 1000 in
  let time f =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to calls do
      f ()
    done;
    (Unix.gettimeofday () -. t0) /. float_of_int calls *. 1e6
  in
  let ev = Evaluator.create () in
  let plain_us = time (fun () -> ignore (Evaluator.state_seconds ev state)) in
  Printf.printf "%-34s %12s %14s %10s\n" "evaluator" "us/call" "simulated s"
    "degraded";
  Printf.printf "%-34s %12.2f %14s %10s\n" "plain" plain_us "-" "-";
  List.iter
    (fun rate ->
      let faults =
        if rate > 0.0 then
          Some (Faults.create ~config:(Faults.flaky ~rate ()) ~seed:7 ())
        else None
      in
      let rob = Robust_evaluator.create ?faults (Evaluator.create ()) in
      let charged = ref 0.0 in
      let us =
        time (fun () ->
            charged :=
              !charged
              +. (Robust_evaluator.measure rob state).Robust_evaluator.charged)
      in
      Printf.printf "%-34s %12.2f %14.3e %10d\n"
        (Printf.sprintf "robust, fault rate %.0f%%" (rate *. 100.0))
        us
        (!charged /. float_of_int calls)
        (Robust_evaluator.degraded_count rob))
    [ 0.0; 0.1; 0.3 ];
  Printf.printf
    "(the robust evaluator repeats each measurement >= %d times and retries\n\
    \ failures with backoff, so both columns grow with the fault rate; the\n\
    \ simulated column is what training budgets actually pay)\n"
    Robust_evaluator.default_config.Robust_evaluator.min_repeats

let fault_sweep (c : Bench_common.config) =
  Bench_common.subheading "Fault sweep: short PPO run vs injected fault rate";
  let iterations = c.Bench_common.ablation_iterations in
  let op = Linalg.matmul ~m:1024 ~n:1024 ~k:1024 () in
  Printf.printf "%d PPO iterations on %s, seed %d\n" iterations op.Linalg.op_name
    c.Bench_common.seed;
  Printf.printf "%-12s %12s %12s %12s %14s\n" "fault rate" "best x" "final x"
    "degraded" "simulated s";
  List.iter
    (fun rate ->
      let cfg = Env_config.default in
      let faults = Faults.create ~config:(Faults.flaky ~rate ()) ~seed:11 () in
      let robust = Robust_evaluator.create ~faults (Evaluator.create ()) in
      let env = Env.create ~robust cfg in
      let rng = Util.Rng.create c.Bench_common.seed in
      let policy =
        Policy.create ~hidden:c.Bench_common.hidden ~backbone_layers:2 rng cfg
      in
      let config =
        {
          Trainer.default_config with
          Trainer.ppo =
            { Ppo.default_config with Ppo.entropy_coef = c.Bench_common.entropy_coef };
          iterations;
          seed = c.Bench_common.seed;
        }
      in
      let stats = Trainer.train config env policy ~ops:[| op |] in
      let last = List.nth stats (List.length stats - 1) in
      Printf.printf "%-12s %12.1f %12.1f %12d %14.3e\n%!"
        (Printf.sprintf "%.0f%%" (rate *. 100.0))
        last.Trainer.best_speedup last.Trainer.mean_final_speedup
        last.Trainer.degraded_measurements last.Trainer.measurement_seconds)
    [ 0.0; 0.05; 0.1; 0.2 ];
  Printf.printf
    "(degraded measurements fall back to the cost-model estimate and are\n\
    \ flagged in the episode trace; training absorbs moderate fault rates\n\
    \ because the median-of-repeats reward stays unbiased)\n"

let run (c : Bench_common.config) =
  Bench_common.heading "Fault injection: robust-evaluator overhead and tolerance";
  per_call_overhead ();
  fault_sweep c
