(* Figure 5 + §5.2.1 + §5.2.2: execution times of base / RL /
   auto-scheduler / TensorFlow / TensorFlow-JIT on the 67 validation
   operations, with the paper's summary statistics. *)

type per_op = {
  op : Linalg.t;
  base : float;
  rl : float;
  rl_schedule : Schedule.t;
  auto : float;
  tf : float;
  tf_jit : float;
}

type result = { rows : per_op list; trained : Bench_common.trained }

let run (c : Bench_common.config) =
  Bench_common.heading
    "Figure 5 — execution time per method across the 67 benchmark operations";
  let split = Generator.generate ~seed:c.Bench_common.seed () in
  let trained = Bench_common.train_agent c ~ops:split.Generator.train in
  let ev = Env.evaluator trained.Bench_common.env in
  let rng = Util.Rng.create (c.Bench_common.seed + 1) in
  let auto_config =
    {
      Auto_scheduler.default_config with
      Auto_scheduler.max_schedules = c.Bench_common.autosched_budget;
    }
  in
  Printf.printf "\n%-34s %12s %10s %10s %10s %10s\n" "operation" "base (s)"
    "RL x" "auto x" "TF x" "TF-JIT x";
  let rows =
    Array.to_list
      (Array.map
         (fun op ->
           let base = Evaluator.base_seconds ev op in
           let rl_schedule, rl_speedup = Bench_common.rl_best rng trained c op in
           let auto = Auto_scheduler.search ~config:auto_config ev op in
           let tf = Tf_baseline.tf_seconds ev op in
           let tf_jit = Tf_baseline.tf_jit_seconds ev op in
           let row =
             {
               op;
               base;
               rl = base /. rl_speedup;
               rl_schedule;
               auto = base /. auto.Auto_scheduler.best_speedup;
               tf;
               tf_jit;
             }
           in
           Printf.printf "%-34s %12.3e %10.1f %10.1f %10.1f %10.1f\n%!"
             op.Linalg.op_name base (base /. row.rl) (base /. row.auto)
             (base /. row.tf) (base /. row.tf_jit);
           row)
         split.Generator.validation)
  in
  (* ---- §5.2.1: auto-scheduler and RL vs auto-scheduler ---- *)
  Bench_common.subheading "Summary §5.2.1 — RL vs the baseline auto-scheduler";
  let auto_speedups = List.map (fun r -> r.base /. r.auto) rows in
  Printf.printf "auto-scheduler speedup over base: average %.2f (paper 1948.75), geomean %.2f (paper 84.64)\n"
    (Bench_common.mean auto_speedups)
    (Bench_common.geomean auto_speedups);
  let rl_vs_auto = List.map (fun r -> r.auto /. r.rl) rows in
  Printf.printf "RL vs auto-scheduler geomean: %.2f (paper 1.1)\n"
    (Bench_common.geomean rl_vs_auto);
  let similar, slower, faster =
    List.fold_left
      (fun (s, sl, f) ratio ->
        if ratio > 1.1 then (s, sl, f + 1)
        else if ratio < 1.0 /. 1.1 then (s, sl + 1, f)
        else (s + 1, sl, f))
      (0, 0, 0) rl_vs_auto
  in
  Printf.printf
    "parity within 1.1x: %d/67 (paper 54) | RL slower: %d (paper 7) | RL faster: %d (paper 6)\n"
    similar slower faster;
  let slower_ratios = List.filter (fun r -> r < 1.0 /. 1.1) rl_vs_auto in
  if slower_ratios <> [] then
    Printf.printf "when slower, RL averages %.2fx of the auto-scheduler (paper 0.46x)\n"
      (Bench_common.mean slower_ratios);
  (* ---- §5.2.2: RL vs TensorFlow ---- *)
  Bench_common.subheading "Summary §5.2.2 — RL vs TensorFlow";
  let rl_vs_tf = List.map (fun r -> (r, r.tf /. r.rl)) rows in
  Printf.printf "overall geomean speedup vs TF: %.2f (paper 1.39)\n"
    (Bench_common.geomean (List.map snd rl_vs_tf));
  let by_kind kind =
    List.filter_map
      (fun (r, ratio) ->
        if Linalg.kind_name r.op = kind then Some ratio else None)
      rl_vs_tf
  in
  List.iter
    (fun (kind, paper_geo, paper_avg) ->
      let ratios = by_kind kind in
      Printf.printf
        "%-8s geomean %.2f (paper %.2f)   average %.2f (paper %s)\n" kind
        (Bench_common.geomean ratios)
        paper_geo (Bench_common.mean ratios) paper_avg)
    [
      ("matmul", 7.55, "9.42"); ("conv2d", 1.16, "1.49"); ("add", 1.05, "1.15");
      ("relu", 1.68, "3.04"); ("maxpool", 0.24, "-");
    ];
  let better = List.filter (fun (_, ratio) -> ratio > 1.1) rl_vs_tf in
  let comparable =
    List.filter (fun (_, ratio) -> ratio >= 1.0 /. 1.1 && ratio <= 1.1) rl_vs_tf
  in
  Printf.printf "RL better than TF on %d/67 ops, geomean %.2f (paper: 33 ops, 4.07)\n"
    (List.length better)
    (if better = [] then 1.0 else Bench_common.geomean (List.map snd better));
  Printf.printf "comparable on %d ops, geomean %.2f (paper: 14 ops, 1.09)\n"
    (List.length comparable)
    (if comparable = [] then 1.0
     else Bench_common.geomean (List.map snd comparable));
  { rows; trained }
