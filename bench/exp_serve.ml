(* Closed-loop load generator for the serving daemon (lib/serve).

   Three claims, each measured in-process against a real Server (worker
   pool, dispatcher, batcher — everything but the socket):

   1. result caching: a repeated sweep answers >= 10x faster than the
      cold sweep that populated the cache;
   2. micro-batching: closed-loop client concurrency 1 -> 2 -> 4 raises
      throughput monotonically ON ONE CORE, because fuller micro-batches
      amortize policy inference across concurrently advancing rollouts
      (the server stays at one worker domain; this is the batched
      forward pass paying off, not parallelism);
   3. admission control: with a tiny queue and many clients the server
      sheds with explicit overloaded replies while the latency of the
      accepted requests stays bounded.

   The committed quick run is BENCH_serve.json (written to the cwd);
   EXPERIMENTS.md records the interpretation. *)

let now () = Unix.gettimeofday ()

(* Blocking request over Server.submit: the reply callback (fired on a
   dispatcher/worker domain) hands the response back to the calling
   client thread. *)
let sync_call server req =
  let m = Mutex.create () in
  let c = Condition.create () in
  let slot = ref None in
  let t0 = now () in
  Serve.Server.submit server req (fun resp ->
      Mutex.lock m;
      slot := Some resp;
      Condition.broadcast c;
      Mutex.unlock m);
  Mutex.lock m;
  while !slot = None do
    Condition.wait c m
  done;
  Mutex.unlock m;
  let latency = now () -. t0 in
  (Option.get !slot, latency)

let optimize_req id spec =
  Serve.Protocol.Optimize
    { id; target = Serve.Protocol.Spec spec; deadline_ms = None }

let make_server ?(max_queue = 64) ?(max_batch = 8) ?(max_wait_ms = 1.0) ~hidden
    () =
  let engine =
    match
      Serve.Engine.create
        { Serve.Engine.default_config with Serve.Engine.hidden }
    with
    | Ok e -> e
    | Error e -> failwith ("exp_serve: engine: " ^ e)
  in
  Serve.Server.create
    ~config:
      {
        Serve.Server.workers = 1;
        batcher =
          {
            Serve.Batcher.max_queue;
            max_batch;
            max_wait_s = max_wait_ms /. 1000.0;
          };
      }
    engine

(* A pool of distinct specs so a throughput run is all cache misses:
   every request pays for a real rollout. *)
let distinct_specs n =
  List.init n (fun i ->
      let m = 16 + (8 * (i mod 13)) in
      let k = 16 + (8 * (i / 13 mod 13)) in
      Printf.sprintf "matmul:%dx%dx%d" m (16 + (8 * (i mod 7))) k)

let sweep_specs =
  [
    "matmul:64x64x64";
    "matmul:128x64x32";
    "conv2d:28x28x32,k3,f64,s1";
    "maxpool:56x56x32,k2,s2";
    "add:256x256";
    "relu:512x128";
  ]

let expect_ok spec = function
  | Serve.Protocol.Ok_reply _ -> ()
  | Serve.Protocol.Error_reply { code; message; _ } ->
      failwith
        (Printf.sprintf "exp_serve: %s answered %s: %s" spec
           (Serve.Protocol.error_code_to_string code)
           message)
  | _ -> failwith "exp_serve: unexpected response kind"

(* -- 1. cold vs hot sweep --------------------------------------------- *)

type cold_hot = { n_ops : int; cold_s : float; hot_s : float }

let run_cold_hot ~hidden =
  (* max_wait 0: flush singletons immediately, so hot latency measures
     the cache path, not the batching timer. *)
  let server = make_server ~hidden ~max_wait_ms:0.0 () in
  let sweep tag =
    let t0 = now () in
    List.iteri
      (fun i spec ->
        let resp, _ =
          sync_call server (optimize_req (Printf.sprintf "%s%d" tag i) spec)
        in
        expect_ok spec resp)
      sweep_specs;
    now () -. t0
  in
  let cold_s = sweep "cold" in
  let hot_s = sweep "hot" in
  Serve.Server.drain server;
  { n_ops = List.length sweep_specs; cold_s; hot_s }

(* -- 2. throughput vs closed-loop client concurrency ------------------ *)

type tput_point = { clients : int; requests : int; wall_s : float }

let run_clients ?(shed_backoff_s = 0.0) server ~clients ~specs =
  let specs = Array.of_list specs in
  let total = Array.length specs in
  let next = Atomic.make 0 in
  let lat_m = Mutex.create () in
  let accepted_lats = ref [] in
  let shed = Atomic.make 0 in
  let client id =
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= total then continue := false
      else begin
        let resp, lat =
          sync_call server (optimize_req (Printf.sprintf "c%d-%d" id i) specs.(i))
        in
        match resp with
        | Serve.Protocol.Error_reply { code = Serve.Protocol.Overloaded; _ } ->
            Atomic.incr shed;
            (* A well-behaved client backs off after a shed instead of
               hammering; keeps the overload mix non-degenerate. *)
            if shed_backoff_s > 0.0 then Thread.delay shed_backoff_s
        | r ->
            expect_ok specs.(i) r;
            Mutex.lock lat_m;
            accepted_lats := lat :: !accepted_lats;
            Mutex.unlock lat_m
      end
    done
  in
  let t0 = now () in
  let threads = List.init clients (fun id -> Thread.create client id) in
  List.iter Thread.join threads;
  let wall = now () -. t0 in
  (wall, !accepted_lats, Atomic.get shed)

let run_throughput ~hidden ~requests =
  List.map
    (fun clients ->
      (* A fresh server per point: identical total work, empty cache. *)
      let server = make_server ~hidden ~max_batch:8 ~max_wait_ms:2.0 () in
      let wall, _lats, shed = run_clients server ~clients ~specs:(distinct_specs requests) in
      Serve.Server.drain server;
      if shed > 0 then failwith "exp_serve: throughput run unexpectedly shed";
      { clients; requests; wall_s = wall })
    [ 1; 2; 4 ]

(* -- 3. overload ------------------------------------------------------ *)

type overload = {
  o_clients : int;
  o_requests : int;
  max_queue : int;
  accepted : int;
  o_shed : int;
  p99_s : float;
}

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
      let n = List.length sorted in
      let rank =
        int_of_float (Float.round (p *. float_of_int (n - 1)))
      in
      List.nth sorted rank

let run_overload ~hidden ~requests =
  let o_clients = 16 and max_queue = 4 in
  let server = make_server ~hidden ~max_queue ~max_batch:4 ~max_wait_ms:1.0 () in
  let wall, accepted_lats, shed =
    run_clients ~shed_backoff_s:0.004 server ~clients:o_clients
      ~specs:(distinct_specs requests)
  in
  ignore wall;
  Serve.Server.drain server;
  {
    o_clients;
    o_requests = requests;
    max_queue;
    accepted = requests - shed;
    o_shed = shed;
    p99_s = percentile 0.99 accepted_lats;
  }

(* -- harness ----------------------------------------------------------- *)

let json_of_results ~quick ~hidden (ch : cold_hot) (tp : tput_point list)
    (ov : overload) =
  let b = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"bench\": \"serve\",\n";
  add "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  add "  \"hidden\": %d,\n" hidden;
  add "  \"cache\": {\n";
  add "    \"ops\": %d,\n" ch.n_ops;
  add "    \"cold_seconds\": %.6f,\n" ch.cold_s;
  add "    \"hot_seconds\": %.6f,\n" ch.hot_s;
  add "    \"speedup\": %.2f\n" (ch.cold_s /. ch.hot_s);
  add "  },\n";
  add "  \"throughput\": [\n";
  List.iteri
    (fun i p ->
      add "    {\"clients\": %d, \"requests\": %d, \"wall_seconds\": %.6f, \"rps\": %.2f}%s\n"
        p.clients p.requests p.wall_s
        (float_of_int p.requests /. p.wall_s)
        (if i = List.length tp - 1 then "" else ","))
    tp;
  add "  ],\n";
  add "  \"overload\": {\n";
  add "    \"clients\": %d,\n" ov.o_clients;
  add "    \"max_queue\": %d,\n" ov.max_queue;
  add "    \"requests\": %d,\n" ov.o_requests;
  add "    \"accepted\": %d,\n" ov.accepted;
  add "    \"shed\": %d,\n" ov.o_shed;
  add "    \"accepted_p99_seconds\": %.6f\n" ov.p99_s;
  add "  }\n";
  add "}\n";
  Buffer.contents b

let run ?(quick = false) (c : Bench_common.config) =
  Bench_common.heading "serving daemon (lib/serve): cache, batching, admission";
  let hidden = c.Bench_common.hidden in
  let requests = if quick then 24 else 96 in
  let overload_requests = if quick then 48 else 160 in

  Bench_common.subheading "result cache: repeated sweep vs cold sweep";
  let ch = run_cold_hot ~hidden in
  Printf.printf "%d ops | cold %.4f s | hot %.4f s | %.1fx faster hot\n" ch.n_ops
    ch.cold_s ch.hot_s (ch.cold_s /. ch.hot_s);

  Bench_common.subheading
    "throughput vs closed-loop clients (1 worker domain: gains = micro-batch \
     inference amortization)";
  let tp = run_throughput ~hidden ~requests in
  Printf.printf "%8s %10s %10s %10s\n" "clients" "requests" "wall (s)" "req/s";
  let base = ref None in
  List.iter
    (fun p ->
      let rps = float_of_int p.requests /. p.wall_s in
      let rel =
        match !base with
        | None ->
            base := Some rps;
            ""
        | Some b -> Printf.sprintf "  (%.2fx vs 1 client)" (rps /. b)
      in
      Printf.printf "%8d %10d %10.3f %10.2f%s\n" p.clients p.requests p.wall_s
        rps rel)
    tp;

  Bench_common.subheading "overload: 16 clients against a 4-deep queue";
  let ov = run_overload ~hidden ~requests:overload_requests in
  Printf.printf
    "%d requests | accepted %d | shed %d (overloaded replies) | accepted p99 %.4f s\n"
    ov.o_requests ov.accepted ov.o_shed ov.p99_s;
  if ov.o_shed = 0 then
    Printf.printf "WARNING: nothing shed; queue never filled on this machine\n";

  let json = json_of_results ~quick ~hidden ch tp ov in
  let path = "BENCH_serve.json" in
  (* Atomic (temp + rename): a reader or a crash mid-run never sees a
     half-written artifact. *)
  Util.Atomic_file.write_string ~path json;
  Printf.printf "\nwrote %s\n" path
