(* Micro-benchmarks (Bechamel): per-call cost of the pieces that
   dominate experiment runtime — the timing oracle, schedule
   application, feature extraction, policy inference and the reference
   interpreter — plus the tensor-kernel before/after rows (pre-Bigarray
   float-array matmul vs the blocked Bigarray kernels). *)

open Bechamel
open Toolkit

(* The exact pre-Bigarray Tensor.matmul: boxed float-array storage,
   naive i-p-j loop, fresh allocation per call. Kept verbatim as the
   "before" kernel so the matmul rows quantify what the Bigarray
   representation, register/cache blocking and destination passing
   bought. *)
let matmul_pre_pr (a : float array) (b : float array) ~m ~k ~n =
  let out = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let av = a.((i * k) + p) in
      for j = 0 to n - 1 do
        out.((i * n) + j) <- out.((i * n) + j) +. (av *. b.((p * n) + j))
      done
    done
  done;
  out

(* The zero-skip inner loop Tensor.matmul carried before PR 3 (an
   [if av <> 0.0] guard per element). Kept as a second reference so the
   rows still quantify what dropping it bought: policy activations are
   dense, so the branch was pure overhead on the hot path. *)
let matmul_zero_skip (a : float array) (b : float array) ~m ~k ~n =
  let out = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let av = a.((i * k) + p) in
      if av <> 0.0 then
        for j = 0 to n - 1 do
          out.((i * n) + j) <- out.((i * n) + j) +. (av *. b.((p * n) + j))
        done
    done
  done;
  out

let make_tests () =
  let op = Linalg.matmul ~m:512 ~n:512 ~k:512 () in
  let sched =
    match Schedule.of_string "P(64,64,0) T(8,64,64) S(1) V" with
    | Ok s -> s
    | Error e -> failwith e
  in
  let state = Result.get_ok (Sched_state.apply_all op sched) in
  let ev = Evaluator.create () in
  let cfg = Env_config.default in
  let rng = Util.Rng.create 1 in
  let policy = Policy.create ~hidden:128 ~backbone_layers:2 rng cfg in
  let st0 = Sched_state.init op in
  let obs = Observation.extract cfg st0 in
  let masks = Action_space.masks cfg st0 in
  let small = Linalg.matmul ~m:16 ~n:16 ~k:16 () in
  let small_nest = Lower.to_loop_nest small in
  let inputs =
    [
      ("A", Array.init 256 (fun _ -> Util.Rng.uniform rng));
      ("B", Array.init 256 (fun _ -> Util.Rng.uniform rng));
    ]
  in
  (* Dense activations at the policy's forward shapes: a batch of 8
     observations through a 64-wide layer, and the hidden-128 square. *)
  let mk_dense rows cols =
    Tensor.init [| rows; cols |] (fun _ -> Util.Rng.uniform rng -. 0.5)
  in
  let mm_a = mk_dense 8 64 and mm_b = mk_dense 64 64 in
  let fa_a = Tensor.to_array mm_a and fa_b = Tensor.to_array mm_b in
  let mm_dst = Tensor.zeros [| 8; 64 |] in
  let h_a = mk_dense 8 128 and h_b = mk_dense 128 128 in
  let hfa_a = Tensor.to_array h_a and hfa_b = Tensor.to_array h_b in
  let h_dst = Tensor.zeros [| 8; 128 |] in
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"cost-model estimate"
        (Staged.stage (fun () ->
             Cost_model.seconds ~machine:Machine.e5_2680_v4
               ~iter_kinds:op.Linalg.iter_kinds state.Sched_state.nest));
      Test.make ~name:"schedule apply (4 steps)"
        (Staged.stage (fun () -> Sched_state.apply_all op sched));
      Test.make ~name:"feature extraction"
        (Staged.stage (fun () -> Observation.extract cfg st0));
      Test.make ~name:"policy act (hidden 128)"
        (Staged.stage (fun () -> Policy.act rng policy ~obs ~masks));
      Test.make ~name:"evaluator measure"
        (Staged.stage (fun () -> Evaluator.state_seconds ev state));
      Test.make ~name:"interp 16x16x16 matmul"
        (Staged.stage (fun () -> Interp.run small_nest ~inputs));
      Test.make ~name:"beam search (256^3 matmul)"
        (Staged.stage
           (let small_op = Linalg.matmul ~m:256 ~n:256 ~k:256 () in
            let beam_cfg =
              { Beam_search.default_config with Beam_search.beam_width = 4 }
            in
            fun () -> Beam_search.search ~config:beam_cfg ev small_op));
      Test.make ~name:"IR print+parse roundtrip"
        (Staged.stage
           (let text = Ir_printer.to_string state.Sched_state.nest in
            fun () -> Ir_parser.parse text));
      Test.make ~name:"matmul pre-PR 8x64.64x64"
        (Staged.stage (fun () -> matmul_pre_pr fa_a fa_b ~m:8 ~k:64 ~n:64));
      Test.make ~name:"matmul zero-skip 8x64.64x64"
        (Staged.stage (fun () -> matmul_zero_skip fa_a fa_b ~m:8 ~k:64 ~n:64));
      Test.make ~name:"matmul blocked 8x64.64x64"
        (Staged.stage (fun () -> Tensor.matmul mm_a mm_b));
      Test.make ~name:"matmul into 8x64.64x64"
        (Staged.stage (fun () -> Tensor.matmul_into ~dst:mm_dst mm_a mm_b));
      Test.make ~name:"matmul pre-PR 8x128.128x128"
        (Staged.stage (fun () -> matmul_pre_pr hfa_a hfa_b ~m:8 ~k:128 ~n:128));
      Test.make ~name:"matmul blocked 8x128.128x128"
        (Staged.stage (fun () -> Tensor.matmul h_a h_b));
      Test.make ~name:"matmul into 8x128.128x128"
        (Staged.stage (fun () -> Tensor.matmul_into ~dst:h_dst h_a h_b));
    ]

let run () =
  Bench_common.heading "Micro-benchmarks (Bechamel)";
  let benchmark () =
    let instances = Instance.[ monotonic_clock; minor_allocated ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    Benchmark.all cfg instances (make_tests ())
  in
  let raw = benchmark () in
  let analyze instance =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols instance raw
  in
  let times = analyze Instance.monotonic_clock in
  let allocs = analyze Instance.minor_allocated in
  Printf.printf "%-34s %16s %16s\n" "benchmark" "ns/run" "minor words/run";
  let rows = ref [] in
  Hashtbl.iter (fun name ols -> rows := (name, ols) :: !rows) times;
  let estimate ols =
    match Analyze.OLS.estimates ols with Some (t :: _) -> Some t | _ -> None
  in
  List.iter
    (fun (name, ols) ->
      let time = estimate ols in
      let words =
        match Hashtbl.find_opt allocs name with
        | Some a -> estimate a
        | None -> None
      in
      let cell = function Some v -> Printf.sprintf "%.1f" v | None -> "n/a" in
      Printf.printf "%-34s %16s %16s\n" name (cell time) (cell words))
    (List.sort compare !rows)
