(* Micro-benchmarks (Bechamel): per-call cost of the pieces that
   dominate experiment runtime — the timing oracle, schedule
   application, feature extraction, policy inference and the reference
   interpreter. *)

open Bechamel
open Toolkit

(* The zero-skip inner loop Tensor.matmul used to carry (an
   [if av <> 0.0] guard per element). Kept here as a reference kernel
   so the "matmul dense vs zero-skip" rows quantify what dropping it
   bought: policy activations are dense, so the branch was pure
   overhead on the hot path. *)
let matmul_zero_skip (a : Tensor.t) (b : Tensor.t) =
  let m = a.Tensor.shape.(0) and k = a.Tensor.shape.(1) in
  let n = b.Tensor.shape.(1) in
  let out = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for p = 0 to k - 1 do
      let av = a.Tensor.data.((i * k) + p) in
      if av <> 0.0 then
        for j = 0 to n - 1 do
          out.((i * n) + j) <-
            out.((i * n) + j) +. (av *. b.Tensor.data.((p * n) + j))
        done
    done
  done;
  { Tensor.shape = [| m; n |]; data = out }

let make_tests () =
  let op = Linalg.matmul ~m:512 ~n:512 ~k:512 () in
  let sched =
    match Schedule.of_string "P(64,64,0) T(8,64,64) S(1) V" with
    | Ok s -> s
    | Error e -> failwith e
  in
  let state = Result.get_ok (Sched_state.apply_all op sched) in
  let ev = Evaluator.create () in
  let cfg = Env_config.default in
  let rng = Util.Rng.create 1 in
  let policy = Policy.create ~hidden:128 ~backbone_layers:2 rng cfg in
  let st0 = Sched_state.init op in
  let obs = Observation.extract cfg st0 in
  let masks = Action_space.masks cfg st0 in
  let small = Linalg.matmul ~m:16 ~n:16 ~k:16 () in
  let small_nest = Lower.to_loop_nest small in
  let inputs =
    [
      ("A", Array.init 256 (fun _ -> Util.Rng.uniform rng));
      ("B", Array.init 256 (fun _ -> Util.Rng.uniform rng));
    ]
  in
  (* Dense activations at the policy's forward shape (a batch of 8
     observations through a 64-wide layer). *)
  let mk_dense rows cols =
    {
      Tensor.shape = [| rows; cols |];
      data = Array.init (rows * cols) (fun _ -> Util.Rng.uniform rng -. 0.5);
    }
  in
  let mm_a = mk_dense 8 64 and mm_b = mk_dense 64 64 in
  Test.make_grouped ~name:"micro"
    [
      Test.make ~name:"cost-model estimate"
        (Staged.stage (fun () ->
             Cost_model.seconds ~machine:Machine.e5_2680_v4
               ~iter_kinds:op.Linalg.iter_kinds state.Sched_state.nest));
      Test.make ~name:"schedule apply (4 steps)"
        (Staged.stage (fun () -> Sched_state.apply_all op sched));
      Test.make ~name:"feature extraction"
        (Staged.stage (fun () -> Observation.extract cfg st0));
      Test.make ~name:"policy act (hidden 128)"
        (Staged.stage (fun () -> Policy.act rng policy ~obs ~masks));
      Test.make ~name:"evaluator measure"
        (Staged.stage (fun () -> Evaluator.state_seconds ev state));
      Test.make ~name:"interp 16x16x16 matmul"
        (Staged.stage (fun () -> Interp.run small_nest ~inputs));
      Test.make ~name:"beam search (256^3 matmul)"
        (Staged.stage
           (let small_op = Linalg.matmul ~m:256 ~n:256 ~k:256 () in
            let beam_cfg =
              { Beam_search.default_config with Beam_search.beam_width = 4 }
            in
            fun () -> Beam_search.search ~config:beam_cfg ev small_op));
      Test.make ~name:"IR print+parse roundtrip"
        (Staged.stage
           (let text = Ir_printer.to_string state.Sched_state.nest in
            fun () -> Ir_parser.parse text));
      Test.make ~name:"matmul dense 8x64.64x64"
        (Staged.stage (fun () -> Tensor.matmul mm_a mm_b));
      Test.make ~name:"matmul zero-skip 8x64.64x64"
        (Staged.stage (fun () -> matmul_zero_skip mm_a mm_b));
    ]

let run () =
  Bench_common.heading "Micro-benchmarks (Bechamel)";
  let benchmark () =
    let instances = Instance.[ monotonic_clock ] in
    let cfg =
      Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
    in
    Benchmark.all cfg instances (make_tests ())
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
    in
    Analyze.all ols Instance.monotonic_clock raw
  in
  let results = analyze (benchmark ()) in
  Printf.printf "%-34s %16s\n" "benchmark" "ns/run";
  let rows = ref [] in
  Hashtbl.iter (fun name ols -> rows := (name, ols) :: !rows) results;
  List.iter
    (fun (name, ols) ->
      match Analyze.OLS.estimates ols with
      | Some (t :: _) -> Printf.printf "%-34s %16.1f\n" name t
      | Some [] | None -> Printf.printf "%-34s %16s\n" name "n/a")
    (List.sort compare !rows)
