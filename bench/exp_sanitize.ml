(* Sanitizer sweep: run randomized schedules over a corpus of small ops
   with the post-transform verifier and the differential sanitizer
   forced on, and report the violation counters (EXPERIMENTS.md
   "Schedule sanitizer").

   Two claims are checked:
   1. Soundness in practice — over random legal episodes exercising all
      five transformations plus im2col, neither layer fires: every
      transformation the legality masks admit is verified structurally
      sound and differentially equivalent to its original.
   2. Teeth — a deliberately broken interchange (loops permuted without
      rewriting subscripts) is caught by the verifier, and an in-bounds
      reversed-subscript miscompile is caught by the sanitizer. *)

(* The transform-author mistakes we plant. *)
let buggy_interchange (nest : Loop_nest.t) =
  let n = Loop_nest.n_loops nest in
  let loops = Array.copy nest.Loop_nest.loops in
  let tmp = loops.(0) in
  loops.(0) <- loops.(n - 1);
  loops.(n - 1) <- tmp;
  { nest with Loop_nest.loops }

let reverse_last_subscript (nest : Loop_nest.t) =
  let n = Loop_nest.n_loops nest in
  let k_ub = nest.Loop_nest.loops.(n - 1).Loop_nest.ub in
  let rec fix (e : Loop_nest.sexpr) =
    match e with
    | Loop_nest.Load ({ Loop_nest.buf = "A"; idx } as r)
      when Array.length idx > 0 ->
        let last = Array.length idx - 1 in
        let s = idx.(last) in
        let idx = Array.copy idx in
        idx.(last) <-
          {
            Affine.coeffs = Array.map (fun c -> -c) s.Affine.coeffs;
            const = k_ub - 1 - s.Affine.const;
          };
        Loop_nest.Load { r with Loop_nest.idx }
    | Loop_nest.Load _ | Loop_nest.Const _ -> e
    | Loop_nest.Binop (b, x, y) -> Loop_nest.Binop (b, fix x, fix y)
    | Loop_nest.Unop (u, x) -> Loop_nest.Unop (u, fix x)
  in
  {
    nest with
    Loop_nest.body =
      List.map
        (fun (Loop_nest.Store (r, e)) -> Loop_nest.Store (r, fix e))
        nest.Loop_nest.body;
  }

let corpus () =
  [
    Linalg.matmul ~m:8 ~n:12 ~k:16 ();
    Linalg.matmul ~m:16 ~n:16 ~k:16 ();
    Linalg.batch_matmul ~b:2 ~m:6 ~n:8 ~k:10 ();
    Linalg.conv2d
      {
        Linalg.batch = 2;
        in_h = 8;
        in_w = 8;
        channels = 3;
        kernel_h = 3;
        kernel_w = 3;
        filters = 4;
        stride = 1;
      };
    Linalg.maxpool
      {
        Linalg.p_batch = 1;
        p_in_h = 8;
        p_in_w = 8;
        p_channels = 4;
        p_kernel = 2;
        p_stride = 2;
      };
    Linalg.relu [| 16; 24 |];
    Linalg.add [| 8; 8; 6 |];
  ]

(* Random legal episodes through the environment: every accepted action
   passes through Sched_state.apply (verifier) and every measurement
   through Evaluator.state_seconds (sanitizer). *)
let episodes rng cfg per_op ops =
  let env = Env.create cfg in
  List.iter
    (fun op ->
      for _ = 1 to per_op do
        ignore (Env.reset env op);
        let menu = Action_space.simple_menu cfg ~n_loops:(Linalg.n_loops op) in
        let finished = ref false in
        while not !finished do
          let st = Env.state env in
          let mask = Action_space.simple_mask cfg st menu in
          let legal = ref [] in
          Array.iteri (fun i b -> if b then legal := i :: !legal) mask;
          let tr =
            match !legal with
            | [] -> None
            | l ->
                let i = List.nth l (Util.Rng.int rng (List.length l)) in
                let ctx = Action_space.legality_of cfg st in
                Action_space.legalize ?ctx st
                  menu.(i).Action_space.transformation
          in
          let r = Env.step env tr in
          if r.Env.terminal then finished := true
        done
      done)
    ops

(* Explicit im2col coverage on the conv ops: the rewrite swaps the whole
   nest, so its differential check runs the packed-input recipe. *)
let im2col_sweep ops =
  List.iter
    (fun (op : Linalg.t) ->
      if Linalg.is_conv op then
        let scheds =
          [ [ Schedule.Im2col ];
            [ Schedule.Im2col; Schedule.Vectorize ];
            [ Schedule.Im2col; Schedule.Swap 1 ] ]
        in
        List.iter
          (fun sched ->
            match Sched_state.apply_all op sched with
            | Error _ -> ()
            | Ok st -> ignore (Differential.sanitize_state st))
          scheds)
    ops

let mutation_demo () =
  Bench_common.subheading "Mutation demo: planted transform bugs";
  let nest = Lower.to_loop_nest (Linalg.matmul ~m:8 ~n:12 ~k:16 ()) in
  let broken = buggy_interchange nest in
  let caught_verifier =
    match Verifier.check broken with Ok () -> false | Error _ -> true
  in
  Printf.printf "broken interchange (stale subscripts) caught by verifier : %b\n"
    caught_verifier;
  let mutant = reverse_last_subscript nest in
  let structurally_clean = Verifier.check mutant = Ok () in
  let caught_sanitizer =
    match Sanitizer.check ~reference:nest ~candidate:mutant with
    | Sanitizer.Mismatch _ -> true
    | Sanitizer.Matched | Sanitizer.Skipped _ -> false
  in
  Printf.printf
    "reversed subscript: in-bounds (verifier passes: %b), caught by \
     differential sanitizer : %b\n"
    structurally_clean caught_sanitizer;
  if not (caught_verifier && structurally_clean && caught_sanitizer) then
    Printf.printf "-> MUTATION DEMO FAILED: a planted bug went unnoticed\n"

let run ~quick (c : Bench_common.config) =
  Bench_common.heading
    "Sanitizer sweep: verifier + differential checks over random schedules";
  let verifier_was = Verifier.enabled () and sanitizer_was = Sanitizer.enabled () in
  Verifier.set_enabled true;
  Sanitizer.set_enabled true;
  Verifier.reset_stats ();
  Sanitizer.reset_stats ();
  Fun.protect
    ~finally:(fun () ->
      Verifier.set_enabled verifier_was;
      Sanitizer.set_enabled sanitizer_was)
    (fun () ->
      let cfg = Env_config.default in
      let rng = Util.Rng.create (c.Bench_common.seed + 17) in
      let ops = corpus () in
      let per_op = if quick then 4 else 20 in
      let t0 = Unix.gettimeofday () in
      episodes rng cfg per_op ops;
      im2col_sweep ops;
      let secs = Unix.gettimeofday () -. t0 in
      let v = Verifier.stats () in
      let s = Sanitizer.stats () in
      Printf.printf
        "%d ops x %d random episodes (+ im2col sweep) in %.2f s wall-clock\n"
        (List.length ops) per_op secs;
      Printf.printf "verifier  : %6d checks            %d violations\n"
        v.Verifier.checks v.Verifier.violations;
      Printf.printf "sanitizer : %6d differential runs %d violations (%d skips)\n"
        s.Sanitizer.runs s.Sanitizer.violations s.Sanitizer.skips;
      if v.Verifier.violations = 0 && s.Sanitizer.violations = 0 then
        Printf.printf
          "-> zero violations: every legality-approved schedule is verified \
           and differentially clean\n"
      else
        Printf.printf "-> SWEEP FAILED: violations on legality-approved schedules\n";
      Verifier.reset_stats ();
      Sanitizer.reset_stats ();
      mutation_demo ();
      Verifier.reset_stats ();
      Sanitizer.reset_stats ())
