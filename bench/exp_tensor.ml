(* Tensor-kernel benchmark and smoke gate.

   Three jobs in one experiment:

   1. Kernel timings: the pre-PR float-array naive matmul (reimplemented
      here as the reference) vs. the cache-blocked Bigarray [Tensor.matmul]
      vs. the destination-passing [matmul_into] drawing from a workspace.
      Every timed pair is also checked for bitwise equality — the blocked
      kernels preserve the naive accumulation order by construction.
   2. Bit-identity sweep: every [_into] kernel against its allocating
      twin on shapes chosen to hit the unroll/tile remainders, across a
      range of matmul block sizes.
   3. Training throughput after the rewrite, next to the committed
      pre-PR baseline (commit 26afbad, same machine class), with GC
      stats — the ISSUE's >= 3x episodes/sec acceptance number.

   The full run writes BENCH_tensor.json; CI runs `--quick tensor` and
   greps for the "kernel smoke:" lines (any FAIL fails the gate). *)

let fill rng (t : Tensor.t) =
  for i = 0 to Tensor.numel t - 1 do
    Tensor.unsafe_set t i (Util.Rng.gaussian rng)
  done

(* The pre-PR kernel: float arrays, naive i-p-j loop with memory
   accumulation. The blocked Bigarray kernels promise bit-identity to
   exactly this chain (per cell: products added in ascending p). *)
let ref_matmul a b ~m ~k ~n =
  let out = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    let arow = i * k and orow = i * n in
    for p = 0 to k - 1 do
      let av = a.(arow + p) in
      let brow = p * n in
      for j = 0 to n - 1 do
        out.(orow + j) <- out.(orow + j) +. (av *. b.(brow + j))
      done
    done
  done;
  out

let time_best ~reps ~iters f =
  let best = ref infinity in
  for _ = 1 to reps do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to iters do
      f ()
    done;
    let d = (Unix.gettimeofday () -. t0) /. float_of_int iters in
    if d < !best then best := d
  done;
  !best

type kernel_row = {
  m : int;
  k : int;
  n : int;
  naive_us : float;
  blocked_us : float;
  into_us : float;
  bit_identical : bool;
}

let smoke_failures = ref 0

let smoke name ok =
  if not ok then incr smoke_failures;
  Printf.printf "kernel smoke: %s %s\n" (if ok then "PASS" else "FAIL") name;
  ok

(* -- 1. timings -------------------------------------------------------- *)

let kernel_timings ~sizes =
  Bench_common.subheading
    "matmul: naive float-array reference vs blocked vs into (+workspace)";
  Printf.printf "%14s %12s %12s %12s %10s %10s  %s\n" "m x k x n" "naive (us)"
    "blocked (us)" "into (us)" "blk spd" "into spd" "bitwise";
  let ws = Tensor.Workspace.create () in
  List.map
    (fun (m, k, n) ->
      let rng = Util.Rng.create 42 in
      let a = Tensor.zeros [| m; k |] and b = Tensor.zeros [| k; n |] in
      fill rng a;
      fill rng b;
      let fa = Tensor.to_array a and fb = Tensor.to_array b in
      let iters = max 1 (2_000_000 / (m * k * n)) and reps = 5 in
      let naive_us =
        1e6 *. time_best ~reps ~iters (fun () -> ignore (ref_matmul fa fb ~m ~k ~n))
      in
      let blocked_us =
        1e6 *. time_best ~reps ~iters (fun () -> ignore (Tensor.matmul a b))
      in
      let into_us =
        1e6
        *. time_best ~reps ~iters (fun () ->
               Tensor.Workspace.reset ws;
               ignore
                 (Tensor.matmul_into ~dst:(Tensor.Workspace.get ws [| m; n |]) a b))
      in
      let blocked = Tensor.matmul a b in
      let bit_identical =
        Tensor.equal blocked (Tensor.of_array [| m; n |] (ref_matmul fa fb ~m ~k ~n))
        && Tensor.equal blocked
             (Tensor.matmul_into ~dst:(Tensor.zeros [| m; n |]) a b)
      in
      Printf.printf "%4dx%4dx%4d %12.1f %12.1f %12.1f %9.2fx %9.2fx  %s\n" m k n
        naive_us blocked_us into_us (naive_us /. blocked_us)
        (naive_us /. into_us)
        (if bit_identical then "identical" else "MISMATCH");
      { m; k; n; naive_us; blocked_us; into_us; bit_identical })
    sizes

(* -- 2. bit-identity sweep --------------------------------------------- *)

(* Shapes chosen to exercise the blocked kernels' edges: tile remainders
   (block size does not divide m/n/k), the 4-wide j and k unrolls of the
   transpose-b backward kernel, and single-row/column degenerate cases. *)
let odd_shapes = [ (1, 1, 1); (3, 5, 2); (5, 7, 3); (17, 13, 9); (33, 65, 17); (64, 64, 64) ]

let identity_sweep () =
  Bench_common.subheading
    "bit-identity: _into kernels vs allocating twins, across block sizes";
  let saved_block = Tensor.matmul_block () in
  let mismatches = ref [] in
  let check name ok = if not ok then mismatches := name :: !mismatches in
  let pairs = ref 0 in
  let eq name x y =
    incr pairs;
    check name (Tensor.equal x y)
  in
  List.iter
    (fun block ->
      Tensor.set_matmul_block block;
      List.iter
        (fun (m, k, n) ->
          let rng = Util.Rng.create (1000 + m + k + n) in
          let a = Tensor.zeros [| m; k |] and b = Tensor.zeros [| k; n |] in
          fill rng a;
          fill rng b;
          let tag op = Printf.sprintf "%s %dx%dx%d block=%d" op m k n block in
          let fa = Tensor.to_array a and fb = Tensor.to_array b in
          eq (tag "matmul=naive") (Tensor.matmul a b)
            (Tensor.of_array [| m; n |] (ref_matmul fa fb ~m ~k ~n));
          eq (tag "matmul_into")
            (Tensor.matmul_into ~dst:(Tensor.zeros [| m; n |]) a b)
            (Tensor.matmul a b);
          (* a : [k; m] in the transpose-a product, reuse shapes. *)
          let at = Tensor.transpose a in
          eq (tag "matmul_transpose_a_into")
            (Tensor.matmul_transpose_a_into ~dst:(Tensor.zeros [| m; n |]) at b)
            (Tensor.matmul_transpose_a at b);
          let bt = Tensor.transpose b in
          eq (tag "matmul_transpose_b_into")
            (Tensor.matmul_transpose_b_into ~dst:(Tensor.zeros [| m; n |]) a bt)
            (Tensor.matmul_transpose_b a bt);
          let addto = Tensor.zeros [| m; n |] in
          Tensor.matmul_transpose_b_addto ~dst:addto a bt;
          let via_alloc = Tensor.zeros [| m; n |] in
          Tensor.add_inplace via_alloc (Tensor.matmul_transpose_b a bt);
          eq (tag "matmul_transpose_b_addto") addto via_alloc;
          eq (tag "transpose_into")
            (Tensor.transpose_into ~dst:(Tensor.zeros [| k; m |]) a)
            (Tensor.transpose a))
        odd_shapes)
    [ 4; 8; 16; 32; 48; 64 ];
  Tensor.set_matmul_block saved_block;
  (* Elementwise / reduction twins: block size is irrelevant, one shape
     with odd dimensions suffices. *)
  let m = 17 and n = 13 in
  let rng = Util.Rng.create 7 in
  let x = Tensor.zeros [| m; n |] and y = Tensor.zeros [| m; n |] in
  let bias = Tensor.zeros [| n |] in
  fill rng x;
  fill rng y;
  fill rng bias;
  let d () = Tensor.zeros [| m; n |] in
  let eqt name a b = incr pairs; check name (Tensor.equal a b) in
  eqt "add_into" (Tensor.add_into ~dst:(d ()) x y) (Tensor.add x y);
  eqt "sub_into" (Tensor.sub_into ~dst:(d ()) x y) (Tensor.sub x y);
  eqt "mul_into" (Tensor.mul_into ~dst:(d ()) x y) (Tensor.mul x y);
  eqt "scale_into" (Tensor.scale_into 0.37 ~dst:(d ()) x) (Tensor.scale 0.37 x);
  eqt "relu_into" (Tensor.relu_into ~dst:(d ()) x) (Tensor.relu x);
  eqt "add_bias_into" (Tensor.add_bias_into ~dst:(d ()) x bias)
    (Tensor.add_bias x bias);
  eqt "slice_cols_into"
    (Tensor.slice_cols_into ~dst:(Tensor.zeros [| m; 5 |]) x ~lo:3 ~hi:8)
    (Tensor.slice_cols x ~lo:3 ~hi:8);
  eqt "sum_rows_into" (Tensor.sum_rows_into ~dst:(Tensor.zeros [| m |]) x)
    (Tensor.sum_rows x);
  eqt "map_into"
    (Tensor.map_into (fun v -> exp v) ~dst:(d ()) x)
    (Tensor.map (fun v -> exp v) x);
  eqt "map2_into"
    (Tensor.map2_into Float.min ~dst:(d ()) x y)
    (Tensor.map2 Float.min x y);
  Printf.printf "%d kernel pairs checked, %d mismatches\n" !pairs
    (List.length !mismatches);
  List.iter (fun name -> Printf.printf "  MISMATCH: %s\n" name) !mismatches;
  (!pairs, !mismatches)

(* -- 3. allocation profile --------------------------------------------- *)

let alloc_profile () =
  Bench_common.subheading "minor-heap allocation per matmul call (64x64x64)";
  let rng = Util.Rng.create 11 in
  let a = Tensor.zeros [| 64; 64 |] and b = Tensor.zeros [| 64; 64 |] in
  fill rng a;
  fill rng b;
  let ws = Tensor.Workspace.create () in
  let words f =
    f ();
    (* warm-up: workspace slot + any one-time boxing *)
    let w0 = Gc.minor_words () in
    for _ = 1 to 100 do
      f ()
    done;
    (Gc.minor_words () -. w0) /. 100.0
  in
  let alloc_w = words (fun () -> ignore (Tensor.matmul a b)) in
  let into_w =
    words (fun () ->
        Tensor.Workspace.reset ws;
        ignore (Tensor.matmul_into ~dst:(Tensor.Workspace.get ws [| 64; 64 |]) a b))
  in
  Printf.printf
    "allocating: %.0f words/call | into+workspace: %.0f words/call\n" alloc_w
    into_w;
  (alloc_w, into_w)

(* -- 4. training throughput vs the pre-PR baseline --------------------- *)

(* Measured at commit 26afbad (float-array tensors, allocating kernels,
   default GC) on this container, `throughput` experiment, 6 iterations. *)
let baseline_commit = "26afbad"
let baseline_eps = [ (1, 72.2); (2, 64.9); (4, 52.5) ]
let baseline_digest = "7fb8cb76a133"

type train_row = {
  jobs : int;
  eps_per_s : float;
  kwords_per_ep : float;
  majors : int;
  digest : string;
}

let training_after c ~iterations =
  Bench_common.subheading
    (Printf.sprintf "training throughput after the kernel rewrite (%d iterations)"
       iterations);
  Printf.printf "%6s %12s %12s %7s %12s  %s\n" "jobs" "eps/s" "kwords/ep"
    "majors" "vs baseline" "digest";
  List.map
    (fun jobs ->
      let stats, wall, (minor_w, _minors, majors), _cache =
        Exp_throughput.train_once c ~jobs ~iterations
      in
      let episodes =
        match List.rev stats with [] -> 0 | s :: _ -> s.Trainer.episodes
      in
      let eps_per_s = float_of_int episodes /. wall in
      let kwords_per_ep = minor_w /. 1e3 /. float_of_int (max 1 episodes) in
      let digest =
        String.sub (Exp_throughput.stats_digest stats) 0 12
      in
      let base = List.assoc jobs baseline_eps in
      Printf.printf "%6d %12.1f %12.1f %7d %11.2fx  %s\n" jobs eps_per_s
        kwords_per_ep majors (eps_per_s /. base) digest;
      { jobs; eps_per_s; kwords_per_ep; majors; digest })
    [ 1; 2; 4 ]

(* -- harness ----------------------------------------------------------- *)

let json_of_results ~quick (kernels : kernel_row list) ~pairs ~mismatches
    ~alloc_words ~into_words (after : train_row list) =
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"bench\": \"tensor\",\n";
  add "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  add "  \"matmul_block\": %d,\n" (Tensor.matmul_block ());
  add "  \"kernels\": [\n";
  List.iteri
    (fun i r ->
      add
        "    {\"m\": %d, \"k\": %d, \"n\": %d, \"naive_us\": %.1f, \
         \"blocked_us\": %.1f, \"into_us\": %.1f, \"speedup_blocked\": %.2f, \
         \"speedup_into\": %.2f, \"bit_identical\": %b}%s\n"
        r.m r.k r.n r.naive_us r.blocked_us r.into_us
        (r.naive_us /. r.blocked_us)
        (r.naive_us /. r.into_us)
        r.bit_identical
        (if i = List.length kernels - 1 then "" else ","))
    kernels;
  add "  ],\n";
  add "  \"bit_identity\": {\"pairs_checked\": %d, \"mismatches\": %d},\n" pairs
    mismatches;
  add
    "  \"alloc\": {\"matmul_minor_words_per_call\": %.0f, \
     \"matmul_into_minor_words_per_call\": %.0f},\n"
    alloc_words into_words;
  add "  \"training\": {\n";
  add "    \"baseline_commit\": \"%s\",\n" baseline_commit;
  add "    \"baseline_digest\": \"%s\",\n" baseline_digest;
  add "    \"before\": [\n";
  List.iteri
    (fun i (jobs, eps) ->
      add "      {\"jobs\": %d, \"eps_per_s\": %.1f}%s\n" jobs eps
        (if i = List.length baseline_eps - 1 then "" else ","))
    baseline_eps;
  add "    ],\n";
  add "    \"after\": [\n";
  List.iteri
    (fun i r ->
      add
        "      {\"jobs\": %d, \"eps_per_s\": %.1f, \"kwords_per_ep\": %.1f, \
         \"majors\": %d, \"digest\": \"%s\"}%s\n"
        r.jobs r.eps_per_s r.kwords_per_ep r.majors r.digest
        (if i = List.length after - 1 then "" else ","))
    after;
  add "    ]";
  (match List.find_opt (fun r -> r.jobs = 4) after with
  | Some r ->
      add ",\n    \"speedup_jobs4\": %.2f\n"
        (r.eps_per_s /. List.assoc 4 baseline_eps)
  | None -> add "\n");
  add "  }\n";
  add "}\n";
  Buffer.contents b

let run ?(quick = false) (c : Bench_common.config) =
  Bench_common.heading "tensor kernels: blocked matmul, workspaces, GC profile";
  smoke_failures := 0;
  let sizes =
    if quick then [ (32, 64, 32); (64, 64, 64); (64, 128, 128) ]
    else [ (32, 64, 32); (64, 64, 64); (64, 128, 128); (128, 128, 128); (256, 256, 128) ]
  in
  let kernels = kernel_timings ~sizes in
  let pairs, mismatches = identity_sweep () in
  let alloc_words, into_words = alloc_profile () in
  ignore
    (smoke "blocked matmul bit-identical to naive float-array reference"
       (List.for_all (fun r -> r.bit_identical) kernels));
  ignore
    (smoke "_into kernels bit-identical to allocating twins" (mismatches = []));
  (* The big sizes are where blocking pays; tiny ones are noise-bound.
     Gate on the largest benched size with 20% headroom for CI jitter. *)
  let largest = List.nth kernels (List.length kernels - 1) in
  ignore
    (smoke
       (Printf.sprintf "blocked matmul not slower than naive (%.2fx at %dx%dx%d)"
          (largest.naive_us /. largest.blocked_us)
          largest.m largest.k largest.n)
       (largest.blocked_us <= largest.naive_us *. 1.2));
  ignore
    (smoke "into-kernel steady state allocates < 100 minor words per matmul"
       (into_words < 100.0));
  let after =
    if quick then []
    else training_after c ~iterations:6
  in
  (match List.find_opt (fun r -> r.jobs = 4) after with
  | Some r ->
      ignore
        (smoke
           (Printf.sprintf "train --jobs 4 at %.2fx the pre-PR baseline"
              (r.eps_per_s /. List.assoc 4 baseline_eps))
           (r.eps_per_s >= 3.0 *. List.assoc 4 baseline_eps));
      ignore
        (smoke "training digest unchanged by the kernel rewrite"
           (List.for_all (fun r -> r.digest = baseline_digest) after))
  | None -> ());
  if not quick then begin
    let json =
      json_of_results ~quick kernels ~pairs
        ~mismatches:(List.length mismatches) ~alloc_words ~into_words after
    in
    let path = "BENCH_tensor.json" in
    Util.Atomic_file.write_string ~path json;
    Printf.printf "\nwrote %s\n" path
  end;
  if !smoke_failures > 0 then
    Printf.printf "tensor kernel smoke: %d FAILURES\n" !smoke_failures
  else Printf.printf "tensor kernel smoke: all gates passed\n"
