(* Rollout-engine throughput: episodes/sec and wall-clock of seeded
   training runs at --jobs 1/2/4 (identical results, by construction —
   the digest column proves it), plus batched vs per-state policy
   inference. EXPERIMENTS.md records the committed numbers; on a
   single-core container the jobs > 1 rows measure overhead, not
   speedup. *)

let stat_line (s : Trainer.iteration_stats) =
  Printf.sprintf "%d %.17g %.17g %.17g %.17g %d %d %d" s.Trainer.iteration
    s.Trainer.mean_episode_return s.Trainer.mean_final_speedup
    s.Trainer.best_speedup s.Trainer.measurement_seconds
    s.Trainer.schedules_explored s.Trainer.degraded_measurements
    s.Trainer.episodes

let stats_digest stats =
  Digest.to_hex (Digest.string (String.concat "\n" (List.map stat_line stats)))

let train_once (c : Bench_common.config) ~jobs ~iterations =
  (* Noise + faults on, so the per-episode stream derivation is
     exercised end to end, not just the happy path. *)
  let cfg = Env_config.default in
  let evaluator =
    Evaluator.create ~machine:cfg.Env_config.machine ~noise:0.02
      ~noise_seed:(c.Bench_common.seed + 13) ()
  in
  let faults =
    Faults.create
      ~config:(Faults.flaky ~rate:0.1 ())
      ~seed:(c.Bench_common.seed + 31) ()
  in
  let robust = Robust_evaluator.create ~faults evaluator in
  let env = Env.create ~robust cfg in
  let rng = Util.Rng.create c.Bench_common.seed in
  let policy =
    Policy.create ~hidden:c.Bench_common.hidden ~backbone_layers:2 rng cfg
  in
  let ops =
    [| Linalg.matmul ~m:64 ~n:64 ~k:64 (); Linalg.matmul ~m:128 ~n:128 ~k:64 () |]
  in
  let config =
    {
      Trainer.default_config with
      Trainer.iterations;
      seed = c.Bench_common.seed;
      jobs;
    }
  in
  let g0 = Gc.quick_stat () in
  let w0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  let stats = Trainer.train config env policy ~ops in
  let wall = Unix.gettimeofday () -. t0 in
  let g1 = Gc.quick_stat () in
  let gc =
    ( Gc.minor_words () -. w0,
      g1.Gc.minor_collections - g0.Gc.minor_collections,
      g1.Gc.major_collections - g0.Gc.major_collections )
  in
  (stats, wall, gc, Evaluator.cache_stats (Env.evaluator env))

let training_throughput c ~iterations =
  Bench_common.subheading
    (Printf.sprintf "training throughput (%d iterations, fault rate 10%%, noise 2%%)"
       iterations)
  ;
  Printf.printf "%6s %12s %14s %14s %12s %7s  %s\n" "jobs" "wall (s)"
    "episodes" "episodes/s" "kwords/ep" "majors" "stats digest";
  let base_rate = ref None in
  let base_digest = ref None in
  List.iter
    (fun jobs ->
      let stats, wall, (minor_w, _minors, majors), cache =
        train_once c ~jobs ~iterations
      in
      let episodes =
        match List.rev stats with [] -> 0 | s :: _ -> s.Trainer.episodes
      in
      let rate = float_of_int episodes /. wall in
      (* Minor-heap words allocated per episode on the main domain
         (boxed floats, closures, lists — Bigarray payloads live off
         the OCaml heap and are not counted). *)
      let kw_per_ep = minor_w /. 1e3 /. float_of_int (max 1 episodes) in
      let digest = stats_digest stats in
      let speedup =
        match !base_rate with
        | None ->
            base_rate := Some rate;
            ""
        | Some r -> Printf.sprintf "  (%.2fx vs jobs=1)" (rate /. r)
      in
      let same =
        match !base_digest with
        | None ->
            base_digest := Some digest;
            ""
        | Some d -> if d = digest then "  identical" else "  MISMATCH"
      in
      Printf.printf "%6d %12.2f %14d %14.1f %12.1f %7d  %s%s%s\n" jobs wall
        episodes rate kw_per_ep majors (String.sub digest 0 12) same speedup;
      if jobs = 4 then begin
        let base = cache.Evaluator.base in
        Bench_common.note
          "base cache: %d hits, %d misses, %d evictions (%d live / %d cap, %d shards)\n"
          base.Util.Sharded_cache.hits base.Util.Sharded_cache.misses
          base.Util.Sharded_cache.evictions base.Util.Sharded_cache.size
          base.Util.Sharded_cache.capacity base.Util.Sharded_cache.shards;
        match cache.Evaluator.state with
        | None -> ()
        | Some st ->
            Bench_common.note
              "state cache: %d hits, %d misses, %d evictions (%d live / %d cap)\n"
              st.Util.Sharded_cache.hits st.Util.Sharded_cache.misses
              st.Util.Sharded_cache.evictions st.Util.Sharded_cache.size
              st.Util.Sharded_cache.capacity
      end)
    [ 1; 2; 4 ]

let inference_batching c ~rounds =
  Bench_common.subheading "policy inference: per-state act vs act_batch";
  let cfg = Env_config.default in
  let rng = Util.Rng.create c.Bench_common.seed in
  let policy =
    Policy.create ~hidden:c.Bench_common.hidden ~backbone_layers:2 rng cfg
  in
  let st = Sched_state.init (Linalg.matmul ~m:512 ~n:512 ~k:512 ()) in
  let obs = Observation.extract cfg st in
  let masks = Action_space.masks cfg st in
  Printf.printf "%6s %18s %18s %10s\n" "batch" "scalar (us/act)" "batched (us/act)"
    "speedup";
  List.iter
    (fun batch ->
      let obs_rows = Array.make batch obs in
      let mask_rows = Array.make batch masks in
      let scalar_rng = Util.Rng.create 7 in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to rounds do
        for _ = 1 to batch do
          ignore (Policy.act scalar_rng policy ~obs ~masks)
        done
      done;
      let scalar = Unix.gettimeofday () -. t0 in
      let batch_rngs = Array.init batch (fun i -> Util.Rng.create (7 + i)) in
      let t0 = Unix.gettimeofday () in
      for _ = 1 to rounds do
        ignore (Policy.act_batch batch_rngs policy ~obs:obs_rows ~masks:mask_rows)
      done;
      let batched = Unix.gettimeofday () -. t0 in
      let per_act t = t /. float_of_int (rounds * batch) *. 1e6 in
      Printf.printf "%6d %18.1f %18.1f %9.2fx\n" batch (per_act scalar)
        (per_act batched) (scalar /. batched))
    [ 1; 8; 32 ]

let run (c : Bench_common.config) =
  Bench_common.heading "Rollout-engine throughput (parallel collection + batched inference)";
  let fastish = c.Bench_common.train_iterations <= 20 in
  training_throughput c ~iterations:(if fastish then 2 else 6);
  inference_batching c ~rounds:(if fastish then 20 else 200)
