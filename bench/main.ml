(* Experiment harness: regenerates every table and figure of the paper's
   evaluation section (see DESIGN.md for the per-experiment index).

   Usage:
     dune exec bench/main.exe                 # everything, default budgets
     dune exec bench/main.exe -- --fast       # everything, small budgets
     dune exec bench/main.exe -- fig5 fig6    # a subset
     dune exec bench/main.exe -- micro        # Bechamel micro-benchmarks

   Budgets are scaled for a single-core container; the paper trained for
   1000 PPO iterations on 28 cores. EXPERIMENTS.md records the budgets
   used for the committed results. *)

let usage () =
  print_endline
    "usage: main.exe [--fast|--quick] [table1] [table2] [fig5] [fig6] [fig7] [fig8] [ablation] [faults] [legality] [sanitize] [throughput] [tensor] [serve] [fleet] [evalcache] [search] [surrogate] [micro]";
  exit 2

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* --quick is an alias for --fast (CI uses it for smoke runs). *)
  let fast = List.mem "--fast" args || List.mem "--quick" args in
  let wanted =
    List.filter (fun a -> a <> "--fast" && a <> "--quick") args
  in
  List.iter
    (fun a ->
      if
        not
          (List.mem a
             [ "table1"; "table2"; "fig5"; "fig6"; "fig7"; "fig8"; "ablation";
               "faults"; "legality"; "sanitize"; "throughput"; "tensor";
               "serve"; "fleet"; "evalcache"; "search"; "surrogate"; "micro" ])
      then begin
        Printf.printf "unknown experiment %S\n" a;
        usage ()
      end)
    wanted;
  let all = wanted = [] in
  let want x = all || List.mem x wanted in
  let c = if fast then Bench_common.fast else Bench_common.default in
  Printf.printf
    "mlir-rl experiment harness | seed %d | hidden %d | train iters %d | autosched budget %d%s\n"
    c.Bench_common.seed c.Bench_common.hidden c.Bench_common.train_iterations
    c.Bench_common.autosched_budget
    (if fast then " | FAST mode" else "");
  let t0 = Unix.gettimeofday () in
  if want "table1" then Exp_tables.table1 ();
  if want "table2" then Exp_tables.table2 c;
  let fig5_result = if want "fig5" then Some (Exp_fig5.run c) else None in
  let shared_trained = ref (Option.map (fun r -> r.Exp_fig5.trained) fig5_result) in
  let trained_agent () =
    match !shared_trained with
    | Some t -> t
    | None ->
        let split = Generator.generate ~seed:c.Bench_common.seed () in
        let t = Bench_common.train_agent c ~ops:split.Generator.train in
        shared_trained := Some t;
        t
  in
  if want "fig6" then Exp_fig6.run c (trained_agent ());
  if want "fig7" then Exp_fig7.run c;
  if want "fig8" then Exp_fig8.run c;
  if want "ablation" then Exp_ablation.run c (trained_agent ());
  if want "faults" then Exp_faults.run c;
  if want "legality" then Exp_legality.run c;
  if want "sanitize" then Exp_sanitize.run ~quick:fast c;
  if want "throughput" then Exp_throughput.run c;
  if want "tensor" then Exp_tensor.run ~quick:fast c;
  if want "serve" then Exp_serve.run ~quick:fast c;
  if want "fleet" then Exp_fleet.run ~quick:fast c;
  if want "evalcache" then Exp_evalcache.run ~quick:fast c;
  if want "search" then Exp_search.run ~quick:fast c;
  if want "surrogate" then Exp_surrogate.run ~quick:fast c;
  if want "micro" then Micro.run ();
  Printf.printf "\nall experiments done in %.1f s wall-clock\n"
    (Unix.gettimeofday () -. t0)
