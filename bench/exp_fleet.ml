(* Closed-loop chaos + scaling benchmark for the supervised serving
   fleet (Serve.Supervisor over real replica child processes).

   Three claims, measured against real `serve --socket` processes
   spawned from the CLI executable:

   1. scaling: with a per-unique-nest emulated hardware-measurement
      delay (serving is measurement-bound in production, not
      inference-bound), going 1 -> 3 replicas multiplies throughput,
      because replicas overlap their measurement stalls; repeating the
      sweep hits each replica's digest-sharded result cache;
   2. chaos: under seeded replica kills (and stalls in full mode)
      injected mid-load, every accepted request still gets exactly one
      reply — hedged retries rescue requests stranded on dying
      replicas — and killed replicas restart to healthy within the
      capped-backoff bound;
   3. reload: a rolling supervisor reload during load drops nothing.

   The committed quick run is BENCH_fleet.json; CI greps it for
   "lost": 0 and the restart bound. *)

let now () = Unix.gettimeofday ()

(* The replica executable: the CLI binary, located relative to the
   bench binary inside _build, overridable with MLIR_RL_EXE. *)
let find_cli_exe () =
  match Sys.getenv_opt "MLIR_RL_EXE" with
  | Some p -> p
  | None -> (
      let candidates =
        [
          Filename.concat
            (Filename.dirname Sys.executable_name)
            "../bin/mlir_rl_cli.exe";
          "_build/default/bin/mlir_rl_cli.exe";
        ]
      in
      match List.find_opt Sys.file_exists candidates with
      | Some p -> p
      | None ->
          failwith
            "exp_fleet: cannot find mlir_rl_cli.exe (set MLIR_RL_EXE)")

(* Replica boot is policy-size independent for these claims; a narrow
   policy keeps fleet start cheap. *)
let replica_hidden = 32

let fleet_dir_counter = ref 0

let supervisor_config ~replicas =
  {
    Serve.Supervisor.default_config with
    Serve.Supervisor.replicas;
    request_timeout_s = 2.0;
    health_interval_s = 0.1;
    health_timeout_s = 0.5;
    ready_timeout_s = 20.0;
  }

type fleet = {
  sup : Serve.Supervisor.t;
  replicas : int;
  dir : string;
  shutdown : unit -> unit;
}

let start_fleet ~replicas ~measure_delay_ms =
  let exe = find_cli_exe () in
  incr fleet_dir_counter;
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "mlir-rl-bench-fleet-%d-%d" (Unix.getpid ())
         !fleet_dir_counter)
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let socket_of i = Filename.concat dir (Printf.sprintf "replica-%d.sock" i) in
  let launcher ~index =
    Serve.Replica.spawn ~exe
      ~args:
        [
          "serve";
          "--socket"; socket_of index;
          "--hidden"; string_of_int replica_hidden;
          "--workers"; "1";
          "--max-batch"; "8";
          "--max-wait-ms"; "1";
          "--max-queue"; "256";
          "--measure-delay-ms"; Printf.sprintf "%g" measure_delay_ms;
        ]
      ~socket:(socket_of index) ()
  in
  let sup =
    match
      Serve.Supervisor.create ~config:(supervisor_config ~replicas) ~launcher
        ()
    with
    | Ok s -> s
    | Error e -> failwith ("exp_fleet: supervisor: " ^ e)
  in
  if not (Serve.Supervisor.await_ready sup ~timeout_s:60.0) then
    failwith "exp_fleet: fleet did not become ready";
  Serve.Supervisor.start_heartbeat sup;
  let shutdown () =
    Serve.Supervisor.drain sup;
    for i = 0 to replicas - 1 do
      try Sys.remove (socket_of i) with Sys_error _ -> ()
    done;
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  in
  { sup; replicas; dir; shutdown }

(* -- spec pool --------------------------------------------------------- *)

(* Distinct matmul specs, chosen so the digest shards are exactly
   balanced across the replica ring: scaling should measure replica
   overlap, not the (deterministic, key-set-specific) multinomial
   imbalance of an arbitrary pool. The selection is itself
   deterministic — digests and the ring depend on nothing but the
   spec strings and the replica count. *)
let balanced_specs ~replicas ~per_shard =
  let ring = Serve.Router.create ~replicas () in
  let counts = Array.make replicas 0 in
  let picked = ref [] in
  let taken = ref 0 in
  let i = ref 0 in
  let total = replicas * per_shard in
  while !taken < total do
    let a = !i mod 50 and b = !i / 50 in
    if b >= 50 then failwith "exp_fleet: candidate pool exhausted";
    let spec = Printf.sprintf "matmul:%dx%dx32" (16 + (4 * a)) (16 + (4 * b)) in
    let shard =
      Serve.Router.owner ring
        (Serve.Engine.target_digest (Serve.Protocol.Spec spec))
    in
    if counts.(shard) < per_shard then begin
      counts.(shard) <- counts.(shard) + 1;
      picked := spec :: !picked;
      incr taken
    end;
    incr i
  done;
  List.rev !picked

(* Partition specs by their digest shard on an n-replica ring. *)
let shard_groups ~replicas specs =
  let ring = Serve.Router.create ~replicas () in
  let buckets = Array.make replicas [] in
  List.iter
    (fun spec ->
      let s =
        Serve.Router.owner ring
          (Serve.Engine.target_digest (Serve.Protocol.Spec spec))
      in
      buckets.(s) <- spec :: buckets.(s))
    specs;
  Array.to_list (Array.map List.rev buckets)

(* -- closed-loop load -------------------------------------------------- *)

type load_result = {
  sent : int;
  ok : int;
  error_replies : int;
  lost : int;  (* no reply at all: must be 0 *)
  wall_s : float;
}

let req_counter = ref 0

(* Closed-loop clients partitioned by digest shard: each group of
   [clients_per_group] threads works through its own shard's specs.
   Without the partition a shared work queue starves replicas at
   random (the in-flight shard mix is multinomial, and a closed-loop
   client blocked on one replica cannot feed an idle one), which
   measures queueing noise instead of replica overlap. Against a
   single replica every group lands on the same process, so the 1- and
   3-replica points see identical offered load. *)
let run_load sup ~clients_per_group ~groups ~rounds =
  let groups = List.map Array.of_list groups in
  let total = rounds * List.fold_left (fun a g -> a + Array.length g) 0 groups in
  let ok = Atomic.make 0 in
  let error_replies = Atomic.make 0 in
  let lost = Atomic.make 0 in
  let group_client specs next () =
    let n = rounds * Array.length specs in
    let continue = ref true in
    while !continue do
      let i = Atomic.fetch_and_add next 1 in
      if i >= n then continue := false
      else begin
        incr req_counter;
        let id = Printf.sprintf "f%d" !req_counter in
        let spec = specs.(i mod Array.length specs) in
        match
          Serve.Supervisor.call sup
            (Serve.Protocol.Optimize
               { id; target = Serve.Protocol.Spec spec; deadline_ms = None })
        with
        | Serve.Protocol.Ok_reply { r_id; _ } when r_id = id -> Atomic.incr ok
        | Serve.Protocol.Error_reply _ -> Atomic.incr error_replies
        | _ -> Atomic.incr error_replies
        | exception _ -> Atomic.incr lost
      end
    done
  in
  let t0 = now () in
  let threads =
    List.concat_map
      (fun specs ->
        let next = Atomic.make 0 in
        List.init clients_per_group (fun _ ->
            Thread.create (group_client specs next) ()))
      groups
  in
  List.iter Thread.join threads;
  let wall_s = now () -. t0 in
  {
    sent = total;
    ok = Atomic.get ok;
    error_replies = Atomic.get error_replies;
    lost = Atomic.get lost;
    wall_s;
  }

(* -- per-replica cache stats ------------------------------------------- *)

let parse_kv_int body key =
  let prefix = key ^ "=" in
  String.split_on_char '\n' body
  |> List.concat_map (String.split_on_char ' ')
  |> List.find_map (fun tok ->
         if String.starts_with ~prefix tok then
           int_of_string_opt
             (String.sub tok (String.length prefix)
                (String.length tok - String.length prefix))
         else None)
  |> Option.value ~default:0

let fleet_cache_totals fleet =
  let hits = ref 0 and misses = ref 0 in
  for i = 0 to fleet.replicas - 1 do
    match
      Serve.Supervisor.replica_call fleet.sup i
        (Serve.Protocol.Stats { id = "bench-stats" })
        ~timeout_s:2.0
    with
    | Ok (Serve.Protocol.Stats_reply { body; _ }) ->
        hits := !hits + parse_kv_int body "cache_hits";
        misses := !misses + parse_kv_int body "cache_misses"
    | _ -> ()
  done;
  (!hits, !misses)

(* -- chaos driver ------------------------------------------------------ *)

(* Replay a Faults.chaos_plan against the live fleet: kills go through
   the supervisor's chaos hook (SIGKILL, unannounced), stalls
   SIGSTOP/SIGCONT the replica process so it is alive but
   unresponsive. Garble events need a reply-corrupting transport and
   are exercised by the tier-1 supervisor tests instead; here they are
   counted and skipped. *)
let run_chaos_plan fleet plan ~t0 =
  let applied_kills = ref 0 and applied_stalls = ref 0 in
  List.iter
    (fun (e : Faults.chaos_event) ->
      let delay = t0 +. e.Faults.at_s -. now () in
      if delay > 0.0 then Thread.delay delay;
      match e.Faults.action with
      | Faults.Kill_replica ->
          incr applied_kills;
          Serve.Supervisor.kill_replica fleet.sup e.Faults.replica
      | Faults.Stall d -> (
          match Serve.Supervisor.replica_pid fleet.sup e.Faults.replica with
          | None -> ()
          | Some pid ->
              incr applied_stalls;
              (try Unix.kill pid Sys.sigstop with Unix.Unix_error _ -> ());
              let _t : Thread.t =
                Thread.create
                  (fun () ->
                    Thread.delay d;
                    try Unix.kill pid Sys.sigcont
                    with Unix.Unix_error _ -> ())
                  ()
              in
              ())
      | Faults.Garble -> ())
    plan;
  (!applied_kills, !applied_stalls)

let await_all_up fleet ~timeout_s =
  let deadline = now () +. timeout_s in
  let rec go () =
    let st = Serve.Supervisor.status fleet.sup in
    if Array.for_all (fun r -> r.Serve.Supervisor.rs_state = "up") st then
      Some (now ())
    else if now () >= deadline then None
    else begin
      Thread.delay 0.05;
      go ()
    end
  in
  go ()

(* -- the experiment ---------------------------------------------------- *)

type scale_point = { replicas_n : int; wall : float; rps : float }

let run ?(quick = false) (_c : Bench_common.config) =
  Bench_common.heading
    "serving fleet (Serve.Supervisor): scaling, chaos, rolling reload";
  (* Large enough that the emulated measurement stall dominates the
     per-request socket + inference overhead (~2-4ms on this box):
     that is the production regime the scaling claim is about. *)
  let measure_delay_ms = 60.0 in
  let per_shard = if quick then 30 else 60 in
  let clients_per_group = 3 in
  let chaos_rounds = if quick then 4 else 6 in
  let chaos_duration = if quick then 5.0 else 10.0 in
  let chaos_seed = 0xC4A05 in
  let specs = balanced_specs ~replicas:3 ~per_shard in
  let groups = shard_groups ~replicas:3 specs in
  let n_specs = List.length specs in
  let clients = clients_per_group * List.length groups in

  (* --- 1. scaling: 1 replica vs 3 replicas, cold then hot ------------- *)
  Bench_common.subheading
    (Printf.sprintf
       "scaling: %d distinct nests, %d closed-loop clients, %.0fms emulated \
        measurement per unique nest"
       n_specs clients measure_delay_ms);
  let scale_point ~replicas =
    let fleet = start_fleet ~replicas ~measure_delay_ms in
    let cold = run_load fleet.sup ~clients_per_group ~groups ~rounds:1 in
    if cold.lost > 0 || cold.error_replies > 0 then
      failwith "exp_fleet: scaling run lost or failed requests";
    let hot = run_load fleet.sup ~clients_per_group ~groups ~rounds:1 in
    let hits, _misses = fleet_cache_totals fleet in
    fleet.shutdown ();
    let rps = float_of_int cold.sent /. cold.wall_s in
    let hot_rps = float_of_int hot.sent /. hot.wall_s in
    (* Cold sweep = all misses, hot sweep = all hits when each shard's
       cache survived; hits/specs is the per-shard preservation rate. *)
    let hit_fraction = float_of_int hits /. float_of_int (max 1 n_specs) in
    ({ replicas_n = replicas; wall = cold.wall_s; rps }, hot_rps, hit_fraction)
  in
  let p1, hot1_rps, hotfrac1 = scale_point ~replicas:1 in
  let p3, hot3_rps, hotfrac3 = scale_point ~replicas:3 in
  let speedup = p3.rps /. p1.rps in
  Printf.printf "%10s %10s %10s %12s %14s\n" "replicas" "wall (s)" "req/s"
    "hot req/s" "hot hit frac";
  Printf.printf "%10d %10.3f %10.2f %12.2f %14.2f\n" 1 p1.wall p1.rps hot1_rps
    hotfrac1;
  Printf.printf "%10d %10.3f %10.2f %12.2f %14.2f\n" 3 p3.wall p3.rps hot3_rps
    hotfrac3;
  Printf.printf "1 -> 3 replicas: %.2fx throughput\n" speedup;

  (* --- 2. chaos -------------------------------------------------------- *)
  Bench_common.subheading
    (Printf.sprintf
       "chaos: seeded kills%s under load (seed %#x, %.0fs plan)"
       (if quick then "" else " + stalls")
       chaos_seed chaos_duration);
  let plan =
    Faults.chaos_plan ~seed:chaos_seed ~replicas:3
      ~duration_s:chaos_duration ~kill_rate:0.5
      ~stall_rate:(if quick then 0.0 else 0.15)
      ~stall_seconds:0.4 ()
  in
  List.iter
    (fun e -> Printf.printf "  plan: %s\n" (Faults.chaos_event_to_string e))
    plan;
  let fleet = start_fleet ~replicas:3 ~measure_delay_ms in
  let t0 = now () in
  let chaos_thread =
    Thread.create (fun () -> ignore (run_chaos_plan fleet plan ~t0)) ()
  in
  let load = run_load fleet.sup ~clients_per_group ~groups ~rounds:chaos_rounds in
  Thread.join chaos_thread;
  let kills, stalls =
    List.fold_left
      (fun (k, s) (e : Faults.chaos_event) ->
        match e.Faults.action with
        | Faults.Kill_replica -> (k + 1, s)
        | Faults.Stall _ -> (k, s + 1)
        | Faults.Garble -> (k, s))
      (0, 0) plan
  in
  (* Recovery: after the last kill, replicas must be back up within the
     capped-backoff bound (worst restart delay + health/ready laps +
     process boot). *)
  let recovery_started = now () in
  let backoff_cap =
    Serve.Backoff.max_delay (supervisor_config ~replicas:3).Serve.Supervisor.backoff
  in
  let recovery_bound = backoff_cap +. 1.0 +. 10.0 in
  let recovered_at = await_all_up fleet ~timeout_s:recovery_bound in
  let recovery_s =
    match recovered_at with Some t -> t -. recovery_started | None -> -1.0
  in
  let m = Serve.Supervisor.metrics fleet.sup in
  let hedges = Serve.Metrics.counter m "fleet_hedges_total" in
  let rescues = Serve.Metrics.counter m "fleet_hedge_rescues_total" in
  let upstream = Serve.Metrics.counter m "fleet_upstream_failures_total" in
  let unavailable = Serve.Metrics.counter m "fleet_unavailable_total" in
  let restarts =
    Array.fold_left
      (fun acc r -> acc + r.Serve.Supervisor.rs_restarts)
      0
      (Serve.Supervisor.status fleet.sup)
  in
  Printf.printf
    "%d requests | ok %d | error replies %d | LOST %d | hedges %d (rescued \
     %d) | upstream failures %d | unavailable %d\n"
    load.sent load.ok load.error_replies load.lost hedges rescues upstream
    unavailable;
  Printf.printf
    "%d kills, %d stalls injected | %d restarts | all-up again in %.2fs \
     (bound %.2fs)\n"
    kills stalls restarts recovery_s recovery_bound;
  if load.lost > 0 then failwith "exp_fleet: lost accepted requests";
  if recovered_at = None then
    failwith "exp_fleet: fleet did not recover within the backoff bound";

  (* --- 3. rolling reload under load ------------------------------------ *)
  Bench_common.subheading "rolling reload under load (hot checkpoint swap)";
  let reload_result = ref (Ok ()) in
  let reload_thread =
    Thread.create
      (fun () ->
        Thread.delay 0.3;
        reload_result := Serve.Supervisor.reload fleet.sup)
      ()
  in
  let reload_load = run_load fleet.sup ~clients_per_group ~groups ~rounds:2 in
  Thread.join reload_thread;
  let reload_ok = match !reload_result with Ok () -> true | Error _ -> false in
  Printf.printf "%d requests during reload | ok %d | error replies %d | LOST \
                 %d | reload %s\n"
    reload_load.sent reload_load.ok reload_load.error_replies reload_load.lost
    (match !reload_result with
    | Ok () -> "ok"
    | Error e -> "FAILED: " ^ e);
  if reload_load.lost > 0 then
    failwith "exp_fleet: lost requests during reload";
  fleet.shutdown ();

  (* --- artifact --------------------------------------------------------- *)
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"bench\": \"fleet\",\n";
  add "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  add "  \"replica_hidden\": %d,\n" replica_hidden;
  add "  \"measure_delay_ms\": %.1f,\n" measure_delay_ms;
  add "  \"scaling\": {\n";
  add "    \"requests\": %d,\n" n_specs;
  add "    \"clients\": %d,\n" clients;
  add "    \"one_replica\": {\"wall_seconds\": %.6f, \"rps\": %.2f, \
       \"hot_rps\": %.2f, \"hot_hit_fraction\": %.3f},\n"
    p1.wall p1.rps hot1_rps hotfrac1;
  add "    \"three_replicas\": {\"wall_seconds\": %.6f, \"rps\": %.2f, \
       \"hot_rps\": %.2f, \"hot_hit_fraction\": %.3f},\n"
    p3.wall p3.rps hot3_rps hotfrac3;
  add "    \"speedup\": %.2f\n" speedup;
  add "  },\n";
  add "  \"chaos\": {\n";
  add "    \"seed\": %d,\n" chaos_seed;
  add "    \"plan_duration_seconds\": %.1f,\n" chaos_duration;
  add "    \"kills\": %d,\n" kills;
  add "    \"stalls\": %d,\n" stalls;
  add "    \"requests\": %d,\n" load.sent;
  add "    \"ok\": %d,\n" load.ok;
  add "    \"error_replies\": %d,\n" load.error_replies;
  add "    \"lost\": %d,\n" load.lost;
  add "    \"hedges\": %d,\n" hedges;
  add "    \"hedge_rescues\": %d,\n" rescues;
  add "    \"upstream_failures\": %d,\n" upstream;
  add "    \"unavailable\": %d,\n" unavailable;
  add "    \"restarts\": %d,\n" restarts;
  add "    \"recovery_seconds\": %.3f,\n" recovery_s;
  add "    \"recovery_bound_seconds\": %.3f,\n" recovery_bound;
  add "    \"recovered_within_bound\": %b\n" (recovered_at <> None);
  add "  },\n";
  add "  \"reload\": {\n";
  add "    \"requests\": %d,\n" reload_load.sent;
  add "    \"ok\": %d,\n" reload_load.ok;
  add "    \"error_replies\": %d,\n" reload_load.error_replies;
  add "    \"lost\": %d,\n" reload_load.lost;
  add "    \"reload_ok\": %b\n" reload_ok;
  add "  },\n";
  add "  \"zero_lost_accepted\": %b\n"
    (load.lost = 0 && reload_load.lost = 0);
  add "}\n";
  let path = "BENCH_fleet.json" in
  Util.Atomic_file.write_string ~path (Buffer.contents b);
  Printf.printf "\nwrote %s\n" path
