(* Table 1 (feature shapes) and Table 2 (dataset distribution). *)

let table1 () =
  Bench_common.heading "Table 1 — shape of each extracted feature";
  let cfg = Env_config.default in
  let n = cfg.Env_config.n_max
  and l = cfg.Env_config.l_max
  and d = cfg.Env_config.d_max
  and tau = cfg.Env_config.tau in
  Printf.printf "%-34s %-22s %8s\n" "feature" "shape" "floats";
  let row name shape count = Printf.printf "%-34s %-22s %8d\n" name shape count in
  row "Loop Information" (Printf.sprintf "N = %d" n) n;
  row "Load Access Matrices"
    (Printf.sprintf "L x D x (N+1) = %dx%dx%d" l d (n + 1))
    (l * d * (n + 1));
  row "Store Access Matrix"
    (Printf.sprintf "D x (N+1) = %dx%d" d (n + 1))
    (d * (n + 1));
  row "Mathematical Operations Count" "6" 6;
  row "History of Optimizations"
    (Printf.sprintf "N x 3 x tau = %dx3x%d" n tau)
    (n * 3 * tau);
  Printf.printf "%-34s %-22s %8d\n" "total (observation vector)" ""
    (Env_config.obs_dim cfg);
  (* live check against a real op *)
  let st = Sched_state.init (Linalg.matmul ~m:512 ~n:512 ~k:512 ()) in
  assert (Array.length (Observation.extract cfg st) = Env_config.obs_dim cfg);
  Printf.printf "(verified against a live extraction)\n"

let table2 (c : Bench_common.config) =
  Bench_common.heading "Table 2 — operation distribution (train / validation)";
  let split = Generator.generate ~seed:c.Bench_common.seed () in
  let train = Generator.kind_counts split.Generator.train in
  let validation = Generator.kind_counts split.Generator.validation in
  let paper =
    [
      ("matmul", (175, 15)); ("conv2d", (232, 18)); ("maxpool", (200, 10));
      ("add", (248, 10)); ("relu", (233, 14));
    ]
  in
  Printf.printf "%-12s %14s %14s %20s\n" "operation" "train (ours)" "val (ours)"
    "paper (train/val)";
  List.iter
    (fun (k, (pt, pv)) ->
      Printf.printf "%-12s %14d %14d %17d/%d\n" k (List.assoc k train)
        (List.assoc k validation) pt pv)
    paper;
  Printf.printf "%-12s %14d %14d %17d/%d\n" "total"
    (Array.length split.Generator.train)
    (Array.length split.Generator.validation)
    1088 67
