(* Shared configuration and helpers for the experiment harness. *)

type config = {
  seed : int;
  hidden : int;  (* policy width; the paper uses 512 *)
  train_iterations : int;  (* paper: 1000 *)
  ablation_iterations : int;  (* figures 7/8 *)
  autosched_budget : int;
  rl_inference_trials : int;  (* sampled rollouts kept at eval time *)
  fig6_episodes : int;
  entropy_coef : float;
  (* paper: 0.01. The simulated reward is deterministic, which removes
     the measurement noise that keeps exploration alive on real
     hardware; 0.03 compensates (see EXPERIMENTS.md). *)
}

let default =
  {
    seed = 2026;
    hidden = 128;
    train_iterations = 400;
    ablation_iterations = 50;
    autosched_budget = 1500;
    rl_inference_trials = 24;
    fig6_episodes = 600;
    entropy_coef = 0.03;
  }

let fast =
  {
    default with
    hidden = 48;
    train_iterations = 15;
    ablation_iterations = 10;
    autosched_budget = 400;
    rl_inference_trials = 6;
    fig6_episodes = 150;
    entropy_coef = 0.03;
  }

let heading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subheading title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '-')

let note fmt = Printf.printf fmt

(* The shared trained agent (hierarchical space, Final reward), reused
   by fig5 and fig6. *)
type trained = { env : Env.t; policy : Policy.t; train_seconds : float }

let train_agent (c : config) ~ops =
  let cfg = Env_config.default in
  let env = Env.create cfg in
  let rng = Util.Rng.create c.seed in
  let policy = Policy.create ~hidden:c.hidden ~backbone_layers:2 rng cfg in
  Printf.printf
    "training agent: %d iterations x %d steps, hidden %d (%d parameters), %d train ops\n%!"
    c.train_iterations Ppo.default_config.Ppo.batch_size c.hidden
    (Policy.param_count policy) (Array.length ops);
  let t0 = Unix.gettimeofday () in
  let config =
    {
      Trainer.default_config with
      Trainer.ppo = { Ppo.default_config with Ppo.entropy_coef = c.entropy_coef };
      iterations = c.train_iterations;
      seed = c.seed;
    }
  in
  let _ =
    Trainer.train config env policy ~ops ~callback:(fun s ->
        if s.Trainer.iteration mod 10 = 0 || s.Trainer.iteration = 1 then
          Printf.printf
            "  iter %4d | return %7.3f | geomean episode speedup %9.2fx\n%!"
            s.Trainer.iteration s.Trainer.mean_episode_return
            s.Trainer.mean_final_speedup)
  in
  let train_seconds = Unix.gettimeofday () -. t0 in
  Printf.printf "  trained in %.1f s wall-clock\n%!" train_seconds;
  { env; policy; train_seconds }

(* Best schedule the trained agent proposes for an op: greedy rollout
   plus a few stochastic samples (inference-time exploration). *)
let rl_best rng (t : trained) (c : config) op =
  let sched_g, speed_g = Trainer.greedy_rollout t.env t.policy op in
  let sched_s, speed_s =
    Trainer.sampled_best rng t.env t.policy op ~trials:c.rl_inference_trials
  in
  if speed_g >= speed_s then (sched_g, speed_g) else (sched_s, speed_s)

let geomean = Util.Stats.geomean
let mean = Util.Stats.mean
