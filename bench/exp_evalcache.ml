(* Memoized evaluation pipeline: how much of the evaluation bill the
   structural digests, the state-seconds transposition cache and the
   prefix-sharing exhaustive search actually save.

   Four measurements, mirroring the paths the caches sit on:

   1. digest microbench: [Loop_nest.digest] (structural, no printing)
      vs the print+MD5 scheme it replaced in lib/serve;
   2. exhaustive auto-scheduler search: candidates/sec of
      [Auto_scheduler.search_naive] on a cache-disabled evaluator
      (apply_all per candidate, full cost model per evaluation) vs the
      prefix-sharing [Auto_scheduler.search], cold and with a warm
      state cache (the serve/repeated-tuning scenario);
   3. beam search end to end, transposition cache off vs on, cold and
      warm;
   4. --jobs 4 training throughput (noise + faults on), state cache
      off vs on.

   Every memoized run is checked against its naive twin (same best
   schedule, speedup and explored count — the differential suite in
   test/test_evalcache.ml proves bit-identity; here we just refuse to
   report a number for a run that diverged, printing MISMATCH).

   The committed full run is BENCH_evalcache.json; EXPERIMENTS.md
   records the interpretation. *)

let now () = Unix.gettimeofday ()

(* -- 1. digest microbench --------------------------------------------- *)

type digest_point = {
  nest_name : string;
  structural_ns : float;
  print_md5_ns : float;
}

let time_per_call ~iters f =
  (* One warm-up call keeps one-time lowering/alloc effects out. *)
  ignore (Sys.opaque_identity (f ()));
  let t0 = now () in
  for _ = 1 to iters do
    ignore (Sys.opaque_identity (f ()))
  done;
  (now () -. t0) /. float_of_int iters *. 1e9

let digest_bench ~iters =
  List.map
    (fun (nest_name, op) ->
      let nest = Lower.to_loop_nest op in
      let structural_ns =
        time_per_call ~iters (fun () -> Loop_nest.digest nest)
      in
      let print_md5_ns =
        time_per_call ~iters (fun () ->
            Digest.to_hex (Digest.string (Ir_printer.to_string nest)))
      in
      { nest_name; structural_ns; print_md5_ns })
    [
      ("matmul_64", Linalg.matmul ~m:64 ~n:64 ~k:64 ());
      ( "conv2d_28",
        Linalg.conv2d
          {
            Linalg.batch = 1;
            in_h = 28;
            in_w = 28;
            channels = 32;
            kernel_h = 3;
            kernel_w = 3;
            filters = 64;
            stride = 1;
          } );
    ]

(* -- 2/3. search: naive vs memoized ----------------------------------- *)

type search_point = {
  label : string;
  wall_s : float;
  evaluated : int;  (* logical evaluations (cost-model calls saved or not) *)
  state_hits : int;
  state_misses : int;
}

let state_stats ev =
  match (Evaluator.cache_stats ev).Evaluator.state with
  | None -> (0, 0)
  | Some s -> (s.Util.Sharded_cache.hits, s.Util.Sharded_cache.misses)

let fingerprint (r : Auto_scheduler.result) =
  Printf.sprintf "%s|%.17g|%d"
    (Schedule.to_string r.Auto_scheduler.best_schedule)
    r.Auto_scheduler.best_speedup r.Auto_scheduler.explored

let mismatch = ref false

let require_equal what a b =
  if a <> b then begin
    mismatch := true;
    Printf.printf "MISMATCH: %s\n  naive:    %s\n  memoized: %s\n" what a b
  end

let exhaustive_bench ~budget ?(tile_sizes = []) op =
  let config =
    {
      Auto_scheduler.default_config with
      Auto_scheduler.max_schedules = budget;
      tile_sizes;
    }
  in
  let run label search ev =
    let t0 = now () in
    let r = search ~config ev op in
    let wall_s = now () -. t0 in
    let state_hits, state_misses = state_stats ev in
    ( { label; wall_s; evaluated = Evaluator.explored ev; state_hits; state_misses },
      r )
  in
  let naive_pt, naive_r =
    run "naive (no caches, apply_all per candidate)"
      (fun ~config ev op -> Auto_scheduler.search_naive ~config ev op)
      (Evaluator.create ~state_cache_capacity:0 ())
  in
  let memo_ev = Evaluator.create () in
  let cold_pt, cold_r =
    run "memoized, cold state cache"
      (fun ~config ev op -> Auto_scheduler.search ~config ev op)
      memo_ev
  in
  let warm_pt, warm_r =
    run "memoized, warm state cache"
      (fun ~config ev op -> Auto_scheduler.search ~config ev op)
      memo_ev
  in
  require_equal "exhaustive naive vs memoized-cold" (fingerprint naive_r)
    (fingerprint cold_r);
  require_equal "exhaustive memoized cold vs warm" (fingerprint cold_r)
    (fingerprint warm_r);
  (* The warm run's explored counter includes the cold run's (same
     evaluator); isolate the delta. *)
  let warm_pt =
    { warm_pt with evaluated = warm_pt.evaluated - cold_pt.evaluated }
  in
  [ naive_pt; cold_pt; warm_pt ]

let beam_bench op =
  let run label cap ev_opt =
    let ev =
      match ev_opt with
      | Some ev -> ev
      | None -> Evaluator.create ~state_cache_capacity:cap ()
    in
    let before = Evaluator.explored ev in
    let t0 = now () in
    let r = Beam_search.search ev op in
    let wall_s = now () -. t0 in
    let state_hits, state_misses = state_stats ev in
    ( {
        label;
        wall_s;
        evaluated = Evaluator.explored ev - before;
        state_hits;
        state_misses;
      },
      r,
      ev )
  in
  let off_pt, off_r, _ = run "cache off" 0 None in
  let on_pt, on_r, on_ev = run "cache on, cold" 65536 None in
  let warm_pt, warm_r, _ = run "cache on, warm" 65536 (Some on_ev) in
  let fp (r : Beam_search.result) =
    Printf.sprintf "%s|%.17g|%d"
      (Schedule.to_string r.Beam_search.best_schedule)
      r.Beam_search.best_speedup r.Beam_search.explored
  in
  require_equal "beam off vs on" (fp off_r) (fp on_r);
  require_equal "beam on vs warm" (fp on_r) (fp warm_r);
  [ off_pt; on_pt; warm_pt ]

(* -- 4. parallel training throughput ---------------------------------- *)

type train_point = {
  t_label : string;
  t_wall_s : float;
  episodes : int;
  t_state_hits : int;
  t_state_misses : int;
}

let train_once (c : Bench_common.config) ~state_cache ~jobs ~iterations ~ops =
  let cfg = Env_config.default in
  let evaluator =
    Evaluator.create ~machine:cfg.Env_config.machine ~noise:0.02
      ~noise_seed:(c.Bench_common.seed + 13)
      ~state_cache_capacity:(if state_cache then 65536 else 0)
      ()
  in
  let faults =
    Faults.create
      ~config:(Faults.flaky ~rate:0.1 ())
      ~seed:(c.Bench_common.seed + 31) ()
  in
  let robust = Robust_evaluator.create ~faults evaluator in
  let env = Env.create ~robust cfg in
  let rng = Util.Rng.create c.Bench_common.seed in
  let policy =
    Policy.create ~hidden:c.Bench_common.hidden ~backbone_layers:2 rng cfg
  in
  let config =
    {
      Trainer.default_config with
      Trainer.iterations;
      seed = c.Bench_common.seed;
      jobs;
    }
  in
  let t0 = now () in
  let stats = Trainer.train config env policy ~ops in
  let t_wall_s = now () -. t0 in
  let episodes =
    match List.rev stats with [] -> 0 | s :: _ -> s.Trainer.episodes
  in
  let t_state_hits, t_state_misses = state_stats evaluator in
  {
    t_label = (if state_cache then "state cache on" else "state cache off");
    t_wall_s;
    episodes;
    t_state_hits;
    t_state_misses;
  }

(* -- harness ----------------------------------------------------------- *)

let rate (p : search_point) = float_of_int p.evaluated /. p.wall_s

let hit_pct hits misses =
  let total = hits + misses in
  if total = 0 then 0.0 else 100.0 *. float_of_int hits /. float_of_int total

let print_search_table points =
  Printf.printf "%-42s %10s %10s %12s %9s\n" "variant" "wall (s)" "evals"
    "evals/sec" "hit rate";
  let base = rate (List.hd points) in
  List.iter
    (fun p ->
      Printf.printf "%-42s %10.4f %10d %12.0f %8.1f%%  (%.2fx)\n" p.label
        p.wall_s p.evaluated (rate p)
        (hit_pct p.state_hits p.state_misses)
        (rate p /. base))
    points

let json_of_results ~quick (dig : digest_point list)
    (exhaustive : search_point list) (beam : search_point list)
    (train : train_point list) =
  let b = Buffer.create 2048 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\n";
  add "  \"bench\": \"evalcache\",\n";
  add "  \"mode\": \"%s\",\n" (if quick then "quick" else "full");
  add "  \"digest\": [\n";
  List.iteri
    (fun i d ->
      add
        "    {\"nest\": \"%s\", \"structural_ns\": %.1f, \"print_md5_ns\": \
         %.1f, \"speedup\": %.1f}%s\n"
        d.nest_name d.structural_ns d.print_md5_ns
        (d.print_md5_ns /. d.structural_ns)
        (if i = List.length dig - 1 then "" else ","))
    dig;
  add "  ],\n";
  let search_json key points =
    let base = rate (List.hd points) in
    add "  \"%s\": [\n" key;
    List.iteri
      (fun i p ->
        add
          "    {\"variant\": \"%s\", \"wall_seconds\": %.4f, \"evaluations\": \
           %d, \"evals_per_sec\": %.0f, \"state_hit_rate_pct\": %.1f, \
           \"speedup_vs_naive\": %.2f}%s\n"
          p.label p.wall_s p.evaluated (rate p)
          (hit_pct p.state_hits p.state_misses)
          (rate p /. base)
          (if i = List.length points - 1 then "" else ","))
      points;
    add "  ],\n"
  in
  search_json "exhaustive" exhaustive;
  search_json "beam" beam;
  add "  \"train_jobs4\": [\n";
  let t_base = List.hd train in
  let t_base_rate =
    float_of_int t_base.episodes /. t_base.t_wall_s
  in
  List.iteri
    (fun i t ->
      let r = float_of_int t.episodes /. t.t_wall_s in
      add
        "    {\"variant\": \"%s\", \"wall_seconds\": %.2f, \"episodes\": %d, \
         \"episodes_per_sec\": %.1f, \"state_hit_rate_pct\": %.1f, \
         \"speedup_vs_off\": %.2f}%s\n"
        t.t_label t.t_wall_s t.episodes r
        (hit_pct t.t_state_hits t.t_state_misses)
        (r /. t_base_rate)
        (if i = List.length train - 1 then "" else ","))
    train;
  add "  ],\n";
  add "  \"mismatch\": %b\n" !mismatch;
  add "}\n";
  Buffer.contents b

let run ?(quick = false) (c : Bench_common.config) =
  mismatch := false;
  Bench_common.heading
    "memoized evaluation pipeline: digests, transposition cache, prefix sharing";

  Bench_common.subheading "structural digest vs print+MD5 (ns per digest)";
  let dig = digest_bench ~iters:(if quick then 2000 else 20000) in
  List.iter
    (fun d ->
      Printf.printf "%-12s structural %8.0f ns | print+MD5 %8.0f ns | %.1fx\n"
        d.nest_name d.structural_ns d.print_md5_ns
        (d.print_md5_ns /. d.structural_ns))
    dig;

  Bench_common.subheading
    "exhaustive auto-scheduler search (prefix-sharing DFS + state cache)";
  (* A 7-loop conv: deep nests are where the cost model is expensive
     relative to a cache probe. tile_sizes restricted so the space
     (~11k candidates with the im2col twin) stays exhaustive. *)
  let ex_op =
    Linalg.conv2d
      {
        Linalg.batch = 1;
        in_h = 14;
        in_w = 14;
        channels = 8;
        kernel_h = 3;
        kernel_w = 3;
        filters = 16;
        stride = 1;
      }
  in
  let exhaustive = exhaustive_bench ~budget:20000 ~tile_sizes:[ 2; 4 ] ex_op in
  print_search_table exhaustive;

  Bench_common.subheading "beam search (transposition cache inside score)";
  let beam = beam_bench ex_op in
  print_search_table beam;

  Bench_common.subheading "training throughput, --jobs 4 (noise 2%, faults 10%)";
  let iterations = if quick then 2 else 4 in
  (* Deep nests again: on shallow matmuls the policy forward pass, not
     the cost model, dominates an episode step and the cache's effect
     drowns in scheduler noise. *)
  let train_ops = [| ex_op; Linalg.matmul ~m:128 ~n:128 ~k:64 () |] in
  let train =
    [
      train_once c ~state_cache:false ~jobs:4 ~iterations ~ops:train_ops;
      train_once c ~state_cache:true ~jobs:4 ~iterations ~ops:train_ops;
    ]
  in
  List.iter
    (fun t ->
      Printf.printf "%-16s %8.2f s %6d episodes %8.1f eps/s  hit rate %.1f%%\n"
        t.t_label t.t_wall_s t.episodes
        (float_of_int t.episodes /. t.t_wall_s)
        (hit_pct t.t_state_hits t.t_state_misses))
    train;

  let json = json_of_results ~quick dig exhaustive beam train in
  let path = "BENCH_evalcache.json" in
  (* Atomic (temp + rename): a reader or a crash mid-run never sees a
     half-written artifact. *)
  Util.Atomic_file.write_string ~path json;
  Printf.printf "\nwrote %s%s\n" path
    (if !mismatch then " (MISMATCH present!)" else "")
