(* Figure 6 — search efficiency: evolution of the best speedup found as
   the number of explored schedules grows, RL agent vs exhaustive
   search, per operation kind. *)

let checkpoints = [ 1; 5; 10; 25; 50; 100; 200; 400; 600; 1000; 1500 ]

let series_at trace =
  (* trace: (explored, best) array; sample it at the checkpoints that
     the trace actually reaches *)
  let n = Array.length trace in
  let limit = if n = 0 then 0 else fst trace.(n - 1) in
  List.filter_map
    (fun cp ->
      if cp > limit then None
      else begin
        let best = ref None in
        Array.iter (fun (i, sp) -> if i <= cp then best := Some sp) trace;
        Option.map (fun b -> (cp, b)) !best
      end)
    checkpoints

let rl_trace rng (trained : Bench_common.trained) op ~episodes =
  (* Each stochastic episode measures exactly one schedule (Final
     reward), so episodes = schedules explored. *)
  let best = ref 0.0 in
  let trace = ref [] in
  for episode = 1 to episodes do
    let _, speedup =
      Trainer.sampled_best rng trained.Bench_common.env trained.Bench_common.policy
        op ~trials:1
    in
    if speedup > !best then best := speedup;
    trace := (episode, !best) :: !trace
  done;
  Array.of_list (List.rev !trace)

let run (c : Bench_common.config) (trained : Bench_common.trained) =
  Bench_common.heading
    "Figure 6 — best speedup vs schedules explored (RL vs exhaustive search)";
  let split = Generator.generate ~seed:c.Bench_common.seed () in
  let ev = Env.evaluator trained.Bench_common.env in
  let rng = Util.Rng.create (c.Bench_common.seed + 2) in
  let pick kind =
    Array.to_list split.Generator.validation
    |> List.filter (fun op -> Linalg.kind_name op = kind)
    |> function
    | [] -> None
    | op :: _ -> Some op
  in
  List.iter
    (fun kind ->
      match pick kind with
      | None -> ()
      | Some op ->
          Bench_common.subheading (Printf.sprintf "%s (%s)" kind op.Linalg.op_name);
          let auto_config =
            {
              Auto_scheduler.default_config with
              Auto_scheduler.max_schedules = c.Bench_common.autosched_budget;
            }
          in
          let auto = Auto_scheduler.search ~config:auto_config ev op in
          let rl =
            rl_trace rng trained op ~episodes:c.Bench_common.fig6_episodes
          in
          Printf.printf "%-10s %15s %15s\n" "explored" "RL best x" "exhaustive x";
          let rl_series = series_at rl in
          let auto_series = series_at auto.Auto_scheduler.trace in
          List.iter
            (fun cp ->
              let f series =
                match List.assoc_opt cp series with
                | Some v -> Printf.sprintf "%15.1f" v
                | None -> Printf.sprintf "%15s" "-"
              in
              Printf.printf "%-10d %s %s\n" cp (f rl_series) (f auto_series))
            checkpoints;
          Printf.printf
            "RL reaches %.0fx after %d schedules; exhaustive search needs %s\n"
            (match rl_series with [] -> 1.0 | l -> snd (List.hd (List.rev l)))
            (match rl_series with [] -> 0 | l -> fst (List.hd (List.rev l)))
            (let target =
               match rl_series with [] -> 1.0 | l -> snd (List.hd (List.rev l))
             in
             match
               Array.find_opt (fun (_, sp) -> sp >= target) auto.Auto_scheduler.trace
             with
             | Some (i, _) -> Printf.sprintf "%d schedules for the same level" i
             | None -> "more than its whole budget for the same level"))
    [ "matmul"; "conv2d"; "maxpool"; "add"; "relu" ]
