(* Largest candidate that divides [trip], or 0 when none does. *)
let pick_div trip candidates =
  match List.find_opt (fun c -> c <= trip && trip mod c = 0) candidates with
  | Some c -> c
  | None -> 0

(* Ordered by preference: sizes around 64 keep enough parallel chunks
   to fill 28 cores on typical dims while leaving large point tiles. *)
let big = [ 64; 32; 128; 16; 256; 8; 4; 2 ]
let mid = [ 64; 32; 16; 8; 4; 2 ]
let small = [ 8; 4; 2 ]

let matmul_recipes m n k =
  let pm = pick_div m big and pn = pick_div n big in
  let recipes = ref [] in
  let add r = recipes := r :: !recipes in
  if pm > 0 || pn > 0 then begin
    add [ Schedule.Parallelize [| pm; pn; 0 |]; Schedule.Vectorize ];
    let tm = pick_div (if pm > 0 then pm else m) small in
    let tn = pick_div (if pn > 0 then pn else n) mid in
    let tk = pick_div k mid in
    if tm + tn + tk > 0 then begin
      add
        [
          Schedule.Parallelize [| pm; pn; 0 |];
          Schedule.Tile [| tm; tn; tk |];
          Schedule.Swap 1;
          Schedule.Vectorize;
        ];
      add
        [
          Schedule.Parallelize [| pm; pn; 0 |];
          Schedule.Tile [| tm; tn; tk |];
          Schedule.Vectorize;
        ]
    end
  end;
  let tk = pick_div k mid in
  if tk > 0 then
    add [ Schedule.Tile [| 0; 0; tk |]; Schedule.Swap 1; Schedule.Vectorize ];
  add [ Schedule.Vectorize ];
  !recipes

let conv_recipes (op : Linalg.t) =
  let d = op.Linalg.domain in
  (* (n, oh, ow, f, kh, kw, c) *)
  let poh = pick_div d.(1) mid
  and pow = pick_div d.(2) mid
  and pf = pick_div d.(3) mid in
  let direct =
    if poh + pow + pf > 0 then
      [
        [
          Schedule.Parallelize [| 0; poh; pow; pf; 0; 0; 0 |];
          Schedule.Vectorize;
        ];
        [
          Schedule.Parallelize [| 0; poh; pow; pf; 0; 0; 0 |];
          (* rotate f last so the vector loop runs over filters *)
          Schedule.Interchange [| 0; 1; 2; 4; 5; 6; 3 |];
          Schedule.Vectorize;
        ];
      ]
    else [ [ Schedule.Vectorize ] ]
  in
  let im2col =
    match Im2col.rewrite op with
    | Error _ -> []
    | Ok (gemm, _) ->
        let gd = gemm.Linalg.domain in
        List.map
          (fun r -> Schedule.Im2col :: r)
          (matmul_recipes gd.(0) gd.(1) gd.(2))
  in
  direct @ im2col

let pool_recipes (op : Linalg.t) =
  let d = op.Linalg.domain in
  (* (n, oh, ow, c, kh, kw) *)
  let poh = pick_div d.(1) mid
  and pow = pick_div d.(2) mid
  and pc = pick_div d.(3) mid in
  if poh + pow + pc > 0 then
    [
      [
        Schedule.Parallelize [| 0; poh; pow; pc; 0; 0 |];
        Schedule.Vectorize;
      ];
      [ Schedule.Vectorize ];
    ]
  else [ [ Schedule.Vectorize ] ]

let elementwise_recipes (op : Linalg.t) =
  let d = op.Linalg.domain in
  let n = Array.length d in
  let sizes = Array.make n 0 in
  sizes.(0) <- pick_div d.(0) mid;
  if n > 1 && sizes.(0) = 0 then sizes.(1) <- pick_div d.(1) mid;
  if Array.exists (fun s -> s > 0) sizes then
    [ [ Schedule.Parallelize sizes; Schedule.Vectorize ]; [ Schedule.Vectorize ] ]
  else [ [ Schedule.Vectorize ] ]

let recipes (op : Linalg.t) =
  match op.Linalg.kind with
  | Linalg.Matmul { m; n; k } -> matmul_recipes m n k
  | Linalg.Batch_matmul { bb; m; n; k } ->
      (* treat the batch dim like an extra parallel m dim *)
      List.map
        (fun sched ->
          List.map
            (function
              | Schedule.Tile sizes ->
                  Schedule.Tile (Array.append [| 0 |] sizes)
              | Schedule.Parallelize sizes ->
                  Schedule.Parallelize
                    (Array.append [| (if bb > 1 then pick_div bb mid else 0) |] sizes)
              | Schedule.Swap i -> Schedule.Swap (i + 1)
              | tr -> tr)
            sched)
        (matmul_recipes m n k)
  | Linalg.Conv2d _ | Linalg.Conv2d_nchw _ -> conv_recipes op
  | Linalg.Depthwise_conv2d _ | Linalg.Maxpool _ | Linalg.Avgpool _ ->
      pool_recipes op
  | Linalg.Add_op _ | Linalg.Relu_op _ | Linalg.Unary_op _ | Linalg.Binary_op _
  | Linalg.Bias_add _ ->
      elementwise_recipes op
  | Linalg.Generic_op -> [ [ Schedule.Vectorize ] ]

let expert_schedule evaluator op =
  let best = ref ([ Schedule.Vectorize ], 0.0) in
  List.iter
    (fun sched ->
      match Evaluator.schedule_speedup evaluator op sched with
      | Ok sp when sp > snd !best -> best := (sched, sp)
      | Ok _ | Error _ -> ())
    (recipes op);
  !best

(* Kernel factors calibrated once against the paper's §5.2.2 geomeans:
   time_tf = best_expert_time * factor, so RL-vs-TF speedup lands near
   the reported values when the agent finds near-best schedules. *)
let tf_factor (op : Linalg.t) =
  match op.Linalg.kind with
  | Linalg.Matmul _ | Linalg.Batch_matmul _ -> 7.55
  | Linalg.Conv2d _ | Linalg.Conv2d_nchw _ | Linalg.Depthwise_conv2d _ -> 1.16
  | Linalg.Maxpool _ | Linalg.Avgpool _ -> 0.24
  | Linalg.Add_op _ | Linalg.Binary_op _ | Linalg.Bias_add _ -> 1.05
  | Linalg.Relu_op _ | Linalg.Unary_op _ -> 1.68
  | Linalg.Generic_op -> 1.0

let tf_jit_factor (op : Linalg.t) =
  (* XLA fuses elementwise chains and improves matmul/conv modestly. *)
  tf_factor op
  *.
  match op.Linalg.kind with
  | Linalg.Matmul _ | Linalg.Batch_matmul _ | Linalg.Conv2d _
  | Linalg.Conv2d_nchw _ | Linalg.Depthwise_conv2d _ ->
      0.95
  | Linalg.Maxpool _ | Linalg.Avgpool _ -> 1.0
  | Linalg.Add_op _ | Linalg.Relu_op _ | Linalg.Unary_op _ | Linalg.Binary_op _
  | Linalg.Bias_add _ ->
      0.85
  | Linalg.Generic_op -> 1.0

let best_seconds evaluator op =
  let _, speedup = expert_schedule evaluator op in
  let base = Evaluator.base_seconds evaluator op in
  base /. Float.max speedup 1e-9

let tf_seconds evaluator op = best_seconds evaluator op *. tf_factor op
let tf_jit_seconds evaluator op = best_seconds evaluator op *. tf_jit_factor op
