(** Synthetic TensorFlow / TensorFlow-JIT comparators.

    The paper compares against real TensorFlow kernels, which this
    container does not have. We reconstruct the comparison curve
    shape-faithfully: each op is priced as the best of a small menu of
    expert schedules evaluated in the same performance model,
    multiplied by a per-op-kind {e kernel factor} calibrated once from
    the paper's reported geomeans (RL beats TF by ~7.55x on matmul,
    ~1.16x on conv, ~1.05x on add, ~1.68x on relu; TF beats everything
    ~4x on pooling thanks to its fused pooling kernel, which is not
    expressible with the five transformations). The calibration is
    documented in EXPERIMENTS.md. *)

val expert_schedule : Evaluator.t -> Linalg.t -> Schedule.t * float
(** Best schedule from the expert menu for this op and its speedup over
    the untransformed base — also a useful quick scheduler on its own. *)

val tf_factor : Linalg.t -> float
(** Kernel factor applied to the expert time: > 1 means TensorFlow is
    slower than the best-schedule estimate, < 1 faster. *)

val tf_jit_factor : Linalg.t -> float

val tf_seconds : Evaluator.t -> Linalg.t -> float
(** Simulated TensorFlow execution time for the op. *)

val tf_jit_seconds : Evaluator.t -> Linalg.t -> float
(** Simulated XLA-compiled TensorFlow time. *)
