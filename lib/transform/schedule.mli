(** Schedules: sequences of code transformations.

    A schedule is the ordered list of actions the paper's agent emits for
    one operation. The printable notation follows the paper:
    [T(0,32,64)] tiles loops with those sizes (0 = untiled),
    [P(4,0,0)] tiles and parallelizes, [I(1,0,2)] interchanges with the
    given permutation, [S(2)] swaps adjacent point loops 2 and 3,
    [C] is im2col and [V] is vectorization. *)

type transformation =
  | Tile of int array  (** per point-loop tile sizes, 0 = untiled *)
  | Parallelize of int array  (** tile sizes; tile loops run in parallel *)
  | Interchange of int array  (** full permutation of the point band *)
  | Swap of int  (** adjacent transposition (i, i+1) of the point band *)
  | Im2col
  | Vectorize
  | Unroll of int
      (** unroll the innermost loop — a §6.1 future-work extension, not
          part of the default action space; notation [U(f)] *)

type t = transformation list

val to_string : t -> string
(** Compact notation, e.g. ["T(0,32,64) P(4,0,0) S(1) V"]. *)

val of_string : string -> (t, string) result
(** Inverse of {!to_string}; whitespace-separated, tolerant of extra
    spaces. *)

val dedup_key : t -> string
(** Injective encoding for dedup tables and memo keys on hot search
    paths — several times cheaper than {!to_string} (single buffer, no
    [Printf]) but not human-oriented and not parseable. *)

val add_dedup_key : Buffer.t -> t -> unit
(** Append the {!dedup_key} encoding to a caller-owned buffer — lets a
    hot loop build prefixed keys with one allocation per key. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val transformation_name : transformation -> string
(** "tiling", "parallelization", "interchange", "im2col" or
    "vectorization" — the action labels used in logs and benches. *)
