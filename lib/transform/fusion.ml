let is_identity_map (m : Affine.map) =
  Affine.equal_map m (Affine.identity_map m.Affine.n_dims)

let rec renumber_inputs offset (e : Linalg.scalar_expr) =
  match e with
  | Linalg.Input i -> Linalg.Input (i + offset)
  | Linalg.Output | Linalg.Const _ -> e
  | Linalg.Binop (b, x, y) ->
      Linalg.Binop (b, renumber_inputs offset x, renumber_inputs offset y)
  | Linalg.Unop (u, x) -> Linalg.Unop (u, renumber_inputs offset x)

(* Replace [Input target] in the consumer body with [replacement] and
   shift the consumer's other input indices per [shift]. *)
let rec graft ~target ~replacement ~shift (e : Linalg.scalar_expr) =
  match e with
  | Linalg.Input i -> if i = target then replacement else Linalg.Input (shift i)
  | Linalg.Output | Linalg.Const _ -> e
  | Linalg.Binop (b, x, y) ->
      Linalg.Binop
        (b, graft ~target ~replacement ~shift x, graft ~target ~replacement ~shift y)
  | Linalg.Unop (u, x) -> Linalg.Unop (u, graft ~target ~replacement ~shift x)

let rec uses_output (e : Linalg.scalar_expr) =
  match e with
  | Linalg.Output -> true
  | Linalg.Input _ | Linalg.Const _ -> false
  | Linalg.Binop (_, x, y) -> uses_output x || uses_output y
  | Linalg.Unop (_, x) -> uses_output x

let fuse ~(producer : Linalg.t) ~(consumer : Linalg.t) ~consumer_input =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  if consumer_input < 0 || consumer_input >= Array.length consumer.Linalg.inputs
  then err "fuse: consumer input %d out of range" consumer_input
  else if
    Array.exists
      (fun k -> k = Linalg.Reduction_iter)
      producer.Linalg.iter_kinds
  then err "fuse: producer must be elementwise (no reduction dims)"
  else if uses_output producer.Linalg.body || producer.Linalg.init <> None then
    err "fuse: producer must not accumulate into its output"
  else if not (is_identity_map producer.Linalg.output.Linalg.map) then
    err "fuse: producer output map must be the identity"
  else begin
    let slot = consumer.Linalg.inputs.(consumer_input) in
    if slot.Linalg.shape <> producer.Linalg.output.Linalg.shape then
      err "fuse: consumer input shape %s does not match producer output"
        (String.concat "x"
           (Array.to_list (Array.map string_of_int slot.Linalg.shape)))
    else begin
      (* Consumer point q reads the producer at point slot.map(q); each
         producer operand map composes through it. *)
      let through = slot.Linalg.map.Affine.exprs in
      let rebased_inputs =
        Array.map
          (fun (o : Linalg.operand) ->
            {
              Linalg.name = "p_" ^ o.Linalg.name;
              shape = Array.copy o.Linalg.shape;
              map = Affine.substitute_map o.Linalg.map through;
            })
          producer.Linalg.inputs
      in
      let kept_before = Array.sub consumer.Linalg.inputs 0 consumer_input in
      let kept_after =
        Array.sub consumer.Linalg.inputs (consumer_input + 1)
          (Array.length consumer.Linalg.inputs - consumer_input - 1)
      in
      (* Producer inputs come first so that fusing into a pipeline
         stage's slot 0 keeps the chained value at input 0. *)
      let inputs = Array.concat [ rebased_inputs; kept_before; kept_after ] in
      let n_producer = Array.length rebased_inputs in
      (* Old consumer index -> new index among kept inputs. *)
      let shift i =
        n_producer + if i < consumer_input then i else i - 1
      in
      let producer_body = renumber_inputs 0 producer.Linalg.body in
      let body =
        graft ~target:consumer_input ~replacement:producer_body ~shift
          consumer.Linalg.body
      in
      let fused =
        {
          consumer with
          Linalg.op_name =
            Printf.sprintf "%s_fused_%s" producer.Linalg.op_name
              consumer.Linalg.op_name;
          kind = Linalg.Generic_op;
          inputs;
          body;
        }
      in
      match Linalg.validate fused with
      | Ok () -> Ok fused
      | Error msg -> Error ("fuse: invalid fused op: " ^ msg)
    end
  end

let execute_fused_reference producer consumer ~consumer_input bindings =
  let producer_bindings =
    Array.to_list
      (Array.map
         (fun (o : Linalg.operand) ->
           match List.assoc_opt ("p_" ^ o.Linalg.name) bindings with
           | Some buf -> (o.Linalg.name, buf)
           | None ->
               invalid_arg
                 ("execute_fused_reference: missing buffer p_" ^ o.Linalg.name))
         producer.Linalg.inputs)
  in
  let intermediate = Linalg.execute_reference producer producer_bindings in
  let consumer_bindings =
    Array.to_list
      (Array.mapi
         (fun i (o : Linalg.operand) ->
           if i = consumer_input then (o.Linalg.name, intermediate)
           else
             match List.assoc_opt o.Linalg.name bindings with
             | Some buf -> (o.Linalg.name, buf)
             | None ->
                 invalid_arg
                   ("execute_fused_reference: missing buffer " ^ o.Linalg.name))
         consumer.Linalg.inputs)
  in
  Linalg.execute_reference consumer consumer_bindings
