let divisors n =
  if n <= 0 then invalid_arg "Loop_transforms.divisors: non-positive";
  let rec go d acc =
    if d > n then List.rev acc
    else go (d + 1) (if n mod d = 0 then d :: acc else acc)
  in
  go 1 []

let point_band_start (nest : Loop_nest.t) =
  let n = Array.length nest.loops in
  let seen = Hashtbl.create 8 in
  let rec scan i =
    if i < 0 then 0
    else
      let origin = nest.loops.(i).Loop_nest.origin in
      if Hashtbl.mem seen origin then i + 1
      else begin
        Hashtbl.add seen origin ();
        scan (i - 1)
      end
  in
  scan (n - 1)

let point_band (nest : Loop_nest.t) =
  let p0 = point_band_start nest in
  Array.sub nest.loops p0 (Array.length nest.loops - p0)

let dim_expr n_dims d = Affine.dim n_dims d

let tile ?(parallel = false) sizes (nest : Loop_nest.t) =
  let n = Array.length nest.loops in
  let p0 = point_band_start nest in
  let point_count = n - p0 in
  if Array.length sizes <> point_count then
    Error
      (Printf.sprintf "tile: %d sizes for a %d-loop point band"
         (Array.length sizes) point_count)
  else if not (Array.exists (fun t -> t > 0) sizes) then
    Error "tile: at least one tile size must be positive"
  else begin
    let bad = ref None in
    Array.iteri
      (fun rel t ->
        if t > 0 then begin
          let ub = nest.loops.(p0 + rel).Loop_nest.ub in
          if t > ub || ub mod t <> 0 then
            bad :=
              Some
                (Printf.sprintf "tile: size %d does not divide trip count %d"
                   t ub)
        end
        else if t < 0 then bad := Some "tile: negative tile size")
      sizes;
    match !bad with
    | Some msg -> Error msg
    | None ->
        let tiled_rels =
          List.filter (fun rel -> sizes.(rel) > 0)
            (List.init point_count (fun i -> i))
        in
        let k = List.length tiled_rels in
        let new_n = n + k in
        let tile_band =
          List.map
            (fun rel ->
              let l = nest.loops.(p0 + rel) in
              {
                Loop_nest.ub = l.Loop_nest.ub / sizes.(rel);
                kind = (if parallel then Loop_nest.Parallel else Loop_nest.Seq);
                origin = l.Loop_nest.origin;
              })
            tiled_rels
        in
        let new_point =
          Array.init point_count (fun rel ->
              let l = nest.loops.(p0 + rel) in
              if sizes.(rel) > 0 then { l with Loop_nest.ub = sizes.(rel) }
              else l)
        in
        let new_loops =
          Array.concat
            [ Array.sub nest.loops 0 p0; Array.of_list tile_band; new_point ]
        in
        (* Rank of each tiled rel within the tile band. *)
        let tile_rank = Hashtbl.create 8 in
        List.iteri (fun r rel -> Hashtbl.add tile_rank rel r) tiled_rels;
        let subst =
          Array.init n (fun j ->
              if j < p0 then dim_expr new_n j
              else
                let rel = j - p0 in
                let point_pos = p0 + k + rel in
                match Hashtbl.find_opt tile_rank rel with
                | None -> dim_expr new_n point_pos
                | Some r ->
                    Affine.add_expr
                      (Affine.scale sizes.(rel) (dim_expr new_n (p0 + r)))
                      (dim_expr new_n point_pos))
        in
        let nest' =
          Loop_nest.map_body_exprs
            (fun e -> Affine.substitute e subst)
            { nest with Loop_nest.loops = new_loops }
        in
        Ok nest'
  end

let is_permutation perm =
  let n = Array.length perm in
  let seen = Array.make n false in
  Array.for_all
    (fun p ->
      if p < 0 || p >= n || seen.(p) then false
      else begin
        seen.(p) <- true;
        true
      end)
    perm

let interchange perm (nest : Loop_nest.t) =
  let n = Array.length nest.loops in
  let p0 = point_band_start nest in
  let point_count = n - p0 in
  if Array.length perm <> point_count then
    Error
      (Printf.sprintf "interchange: permutation of arity %d for a %d-loop band"
         (Array.length perm) point_count)
  else if not (is_permutation perm) then
    Error "interchange: not a permutation"
  else begin
    let full = Array.init n (fun i -> if i < p0 then i else p0 + perm.(i - p0)) in
    let inv = Array.make n 0 in
    Array.iteri (fun i j -> inv.(j) <- i) full;
    let new_loops = Array.init n (fun i -> nest.loops.(full.(i))) in
    (* A permutation substitution only moves coefficients: the generic
       [Affine.substitute] would build the same expr through an O(n^2)
       sum of single-term dims. Permute directly — identical integer
       results, and interchange/swap sit on the search hot path. *)
    let permute (e : Affine.expr) =
      let c = e.Affine.coeffs in
      let c' = Array.make n 0 in
      for j = 0 to n - 1 do
        c'.(inv.(j)) <- c.(j)
      done;
      { e with Affine.coeffs = c' }
    in
    Ok
      (Loop_nest.map_body_exprs permute
         { nest with Loop_nest.loops = new_loops })
  end

let swap_adjacent i (nest : Loop_nest.t) =
  let point_count = Array.length nest.loops - point_band_start nest in
  if i < 0 || i >= point_count - 1 then
    Error (Printf.sprintf "swap_adjacent: index %d out of range" i)
  else begin
    let perm = Array.init point_count (fun j -> j) in
    perm.(i) <- i + 1;
    perm.(i + 1) <- i;
    interchange perm nest
  end

let is_vectorized (nest : Loop_nest.t) =
  let n = Array.length nest.loops in
  n > 0 && nest.loops.(n - 1).Loop_nest.kind = Loop_nest.Vector

let has_parallel_band (nest : Loop_nest.t) =
  Array.exists (fun l -> l.Loop_nest.kind = Loop_nest.Parallel) nest.loops

let unroll factor (nest : Loop_nest.t) =
  let n = Array.length nest.loops in
  if n = 0 then Error "unroll: nest has no loops"
  else if is_vectorized nest then Error "unroll: nest is already vectorized"
  else if factor < 2 then Error "unroll: factor must be at least 2"
  else begin
    let inner = nest.loops.(n - 1) in
    if inner.Loop_nest.ub mod factor <> 0 then
      Error
        (Printf.sprintf "unroll: factor %d does not divide trip count %d"
           factor inner.Loop_nest.ub)
    else begin
      let new_loops = Array.copy nest.loops in
      new_loops.(n - 1) <- { inner with Loop_nest.ub = inner.Loop_nest.ub / factor };
      (* Innermost variable i becomes factor*i + offset in copy [offset]. *)
      let shifted offset =
        let subst =
          Array.init n (fun d ->
              if d = n - 1 then
                Affine.expr ~const:offset n [ (n - 1, factor) ]
              else Affine.dim n d)
        in
        Loop_nest.map_body_exprs (fun e -> Affine.substitute e subst) nest
      in
      let body =
        List.concat_map
          (fun offset -> (shifted offset).Loop_nest.body)
          (List.init factor (fun o -> o))
      in
      Ok { nest with Loop_nest.loops = new_loops; body }
    end
  end

let vectorize (nest : Loop_nest.t) =
  let n = Array.length nest.loops in
  if n = 0 then Error "vectorize: nest has no loops"
  else if is_vectorized nest then Error "vectorize: already vectorized"
  else begin
    let new_loops = Array.copy nest.loops in
    new_loops.(n - 1) <-
      { (new_loops.(n - 1)) with Loop_nest.kind = Loop_nest.Vector };
    Ok { nest with Loop_nest.loops = new_loops }
  end
