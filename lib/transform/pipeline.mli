(** Linear operator pipelines.

    A pipeline is a chain of structured ops where each stage's first
    input is the previous stage's output — the shape of the per-layer
    workloads the paper's introduction motivates (conv / bias / relu /
    pool / dense chains). This module provides greedy elementwise fusion
    over such chains ({!Fusion}) and whole-pipeline scheduling with any
    per-op scheduler. *)

type stage = { stage_name : string; op : Linalg.t }
type t = stage list

val validate : t -> (unit, string) result
(** Checks the chaining invariant: every stage after the first has a
    first input whose shape equals the previous stage's output shape. *)

val fuse_elementwise : t -> t
(** Greedily fuse each elementwise stage into its successor whenever
    {!Fusion.fuse} accepts the pair (the producer must be a pure map;
    the consumer may be anything, including reductions). Runs to a fixed
    point; stage names are joined with ["+"]. *)

type scheduled_stage = {
  stage : stage;
  schedule : Schedule.t;
  base_seconds : float;
  scheduled_seconds : float;
}

type report = {
  stages : scheduled_stage list;
  total_base : float;
  total_scheduled : float;
}

val schedule :
  base_seconds:(Linalg.t -> float) ->
  scheduler:(Linalg.t -> Schedule.t * float) ->
  t ->
  report
(** Schedule every stage with the given per-op scheduler (returning a
    schedule and its speedup over base) and total the estimated times;
    [base_seconds] is typically [Evaluator.base_seconds ev]. *)

val execute_reference :
  t -> first_input:float array -> extra_inputs:(string * float array) list ->
  float array
(** Run the whole chain sequentially with the reference interpreter:
    stage [i]'s first input is stage [i-1]'s output; other inputs are
    looked up in [extra_inputs] under ["<stage_name>/<operand_name>"].
    Ground truth for the fusion tests. *)
