type transformation =
  | Tile of int array
  | Parallelize of int array
  | Interchange of int array
  | Swap of int
  | Im2col
  | Vectorize
  | Unroll of int

type t = transformation list

let ints_to_string arr =
  String.concat "," (Array.to_list (Array.map string_of_int arr))

let transformation_to_string = function
  | Tile sizes -> Printf.sprintf "T(%s)" (ints_to_string sizes)
  | Parallelize sizes -> Printf.sprintf "P(%s)" (ints_to_string sizes)
  | Interchange perm -> Printf.sprintf "I(%s)" (ints_to_string perm)
  | Swap i -> Printf.sprintf "S(%d)" i
  | Im2col -> "C"
  | Vectorize -> "V"
  | Unroll f -> Printf.sprintf "U(%d)" f

let to_string sched =
  String.concat " " (List.map transformation_to_string sched)

(* Injective encoding for dedup tables and memo keys on hot search
   paths: one Buffer, no Printf. Each transformation is a tag char plus
   ','-terminated integers, closed with ';', so distinct schedules never
   collide. [to_string] stays the human-readable / parseable form. *)
let add_dedup_key b sched =
  let ints arr =
    Array.iter
      (fun v ->
        Buffer.add_string b (string_of_int v);
        Buffer.add_char b ',')
      arr
  in
  List.iter
    (fun tr ->
      (match tr with
      | Tile sizes ->
          Buffer.add_char b 'T';
          ints sizes
      | Parallelize sizes ->
          Buffer.add_char b 'P';
          ints sizes
      | Interchange perm ->
          Buffer.add_char b 'I';
          ints perm
      | Swap i ->
          Buffer.add_char b 'S';
          Buffer.add_string b (string_of_int i)
      | Im2col -> Buffer.add_char b 'C'
      | Vectorize -> Buffer.add_char b 'V'
      | Unroll f ->
          Buffer.add_char b 'U';
          Buffer.add_string b (string_of_int f));
      Buffer.add_char b ';')
    sched

let dedup_key sched =
  let b = Buffer.create 48 in
  add_dedup_key b sched;
  Buffer.contents b

let pp ppf sched = Format.pp_print_string ppf (to_string sched)

let equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun x y ->
         match (x, y) with
         | Tile s1, Tile s2 | Parallelize s1, Parallelize s2 -> s1 = s2
         | Interchange p1, Interchange p2 -> p1 = p2
         | Swap i, Swap j -> i = j
         | Im2col, Im2col | Vectorize, Vectorize -> true
         | Unroll f1, Unroll f2 -> f1 = f2
         | ( (Tile _ | Parallelize _ | Interchange _ | Swap _ | Im2col
             | Vectorize | Unroll _ ),
             _ ) ->
             false)
       a b

let transformation_name = function
  | Tile _ -> "tiling"
  | Parallelize _ -> "parallelization"
  | Interchange _ | Swap _ -> "interchange"
  | Im2col -> "im2col"
  | Vectorize -> "vectorization"
  | Unroll _ -> "unrolling"

let parse_ints s =
  let parts = String.split_on_char ',' s in
  try Ok (Array.of_list (List.map (fun p -> int_of_string (String.trim p)) parts))
  with Failure _ -> Error (Printf.sprintf "bad integer list %S" s)

let parse_one tok =
  let with_args prefix =
    let n = String.length tok in
    let plen = String.length prefix in
    if n >= plen + 2 && String.sub tok 0 plen = prefix && tok.[plen] = '('
       && tok.[n - 1] = ')'
    then Some (String.sub tok (plen + 1) (n - plen - 2))
    else None
  in
  match tok with
  | "C" -> Ok Im2col
  | "V" -> Ok Vectorize
  | _ -> (
      match with_args "T" with
      | Some args -> Result.map (fun a -> Tile a) (parse_ints args)
      | None -> (
          match with_args "P" with
          | Some args -> Result.map (fun a -> Parallelize a) (parse_ints args)
          | None -> (
              match with_args "I" with
              | Some args -> Result.map (fun a -> Interchange a) (parse_ints args)
              | None -> (
                  match with_args "S" with
                  | Some args ->
                      Result.bind (parse_ints args) (fun a ->
                          if Array.length a = 1 then Ok (Swap a.(0))
                          else Error "S takes one index")
                  | None -> (
                      match with_args "U" with
                      | Some args ->
                          Result.bind (parse_ints args) (fun a ->
                              if Array.length a = 1 then Ok (Unroll a.(0))
                              else Error "U takes one factor")
                      | None ->
                          Error (Printf.sprintf "unknown transformation %S" tok))))))

let of_string s =
  let tokens =
    List.filter (fun t -> t <> "") (String.split_on_char ' ' (String.trim s))
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | tok :: rest -> (
        match parse_one tok with
        | Ok tr -> go (tr :: acc) rest
        | Error _ as e -> e)
  in
  go [] tokens
