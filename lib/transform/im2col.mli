(** The im2col rewrite: convolution as matrix multiplication.

    Rewrites an NHWC valid convolution with domain
    (n, oh, ow, f, kh, kw, c) into a GEMM of shape
    M = n*oh*ow, N = f, K = kh*kw*c. The filter tensor (kh, kw, c, f) is
    already laid out as the (K, N) matrix row-major, and the GEMM output
    (M, N) is exactly the flattened (n, oh, ow, f) output, so only the
    input image needs packing into the column matrix — whose cost the
    performance model charges separately. *)

val rewrite : Linalg.t -> (Linalg.t * [ `Packing_elements of int ], string) result
(** [rewrite op] returns the equivalent matmul op and the number of
    elements materialized into the column matrix (M*K), or an error when
    [op] is not a convolution. *)

val pack_input : Linalg.conv_params -> float array -> float array
(** [pack_input p input] builds the column matrix for a flattened NHWC
    input buffer: row [(n*OH + oh)*OW + ow], column [(kh*KW + kw)*C + c]
    holds [input\[n, oh*s + kh, ow*s + kw, c\]]. Used by the equivalence
    tests. Raises [Invalid_argument] on a mis-sized buffer. *)

val gemm_of : Linalg.conv_params -> m:int -> n:int -> k:int -> bool
(** [gemm_of p ~m ~n ~k] checks the GEMM dimensions match the
    convolution parameters; exposed for assertions in callers. *)
