type stage = { stage_name : string; op : Linalg.t }
type t = stage list

let output_shape (op : Linalg.t) = op.Linalg.output.Linalg.shape

let first_input_shape (op : Linalg.t) =
  if Array.length op.Linalg.inputs = 0 then None
  else Some op.Linalg.inputs.(0).Linalg.shape

let validate pipeline =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let rec go = function
    | [] | [ _ ] -> Ok ()
    | a :: (b :: _ as rest) -> (
        match first_input_shape b.op with
        | None -> err "stage %s has no inputs to chain into" b.stage_name
        | Some shape ->
            if shape <> output_shape a.op then
              err "stage %s output does not feed stage %s input" a.stage_name
                b.stage_name
            else go rest)
  in
  match pipeline with [] -> Error "empty pipeline" | _ -> go pipeline

let fuse_elementwise pipeline =
  let rec pass = function
    | a :: b :: rest -> (
        match Fusion.fuse ~producer:a.op ~consumer:b.op ~consumer_input:0 with
        | Ok fused ->
            let merged =
              { stage_name = a.stage_name ^ "+" ^ b.stage_name; op = fused }
            in
            (* try to keep fusing the merged stage forward *)
            pass (merged :: rest)
        | Error _ -> a :: pass (b :: rest))
    | stages -> stages
  in
  pass pipeline

type scheduled_stage = {
  stage : stage;
  schedule : Schedule.t;
  base_seconds : float;
  scheduled_seconds : float;
}

type report = {
  stages : scheduled_stage list;
  total_base : float;
  total_scheduled : float;
}

let schedule ~base_seconds ~scheduler pipeline =
  let stages =
    List.map
      (fun stage ->
        let sched, speedup = scheduler stage.op in
        (* With certification on, re-apply the scheduler's output through
           [Sched_state.apply] so every step is re-proved against the
           dependence analysis — a scheduler emitting an illegal schedule
           raises here rather than silently mis-reporting a speedup. *)
        if Sched_state.certify_enabled () then
          (match Sched_state.apply_all stage.op sched with
          | Ok _ -> ()
          | Error e ->
              failwith
                (Printf.sprintf "legality certificate: stage %s: %s"
                   stage.stage_name e));
        let base = base_seconds stage.op in
        {
          stage;
          schedule = sched;
          base_seconds = base;
          scheduled_seconds = base /. Float.max speedup 1e-12;
        })
      pipeline
  in
  {
    stages;
    total_base = List.fold_left (fun acc s -> acc +. s.base_seconds) 0.0 stages;
    total_scheduled =
      List.fold_left (fun acc s -> acc +. s.scheduled_seconds) 0.0 stages;
  }

let execute_reference pipeline ~first_input ~extra_inputs =
  match pipeline with
  | [] -> invalid_arg "Pipeline.execute_reference: empty pipeline"
  | _ ->
      List.fold_left
        (fun carried stage ->
          let op = stage.op in
          let bindings =
            Array.to_list
              (Array.mapi
                 (fun i (o : Linalg.operand) ->
                   if i = 0 then (o.Linalg.name, carried)
                   else
                     let key = stage.stage_name ^ "/" ^ o.Linalg.name in
                     match List.assoc_opt key extra_inputs with
                     | Some buf -> (o.Linalg.name, buf)
                     | None ->
                         invalid_arg
                           ("Pipeline.execute_reference: missing input " ^ key))
                 op.Linalg.inputs)
          in
          Linalg.execute_reference op bindings)
        first_input pipeline
