(** Loop-level transformations on perfect nests.

    A nest is organized in bands: the suffix of the loop array created by
    the most recent tiling is the {e point band} — the loops of the
    residual (inner) operation, one per original iteration dim. All
    transformations target the point band, mirroring how MLIR's transform
    dialect chains apply to the op produced by the previous step. *)

val divisors : int -> int list
(** Positive divisors of [n] in increasing order, e.g.
    [divisors 12 = \[1; 2; 3; 4; 6; 12\]]. Raises [Invalid_argument] for
    [n <= 0]. *)

val point_band_start : Loop_nest.t -> int
(** Position of the first point-band loop. The point band is recognized
    as the maximal suffix of loops whose [origin]s are pairwise distinct
    and cover each origin's innermost occurrence. For a freshly lowered
    nest this is 0. *)

val point_band : Loop_nest.t -> Loop_nest.loop array
(** The point-band loops, outermost first. *)

val tile :
  ?parallel:bool -> int array -> Loop_nest.t -> (Loop_nest.t, string) result
(** [tile sizes nest] splits each point-band loop [i] with
    [sizes.(i) > 0] into an outer tile loop of trip [ub/sizes.(i)] and an
    inner point loop of trip [sizes.(i)]. The new tile loops form a band
    placed immediately outside the point band, preserving relative order.
    With [~parallel:true] the created tile loops are marked parallel
    (the paper's parallelization action, i.e. [tile_using_forall]).

    Errors when [sizes] has the wrong arity, when a non-zero size does
    not divide its loop's trip count, or when no size is positive. *)

val interchange : int array -> Loop_nest.t -> (Loop_nest.t, string) result
(** [interchange perm nest] permutes the point band: new point position
    [i] receives the loop previously at point position [perm.(i)].
    Errors when [perm] is not a permutation of the point band. *)

val swap_adjacent : int -> Loop_nest.t -> (Loop_nest.t, string) result
(** [swap_adjacent i nest] exchanges point loops [i] and [i+1] — the
    paper's consecutive-permutation interchange parameterization. *)

val vectorize : Loop_nest.t -> (Loop_nest.t, string) result
(** Mark the innermost loop as a vector loop. Errors when the nest has no
    loops or is already vectorized. *)

val unroll : int -> Loop_nest.t -> (Loop_nest.t, string) result
(** [unroll factor nest] unrolls the innermost loop by [factor]: its trip
    count divides by [factor] and the body is replicated with shifted
    subscripts. The paper lists unrolling as future work (§6.1); it is
    implemented here as an extension and is not part of the default
    action space. Errors when the factor does not divide the innermost
    trip count or the nest is already vectorized (MLIR unrolls before
    vectorizing, not after). *)

val is_vectorized : Loop_nest.t -> bool
val has_parallel_band : Loop_nest.t -> bool
