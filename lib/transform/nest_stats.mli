(** Shared per-level loop statistics.

    The normalized per-loop numbers used by both the RL observation
    ({!Observation} in lib/core) and the learned-surrogate feature
    extractor ([Surrogate.Features]): log-scaled trip counts of the
    point band and the per-level footprint / reuse-distance pair from
    {!Footprint}. Keeping the normalizations here means every consumer
    produces bit-identical values for the same nest. *)

val log2 : float -> float

val log2_trip_norm : int -> float
(** [log2(max 1 trip) / 16] — the loop-info normalization (trips up to
    2^16 map into [0, 1]). *)

val log2_count_norm : int -> float
(** [log2(1 + count) / 32] — the element-count normalization used for
    footprints and reuse distances. *)

val trip_features : n_max:int -> Sched_state.t -> float array
(** Trip counts of the state's point band, log-scaled, in an [n_max]
    array (extra loops beyond [n_max] are dropped, missing ones are
    zero). *)

val band_footprint_features : n_max:int -> Loop_nest.t -> float array
(** A [2 * n_max] array: slot [j] the log-scaled footprint of one
    execution of the subtree under point loop [j], slot [n_max + j] the
    reuse distance carried by that loop ({!Footprint.analyze} over the
    current nest, aligned to the point band). *)
