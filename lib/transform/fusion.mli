(** Producer-consumer fusion of structured ops (paper §6.1 future work).

    Fuses an elementwise producer into any consumer that reads its
    output: the consumer's load of the intermediate buffer is replaced
    by the producer's body, with the producer's operand maps composed
    through the consumer's access map. This eliminates the intermediate
    buffer entirely — the classic bias-add + ReLU or residual-add
    fusion — and the performance model rewards it automatically (one
    pass over memory instead of two).

    Restrictions (checked): the producer must be a pure elementwise map
    (all-parallel iteration, no accumulator, identity output map), and
    the designated consumer input must have the producer's output
    shape. Reductions in the {e consumer} are fine (e.g. fusing a
    scaling into a matmul operand). *)

val fuse :
  producer:Linalg.t ->
  consumer:Linalg.t ->
  consumer_input:int ->
  (Linalg.t, string) result
(** [fuse ~producer ~consumer ~consumer_input] builds the fused op. Its
    inputs are the producer's inputs (renamed with a ["p_"] prefix to
    avoid collisions) followed by the consumer's remaining inputs, so
    fusing into a pipeline stage's slot 0 keeps the chained value at
    input 0. Schedules apply to the fused op like to any other. *)

val execute_fused_reference :
  Linalg.t ->
  Linalg.t ->
  consumer_input:int ->
  (string * float array) list ->
  float array
(** Ground truth for tests: run producer then consumer sequentially on
    the given buffers (producer inputs under their ["p_"]-prefixed
    names) and return the final output. *)
