(* Shared per-level loop statistics.

   Observation (the paper's Table 1 features) and the surrogate cost
   model's feature extractor both need the same per-loop numbers: log-
   scaled trip counts of the point band, and the per-level footprint /
   reuse-distance pair from the Footprint pass. This module is the one
   place those normalizations live, so the two consumers (and any
   future third) stay bit-identical by construction. *)

let log2 x = log x /. log 2.0

(* log2 of a trip count, scaled so realistic trips land in [0, 1]
   (2^16 iterations per loop). Matches the paper's loop-info block. *)
let log2_trip_norm trip = log2 (float_of_int (max 1 trip)) /. 16.0

(* log2(1 + count), scaled for element counts (footprints, reuse
   distances — up to 2^32 elements). *)
let log2_count_norm e = log2 (1.0 +. float_of_int e) /. 32.0

(* Per-point-loop trip counts of [state], log-scaled, padded/truncated
   to [n_max] slots. *)
let trip_features ~n_max (state : Sched_state.t) =
  let out = Array.make n_max 0.0 in
  let trips = Sched_state.point_trip_counts state in
  Array.iteri
    (fun i trip -> if i < n_max then out.(i) <- log2_trip_norm trip)
    trips;
  out

(* Per-level footprint and reuse-distance features of [nest], aligned to
   the point band: slot j is the data footprint of one execution of the
   subtree under point loop j, slot n_max + j the reuse distance carried
   by that loop. Log-scaled like element counts. *)
let band_footprint_features ~n_max (nest : Loop_nest.t) =
  let out = Array.make (2 * n_max) 0.0 in
  let fp = Footprint.analyze nest in
  let band_start = Loop_transforms.point_band_start nest in
  let band = Loop_transforms.point_band nest in
  Array.iteri
    (fun j _ ->
      if j < n_max then begin
        out.(j) <- log2_count_norm (Footprint.level_elements fp (band_start + j));
        out.(n_max + j) <-
          log2_count_norm (Footprint.reuse_distance fp (band_start + j))
      end)
    band;
  out
