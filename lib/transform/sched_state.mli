(** Stepwise schedule application.

    The environment applies one transformation per RL step; this module
    holds the evolving (op, loop nest) pair plus the bookkeeping the
    paper's action mask needs: whether parallelization was used (allowed
    once), whether the schedule was vectorized (terminal action) and the
    im2col packing cost. *)

type t = {
  original : Linalg.t;  (** the untransformed operation *)
  op : Linalg.t;  (** current op — replaced by a GEMM after im2col *)
  nest : Loop_nest.t;  (** current transformed loop nest *)
  nest_digest : string;
      (** {!Loop_nest.digest} of [nest], maintained across {!apply} so
          evaluation-time memoization never re-hashes the nest *)
  applied : Schedule.t;  (** transformations so far, in order *)
  packing_elements : int;  (** elements materialized by im2col, else 0 *)
  parallelized : bool;
  vectorized : bool;
}

val init : Linalg.t -> t
(** Start a schedule on an op; lowers it to its canonical nest. *)

val digest : t -> string
(** The structural digest of the current nest, O(1) — equal to
    [Loop_nest.digest state.nest] by construction (the invariant the
    digest-soundness property tests pin down). The transposition cache
    in {!Evaluator} keys state-seconds lookups by it. *)

val n_point_loops : t -> int
(** Loop count of the current op — the arity that [Tile]/[Parallelize]
    sizes and [Interchange] permutations must have. *)

val point_trip_counts : t -> int array
(** Trip counts of the current point band, one per op dim in the current
    order. *)

val can_tile : t -> bool
val can_interchange : t -> bool

val can_parallelize : t -> bool
(** False once parallelization was used (§3.1.1) or after vectorize. *)

val can_vectorize : t -> bool
(** Vectorization ends the schedule, so it is allowed at most once. *)

val parallelizable_loop : t -> int -> bool
(** [parallelizable_loop state l] is true when point loop [l] iterates a
    parallel (non-reduction) op dim, so a parallel tile size is legal
    there — parallelizing a reduction would race on the accumulator. *)

val can_im2col : t -> bool
(** Only convolutions, and only before any other transformation (the
    rewrite replaces the whole nest). *)

val is_done : t -> bool
(** True after vectorization — the paper's implicit stop action. *)

val apply : t -> Schedule.transformation -> (t, string) result
(** Apply one transformation, enforcing the masking rules above and the
    structural validity of parameters (divisor tile sizes, in-range swap
    indices, valid permutations). With certification enabled (below),
    every accepted transformation is additionally re-proved after the
    fact and a failed proof raises [Failure]. *)

val set_certify : bool -> unit
(** Toggle post-transform legality certificates: the transformed nest
    must validate, iteration volume and buffer declarations must be
    preserved, and the transformation must pass the static
    dependence-analysis verdict ({!Legality}) on the nest it transformed.
    Certification is strict — conservative analysis failures raise even
    for transformations that happen to preserve semantics. Defaults to
    the MLIR_RL_CERTIFY environment variable (1/true/yes). *)

val certify_enabled : unit -> bool

val apply_all : Linalg.t -> Schedule.t -> (t, string) result
(** Fold {!apply} over a whole schedule from {!init}. *)

val valid_tile_sizes : t -> menu:int array -> bool array array
(** [valid_tile_sizes state ~menu] is a matrix of shape
    (n_point_loops, Array.length menu): entry (l, m) says whether
    [menu.(m)] is 0 (always allowed) or divides the trip count of point
    loop [l]. *)
