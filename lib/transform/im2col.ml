let out_dims (p : Linalg.conv_params) =
  let oh = ((p.in_h - p.kernel_h) / p.stride) + 1 in
  let ow = ((p.in_w - p.kernel_w) / p.stride) + 1 in
  (oh, ow)

let gemm_dims (p : Linalg.conv_params) =
  let oh, ow = out_dims p in
  let m = p.batch * oh * ow in
  let n = p.filters in
  let k = p.kernel_h * p.kernel_w * p.channels in
  (m, n, k)

let gemm_of p ~m ~n ~k =
  let m', n', k' = gemm_dims p in
  m = m' && n = n' && k = k'

let rewrite (op : Linalg.t) =
  match op.Linalg.kind with
  | Linalg.Conv2d p ->
      let m, n, k = gemm_dims p in
      let gemm = Linalg.matmul ~name:(op.Linalg.op_name ^ "_im2col") ~m ~n ~k () in
      Ok (gemm, `Packing_elements (m * k))
  | _ -> Error "im2col: only applies to conv2d operations"

let pack_input (p : Linalg.conv_params) input =
  let input_size = p.batch * p.in_h * p.in_w * p.channels in
  if Array.length input <> input_size then
    invalid_arg "Im2col.pack_input: wrong input size";
  let oh, ow = out_dims p in
  let m, _, k = gemm_dims p in
  let col = Array.make (m * k) 0.0 in
  let in_index n h w c =
    ((((n * p.in_h) + h) * p.in_w) + w) * p.channels + c
  in
  for n = 0 to p.batch - 1 do
    for oy = 0 to oh - 1 do
      for ox = 0 to ow - 1 do
        let row = ((n * oh) + oy) * ow + ox in
        for kh = 0 to p.kernel_h - 1 do
          for kw = 0 to p.kernel_w - 1 do
            for c = 0 to p.channels - 1 do
              let colj = (((kh * p.kernel_w) + kw) * p.channels) + c in
              col.((row * k) + colj) <-
                input.(in_index n ((oy * p.stride) + kh) ((ox * p.stride) + kw) c)
            done
          done
        done
      done
    done
  done;
  col
