type t = {
  original : Linalg.t;
  op : Linalg.t;
  nest : Loop_nest.t;
  nest_digest : string;
  applied : Schedule.t;
  packing_elements : int;
  parallelized : bool;
  vectorized : bool;
}

let init op =
  let nest = Lower.to_loop_nest op in
  {
    original = op;
    op;
    nest;
    nest_digest = Loop_nest.digest nest;
    applied = [];
    packing_elements = 0;
    parallelized = false;
    vectorized = false;
  }

let digest state = state.nest_digest

let n_point_loops state = Linalg.n_loops state.op

let point_trip_counts state =
  Array.map (fun l -> l.Loop_nest.ub) (Loop_transforms.point_band state.nest)

let can_tile state = not state.vectorized
let can_interchange state = not state.vectorized && n_point_loops state >= 2
let can_parallelize state = (not state.vectorized) && not state.parallelized
let can_vectorize state = not state.vectorized

let can_im2col state =
  (not state.vectorized) && Linalg.is_conv state.op && state.applied = []

let is_done state = state.vectorized

(* --- legality certificates (debug builds) --------------------------

   When enabled — via [set_certify] or the MLIR_RL_CERTIFY environment
   variable — every transformation accepted by [apply] is re-proved
   after the fact: the transformed nest must validate, the iteration
   volume and buffer declarations must be preserved, and the
   transformation must pass the static dependence-analysis verdict on
   the nest it was applied to. A failure raises [Failure]: it means a
   transformation reached [apply] that the masks should have rejected
   (or the analysis is unsound). Certification is strict — on nests
   where the conservative analysis cannot prove legality it fails even
   if the transformation happens to be semantics-preserving. *)

let certify =
  ref
    (match Sys.getenv_opt "MLIR_RL_CERTIFY" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false)

let set_certify b = certify := b
let certify_enabled () = !certify

let certificate_check (before : Loop_nest.t) (tr : Schedule.transformation)
    (after : Loop_nest.t) =
  let fail fmt =
    Printf.ksprintf (fun m -> failwith ("legality certificate: " ^ m)) fmt
  in
  (match Loop_nest.validate after with
  | Ok () -> ()
  | Error e -> fail "transformed nest fails validate: %s" e);
  (match tr with
  | Schedule.Im2col -> () (* rewrites the whole op; nothing to compare *)
  | Schedule.Unroll f ->
      if Loop_nest.iteration_count after * f <> Loop_nest.iteration_count before
      then fail "unroll by %d changed the iteration volume" f;
      if List.length after.Loop_nest.body <> f * List.length before.Loop_nest.body
      then fail "unroll by %d did not replicate the body %d times" f f
  | Schedule.Tile _ | Schedule.Parallelize _ | Schedule.Interchange _
  | Schedule.Swap _ | Schedule.Vectorize ->
      if Loop_nest.iteration_count after <> Loop_nest.iteration_count before
      then fail "iteration volume changed";
      if after.Loop_nest.buffers <> before.Loop_nest.buffers then
        fail "buffer declarations changed";
      if after.Loop_nest.inits <> before.Loop_nest.inits then
        fail "buffer initializations changed");
  let leg () = Legality.analyze before in
  let p0 = Loop_transforms.point_band_start before in
  match tr with
  | Schedule.Parallelize sizes ->
      let leg = leg () in
      Array.iteri
        (fun l s ->
          if s > 0 && not (Legality.can_parallelize leg (p0 + l)) then
            fail "loop %d is not provably parallel" (p0 + l))
        sizes
  | Schedule.Swap i ->
      if not (Legality.can_interchange (leg ()) (p0 + i)) then
        fail "swapping loops %d and %d reverses a dependence" (p0 + i)
          (p0 + i + 1)
  | Schedule.Tile _ | Schedule.Interchange _ ->
      if not (Legality.can_tile (leg ()) ~band_start:p0) then
        fail "point band is not provably permutable"
  | Schedule.Vectorize ->
      if not (Legality.can_vectorize (leg ())) then
        fail "innermost loop carries a non-reduction dependence"
  | Schedule.Unroll _ | Schedule.Im2col -> ()

let record state tr nest =
  if !certify then certificate_check state.nest tr nest;
  (* The digest is refreshed here, once per accepted transformation —
     every evaluation of the resulting state then gets an O(1) cache
     key instead of re-hashing (or worse, re-printing) the nest. *)
  let state' =
    {
      state with
      nest;
      nest_digest = Loop_nest.digest nest;
      applied = state.applied @ [ tr ];
    }
  in
  (* Post-transform verifier (MLIR_RL_VERIFY): independently re-proves
     the accepted state well-formed — validate, bounds soundness, and
     the digest the state will be cached under. Raises
     Verifier.Violation at the transformation that broke the nest. *)
  if Verifier.enabled () then
    Verifier.run ~expected_digest:state'.nest_digest state'.nest;
  state'

(* Point loops whose op dim is a reduction cannot run in parallel: that
   would race on the accumulator (MLIR's tile_using_forall rejects it). *)
let parallelizable_loop state l =
  let band = Loop_transforms.point_band state.nest in
  l < Array.length band
  &&
  let origin = band.(l).Loop_nest.origin in
  origin < Array.length state.op.Linalg.iter_kinds
  && state.op.Linalg.iter_kinds.(origin) = Linalg.Parallel_iter

let apply state (tr : Schedule.transformation) =
  if state.vectorized then Error "schedule already ended by vectorization"
  else
    match tr with
    | Schedule.Tile sizes ->
        Result.map (record state tr) (Loop_transforms.tile sizes state.nest)
    | Schedule.Parallelize sizes ->
        if state.parallelized then
          Error "parallelization may be used only once per schedule"
        else if
          Array.exists
            (fun l -> sizes.(l) > 0 && not (parallelizable_loop state l))
            (Array.init (Array.length sizes) (fun l -> l))
        then Error "cannot parallelize a reduction dimension"
        else
          Result.map
            (fun nest -> { (record state tr nest) with parallelized = true })
            (Loop_transforms.tile ~parallel:true sizes state.nest)
    | Schedule.Interchange perm ->
        Result.map (record state tr)
          (Loop_transforms.interchange perm state.nest)
    | Schedule.Swap i ->
        Result.map (record state tr) (Loop_transforms.swap_adjacent i state.nest)
    | Schedule.Vectorize ->
        Result.map
          (fun nest -> { (record state tr nest) with vectorized = true })
          (Loop_transforms.vectorize state.nest)
    | Schedule.Unroll factor ->
        Result.map (record state tr) (Loop_transforms.unroll factor state.nest)
    | Schedule.Im2col -> (
        if not (can_im2col state) then
          Error
            (if Linalg.is_conv state.op then
               "im2col must be the first transformation"
             else "im2col only applies to convolutions")
        else
          match Im2col.rewrite state.op with
          | Error _ as e -> e
          | Ok (gemm, `Packing_elements elems) ->
              let nest = Lower.to_loop_nest gemm in
              if !certify then certificate_check state.nest tr nest;
              let nest_digest = Loop_nest.digest nest in
              if Verifier.enabled () then
                Verifier.run ~expected_digest:nest_digest nest;
              Ok
                {
                  state with
                  op = gemm;
                  nest;
                  nest_digest;
                  applied = state.applied @ [ tr ];
                  packing_elements = elems;
                })

let apply_all op sched =
  List.fold_left
    (fun acc tr -> Result.bind acc (fun state -> apply state tr))
    (Ok (init op)) sched

let valid_tile_sizes state ~menu =
  let trips = point_trip_counts state in
  Array.map
    (fun trip ->
      Array.map (fun size -> size = 0 || (size <= trip && trip mod size = 0)) menu)
    trips
