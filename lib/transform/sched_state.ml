type t = {
  original : Linalg.t;
  op : Linalg.t;
  nest : Loop_nest.t;
  applied : Schedule.t;
  packing_elements : int;
  parallelized : bool;
  vectorized : bool;
}

let init op =
  {
    original = op;
    op;
    nest = Lower.to_loop_nest op;
    applied = [];
    packing_elements = 0;
    parallelized = false;
    vectorized = false;
  }

let n_point_loops state = Linalg.n_loops state.op

let point_trip_counts state =
  Array.map (fun l -> l.Loop_nest.ub) (Loop_transforms.point_band state.nest)

let can_tile state = not state.vectorized
let can_interchange state = not state.vectorized && n_point_loops state >= 2
let can_parallelize state = (not state.vectorized) && not state.parallelized
let can_vectorize state = not state.vectorized

let can_im2col state =
  (not state.vectorized) && Linalg.is_conv state.op && state.applied = []

let is_done state = state.vectorized

let record state tr nest =
  { state with nest; applied = state.applied @ [ tr ] }

(* Point loops whose op dim is a reduction cannot run in parallel: that
   would race on the accumulator (MLIR's tile_using_forall rejects it). *)
let parallelizable_loop state l =
  let band = Loop_transforms.point_band state.nest in
  l < Array.length band
  &&
  let origin = band.(l).Loop_nest.origin in
  origin < Array.length state.op.Linalg.iter_kinds
  && state.op.Linalg.iter_kinds.(origin) = Linalg.Parallel_iter

let apply state (tr : Schedule.transformation) =
  if state.vectorized then Error "schedule already ended by vectorization"
  else
    match tr with
    | Schedule.Tile sizes ->
        Result.map (record state tr) (Loop_transforms.tile sizes state.nest)
    | Schedule.Parallelize sizes ->
        if state.parallelized then
          Error "parallelization may be used only once per schedule"
        else if
          Array.exists
            (fun l -> sizes.(l) > 0 && not (parallelizable_loop state l))
            (Array.init (Array.length sizes) (fun l -> l))
        then Error "cannot parallelize a reduction dimension"
        else
          Result.map
            (fun nest -> { (record state tr nest) with parallelized = true })
            (Loop_transforms.tile ~parallel:true sizes state.nest)
    | Schedule.Interchange perm ->
        Result.map (record state tr)
          (Loop_transforms.interchange perm state.nest)
    | Schedule.Swap i ->
        Result.map (record state tr) (Loop_transforms.swap_adjacent i state.nest)
    | Schedule.Vectorize ->
        Result.map
          (fun nest -> { (record state tr nest) with vectorized = true })
          (Loop_transforms.vectorize state.nest)
    | Schedule.Unroll factor ->
        Result.map (record state tr) (Loop_transforms.unroll factor state.nest)
    | Schedule.Im2col -> (
        if not (can_im2col state) then
          Error
            (if Linalg.is_conv state.op then
               "im2col must be the first transformation"
             else "im2col only applies to convolutions")
        else
          match Im2col.rewrite state.op with
          | Error _ as e -> e
          | Ok (gemm, `Packing_elements elems) ->
              Ok
                {
                  state with
                  op = gemm;
                  nest = Lower.to_loop_nest gemm;
                  applied = state.applied @ [ tr ];
                  packing_elements = elems;
                })

let apply_all op sched =
  List.fold_left
    (fun acc tr -> Result.bind acc (fun state -> apply state tr))
    (Ok (init op)) sched

let valid_tile_sizes state ~menu =
  let trips = point_trip_counts state in
  Array.map
    (fun trip ->
      Array.map (fun size -> size = 0 || (size <= trip && trip mod size = 0)) menu)
    trips
