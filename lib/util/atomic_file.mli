(** Atomic (temp-file + rename) file writes.

    Shared by the training checkpoint ({!module:Checkpoint} in
    [lib/core]) and every artifact writer that must survive a crash
    mid-dump (bench [BENCH_*.json] files, Prometheus text dumps): a
    reader never observes a truncated file, only the previous complete
    content or the new one.

    The temporary file is created in the destination's directory so the
    final [rename] stays within one filesystem (rename is only atomic
    there). *)

val with_out : path:string -> (out_channel -> unit) -> unit
(** [with_out ~path f] opens a fresh temp file next to [path], runs [f]
    on its channel, then flushes, closes and renames it over [path].
    If [f] raises, the temp file is removed and [path] is untouched.
    Raises [Sys_error] on IO failure. *)

val write_string : path:string -> string -> unit
(** [write_string ~path s] atomically replaces [path]'s content with
    [s]. *)
