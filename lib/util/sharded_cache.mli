(** A bounded, domain-safe key/value cache, sharded by key hash.

    Each shard is an independent hash table behind its own mutex, so
    concurrent lookups from different domains only contend when their
    keys land on the same shard. Capacity is enforced per shard with
    FIFO eviction — cheap, and good enough for memoizing pure
    computations where an eviction only costs a recompute.

    The cache is value-agnostic: intended for pure memoization (the
    evaluator's base-time cache keys it by op digest). Under a racing
    miss two domains may both compute; one result wins, which is
    observationally identical when the computation is pure. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  size : int;  (** live entries across all shards *)
  capacity : int;
  shards : int;
}

val create : ?shards:int -> capacity:int -> unit -> ('k, 'v) t
(** [create ~capacity ()] bounds the cache at roughly [capacity]
    entries (exactly [shards * (capacity / shards)], at least one per
    shard). [shards] defaults to 16 and is clamped to [capacity]. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Thread-safe lookup; counts a hit or a miss. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite, evicting the shard's oldest entries when over
    capacity. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Memoize: return the cached value or compute-and-insert. The
    computation runs outside the shard lock; it must be pure. *)

val stats : ('k, 'v) t -> stats
(** Aggregate counters across shards (locks each shard briefly). *)

val length : ('k, 'v) t -> int
(** Current number of live entries. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry. Counters are kept. *)
