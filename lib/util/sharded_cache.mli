(** A bounded, domain-safe key/value cache, sharded by key hash.

    Each shard is an independent hash table behind its own mutex, so
    concurrent lookups from different domains only contend when their
    keys land on the same shard. Capacity is enforced per shard with
    FIFO eviction — cheap, and good enough for memoizing pure
    computations where an eviction only costs a recompute.

    The cache is value-agnostic: intended for pure memoization (the
    evaluator's base-time cache keys it by op digest). Under a racing
    miss two domains may both compute; one result wins, which is
    observationally identical when the computation is pure. *)

type ('k, 'v) t

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  contention : int;
      (** shard-lock acquisitions that found the lock held and had to
          wait — the cross-domain contention signal. 0 in
          single-domain use. *)
  size : int;  (** live entries across all shards *)
  capacity : int;
  shards : int;
}

val create : ?shards:int -> capacity:int -> unit -> ('k, 'v) t
(** [create ~capacity ()] bounds the cache at roughly [capacity]
    entries (exactly [shards * (capacity / shards)], at least one per
    shard). [shards] defaults to 16 and is clamped to [capacity]. *)

val find_opt : ('k, 'v) t -> 'k -> 'v option
(** Thread-safe lookup; counts a hit or a miss. *)

val add : ('k, 'v) t -> 'k -> 'v -> unit
(** Insert or overwrite, evicting the shard's oldest entries when over
    capacity. *)

val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
(** Memoize: return the cached value or compute-and-insert. The
    computation runs outside the shard lock; it must be pure. *)

val stats : ('k, 'v) t -> stats
(** Aggregate counters across shards (locks each shard briefly). *)

val shard_stats : ('k, 'v) t -> stats array
(** Per-shard counters, one [stats] per shard (each with [shards = 1]
    and the shard's own capacity) — shows skew that the aggregate
    hides, e.g. one hot shard absorbing most contention. *)

val length : ('k, 'v) t -> int
(** Current number of live entries. *)

val to_alist : ('k, 'v) t -> ('k * 'v) list
(** Snapshot of the live entries in unspecified order (sort before
    comparing). Used by the determinism benches to check that parallel
    and sequential searches leave byte-identical cache contents. *)

val clear : ('k, 'v) t -> unit
(** Drop every entry. Counters are kept. *)
