(* Crash-safe file writes: temp file in the destination directory plus
   an atomic rename, the same discipline lib/core/checkpoint has always
   used for training state. A kill at any moment leaves either the old
   file or the new one on disk — never a truncated mix. *)

let with_out ~path f =
  let dir = Filename.dirname path in
  let tmp, oc =
    Filename.open_temp_file ~temp_dir:dir
      ("." ^ Filename.basename path ^ ".")
      ".tmp"
  in
  let ok = ref false in
  Fun.protect
    ~finally:(fun () ->
      close_out_noerr oc;
      if not !ok then try Sys.remove tmp with Sys_error _ -> ())
    (fun () ->
      f oc;
      flush oc;
      close_out oc;
      Sys.rename tmp path;
      ok := true)

let write_string ~path s = with_out ~path (fun oc -> output_string oc s)
