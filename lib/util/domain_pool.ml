type 'a state = Pending | Done of 'a | Failed of exn

type 'a promise = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  mutable p_state : 'a state;
}

(* A growable ring-buffer deque: the work-stealing scheduler pushes at
   the back, owners pop from the front (oldest first, preserving rough
   submission order), thieves pop from the back (newest first, so a
   steal grabs the work least likely to be contended next). Guarded by
   the per-deque mutex in [t]; not thread-safe on its own. *)
module Deque = struct
  type 'a t = {
    mutable buf : 'a option array;
    mutable front : int;  (* index of the first element *)
    mutable len : int;
  }

  let create () = { buf = Array.make 16 None; front = 0; len = 0 }

  let grow d =
    let cap = Array.length d.buf in
    let buf = Array.make (cap * 2) None in
    for i = 0 to d.len - 1 do
      buf.(i) <- d.buf.((d.front + i) mod cap)
    done;
    d.buf <- buf;
    d.front <- 0

  let push_back d x =
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.front + d.len) mod Array.length d.buf) <- Some x;
    d.len <- d.len + 1

  let pop_front d =
    if d.len = 0 then None
    else begin
      let x = d.buf.(d.front) in
      d.buf.(d.front) <- None;
      d.front <- (d.front + 1) mod Array.length d.buf;
      d.len <- d.len - 1;
      x
    end

  let pop_back d =
    if d.len = 0 then None
    else begin
      let i = (d.front + d.len - 1) mod Array.length d.buf in
      let x = d.buf.(i) in
      d.buf.(i) <- None;
      d.len <- d.len - 1;
      x
    end
end

type t = {
  mutex : Mutex.t;  (* guards queue/pending/next/closing/joined *)
  cond : Condition.t;  (* work available, the pool is closing, or joined *)
  queue : (unit -> unit) Queue.t;  (* FIFO mode *)
  (* Work-stealing mode: one deque + mutex per worker; [pending] under
     the global mutex is the wake-up signal (tasks pushed minus tasks
     taken — transiently negative while a push races its counter
     increment, which only delays a wake-up by one submit). *)
  steal : bool;
  deques : (unit -> unit) Deque.t array;
  deque_mutexes : Mutex.t array;
  mutable pending : int;
  mutable next : int;  (* round-robin submission target *)
  mutable closing : bool;
  mutable joined : bool;
  mutable domains : unit Domain.t array;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closing do
    Condition.wait pool.cond pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    (* [job] never raises: submit wraps the task so the exception is
       stored in the promise and rethrown by [await] on the caller. The
       catch-all is belt and braces for asynchronous exceptions landing
       between the task and the promise update — a worker domain must
       never die abnormally, or [shutdown]'s join would re-raise and
       wedge the remaining drain. *)
    (try job () with _ -> ());
    worker_loop pool
  end

(* Steal-mode worker: drain own deque from the front, then steal from
   the other deques' backs; park on the condition variable only when the
   [pending] counter says there is nothing left anywhere. Never holds
   two locks at once. *)
let take_from pool i =
  let n = Array.length pool.deques in
  let rec scan k =
    if k = n then None
    else begin
      let j = (i + k) mod n in
      Mutex.lock pool.deque_mutexes.(j);
      let job =
        if j = i then Deque.pop_front pool.deques.(j)
        else Deque.pop_back pool.deques.(j)
      in
      Mutex.unlock pool.deque_mutexes.(j);
      match job with
      | Some _ ->
          Mutex.lock pool.mutex;
          pool.pending <- pool.pending - 1;
          Mutex.unlock pool.mutex;
          job
      | None -> scan (k + 1)
    end
  in
  scan 0

let rec steal_worker_loop pool i =
  match take_from pool i with
  | Some job ->
      (try job () with _ -> ());
      steal_worker_loop pool i
  | None ->
      Mutex.lock pool.mutex;
      if pool.pending > 0 then begin
        (* Something was submitted (or is in flight to a deque) between
           our failed scan and taking the lock — hunt again. *)
        Mutex.unlock pool.mutex;
        steal_worker_loop pool i
      end
      else if pool.closing then Mutex.unlock pool.mutex
      else begin
        Condition.wait pool.cond pool.mutex;
        Mutex.unlock pool.mutex;
        steal_worker_loop pool i
      end

let make ~steal ~size =
  if size < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let pool =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      steal;
      deques =
        (if steal then Array.init size (fun _ -> Deque.create ()) else [||]);
      deque_mutexes =
        (if steal then Array.init size (fun _ -> Mutex.create ()) else [||]);
      pending = 0;
      next = 0;
      closing = false;
      joined = false;
      domains = [||];
    }
  in
  pool.domains <-
    Array.init size (fun i ->
        Domain.spawn (fun () ->
            if steal then steal_worker_loop pool i else worker_loop pool));
  pool

let create ~size = make ~steal:false ~size
let create_stealing ~size = make ~steal:true ~size
let size t = Array.length t.domains
let stealing t = t.steal

let submit t f =
  let p =
    { p_mutex = Mutex.create (); p_cond = Condition.create (); p_state = Pending }
  in
  let job () =
    let result = try Done (f ()) with e -> Failed e in
    Mutex.lock p.p_mutex;
    p.p_state <- result;
    Condition.broadcast p.p_cond;
    Mutex.unlock p.p_mutex
  in
  Mutex.lock t.mutex;
  if t.closing then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.submit: pool is shut down"
  end;
  if not t.steal then begin
    Queue.push job t.queue;
    Condition.signal t.cond;
    Mutex.unlock t.mutex
  end
  else begin
    let i = t.next in
    t.next <- (t.next + 1) mod Array.length t.deques;
    Mutex.unlock t.mutex;
    Mutex.lock t.deque_mutexes.(i);
    Deque.push_back t.deques.(i) job;
    Mutex.unlock t.deque_mutexes.(i);
    Mutex.lock t.mutex;
    t.pending <- t.pending + 1;
    Condition.signal t.cond;
    Mutex.unlock t.mutex
  end;
  p

let await p =
  Mutex.lock p.p_mutex;
  let rec wait () =
    match p.p_state with
    | Pending ->
        Condition.wait p.p_cond p.p_mutex;
        wait ()
    | Done v ->
        Mutex.unlock p.p_mutex;
        v
    | Failed e ->
        Mutex.unlock p.p_mutex;
        raise e
  in
  wait ()

(* Shutdown is idempotent and safe to race: exactly one caller joins the
   workers; every other caller (concurrent or later) blocks until that
   join has completed, so "shutdown returned" always means "all workers
   are gone". Queued tasks are drained first — including tasks whose
   function raises, because the exception lives in the promise, not the
   worker (see worker_loop). Never raises. *)
let shutdown t =
  Mutex.lock t.mutex;
  if t.closing then begin
    while not t.joined do
      Condition.wait t.cond t.mutex
    done;
    Mutex.unlock t.mutex
  end
  else begin
    t.closing <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    Array.iter (fun d -> try Domain.join d with _ -> ()) t.domains;
    Mutex.lock t.mutex;
    t.joined <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  end

let map_array t f xs =
  let promises = Array.map (fun x -> submit t (fun () -> f x)) xs in
  Array.map await promises
