type 'a state = Pending | Done of 'a | Failed of exn

type 'a promise = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  mutable p_state : 'a state;
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* work available, the pool is closing, or joined *)
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable joined : bool;
  mutable domains : unit Domain.t array;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closing do
    Condition.wait pool.cond pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    (* [job] never raises: submit wraps the task so the exception is
       stored in the promise and rethrown by [await] on the caller. The
       catch-all is belt and braces for asynchronous exceptions landing
       between the task and the promise update — a worker domain must
       never die abnormally, or [shutdown]'s join would re-raise and
       wedge the remaining drain. *)
    (try job () with _ -> ());
    worker_loop pool
  end

let create ~size =
  if size < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let pool =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      closing = false;
      joined = false;
      domains = [||];
    }
  in
  pool.domains <- Array.init size (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size t = Array.length t.domains

let submit t f =
  let p =
    { p_mutex = Mutex.create (); p_cond = Condition.create (); p_state = Pending }
  in
  let job () =
    let result = try Done (f ()) with e -> Failed e in
    Mutex.lock p.p_mutex;
    p.p_state <- result;
    Condition.broadcast p.p_cond;
    Mutex.unlock p.p_mutex
  in
  Mutex.lock t.mutex;
  if t.closing then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.submit: pool is shut down"
  end;
  Queue.push job t.queue;
  Condition.signal t.cond;
  Mutex.unlock t.mutex;
  p

let await p =
  Mutex.lock p.p_mutex;
  let rec wait () =
    match p.p_state with
    | Pending ->
        Condition.wait p.p_cond p.p_mutex;
        wait ()
    | Done v ->
        Mutex.unlock p.p_mutex;
        v
    | Failed e ->
        Mutex.unlock p.p_mutex;
        raise e
  in
  wait ()

(* Shutdown is idempotent and safe to race: exactly one caller joins the
   workers; every other caller (concurrent or later) blocks until that
   join has completed, so "shutdown returned" always means "all workers
   are gone". Queued tasks are drained first — including tasks whose
   function raises, because the exception lives in the promise, not the
   worker (see worker_loop). Never raises. *)
let shutdown t =
  Mutex.lock t.mutex;
  if t.closing then begin
    while not t.joined do
      Condition.wait t.cond t.mutex
    done;
    Mutex.unlock t.mutex
  end
  else begin
    t.closing <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex;
    Array.iter (fun d -> try Domain.join d with _ -> ()) t.domains;
    Mutex.lock t.mutex;
    t.joined <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.mutex
  end

let map_array t f xs =
  let promises = Array.map (fun x -> submit t (fun () -> f x)) xs in
  Array.map await promises
