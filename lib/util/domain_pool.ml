type 'a state = Pending | Done of 'a | Failed of exn

type 'a promise = {
  p_mutex : Mutex.t;
  p_cond : Condition.t;
  mutable p_state : 'a state;
}

type t = {
  mutex : Mutex.t;
  cond : Condition.t;  (* work available, or the pool is closing *)
  queue : (unit -> unit) Queue.t;
  mutable closing : bool;
  mutable domains : unit Domain.t array;
}

let rec worker_loop pool =
  Mutex.lock pool.mutex;
  while Queue.is_empty pool.queue && not pool.closing do
    Condition.wait pool.cond pool.mutex
  done;
  if Queue.is_empty pool.queue then Mutex.unlock pool.mutex
  else begin
    let job = Queue.pop pool.queue in
    Mutex.unlock pool.mutex;
    (* [job] never raises: submit wraps the task so the exception is
       stored in the promise and rethrown by [await] on the caller. *)
    job ();
    worker_loop pool
  end

let create ~size =
  if size < 1 then invalid_arg "Domain_pool.create: size must be >= 1";
  let pool =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      queue = Queue.create ();
      closing = false;
      domains = [||];
    }
  in
  pool.domains <- Array.init size (fun _ -> Domain.spawn (fun () -> worker_loop pool));
  pool

let size t = Array.length t.domains

let submit t f =
  let p =
    { p_mutex = Mutex.create (); p_cond = Condition.create (); p_state = Pending }
  in
  let job () =
    let result = try Done (f ()) with e -> Failed e in
    Mutex.lock p.p_mutex;
    p.p_state <- result;
    Condition.broadcast p.p_cond;
    Mutex.unlock p.p_mutex
  in
  Mutex.lock t.mutex;
  if t.closing then begin
    Mutex.unlock t.mutex;
    invalid_arg "Domain_pool.submit: pool is shut down"
  end;
  Queue.push job t.queue;
  Condition.signal t.cond;
  Mutex.unlock t.mutex;
  p

let await p =
  Mutex.lock p.p_mutex;
  let rec wait () =
    match p.p_state with
    | Pending ->
        Condition.wait p.p_cond p.p_mutex;
        wait ()
    | Done v ->
        Mutex.unlock p.p_mutex;
        v
    | Failed e ->
        Mutex.unlock p.p_mutex;
        raise e
  in
  wait ()

let shutdown t =
  Mutex.lock t.mutex;
  let already = t.closing in
  t.closing <- true;
  Condition.broadcast t.cond;
  Mutex.unlock t.mutex;
  if not already then Array.iter Domain.join t.domains

let map_array t f xs =
  let promises = Array.map (fun x -> submit t (fun () -> f x)) xs in
  Array.map await promises
