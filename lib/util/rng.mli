(** Deterministic pseudo-random number generation.

    A small, fast, splittable generator (splitmix64) used everywhere in the
    project instead of [Stdlib.Random] so that dataset generation, agent
    initialization and exploration are reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] makes a fresh generator from an integer seed. Two
    generators created from the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t]. *)

val derive : int -> stream:int -> t
(** [derive seed ~stream] is a pure, stateless split: the generator for
    logical stream [stream] of master seed [seed]. Calling it twice
    with the same arguments yields identical streams, and distinct
    [stream] ids yield decorrelated streams (both ids are run through
    the splitmix64 finalizer before being combined). [stream] may be
    negative — the trainer reserves negative ids for infrastructure
    streams (e.g. minibatch shuffling) and uses the global episode
    index for per-episode streams, which is what makes parallel
    episode collection bit-reproducible for any worker count. *)

val copy : t -> t
(** [copy t] duplicates the current state without advancing [t]. *)

val state : t -> int64
(** Raw generator state, for checkpointing. Restoring it with
    {!set_state} (or {!of_state}) resumes the exact stream. *)

val set_state : t -> int64 -> unit
(** Overwrite the generator state with one saved by {!state}. *)

val of_state : int64 -> t
(** A fresh generator positioned at a saved {!state}. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound). Raises
    [Invalid_argument] if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val uniform : t -> float
(** Uniform draw in [0, 1). *)

val bool : t -> bool
(** Fair coin flip. *)

val gaussian : t -> float
(** Standard normal draw (Box-Muller). *)

val choice : t -> 'a array -> 'a
(** Uniform draw from a non-empty array. Raises [Invalid_argument] on an
    empty array. *)

val choice_list : t -> 'a list -> 'a
(** Uniform draw from a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k arr] picks [k] distinct elements.
    Raises [Invalid_argument] if [k > Array.length arr]. *)
