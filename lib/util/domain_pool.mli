(** A fixed pool of OCaml 5 domains with a submit/await API.

    Domains are expensive to spawn (they map to OS threads with their
    own minor heaps), so long-running parallel phases should create one
    pool sized to the wanted parallelism and push many small tasks
    through it. The pool has no external dependencies — it is a plain
    mutex/condition work queue over [Domain.spawn], built for the
    parallel rollout engine but generic.

    Tasks run in FIFO submission order (each worker pops the oldest
    queued task); completion order is unspecified. Task closures must
    only touch state that is safe to share across domains. *)

type t

type 'a promise
(** A handle for one submitted task's eventual result. *)

val create : size:int -> t
(** Spawn [size] worker domains (>= 1). Remember that the main domain
    also counts toward the machine's cores: for [n]-way parallelism
    where the caller blocks in {!await}, a pool of [n] workers is
    right; if the caller works alongside the pool, use [n - 1]. *)

val size : t -> int
(** Number of worker domains. *)

val submit : t -> (unit -> 'a) -> 'a promise
(** Queue a task. Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a promise -> 'a
(** Block until the task finishes; returns its result or re-raises the
    exception it died with. May be called at most once per promise from
    the spawning domain (further calls return/raise the same result). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f xs] submits [f x] for every element and awaits them
    all, preserving order. *)

val shutdown : t -> unit
(** Graceful shutdown: lets already-queued tasks finish (including tasks
    whose function raises — the exception is stored in the promise, so a
    failing task cannot wedge the drain), then joins all worker domains.
    Idempotent and safe to call from several domains at once: exactly
    one caller performs the join, the others block until it completes,
    so on return the workers are always gone. Never raises. Submitting
    after shutdown raises [Invalid_argument]. *)
