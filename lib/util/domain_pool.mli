(** A fixed pool of OCaml 5 domains with a submit/await API.

    Domains are expensive to spawn (they map to OS threads with their
    own minor heaps), so long-running parallel phases should create one
    pool sized to the wanted parallelism and push many small tasks
    through it. The pool has no external dependencies — it is a plain
    mutex/condition work queue over [Domain.spawn], built for the
    parallel rollout engine but generic.

    Two scheduling modes share one API. {!create} builds the FIFO pool:
    one shared queue, tasks started in submission order — right for
    streams of similar-sized tasks. {!create_stealing} builds the
    work-stealing variant for irregular task sizes (e.g. subtrie tasks
    of the parallel auto-scheduler, where one subtask may enumerate
    10x the leaves of another): submissions round-robin across
    per-worker deques, a worker drains its own deque front-first and,
    when empty, steals the newest task from another worker's back — so
    a worker stuck on a huge subtask sheds its backlog to idle workers
    instead of stalling the tail of the run.

    In both modes completion order is unspecified, task start order in
    the stealing pool is only approximately FIFO, and task closures
    must only touch state that is safe to share across domains. *)

type t

type 'a promise
(** A handle for one submitted task's eventual result. *)

val create : size:int -> t
(** Spawn [size] worker domains (>= 1) draining one shared FIFO queue.
    Remember that the main domain also counts toward the machine's
    cores: for [n]-way parallelism where the caller blocks in {!await},
    a pool of [n] workers is right; if the caller works alongside the
    pool, use [n - 1]. *)

val create_stealing : size:int -> t
(** Spawn [size] worker domains (>= 1) with per-worker deques and work
    stealing (see the module description). Same API and shutdown
    semantics as {!create}. *)

val size : t -> int
(** Number of worker domains. *)

val stealing : t -> bool
(** Whether this pool was built by {!create_stealing}. *)

val submit : t -> (unit -> 'a) -> 'a promise
(** Queue a task. Raises [Invalid_argument] after {!shutdown}. *)

val await : 'a promise -> 'a
(** Block until the task finishes; returns its result or re-raises the
    exception it died with. May be called at most once per promise from
    the spawning domain (further calls return/raise the same result). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f xs] submits [f x] for every element and awaits them
    all, preserving order. *)

val shutdown : t -> unit
(** Graceful shutdown: lets already-queued tasks finish (including tasks
    whose function raises — the exception is stored in the promise, so a
    failing task cannot wedge the drain), then joins all worker domains.
    Idempotent and safe to call from several domains at once: exactly
    one caller performs the join, the others block until it completes,
    so on return the workers are always gone. Never raises. Submitting
    after shutdown raises [Invalid_argument]. *)
