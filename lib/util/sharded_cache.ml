type ('k, 'v) shard = {
  mutex : Mutex.t;
  tbl : ('k, 'v) Hashtbl.t;
  order : 'k Queue.t;  (* insertion order; one entry per live key *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable contention : int;  (* lock acquisitions that had to wait *)
}

type ('k, 'v) t = {
  shards : ('k, 'v) shard array;
  shard_capacity : int;
  capacity : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  contention : int;
  size : int;
  capacity : int;
  shards : int;
}

let create ?(shards = 16) ~capacity () =
  if capacity < 1 then invalid_arg "Sharded_cache.create: capacity must be >= 1";
  if shards < 1 then invalid_arg "Sharded_cache.create: shards must be >= 1";
  let shards = min shards capacity in
  {
    shards =
      Array.init shards (fun _ ->
          {
            mutex = Mutex.create ();
            tbl = Hashtbl.create 16;
            order = Queue.create ();
            hits = 0;
            misses = 0;
            evictions = 0;
            contention = 0;
          });
    shard_capacity = max 1 (capacity / shards);
    capacity;
  }

let shard_of (t : _ t) key =
  t.shards.(Hashtbl.hash key mod Array.length t.shards)

(* The contention counter piggybacks on the lock acquisition: an
   uncontended [try_lock] succeeds and costs one extra atomic over a
   plain lock; a failed [try_lock] falls back to the blocking [lock]
   and is counted once the shard is ours (so the counter itself needs
   no extra synchronization). *)
let with_shard s f =
  if Mutex.try_lock s.mutex then ()
  else begin
    Mutex.lock s.mutex;
    s.contention <- s.contention + 1
  end;
  Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

let find_opt t key =
  let s = shard_of t key in
  with_shard s (fun () ->
      match Hashtbl.find_opt s.tbl key with
      | Some _ as r ->
          s.hits <- s.hits + 1;
          r
      | None ->
          s.misses <- s.misses + 1;
          None)

(* FIFO eviction: cheapest scheme that still bounds memory. The queue
   holds exactly the live keys in insertion order, so evicting is a pop
   plus a table remove. *)
let add t key v =
  let s = shard_of t key in
  with_shard s (fun () ->
      if Hashtbl.mem s.tbl key then Hashtbl.replace s.tbl key v
      else begin
        Hashtbl.replace s.tbl key v;
        Queue.push key s.order;
        while Hashtbl.length s.tbl > t.shard_capacity do
          let oldest = Queue.pop s.order in
          Hashtbl.remove s.tbl oldest;
          s.evictions <- s.evictions + 1
        done
      end)

let find_or_compute t key f =
  match find_opt t key with
  | Some v -> v
  | None ->
      (* Compute outside the shard lock so a slow [f] never serializes
         other users of the shard. Two domains racing on the same fresh
         key both compute; [add] keeps one copy. Callers must therefore
         pass a pure [f] (both computed values equal). *)
      let v = f () in
      add t key v;
      v

let empty_stats ~capacity ~shards =
  { hits = 0; misses = 0; evictions = 0; contention = 0; size = 0;
    capacity; shards }

let shard_snapshot ~capacity s =
  with_shard s (fun () ->
      {
        hits = s.hits;
        misses = s.misses;
        evictions = s.evictions;
        contention = s.contention;
        size = Hashtbl.length s.tbl;
        capacity;
        shards = 1;
      })

let stats (t : _ t) =
  Array.fold_left
    (fun acc s ->
      let snap = shard_snapshot ~capacity:t.shard_capacity s in
      {
        acc with
        hits = acc.hits + snap.hits;
        misses = acc.misses + snap.misses;
        evictions = acc.evictions + snap.evictions;
        contention = acc.contention + snap.contention;
        size = acc.size + snap.size;
      })
    (empty_stats ~capacity:t.capacity ~shards:(Array.length t.shards))
    t.shards

let shard_stats (t : _ t) =
  Array.map (shard_snapshot ~capacity:t.shard_capacity) t.shards

let length t = (stats t).size

let to_alist (t : _ t) =
  Array.fold_left
    (fun acc s ->
      with_shard s (fun () ->
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.tbl acc))
    [] t.shards

let clear (t : _ t) =
  Array.iter
    (fun s ->
      with_shard s (fun () ->
          Hashtbl.reset s.tbl;
          Queue.clear s.order))
    t.shards
