(** Summary statistics used by the evaluation harness. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty list. *)

val geomean : float list -> float
(** Geometric mean of strictly positive values. Raises [Invalid_argument]
    on an empty list or on non-positive values. *)

val median : float list -> float
(** Median (average of the two middle values for even lengths). *)

val trimmed_mean : float -> float list -> float
(** [trimmed_mean frac xs] drops the lowest and highest [frac] fraction
    of the sorted values and averages the rest — the paper-style robust
    aggregate for noisy timings. [frac] must be in [0, 0.5). Raises
    [Invalid_argument] on an empty list. *)

val stddev : float list -> float
(** Population standard deviation. *)

val min_max : float list -> float * float
(** Smallest and largest value. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0, 100], nearest-rank method. *)
