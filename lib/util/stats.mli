(** Summary statistics used by the evaluation harness. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on an empty list. *)

val geomean : float list -> float
(** Geometric mean of strictly positive values. Raises [Invalid_argument]
    on an empty list or on non-positive values. *)

val median : float list -> float
(** Median (average of the two middle values for even lengths). *)

val stddev : float list -> float
(** Population standard deviation. *)

val min_max : float list -> float * float
(** Smallest and largest value. *)

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0, 100], nearest-rank method. *)
