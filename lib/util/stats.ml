let check_non_empty name = function
  | [] -> invalid_arg (name ^ ": empty list")
  | _ -> ()

let mean xs =
  check_non_empty "Stats.mean" xs;
  List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean xs =
  check_non_empty "Stats.geomean" xs;
  let sum_logs =
    List.fold_left
      (fun acc x ->
        if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value"
        else acc +. log x)
      0.0 xs
  in
  exp (sum_logs /. float_of_int (List.length xs))

let sorted xs = List.sort compare xs

let median xs =
  check_non_empty "Stats.median" xs;
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  if n mod 2 = 1 then arr.(n / 2)
  else (arr.((n / 2) - 1) +. arr.(n / 2)) /. 2.0

let trimmed_mean frac xs =
  check_non_empty "Stats.trimmed_mean" xs;
  if frac < 0.0 || frac >= 0.5 then
    invalid_arg "Stats.trimmed_mean: frac out of [0, 0.5)";
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  let drop = int_of_float (frac *. float_of_int n) in
  let kept = Array.sub arr drop (n - (2 * drop)) in
  Array.fold_left ( +. ) 0.0 kept /. float_of_int (Array.length kept)

let stddev xs =
  check_non_empty "Stats.stddev" xs;
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
    /. float_of_int (List.length xs)
  in
  sqrt var

let min_max xs =
  check_non_empty "Stats.min_max" xs;
  List.fold_left
    (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
    (Float.infinity, Float.neg_infinity)
    xs

let percentile p xs =
  check_non_empty "Stats.percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let arr = Array.of_list (sorted xs) in
  let n = Array.length arr in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let idx = max 0 (min (n - 1) (rank - 1)) in
  arr.(idx)
