type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let state t = t.state
let set_state t s = t.state <- s
let of_state s = { state = s }

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = int64 t in
  { state = seed }

let derive seed ~stream =
  (* Run the seed and the stream id through the splitmix finalizer
     independently before combining, so that nearby (seed, stream)
     pairs land on decorrelated streams. Pure: derives the same
     generator every time without consuming entropy from anything. *)
  let a = mix (Int64.of_int seed) in
  let b = mix (Int64.logxor (Int64.of_int stream) 0x5851F42D4C957F2DL) in
  { state = Int64.logxor a b }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Keep 62 bits so the value fits OCaml's 63-bit native int positively. *)
  let r = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  r mod bound

let uniform t =
  (* 53 random bits mapped to [0, 1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let float t bound = uniform t *. bound

let bool t = Int64.logand (int64 t) 1L = 1L

let gaussian t =
  let rec draw () =
    let u1 = uniform t in
    if u1 <= 1e-12 then draw () else u1
  in
  let u1 = draw () in
  let u2 = uniform t in
  sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2)

let choice t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choice: empty array";
  arr.(int t (Array.length arr))

let choice_list t l =
  match l with
  | [] -> invalid_arg "Rng.choice_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let sample_without_replacement t k arr =
  if k > Array.length arr then
    invalid_arg "Rng.sample_without_replacement: k too large";
  let pool = Array.copy arr in
  shuffle t pool;
  Array.sub pool 0 k
