(** Benchmark and training-set generation (paper §5.1.1, Table 2).

    The paper scraped 121 models from TensorFlow Hub and Hugging Face and
    kept the most frequent operations with their input shapes. We stand
    in for the scrape with seeded sampling from shape menus typical of
    vision backbones and transformer blocks, reproducing the exact
    Table 2 counts: 1088 training ops and 67 validation ops across
    matmul, conv2d, maxpool, add and relu. *)

type counts = {
  c_matmul : int;
  c_conv2d : int;
  c_maxpool : int;
  c_add : int;
  c_relu : int;
}

val table2_train : counts
(** matmul 175, conv2d 232, maxpool 200, add 248, relu 233. *)

val table2_validation : counts
(** matmul 15, conv2d 18, maxpool 10, add 10, relu 14. *)

val total : counts -> int

type split = { train : Linalg.t array; validation : Linalg.t array }

val generate :
  ?train_counts:counts -> ?validation_counts:counts -> seed:int -> unit -> split
(** Deterministic in [seed]; op names are unique within the split.
    Defaults to the Table 2 counts. *)

val random_op : Util.Rng.t -> string -> Linalg.t
(** [random_op rng kind] draws one op of the given kind. The Table 2
    kinds are "matmul", "conv2d", "maxpool", "add" and "relu"; beyond
    the paper, "batch_matmul", "conv2d_nchw", "dwconv", "avgpool",
    "mul", "sub", "div", "exp", "log" and "bias_add" are also
    supported. Raises
    [Invalid_argument] on an unknown kind. *)

val kind_counts : Linalg.t array -> (string * int) list
(** Histogram by {!Linalg.kind_name}, sorted by name (for the Table 2
    bench). *)
