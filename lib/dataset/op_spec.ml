let examples =
  [
    "matmul:1024x1024x1024";
    "conv2d:56x56x64,k3,f128,s1";
    "maxpool:112x112x64,k2,s2";
    "add:1024x1024";
    "relu:2048x1024";
    "batch_matmul:8x128x128x64";
    "dwconv:56x56x64,k3,s1";
    "avgpool:56x56x128,k2,s2";
    "mul:1024x1024";
    "exp:512x512";
    "bias_add:1024x512";
  ]

let parse_dims s =
  let parts = String.split_on_char 'x' s in
  try
    let dims = List.map int_of_string parts in
    if List.exists (fun d -> d <= 0) dims then Error "dimensions must be positive"
    else Ok (Array.of_list dims)
  with Failure _ -> Error (Printf.sprintf "bad dimension list %S" s)

let find_param params prefix =
  let matching =
    List.filter_map
      (fun p ->
        let n = String.length prefix in
        if String.length p > n && String.sub p 0 n = prefix then
          int_of_string_opt (String.sub p n (String.length p - n))
        else None)
      params
  in
  match matching with [ v ] -> Some v | _ -> None

let parse spec =
  match String.index_opt spec ':' with
  | None -> Error (Printf.sprintf "expected kind:args, got %S" spec)
  | Some i -> (
      let kind = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      match kind with
      | "matmul" -> (
          match parse_dims rest with
          | Ok [| m; n; k |] -> Ok (Linalg.matmul ~m ~n ~k ())
          | Ok _ -> Error "matmul needs MxNxK"
          | Error _ as e -> e)
      | "batch_matmul" -> (
          match parse_dims rest with
          | Ok [| b; m; n; k |] -> Ok (Linalg.batch_matmul ~b ~m ~n ~k ())
          | Ok _ -> Error "batch_matmul needs BxMxNxK"
          | Error _ as e -> e)
      | "add" | "relu" | "mul" | "sub" | "div" | "exp" | "log" | "bias_add" -> (
          match parse_dims rest with
          | Ok dims when Array.length dims >= 1 && Array.length dims <= 4 -> (
              match kind with
              | "add" -> Ok (Linalg.add dims)
              | "relu" -> Ok (Linalg.relu dims)
              | "mul" -> Ok (Linalg.binary Linalg.Mul_k dims)
              | "sub" -> Ok (Linalg.binary Linalg.Sub_k dims)
              | "div" -> Ok (Linalg.binary Linalg.Div_k dims)
              | "exp" -> Ok (Linalg.unary Linalg.Exp_k dims)
              | "log" -> Ok (Linalg.unary Linalg.Log_k dims)
              | "bias_add" ->
                  if Array.length dims >= 2 then Ok (Linalg.bias_add dims)
                  else Error "bias_add needs rank >= 2"
              | _ -> Error "unreachable elementwise kind")
          | Ok _ -> Error "elementwise ops take 1-4 dims"
          | Error _ as e -> e)
      | "conv2d" | "conv2d_nchw" | "dwconv" | "maxpool" | "avgpool" -> (
          match String.split_on_char ',' rest with
          | dims_s :: params -> (
              match parse_dims dims_s with
              | Error _ as e -> e
              | Ok [| h; w; c |] -> (
                  let k = find_param params "k" in
                  let s = find_param params "s" in
                  let b = Option.value ~default:1 (find_param params "b") in
                  match (kind, k, s, find_param params "f") with
                  | ("conv2d" | "conv2d_nchw"), Some k, Some s, Some f -> (
                      let params =
                        {
                          Linalg.batch = b;
                          in_h = h;
                          in_w = w;
                          channels = c;
                          kernel_h = k;
                          kernel_w = k;
                          filters = f;
                          stride = s;
                        }
                      in
                      try
                        Ok
                          (if kind = "conv2d" then Linalg.conv2d params
                           else Linalg.conv2d_nchw params)
                      with Invalid_argument m -> Error m)
                  | ("conv2d" | "conv2d_nchw"), _, _, _ ->
                      Error "conv2d needs ,kK,fF,sS"
                  | "dwconv", Some k, Some s, _ -> (
                      try
                        Ok
                          (Linalg.depthwise_conv2d
                             {
                               Linalg.batch = b;
                               in_h = h;
                               in_w = w;
                               channels = c;
                               kernel_h = k;
                               kernel_w = k;
                               filters = 1;
                               stride = s;
                             })
                      with Invalid_argument m -> Error m)
                  | "dwconv", _, _, _ -> Error "dwconv needs ,kK,sS"
                  | ("maxpool" | "avgpool"), Some k, Some s, _ -> (
                      let params =
                        {
                          Linalg.p_batch = b;
                          p_in_h = h;
                          p_in_w = w;
                          p_channels = c;
                          p_kernel = k;
                          p_stride = s;
                        }
                      in
                      try
                        Ok
                          (if kind = "maxpool" then Linalg.maxpool params
                           else Linalg.avgpool params)
                      with Invalid_argument m -> Error m)
                  | ("maxpool" | "avgpool"), _, _, _ ->
                      Error "pooling needs ,kK,sS"
                  | _ -> Error "unreachable kind")
              | Ok _ -> Error (kind ^ " needs HxWxC dims"))
          | [] -> Error "missing arguments")
      | k -> Error (Printf.sprintf "unknown op kind %S" k))

let to_spec (op : Linalg.t) =
  let dims_str dims =
    String.concat "x" (Array.to_list (Array.map string_of_int dims))
  in
  match op.Linalg.kind with
  | Linalg.Matmul { m; n; k } -> Some (Printf.sprintf "matmul:%dx%dx%d" m n k)
  | Linalg.Conv2d p ->
      Some
        (Printf.sprintf "conv2d:%dx%dx%d,k%d,f%d,s%d%s" p.Linalg.in_h p.Linalg.in_w
           p.Linalg.channels p.Linalg.kernel_h p.Linalg.filters p.Linalg.stride
           (if p.Linalg.batch = 1 then "" else Printf.sprintf ",b%d" p.Linalg.batch))
  | Linalg.Maxpool p ->
      Some
        (Printf.sprintf "maxpool:%dx%dx%d,k%d,s%d%s" p.Linalg.p_in_h p.Linalg.p_in_w
           p.Linalg.p_channels p.Linalg.p_kernel p.Linalg.p_stride
           (if p.Linalg.p_batch = 1 then "" else Printf.sprintf ",b%d" p.Linalg.p_batch))
  | Linalg.Add_op dims -> Some (Printf.sprintf "add:%s" (dims_str dims))
  | Linalg.Relu_op dims -> Some (Printf.sprintf "relu:%s" (dims_str dims))
  | Linalg.Conv2d_nchw p ->
      Some
        (Printf.sprintf "conv2d_nchw:%dx%dx%d,k%d,f%d,s%d%s" p.Linalg.in_h
           p.Linalg.in_w p.Linalg.channels p.Linalg.kernel_h p.Linalg.filters
           p.Linalg.stride
           (if p.Linalg.batch = 1 then "" else Printf.sprintf ",b%d" p.Linalg.batch))
  | Linalg.Batch_matmul { bb; m; n; k } ->
      Some (Printf.sprintf "batch_matmul:%dx%dx%dx%d" bb m n k)
  | Linalg.Depthwise_conv2d p ->
      Some
        (Printf.sprintf "dwconv:%dx%dx%d,k%d,s%d%s" p.Linalg.in_h p.Linalg.in_w
           p.Linalg.channels p.Linalg.kernel_h p.Linalg.stride
           (if p.Linalg.batch = 1 then "" else Printf.sprintf ",b%d" p.Linalg.batch))
  | Linalg.Avgpool p ->
      Some
        (Printf.sprintf "avgpool:%dx%dx%d,k%d,s%d%s" p.Linalg.p_in_h p.Linalg.p_in_w
           p.Linalg.p_channels p.Linalg.p_kernel p.Linalg.p_stride
           (if p.Linalg.p_batch = 1 then "" else Printf.sprintf ",b%d" p.Linalg.p_batch))
  | Linalg.Unary_op (k, dims) ->
      let tag =
        match k with
        | Linalg.Exp_k -> "exp"
        | Linalg.Log_k -> "log"
        | Linalg.Relu_k -> "relu"
      in
      Some (Printf.sprintf "%s:%s" tag (dims_str dims))
  | Linalg.Binary_op (k, dims) ->
      let tag =
        match k with
        | Linalg.Add_k -> "add"
        | Linalg.Sub_k -> "sub"
        | Linalg.Mul_k -> "mul"
        | Linalg.Div_k -> "div"
      in
      Some (Printf.sprintf "%s:%s" tag (dims_str dims))
  | Linalg.Bias_add dims -> Some (Printf.sprintf "bias_add:%s" (dims_str dims))
  | Linalg.Generic_op -> None
