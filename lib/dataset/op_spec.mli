(** Textual operation specs for the CLI and benches.

    Grammar (sizes are positive integers):
    - ["matmul:MxNxK"], e.g. [matmul:1024x1024x1024]
    - ["conv2d:HxWxC,kK,fF,sS\[,bB\]"], e.g. [conv2d:56x56x64,k3,f128,s1]
    - ["maxpool:HxWxC,kK,sS\[,bB\]"], e.g. [maxpool:112x112x64,k2,s2]
    - ["add:D1xD2\[x...\]"] and ["relu:D1x...\]"], e.g. [add:1024x1024] *)

val parse : string -> (Linalg.t, string) result

val to_spec : Linalg.t -> string option
(** Inverse where possible ([None] for generic ops). *)

val examples : string list
(** One valid spec per kind, for help text. *)
