type counts = {
  c_matmul : int;
  c_conv2d : int;
  c_maxpool : int;
  c_add : int;
  c_relu : int;
}

let table2_train =
  { c_matmul = 175; c_conv2d = 232; c_maxpool = 200; c_add = 248; c_relu = 233 }

let table2_validation =
  { c_matmul = 15; c_conv2d = 18; c_maxpool = 10; c_add = 10; c_relu = 14 }

let total c = c.c_matmul + c.c_conv2d + c.c_maxpool + c.c_add + c.c_relu

type split = { train : Linalg.t array; validation : Linalg.t array }

(* Shape menus typical of the networks the paper scraped: transformer
   projections and MLPs for matmul; vision backbone stages for conv and
   pooling; activation/residual tensors for add and relu. *)

let matmul_dims = [| 64; 128; 256; 384; 512; 768; 1024; 2048 |]
let matmul_inner = [| 64; 128; 256; 512; 768; 1024; 2048; 4096 |]

let conv_spatial = [| 112; 56; 28; 14 |]
let conv_channels = [| 3; 16; 32; 64; 128; 256 |]
let conv_filters = [| 16; 32; 64; 128; 256; 512 |]
let conv_kernels = [| 1; 3; 5 |]
let conv_strides = [| 1; 2 |]

let pool_spatial = [| 112; 56; 28 |]
let pool_channels = [| 16; 32; 64; 128; 256 |]
let pool_kernels = [| 2; 3 |]

let ew_rows = [| 128; 256; 512; 1024; 2048; 4096 |]
let ew_cols = [| 128; 256; 512; 1024; 2048; 4096 |]
let ew_spatial = [| 56; 28; 14 |]
let ew_channels = [| 32; 64; 128; 256 |]

let random_matmul rng =
  Linalg.matmul
    ~m:(Util.Rng.choice rng matmul_dims)
    ~n:(Util.Rng.choice rng matmul_dims)
    ~k:(Util.Rng.choice rng matmul_inner)
    ()

let random_conv2d rng =
  let rec draw () =
    let spatial = Util.Rng.choice rng conv_spatial in
    let kernel = Util.Rng.choice rng conv_kernels in
    let stride = Util.Rng.choice rng conv_strides in
    if kernel > spatial then draw ()
    else
      Linalg.conv2d
        {
          Linalg.batch = 1;
          in_h = spatial;
          in_w = spatial;
          channels = Util.Rng.choice rng conv_channels;
          kernel_h = kernel;
          kernel_w = kernel;
          filters = Util.Rng.choice rng conv_filters;
          stride;
        }
  in
  draw ()

let random_maxpool rng =
  let spatial = Util.Rng.choice rng pool_spatial in
  let kernel = Util.Rng.choice rng pool_kernels in
  Linalg.maxpool
    {
      Linalg.p_batch = 1;
      p_in_h = spatial;
      p_in_w = spatial;
      p_channels = Util.Rng.choice rng pool_channels;
      p_kernel = kernel;
      p_stride = kernel;
    }

let random_ew_shape rng =
  if Util.Rng.bool rng then
    [| Util.Rng.choice rng ew_rows; Util.Rng.choice rng ew_cols |]
  else begin
    let s = Util.Rng.choice rng ew_spatial in
    [| 1; s; s; Util.Rng.choice rng ew_channels |]
  end

let random_add rng = Linalg.add (random_ew_shape rng)
let random_relu rng = Linalg.relu (random_ew_shape rng)

let random_batch_matmul rng =
  Linalg.batch_matmul
    ~b:(Util.Rng.choice rng [| 2; 4; 8; 12; 16 |])
    ~m:(Util.Rng.choice rng [| 64; 128; 256; 512 |])
    ~n:(Util.Rng.choice rng [| 64; 128; 256; 512 |])
    ~k:(Util.Rng.choice rng [| 64; 128; 256; 512 |])
    ()

let random_dwconv rng =
  let rec draw () =
    let spatial = Util.Rng.choice rng conv_spatial in
    let kernel = Util.Rng.choice rng conv_kernels in
    if kernel > spatial then draw ()
    else
      Linalg.depthwise_conv2d
        {
          Linalg.batch = 1;
          in_h = spatial;
          in_w = spatial;
          channels = Util.Rng.choice rng conv_channels;
          kernel_h = kernel;
          kernel_w = kernel;
          filters = 1;
          stride = Util.Rng.choice rng conv_strides;
        }
  in
  draw ()

let random_avgpool rng =
  let spatial = Util.Rng.choice rng pool_spatial in
  let kernel = Util.Rng.choice rng pool_kernels in
  Linalg.avgpool
    {
      Linalg.p_batch = 1;
      p_in_h = spatial;
      p_in_w = spatial;
      p_channels = Util.Rng.choice rng pool_channels;
      p_kernel = kernel;
      p_stride = kernel;
    }

let random_op rng kind =
  match kind with
  | "matmul" -> random_matmul rng
  | "batch_matmul" -> random_batch_matmul rng
  | "conv2d" -> random_conv2d rng
  | "conv2d_nchw" -> (
      match (random_conv2d rng).Linalg.kind with
      | Linalg.Conv2d p -> Linalg.conv2d_nchw p
      | _ -> assert false)
  | "dwconv" -> random_dwconv rng
  | "maxpool" -> random_maxpool rng
  | "avgpool" -> random_avgpool rng
  | "add" -> random_add rng
  | "relu" -> random_relu rng
  | "mul" -> Linalg.binary Linalg.Mul_k (random_ew_shape rng)
  | "sub" -> Linalg.binary Linalg.Sub_k (random_ew_shape rng)
  | "div" -> Linalg.binary Linalg.Div_k (random_ew_shape rng)
  | "exp" -> Linalg.unary Linalg.Exp_k (random_ew_shape rng)
  | "log" -> Linalg.unary Linalg.Log_k (random_ew_shape rng)
  | "bias_add" ->
      Linalg.bias_add
        [| Util.Rng.choice rng ew_rows; Util.Rng.choice rng ew_cols |]
  | k -> invalid_arg ("Generator.random_op: unknown kind " ^ k)

let generate_counts rng tag counts =
  let ops = ref [] in
  let emit kind n =
    for i = 1 to n do
      let op = random_op rng kind in
      let op =
        { op with Linalg.op_name = Printf.sprintf "%s_%s_%03d" tag op.Linalg.op_name i }
      in
      ops := op :: !ops
    done
  in
  emit "matmul" counts.c_matmul;
  emit "conv2d" counts.c_conv2d;
  emit "maxpool" counts.c_maxpool;
  emit "add" counts.c_add;
  emit "relu" counts.c_relu;
  Array.of_list (List.rev !ops)

let generate ?(train_counts = table2_train)
    ?(validation_counts = table2_validation) ~seed () =
  let rng = Util.Rng.create seed in
  let train_rng = Util.Rng.split rng in
  let val_rng = Util.Rng.split rng in
  {
    train = generate_counts train_rng "train" train_counts;
    validation = generate_counts val_rng "val" validation_counts;
  }

let kind_counts ops =
  let tbl = Hashtbl.create 8 in
  Array.iter
    (fun op ->
      let k = Linalg.kind_name op in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    ops;
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])
