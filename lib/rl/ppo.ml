type config = {
  learning_rate : float;
  clip_range : float;
  gamma : float;
  gae_lambda : float;
  batch_size : int;
  minibatch_size : int;
  epochs : int;
  value_coef : float;
  entropy_coef : float;
  max_grad_norm : float;
}

let default_config =
  {
    learning_rate = 1e-3;
    clip_range = 0.2;
    gamma = 0.99;
    gae_lambda = 0.95;
    batch_size = 64;
    minibatch_size = 64;
    epochs = 4;
    value_coef = 0.5;
    entropy_coef = 0.01;
    max_grad_norm = 0.5;
  }

type evaluation = {
  log_prob : Autodiff.node;
  entropy : Autodiff.node;
  value : Autodiff.node;
}

type 'sample policy = {
  evaluate : Autodiff.Tape.t -> 'sample array -> evaluation;
  params : Autodiff.Param.t list;
}

type 'sample transition = {
  sample : 'sample;
  reward : float;
  value : float;
  log_prob : float;
  terminal : bool;
}

type stats = {
  policy_loss : float;
  value_loss : float;
  entropy_mean : float;
  approx_kl : float;
  clip_fraction : float;
  grad_norm : float;
}

(* Arena behind the per-minibatch tapes: the op sequence repeats every
   minibatch (same network), so after the first one a whole
   evaluate/backward cycle runs without allocating. Reset by
   [Tape.create]; all stats escape as scalars before the next reset.
   Per-domain, though updates only ever run on the main domain. *)
let tape_ws_key = Domain.DLS.new_key Tensor.Workspace.create

let update config policy optimizer transitions ~rng =
  let n = Array.length transitions in
  if n = 0 then invalid_arg "Ppo.update: empty batch";
  let gae_steps =
    Array.map
      (fun (t : _ transition) ->
        { Gae.reward = t.reward; value = t.value; terminal = t.terminal })
      transitions
  in
  let advantages, returns =
    Gae.advantages ~gamma:config.gamma ~lambda:config.gae_lambda gae_steps
  in
  let advantages = Gae.normalize advantages in
  let indices = Array.init n (fun i -> i) in
  let stat_policy = ref 0.0
  and stat_value = ref 0.0
  and stat_entropy = ref 0.0
  and stat_kl = ref 0.0
  and stat_clip = ref 0.0
  and stat_gnorm = ref 0.0
  and stat_count = ref 0 in
  for _epoch = 1 to config.epochs do
    Util.Rng.shuffle rng indices;
    let pos = ref 0 in
    while !pos < n do
      let size = min config.minibatch_size (n - !pos) in
      let batch_idx = Array.sub indices !pos size in
      pos := !pos + size;
      let samples =
        Array.map (fun i -> transitions.(i).sample) batch_idx
      in
      let old_logp =
        Tensor.init [| size |] (fun j -> transitions.(batch_idx.(j)).log_prob)
      in
      let adv = Tensor.init [| size |] (fun j -> advantages.(batch_idx.(j))) in
      let ret = Tensor.init [| size |] (fun j -> returns.(batch_idx.(j))) in
      let tape = Autodiff.Tape.create ~ws:(Domain.DLS.get tape_ws_key) () in
      let ev = policy.evaluate tape samples in
      (* ratio = exp(logp - old_logp) *)
      let diff = Autodiff.sub tape ev.log_prob (Autodiff.const tape old_logp) in
      let ratio = Autodiff.exp_ tape diff in
      let adv_node = Autodiff.const tape adv in
      let unclipped = Autodiff.mul tape ratio adv_node in
      let clipped =
        Autodiff.mul tape
          (Autodiff.clamp tape ~lo:(1.0 -. config.clip_range)
             ~hi:(1.0 +. config.clip_range) ratio)
          adv_node
      in
      let surrogate = Autodiff.min_ tape unclipped clipped in
      let policy_loss =
        Autodiff.neg tape (Autodiff.mean_all tape surrogate)
      in
      let value_err = Autodiff.sub tape ev.value (Autodiff.const tape ret) in
      let value_loss = Autodiff.mean_all tape (Autodiff.square tape value_err) in
      let entropy_mean = Autodiff.mean_all tape ev.entropy in
      let loss =
        Autodiff.sub tape
          (Autodiff.add tape policy_loss
             (Autodiff.scale tape config.value_coef value_loss))
          (Autodiff.scale tape config.entropy_coef entropy_mean)
      in
      Optim.zero_grad optimizer;
      Autodiff.backward tape loss;
      let gnorm = Optim.clip_grad_norm optimizer config.max_grad_norm in
      Optim.step optimizer;
      (* statistics *)
      let ratio_v = Autodiff.value ratio in
      let kl = ref 0.0 and clipfrac = ref 0 in
      for i = 0 to size - 1 do
        let r = Tensor.unsafe_get ratio_v i in
        (* approx KL: (r - 1) - log r *)
        kl := !kl +. (r -. 1.0 -. log (Float.max r 1e-12));
        if Float.abs (r -. 1.0) > config.clip_range then incr clipfrac
      done;
      stat_policy := !stat_policy +. Tensor.get (Autodiff.value policy_loss) 0;
      stat_value := !stat_value +. Tensor.get (Autodiff.value value_loss) 0;
      stat_entropy := !stat_entropy +. Tensor.get (Autodiff.value entropy_mean) 0;
      stat_kl := !stat_kl +. (!kl /. float_of_int size);
      stat_clip := !stat_clip +. (float_of_int !clipfrac /. float_of_int size);
      stat_gnorm := !stat_gnorm +. gnorm;
      incr stat_count
    done
  done;
  let c = float_of_int (max 1 !stat_count) in
  {
    policy_loss = !stat_policy /. c;
    value_loss = !stat_value /. c;
    entropy_mean = !stat_entropy /. c;
    approx_kl = !stat_kl /. c;
    clip_fraction = !stat_clip /. c;
    grad_norm = !stat_gnorm /. c;
  }
