(** Proximal Policy Optimization (clipped surrogate objective).

    Generic over the sample type: the environment-specific policy plugs
    in through {!type-policy}, which must re-evaluate stored samples
    differentiably. Hyperparameter defaults follow the paper (§5.1.3):
    lr 1e-3, clip 0.2, gamma 0.99, GAE lambda 0.95, batch 64, 4 epochs,
    value coefficient 0.5, entropy coefficient 0.01. *)

type config = {
  learning_rate : float;
  clip_range : float;
  gamma : float;
  gae_lambda : float;
  batch_size : int;  (** steps collected per iteration *)
  minibatch_size : int;
  epochs : int;  (** passes over the batch per iteration *)
  value_coef : float;
  entropy_coef : float;
  max_grad_norm : float;
}

val default_config : config

type evaluation = {
  log_prob : Autodiff.node;  (** \[batch\] log pi(a|s) of stored actions *)
  entropy : Autodiff.node;  (** \[batch\] policy entropy at s *)
  value : Autodiff.node;  (** \[batch\] state-value estimates *)
}

type 'sample policy = {
  evaluate : Autodiff.Tape.t -> 'sample array -> evaluation;
  params : Autodiff.Param.t list;
}

type 'sample transition = {
  sample : 'sample;  (** whatever the policy needs: obs, action, masks *)
  reward : float;
  value : float;  (** V(s) at collection time *)
  log_prob : float;  (** log pi(a|s) at collection time *)
  terminal : bool;
}

type stats = {
  policy_loss : float;
  value_loss : float;
  entropy_mean : float;
  approx_kl : float;
  clip_fraction : float;
  grad_norm : float;
}

val update :
  config ->
  'sample policy ->
  Optim.t ->
  'sample transition array ->
  rng:Util.Rng.t ->
  stats
(** One PPO iteration over a collected batch: computes GAE advantages
    (normalized), then runs [epochs] passes of minibatch updates with the
    clipped surrogate, value MSE and entropy bonus. Returns averaged
    statistics. *)
