(** Generalized Advantage Estimation (Schulman et al., 2016).

    Computes advantages and value targets over a flat sequence of steps
    that may contain several episodes (separated by [terminal] flags).
    The sequence is assumed to end at an episode boundary, as the
    trainer always completes episodes before updating. *)

type step = { reward : float; value : float; terminal : bool }

val advantages :
  gamma:float -> lambda:float -> step array -> float array * float array
(** [advantages ~gamma ~lambda steps] returns [(advantages, returns)]
    where [returns.(t) = advantages.(t) +. steps.(t).value]. *)

val normalize : float array -> float array
(** Standardize to zero mean / unit std (std floored at 1e-8). Returns a
    fresh array; empty input yields an empty array. *)
