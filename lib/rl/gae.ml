type step = { reward : float; value : float; terminal : bool }

let advantages ~gamma ~lambda steps =
  let n = Array.length steps in
  let adv = Array.make n 0.0 in
  let next_adv = ref 0.0 in
  let next_value = ref 0.0 in
  for t = n - 1 downto 0 do
    let s = steps.(t) in
    let mask = if s.terminal then 0.0 else 1.0 in
    let delta = s.reward +. (gamma *. !next_value *. mask) -. s.value in
    adv.(t) <- delta +. (gamma *. lambda *. mask *. !next_adv);
    next_adv := adv.(t);
    next_value := s.value
  done;
  let returns = Array.mapi (fun t a -> a +. steps.(t).value) adv in
  (adv, returns)

let normalize xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
    let var =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 xs
      /. float_of_int n
    in
    let std = Float.max (sqrt var) 1e-8 in
    Array.map (fun x -> (x -. mean) /. std) xs
  end
