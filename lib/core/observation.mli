(** Feature extraction: schedule state -> representation vector.

    Implements the paper's Figure 1 pipeline and Table 1 layout. The
    observation concatenates, in order:

    + {b loop information} (N values): log2 trip count of each point-band
      loop in the current order, scaled by 1/16, zero-padded;
    + {b load access matrices} (L x D x (N+1)): one access matrix per
      input operand (Figure 2), rows = array dims, columns = coefficients
      of the point loops in current order plus the constant, scaled 1/4;
    + {b store access matrix} (D x (N+1)): same for the output;
    + {b math op counts} (6): add, sub, mul, div, exp, log, scaled 1/4;
    + {b history of optimizations} (N x 3 x tau): per point loop, rows
      are tiling / parallelization / interchange; tile sizes enter as
      log2(size)/8, interchange as (index+1)/N (paper §3.2). *)

val extract : Env_config.t -> Sched_state.t -> float array
(** Raises [Invalid_argument] when the op exceeds the configured N, D or
    L bounds. Length is always {!Env_config.obs_dim}. *)

val loop_info : Env_config.t -> Sched_state.t -> float array
(** First component only (for tests). *)

val access_matrix :
  Env_config.t -> Sched_state.t -> Linalg.operand -> float array
(** One flattened D x (N+1) matrix (for tests), columns ordered by the
    current point-band loop order. *)

val history : Env_config.t -> Sched_state.t -> float array
(** Last component only (for tests): N x 3 x tau. *)
