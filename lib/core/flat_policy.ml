type sample = { f_obs : float array; f_choice : int; f_mask : bool array }

type t = {
  menu : Action_space.simple_item array;
  backbone : Layers.mlp;
  head : Layers.mlp;
  value_net : Layers.mlp;
}

let create ?(hidden = 512) ?(backbone_layers = 4) rng (cfg : Env_config.t)
    ~n_loops =
  let obs_dim = Env_config.obs_dim cfg in
  let menu = Action_space.simple_menu cfg ~n_loops in
  let k = Array.length menu in
  {
    menu;
    backbone =
      Layers.mlp rng
        ~dims:(obs_dim :: List.init backbone_layers (fun _ -> hidden))
        "flat_backbone";
    head = Layers.mlp rng ~dims:[ hidden; hidden; k ] "flat_head";
    value_net =
      Layers.mlp rng
        ~dims:(obs_dim :: List.init backbone_layers (fun _ -> hidden) @ [ 1 ])
        "flat_value";
  }

let menu t = t.menu

let params t =
  Layers.mlp_params t.backbone
  @ Layers.mlp_params t.head
  @ Layers.mlp_params t.value_net

let obs_tensor_of_rows = Policy.obs_tensor_of_rows

let forward tape t obs_tensor =
  let obs = Autodiff.const tape obs_tensor in
  let feat = Autodiff.relu tape (Layers.forward_mlp tape t.backbone obs) in
  let logits = Layers.forward_mlp tape t.head feat in
  let value = Layers.forward_mlp tape t.value_net obs in
  (logits, value)

let safe_row row =
  if Array.exists (fun b -> b) row then row
  else begin
    let r = Array.copy row in
    r.(0) <- true;
    r
  end

(* Per-domain workspace for the tape-free paths; reset per call, every
   escaping result extracted as a scalar before return (see Policy). *)
let ws_key = Domain.DLS.new_key Tensor.Workspace.create

let forward_values ~ws t obs_t =
  let out = Layers.forward_batch ~ws t.backbone obs_t in
  let feat = Tensor.relu_into ~dst:out out in
  Layers.forward_batch ~ws t.head feat

let act_batch rngs t ~obs ~masks =
  (* Tape-free batched [act]; row-independent kernels + per-row rngs
     make this bit-equal to acting on each row alone (see Policy). *)
  let b = Array.length obs in
  if Array.length rngs <> b || Array.length masks <> b then
    invalid_arg "Flat_policy.act_batch: obs/masks/rngs length mismatch";
  let ws = Domain.DLS.get ws_key in
  Tensor.Workspace.reset ws;
  let obs_t = obs_tensor_of_rows ~ws obs in
  let logits = forward_values ~ws t obs_t in
  let value = Layers.forward_batch ~ws t.value_net obs_t in
  let lp =
    Distributions.masked_log_probs_values ~ws logits
      ~mask:(Array.map safe_row masks)
  in
  let choices = Distributions.sample_batch rngs lp in
  Array.init b (fun i ->
      (choices.(i), Tensor.get2 lp i choices.(i), Tensor.get2 value i 0))

let act rng t ~obs ~mask =
  (act_batch [| rng |] t ~obs:[| obs |] ~masks:[| mask |]).(0)

let act_greedy t ~obs ~mask =
  (* Same values as the tape path ([forward_batch] mirrors [forward_mlp]
     bit for bit), minus the tape and the value-net forward. *)
  let ws = Domain.DLS.get ws_key in
  Tensor.Workspace.reset ws;
  let logits = forward_values ~ws t (obs_tensor_of_rows ~ws [| obs |]) in
  let lp =
    Distributions.masked_log_probs_values ~ws logits ~mask:[| safe_row mask |]
  in
  Distributions.argmax lp 0

let evaluate t tape (samples : sample array) =
  let b = Array.length samples in
  let obs =
    obs_tensor_of_rows
      ?ws:(Autodiff.Tape.ws tape)
      (Array.map (fun s -> s.f_obs) samples)
  in
  let logits, value = forward tape t obs in
  let mask = Array.map (fun s -> safe_row s.f_mask) samples in
  let lp = Distributions.masked_log_probs tape logits ~mask in
  let log_prob =
    Distributions.log_prob_of tape lp (Array.map (fun s -> s.f_choice) samples)
  in
  let entropy = Distributions.entropy tape lp in
  let value = Autodiff.gather_cols tape value (Array.make b 0) in
  { Ppo.log_prob; entropy; value }

let ppo_policy t =
  { Ppo.evaluate = (fun tape samples -> evaluate t tape samples); params = params t }
