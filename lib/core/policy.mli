(** The multi-action policy network (paper §4.2, Figures 3 and 4).

    A shared backbone (four dense layers, ReLU) feeds per-transformation
    sub-networks: a transformation head over the five choices, a tiling
    head and a parallelization head of shape N x M (a tile-size
    distribution per loop), and an interchange head over the N adjacent
    swaps. A separate value network (four dense layers) estimates
    V(s). Joint log-probabilities are the sum of the transformation
    log-probability and the chosen branch's parameter log-probabilities;
    entropies combine the same way. *)

type sample = {
  s_obs : float array;
  s_action : Action_space.hierarchical;
  s_masks : Action_space.masks;
}
(** What the PPO update needs to re-evaluate a stored step. *)

type t

val create :
  ?hidden:int -> ?backbone_layers:int -> Util.Rng.t -> Env_config.t -> t
(** [hidden] defaults to 512 and [backbone_layers] to 4 (the paper's
    sizes); benches pass smaller values to fit the iteration budget. *)

val params : t -> Autodiff.Param.t list
val param_count : t -> int

val obs_tensor_of_rows : ?ws:Tensor.Workspace.t -> float array array -> Tensor.t
(** Stack observation rows into a \[batch; obs_dim\] matrix, optionally
    in a workspace buffer (shared helper for batched inference paths). *)

val act :
  ?temperature:float ->
  Util.Rng.t ->
  t ->
  obs:float array ->
  masks:Action_space.masks ->
  Action_space.hierarchical * float * float
(** Sample an action; returns (action, joint log-probability, value
    estimate). [temperature] (default 1.0) flattens the sampling
    distribution for inference-time exploration; the returned
    log-probability is always the untempered policy's, so training must
    use the default. *)

val act_batch :
  ?temperature:float ->
  Util.Rng.t array ->
  t ->
  obs:float array array ->
  masks:Action_space.masks array ->
  (Action_space.hierarchical * float * float) array
(** Batched, tape-free {!act}: one forward pass for a whole slab of
    concurrently advancing episodes, row [i] sampling from [rngs.(i)]
    only. Bit-equal to calling {!act}'s sampling math per row (every
    kernel on this path is row-independent with identical accumulation
    order), so results do not depend on how episodes are batched —
    the keystone of the [--jobs]-independent determinism contract. *)

val act_greedy :
  t ->
  obs:float array ->
  masks:Action_space.masks ->
  Action_space.hierarchical
(** Deterministic (argmax) action for evaluation-time inference. *)

val act_greedy_batch :
  t ->
  obs:float array array ->
  masks:Action_space.masks array ->
  Action_space.hierarchical array
(** Batched, tape-free {!act_greedy}: one forward pass for a slab of
    concurrently advancing episodes, argmax per row. Row [i]'s action is
    identical to a singleton {!act_greedy} call on row [i] — served
    schedules therefore do not depend on request batching (the serving
    daemon's determinism contract). *)

val ppo_policy : t -> sample Ppo.policy
(** The {!Ppo} plug: batch re-evaluation of stored samples. *)

val save : t -> string -> unit
(** Persist all weights (see {!Serialize}). *)

val load : t -> string -> (unit, string) result
(** Restore weights into a policy of the same architecture. *)
