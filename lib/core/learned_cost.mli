(** A learned cost model (paper §6.1 future work).

    The paper suggests replacing repeated executions with a deep-learning
    cost model. This module implements that extension: an MLP regressor
    from the environment's observation vector (which already encodes the
    op's structure and the applied schedule through the history tensor)
    to the log speedup, trained on (state, measured log-speedup) pairs
    collected with random legal schedules. It can then stand in for the
    evaluator during reward computation. *)

type t

val create : ?hidden:int -> ?layers:int -> Util.Rng.t -> Env_config.t -> t
(** Defaults: 2 hidden layers of 128. *)

val predict : t -> float array -> float
(** Predicted log speedup for an observation vector. *)

val predict_speedup : t -> Sched_state.t -> float
(** Convenience: extract the observation and exponentiate. *)

type example = { features : float array; log_speedup : float }

val collect :
  ?samples:int ->
  Util.Rng.t ->
  Env_config.t ->
  Evaluator.t ->
  ops:Linalg.t array ->
  example array
(** [collect rng cfg ev ~ops] measures random legal schedules (uniform
    masked actions, 1..tau steps) on randomly drawn ops — the "multiple
    execution runs" the paper wants to amortize. Default 512 samples. *)

type fit_report = { initial_loss : float; final_loss : float; epochs_run : int }

val fit :
  ?epochs:int ->
  ?batch_size:int ->
  ?learning_rate:float ->
  t ->
  example array ->
  fit_report
(** MSE regression with Adam (defaults: 40 epochs, batch 64, lr 1e-3). *)

val rank_correlation : t -> example array -> float
(** Spearman rank correlation between predictions and targets on a
    held-out set — the metric that matters for guiding search. *)
