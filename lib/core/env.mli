(** The RL environment: Linalg op optimization as an episodic MDP.

    An episode starts from an untransformed op ({!reset}); each {!step}
    applies one transformation; the episode ends when the agent
    vectorizes (the paper's implicit stop action), when the schedule
    reaches tau steps, or when a measurement exceeds the adaptive
    timeout. Rewards are log speedups (§3.3): with [Immediate] reward the
    improvement of each step is measured and returned immediately; with
    [Final] reward all steps return 0 and the terminal step returns the
    log of the whole schedule's speedup. *)

type t

type step_result = {
  obs : float array;
  reward : float;
  terminal : bool;
  timed_out : bool;  (** measurement exceeded the adaptive timeout *)
  noop : bool;  (** the action was an all-zero tiling (no effect) *)
  invalid : bool;  (** the transformation was rejected by the IR layer *)
}

val create : ?evaluator:Evaluator.t -> Env_config.t -> t
(** The evaluator defaults to one on [config.machine]. *)

val config : t -> Env_config.t
val evaluator : t -> Evaluator.t

val reset : t -> Linalg.t -> float array
(** Start an episode on an op; returns the initial observation. *)

val state : t -> Sched_state.t
(** Current schedule state (for inspection and masking). *)

val masks : t -> Action_space.masks
(** Masks for the hierarchical policy at the current state. *)

val step_count : t -> int

val step : t -> Schedule.transformation option -> step_result
(** Apply one transformation ([None] is an explicit no-op that still
    consumes a step). Invalid transformations (rejected by the transform
    layer) consume a step and yield the timeout penalty, mirroring the
    paper's treatment of failing compilations. *)

val step_hierarchical : t -> Action_space.hierarchical -> step_result
(** Convert a hierarchical action and step. *)

val current_speedup : t -> float
(** Speedup of the schedule built so far (1.0 right after reset). *)

val schedule : t -> Schedule.t

val measurement_seconds : t -> float
(** Accumulated simulated compile+measure wall-clock spent in this
    environment since creation — the paper's Figure 7 training-time
    axis. Each measurement charges [config.compile_seconds] plus the
    measured execution time. *)

val render : t -> string
(** Human-readable snapshot of the episode: op, schedule so far, step
    count, current estimated time and speedup. For debugging and the
    CLI. *)
