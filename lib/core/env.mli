(** The RL environment: Linalg op optimization as an episodic MDP.

    An episode starts from an untransformed op ({!reset}); each {!step}
    applies one transformation; the episode ends when the agent
    vectorizes (the paper's implicit stop action), when the schedule
    reaches tau steps, or when a measurement exceeds the adaptive
    timeout. Rewards are log speedups (§3.3): with [Immediate] reward the
    improvement of each step is measured and returned immediately; with
    [Final] reward all steps return 0 and the terminal step returns the
    log of the whole schedule's speedup.

    Failure handling is typed, not exceptional: stepping a finished
    episode, an IR-rejected transformation, or a measurement that had to
    degrade to the cost model all surface as {!Env_error.t} values in
    the {!step_result}, so a long training run survives every failure
    mode the backend can produce. *)

type t

type step_result = {
  obs : float array;
  reward : float;
  terminal : bool;
  timed_out : bool;  (** measurement exceeded the adaptive timeout *)
  noop : bool;  (** the action was an all-zero tiling (no effect) *)
  invalid : bool;  (** the transformation was rejected by the IR layer *)
  degraded : bool;
      (** the measurement backend failed and the reward was computed
          from the cost-model estimate (robust evaluator only) *)
  error : Env_error.t option;
      (** the typed error behind [invalid] / [degraded] / stepping a
          finished episode; [None] on the happy path *)
}

val create : ?evaluator:Evaluator.t -> ?robust:Robust_evaluator.t -> Env_config.t -> t
(** The evaluator defaults to one on [config.machine]. Passing [robust]
    routes every measurement through the retrying robust evaluator (its
    underlying evaluator is used for baselines); [evaluator] is then
    ignored. *)

val fork : t -> t
(** A worker-local copy for parallel rollouts: the measurement stack is
    forked ({!Evaluator.fork} / {!Robust_evaluator.fork} — the base-time
    cache is shared and domain-safe, noise/fault streams and counters
    are per-fork), episode state and accounting start fresh. The caller
    seeds the fork's streams per episode and merges
    {!episode_measurement_seconds} / {!episode_degraded} and the
    evaluator counters back in deterministic order. *)

val config : t -> Env_config.t
val evaluator : t -> Evaluator.t

val robust : t -> Robust_evaluator.t option
(** The resilience layer, when one was attached at {!create}. *)

val reset : t -> Linalg.t -> float array
(** Start an episode on an op; returns the initial observation. Resets
    the per-episode measurement and degradation accounting. *)

val state : t -> Sched_state.t
(** Current schedule state (for inspection and masking). Raises
    {!Env_error.Error} [No_episode] before the first {!reset}. *)

val state_opt : t -> Sched_state.t option
(** Non-raising variant of {!state}. *)

val masks : t -> Action_space.masks
(** Masks for the hierarchical policy at the current state. *)

val step_count : t -> int

val step : t -> Schedule.transformation option -> step_result
(** Apply one transformation ([None] is an explicit no-op that still
    consumes a step). Invalid transformations (rejected by the transform
    layer) consume a step and yield the timeout penalty with
    [error = Some (Invalid_action reason)], mirroring the paper's
    treatment of failing compilations. Stepping after the episode ended
    returns a terminal result with [error = Some Episode_over] instead
    of raising. Raises {!Env_error.Error} [No_episode] only when called
    before any {!reset}. *)

val step_hierarchical : t -> Action_space.hierarchical -> step_result
(** Convert a hierarchical action and step. *)

val current_speedup : t -> float
(** Speedup of the schedule built so far (1.0 right after reset). *)

val schedule : t -> Schedule.t

val measurement_seconds : t -> float
(** Accumulated simulated compile+measure wall-clock spent in this
    environment since creation — the paper's Figure 7 training-time
    axis. Each measurement charges [config.compile_seconds] plus the
    measured execution time (for the robust evaluator: all repeats,
    capped hangs and backoff pauses). *)

val episode_measurement_seconds : t -> float
(** Same accounting, but only since the last {!reset}. *)

val degraded_measurements : t -> int
(** Total measurements that fell back to the cost model since creation. *)

val episode_degraded : t -> int
(** Degraded measurements since the last {!reset}. *)

val restore_accounting :
  t -> measurement_seconds:float -> degraded:int -> unit
(** Overwrite the cumulative counters (checkpoint resume). *)

val render : t -> string
(** Human-readable snapshot of the episode: op, schedule so far, step
    count, current estimated time and speedup. For debugging and the
    CLI. *)
