(** Flat policy over the Simple action space (Figure 8 ablation).

    One categorical head over a fixed menu of pre-combined
    transformations — the constrained baseline the paper compares the
    Hierarchical space against. Built for a fixed loop count, so it is
    used on a single op (as in the paper's ablation on one Matmul). *)

type sample = {
  f_obs : float array;
  f_choice : int;  (** menu index *)
  f_mask : bool array;
}

type t

val create :
  ?hidden:int ->
  ?backbone_layers:int ->
  Util.Rng.t ->
  Env_config.t ->
  n_loops:int ->
  t

val menu : t -> Action_space.simple_item array
val params : t -> Autodiff.Param.t list

val act :
  Util.Rng.t -> t -> obs:float array -> mask:bool array -> int * float * float
(** (menu index, log-probability, value). *)

val act_batch :
  Util.Rng.t array ->
  t ->
  obs:float array array ->
  masks:bool array array ->
  (int * float * float) array
(** Batched, tape-free {!act}: one forward pass for a slab of episodes,
    row [i] sampling from [rngs.(i)] only — bit-equal to per-row {!act}
    sampling, independent of batch composition. *)

val act_greedy : t -> obs:float array -> mask:bool array -> int

val ppo_policy : t -> sample Ppo.policy
