(** Typed environment errors.

    The hot path used to panic with [invalid_arg] on misuse and to
    swallow transform-layer messages; these constructors carry the same
    conditions as data so the training loop (and its episode traces)
    can observe and react to them. *)

type backend_failure = {
  op_name : string;  (** op whose measurement failed *)
  detail : string;  (** what the last failure was *)
  retries : int;  (** retries spent before degrading *)
}

type t =
  | Invalid_action of string
      (** the transformation was rejected by the IR layer; the payload
          is the transform layer's reason (a failing compilation in the
          paper's pipeline) *)
  | Episode_over  (** stepped after the episode terminated *)
  | No_episode  (** accessed episode state before any [reset] *)
  | Backend_failure of backend_failure
      (** the measurement backend failed; the result was degraded to
          the cost-model estimate *)

exception Error of t
(** Raised only by accessors that cannot return a [step_result] (for
    example [Env.state] before a reset). [Env.step] never raises —
    errors surface in the [step_result]. *)

val to_string : t -> string
