(** Crash-recoverable training state.

    A checkpoint is three sibling files derived from one path prefix:
    [<path>.meta] (iteration counter, RNG streams, accounting),
    [<path>.params] (policy weights, {!Serialize} format) and
    [<path>.optim] (Adam moments and step counter). Each file is
    written atomically (temp file + rename), so a kill at any moment
    leaves either the previous checkpoint or the new one — never a
    torn one.

    Restoring everything in [meta] makes a resumed run bit-identical
    to an uninterrupted one: the trainer RNG drives op selection,
    action sampling and minibatch shuffling; the noise and fault
    streams drive the measurement backend; the accounting fields
    restore the cumulative statistics. *)

type meta = {
  iteration : int;  (** completed training iterations *)
  rng_state : int64;  (** trainer update rng (PPO minibatch shuffling) *)
  episodes : int;
      (** global episode counter — per-episode rng streams are derived
          from it, so it must survive a resume *)
  best_speedup : float;
  measurement_seconds : float;  (** cumulative simulated measuring time *)
  explored : int;  (** evaluator's schedules-explored counter *)
  degraded : int;  (** cumulative degraded measurements *)
  noise_state : int64;  (** evaluator jitter stream *)
  fault_state : (int64 * int) option;  (** fault injector stream, if any *)
}

val save :
  path:string ->
  meta ->
  params:Autodiff.Param.t list ->
  optimizer:Optim.t ->
  unit
(** Write all three files atomically. Raises [Sys_error] on IO failure. *)

val exists : path:string -> bool
(** Whether [<path>.meta] exists. *)

val load_meta : path:string -> (meta, string) result
(** Read and validate only the metadata. *)

val restore :
  path:string ->
  params:Autodiff.Param.t list ->
  optimizer:Optim.t ->
  (meta, string) result
(** Load metadata, then restore weights and optimizer state in place
    (names and shapes validated). Nothing is modified on error. *)
