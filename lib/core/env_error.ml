type backend_failure = { op_name : string; detail : string; retries : int }

type t =
  | Invalid_action of string
  | Episode_over
  | No_episode
  | Backend_failure of backend_failure

exception Error of t

let to_string = function
  | Invalid_action msg -> "invalid action: " ^ msg
  | Episode_over -> "episode already over"
  | No_episode -> "no episode in progress (call reset)"
  | Backend_failure { op_name; detail; retries } ->
      Printf.sprintf "backend failure on %s after %d retries: %s" op_name
        retries detail

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Env_error.Error: " ^ to_string e)
    | _ -> None)
