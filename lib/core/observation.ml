let log2 x = log x /. log 2.0

let check_bounds (cfg : Env_config.t) (state : Sched_state.t) =
  let op = state.Sched_state.op in
  let n = Linalg.n_loops op in
  if n > cfg.Env_config.n_max then
    invalid_arg
      (Printf.sprintf "Observation: op has %d loops, config allows %d" n
         cfg.Env_config.n_max);
  if Array.length op.Linalg.inputs > cfg.Env_config.l_max then
    invalid_arg "Observation: too many input operands";
  Array.iter
    (fun (o : Linalg.operand) ->
      if Array.length o.Linalg.shape > cfg.Env_config.d_max then
        invalid_arg "Observation: operand rank exceeds d_max")
    op.Linalg.inputs;
  if Array.length op.Linalg.output.Linalg.shape > cfg.Env_config.d_max then
    invalid_arg "Observation: output rank exceeds d_max"

(* The op's iteration dims in the current loop order. *)
let point_origins (state : Sched_state.t) =
  Array.map
    (fun (l : Loop_nest.loop) -> l.Loop_nest.origin)
    (Loop_transforms.point_band state.Sched_state.nest)

(* Per-loop stats come from the shared helpers in Nest_stats — the
   surrogate feature extractor reads the same ones, so the two stay
   bit-identical. *)
let loop_info (cfg : Env_config.t) (state : Sched_state.t) =
  Nest_stats.trip_features ~n_max:cfg.Env_config.n_max state

let access_matrix (cfg : Env_config.t) (state : Sched_state.t)
    (operand : Linalg.operand) =
  let n = cfg.Env_config.n_max in
  let d = cfg.Env_config.d_max in
  let origins = point_origins state in
  let out = Array.make (d * (n + 1)) 0.0 in
  Array.iteri
    (fun row (e : Affine.expr) ->
      if row < d then begin
        Array.iteri
          (fun col origin ->
            if col < n then
              out.((row * (n + 1)) + col) <-
                float_of_int e.Affine.coeffs.(origin) /. 4.0)
          origins;
        out.((row * (n + 1)) + n) <- float_of_int e.Affine.const /. 4.0
      end)
    operand.Linalg.map.Affine.exprs;
  out

let history (cfg : Env_config.t) (state : Sched_state.t) =
  let n = cfg.Env_config.n_max in
  let tau = cfg.Env_config.tau in
  (* out.(l).(k).(s) flattened as ((l * 3) + k) * tau + s *)
  let out = Array.make (n * 3 * tau) 0.0 in
  let set l k s v =
    if l < n && s < tau then out.((((l * 3) + k) * tau) + s) <- v
  in
  let norm_size size = if size <= 0 then 0.0 else log2 (float_of_int size) /. 8.0 in
  List.iteri
    (fun s (tr : Schedule.transformation) ->
      match tr with
      | Schedule.Tile sizes ->
          Array.iteri (fun l size -> set l 0 s (norm_size size)) sizes
      | Schedule.Parallelize sizes ->
          Array.iteri (fun l size -> set l 1 s (norm_size size)) sizes
      | Schedule.Swap i -> set i 2 s (float_of_int (i + 1) /. float_of_int n)
      | Schedule.Interchange perm ->
          Array.iteri
            (fun l p -> set l 2 s (float_of_int (p + 1) /. float_of_int n))
            perm
      | Schedule.Im2col | Schedule.Vectorize | Schedule.Unroll _ -> ())
    state.Sched_state.applied;
  out

(* Per-level footprint and reuse-distance features, aligned to the
   point band like the other per-loop blocks: slot j is the data
   footprint of one execution of the subtree under point loop j, slot
   n_max + j the reuse distance carried by that loop. Log-scaled the
   same way as trip counts. *)
let footprint_feats (cfg : Env_config.t) (state : Sched_state.t) =
  Nest_stats.band_footprint_features ~n_max:cfg.Env_config.n_max
    state.Sched_state.nest

let math_counts (state : Sched_state.t) =
  Array.map
    (fun c -> float_of_int c /. 4.0)
    (Linalg.math_op_counts state.Sched_state.op)

let extract (cfg : Env_config.t) (state : Sched_state.t) =
  check_bounds cfg state;
  let op = state.Sched_state.op in
  let f = cfg.Env_config.features in
  let zeros n = Array.make n 0.0 in
  let gate enabled block size =
    if enabled then block () else zeros size
  in
  let matrix_size = cfg.Env_config.d_max * (cfg.Env_config.n_max + 1) in
  let loads =
    List.init cfg.Env_config.l_max (fun i ->
        if i < Array.length op.Linalg.inputs then
          gate f.Env_config.use_access_matrices
            (fun () -> access_matrix cfg state op.Linalg.inputs.(i))
            matrix_size
        else zeros matrix_size)
  in
  Array.concat
    ([ gate f.Env_config.use_loop_info (fun () -> loop_info cfg state)
         cfg.Env_config.n_max ]
    @ loads
    @ [
        gate f.Env_config.use_access_matrices
          (fun () -> access_matrix cfg state op.Linalg.output)
          matrix_size;
        gate f.Env_config.use_math_counts (fun () -> math_counts state) 6;
        gate f.Env_config.use_history (fun () -> history cfg state)
          (cfg.Env_config.n_max * 3 * cfg.Env_config.tau);
      ]
    (* Unlike the gated blocks above, this one changes the observation
       LENGTH, not just its contents — absent entirely unless the
       config opted in (see Env_config.obs_dim). *)
    @ (if cfg.Env_config.footprint_features then [ footprint_feats cfg state ]
       else []))
