type sample = {
  s_obs : float array;
  s_action : Action_space.hierarchical;
  s_masks : Action_space.masks;
}

type t = {
  cfg : Env_config.t;
  backbone : Layers.mlp;
  t_head : Layers.mlp;
  tile_head : Layers.mlp;
  par_head : Layers.mlp;
  swap_head : Layers.mlp;
  value_net : Layers.mlp;
}

let create ?(hidden = 512) ?(backbone_layers = 4) rng (cfg : Env_config.t) =
  let obs_dim = Env_config.obs_dim cfg in
  let n = cfg.Env_config.n_max in
  let m = Env_config.n_tile_choices cfg in
  let backbone_dims =
    obs_dim :: List.init backbone_layers (fun _ -> hidden)
  in
  {
    cfg;
    backbone = Layers.mlp rng ~dims:backbone_dims "backbone";
    t_head =
      Layers.mlp rng ~dims:[ hidden; hidden; Env_config.n_transformations ]
        "transform_head";
    tile_head = Layers.mlp rng ~dims:[ hidden; hidden; n * m ] "tiling_head";
    par_head = Layers.mlp rng ~dims:[ hidden; hidden; n * m ] "parallel_head";
    swap_head = Layers.mlp rng ~dims:[ hidden; hidden; n ] "interchange_head";
    value_net =
      Layers.mlp rng
        ~dims:(obs_dim :: List.init backbone_layers (fun _ -> hidden) @ [ 1 ])
        "value_net";
  }

let params t =
  Layers.mlp_params t.backbone
  @ Layers.mlp_params t.t_head
  @ Layers.mlp_params t.tile_head
  @ Layers.mlp_params t.par_head
  @ Layers.mlp_params t.swap_head
  @ Layers.mlp_params t.value_net

let param_count t = Layers.param_count (params t)

type heads = {
  h_t : Autodiff.node;  (* [B; 5] *)
  h_tile : Autodiff.node;  (* [B; n*m] *)
  h_par : Autodiff.node;
  h_swap : Autodiff.node;  (* [B; n] *)
  h_value : Autodiff.node;  (* [B; 1] *)
}

let forward tape t obs_tensor =
  let obs = Autodiff.const tape obs_tensor in
  let feat = Autodiff.relu tape (Layers.forward_mlp tape t.backbone obs) in
  {
    h_t = Layers.forward_mlp tape t.t_head feat;
    h_tile = Layers.forward_mlp tape t.tile_head feat;
    h_par = Layers.forward_mlp tape t.par_head feat;
    h_swap = Layers.forward_mlp tape t.swap_head feat;
    h_value = Layers.forward_mlp tape t.value_net obs;
  }

(* A mask row that is safe to feed to log-softmax even when the branch is
   not taken: force index 0 on when everything is masked. *)
let safe_row row =
  if Array.exists (fun b -> b) row then row
  else begin
    let r = Array.copy row in
    r.(0) <- true;
    r
  end

let obs_tensor_of_rows ?ws rows =
  let b = Array.length rows in
  let d = Array.length rows.(0) in
  let t =
    match ws with
    | Some ws -> Tensor.Workspace.get ws [| b; d |]
    | None -> Tensor.zeros [| b; d |]
  in
  for i = 0 to b - 1 do
    let row = rows.(i) in
    if Array.length row <> d then
      invalid_arg "Policy.obs_tensor_of_rows: ragged observation rows";
    let base = i * d in
    for j = 0 to d - 1 do
      Tensor.unsafe_set t (base + j) (Array.unsafe_get row j)
    done
  done;
  t

(* Per-loop log-prob/entropy of a tiling-style head. *)
let tiling_branch tape (cfg : Env_config.t) head_node ~tile_masks ~choices =
  let n = cfg.Env_config.n_max in
  let m = Env_config.n_tile_choices cfg in
  let b = Array.length choices in
  let total_lp = ref None in
  let total_ent = ref None in
  for l = 0 to n - 1 do
    let logits = Autodiff.slice_cols tape head_node ~lo:(l * m) ~hi:((l + 1) * m) in
    let mask = Array.init b (fun i -> safe_row tile_masks.(i).(l)) in
    let lp = Distributions.masked_log_probs tape logits ~mask in
    let acts = Array.init b (fun i -> choices.(i).(l)) in
    let chosen = Distributions.log_prob_of tape lp acts in
    let ent = Distributions.entropy tape lp in
    total_lp :=
      Some
        (match !total_lp with
        | None -> chosen
        | Some acc -> Autodiff.add tape acc chosen);
    total_ent :=
      Some
        (match !total_ent with
        | None -> ent
        | Some acc -> Autodiff.add tape acc ent)
  done;
  (Option.get !total_lp, Option.get !total_ent)

let evaluate t tape (samples : sample array) =
  let cfg = t.cfg in
  let b = Array.length samples in
  let obs =
    obs_tensor_of_rows
      ?ws:(Autodiff.Tape.ws tape)
      (Array.map (fun s -> s.s_obs) samples)
  in
  let heads = forward tape t obs in
  (* transformation head *)
  let t_mask = Array.map (fun s -> safe_row s.s_masks.Action_space.t_mask) samples in
  let t_lp = Distributions.masked_log_probs tape heads.h_t ~mask:t_mask in
  let t_actions = Array.map (fun s -> s.s_action.Action_space.transform) samples in
  let logp_t = Distributions.log_prob_of tape t_lp t_actions in
  let ent_t = Distributions.entropy tape t_lp in
  (* branch heads *)
  let tile_masks = Array.map (fun s -> s.s_masks.Action_space.tile_mask) samples in
  let par_masks = Array.map (fun s -> s.s_masks.Action_space.par_mask) samples in
  let choices = Array.map (fun s -> s.s_action.Action_space.tile_choices) samples in
  let tile_lp, tile_ent =
    tiling_branch tape cfg heads.h_tile ~tile_masks ~choices
  in
  let par_lp, par_ent =
    tiling_branch tape cfg heads.h_par ~tile_masks:par_masks ~choices
  in
  let swap_mask = Array.map (fun s -> safe_row s.s_masks.Action_space.swap_mask) samples in
  let swap_lp_all = Distributions.masked_log_probs tape heads.h_swap ~mask:swap_mask in
  let swap_actions =
    Array.map
      (fun s ->
        let c = s.s_action.Action_space.swap_choice in
        if c >= 0 && c < cfg.Env_config.n_max then c else 0)
      samples
  in
  let swap_lp = Distributions.log_prob_of tape swap_lp_all swap_actions in
  let swap_ent = Distributions.entropy tape swap_lp_all in
  (* combine through branch indicators *)
  let indicator k =
    Autodiff.const tape
      (Tensor.init [| b |] (fun i ->
           if samples.(i).s_action.Action_space.transform = k then 1.0 else 0.0))
  in
  let ind_tile = indicator Action_space.t_tile in
  let ind_par = indicator Action_space.t_parallelize in
  let ind_swap = indicator Action_space.t_interchange in
  let combine base tile par swap =
    let x = Autodiff.add tape base (Autodiff.mul tape ind_tile tile) in
    let x = Autodiff.add tape x (Autodiff.mul tape ind_par par) in
    Autodiff.add tape x (Autodiff.mul tape ind_swap swap)
  in
  let log_prob = combine logp_t tile_lp par_lp swap_lp in
  let entropy = combine ent_t tile_ent par_ent swap_ent in
  let value = Autodiff.gather_cols tape heads.h_value (Array.make b 0) in
  { Ppo.log_prob; entropy; value }

let ppo_policy t =
  { Ppo.evaluate = (fun tape samples -> evaluate t tape samples); params = params t }

let save t path = Serialize.save_params path (params t)
let load t path = Serialize.load_params path (params t)

(* -- sampling -- *)

(* -- batched, tape-free sampling --

   The parallel rollout engine advances a slab of episodes in lockstep
   and asks for all their next actions at once. Stacking the
   observations into one matrix amortizes the forward pass; because
   every kernel on this path is row-independent with per-row
   accumulation order identical to the single-row case, and each row
   draws only from its own rng, [act_batch] on a batch is bit-equal to
   [act] on each row separately.

   All intermediates live in a per-domain workspace (reset at the top of
   each batched call, every escaping result extracted as a scalar before
   return), so a steady-state rollout allocates almost nothing per
   step. Branch heads are lazy: their forward passes run only if some
   row took the branch — in particular the greedy serving path never
   pays for the value net. Laziness is invisible to results because an
   unforced head is an unread head. *)

let ws_key = Domain.DLS.new_key Tensor.Workspace.create

type head_values = {
  v_t : Tensor.t;
  v_tile : Tensor.t Lazy.t;
  v_par : Tensor.t Lazy.t;
  v_swap : Tensor.t Lazy.t;
  v_value : Tensor.t Lazy.t;
}

let forward_values ?ws t obs_tensor =
  let out = Layers.forward_batch ?ws t.backbone obs_tensor in
  (* The backbone always has at least one layer, so [out] is a fresh (or
     workspace) activation, never the observation matrix itself — the
     in-place ReLU cannot clobber caller data. *)
  assert (t.backbone.Layers.layers <> []);
  let feat = Tensor.relu_into ~dst:out out in
  {
    v_t = Layers.forward_batch ?ws t.t_head feat;
    v_tile = lazy (Layers.forward_batch ?ws t.tile_head feat);
    v_par = lazy (Layers.forward_batch ?ws t.par_head feat);
    v_swap = lazy (Layers.forward_batch ?ws t.swap_head feat);
    v_value = lazy (Layers.forward_batch ?ws t.value_net obs_tensor);
  }

let act_batch ?(temperature = 1.0) rngs t ~obs ~masks =
  let cfg = t.cfg in
  let n = cfg.Env_config.n_max in
  let m = Env_config.n_tile_choices cfg in
  let b = Array.length obs in
  if Array.length rngs <> b || Array.length masks <> b then
    invalid_arg "Policy.act_batch: obs/masks/rngs length mismatch";
  let draw rng lp row =
    if temperature = 1.0 then Distributions.sample rng lp row
    else Distributions.sample_tempered rng lp row ~temperature
  in
  let ws = Domain.DLS.get ws_key in
  Tensor.Workspace.reset ws;
  let heads = forward_values ~ws t (obs_tensor_of_rows ~ws obs) in
  let t_mask = Array.map (fun ms -> safe_row ms.Action_space.t_mask) masks in
  let t_lp = Distributions.masked_log_probs_values ~ws heads.v_t ~mask:t_mask in
  let tis = Array.init b (fun i -> draw rngs.(i) t_lp i) in
  let logps = Array.init b (fun i -> Tensor.get2 t_lp i tis.(i)) in
  let tile_choices = Array.init b (fun _ -> Array.make n 0) in
  let swap_choices = Array.make b 0 in
  (* A branch head's forward runs only if some row took the branch, and
     row [i] draws from its rng only when row [i] did — so each row's
     rng consumption matches [act] exactly. *)
  let branch head pick_mask wanted =
    if Array.exists (fun ti -> ti = wanted) tis then begin
      let head = Lazy.force head in
      for l = 0 to n - 1 do
        let logits =
          Tensor.slice_cols_into
            ~dst:(Tensor.Workspace.get ws [| b; m |])
            head ~lo:(l * m) ~hi:((l + 1) * m)
        in
        let mask = Array.init b (fun i -> safe_row (pick_mask masks.(i)).(l)) in
        let lp = Distributions.masked_log_probs_values ~ws logits ~mask in
        for i = 0 to b - 1 do
          if tis.(i) = wanted then begin
            let c = draw rngs.(i) lp i in
            tile_choices.(i).(l) <- c;
            logps.(i) <- logps.(i) +. Tensor.get2 lp i c
          end
        done
      done
    end
  in
  branch heads.v_tile (fun ms -> ms.Action_space.tile_mask) Action_space.t_tile;
  branch heads.v_par (fun ms -> ms.Action_space.par_mask)
    Action_space.t_parallelize;
  if Array.exists (fun ti -> ti = Action_space.t_interchange) tis then begin
    let swap_mask = Array.map (fun ms -> safe_row ms.Action_space.swap_mask) masks in
    let swap_lp =
      Distributions.masked_log_probs_values ~ws (Lazy.force heads.v_swap)
        ~mask:swap_mask
    in
    for i = 0 to b - 1 do
      if tis.(i) = Action_space.t_interchange then begin
        let c = draw rngs.(i) swap_lp i in
        swap_choices.(i) <- c;
        logps.(i) <- logps.(i) +. Tensor.get2 swap_lp i c
      end
    done
  end;
  let values = Lazy.force heads.v_value in
  Array.init b (fun i ->
      ( {
          Action_space.transform = tis.(i);
          tile_choices = tile_choices.(i);
          swap_choice = swap_choices.(i);
        },
        logps.(i),
        Tensor.get2 values i 0 ))

let act ?temperature rng t ~obs ~masks =
  (* Singleton [act_batch]: same draws from [rng], same log-probability
     and value — the batched path is bit-equal to a per-row evaluation
     by the contract above, so collapsing the singleton onto it changes
     nothing except dropping the per-step tape. *)
  (act_batch ?temperature [| rng |] t ~obs:[| obs |] ~masks:[| masks |]).(0)

(* Batched greedy decoding for the serving path: one forward pass for a
   slab of concurrently advancing request episodes, argmax per row. The
   argmax reads the same masked log-softmax values as [act_greedy]'s
   tape, and every kernel is row-independent, so each row's action is
   identical to a singleton [act_greedy] call — which is what makes
   served schedules independent of how requests were batched. *)
let act_greedy_batch t ~obs ~masks =
  let cfg = t.cfg in
  let n = cfg.Env_config.n_max in
  let m = Env_config.n_tile_choices cfg in
  let b = Array.length obs in
  if Array.length masks <> b then
    invalid_arg "Policy.act_greedy_batch: obs/masks length mismatch";
  let ws = Domain.DLS.get ws_key in
  Tensor.Workspace.reset ws;
  (* The value net is lazy and never forced here: greedy serving skips
     that whole forward pass. *)
  let heads = forward_values ~ws t (obs_tensor_of_rows ~ws obs) in
  let t_mask = Array.map (fun ms -> safe_row ms.Action_space.t_mask) masks in
  let t_lp = Distributions.masked_log_probs_values ~ws heads.v_t ~mask:t_mask in
  let tis = Array.init b (fun i -> Distributions.argmax t_lp i) in
  let tile_choices = Array.init b (fun _ -> Array.make n 0) in
  let swap_choices = Array.make b 0 in
  let branch head pick_mask wanted =
    if Array.exists (fun ti -> ti = wanted) tis then begin
      let head = Lazy.force head in
      for l = 0 to n - 1 do
        let logits =
          Tensor.slice_cols_into
            ~dst:(Tensor.Workspace.get ws [| b; m |])
            head ~lo:(l * m) ~hi:((l + 1) * m)
        in
        let mask = Array.init b (fun i -> safe_row (pick_mask masks.(i)).(l)) in
        let lp = Distributions.masked_log_probs_values ~ws logits ~mask in
        for i = 0 to b - 1 do
          if tis.(i) = wanted then tile_choices.(i).(l) <- Distributions.argmax lp i
        done
      done
    end
  in
  branch heads.v_tile (fun ms -> ms.Action_space.tile_mask) Action_space.t_tile;
  branch heads.v_par (fun ms -> ms.Action_space.par_mask)
    Action_space.t_parallelize;
  if Array.exists (fun ti -> ti = Action_space.t_interchange) tis then begin
    let swap_mask = Array.map (fun ms -> safe_row ms.Action_space.swap_mask) masks in
    let swap_lp =
      Distributions.masked_log_probs_values ~ws (Lazy.force heads.v_swap)
        ~mask:swap_mask
    in
    for i = 0 to b - 1 do
      if tis.(i) = Action_space.t_interchange then
        swap_choices.(i) <- Distributions.argmax swap_lp i
    done
  end;
  Array.init b (fun i ->
      {
        Action_space.transform = tis.(i);
        tile_choices = tile_choices.(i);
        swap_choice = swap_choices.(i);
      })

let act_greedy t ~obs ~masks =
  (act_greedy_batch t ~obs:[| obs |] ~masks:[| masks |]).(0)
