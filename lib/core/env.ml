type t = {
  cfg : Env_config.t;
  ev : Evaluator.t;
  robust : Robust_evaluator.t option;
  mutable sched : Sched_state.t option;
  mutable steps : int;
  mutable finished : bool;  (* a terminal step_result has been returned *)
  mutable prev_seconds : float;  (* last measured time (Immediate mode) *)
  mutable last_obs : float array;
  mutable measurement_seconds : float;
  mutable episode_measurement_seconds : float;
  mutable degraded_total : int;
  mutable episode_degraded : int;
}

type step_result = {
  obs : float array;
  reward : float;
  terminal : bool;
  timed_out : bool;
  noop : bool;
  invalid : bool;
  degraded : bool;
  error : Env_error.t option;
}

let create ?evaluator ?robust cfg =
  (match Env_config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Env.create: " ^ msg));
  (* The verifier/sanitizer switches are process-global (they must
     cover forked worker envs and the shared evaluator path), so a
     config asking for them turns them on for the process; a config
     with them off leaves whatever MLIR_RL_VERIFY / MLIR_RL_SANITIZE
     established untouched. *)
  if cfg.Env_config.verify_transforms then Verifier.set_enabled true;
  if cfg.Env_config.sanitize then Sanitizer.set_enabled true;
  let ev =
    match (robust, evaluator) with
    | Some r, _ -> Robust_evaluator.evaluator r
    | None, Some e -> e
    | None, None -> Evaluator.create ~machine:cfg.Env_config.machine ()
  in
  {
    cfg;
    ev;
    robust;
    sched = None;
    steps = 0;
    finished = false;
    prev_seconds = 0.0;
    last_obs = [||];
    measurement_seconds = 0.0;
    episode_measurement_seconds = 0.0;
    degraded_total = 0;
    episode_degraded = 0;
  }

let fork t =
  (* Worker-local environment for parallel episode collection: forked
     measurement stack (shared base cache, per-fork noise/fault streams
     and counters), fresh episode state and zeroed accounting. The
     trainer merges the per-episode accounting of consumed episodes back
     into the primary environment. *)
  let robust = Option.map Robust_evaluator.fork t.robust in
  let ev =
    match robust with
    | Some r -> Robust_evaluator.evaluator r
    | None -> Evaluator.fork t.ev
  in
  {
    cfg = t.cfg;
    ev;
    robust;
    sched = None;
    steps = 0;
    finished = false;
    prev_seconds = 0.0;
    last_obs = [||];
    measurement_seconds = 0.0;
    episode_measurement_seconds = 0.0;
    degraded_total = 0;
    episode_degraded = 0;
  }

let config t = t.cfg
let evaluator t = t.ev
let robust t = t.robust

let state t =
  match t.sched with
  | Some s -> s
  | None -> raise (Env_error.Error Env_error.No_episode)

let state_opt t = t.sched

let reset t op =
  let s = Sched_state.init op in
  t.sched <- Some s;
  t.steps <- 0;
  t.finished <- false;
  t.prev_seconds <- Evaluator.base_seconds t.ev op;
  t.episode_measurement_seconds <- 0.0;
  t.episode_degraded <- 0;
  let obs = Observation.extract t.cfg s in
  t.last_obs <- obs;
  obs

let masks t = Action_space.masks t.cfg (state t)
let step_count t = t.steps

let charge_measurement t seconds =
  let total = t.cfg.Env_config.compile_seconds +. seconds in
  t.measurement_seconds <- t.measurement_seconds +. total;
  t.episode_measurement_seconds <- t.episode_measurement_seconds +. total

(* Price a state. Returns the (possibly capped) measurement plus the
   typed error when the backend had to degrade to the cost model. *)
let measure t s =
  match t.robust with
  | None ->
      let r = Evaluator.measure t.ev s in
      (match r with
      | `Seconds sec -> charge_measurement t sec
      | `Timeout capped -> charge_measurement t capped);
      (r, None)
  | Some rob ->
      let m = Robust_evaluator.measure rob s in
      charge_measurement t m.Robust_evaluator.charged;
      let error =
        match m.Robust_evaluator.quality with
        | Robust_evaluator.Exact -> None
        | Robust_evaluator.Degraded detail ->
            t.degraded_total <- t.degraded_total + 1;
            t.episode_degraded <- t.episode_degraded + 1;
            Some
              (Env_error.Backend_failure
                 {
                   Env_error.op_name = s.Sched_state.original.Linalg.op_name;
                   detail;
                   retries = m.Robust_evaluator.retries;
                 })
      in
      let r =
        if m.Robust_evaluator.timed_out then `Timeout m.Robust_evaluator.seconds
        else `Seconds m.Robust_evaluator.seconds
      in
      (r, error)

let current_speedup t =
  match t.sched with
  | None -> 1.0
  | Some s ->
      let base = Evaluator.base_seconds t.ev s.Sched_state.original in
      let now = Evaluator.state_seconds t.ev s in
      base /. now

let schedule t = (state t).Sched_state.applied

let measurement_seconds t = t.measurement_seconds
let episode_measurement_seconds t = t.episode_measurement_seconds
let degraded_measurements t = t.degraded_total
let episode_degraded t = t.episode_degraded

let restore_accounting t ~measurement_seconds ~degraded =
  t.measurement_seconds <- measurement_seconds;
  t.degraded_total <- degraded

let render t =
  match t.sched with
  | None -> "<no episode: call reset>"
  | Some s ->
      let base = Evaluator.base_seconds t.ev s.Sched_state.original in
      let now = Evaluator.state_seconds t.ev s in
      Format.asprintf
        "@[<v>op       : %s (%s)@,step     : %d/%d@,schedule : %s@,time     : %.6f s (base %.6f s)@,speedup  : %.2fx@,flags    : parallelized=%b vectorized=%b@]"
        s.Sched_state.original.Linalg.op_name
        (Linalg.kind_name s.Sched_state.original)
        t.steps t.cfg.Env_config.tau
        (match s.Sched_state.applied with
        | [] -> "<empty>"
        | applied -> Schedule.to_string applied)
        now base (base /. now) s.Sched_state.parallelized
        s.Sched_state.vectorized

let finish_result ?(degraded = false) ?error t s ~reward ~terminal ~timed_out
    ~noop ~invalid =
  let obs = Observation.extract t.cfg s in
  t.last_obs <- obs;
  if terminal then t.finished <- true;
  { obs; reward; terminal; timed_out; noop; invalid; degraded; error }

(* Stepping a finished episode is a typed error, not a panic: the result
   echoes the last observation and stays terminal so a driver that
   ignores [error] still cannot loop forever. *)
let episode_over_result t =
  {
    obs = t.last_obs;
    reward = 0.0;
    terminal = true;
    timed_out = false;
    noop = false;
    invalid = false;
    degraded = false;
    error = Some Env_error.Episode_over;
  }

let step t (tr : Schedule.transformation option) =
  match t.sched with
  | None -> raise (Env_error.Error Env_error.No_episode)
  | Some s when t.finished || t.steps >= t.cfg.Env_config.tau ->
      ignore s;
      episode_over_result t
  | Some s -> (
      t.steps <- t.steps + 1;
      let out_of_steps = t.steps >= t.cfg.Env_config.tau in
      let immediate = t.cfg.Env_config.reward_mode = Env_config.Immediate in
      let base = Evaluator.base_seconds t.ev s.Sched_state.original in
      let conclude s' ~ended =
        (* Measure when the reward mode demands it. *)
        t.sched <- Some s';
        if immediate then begin
          match measure t s' with
          | `Timeout _, error ->
              finish_result t s' ~reward:t.cfg.Env_config.timeout_penalty
                ~terminal:true ~timed_out:true ~noop:false ~invalid:false
                ~degraded:(error <> None) ?error
          | `Seconds sec, error ->
              let reward = log (t.prev_seconds /. sec) in
              t.prev_seconds <- sec;
              finish_result t s' ~reward ~terminal:ended ~timed_out:false
                ~noop:false ~invalid:false ~degraded:(error <> None) ?error
        end
        else if ended then begin
          match measure t s' with
          | `Timeout _, error ->
              finish_result t s' ~reward:t.cfg.Env_config.timeout_penalty
                ~terminal:true ~timed_out:true ~noop:false ~invalid:false
                ~degraded:(error <> None) ?error
          | `Seconds sec, error ->
              finish_result t s' ~reward:(log (base /. sec)) ~terminal:true
                ~timed_out:false ~noop:false ~invalid:false
                ~degraded:(error <> None) ?error
        end
        else
          finish_result t s' ~reward:0.0 ~terminal:false ~timed_out:false
            ~noop:false ~invalid:false
      in
      match tr with
      | None ->
          (* Explicit no-op: consumes a step; at the last step the schedule
             so far is still measured under Final reward. *)
          if out_of_steps then conclude s ~ended:true
          else
            finish_result t s ~reward:0.0 ~terminal:false ~timed_out:false
              ~noop:true ~invalid:false
      | Some tr -> (
          match Sched_state.apply s tr with
          | Error msg ->
              (* Mirrors a failing compilation in the paper's pipeline;
                 the transform layer's reason is preserved. *)
              finish_result t s ~reward:t.cfg.Env_config.timeout_penalty
                ~terminal:true ~timed_out:false ~noop:false ~invalid:true
                ~error:(Env_error.Invalid_action msg)
          | Ok s' ->
              let ended = Sched_state.is_done s' || out_of_steps in
              conclude s' ~ended))

let step_hierarchical t action =
  let s = state t in
  step t (Action_space.to_transformation t.cfg s action)
