type t = {
  cfg : Env_config.t;
  ev : Evaluator.t;
  mutable sched : Sched_state.t option;
  mutable steps : int;
  mutable prev_seconds : float;  (* last measured time (Immediate mode) *)
  mutable measurement_seconds : float;
}

type step_result = {
  obs : float array;
  reward : float;
  terminal : bool;
  timed_out : bool;
  noop : bool;
  invalid : bool;
}

let create ?evaluator cfg =
  (match Env_config.validate cfg with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Env.create: " ^ msg));
  let ev =
    match evaluator with
    | Some e -> e
    | None -> Evaluator.create ~machine:cfg.Env_config.machine ()
  in
  { cfg; ev; sched = None; steps = 0; prev_seconds = 0.0; measurement_seconds = 0.0 }

let config t = t.cfg
let evaluator t = t.ev

let state t =
  match t.sched with
  | Some s -> s
  | None -> invalid_arg "Env: no episode in progress (call reset)"

let reset t op =
  let s = Sched_state.init op in
  t.sched <- Some s;
  t.steps <- 0;
  t.prev_seconds <- Evaluator.base_seconds t.ev op;
  Observation.extract t.cfg s

let masks t = Action_space.masks t.cfg (state t)
let step_count t = t.steps

let charge_measurement t seconds =
  t.measurement_seconds <-
    t.measurement_seconds +. t.cfg.Env_config.compile_seconds +. seconds

let measure t s =
  let r = Evaluator.measure t.ev s in
  (match r with
  | `Seconds sec -> charge_measurement t sec
  | `Timeout capped -> charge_measurement t capped);
  r

let current_speedup t =
  match t.sched with
  | None -> 1.0
  | Some s ->
      let base = Evaluator.base_seconds t.ev s.Sched_state.original in
      let now = Evaluator.state_seconds t.ev s in
      base /. now

let schedule t = (state t).Sched_state.applied

let measurement_seconds t = t.measurement_seconds

let render t =
  match t.sched with
  | None -> "<no episode: call reset>"
  | Some s ->
      let base = Evaluator.base_seconds t.ev s.Sched_state.original in
      let now = Evaluator.state_seconds t.ev s in
      Format.asprintf
        "@[<v>op       : %s (%s)@,step     : %d/%d@,schedule : %s@,time     : %.6f s (base %.6f s)@,speedup  : %.2fx@,flags    : parallelized=%b vectorized=%b@]"
        s.Sched_state.original.Linalg.op_name
        (Linalg.kind_name s.Sched_state.original)
        t.steps t.cfg.Env_config.tau
        (match s.Sched_state.applied with
        | [] -> "<empty>"
        | applied -> Schedule.to_string applied)
        now base (base /. now) s.Sched_state.parallelized
        s.Sched_state.vectorized

let finish_result t s ~reward ~terminal ~timed_out ~noop ~invalid =
  {
    obs = Observation.extract t.cfg s;
    reward;
    terminal;
    timed_out;
    noop;
    invalid;
  }

let step t (tr : Schedule.transformation option) =
  let s = state t in
  if t.steps >= t.cfg.Env_config.tau then
    invalid_arg "Env.step: episode already over (tau steps)";
  t.steps <- t.steps + 1;
  let out_of_steps = t.steps >= t.cfg.Env_config.tau in
  let immediate = t.cfg.Env_config.reward_mode = Env_config.Immediate in
  let base = Evaluator.base_seconds t.ev s.Sched_state.original in
  let conclude s' ~ended =
    (* Measure when the reward mode demands it. *)
    t.sched <- Some s';
    if immediate then begin
      match measure t s' with
      | `Timeout _ ->
          finish_result t s' ~reward:t.cfg.Env_config.timeout_penalty
            ~terminal:true ~timed_out:true ~noop:false ~invalid:false
      | `Seconds sec ->
          let reward = log (t.prev_seconds /. sec) in
          t.prev_seconds <- sec;
          finish_result t s' ~reward ~terminal:ended ~timed_out:false
            ~noop:false ~invalid:false
    end
    else if ended then begin
      match measure t s' with
      | `Timeout _ ->
          finish_result t s' ~reward:t.cfg.Env_config.timeout_penalty
            ~terminal:true ~timed_out:true ~noop:false ~invalid:false
      | `Seconds sec ->
          finish_result t s' ~reward:(log (base /. sec)) ~terminal:true
            ~timed_out:false ~noop:false ~invalid:false
    end
    else
      finish_result t s' ~reward:0.0 ~terminal:false ~timed_out:false
        ~noop:false ~invalid:false
  in
  match tr with
  | None ->
      (* Explicit no-op: consumes a step; at the last step the schedule
         so far is still measured under Final reward. *)
      if out_of_steps then conclude s ~ended:true
      else
        finish_result t s ~reward:0.0 ~terminal:false ~timed_out:false
          ~noop:true ~invalid:false
  | Some tr -> (
      match Sched_state.apply s tr with
      | Error _ ->
          (* Mirrors a failing compilation in the paper's pipeline. *)
          finish_result t s ~reward:t.cfg.Env_config.timeout_penalty
            ~terminal:true ~timed_out:false ~noop:false ~invalid:true
      | Ok s' ->
          let ended = Sched_state.is_done s' || out_of_steps in
          conclude s' ~ended)

let step_hierarchical t action =
  let s = state t in
  step t (Action_space.to_transformation t.cfg s action)
