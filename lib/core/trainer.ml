type config = {
  ppo : Ppo.config;
  iterations : int;
  seed : int;
  checkpoint_path : string option;
  checkpoint_every : int;
}

let default_config =
  {
    ppo = Ppo.default_config;
    iterations = 50;
    seed = 0;
    checkpoint_path = None;
    checkpoint_every = 10;
  }

type iteration_stats = {
  iteration : int;
  mean_episode_return : float;
  mean_final_speedup : float;
  best_speedup : float;
  ppo_stats : Ppo.stats;
  measurement_seconds : float;
  schedules_explored : int;
  degraded_measurements : int;
}

let checkpoint_meta env rng ~iteration ~best =
  {
    Checkpoint.iteration;
    rng_state = Util.Rng.state rng;
    best_speedup = best;
    measurement_seconds = Env.measurement_seconds env;
    explored = Evaluator.explored (Env.evaluator env);
    degraded = Env.degraded_measurements env;
    noise_state = Evaluator.noise_state (Env.evaluator env);
    fault_state =
      Option.bind (Env.robust env) (fun r ->
          Option.map Faults.state (Robust_evaluator.faults r));
  }

(* Generic collection/update loop: [collect_episode] plays one episode
   and returns its transitions plus (return, final speedup). Handles
   periodic checkpointing and resume when the config asks for them. *)
let run_loop ?callback ?(resume = false) config env ~params ~optimizer
    ~collect_episode ~update =
  let rng = Util.Rng.create (config.seed + 77) in
  let stats_acc = ref [] in
  let best = ref 0.0 in
  let start_iteration = ref 0 in
  (if resume then
     match config.checkpoint_path with
     | None ->
         invalid_arg "Trainer: resume requested without a checkpoint_path"
     | Some path when not (Checkpoint.exists ~path) ->
         (* Nothing saved yet: start from scratch (first run of a job
            that is always launched with --resume). *)
         ()
     | Some path -> (
         match Checkpoint.restore ~path ~params ~optimizer with
         | Error e -> invalid_arg ("Trainer: cannot resume: " ^ e)
         | Ok meta ->
             start_iteration := meta.Checkpoint.iteration;
             best := meta.Checkpoint.best_speedup;
             Util.Rng.set_state rng meta.Checkpoint.rng_state;
             Env.restore_accounting env
               ~measurement_seconds:meta.Checkpoint.measurement_seconds
               ~degraded:meta.Checkpoint.degraded;
             Evaluator.set_explored (Env.evaluator env)
               meta.Checkpoint.explored;
             Evaluator.set_noise_state (Env.evaluator env)
               meta.Checkpoint.noise_state;
             (match
                ( meta.Checkpoint.fault_state,
                  Option.bind (Env.robust env) Robust_evaluator.faults )
              with
             | Some st, Some f -> Faults.restore f st
             | _ -> ())));
  for iteration = !start_iteration + 1 to config.iterations do
    let transitions = ref [] in
    let returns = ref [] in
    let speedups = ref [] in
    let n_steps = ref 0 in
    while !n_steps < config.ppo.Ppo.batch_size do
      let episode, ep_return, final_speedup = collect_episode rng in
      transitions := episode :: !transitions;
      returns := ep_return :: !returns;
      speedups := Float.max 1e-9 final_speedup :: !speedups;
      n_steps := !n_steps + Array.length episode
    done;
    let batch = Array.concat (List.rev !transitions) in
    let ppo_stats = update batch ~rng in
    let mean_final_speedup = Util.Stats.geomean !speedups in
    best := Float.max !best (List.fold_left Float.max 0.0 !speedups);
    let st =
      {
        iteration;
        mean_episode_return = Util.Stats.mean !returns;
        mean_final_speedup;
        best_speedup = !best;
        ppo_stats;
        measurement_seconds = Env.measurement_seconds env;
        schedules_explored = Evaluator.explored (Env.evaluator env);
        degraded_measurements = Env.degraded_measurements env;
      }
    in
    (match config.checkpoint_path with
    | Some path
      when config.checkpoint_every > 0
           && (iteration mod config.checkpoint_every = 0
              || iteration = config.iterations) ->
        Checkpoint.save ~path
          (checkpoint_meta env rng ~iteration ~best:!best)
          ~params ~optimizer
    | _ -> ());
    (match callback with Some f -> f st | None -> ());
    stats_acc := st :: !stats_acc
  done;
  List.rev !stats_acc

let train ?callback ?resume config env policy ~ops =
  if Array.length ops = 0 then invalid_arg "Trainer.train: no training ops";
  let params = Policy.params policy in
  let optimizer = Optim.adam ~lr:config.ppo.Ppo.learning_rate params in
  let ppo_policy = Policy.ppo_policy policy in
  let collect_episode rng =
    let op = Util.Rng.choice rng ops in
    let obs = ref (Env.reset env op) in
    let steps = ref [] in
    let ep_return = ref 0.0 in
    let continue = ref true in
    while !continue do
      let masks = Env.masks env in
      let action, log_prob, value = Policy.act rng policy ~obs:!obs ~masks in
      let result = Env.step_hierarchical env action in
      ep_return := !ep_return +. result.Env.reward;
      steps :=
        {
          Ppo.sample =
            { Policy.s_obs = !obs; s_action = action; s_masks = masks };
          reward = result.Env.reward;
          value;
          log_prob;
          terminal = result.Env.terminal;
        }
        :: !steps;
      obs := result.Env.obs;
      if result.Env.terminal then continue := false
    done;
    (Array.of_list (List.rev !steps), !ep_return, Env.current_speedup env)
  in
  let update batch ~rng = Ppo.update config.ppo ppo_policy optimizer batch ~rng in
  run_loop ?callback ?resume config env ~params ~optimizer ~collect_episode
    ~update

let train_flat ?callback ?resume config env policy ~ops =
  if Array.length ops = 0 then invalid_arg "Trainer.train_flat: no training ops";
  let params = Flat_policy.params policy in
  let optimizer = Optim.adam ~lr:config.ppo.Ppo.learning_rate params in
  let ppo_policy = Flat_policy.ppo_policy policy in
  let menu = Flat_policy.menu policy in
  let collect_episode rng =
    let op = Util.Rng.choice rng ops in
    let obs = ref (Env.reset env op) in
    let steps = ref [] in
    let ep_return = ref 0.0 in
    let continue = ref true in
    while !continue do
      let cfg = Env.config env in
      let mask = Action_space.simple_mask cfg (Env.state env) menu in
      let choice, log_prob, value = Flat_policy.act rng policy ~obs:!obs ~mask in
      let ctx = Action_space.legality_of cfg (Env.state env) in
      let tr =
        Action_space.legalize ?ctx (Env.state env)
          menu.(choice).Action_space.transformation
      in
      let result = Env.step env tr in
      ep_return := !ep_return +. result.Env.reward;
      steps :=
        {
          Ppo.sample = { Flat_policy.f_obs = !obs; f_choice = choice; f_mask = mask };
          reward = result.Env.reward;
          value;
          log_prob;
          terminal = result.Env.terminal;
        }
        :: !steps;
      obs := result.Env.obs;
      if result.Env.terminal then continue := false
    done;
    (Array.of_list (List.rev !steps), !ep_return, Env.current_speedup env)
  in
  let update batch ~rng = Ppo.update config.ppo ppo_policy optimizer batch ~rng in
  run_loop ?callback ?resume config env ~params ~optimizer ~collect_episode
    ~update

let greedy_rollout env policy op =
  let obs = ref (Env.reset env op) in
  let continue = ref true in
  while !continue do
    let masks = Env.masks env in
    let action = Policy.act_greedy policy ~obs:!obs ~masks in
    let result = Env.step_hierarchical env action in
    obs := result.Env.obs;
    if result.Env.terminal then continue := false
  done;
  (Env.schedule env, Env.current_speedup env)

let sampled_best ?(temperature = 1.5) rng env policy op ~trials =
  let best_sched = ref [] in
  let best_speedup = ref 0.0 in
  for _ = 1 to trials do
    let obs = ref (Env.reset env op) in
    let continue = ref true in
    while !continue do
      let masks = Env.masks env in
      let action, _, _ = Policy.act ~temperature rng policy ~obs:!obs ~masks in
      let result = Env.step_hierarchical env action in
      obs := result.Env.obs;
      if result.Env.terminal then continue := false
    done;
    let sp = Env.current_speedup env in
    if sp > !best_speedup then begin
      best_speedup := sp;
      best_sched := Env.schedule env
    end
  done;
  (!best_sched, !best_speedup)
