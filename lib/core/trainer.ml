type config = {
  ppo : Ppo.config;
  iterations : int;
  seed : int;
  checkpoint_path : string option;
  checkpoint_every : int;
  jobs : int;
  inference_batch : int;
}

let default_config =
  {
    ppo = Ppo.default_config;
    iterations = 50;
    seed = 0;
    checkpoint_path = None;
    checkpoint_every = 10;
    jobs = 1;
    inference_batch = 8;
  }

type iteration_stats = {
  iteration : int;
  mean_episode_return : float;
  mean_final_speedup : float;
  best_speedup : float;
  ppo_stats : Ppo.stats;
  measurement_seconds : float;
  schedules_explored : int;
  degraded_measurements : int;
  episodes : int;
}

(* -- determinism contract ------------------------------------------------

   Every random stream is derived purely from (config.seed, a stream
   id), never from "whatever the shared rng happened to contain":

   - episode [i] (a global, checkpointed counter) draws everything —
     op choice, action sampling, measurement jitter, fault injection —
     from [Util.Rng.derive seed ~stream:i] and its splits;
   - the PPO minibatch shuffle uses the reserved stream id below.

   Workers collect contiguous episode-index ranges and the main domain
   consumes results in strictly increasing index order, so the training
   trajectory is a pure function of the seed: any [jobs] value produces
   bit-identical iterations and checkpoints (docs/parallelism.md). *)

let update_stream = -1

(* Per-episode stream bundle. The split order is part of the on-disk
   determinism contract (checkpoints record episode indices, and a
   resume re-derives these streams), so never reorder the splits. *)
let episode_streams seed index =
  let master = Util.Rng.derive seed ~stream:index in
  let action_rng = Util.Rng.split master in
  let noise_state = Util.Rng.state (Util.Rng.split master) in
  let fault_state = Util.Rng.state (Util.Rng.split master) in
  (action_rng, noise_state, fault_state)

let checkpoint_meta env rng ~iteration ~episodes ~best =
  {
    Checkpoint.iteration;
    rng_state = Util.Rng.state rng;
    episodes;
    best_speedup = best;
    measurement_seconds = Env.measurement_seconds env;
    explored = Evaluator.explored (Env.evaluator env);
    degraded = Env.degraded_measurements env;
    noise_state = Evaluator.noise_state (Env.evaluator env);
    fault_state =
      Option.bind (Env.robust env) (fun r ->
          Option.map Faults.state (Robust_evaluator.faults r));
  }

(* One collected episode plus everything the main domain must merge
   when (and only when) it consumes the episode: the accounting deltas
   of speculative episodes that end up discarded must never leak into
   the shared counters, or the totals would depend on [jobs]. *)
type 'sample episode_out = {
  ep_steps : 'sample Ppo.transition array;
  ep_return : float;
  ep_speedup : float;
  ep_meas_seconds : float;
  ep_env_degraded : int;
  ep_explored : int;
  ep_measurements : int;
  ep_retries : int;
  ep_rob_degraded : int;
}

let robust_counters env =
  match Env.robust env with
  | Some r ->
      ( Robust_evaluator.measurements r,
        Robust_evaluator.retry_count r,
        Robust_evaluator.degraded_count r )
  | None -> (0, 0, 0)

(* Play episodes [lo, hi) on one worker, advancing up to [slab] of them
   in lockstep so [step_slab] can batch the policy forward pass. Each
   episode's rng streams come from its global index, so the slot / slab
   / worker assignment cannot influence its trajectory. *)
let play_chunk ~env_proto ~seed ~ops ~slab ~step_slab ~lo ~hi =
  let count = hi - lo in
  let out = Array.make count None in
  let nslots = min slab count in
  let envs = Array.init nslots (fun _ -> Env.fork env_proto) in
  let rngs = Array.make nslots (Util.Rng.create 0) in
  let obs = Array.make nslots [||] in
  let idxs = Array.make nslots (-1) in
  let steps_acc = Array.make nslots [] in
  let returns = Array.make nslots 0.0 in
  let explored0 = Array.make nslots 0 in
  let rob0 = Array.make nslots (0, 0, 0) in
  let active = Array.make nslots false in
  let next = ref lo in
  let start s =
    if !next < hi then begin
      let idx = !next in
      incr next;
      let env = envs.(s) in
      let action_rng, noise_state, fault_state = episode_streams seed idx in
      Evaluator.set_noise_state (Env.evaluator env) noise_state;
      (match Option.bind (Env.robust env) Robust_evaluator.faults with
      | Some f -> Faults.restore f (fault_state, 0)
      | None -> ());
      let op = Util.Rng.choice action_rng ops in
      obs.(s) <- Env.reset env op;
      rngs.(s) <- action_rng;
      idxs.(s) <- idx;
      steps_acc.(s) <- [];
      returns.(s) <- 0.0;
      explored0.(s) <- Evaluator.explored (Env.evaluator env);
      rob0.(s) <- robust_counters env;
      active.(s) <- true
    end
  in
  for s = 0 to nslots - 1 do
    start s
  done;
  while Array.exists (fun b -> b) active do
    let live =
      Array.of_list
        (List.filter (fun s -> active.(s)) (List.init nslots (fun s -> s)))
    in
    let stepped =
      step_slab
        ~envs:(Array.map (fun s -> envs.(s)) live)
        ~rngs:(Array.map (fun s -> rngs.(s)) live)
        ~obs:(Array.map (fun s -> obs.(s)) live)
    in
    Array.iteri
      (fun k (result, transition) ->
        let s = live.(k) in
        steps_acc.(s) <- transition :: steps_acc.(s);
        returns.(s) <- returns.(s) +. result.Env.reward;
        obs.(s) <- result.Env.obs;
        if result.Env.terminal then begin
          let env = envs.(s) in
          (* [current_speedup] bumps the explored counter and consumes a
             jitter draw, so it must run before the delta is read. *)
          let speedup = Env.current_speedup env in
          let explored_after = Evaluator.explored (Env.evaluator env) in
          let m0, r0, d0 = rob0.(s) in
          let m1, r1, d1 = robust_counters env in
          out.(idxs.(s) - lo) <-
            Some
              {
                ep_steps = Array.of_list (List.rev steps_acc.(s));
                ep_return = returns.(s);
                ep_speedup = speedup;
                ep_meas_seconds = Env.episode_measurement_seconds env;
                ep_env_degraded = Env.episode_degraded env;
                ep_explored = explored_after - explored0.(s);
                ep_measurements = m1 - m0;
                ep_retries = r1 - r0;
                ep_rob_degraded = d1 - d0;
              };
          active.(s) <- false;
          start s
        end)
      stepped
  done;
  Array.map Option.get out

(* Split [wave] episodes starting at [lo] into one contiguous chunk per
   worker (first chunks get the remainder), dropping empty chunks. *)
let chunk_ranges ~lo ~wave ~jobs =
  let base = wave / jobs and extra = wave mod jobs in
  let rec go w start acc =
    if w >= jobs then List.rev acc
    else
      let len = base + if w < extra then 1 else 0 in
      if len = 0 then List.rev acc
      else go (w + 1) (start + len) ((start, start + len) :: acc)
  in
  go 0 lo []

(* Generic collection/update loop shared by the hierarchical and flat
   trainers. [step_slab] advances a slab of concurrent episodes by one
   action each (batched policy forward); everything else — waves,
   in-order consumption, accounting merge, checkpointing — is policy
   agnostic. *)
let run_loop ?callback ?(resume = false) config env ~params ~optimizer ~ops
    ~step_slab ~update =
  if config.jobs < 1 then invalid_arg "Trainer: jobs must be >= 1";
  if config.inference_batch < 1 then
    invalid_arg "Trainer: inference_batch must be >= 1";
  let rng = Util.Rng.derive config.seed ~stream:update_stream in
  let stats_acc = ref [] in
  let best = ref 0.0 in
  let start_iteration = ref 0 in
  let episodes = ref 0 in
  (if resume then
     match config.checkpoint_path with
     | None ->
         invalid_arg "Trainer: resume requested without a checkpoint_path"
     | Some path when not (Checkpoint.exists ~path) ->
         (* Nothing saved yet: start from scratch (first run of a job
            that is always launched with --resume). *)
         ()
     | Some path -> (
         match Checkpoint.restore ~path ~params ~optimizer with
         | Error e -> invalid_arg ("Trainer: cannot resume: " ^ e)
         | Ok meta ->
             start_iteration := meta.Checkpoint.iteration;
             episodes := meta.Checkpoint.episodes;
             best := meta.Checkpoint.best_speedup;
             Util.Rng.set_state rng meta.Checkpoint.rng_state;
             Env.restore_accounting env
               ~measurement_seconds:meta.Checkpoint.measurement_seconds
               ~degraded:meta.Checkpoint.degraded;
             Evaluator.set_explored (Env.evaluator env)
               meta.Checkpoint.explored;
             Evaluator.set_noise_state (Env.evaluator env)
               meta.Checkpoint.noise_state;
             (match
                ( meta.Checkpoint.fault_state,
                  Option.bind (Env.robust env) Robust_evaluator.faults )
              with
             | Some st, Some f -> Faults.restore f st
             | _ -> ())));
  let pool =
    if config.jobs > 1 then Some (Util.Domain_pool.create ~size:(config.jobs - 1))
    else None
  in
  Fun.protect
    ~finally:(fun () -> Option.iter Util.Domain_pool.shutdown pool)
    (fun () ->
      (* Episode-length estimate for wave sizing. Only efficiency rides
         on it (a bad estimate means more speculative episodes), never
         correctness: consumption order fixes the trajectory. *)
      let consumed_eps = ref 0 in
      let consumed_steps = ref 0 in
      let collect (lo, hi) =
        play_chunk ~env_proto:env ~seed:config.seed ~ops
          ~slab:config.inference_batch ~step_slab ~lo ~hi
      in
      let play_wave ~lo ~wave =
        let chunks = chunk_ranges ~lo ~wave ~jobs:config.jobs in
        match (pool, chunks) with
        | _, [] -> []
        | None, chunks -> List.map collect chunks
        | Some pool, first :: rest ->
            (* Queue the other chunks, then work the first one on the
               main domain so [jobs] cores stay busy with [jobs - 1]
               pool workers. *)
            let promises =
              List.map
                (fun range ->
                  Util.Domain_pool.submit pool (fun () -> collect range))
                rest
            in
            collect first :: List.map Util.Domain_pool.await promises
      in
      for iteration = !start_iteration + 1 to config.iterations do
        let transitions = ref [] in
        let returns = ref [] in
        let speedups = ref [] in
        let n_steps = ref 0 in
        let queue = Queue.create () in
        let next_index = ref !episodes in
        while !n_steps < config.ppo.Ppo.batch_size do
          if Queue.is_empty queue then begin
            let remaining = config.ppo.Ppo.batch_size - !n_steps in
            let est =
              if !consumed_eps = 0 then 2.0
              else float_of_int !consumed_steps /. float_of_int !consumed_eps
            in
            let wave =
              max 1
                (min
                   (config.jobs * config.inference_batch)
                   (int_of_float (Float.ceil (float_of_int remaining /. est))))
            in
            List.iter
              (Array.iter (fun ep -> Queue.push ep queue))
              (play_wave ~lo:!next_index ~wave);
            next_index := !next_index + wave
          end;
          (* Consume strictly in episode-index order; episodes left in
             the queue when the batch fills are discarded unmerged and
             their indices re-collected next iteration (with the
             updated policy) — identical for every [jobs]. *)
          let ep = Queue.pop queue in
          transitions := ep.ep_steps :: !transitions;
          returns := ep.ep_return :: !returns;
          speedups := Float.max 1e-9 ep.ep_speedup :: !speedups;
          n_steps := !n_steps + Array.length ep.ep_steps;
          Env.restore_accounting env
            ~measurement_seconds:
              (Env.measurement_seconds env +. ep.ep_meas_seconds)
            ~degraded:(Env.degraded_measurements env + ep.ep_env_degraded);
          Evaluator.set_explored (Env.evaluator env)
            (Evaluator.explored (Env.evaluator env) + ep.ep_explored);
          (match Env.robust env with
          | Some r ->
              Robust_evaluator.absorb r ~measurements:ep.ep_measurements
                ~retries:ep.ep_retries ~degraded:ep.ep_rob_degraded
          | None -> ());
          incr episodes;
          incr consumed_eps;
          consumed_steps := !consumed_steps + Array.length ep.ep_steps
        done;
        let batch = Array.concat (List.rev !transitions) in
        let ppo_stats = update batch ~rng in
        let mean_final_speedup = Util.Stats.geomean !speedups in
        best := Float.max !best (List.fold_left Float.max 0.0 !speedups);
        let st =
          {
            iteration;
            mean_episode_return = Util.Stats.mean !returns;
            mean_final_speedup;
            best_speedup = !best;
            ppo_stats;
            measurement_seconds = Env.measurement_seconds env;
            schedules_explored = Evaluator.explored (Env.evaluator env);
            degraded_measurements = Env.degraded_measurements env;
            episodes = !episodes;
          }
        in
        (match config.checkpoint_path with
        | Some path
          when config.checkpoint_every > 0
               && (iteration mod config.checkpoint_every = 0
                  || iteration = config.iterations) ->
            Checkpoint.save ~path
              (checkpoint_meta env rng ~iteration ~episodes:!episodes
                 ~best:!best)
              ~params ~optimizer
        | _ -> ());
        (match callback with Some f -> f st | None -> ());
        stats_acc := st :: !stats_acc
      done;
      List.rev !stats_acc)

let train ?callback ?resume config env policy ~ops =
  if Array.length ops = 0 then invalid_arg "Trainer.train: no training ops";
  let params = Policy.params policy in
  let optimizer = Optim.adam ~lr:config.ppo.Ppo.learning_rate params in
  let ppo_policy = Policy.ppo_policy policy in
  let step_slab ~envs ~rngs ~obs =
    let masks = Array.map Env.masks envs in
    let acts = Policy.act_batch rngs policy ~obs ~masks in
    Array.init (Array.length envs) (fun i ->
        let action, log_prob, value = acts.(i) in
        let result = Env.step_hierarchical envs.(i) action in
        ( result,
          {
            Ppo.sample =
              { Policy.s_obs = obs.(i); s_action = action; s_masks = masks.(i) };
            reward = result.Env.reward;
            value;
            log_prob;
            terminal = result.Env.terminal;
          } ))
  in
  let update batch ~rng = Ppo.update config.ppo ppo_policy optimizer batch ~rng in
  run_loop ?callback ?resume config env ~params ~optimizer ~ops ~step_slab
    ~update

let train_flat ?callback ?resume config env policy ~ops =
  if Array.length ops = 0 then invalid_arg "Trainer.train_flat: no training ops";
  let params = Flat_policy.params policy in
  let optimizer = Optim.adam ~lr:config.ppo.Ppo.learning_rate params in
  let ppo_policy = Flat_policy.ppo_policy policy in
  let menu = Flat_policy.menu policy in
  let step_slab ~envs ~rngs ~obs =
    let cfg = Env.config envs.(0) in
    let masks =
      Array.map (fun e -> Action_space.simple_mask cfg (Env.state e) menu) envs
    in
    let acts = Flat_policy.act_batch rngs policy ~obs ~masks in
    Array.init (Array.length envs) (fun i ->
        let choice, log_prob, value = acts.(i) in
        let env = envs.(i) in
        let ctx = Action_space.legality_of cfg (Env.state env) in
        let tr =
          Action_space.legalize ?ctx (Env.state env)
            menu.(choice).Action_space.transformation
        in
        let result = Env.step env tr in
        ( result,
          {
            Ppo.sample =
              { Flat_policy.f_obs = obs.(i); f_choice = choice; f_mask = masks.(i) };
            reward = result.Env.reward;
            value;
            log_prob;
            terminal = result.Env.terminal;
          } ))
  in
  let update batch ~rng = Ppo.update config.ppo ppo_policy optimizer batch ~rng in
  run_loop ?callback ?resume config env ~params ~optimizer ~ops ~step_slab
    ~update

let greedy_rollout env policy op =
  let obs = ref (Env.reset env op) in
  let continue = ref true in
  while !continue do
    let masks = Env.masks env in
    let action = Policy.act_greedy policy ~obs:!obs ~masks in
    let result = Env.step_hierarchical env action in
    obs := result.Env.obs;
    if result.Env.terminal then continue := false
  done;
  (Env.schedule env, Env.current_speedup env)

(* Inference-time stochastic search. Trials are independent episodes,
   so they parallelize exactly like training episodes: per-trial
   streams split off the caller's rng up front, contiguous trial ranges
   per worker, results reduced in trial order — the winning schedule is
   the same for every [jobs]. *)
let sampled_best ?(temperature = 1.5) ?(jobs = 1) rng env policy op ~trials =
  if jobs < 1 then invalid_arg "Trainer.sampled_best: jobs must be >= 1";
  let masters = Array.init trials (fun _ -> Util.Rng.state (Util.Rng.split rng)) in
  let run_range (lo, hi) =
    let fork = Env.fork env in
    Array.init (hi - lo) (fun k ->
        let master = Util.Rng.of_state masters.(lo + k) in
        let action_rng = Util.Rng.split master in
        let noise_state = Util.Rng.state (Util.Rng.split master) in
        let fault_state = Util.Rng.state (Util.Rng.split master) in
        Evaluator.set_noise_state (Env.evaluator fork) noise_state;
        (match Option.bind (Env.robust fork) Robust_evaluator.faults with
        | Some f -> Faults.restore f (fault_state, 0)
        | None -> ());
        let explored0 = Evaluator.explored (Env.evaluator fork) in
        let m0, r0, d0 = robust_counters fork in
        let obs = ref (Env.reset fork op) in
        let continue = ref true in
        while !continue do
          let masks = Env.masks fork in
          let action, _, _ =
            Policy.act ~temperature action_rng policy ~obs:!obs ~masks
          in
          let result = Env.step_hierarchical fork action in
          obs := result.Env.obs;
          if result.Env.terminal then continue := false
        done;
        let speedup = Env.current_speedup fork in
        let explored_after = Evaluator.explored (Env.evaluator fork) in
        let m1, r1, d1 = robust_counters fork in
        ( Env.schedule fork,
          speedup,
          Env.episode_measurement_seconds fork,
          Env.episode_degraded fork,
          explored_after - explored0,
          (m1 - m0, r1 - r0, d1 - d0) ))
  in
  let chunks = chunk_ranges ~lo:0 ~wave:trials ~jobs in
  let results =
    match chunks with
    | [] -> []
    | [ range ] -> [ run_range range ]
    | first :: rest when jobs > 1 ->
        let pool = Util.Domain_pool.create ~size:(jobs - 1) in
        Fun.protect
          ~finally:(fun () -> Util.Domain_pool.shutdown pool)
          (fun () ->
            let promises =
              List.map
                (fun range ->
                  Util.Domain_pool.submit pool (fun () -> run_range range))
                rest
            in
            run_range first :: List.map Util.Domain_pool.await promises)
    | chunks -> List.map run_range chunks
  in
  let best_sched = ref [] in
  let best_speedup = ref 0.0 in
  List.iter
    (Array.iter
       (fun (sched, sp, meas, env_degraded, explored, (m, r, d)) ->
         (* Merge each trial's accounting in trial order, mirroring the
            training loop's consume step. *)
         Env.restore_accounting env
           ~measurement_seconds:(Env.measurement_seconds env +. meas)
           ~degraded:(Env.degraded_measurements env + env_degraded);
         Evaluator.set_explored (Env.evaluator env)
           (Evaluator.explored (Env.evaluator env) + explored);
         (match Env.robust env with
         | Some rob ->
             Robust_evaluator.absorb rob ~measurements:m ~retries:r ~degraded:d
         | None -> ());
         if sp > !best_speedup then begin
           best_speedup := sp;
           best_sched := sched
         end))
    results;
  (!best_sched, !best_speedup)
