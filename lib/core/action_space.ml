let t_tile = 0
let t_parallelize = 1
let t_interchange = 2
let t_im2col = 3
let t_vectorize = 4

let transformation_label = function
  | 0 -> "tiling"
  | 1 -> "parallelization"
  | 2 -> "interchange"
  | 3 -> "im2col"
  | 4 -> "vectorization"
  | i -> invalid_arg (Printf.sprintf "transformation_label: %d" i)

type hierarchical = {
  transform : int;
  tile_choices : int array;
  swap_choice : int;
}

type masks = {
  t_mask : bool array;
  tile_mask : bool array array;
  par_mask : bool array array;
  swap_mask : bool array;
}

(* --- static legality context ---------------------------------------

   When [Env_config.static_legality] is on, the paper's syntactic masks
   are intersected with the sound verdicts of the dependence analysis.
   The analysis indexes loops by absolute position in the nest; point
   loop [l] sits at [p0 + l] where [p0] is the point-band start. *)

type legality_ctx = { leg : Legality.t; p0 : int }

let legality_of (cfg : Env_config.t) (state : Sched_state.t) =
  if cfg.Env_config.static_legality then
    Some
      {
        leg = Legality.analyze state.Sched_state.nest;
        p0 = Loop_transforms.point_band_start state.Sched_state.nest;
      }
  else None

let static_parallel_ok ctx l =
  match ctx with
  | None -> true
  | Some { leg; p0 } -> Legality.can_parallelize leg (p0 + l)

let static_swap_ok ctx i =
  match ctx with
  | None -> true
  | Some { leg; p0 } -> Legality.can_interchange leg (p0 + i)

let static_tile_ok ctx =
  match ctx with
  | None -> true
  | Some { leg; p0 } -> Legality.can_tile leg ~band_start:p0

let static_vectorize_ok ctx =
  match ctx with None -> true | Some { leg; _ } -> Legality.can_vectorize leg

(* The one place the adjacent-swap condition lives: both the
   hierarchical [masks] and the flat [simple_mask] route through it, so
   the two menus cannot drift. *)
let swap_legal ?ctx (state : Sched_state.t) i =
  Sched_state.can_interchange state
  && i >= 0
  && i < Sched_state.n_point_loops state - 1
  && static_swap_ok ctx i

(* Tile size selected by each slot for each point loop: slot 0 = no
   tiling; slots 1.. = largest divisors <= max_tile_size, descending
   (1 and the full trip count are excluded — both leave the loop
   effectively untiled). *)
let slot_sizes (cfg : Env_config.t) (state : Sched_state.t) =
  let m = Env_config.n_tile_choices cfg in
  let trips = Sched_state.point_trip_counts state in
  Array.map
    (fun trip ->
      let divisors =
        List.filter
          (fun d -> d > 1 && d < trip && d <= cfg.Env_config.max_tile_size)
          (Loop_transforms.divisors trip)
      in
      let descending = List.rev divisors in
      let slots = Array.make m 0 in
      List.iteri (fun i d -> if i + 1 < m then slots.(i + 1) <- d) descending;
      slots)
    trips

let masks (cfg : Env_config.t) (state : Sched_state.t) =
  let n_max = cfg.Env_config.n_max in
  let m = Env_config.n_tile_choices cfg in
  let n_loops = Sched_state.n_point_loops state in
  let sizes = slot_sizes cfg state in
  let ctx = legality_of cfg state in
  let tile_mask =
    Array.init n_max (fun l ->
        if l < n_loops then
          Array.init m (fun s -> s = 0 || sizes.(l).(s) > 0)
        else Array.init m (fun j -> j = 0))
  in
  let par_mask =
    Array.init n_max (fun l ->
        if
          l < n_loops
          && Sched_state.parallelizable_loop state l
          && static_parallel_ok ctx l
        then Array.copy tile_mask.(l)
        else Array.init m (fun j -> j = 0))
  in
  let has_positive rows =
    Array.exists
      (fun row -> Array.exists (fun b -> b) (Array.sub row 1 (m - 1)))
      rows
  in
  let some_tiling_possible = has_positive (Array.sub tile_mask 0 (min n_loops n_max)) in
  let some_par_possible = has_positive (Array.sub par_mask 0 (min n_loops n_max)) in
  let swap_mask = Array.init n_max (fun i -> swap_legal ?ctx state i) in
  let t_mask =
    [|
      Sched_state.can_tile state && some_tiling_possible && static_tile_ok ctx;
      Sched_state.can_parallelize state && some_par_possible;
      Array.exists (fun b -> b) swap_mask;
      Sched_state.can_im2col state;
      Sched_state.can_vectorize state && static_vectorize_ok ctx;
    |]
  in
  { t_mask; tile_mask; par_mask; swap_mask }

let to_transformation (cfg : Env_config.t) (state : Sched_state.t) action =
  let slots = slot_sizes cfg state in
  let n_loops = Sched_state.n_point_loops state in
  let sizes_of_choices () =
    Array.init n_loops (fun l -> slots.(l).(action.tile_choices.(l)))
  in
  match action.transform with
  | 0 ->
      let sizes = sizes_of_choices () in
      if Array.for_all (fun s -> s = 0) sizes then None
      else Some (Schedule.Tile sizes)
  | 1 ->
      let sizes = sizes_of_choices () in
      if Array.for_all (fun s -> s = 0) sizes then None
      else Some (Schedule.Parallelize sizes)
  | 2 -> Some (Schedule.Swap action.swap_choice)
  | 3 -> Some Schedule.Im2col
  | 4 -> Some Schedule.Vectorize
  | i -> invalid_arg (Printf.sprintf "Action_space.to_transformation: %d" i)

let cardinality (cfg : Env_config.t) ~n_loops =
  let m = float_of_int (Env_config.n_tile_choices cfg) in
  let n = float_of_int n_loops in
  let rec fact k = if k <= 1.0 then 1.0 else k *. fact (k -. 1.0) in
  (2.0 *. (m ** n)) +. fact n +. 2.0

type simple_item = { label : string; transformation : Schedule.transformation }

let simple_menu (cfg : Env_config.t) ~n_loops =
  ignore cfg;
  let tiles =
    List.map
      (fun size ->
        {
          label = Printf.sprintf "tile-all-%d" size;
          transformation = Schedule.Tile (Array.make n_loops size);
        })
      [ 16; 32; 64 ]
  in
  let pars =
    List.map
      (fun size ->
        let sizes = Array.make n_loops 0 in
        sizes.(0) <- size;
        if n_loops > 1 then sizes.(1) <- size;
        {
          label = Printf.sprintf "parallelize-outer-%d" size;
          transformation = Schedule.Parallelize sizes;
        })
      [ 16; 32; 64 ]
  in
  let swaps =
    List.init (max 0 (n_loops - 1)) (fun i ->
        { label = Printf.sprintf "swap-%d" i; transformation = Schedule.Swap i })
  in
  Array.of_list
    (tiles @ pars @ swaps
    @ [
        { label = "im2col"; transformation = Schedule.Im2col };
        { label = "vectorize"; transformation = Schedule.Vectorize };
      ])

(* Zero out tile sizes that do not divide the current trip counts; an
   entry is legal when at least one loop keeps a positive size. *)
let legalize_sizes (state : Sched_state.t) sizes =
  let trips = Sched_state.point_trip_counts state in
  if Array.length sizes <> Array.length trips then None
  else begin
    let fixed =
      Array.mapi
        (fun l s -> if s > 0 && s <= trips.(l) && trips.(l) mod s = 0 then s else 0)
        sizes
    in
    if Array.exists (fun s -> s > 0) fixed then Some fixed else None
  end

let legalize_par_sizes ?ctx (state : Sched_state.t) sizes =
  match legalize_sizes state sizes with
  | None -> None
  | Some fixed ->
      let fixed =
        Array.mapi
          (fun l s ->
            if
              Sched_state.parallelizable_loop state l
              && static_parallel_ok ctx l
            then s
            else 0)
          fixed
      in
      if Array.exists (fun s -> s > 0) fixed then Some fixed else None

let legalize ?ctx (state : Sched_state.t) (tr : Schedule.transformation) =
  match tr with
  | Schedule.Tile sizes ->
      if static_tile_ok ctx then
        Option.map (fun s -> Schedule.Tile s) (legalize_sizes state sizes)
      else None
  | Schedule.Parallelize sizes ->
      Option.map
        (fun s -> Schedule.Parallelize s)
        (legalize_par_sizes ?ctx state sizes)
  | Schedule.Swap i ->
      if i < Sched_state.n_point_loops state - 1 && static_swap_ok ctx i then
        Some tr
      else None
  | Schedule.Interchange _ -> if static_tile_ok ctx then Some tr else None
  | Schedule.Im2col -> Some tr
  | Schedule.Vectorize -> if static_vectorize_ok ctx then Some tr else None
  | Schedule.Unroll f ->
      if f >= 2 then Some tr else None

let simple_mask (cfg : Env_config.t) (state : Sched_state.t) menu =
  let ctx = legality_of cfg state in
  Array.map
    (fun item ->
      match item.transformation with
      | Schedule.Tile sizes ->
          Sched_state.can_tile state
          && legalize_sizes state sizes <> None
          && static_tile_ok ctx
      | Schedule.Parallelize sizes ->
          Sched_state.can_parallelize state
          && legalize_par_sizes ?ctx state sizes <> None
      | Schedule.Swap i -> swap_legal ?ctx state i
      | Schedule.Interchange _ ->
          Sched_state.can_interchange state && static_tile_ok ctx
      | Schedule.Im2col -> Sched_state.can_im2col state
      | Schedule.Vectorize ->
          Sched_state.can_vectorize state && static_vectorize_ok ctx
      | Schedule.Unroll _ -> Sched_state.can_tile state)
    menu
