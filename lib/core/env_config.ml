type reward_mode = Immediate | Final

type features = {
  use_loop_info : bool;
  use_access_matrices : bool;
  use_math_counts : bool;
  use_history : bool;
}

type t = {
  n_max : int;
  n_tile_slots : int;
  max_tile_size : int;
  d_max : int;
  l_max : int;
  tau : int;
  reward_mode : reward_mode;
  timeout_penalty : float;
  compile_seconds : float;
  machine : Machine.t;
  features : features;
  static_legality : bool;
      (* intersect the paper's syntactic masks with the static
         dependence-analysis verdicts (lib/analysis) *)
  verify_transforms : bool;
      (* run the post-transform Verifier after every accepted
         transformation *)
  sanitize : bool;
      (* differentially execute transformed nests against their
         originals at measurement time *)
  footprint_features : bool;
      (* append per-level footprint / reuse-distance features to the
         observation; changes obs_dim, so off by default to keep
         checkpoints and network shapes stable *)
}

let all_features =
  {
    use_loop_info = true;
    use_access_matrices = true;
    use_math_counts = true;
    use_history = true;
  }

let default =
  {
    n_max = 7;
    n_tile_slots = 5;
    max_tile_size = 128;
    d_max = 4;
    l_max = 3;
    tau = 7;
    reward_mode = Final;
    timeout_penalty = -5.0;
    compile_seconds = 2.0;
    machine = Machine.e5_2680_v4;
    features = all_features;
    static_legality = true;
    (* The env-var defaults keep the flags in sync with the process-wide
       toggles in lib/analysis, so MLIR_RL_VERIFY=1 / MLIR_RL_SANITIZE=1
       turn the checks on everywhere without threading a config. *)
    verify_transforms =
      (match Sys.getenv_opt "MLIR_RL_VERIFY" with
      | Some ("1" | "true" | "yes") -> true
      | Some _ | None -> false);
    sanitize =
      (match Sys.getenv_opt "MLIR_RL_SANITIZE" with
      | Some ("1" | "true" | "yes") -> true
      | Some _ | None -> false);
    footprint_features = false;
  }

let with_reward_mode reward_mode t = { t with reward_mode }
let with_static_legality static_legality t = { t with static_legality }
let with_verify verify_transforms t = { t with verify_transforms }
let with_sanitize sanitize t = { t with sanitize }

let with_footprint_features footprint_features t =
  { t with footprint_features }

let n_tile_choices t = t.n_tile_slots

let obs_dim t =
  let n = t.n_max in
  n
  + (t.l_max * t.d_max * (n + 1))
  + (t.d_max * (n + 1))
  + 6
  + (n * 3 * t.tau)
  + (if t.footprint_features then 2 * n else 0)

let n_transformations = 5

let validate t =
  if t.n_max <= 0 then Error "n_max must be positive"
  else if t.n_tile_slots < 2 then Error "need at least 2 tile slots"
  else if t.max_tile_size < 2 then Error "max_tile_size must be at least 2"
  else if t.d_max <= 0 then Error "d_max must be positive"
  else if t.l_max <= 0 then Error "l_max must be positive"
  else if t.tau <= 0 then Error "tau must be positive"
  else Ok ()
