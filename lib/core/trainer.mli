(** PPO training loops over the environment.

    Handles rollout collection across a pool of training ops, the PPO
    update, evaluation-time greedy inference, and crash recovery:
    with a [checkpoint_path] the loop persists policy weights, Adam
    state, RNG streams and accounting every [checkpoint_every]
    iterations, and [~resume:true] continues a killed run
    deterministically — the resumed run's statistics are identical to
    an uninterrupted run's. *)

type config = {
  ppo : Ppo.config;
  iterations : int;  (** batch-collection + update rounds (paper: 1000) *)
  seed : int;
  checkpoint_path : string option;
      (** prefix for the [.meta]/[.params]/[.optim] checkpoint files;
          [None] disables checkpointing *)
  checkpoint_every : int;
      (** checkpoint every this many iterations (and always at the
          last); [<= 0] disables *)
}

val default_config : config
(** Paper hyperparameters with a modest iteration count; benches override
    [iterations]. Checkpointing is off ([checkpoint_path = None],
    [checkpoint_every = 10]). *)

type iteration_stats = {
  iteration : int;
  mean_episode_return : float;
  mean_final_speedup : float;  (** geomean of episode-end speedups *)
  best_speedup : float;  (** best speedup seen so far across training *)
  ppo_stats : Ppo.stats;
  measurement_seconds : float;  (** cumulative simulated compile+run time *)
  schedules_explored : int;  (** cumulative evaluator measurements *)
  degraded_measurements : int;
      (** cumulative measurements that fell back to the cost model *)
}

val train :
  ?callback:(iteration_stats -> unit) ->
  ?resume:bool ->
  config ->
  Env.t ->
  Policy.t ->
  ops:Linalg.t array ->
  iteration_stats list
(** Train the hierarchical policy; each episode samples an op uniformly
    from [ops]. Returns per-iteration statistics in order (on resume:
    only the iterations run in this call). [resume] (default false)
    restores the latest checkpoint at [config.checkpoint_path] if one
    exists, and starts fresh otherwise; it raises [Invalid_argument]
    when no [checkpoint_path] is configured or the checkpoint is
    corrupt. *)

val train_flat :
  ?callback:(iteration_stats -> unit) ->
  ?resume:bool ->
  config ->
  Env.t ->
  Flat_policy.t ->
  ops:Linalg.t array ->
  iteration_stats list
(** Same loop for the flat/simple action-space policy. All [ops] must
    have the loop count the policy was built for. *)

val greedy_rollout : Env.t -> Policy.t -> Linalg.t -> Schedule.t * float
(** Run one greedy episode; returns the schedule and its speedup. *)

val sampled_best :
  ?temperature:float ->
  Util.Rng.t ->
  Env.t ->
  Policy.t ->
  Linalg.t ->
  trials:int ->
  Schedule.t * float
(** Sample [trials] stochastic episodes and keep the best schedule —
    the inference mode used for the Figure 6 exploration comparison.
    [temperature] (default 1.5) flattens the policy so a converged
    (low-entropy) agent still proposes diverse candidates. *)
