(** PPO training loops over the environment.

    Handles rollout collection across a pool of training ops, the PPO
    update, evaluation-time greedy inference, and crash recovery:
    with a [checkpoint_path] the loop persists policy weights, Adam
    state, RNG streams and accounting every [checkpoint_every]
    iterations, and [~resume:true] continues a killed run
    deterministically — the resumed run's statistics are identical to
    an uninterrupted run's.

    {2 Parallel collection}

    With [jobs > 1] episode collection fans out over a
    {!Util.Domain_pool} of OCaml 5 domains: each worker plays a
    contiguous range of global episode indices on {!Env.fork}ed
    environments, advancing up to [inference_batch] episodes in
    lockstep so each policy forward pass prices a whole slab of
    observations at once ({!Policy.act_batch}). The PPO update always
    runs on the main domain.

    Every episode's random streams (op choice, actions, measurement
    jitter, fault injection) are derived purely from
    [(seed, global episode index)] via {!Util.Rng.derive}, and the main
    domain consumes collected episodes in strictly increasing index
    order — so a seeded run is bit-reproducible for {e any} [jobs]
    value: identical iteration statistics, identical checkpoint bytes.
    See docs/parallelism.md for the full contract. *)

type config = {
  ppo : Ppo.config;
  iterations : int;  (** batch-collection + update rounds (paper: 1000) *)
  seed : int;
  checkpoint_path : string option;
      (** prefix for the [.meta]/[.params]/[.optim] checkpoint files;
          [None] disables checkpointing *)
  checkpoint_every : int;
      (** checkpoint every this many iterations (and always at the
          last); [<= 0] disables *)
  jobs : int;
      (** worker domains for episode collection (1 = fully serial on
          the main domain); results are identical for any value *)
  inference_batch : int;
      (** episodes each worker advances in lockstep per policy forward
          pass (the batched-inference slab size); also benefits
          [jobs = 1] *)
}

val default_config : config
(** Paper hyperparameters with a modest iteration count; benches override
    [iterations]. Checkpointing is off ([checkpoint_path = None],
    [checkpoint_every = 10]); [jobs = 1], [inference_batch = 8]. *)

type iteration_stats = {
  iteration : int;
  mean_episode_return : float;
  mean_final_speedup : float;  (** geomean of episode-end speedups *)
  best_speedup : float;  (** best speedup seen so far across training *)
  ppo_stats : Ppo.stats;
  measurement_seconds : float;  (** cumulative simulated compile+run time *)
  schedules_explored : int;  (** cumulative evaluator measurements *)
  degraded_measurements : int;
      (** cumulative measurements that fell back to the cost model *)
  episodes : int;  (** cumulative episodes consumed by training *)
}

val train :
  ?callback:(iteration_stats -> unit) ->
  ?resume:bool ->
  config ->
  Env.t ->
  Policy.t ->
  ops:Linalg.t array ->
  iteration_stats list
(** Train the hierarchical policy; each episode samples an op uniformly
    from [ops]. Returns per-iteration statistics in order (on resume:
    only the iterations run in this call). [resume] (default false)
    restores the latest checkpoint at [config.checkpoint_path] if one
    exists, and starts fresh otherwise; it raises [Invalid_argument]
    when no [checkpoint_path] is configured or the checkpoint is
    corrupt. Checkpoint/resume composes with any [jobs] value. *)

val train_flat :
  ?callback:(iteration_stats -> unit) ->
  ?resume:bool ->
  config ->
  Env.t ->
  Flat_policy.t ->
  ops:Linalg.t array ->
  iteration_stats list
(** Same loop for the flat/simple action-space policy. All [ops] must
    have the loop count the policy was built for. *)

val greedy_rollout : Env.t -> Policy.t -> Linalg.t -> Schedule.t * float
(** Run one greedy episode; returns the schedule and its speedup. *)

val sampled_best :
  ?temperature:float ->
  ?jobs:int ->
  Util.Rng.t ->
  Env.t ->
  Policy.t ->
  Linalg.t ->
  trials:int ->
  Schedule.t * float
(** Sample [trials] stochastic episodes and keep the best schedule —
    the inference mode used for the Figure 6 exploration comparison.
    [temperature] (default 1.5) flattens the policy so a converged
    (low-entropy) agent still proposes diverse candidates. [jobs]
    (default 1) spreads the trials over worker domains; per-trial rng
    streams are split off [rng] up front and trial accounting is merged
    back into [env] in trial order, so the result and the evaluator
    counters are identical for any [jobs]. *)
