(** PPO training loops over the environment.

    Handles rollout collection across a pool of training ops, the PPO
    update, and evaluation-time greedy inference, for both the
    hierarchical and the flat (ablation) policies. *)

type config = {
  ppo : Ppo.config;
  iterations : int;  (** batch-collection + update rounds (paper: 1000) *)
  seed : int;
}

val default_config : config
(** Paper hyperparameters with a modest iteration count; benches override
    [iterations]. *)

type iteration_stats = {
  iteration : int;
  mean_episode_return : float;
  mean_final_speedup : float;  (** geomean of episode-end speedups *)
  best_speedup : float;  (** best speedup seen so far across training *)
  ppo_stats : Ppo.stats;
  measurement_seconds : float;  (** cumulative simulated compile+run time *)
  schedules_explored : int;  (** cumulative evaluator measurements *)
}

val train :
  ?callback:(iteration_stats -> unit) ->
  config ->
  Env.t ->
  Policy.t ->
  ops:Linalg.t array ->
  iteration_stats list
(** Train the hierarchical policy; each episode samples an op uniformly
    from [ops]. Returns per-iteration statistics in order. *)

val train_flat :
  ?callback:(iteration_stats -> unit) ->
  config ->
  Env.t ->
  Flat_policy.t ->
  ops:Linalg.t array ->
  iteration_stats list
(** Same loop for the flat/simple action-space policy. All [ops] must
    have the loop count the policy was built for. *)

val greedy_rollout : Env.t -> Policy.t -> Linalg.t -> Schedule.t * float
(** Run one greedy episode; returns the schedule and its speedup. *)

val sampled_best :
  ?temperature:float ->
  Util.Rng.t ->
  Env.t ->
  Policy.t ->
  Linalg.t ->
  trials:int ->
  Schedule.t * float
(** Sample [trials] stochastic episodes and keep the best schedule —
    the inference mode used for the Figure 6 exploration comparison.
    [temperature] (default 1.5) flattens the policy so a converged
    (low-entropy) agent still proposes diverse candidates. *)
