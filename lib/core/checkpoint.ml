type meta = {
  iteration : int;
  rng_state : int64;
  episodes : int;
  best_speedup : float;
  measurement_seconds : float;
  explored : int;
  degraded : int;
  noise_state : int64;
  fault_state : (int64 * int) option;
}

(* v2 added the global [episodes] counter (parallel rollout engine);
   v1 files are not readable — training runs are short enough that
   re-running beats carrying a migration path. *)
let magic = "mlir-rl-checkpoint v2"

let meta_path path = path ^ ".meta"
let params_path path = path ^ ".params"
let optim_path path = path ^ ".optim"

let exists ~path = Sys.file_exists (meta_path path)

let write_meta path m =
  Util.Atomic_file.with_out ~path:(meta_path path) (fun oc ->
      output_string oc (magic ^ "\n");
      Printf.fprintf oc "iteration %d\n" m.iteration;
      Printf.fprintf oc "rng_state %Ld\n" m.rng_state;
      Printf.fprintf oc "episodes %d\n" m.episodes;
      Printf.fprintf oc "best_speedup %h\n" m.best_speedup;
      Printf.fprintf oc "measurement_seconds %h\n" m.measurement_seconds;
      Printf.fprintf oc "explored %d\n" m.explored;
      Printf.fprintf oc "degraded %d\n" m.degraded;
      Printf.fprintf oc "noise_state %Ld\n" m.noise_state;
      match m.fault_state with
      | None -> output_string oc "fault_state none\n"
      | Some (s, n) -> Printf.fprintf oc "fault_state %Ld %d\n" s n)

let parse_meta lines =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun line ->
      match String.index_opt line ' ' with
      | Some i ->
          Hashtbl.replace tbl
            (String.sub line 0 i)
            (String.sub line (i + 1) (String.length line - i - 1))
      | None -> ())
    lines;
  let field name parse =
    match Hashtbl.find_opt tbl name with
    | None -> Error ("missing field " ^ name)
    | Some v -> (
        match parse (String.trim v) with
        | Some x -> Ok x
        | None -> Error ("bad value for " ^ name))
  in
  let ( let* ) = Result.bind in
  let* iteration = field "iteration" int_of_string_opt in
  let* rng_state = field "rng_state" Int64.of_string_opt in
  let* episodes = field "episodes" int_of_string_opt in
  let* best_speedup = field "best_speedup" float_of_string_opt in
  let* measurement_seconds = field "measurement_seconds" float_of_string_opt in
  let* explored = field "explored" int_of_string_opt in
  let* degraded = field "degraded" int_of_string_opt in
  let* noise_state = field "noise_state" Int64.of_string_opt in
  let* fault_state =
    field "fault_state" (fun v ->
        if v = "none" then Some None
        else
          match String.split_on_char ' ' v with
          | [ s; n ] -> (
              match (Int64.of_string_opt s, int_of_string_opt n) with
              | Some s, Some n -> Some (Some (s, n))
              | _ -> None)
          | _ -> None)
  in
  Ok
    {
      iteration;
      rng_state;
      episodes;
      best_speedup;
      measurement_seconds;
      explored;
      degraded;
      noise_state;
      fault_state;
    }

let load_meta ~path =
  let file = meta_path path in
  if not (Sys.file_exists file) then Error ("no such checkpoint: " ^ file)
  else begin
    let ic = open_in file in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        match List.rev !lines with
        | header :: rest when header = magic -> parse_meta rest
        | _ -> Error "not a mlir-rl checkpoint file")
  end

let save ~path meta ~params ~optimizer =
  write_meta path meta;
  Serialize.save_params (params_path path) params;
  Optim.save optimizer (optim_path path)

let restore ~path ~params ~optimizer =
  let ( let* ) = Result.bind in
  let* meta = load_meta ~path in
  let* () = Serialize.load_params (params_path path) params in
  let* () = Optim.load optimizer (optim_path path) in
  Ok meta
