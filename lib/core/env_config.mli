(** Environment hyperparameters (paper §5.1.3).

    Defaults: at most N = 7 loops, M = 5 tile-size choices per loop
    (slot 0 means "no tiling"; slots 1..M-1 select the largest divisors
    of the loop's trip count not exceeding [max_tile_size] — the paper
    restricts tile sizes to divisors of the loop bounds), at most D = 4
    array dims, at most L = 3 load access matrices, schedules of at most
    tau = 7 steps. *)

type reward_mode = Immediate | Final

type features = {
  use_loop_info : bool;
  use_access_matrices : bool;
  use_math_counts : bool;
  use_history : bool;
}
(** Which observation blocks carry signal; disabled blocks are zeroed
    (lengths are unchanged so network shapes stay fixed). Used by the
    feature-ablation bench — the paper (§6.1) discusses representation
    choices but does not ablate them. *)

type t = {
  n_max : int;  (** N: max loops *)
  n_tile_slots : int;  (** M: tile-size choices per loop, incl. slot 0 *)
  max_tile_size : int;
  (** largest tile size a slot may select; the RL menu goes beyond the
      baseline auto-scheduler's 64 cap (§5.2.1 credits RL wins to larger
      tiles) *)
  d_max : int;  (** D: max array dims in access matrices *)
  l_max : int;  (** L: max load access matrices *)
  tau : int;  (** max schedule length *)
  reward_mode : reward_mode;
  timeout_penalty : float;  (** reward when a measurement times out *)
  compile_seconds : float;
  (** simulated cost of one compile+measure round, used to reproduce the
      paper's wall-clock comparison of Immediate vs Final reward *)
  machine : Machine.t;
  features : features;
  static_legality : bool;
      (** intersect the paper's syntactic action masks (§3.1.1) with the
          sound verdicts of the static dependence analysis
          ({!Legality}); on by default *)
  verify_transforms : bool;
      (** run the post-transform {!Verifier} (validate + bounds + digest
          consistency) after every accepted transformation; defaults to
          the [MLIR_RL_VERIFY] environment variable *)
  sanitize : bool;
      (** differentially execute transformed nests against their
          originals at measurement time ({!Sanitizer}); defaults to the
          [MLIR_RL_SANITIZE] environment variable *)
  footprint_features : bool;
      (** append 2·N per-level footprint / reuse-distance features to
          the observation. Changes [obs_dim] — and therefore network
          shapes and checkpoints — so off by default *)
}

val all_features : features

val default : t
(** N=7, M=5, max tile 128, D=4, L=3, tau=7, Final reward, penalty -5,
    on the paper's Xeon, static legality masking on. *)

val with_reward_mode : reward_mode -> t -> t
val with_static_legality : bool -> t -> t
val with_verify : bool -> t -> t
val with_sanitize : bool -> t -> t
val with_footprint_features : bool -> t -> t

val n_tile_choices : t -> int
(** M. *)

val obs_dim : t -> int
(** Flattened observation length: N + L*D*(N+1) + D*(N+1) + 6 + N*3*tau
    (Table 1), plus 2·N when [footprint_features] is enabled. *)

val n_transformations : int
(** The five transformation choices of the hierarchical space. *)

val validate : t -> (unit, string) result
