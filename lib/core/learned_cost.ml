type t = { cfg : Env_config.t; net : Layers.mlp }

let create ?(hidden = 128) ?(layers = 2) rng (cfg : Env_config.t) =
  let dims =
    (Env_config.obs_dim cfg :: List.init layers (fun _ -> hidden)) @ [ 1 ]
  in
  { cfg; net = Layers.mlp rng ~dims "cost_model" }

let predict t features =
  let tape = Autodiff.Tape.create () in
  let x =
    Autodiff.const tape
      (Tensor.of_array [| 1; Array.length features |] features)
  in
  let y = Layers.forward_mlp tape t.net x in
  Tensor.get (Autodiff.value y) 0

let predict_speedup t state = exp (predict t (Observation.extract t.cfg state))

type example = { features : float array; log_speedup : float }

(* One random legal episode on [op]: uniform choices over the masked
   hierarchical action space. *)
let random_state rng cfg op =
  let state = ref (Sched_state.init op) in
  let steps = 1 + Util.Rng.int rng cfg.Env_config.tau in
  (try
     for _ = 1 to steps do
       if Sched_state.is_done !state then raise Exit;
       let masks = Action_space.masks cfg !state in
       let valid =
         List.filter
           (fun i -> masks.Action_space.t_mask.(i))
           (List.init Env_config.n_transformations (fun i -> i))
       in
       let transform = Util.Rng.choice_list rng valid in
       let pick_row row =
         let options =
           List.filter (fun j -> row.(j)) (List.init (Array.length row) (fun j -> j))
         in
         Util.Rng.choice_list rng options
       in
       let mask_rows =
         if transform = Action_space.t_parallelize then masks.Action_space.par_mask
         else masks.Action_space.tile_mask
       in
       let tile_choices =
         Array.init cfg.Env_config.n_max (fun l -> pick_row mask_rows.(l))
       in
       let swaps =
         List.filter
           (fun j -> masks.Action_space.swap_mask.(j))
           (List.init cfg.Env_config.n_max (fun j -> j))
       in
       let swap_choice = match swaps with [] -> 0 | l -> Util.Rng.choice_list rng l in
       let action = { Action_space.transform; tile_choices; swap_choice } in
       match Action_space.to_transformation cfg !state action with
       | None -> ()
       | Some tr -> (
           match Sched_state.apply !state tr with
           | Ok st -> state := st
           | Error _ -> ())
     done
   with Exit -> ());
  !state

let collect ?(samples = 512) rng (cfg : Env_config.t) evaluator ~ops =
  Array.init samples (fun _ ->
      let op = Util.Rng.choice rng ops in
      let state = random_state rng cfg op in
      {
        features = Observation.extract cfg state;
        log_speedup = log (Float.max 1e-9 (Evaluator.speedup evaluator state));
      })

type fit_report = { initial_loss : float; final_loss : float; epochs_run : int }

let mse_loss t tape (batch : example array) =
  let b = Array.length batch in
  let d = Array.length batch.(0).features in
  let x =
    Autodiff.const tape
      (Tensor.init [| b; d |] (fun i -> batch.(i / d).features.(i mod d)))
  in
  let y = Layers.forward_mlp tape t.net x in
  let pred = Autodiff.gather_cols tape y (Array.make b 0) in
  let target =
    Autodiff.const tape
      (Tensor.init [| b |] (fun i -> batch.(i).log_speedup))
  in
  Autodiff.mean_all tape (Autodiff.square tape (Autodiff.sub tape pred target))

let fit ?(epochs = 40) ?(batch_size = 64) ?(learning_rate = 1e-3) t examples =
  if Array.length examples = 0 then
    invalid_arg "Learned_cost.fit: empty dataset";
  let params = Layers.mlp_params t.net in
  let optimizer = Optim.adam ~lr:learning_rate params in
  let rng = Util.Rng.create 12345 in
  let indices = Array.init (Array.length examples) (fun i -> i) in
  let epoch_loss () =
    let tape = Autodiff.Tape.create () in
    Tensor.get (Autodiff.value (mse_loss t tape examples)) 0
  in
  let initial_loss = epoch_loss () in
  for _epoch = 1 to epochs do
    Util.Rng.shuffle rng indices;
    let pos = ref 0 in
    while !pos < Array.length indices do
      let size = min batch_size (Array.length indices - !pos) in
      let batch = Array.init size (fun i -> examples.(indices.(!pos + i))) in
      pos := !pos + size;
      let tape = Autodiff.Tape.create () in
      let loss = mse_loss t tape batch in
      Optim.zero_grad optimizer;
      Autodiff.backward tape loss;
      ignore (Optim.clip_grad_norm optimizer 5.0);
      Optim.step optimizer
    done
  done;
  { initial_loss; final_loss = epoch_loss (); epochs_run = epochs }

let rank_correlation t examples =
  let n = Array.length examples in
  if n < 2 then invalid_arg "Learned_cost.rank_correlation: need >= 2 examples";
  let ranks values =
    let idx = Array.init n (fun i -> i) in
    Array.sort (fun a b -> compare values.(a) values.(b)) idx;
    let r = Array.make n 0.0 in
    Array.iteri (fun rank i -> r.(i) <- float_of_int rank) idx;
    r
  in
  let preds = Array.map (fun e -> predict t e.features) examples in
  let targets = Array.map (fun e -> e.log_speedup) examples in
  let rp = ranks preds and rt = ranks targets in
  let mean r = Array.fold_left ( +. ) 0.0 r /. float_of_int n in
  let mp = mean rp and mt = mean rt in
  let cov = ref 0.0 and vp = ref 0.0 and vt = ref 0.0 in
  for i = 0 to n - 1 do
    let dp = rp.(i) -. mp and dt = rt.(i) -. mt in
    cov := !cov +. (dp *. dt);
    vp := !vp +. (dp *. dp);
    vt := !vt +. (dt *. dt)
  done;
  if !vp = 0.0 || !vt = 0.0 then 0.0 else !cov /. sqrt (!vp *. !vt)
