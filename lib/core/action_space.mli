(** Action spaces: the paper's Hierarchical space and the flat Simple
    space used in the Figure 8 ablation.

    {b Hierarchical} (§4.1): an action is a tuple — first a
    transformation (tiling, parallelization, interchange, im2col,
    vectorization), then its parameters from per-transformation
    sub-spaces: one tile-size choice per loop out of the M-entry menu
    (Cartesian product over loops), or one of the N-1 adjacent-swap
    permutations. The whole space is the Cartesian product of these
    sub-spaces rather than a flat enumeration.

    {b Simple} (§5.4.2): a fixed flat menu of pre-combined
    transformations (uniform tilings/parallelizations at a few sizes,
    each adjacent swap, im2col, vectorize). *)

(* -- transformation indices of the hierarchical head -- *)

val t_tile : int
val t_parallelize : int
val t_interchange : int
val t_im2col : int
val t_vectorize : int

val transformation_label : int -> string

type hierarchical = {
  transform : int;  (** 0..4 *)
  tile_choices : int array;
  (** length [n_max]; menu index per loop — read when [transform] is
      tiling or parallelization *)
  swap_choice : int;  (** read when [transform] is interchange *)
}

val slot_sizes : Env_config.t -> Sched_state.t -> int array array
(** [slot_sizes cfg state] has shape (n_point_loops, M): the concrete
    tile size each slot selects for each point loop — slot 0 is 0 (no
    tiling); slots 1.. are the loop's largest divisors not exceeding
    [max_tile_size], in decreasing order; trailing slots with no
    divisor left hold 0. This realizes the paper's restriction of tile
    sizes to divisors of the loop bounds. *)

type masks = {
  t_mask : bool array;  (** length 5 *)
  tile_mask : bool array array;  (** n_max x M, valid tile slots *)
  par_mask : bool array array;
  (** n_max x M: like [tile_mask] but reduction dims only admit slot 0
      (parallelizing a reduction would race on the accumulator) *)
  swap_mask : bool array;  (** length n_max; entry i = swap (i, i+1) ok *)
}

val masks : Env_config.t -> Sched_state.t -> masks
(** The paper's action mask (§3.1.1): parallelization at most once,
    vectorization always available (and terminal), im2col only on
    untransformed convolutions, tile slots restricted to divisors,
    padded loops restricted to "no tiling". *)

val to_transformation :
  Env_config.t ->
  Sched_state.t ->
  hierarchical ->
  Schedule.transformation option
(** Convert a sampled action to a schedule step. [None] when the action
    is a no-op (an all-zero tiling vector). Raises [Invalid_argument] on
    an out-of-range transformation index. *)

val cardinality : Env_config.t -> n_loops:int -> float
(** Size of the flat action space the hierarchical product replaces:
    M^n + M^n + n! + 2 (§3.1), as a float since it overflows quickly. *)

(* -- the simple (flat) space of the ablation -- *)

type simple_item = { label : string; transformation : Schedule.transformation }

val simple_menu : Env_config.t -> n_loops:int -> simple_item array
(** The fixed menu for ops with [n_loops] iteration dims: uniform
    tilings and parallelizations at sizes 16/32/64 (per-loop sizes are
    zeroed where they do not divide), each adjacent swap, im2col,
    vectorize. *)

val simple_mask : Env_config.t -> Sched_state.t -> simple_item array -> bool array
(** Which menu entries are currently legal. When
    [cfg.static_legality] is on, the syntactic conditions are
    intersected with the dependence-analysis verdicts ({!Legality}). *)

(* -- static legality context -- *)

type legality_ctx
(** Dependence-analysis verdicts for one [Sched_state.t] nest, plus the
    point-band offset translating point-loop indices to absolute loop
    positions. Recompute after every transformation — verdicts describe
    one specific nest. *)

val legality_of : Env_config.t -> Sched_state.t -> legality_ctx option
(** [None] when [cfg.static_legality] is off — all static checks then
    default to permissive, leaving only the paper's syntactic masks. *)

val swap_legal : ?ctx:legality_ctx -> Sched_state.t -> int -> bool
(** Can point loops (i, i+1) be swapped? The single adjacent-swap
    condition both [masks] and [simple_mask] route through: interchange
    still available this episode, index in range, and (with [ctx]) no
    dependence direction reversed by the swap. *)

val legalize :
  ?ctx:legality_ctx ->
  Sched_state.t ->
  Schedule.transformation ->
  Schedule.transformation option
(** Fix up a menu transformation for the current state: tile sizes that
    do not divide their loop's trip count are zeroed; parallel sizes
    additionally zeroed on reduction dims and (with [ctx]) on loops the
    dependence analysis cannot prove parallel; [None] when nothing
    remains, a swap index is out of range, or the static verdict rejects
    the transformation outright. *)
