(** Process-global surrogate activity counters (verifier-style atomics):
    candidates scored by the surrogate, candidates handed to the exact
    model for re-ranking, and staged searches run. Forked search
    workers share them; serve [/stats] and Prometheus read them. *)

val add_scored : int -> unit
val add_reranked : int -> unit
val incr_searches : unit -> unit

type stats = { scored : int; reranked : int; searches : int }

val stats : unit -> stats
val reset : unit -> unit
