(* The learned latency predictor: a small, deterministic MLP regressor
   on log-seconds over {!Features} vectors, built from the existing nn
   stack (Bigarray tensors, tape autodiff, Adam).

   Inputs are standardized with mean/std computed on the training split
   and stored in the checkpoint; the target is standardized log-seconds
   (only relative ranking matters to the staged search, but a centered
   target trains far faster). Training is seeded end to end — same log,
   same seed, same hyperparameters => bit-identical weights.

   Checkpoints are a single versioned text file (hex floats, so values
   round-trip exactly) written through {!Util.Atomic_file}. *)

type t = {
  net : Layers.mlp;
  hidden : int list;
  f_mean : float array;
  f_std : float array;
  mutable t_mean : float;
  mutable t_std : float;
}

let default_hidden = [ 24; 12 ]

let create ?(hidden = default_hidden) ~seed () =
  let rng = Util.Rng.create seed in
  {
    net = Layers.mlp rng ~dims:((Features.dim :: hidden) @ [ 1 ]) "surrogate";
    hidden;
    f_mean = Array.make Features.dim 0.0;
    f_std = Array.make Features.dim 1.0;
    t_mean = 0.0;
    t_std = 1.0;
  }

let params t = Layers.mlp_params t.net
let net t = t.net
let feature_mean t = t.f_mean
let feature_std t = t.f_std
let target_mean t = t.t_mean
let target_std t = t.t_std

let log_seconds (e : Dataset_log.entry) =
  log (Float.max 1e-12 e.Dataset_log.seconds)

(* Deterministic ~20% validation split by digest hash — stable across
   runs and across log growth (an entry never migrates between splits). *)
let is_val (e : Dataset_log.entry) =
  Hashtbl.hash (e.Dataset_log.digest ^ "|" ^ e.Dataset_log.machine) mod 10 >= 8

let split entries =
  let l = Array.to_list entries in
  let v, tr = List.partition is_val l in
  (Array.of_list tr, Array.of_list v)

let normalize_features t (e : Dataset_log.entry) =
  Array.mapi
    (fun i f -> (f -. t.f_mean.(i)) /. t.f_std.(i))
    e.Dataset_log.features

let predict_normalized t x_norm =
  let tape = Autodiff.Tape.create () in
  let x = Autodiff.const tape (Tensor.of_array [| 1; Features.dim |] x_norm) in
  let y = Layers.forward_mlp tape t.net x in
  Tensor.get (Autodiff.value y) 0

let predict t features =
  let x = Array.mapi (fun i f -> (f -. t.f_mean.(i)) /. t.f_std.(i)) features in
  (predict_normalized t x *. t.t_std) +. t.t_mean

(* Tape-free batched prediction: one [n; dim] forward. With [?ws] the
   activations (and the returned predictions) live in the workspace —
   steady state allocates only the result array. *)
let predict_batch ?ws t (features : float array array) =
  let n = Array.length features in
  if n = 0 then [||]
  else begin
    let d = Features.dim in
    let x =
      Tensor.init [| n; d |] (fun i ->
          let row = i / d and col = i mod d in
          (features.(row).(col) -. t.f_mean.(col)) /. t.f_std.(col))
    in
    let y = Layers.forward_batch ?ws t.net x in
    Array.init n (fun i -> (Tensor.get y i *. t.t_std) +. t.t_mean)
  end

let mse_loss t tape (xs : float array array) (ys : float array) =
  let b = Array.length xs in
  let d = Features.dim in
  let x =
    Autodiff.const tape (Tensor.init [| b; d |] (fun i -> xs.(i / d).(i mod d)))
  in
  let out = Layers.forward_mlp tape t.net x in
  let pred = Autodiff.gather_cols tape out (Array.make b 0) in
  let target = Autodiff.const tape (Tensor.init [| b |] (fun i -> ys.(i))) in
  Autodiff.mean_all tape (Autodiff.square tape (Autodiff.sub tape pred target))

type report = {
  examples : int;
  train_examples : int;
  val_examples : int;
  epochs_run : int;
  train_losses : float array;  (** normalized MSE after each epoch *)
  val_losses : float array;  (** normalized val MSE after each epoch *)
  initial_val_loss : float;  (** before the first update *)
  spearman : float;  (** rank correlation on the val split *)
}

let eval_loss t entries =
  if Array.length entries = 0 then 0.0
  else begin
    let xs = Array.map (normalize_features t) entries in
    let ys =
      Array.map (fun e -> (log_seconds e -. t.t_mean) /. t.t_std) entries
    in
    let tape = Autodiff.Tape.create () in
    Tensor.get (Autodiff.value (mse_loss t tape xs ys)) 0
  end

let spearman t entries =
  let n = Array.length entries in
  if n < 2 then 0.0
  else begin
    let preds = Array.map (fun e -> predict t e.Dataset_log.features) entries in
    let targets = Array.map log_seconds entries in
    let ranks values =
      let idx = Array.init n (fun i -> i) in
      Array.sort (fun a b -> compare values.(a) values.(b)) idx;
      let r = Array.make n 0.0 in
      Array.iteri (fun rank i -> r.(i) <- float_of_int rank) idx;
      r
    in
    let rp = ranks preds and rt = ranks targets in
    let mean r = Array.fold_left ( +. ) 0.0 r /. float_of_int n in
    let mp = mean rp and mt = mean rt in
    let cov = ref 0.0 and vp = ref 0.0 and vt = ref 0.0 in
    for i = 0 to n - 1 do
      let dp = rp.(i) -. mp and dt = rt.(i) -. mt in
      cov := !cov +. (dp *. dt);
      vp := !vp +. (dp *. dp);
      vt := !vt +. (dt *. dt)
    done;
    if !vp = 0.0 || !vt = 0.0 then 0.0 else !cov /. sqrt (!vp *. !vt)
  end

let fit ?(epochs = 40) ?(batch_size = 64) ?(learning_rate = 1e-3) ?(seed = 7)
    t entries =
  if Array.length entries < 4 then
    invalid_arg "Surrogate.Model.fit: need at least 4 examples";
  let train, validation = split entries in
  let train = if Array.length train = 0 then entries else train in
  (* Standardization from the training split only. *)
  let d = Features.dim in
  let nt = float_of_int (Array.length train) in
  Array.fill t.f_mean 0 d 0.0;
  Array.iter
    (fun (e : Dataset_log.entry) ->
      Array.iteri
        (fun i f -> t.f_mean.(i) <- t.f_mean.(i) +. f)
        e.Dataset_log.features)
    train;
  Array.iteri (fun i s -> t.f_mean.(i) <- s /. nt) (Array.copy t.f_mean);
  let var = Array.make d 0.0 in
  Array.iter
    (fun (e : Dataset_log.entry) ->
      Array.iteri
        (fun i f ->
          let df = f -. t.f_mean.(i) in
          var.(i) <- var.(i) +. (df *. df))
        e.Dataset_log.features)
    train;
  Array.iteri
    (fun i v -> t.f_std.(i) <- Float.max 1e-6 (sqrt (v /. nt)))
    var;
  let targets = Array.map log_seconds train in
  t.t_mean <- Array.fold_left ( +. ) 0.0 targets /. nt;
  t.t_std <-
    Float.max 1e-6
      (sqrt
         (Array.fold_left
            (fun acc y ->
              let dy = y -. t.t_mean in
              acc +. (dy *. dy))
            0.0 targets
         /. nt));
  let xs = Array.map (normalize_features t) train in
  let ys = Array.map (fun y -> (y -. t.t_mean) /. t.t_std) targets in
  let optimizer = Optim.adam ~lr:learning_rate (params t) in
  let rng = Util.Rng.create seed in
  let indices = Array.init (Array.length train) (fun i -> i) in
  let initial_val_loss = eval_loss t validation in
  let train_losses = Array.make epochs 0.0 in
  let val_losses = Array.make epochs 0.0 in
  for epoch = 0 to epochs - 1 do
    Util.Rng.shuffle rng indices;
    let pos = ref 0 in
    while !pos < Array.length indices do
      let size = min batch_size (Array.length indices - !pos) in
      let bx = Array.init size (fun i -> xs.(indices.(!pos + i))) in
      let by = Array.init size (fun i -> ys.(indices.(!pos + i))) in
      pos := !pos + size;
      let tape = Autodiff.Tape.create () in
      let loss = mse_loss t tape bx by in
      Optim.zero_grad optimizer;
      Autodiff.backward tape loss;
      ignore (Optim.clip_grad_norm optimizer 5.0);
      Optim.step optimizer
    done;
    (let tape = Autodiff.Tape.create () in
     train_losses.(epoch) <- Tensor.get (Autodiff.value (mse_loss t tape xs ys)) 0);
    val_losses.(epoch) <- eval_loss t validation
  done;
  {
    examples = Array.length entries;
    train_examples = Array.length train;
    val_examples = Array.length validation;
    epochs_run = epochs;
    train_losses;
    val_losses;
    initial_val_loss;
    spearman = (if Array.length validation >= 2 then spearman t validation
                else spearman t train);
  }

(* -- checkpoint -------------------------------------------------------- *)

let format_version = 1

let save t ~path =
  Util.Atomic_file.with_out ~path (fun oc ->
      Printf.fprintf oc "surrogate-ckpt v%d\n" format_version;
      Printf.fprintf oc "dim %d\n" Features.dim;
      Printf.fprintf oc "hidden %s\n"
        (String.concat " " (List.map string_of_int t.hidden));
      let floats_line tag arr =
        output_string oc tag;
        Array.iter (fun f -> Printf.fprintf oc " %h" f) arr;
        output_char oc '\n'
      in
      floats_line "fmean" t.f_mean;
      floats_line "fstd" t.f_std;
      Printf.fprintf oc "tmean %h\n" t.t_mean;
      Printf.fprintf oc "tstd %h\n" t.t_std;
      List.iter
        (fun (p : Autodiff.Param.t) ->
          let dims = Tensor.dims p.Autodiff.Param.data in
          Printf.fprintf oc "param %s %s\n" p.Autodiff.Param.name
            (String.concat " " (Array.to_list (Array.map string_of_int dims)));
          let data = p.Autodiff.Param.data in
          for i = 0 to Tensor.numel data - 1 do
            if i > 0 then output_char oc ' ';
            Printf.fprintf oc "%h" (Tensor.get data i)
          done;
          output_char oc '\n')
        (params t);
      output_string oc "end\n")

let parse_floats ~expect s =
  let parts = List.filter (fun x -> x <> "") (String.split_on_char ' ' s) in
  let floats = List.filter_map float_of_string_opt parts in
  if List.length floats <> List.length parts then Error "bad float"
  else
    let arr = Array.of_list floats in
    if expect >= 0 && Array.length arr <> expect then
      Error (Printf.sprintf "expected %d floats, got %d" expect (Array.length arr))
    else Ok arr

let load ~path =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no such checkpoint: %s" path)
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let line () = try Some (input_line ic) with End_of_file -> None in
        let field tag =
          match line () with
          | Some l
            when String.length l > String.length tag
                 && String.sub l 0 (String.length tag + 1) = tag ^ " " ->
              Ok (String.sub l (String.length tag + 1)
                    (String.length l - String.length tag - 1))
          | Some l -> Error (Printf.sprintf "expected %S, found %S" tag l)
          | None -> Error (Printf.sprintf "truncated checkpoint at %S" tag)
        in
        let ( let* ) = Result.bind in
        let* () =
          match line () with
          | Some h when h = Printf.sprintf "surrogate-ckpt v%d" format_version ->
              Ok ()
          | Some h -> Error (Printf.sprintf "bad checkpoint header %S" h)
          | None -> Error "empty checkpoint"
        in
        let* dim_s = field "dim" in
        let* () =
          match int_of_string_opt (String.trim dim_s) with
          | Some d when d = Features.dim -> Ok ()
          | Some d ->
              Error
                (Printf.sprintf
                   "checkpoint feature dim %d does not match this build (%d)" d
                   Features.dim)
          | None -> Error "bad dim"
        in
        let* hidden_s = field "hidden" in
        let* hidden =
          let parts =
            List.filter (fun x -> x <> "") (String.split_on_char ' ' hidden_s)
          in
          let ints = List.filter_map int_of_string_opt parts in
          if List.length ints <> List.length parts || ints = [] then
            Error "bad hidden dims"
          else Ok ints
        in
        let t = create ~hidden ~seed:0 () in
        let* fmean = Result.bind (field "fmean") (parse_floats ~expect:Features.dim) in
        let* fstd = Result.bind (field "fstd") (parse_floats ~expect:Features.dim) in
        Array.blit fmean 0 t.f_mean 0 Features.dim;
        Array.blit fstd 0 t.f_std 0 Features.dim;
        let* tmean = Result.bind (field "tmean") (parse_floats ~expect:1) in
        let* tstd = Result.bind (field "tstd") (parse_floats ~expect:1) in
        t.t_mean <- tmean.(0);
        t.t_std <- tstd.(0);
        let load_param (p : Autodiff.Param.t) =
          let* header = field "param" in
          match String.split_on_char ' ' header with
          | name :: dims when name = p.Autodiff.Param.name -> (
              let shape = List.filter_map int_of_string_opt dims in
              let expected = Array.to_list (Tensor.dims p.Autodiff.Param.data) in
              if shape <> expected then
                Error (Printf.sprintf "shape mismatch for %s" name)
              else
                match line () with
                | None -> Error "truncated checkpoint (values)"
                | Some vals -> (
                    match
                      parse_floats
                        ~expect:(Tensor.numel p.Autodiff.Param.data)
                        vals
                    with
                    | Error e -> Error (Printf.sprintf "%s: %s" name e)
                    | Ok arr ->
                        Array.iteri (Tensor.set p.Autodiff.Param.data) arr;
                        Ok ()))
          | name :: _ ->
              Error
                (Printf.sprintf "expected parameter %s, found %s"
                   p.Autodiff.Param.name name)
          | [] -> Error "bad param record"
        in
        let rec load_all = function
          | [] -> (
              match line () with
              | Some "end" -> Ok t
              | _ -> Error "missing end marker")
          | p :: rest ->
              let* () = load_param p in
              load_all rest
        in
        load_all (params t))
  end
