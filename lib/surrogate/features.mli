(** Fixed-width feature vectors for the learned latency surrogate.

    A vector is three concatenated blocks — machine descriptor, static
    op block, schedule encoding — so the same vector can be produced
    from a logged {!Sched_state.t} (collection time) or from an op and
    a candidate {!Schedule.t} (ranking time, without applying the
    candidate). Per-loop statistics reuse the shared {!Nest_stats}
    helpers (the observation's loop-info and footprint blocks) and the
    op block embeds the analytical cost model's own terms for the
    canonical nest, so the model learns the residual effect of the
    schedule rather than re-deriving the baseline. *)

val max_dims : int
(** Loop dims encoded per block (8); deeper nests are truncated. *)

val machine_dim : int

val op_dim : int

val schedule_dim : int

val dim : int
(** Total vector width = [machine_dim + op_dim + schedule_dim]. *)

val machine_block : Machine.t -> float array
(** Cache sizes, cores, SIMD, frequency, latencies, bandwidths —
    normalized; length [machine_dim]. *)

val op_block : Linalg.t -> float array
(** Static features of the untransformed op: log-trip counts and
    iteration kinds, per-level footprints/reuse distances of the
    canonical nest, math-op mix, and cost-model priors (base seconds,
    compute cycles, per-level miss lines, measured on a fixed reference
    machine so the block is machine-independent and cacheable). Length
    [op_dim]. Relatively expensive — cache it per op ({!cached_op_block}). *)

val schedule_block_into : float array -> Schedule.t -> unit
(** {!schedule_block} into a caller-owned buffer of length
    [schedule_dim] (cleared first) — the batched ranker encodes tens of
    thousands of schedules per search and reuses one buffer. *)

val schedule_block : Schedule.t -> float array
(** Per-dim tile/parallel sizes (last write wins), the final loop
    permutation implied by swaps/interchanges, im2col / vectorize /
    unroll flags and step count — computed from the schedule alone, no
    transformation is applied. Length [schedule_dim]. *)

val assemble :
  machine:float array -> op:float array -> sched:float array -> float array
(** Concatenate pre-computed blocks (validates widths). *)

val of_schedule : machine:Machine.t -> Linalg.t -> Schedule.t -> float array
(** Convenience: all three blocks from scratch. *)

val of_state : machine:Machine.t -> Sched_state.t -> float array
(** The vector of a schedule state:
    [of_schedule ~machine state.original state.applied] — identical by
    construction to what ranking time produces for the same candidate. *)

type cache
(** A domain-safe op-block memo, keyed by {!Linalg.digest}. *)

val create_cache : ?capacity:int -> unit -> cache

val cached_op_block : cache -> Linalg.t -> float array
