(** The learned latency predictor: a deterministic seeded MLP regressor
    on log-seconds over {!Features} vectors, trained on {!Dataset_log}
    entries with the existing nn stack.

    Inputs and target are standardized with statistics computed on the
    training split and stored alongside the weights, so a loaded
    checkpoint predicts identically to the model that was saved.
    Training is seeded end to end: the same log, seed and
    hyperparameters produce bit-identical weights. *)

type t

val default_hidden : int list
(** [\[24; 12\]] — sized so a batched stage-1 forward stays several
    times cheaper per candidate than the exact path. *)

val create : ?hidden:int list -> seed:int -> unit -> t
(** Fresh Xavier-initialized model for {!Features.dim}-wide inputs. *)

val params : t -> Autodiff.Param.t list

val net : t -> Layers.mlp
(** The underlying MLP, for callers running their own forward passes
    (the ranker's workspace-backed scoring loop). *)

val feature_mean : t -> float array
val feature_std : t -> float array
val target_mean : t -> float
val target_std : t -> float
(** Stored standardization statistics (see {!fit}). *)

val is_val : Dataset_log.entry -> bool
(** Deterministic ~20% validation membership by (digest | machine)
    hash — stable across runs and as the log grows. *)

val split : Dataset_log.entry array -> Dataset_log.entry array * Dataset_log.entry array
(** [(train, validation)] partition by {!is_val}. *)

type report = {
  examples : int;
  train_examples : int;
  val_examples : int;
  epochs_run : int;
  train_losses : float array;  (** normalized MSE after each epoch *)
  val_losses : float array;  (** normalized val MSE after each epoch *)
  initial_val_loss : float;  (** before the first update *)
  spearman : float;  (** rank correlation on the val split *)
}

val fit :
  ?epochs:int ->
  ?batch_size:int ->
  ?learning_rate:float ->
  ?seed:int ->
  t ->
  Dataset_log.entry array ->
  report
(** Adam on standardized log-seconds MSE (shuffled minibatches,
    gradient-norm clipping at 5.0). Computes and stores the
    normalization statistics from the training split. Raises
    [Invalid_argument] on fewer than 4 examples. *)

val eval_loss : t -> Dataset_log.entry array -> float
(** Normalized MSE of the current model on the given entries. *)

val spearman : t -> Dataset_log.entry array -> float
(** Spearman rank correlation between predictions and measured
    log-seconds; 0.0 for fewer than 2 entries. *)

val predict : t -> float array -> float
(** Predicted log-seconds for one raw (unnormalized) feature vector. *)

val predict_batch : ?ws:Tensor.Workspace.t -> t -> float array array -> float array
(** One batched forward over many feature vectors. With [?ws] the
    activations are drawn from the workspace — steady state allocates
    only the result array. Bit-identical to mapping {!predict}. *)

val save : t -> path:string -> unit
(** Write a single versioned checkpoint file atomically (hex floats:
    weights and normalization round-trip exactly). *)

val load : path:string -> (t, string) result
(** Parse a checkpoint written by {!save}. Errors on a missing file,
    version/feature-dim mismatch with this build, or any malformed or
    truncated record. *)
