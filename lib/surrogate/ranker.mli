(** Staged-search ranker: a trained {!Model} packaged for scoring
    thousands of candidate schedules per op.

    Scoring never applies a candidate's transformations — features come
    from a memoized per-op static block plus a cheap encoding of the
    schedule itself — and predictions are memoized in a bounded
    ranker-private cache the evaluator can surface in its unified cache
    statistics. The
    reused forward-pass buffers are mutex-guarded, so one ranker may be
    shared across domains. *)

type t

val default_cache_capacity : int
(** Prediction-cache capacity (65536 entries). *)

val create : ?cache_capacity:int -> machine:Machine.t -> Model.t -> t

val of_checkpoint :
  ?cache_capacity:int ->
  machine:Machine.t ->
  path:string ->
  unit ->
  (t, string) result
(** {!Model.load} + {!create}. *)

val machine : t -> Machine.t
val model : t -> Model.t

val cache_stats : t -> Util.Sharded_cache.stats
(** Hit/miss/eviction counters of the ranker-private prediction memo
    (reported in the {!Util.Sharded_cache.stats} shape so it plugs into
    the evaluator's unified cache rendering; [shards = 1]). *)

val attach : t -> Evaluator.t -> unit
(** Expose this ranker's prediction cache as the evaluator's surrogate
    cache group ({!Evaluator.attach_surrogate_cache}), so CLI stderr
    and serve [/stats] report its hit rates alongside base/state. *)

val score_features : t -> float array -> float
(** Predicted log-seconds for a raw feature vector (uncached; counts
    toward {!Counters}). *)

val score_schedule : t -> Linalg.t -> Schedule.t -> float
(** Predicted log-seconds of running [op] under [sched] — memoized by
    (per-ranker op id | schedule); no transformation is applied. *)

val score_state : t -> Sched_state.t -> float
(** [score_schedule] on the state's original op and applied schedule,
    with vectorization virtually appended (beam search's exact scorer
    does the same before consulting the oracle). *)

val score_schedules : t -> Linalg.t -> Schedule.t array -> float array
(** Batched stage-1 scoring: cached predictions answer repeats, and all
    misses run through a single forward — one [m; dim] matmul per layer
    instead of [m] tiny ones — which amortizes the network cost to well
    under the exact path's per-candidate price. *)

val score_states : t -> Sched_state.t array -> float array
(** [score_schedules] over the states' virtually-vectorized schedules
    (the states must share one original op, as a beam's children do). *)

val schedule_scorer : t -> Linalg.t -> Schedule.t array -> float array
(** Closure view for {!Auto_scheduler.search_staged} (the autosched
    layer cannot depend on this library). *)

val state_scorer : t -> Sched_state.t array -> float array
(** Closure view for beam search. *)
