(* The staged-search ranker: wraps a trained {!Model} with everything a
   search loop needs to score thousands of candidates per op cheaply —

   - the machine block is computed once at construction;
   - op blocks are memoized per op digest ({!Features.cache});
   - predictions are memoized in a ranker-private table keyed
     "<op id>|<schedule dedup key>" — the cache belongs to one ranker,
     whose machine is fixed, so a small per-ranker op id replaces the
     full digest and machine name. One mutex guards the whole table:
     the batched path locks it once per few thousand candidates, which
     beats per-key shard locking, and the stats it reports plug into
     the evaluator's unified cache stats
     ({!Evaluator.attach_surrogate_cache});
   - the forward pass reuses one [1; dim] input tensor and a workspace,
     so a steady-state score allocates almost nothing.

   Scoring a candidate never applies its transformations: the feature
   vector comes from (cached op block, schedule encoding, machine
   block) alone. That is what buys the staged search its throughput —
   stage 1 skips both [Sched_state.apply] and the cost model, and only
   the top-k survivors pay for the exact path. *)

type t = {
  model : Model.t;
  machine : Machine.t;
  machine_blk : float array;
  op_blocks : Features.cache;
  (* memo state below is guarded by cache_mutex (NOT forward_mutex:
     the single-score path computes under the memo's miss handler and
     must be free to take the forward lock) *)
  cache_mutex : Mutex.t;
  op_ids : (string, string) Hashtbl.t;  (* op digest -> "<n>|" prefix *)
  predictions : (string, float) Hashtbl.t;
  fifo : string Queue.t;  (* insertion order, for capacity eviction *)
  capacity : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable lock_waits : int;  (* cache_mutex acquisitions that blocked *)
  (* the reused forward-pass buffers are not domain-safe on their own *)
  forward_mutex : Mutex.t;
  input : Tensor.t;  (* [1; Features.dim], refilled per score *)
  ws : Tensor.Workspace.t;
}

let default_cache_capacity = 65_536

let create ?(cache_capacity = default_cache_capacity) ~machine model =
  {
    model;
    machine;
    machine_blk = Features.machine_block machine;
    op_blocks = Features.create_cache ();
    cache_mutex = Mutex.create ();
    op_ids = Hashtbl.create 64;
    predictions = Hashtbl.create 4096;
    fifo = Queue.create ();
    capacity = max 1 cache_capacity;
    hits = 0;
    misses = 0;
    evictions = 0;
    lock_waits = 0;
    forward_mutex = Mutex.create ();
    input = Tensor.zeros [| 1; Features.dim |];
    ws = Tensor.Workspace.create ();
  }

let of_checkpoint ?cache_capacity ~machine ~path () =
  Result.map (fun m -> create ?cache_capacity ~machine m) (Model.load ~path)

let machine t = t.machine
let model t = t.model

(* Contention-counting acquisition of the memo mutex, mirroring
   Sharded_cache: a blocked acquisition is counted once the lock is
   ours, so the counter needs no synchronization of its own. Under
   parallel search many workers funnel into this single mutex — the
   counter is what shows whether that ever matters. *)
let lock_cache t =
  if Mutex.try_lock t.cache_mutex then ()
  else begin
    Mutex.lock t.cache_mutex;
    t.lock_waits <- t.lock_waits + 1
  end

let cache_stats t : Util.Sharded_cache.stats =
  lock_cache t;
  let s =
    {
      Util.Sharded_cache.hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      contention = t.lock_waits;
      size = Hashtbl.length t.predictions;
      capacity = t.capacity;
      shards = 1;
    }
  in
  Mutex.unlock t.cache_mutex;
  s

let attach t evaluator =
  Evaluator.attach_surrogate_cache evaluator (fun () -> cache_stats t)

(* Callers hold cache_mutex. *)
let memo_add_locked t key v =
  if not (Hashtbl.mem t.predictions key) then begin
    Hashtbl.replace t.predictions key v;
    Queue.push key t.fifo;
    while Hashtbl.length t.predictions > t.capacity do
      let oldest = Queue.pop t.fifo in
      Hashtbl.remove t.predictions oldest;
      t.evictions <- t.evictions + 1
    done
  end

(* One guarded forward over the reused input tensor. Features are raw;
   normalization lives inside the model. *)
let forward t features =
  Mutex.lock t.forward_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.forward_mutex)
    (fun () ->
      let mean = Model.feature_mean t.model in
      let std = Model.feature_std t.model in
      for i = 0 to Features.dim - 1 do
        Tensor.set t.input i ((features.(i) -. mean.(i)) /. std.(i))
      done;
      (* Reset before each forward so the workspace's two activation
         buffers are recycled — a steady-state score allocates nothing. *)
      Tensor.Workspace.reset t.ws;
      let y = Layers.forward_batch ~ws:t.ws (Model.net t.model) t.input in
      (Tensor.get y 0 *. Model.target_std t.model) +. Model.target_mean t.model)

let score_features t features =
  Counters.add_scored 1;
  forward t features

(* Callers hold cache_mutex. *)
let op_prefix_locked t op =
  let digest = Linalg.digest op in
  match Hashtbl.find_opt t.op_ids digest with
  | Some p -> p
  | None ->
      let p = string_of_int (Hashtbl.length t.op_ids) ^ "|" in
      Hashtbl.add t.op_ids digest p;
      p

(* Predicted log-seconds of [sched] on [op] — no transformation is
   applied. Memoized by (op id | schedule); under a racing miss both
   threads compute and one result wins, which is observationally
   identical because the prediction is pure. *)
let score_schedule t op sched =
  lock_cache t;
  let key = op_prefix_locked t op ^ Schedule.dedup_key sched in
  let cached = Hashtbl.find_opt t.predictions key in
  (match cached with
  | Some _ -> t.hits <- t.hits + 1
  | None -> t.misses <- t.misses + 1);
  Mutex.unlock t.cache_mutex;
  match cached with
  | Some v -> v
  | None ->
      let features =
        Features.assemble ~machine:t.machine_blk
          ~op:(Features.cached_op_block t.op_blocks op)
          ~sched:(Features.schedule_block sched)
      in
      let v = score_features t features in
      lock_cache t;
      memo_add_locked t key v;
      Mutex.unlock t.cache_mutex;
      v

(* Beam search's exact scorer appends vectorization virtually before
   consulting the oracle; mirror that in the encoded schedule so the
   vectors the ranker scores look like the (vectorized) states the
   surrogate was trained on. *)
let virtual_vectorize (state : Sched_state.t) =
  let applied = state.Sched_state.applied in
  if List.mem Schedule.Vectorize applied then applied
  else applied @ [ Schedule.Vectorize ]

let score_state t (state : Sched_state.t) =
  score_schedule t state.Sched_state.original (virtual_vectorize state)

(* Batched stage-1 scoring: the memo cache answers repeats, and ALL
   misses go through one forward — one [m; dim] matmul per layer
   instead of m tiny ones, which is what amortizes the network cost to
   well under the exact path's per-candidate price. The input matrix is
   staged in the same workspace the activations use. The machine and op
   blocks are identical for every row of a batch, so their normalized
   values are computed once; only the schedule block is per-row work. *)
let score_misses t op_blk (misses : (int * Schedule.t) list) out =
  match misses with
  | [] -> ()
  | _ ->
      let m = List.length misses in
      let d = Features.dim in
      let static_dim = Features.machine_dim + Features.op_dim in
      let mean = Model.feature_mean t.model in
      let std = Model.feature_std t.model in
      let t_mean = Model.target_mean t.model in
      let t_std = Model.target_std t.model in
      Mutex.lock t.forward_mutex;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.forward_mutex)
        (fun () ->
          Tensor.Workspace.reset t.ws;
          let x = Tensor.Workspace.get t.ws [| m; d |] in
          let static =
            Array.init static_dim (fun col ->
                let v =
                  if col < Features.machine_dim then t.machine_blk.(col)
                  else op_blk.(col - Features.machine_dim)
                in
                (v -. mean.(col)) /. std.(col))
          in
          let inv_std =
            Array.init Features.schedule_dim (fun j ->
                1.0 /. std.(static_dim + j))
          in
          let sb = Array.make Features.schedule_dim 0.0 in
          List.iteri
            (fun row (_, sched) ->
              let base = row * d in
              for col = 0 to static_dim - 1 do
                Tensor.set x (base + col) static.(col)
              done;
              Features.schedule_block_into sb sched;
              for j = 0 to Features.schedule_dim - 1 do
                Tensor.set x
                  (base + static_dim + j)
                  ((sb.(j) -. mean.(static_dim + j)) *. inv_std.(j))
              done)
            misses;
          let y = Layers.forward_batch ~ws:t.ws (Model.net t.model) x in
          List.iteri
            (fun row (i, _) -> out.(i) <- (Tensor.get y row *. t_std) +. t_mean)
            misses)

let score_schedules t op (scheds : Schedule.t array) =
  let n = Array.length scheds in
  let out = Array.make n 0.0 in
  if n > 0 then begin
    let op_blk = Features.cached_op_block t.op_blocks op in
    (* One lock covers the whole lookup scan; keys are built once and
       reused for insertion. *)
    lock_cache t;
    let prefix = op_prefix_locked t op in
    let buf = Buffer.create (String.length prefix + 48) in
    let keys =
      Array.map
        (fun sched ->
          Buffer.clear buf;
          Buffer.add_string buf prefix;
          Schedule.add_dedup_key buf sched;
          Buffer.contents buf)
        scheds
    in
    let misses = ref [] in
    Array.iteri
      (fun i key ->
        match Hashtbl.find_opt t.predictions key with
        | Some v ->
            t.hits <- t.hits + 1;
            out.(i) <- v
        | None ->
            t.misses <- t.misses + 1;
            misses := (i, scheds.(i)) :: !misses)
      keys;
    Mutex.unlock t.cache_mutex;
    let misses = List.rev !misses in
    Counters.add_scored (List.length misses);
    score_misses t op_blk misses out;
    lock_cache t;
    List.iter
      (fun (i, _) -> memo_add_locked t keys.(i) out.(i))
      misses;
    Mutex.unlock t.cache_mutex
  end;
  out

let score_states t (states : Sched_state.t array) =
  match states with
  | [||] -> [||]
  | _ ->
      let op = states.(0).Sched_state.original in
      score_schedules t op (Array.map virtual_vectorize states)

(* Plain-closure views for the search layers (autosched cannot depend
   on this library, so the staged entry points take these). *)
let schedule_scorer t op : Schedule.t array -> float array =
 fun s -> score_schedules t op s

let state_scorer t : Sched_state.t array -> float array =
 fun sts -> score_states t sts
