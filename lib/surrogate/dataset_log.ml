(* Append-only evaluation log for the surrogate trainer.

   Entries are (structural digest, machine, measured seconds, feature
   vector) rows collected from the evaluator's measurement tap. The
   in-memory store dedups by (digest | machine) — with the evaluator's
   transposition cache on the tap already fires once per distinct key,
   this makes dedup hold with the cache off or across evaluators too —
   and enforces a bounded-size FIFO rotation: when full, the oldest
   entries rotate out (counted, never silently).

   Persistence is a versioned, tab-separated text file written through
   {!Util.Atomic_file} (temp + rename), so a crash mid-write leaves the
   old log intact. [save ~merge:true] folds the on-disk rows back in
   first, which is what makes repeated `surrogate collect` runs
   append-only at the file level. *)

type entry = {
  digest : string;  (** {!Sched_state.digest} of the measured nest *)
  machine : string;  (** {!Machine.t} name the measurement priced *)
  seconds : float;  (** pure pre-jitter cost-model seconds *)
  features : float array;  (** {!Features.dim}-wide vector *)
}

type t = {
  capacity : int;
  mutex : Mutex.t;
  seen : (string, unit) Hashtbl.t;  (* digest|machine *)
  queue : entry Queue.t;  (* insertion order; front = oldest *)
  mutable added : int;
  mutable duplicates : int;
  mutable rotated : int;
}

let default_capacity = 200_000

let create ?(capacity = default_capacity) () =
  if capacity <= 0 then invalid_arg "Surrogate.Dataset_log.create: capacity";
  {
    capacity;
    mutex = Mutex.create ();
    seen = Hashtbl.create 1024;
    queue = Queue.create ();
    added = 0;
    duplicates = 0;
    rotated = 0;
  }

let key e = e.digest ^ "|" ^ e.machine

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let add t e =
  locked t (fun () ->
      let k = key e in
      if Hashtbl.mem t.seen k then begin
        t.duplicates <- t.duplicates + 1;
        false
      end
      else begin
        Hashtbl.add t.seen k ();
        Queue.add e t.queue;
        t.added <- t.added + 1;
        while Queue.length t.queue > t.capacity do
          let oldest = Queue.pop t.queue in
          Hashtbl.remove t.seen (key oldest);
          t.rotated <- t.rotated + 1
        done;
        true
      end)

let length t = locked t (fun () -> Queue.length t.queue)

type stats = { added : int; duplicates : int; rotated : int; size : int }

let stats t =
  locked t (fun () ->
      {
        added = t.added;
        duplicates = t.duplicates;
        rotated = t.rotated;
        size = Queue.length t.queue;
      })

let entries t =
  locked t (fun () -> Array.of_seq (Queue.to_seq t.queue))

(* The tap: compute the feature vector for every distinct measured state
   and record it against the pure seconds. Op blocks are memoized per op
   digest in [fcache] (shared across forked evaluators via closure). *)
let attach t evaluator =
  let machine = Evaluator.machine evaluator in
  let machine_blk = Features.machine_block machine in
  let fcache = Features.create_cache () in
  Evaluator.set_measure_hook evaluator
    (Some
       (fun state ~seconds ->
         let features =
           Features.assemble ~machine:machine_blk
             ~op:
               (Features.cached_op_block fcache state.Sched_state.original)
             ~sched:(Features.schedule_block state.Sched_state.applied)
         in
         ignore
           (add t
              {
                digest = Sched_state.digest state;
                machine = machine.Machine.name;
                seconds;
                features;
              })))

let detach evaluator = Evaluator.set_measure_hook evaluator None

(* -- persistence ------------------------------------------------------- *)

let format_version = 1

let header t_dim =
  Printf.sprintf "surrogate-log v%d dim=%d" format_version t_dim

let entry_line e =
  let b = Buffer.create (32 + (Array.length e.features * 12)) in
  Buffer.add_string b e.digest;
  Buffer.add_char b '\t';
  Buffer.add_string b e.machine;
  Buffer.add_char b '\t';
  (* %h hex floats: the file round-trips bit-exactly, so training from
     a reloaded log matches training from the in-memory one. *)
  Buffer.add_string b (Printf.sprintf "%h" e.seconds);
  Buffer.add_char b '\t';
  Array.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ' ';
      Buffer.add_string b (Printf.sprintf "%h" f))
    e.features;
  Buffer.contents b

let parse_line ~expect_dim lineno line =
  match String.split_on_char '\t' line with
  | [ digest; machine; seconds_s; feats_s ] -> (
      match float_of_string_opt seconds_s with
      | None -> Error (Printf.sprintf "line %d: bad seconds" lineno)
      | Some seconds ->
          let parts =
            List.filter (fun s -> s <> "") (String.split_on_char ' ' feats_s)
          in
          let feats = List.filter_map float_of_string_opt parts in
          if List.length feats <> List.length parts then
            Error (Printf.sprintf "line %d: bad feature float" lineno)
          else
            let features = Array.of_list feats in
            if Array.length features <> expect_dim then
              Error
                (Printf.sprintf "line %d: expected %d features, got %d" lineno
                   expect_dim (Array.length features))
            else Ok { digest; machine; seconds; features })
  | _ -> Error (Printf.sprintf "line %d: expected 4 tab-separated fields" lineno)

let rec save ?(merge = true) t ~path =
  (* Merge semantics: rows already on disk keep their (older) position;
     new in-memory rows append. The capacity bound applies to the merged
     stream, dropping from the oldest end — the same FIFO rotation the
     in-memory store uses. *)
  let disk_entries =
    if merge && Sys.file_exists path then begin
      match load ~path with Ok old -> entries old | Error _ -> [||]
    end
    else [||]
  in
  let mem = entries t in
  let merged = create ~capacity:t.capacity () in
  Array.iter (fun e -> ignore (add merged e)) disk_entries;
  Array.iter (fun e -> ignore (add merged e)) mem;
  let all = entries merged in
  Util.Atomic_file.with_out ~path (fun oc ->
      output_string oc (header Features.dim);
      output_char oc '\n';
      Array.iter
        (fun e ->
          output_string oc (entry_line e);
          output_char oc '\n')
        all);
  Array.length all

and load ~path =
  match open_in path with
  | exception Sys_error e -> Error e
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match input_line ic with
          | exception End_of_file -> Error "empty log file"
          | first -> (
              match
                Scanf.sscanf_opt first "surrogate-log v%d dim=%d" (fun v d ->
                    (v, d))
              with
              | None -> Error "not a surrogate log (bad header)"
              | Some (v, _) when v <> format_version ->
                  Error (Printf.sprintf "unsupported log version %d" v)
              | Some (_, d) when d <> Features.dim ->
                  Error
                    (Printf.sprintf
                       "feature dim %d does not match this build (%d)" d
                       Features.dim)
              | Some (_, d) -> (
                  let t = create () in
                  let rec go lineno =
                    match input_line ic with
                    | exception End_of_file -> Ok t
                    | line when String.trim line = "" -> go (lineno + 1)
                    | line -> (
                        match parse_line ~expect_dim:d lineno line with
                        | Error e -> Error e
                        | Ok entry ->
                            ignore (add t entry);
                            go (lineno + 1))
                  in
                  go 2)))
