(* Fixed-width feature vectors for the learned latency surrogate.

   A vector has three blocks:

   - machine block: the cache hierarchy / parallelism / bandwidth
     descriptors of a {!Machine.t}, so one model conditions on several
     machine profiles;
   - op block: static features of the UNTRANSFORMED op — trip counts and
     iteration kinds, math-op mix, per-level footprints and reuse
     distances of the canonical nest (the shared {!Nest_stats} helpers
     Observation also uses), and the analytical cost model's own terms
     for the canonical nest (compute cycles, per-level miss lines, base
     seconds). Everything here depends only on the op, so rankers
     compute it once per op and reuse it for thousands of candidates;
   - schedule block: a cheap encoding of the candidate schedule itself
     (per-dim tile/parallel sizes, the final loop permutation, im2col /
     vectorize flags), derived from the [Schedule.t] alone — scoring a
     candidate never applies its transformations.

   The same vector is produced two ways: [of_state] at logging time
   (from the evaluator's measurement tap) and [of_schedule] at ranking
   time (from the op and a candidate). Both decompose into the same
   (machine, op, schedule) parts, so they agree by construction. *)

let max_dims = 8
let machine_dim = 10
(* trips + iter kinds + per-level footprint/reuse (2*max_dims) + math
   mix (6) + shape scalars (6) + cost-model priors (6) *)
let op_dim = (4 * max_dims) + 18
let schedule_dim = (3 * max_dims) + 4
let dim = machine_dim + op_dim + schedule_dim

let log2 = Nest_stats.log2
let log2_norm64 x = log2 (1.0 +. x) /. 64.0

let machine_block (m : Machine.t) =
  [|
    log2 (float_of_int m.Machine.l1.Machine.size_bytes) /. 32.0;
    log2 (float_of_int m.Machine.l2.Machine.size_bytes) /. 32.0;
    log2 (float_of_int m.Machine.l3.Machine.size_bytes) /. 32.0;
    log2 (float_of_int m.Machine.cores) /. 8.0;
    log2 (float_of_int m.Machine.vector_lanes) /. 8.0;
    m.Machine.vector_flops_per_cycle /. 64.0;
    m.Machine.freq_ghz /. 4.0;
    m.Machine.mem_latency_cycles /. 256.0;
    m.Machine.single_core_bw_gbs /. 32.0;
    m.Machine.total_bw_gbs /. 256.0;
  |]

let op_block (op : Linalg.t) =
  let out = Array.make op_dim 0.0 in
  let trips = Linalg.loop_bounds op in
  Array.iteri
    (fun i trip ->
      if i < max_dims then out.(i) <- Nest_stats.log2_trip_norm trip)
    trips;
  Array.iteri
    (fun i kind ->
      if i < max_dims then
        out.(max_dims + i) <-
          (match kind with
          | Linalg.Reduction_iter -> 1.0
          | Linalg.Parallel_iter -> 0.0))
    op.Linalg.iter_kinds;
  let nest = Lower.to_loop_nest op in
  Array.blit
    (Nest_stats.band_footprint_features ~n_max:max_dims nest)
    0 out (2 * max_dims) (2 * max_dims);
  let o = 4 * max_dims in
  Array.iteri
    (fun i c -> out.(o + i) <- float_of_int c /. 4.0)
    (Linalg.math_op_counts op);
  (* Cost-model terms of the canonical nest — the surrogate gets the
     analytical model's own view of the untransformed op as priors
     (base seconds, compute cycles, per-level traffic), so it only has
     to learn the residual effect of the schedule. *)
  let report =
    Cost_model.estimate ~machine:Machine.e5_2680_v4
      ~iter_kinds:op.Linalg.iter_kinds nest
  in
  let o = o + 6 in
  out.(o) <- float_of_int (Linalg.n_loops op) /. 16.0;
  out.(o + 1) <- log2_norm64 (float_of_int (Linalg.iteration_count op));
  out.(o + 2) <- float_of_int (Linalg.flops_per_point op) /. 8.0;
  out.(o + 3) <- (if Linalg.is_conv op then 1.0 else 0.0);
  out.(o + 4) <- float_of_int (Array.length op.Linalg.inputs) /. 4.0;
  out.(o + 5) <- log2_norm64 (report.Cost_model.seconds *. 1e12);
  let o = o + 6 in
  out.(o) <- log2_norm64 report.Cost_model.compute_cycles;
  List.iteri
    (fun i (lt : Cost_model.level_traffic) ->
      if i < 4 then out.(o + 1 + i) <- log2_norm64 lt.Cost_model.miss_lines)
    report.Cost_model.traffic;
  out.(o + 5) <- report.Cost_model.parallel_factor /. 64.0;
  out

(* log2(size)/8 for transformation sizes, like the observation's history
   block (sizes are <= 256). *)
let size_norm size = if size <= 0 then 0.0 else log2 (float_of_int size) /. 8.0

let schedule_block_into (out : float array) (sched : Schedule.t) =
  Array.fill out 0 schedule_dim 0.0;
  (* pos.(j) = current position of original point loop j; swaps and
     interchanges permute it. *)
  let pos = Array.init max_dims (fun j -> j) in
  let n_steps = ref 0 in
  List.iter
    (fun (tr : Schedule.transformation) ->
      incr n_steps;
      match tr with
      | Schedule.Tile sizes ->
          Array.iteri
            (fun l size ->
              if l < max_dims && size > 0 then out.(l) <- size_norm size)
            sizes
      | Schedule.Parallelize sizes ->
          Array.iteri
            (fun l size ->
              if l < max_dims && size > 0 then
                out.(max_dims + l) <- size_norm size)
            sizes
      | Schedule.Swap i ->
          if i >= 0 && i + 1 < max_dims then begin
            Array.iteri
              (fun j p ->
                if p = i then pos.(j) <- i + 1
                else if p = i + 1 then pos.(j) <- i)
              (Array.copy pos)
          end
      | Schedule.Interchange perm ->
          let old = Array.copy pos in
          Array.iteri
            (fun j p ->
              if j < max_dims && p >= 0 && p < max_dims then
                Array.iteri
                  (fun k pk -> if pk = j then pos.(k) <- p)
                  old)
            perm
      | Schedule.Im2col -> out.((3 * max_dims) + 0) <- 1.0
      | Schedule.Vectorize -> out.((3 * max_dims) + 1) <- 1.0
      | Schedule.Unroll f -> out.((3 * max_dims) + 2) <- size_norm f)
    sched;
  Array.iteri
    (fun j p -> out.((2 * max_dims) + j) <- float_of_int p /. 8.0)
    pos;
  out.((3 * max_dims) + 3) <- float_of_int !n_steps /. 8.0

let schedule_block (sched : Schedule.t) =
  let out = Array.make schedule_dim 0.0 in
  schedule_block_into out sched;
  out

let assemble ~machine ~op ~sched =
  if
    Array.length machine <> machine_dim
    || Array.length op <> op_dim
    || Array.length sched <> schedule_dim
  then invalid_arg "Surrogate.Features.assemble: block size mismatch";
  Array.concat [ machine; op; sched ]

let of_schedule ~machine op sched =
  assemble ~machine:(machine_block machine) ~op:(op_block op)
    ~sched:(schedule_block sched)

let of_state ~machine (state : Sched_state.t) =
  of_schedule ~machine state.Sched_state.original state.Sched_state.applied

(* Op blocks are expensive relative to the rest (a Footprint pass and a
   cost-model estimate), and every consumer prices thousands of states
   of a handful of ops — memoize by op digest, domain-safe because the
   evaluator's measurement tap may fire from forked workers. *)
type cache = (string, float array) Util.Sharded_cache.t

let create_cache ?(capacity = 512) () = Util.Sharded_cache.create ~capacity ()

let cached_op_block cache op =
  Util.Sharded_cache.find_or_compute cache (Linalg.digest op) (fun () ->
      op_block op)
