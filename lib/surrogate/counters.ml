(* Process-global surrogate activity counters, mirroring the verifier /
   sanitizer pattern in lib/analysis: plain atomics so forked search
   workers share them, and serving / CLI stats read them at render
   time. All zero unless a staged search actually ran a surrogate. *)

let scored_ctr = Atomic.make 0
let reranked_ctr = Atomic.make 0
let searches_ctr = Atomic.make 0

let add_scored n = ignore (Atomic.fetch_and_add scored_ctr n)
let add_reranked n = ignore (Atomic.fetch_and_add reranked_ctr n)
let incr_searches () = Atomic.incr searches_ctr

type stats = { scored : int; reranked : int; searches : int }

let stats () =
  {
    scored = Atomic.get scored_ctr;
    reranked = Atomic.get reranked_ctr;
    searches = Atomic.get searches_ctr;
  }

let reset () =
  Atomic.set scored_ctr 0;
  Atomic.set reranked_ctr 0;
  Atomic.set searches_ctr 0
