(** Append-only evaluation log feeding the surrogate trainer.

    Rows are (structural digest, machine name, pure pre-jitter seconds,
    feature vector) tuples collected from the evaluator's measurement
    tap ({!Evaluator.set_measure_hook}). Deduplicated by
    (digest | machine); bounded by a FIFO rotation policy; persisted as
    a versioned tab-separated text file (hex floats, so rows round-trip
    bit-exactly) through {!Util.Atomic_file}. *)

type entry = {
  digest : string;  (** {!Sched_state.digest} of the measured nest *)
  machine : string;  (** {!Machine.t} name the measurement priced *)
  seconds : float;  (** pure pre-jitter cost-model seconds *)
  features : float array;  (** {!Features.dim}-wide vector *)
}

type t

val default_capacity : int
(** 200_000 entries. *)

val create : ?capacity:int -> unit -> t
(** An empty in-memory log. [capacity] bounds it: adding beyond rotates
    the oldest entries out. Thread-safe — the evaluator tap may fire
    from forked worker domains. *)

val add : t -> entry -> bool
(** [false] when the (digest | machine) key was already present. *)

val length : t -> int

type stats = {
  added : int;  (** distinct entries accepted so far *)
  duplicates : int;  (** adds rejected by dedup *)
  rotated : int;  (** entries dropped by the capacity bound *)
  size : int;  (** live entries *)
}

val stats : t -> stats

val entries : t -> entry array
(** Snapshot in insertion order (oldest first). *)

val attach : t -> Evaluator.t -> unit
(** Install this log as the evaluator's measurement tap: every distinct
    state-seconds computation is featurized (op blocks memoized per op
    digest) and recorded. Bit-invisible to the evaluator's consumers.
    Forked evaluators inherit the tap. *)

val detach : Evaluator.t -> unit
(** Clear the evaluator's measurement tap. *)

val save : ?merge:bool -> t -> path:string -> int
(** Atomically write the log to [path], returning the row count
    written. With [merge] (the default) rows already in the file are
    kept (file order first, deduplicated against memory), making
    repeated collection runs append-only at the file level; the
    capacity bound applies to the merged stream. *)

val load : path:string -> (t, string) result
(** Parse a file written by {!save}. Errors on a missing file, a bad
    header/version, a feature-width mismatch or a malformed row. *)
