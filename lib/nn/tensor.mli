(** Dense float64 tensors on Bigarray storage (row-major, c_layout).

    The minimal tensor type the policy networks need: rank-1/rank-2
    data, matrix multiplication, broadcasting of a bias vector over
    rows, and elementwise maps. Operations come in two tiers:

    - allocating ops ([matmul], [add], ...) return fresh tensors;
    - destination-passing [_into] twins write into a caller-supplied
      tensor — usually one drawn from a {!Workspace} arena — and are
      bit-identical to their allocating twin (same float operations in
      the same order).

    The matmul family is register- and cache-blocked but preserves the
    exact accumulation order of the naive triple loop, so kernel
    selection and the tile size never change results at the bit level
    (see docs/performance.md, "Tensor kernels"). *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

type t = { shape : int array; data : buf }

val create : int array -> float -> t
(** [create shape v] fills a new tensor with [v]. *)

val zeros : int array -> t
val ones : int array -> t

val of_array : int array -> float array -> t
(** Validates that the data length matches the shape product. *)

val to_array : t -> float array
(** Flat copy of the payload (row-major), mainly for tests. *)

val init : int array -> (int -> float) -> t
(** [init shape f] fills index [i] (flat) with [f i]. *)

val scalar : float -> t
(** Rank-1 singleton. *)

val numel : t -> int
val dims : t -> int array
val copy : t -> t

val blit : t -> t -> unit
(** [blit src dst] copies the payload of [src] into [dst] (equal sizes). *)

val reshape : int array -> t -> t
(** Same data, new shape (validated); shares no storage. *)

val get : t -> int -> float
(** Flat indexing (bounds-checked). *)

val set : t -> int -> float -> unit

val unsafe_get : t -> int -> float
(** Flat indexing without bounds checks — hot loops only. *)

val unsafe_set : t -> int -> float -> unit

val get2 : t -> int -> int -> float
(** [get2 t i j] for rank-2 tensors. *)

val set2 : t -> int -> int -> float -> unit

(** Preallocated buffer arena for destination-passing kernels.

    [get ws shape] returns the next slot, allocating only when this
    position has never been handed out or needs more capacity than it
    has (smaller requests reuse the buffer as a prefix view); [reset ws]
    rewinds the hand-out cursor without freeing. A caller that resets
    once per inference call and requests a stable shape sequence reuses
    the same buffers forever.

    Tensors returned by [get] are valid only until the owner's next
    [reset] — never store one, and never share a workspace across
    domains (give each domain its own, e.g. via [Domain.DLS]). *)
module Workspace : sig
  type tensor := t
  type t

  val create : unit -> t
  val reset : t -> unit
  val get : t -> int array -> tensor

  val slots : t -> int
  (** Number of backing buffers currently pooled. *)

  val grabs : t -> int
  (** Total [get] calls over the workspace's lifetime. *)

  val reallocs : t -> int
  (** [get] calls that had to allocate a buffer; a steady-state caller
      stops increasing this after the first pass. *)

  val live_bytes : t -> int
  (** Bytes held by the pooled buffers. *)
end

val matmul : t -> t -> t
(** [matmul a b] for shapes ([m; k], [k; n]). Raises [Invalid_argument]
    on rank or dimension mismatch. Cache-blocked (see
    {!set_matmul_block}); bit-identical to the naive i-p-j loop. *)

val matmul_into : dst:t -> t -> t -> t
(** [matmul_into ~dst a b] writes [a * b] into [dst] ([m; n]) and
    returns it. [dst] must not alias [a] or [b]. *)

val matmul_transpose_a : t -> t -> t
(** [matmul_transpose_a a b] computes [a^T * b] for a of shape [k; m]. *)

val matmul_transpose_a_into : dst:t -> t -> t -> t

val matmul_transpose_b : t -> t -> t
(** [matmul_transpose_b a b] computes [a * b^T] for b of shape [n; k]. *)

val matmul_transpose_b_into : dst:t -> t -> t -> t

val matmul_transpose_b_addto : dst:t -> t -> t -> unit
(** [matmul_transpose_b_addto ~dst a b]: dst += a * b^T, with each cell
    formed in a register and added once — bit-identical to allocating
    the product and [add_inplace]-ing it, with zero scratch. *)

val matmul_block : unit -> int
(** Current cache-tile edge (elements) for the blocked matmul. *)

val set_matmul_block : int -> unit
(** Set the tile edge (>= 4). Also settable via the [MLIR_RL_MM_BLOCK]
    environment variable at startup. Never affects results. *)

val transpose : t -> t
(** Rank-2 transpose. *)

val transpose_into : dst:t -> t -> t
(** [dst] must not alias the source. *)

val slice_cols : t -> lo:int -> hi:int -> t
(** [slice_cols t ~lo ~hi] copies columns [lo, hi) of a rank-2 tensor
    into a fresh [m; hi - lo] tensor. *)

val slice_cols_into : dst:t -> t -> lo:int -> hi:int -> t

val map : (float -> float) -> t -> t
val map_into : (float -> float) -> dst:t -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t
val map2_into : (float -> float -> float) -> dst:t -> t -> t -> t

val relu : t -> t
val relu_into : dst:t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t

val add_into : dst:t -> t -> t -> t
val sub_into : dst:t -> t -> t -> t
val mul_into : dst:t -> t -> t -> t
val scale_into : float -> dst:t -> t -> t

val add_bias : t -> t -> t
(** [add_bias x b] adds the vector [b] of shape [n] to each row of the
    rank-2 [x] of shape [m; n]. *)

val add_bias_into : dst:t -> t -> t -> t

val sum : t -> float
val mean : t -> float

val sum_rows : t -> t
(** [sum_rows x] for [m; n] input returns shape [m] row sums. *)

val sum_rows_into : dst:t -> t -> t

val argmax_row : t -> int -> int
(** Index of the max element of row [i] of a rank-2 tensor. *)

val add_inplace : t -> t -> unit
(** [add_inplace dst src]: dst += src. *)

val add_mul_inplace : t -> t -> t -> unit
(** [add_mul_inplace dst a b]: dst += a * b elementwise, fused. *)

val fill_inplace : t -> float -> unit
val scale_inplace : t -> float -> unit

val xavier_uniform : Util.Rng.t -> fan_in:int -> fan_out:int -> int array -> t
(** Glorot/Xavier uniform initialization. *)

val equal : t -> t -> bool
(** Bitwise element equality (NaN equals NaN; [0.0] differs from
    [-0.0]) — the right notion for "is this the same checkpoint". *)

val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
