(** Dense float tensors (row-major).

    The minimal tensor type the policy networks need: rank-1/rank-2 data,
    matrix multiplication, broadcasting of a bias vector over rows, and
    elementwise maps. All operations allocate fresh results; in-place
    variants used by the optimizer are suffixed [_inplace]. *)

type t = { shape : int array; data : float array }

val create : int array -> float -> t
(** [create shape v] fills a new tensor with [v]. *)

val zeros : int array -> t
val ones : int array -> t

val of_array : int array -> float array -> t
(** Validates that the data length matches the shape product. *)

val init : int array -> (int -> float) -> t
(** [init shape f] fills index [i] (flat) with [f i]. *)

val scalar : float -> t
(** Rank-1 singleton. *)

val numel : t -> int
val dims : t -> int array
val copy : t -> t

val reshape : int array -> t -> t
(** Same data, new shape (validated); shares no storage. *)

val get : t -> int -> float
(** Flat indexing. *)

val set : t -> int -> float -> unit

val get2 : t -> int -> int -> float
(** [get2 t i j] for rank-2 tensors. *)

val set2 : t -> int -> int -> float -> unit

val matmul : t -> t -> t
(** [matmul a b] for shapes ([m; k], [k; n]). Raises [Invalid_argument]
    on rank or dimension mismatch. *)

val matmul_transpose_a : t -> t -> t
(** [matmul_transpose_a a b] computes [a^T * b] for a of shape [k; m]. *)

val matmul_transpose_b : t -> t -> t
(** [matmul_transpose_b a b] computes [a * b^T] for b of shape [n; k]. *)

val transpose : t -> t
(** Rank-2 transpose. *)

val slice_cols : t -> lo:int -> hi:int -> t
(** [slice_cols t ~lo ~hi] copies columns [lo, hi) of a rank-2 tensor
    into a fresh [m; hi - lo] tensor. *)

val map : (float -> float) -> t -> t
val map2 : (float -> float -> float) -> t -> t -> t

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val scale : float -> t -> t

val add_bias : t -> t -> t
(** [add_bias x b] adds the vector [b] of shape [n] to each row of the
    rank-2 [x] of shape [m; n]. *)

val sum : t -> float
val mean : t -> float

val sum_rows : t -> t
(** [sum_rows x] for [m; n] input returns shape [m] row sums. *)

val argmax_row : t -> int -> int
(** Index of the max element of row [i] of a rank-2 tensor. *)

val add_inplace : t -> t -> unit
(** [add_inplace dst src]: dst += src. *)

val fill_inplace : t -> float -> unit
val scale_inplace : t -> float -> unit

val xavier_uniform : Util.Rng.t -> fan_in:int -> fan_out:int -> int array -> t
(** Glorot/Xavier uniform initialization. *)

val equal : t -> t -> bool
val approx_equal : ?tol:float -> t -> t -> bool
val pp : Format.formatter -> t -> unit
