(** Masked categorical distributions over network logits.

    The policy's heads produce logits; invalid actions are excluded by
    adding a large negative constant before the softmax (the paper's
    action mask, §3.1.1). Sampling is performed on values (outside the
    graph); log-probabilities and entropies are differentiable nodes. *)

val mask_penalty : float
(** Added to masked-out logits (-1e9). *)

val masked_log_probs :
  Autodiff.Tape.t -> Autodiff.node -> mask:bool array array -> Autodiff.node
(** [masked_log_probs tape logits ~mask] for logits of shape
    \[batch; k\]: row-wise log-softmax with [mask.(i).(j) = false]
    entries pushed to ~-inf. Each mask row must allow at least one
    action. *)

val masked_log_probs_values :
  ?ws:Tensor.Workspace.t -> Tensor.t -> mask:bool array array -> Tensor.t
(** Tape-free twin of {!masked_log_probs} for batched inference: same
    validation, same penalty, same max-shift log-softmax numerics, but
    on raw tensors with no gradient recording. Row [i] depends only on
    logits row [i] and mask row [i]. With [?ws] the result lives in the
    workspace (valid until its next [reset]). *)

val sample_batch : Util.Rng.t array -> Tensor.t -> int array
(** [sample_batch rngs log_probs] draws one action per row of a
    \[batch; k\] log-probability tensor, row [i] using [rngs.(i)] —
    exactly one uniform per row, so per-row streams stay independent of
    the batch composition. *)

val sample : Util.Rng.t -> Tensor.t -> int -> int
(** [sample rng log_probs row] draws an index from the categorical
    distribution of the given row of a \[batch; k\] log-probability
    tensor. *)

val sample_tempered :
  Util.Rng.t -> Tensor.t -> int -> temperature:float -> int
(** Like {!sample} but with log-probabilities divided by [temperature]
    before renormalizing: T > 1 flattens the distribution (inference-time
    exploration), T < 1 sharpens it, T -> 0 approaches {!argmax}. Masked
    entries stay negligible for any reasonable T. *)

val argmax : Tensor.t -> int -> int
(** Greedy choice for evaluation-time inference. *)

val log_prob_of : Autodiff.Tape.t -> Autodiff.node -> int array -> Autodiff.node
(** [log_prob_of tape log_probs actions] gathers the chosen actions'
    log-probabilities: shape \[batch\]. *)

val entropy : Autodiff.Tape.t -> Autodiff.node -> Autodiff.node
(** Row-wise entropy of a log-probability node: shape \[batch\]. Masked
    entries contribute ~0. *)
