type linear = { w : Autodiff.Param.t; b : Autodiff.Param.t }

let linear rng ~in_dim ~out_dim name =
  {
    w =
      Autodiff.Param.create (name ^ ".w")
        (Tensor.xavier_uniform rng ~fan_in:in_dim ~fan_out:out_dim
           [| in_dim; out_dim |]);
    b = Autodiff.Param.create (name ^ ".b") (Tensor.zeros [| out_dim |]);
  }

let forward_linear tape l x =
  let w = Autodiff.of_param tape l.w in
  let b = Autodiff.of_param tape l.b in
  Autodiff.add_bias tape (Autodiff.matmul tape x w) b

let linear_params l = [ l.w; l.b ]

type mlp = { layers : linear list }

let mlp rng ~dims name =
  let rec build i = function
    | [] | [ _ ] -> []
    | d_in :: (d_out :: _ as rest) ->
        linear rng ~in_dim:d_in ~out_dim:d_out
          (Printf.sprintf "%s.%d" name i)
        :: build (i + 1) rest
  in
  { layers = build 0 dims }

let forward_mlp tape m x =
  let n = List.length m.layers in
  let rec go i x = function
    | [] -> x
    | l :: rest ->
        let y = forward_linear tape l x in
        let y = if i < n - 1 then Autodiff.relu tape y else y in
        go (i + 1) y rest
  in
  go 0 x m.layers

(* Tape-free inference path. Rollout collection only needs forward
   values, and building an autodiff tape per step is the dominant cost
   of acting. These mirror the tape ops bit-for-bit: [Tensor.matmul] /
   [Tensor.add_bias] are the exact forward kernels the tape ops call,
   and the ReLU below is [Autodiff.relu]'s forward map. Each output row
   depends only on the matching input row, so a batched forward equals
   the per-row forwards exactly (same float accumulation order). *)

let forward_linear_values ?ws l x =
  let w = l.w.Autodiff.Param.data and b = l.b.Autodiff.Param.data in
  match ws with
  | None -> Tensor.add_bias (Tensor.matmul x w) b
  | Some ws ->
      (* One workspace buffer per layer output; the matmul lands in it
         and the bias is folded in place ([add_bias_into] with dst = x
         reads each cell once before overwriting it). *)
      let dst = Tensor.Workspace.get ws [| x.Tensor.shape.(0); w.Tensor.shape.(1) |] in
      Tensor.add_bias_into ~dst (Tensor.matmul_into ~dst x w) b

let forward_batch ?ws m x =
  let n = List.length m.layers in
  let rec go i x = function
    | [] -> x
    | l :: rest ->
        let y = forward_linear_values ?ws l x in
        let y = if i < n - 1 then Tensor.relu_into ~dst:y y else y in
        go (i + 1) y rest
  in
  go 0 x m.layers

let mlp_params m = List.concat_map linear_params m.layers

let param_count params =
  List.fold_left (fun acc p -> acc + Autodiff.Param.numel p) 0 params
