let mask_penalty = -1e9

let masked_log_probs tape logits ~mask =
  let v = Autodiff.value logits in
  if Array.length v.Tensor.shape <> 2 then
    invalid_arg "Distributions.masked_log_probs: expected rank 2";
  let m = v.Tensor.shape.(0) and k = v.Tensor.shape.(1) in
  if Array.length mask <> m then
    invalid_arg "Distributions.masked_log_probs: one mask row per batch row";
  Array.iter
    (fun row ->
      if Array.length row <> k then
        invalid_arg "Distributions.masked_log_probs: mask arity mismatch";
      if not (Array.exists (fun b -> b) row) then
        invalid_arg "Distributions.masked_log_probs: empty action mask")
    mask;
  let penalty =
    match Autodiff.Tape.ws tape with
    | None -> Tensor.zeros [| m; k |]
    | Some ws ->
        let t = Tensor.Workspace.get ws [| m; k |] in
        Tensor.fill_inplace t 0.0;
        t
  in
  for i = 0 to m - 1 do
    let row = i * k and mrow = mask.(i) in
    for j = 0 to k - 1 do
      if not (Array.unsafe_get mrow j) then
        Tensor.unsafe_set penalty (row + j) mask_penalty
    done
  done;
  let masked = Autodiff.add tape logits (Autodiff.const tape penalty) in
  Autodiff.log_softmax tape masked

let masked_log_probs_values ?ws logits ~mask =
  if Array.length logits.Tensor.shape <> 2 then
    invalid_arg "Distributions.masked_log_probs: expected rank 2";
  let m = logits.Tensor.shape.(0) and k = logits.Tensor.shape.(1) in
  if Array.length mask <> m then
    invalid_arg "Distributions.masked_log_probs: one mask row per batch row";
  Array.iter
    (fun row ->
      if Array.length row <> k then
        invalid_arg "Distributions.masked_log_probs: mask arity mismatch";
      if not (Array.exists (fun b -> b) row) then
        invalid_arg "Distributions.masked_log_probs: empty action mask")
    mask;
  (* Same numerics as the tape path: add the penalty, then the row-wise
     max-shift log-softmax of [Autodiff.log_softmax], in the same
     accumulation order, so batched inference log-probs are bit-equal to
     the training-time values. The masked logit row is staged once in a
     scratch buffer (it is a pure function of the inputs, so reading the
     staged value three times equals recomputing it three times). *)
  let out =
    match ws with
    | Some ws -> Tensor.Workspace.get ws [| m; k |]
    | None -> Tensor.zeros [| m; k |]
  in
  let masked = Array.make k 0.0 in
  for i = 0 to m - 1 do
    let row = i * k and mrow = mask.(i) in
    for j = 0 to k - 1 do
      Array.unsafe_set masked j
        (Tensor.unsafe_get logits (row + j)
        +. if Array.unsafe_get mrow j then 0.0 else mask_penalty)
    done;
    let row_max = ref neg_infinity in
    for j = 0 to k - 1 do
      row_max := Float.max !row_max (Array.unsafe_get masked j)
    done;
    let sum = ref 0.0 in
    for j = 0 to k - 1 do
      sum := !sum +. exp (Array.unsafe_get masked j -. !row_max)
    done;
    let log_z = !row_max +. log !sum in
    for j = 0 to k - 1 do
      Tensor.unsafe_set out (row + j) (Array.unsafe_get masked j -. log_z)
    done
  done;
  out

let sample rng log_probs row =
  let k = log_probs.Tensor.shape.(1) in
  let base = row * k in
  let u = Util.Rng.uniform rng in
  let acc = ref 0.0 in
  let chosen = ref (k - 1) in
  (try
     for j = 0 to k - 1 do
       acc := !acc +. exp (Tensor.unsafe_get log_probs (base + j));
       if u < !acc then begin
         chosen := j;
         raise Exit
       end
     done
   with Exit -> ());
  !chosen

let sample_tempered rng log_probs row ~temperature =
  if temperature <= 0.0 then
    invalid_arg "Distributions.sample_tempered: temperature must be positive";
  let k = log_probs.Tensor.shape.(1) in
  let base = row * k in
  (* renormalize exp(lp / T) with a max-shift for stability *)
  let row_max = ref neg_infinity in
  for j = 0 to k - 1 do
    row_max :=
      Float.max !row_max (Tensor.unsafe_get log_probs (base + j) /. temperature)
  done;
  let z = ref 0.0 in
  let weights = Array.make k 0.0 in
  for j = 0 to k - 1 do
    let w =
      exp ((Tensor.unsafe_get log_probs (base + j) /. temperature) -. !row_max)
    in
    weights.(j) <- w;
    z := !z +. w
  done;
  let u = Util.Rng.uniform rng *. !z in
  let acc = ref 0.0 in
  let chosen = ref (k - 1) in
  (try
     for j = 0 to k - 1 do
       acc := !acc +. weights.(j);
       if u < !acc then begin
         chosen := j;
         raise Exit
       end
     done
   with Exit -> ());
  !chosen

let sample_batch rngs log_probs =
  let m = log_probs.Tensor.shape.(0) in
  if Array.length rngs <> m then
    invalid_arg "Distributions.sample_batch: one rng per batch row";
  Array.init m (fun i -> sample rngs.(i) log_probs i)

let argmax log_probs row = Tensor.argmax_row log_probs row

let log_prob_of tape log_probs actions =
  Autodiff.gather_cols tape log_probs actions

let entropy tape log_probs =
  (* H = -sum_j p_j log p_j with p = exp(log p). *)
  let p = Autodiff.exp_ tape log_probs in
  Autodiff.neg tape (Autodiff.sum_rows tape (Autodiff.mul tape p log_probs))
