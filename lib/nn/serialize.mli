(** Saving and restoring network parameters.

    A plain-text, versioned format: one record per parameter with its
    name, shape and values. Loading writes into an {e existing}
    parameter list (e.g. a freshly constructed policy of the same
    architecture) and validates names and shapes, so an architecture
    mismatch is reported instead of silently mis-assigning weights. *)

val save_params : string -> Autodiff.Param.t list -> unit
(** [save_params path params] writes all parameters to [path]
    atomically (via a temporary file). Raises [Sys_error] on IO
    failure. *)

val load_params : string -> Autodiff.Param.t list -> (unit, string) result
(** [load_params path params] restores values in place. Errors on
    missing file, version/name/shape mismatch, or malformed data. *)

val params_equal : Autodiff.Param.t list -> Autodiff.Param.t list -> bool
(** Same names, shapes and values (for tests). *)
