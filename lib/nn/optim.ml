(* Without flambda a cross-module [Tensor.unsafe_get] is a real call
   that boxes its float result. The loops below touch every parameter
   element every step, so they fetch the raw buffer once and use the
   Bigarray primitives, which compile to inline loads/stores from any
   module. *)
let uget (b : Tensor.buf) i : float = Bigarray.Array1.unsafe_get b i
let uset (b : Tensor.buf) i (v : float) = Bigarray.Array1.unsafe_set b i v

type algo =
  | Sgd
  | Adam of {
      beta1 : float;
      beta2 : float;
      eps : float;
      m : Tensor.t array;
      v : Tensor.t array;
      mutable t : int;
    }

type t = {
  params : Autodiff.Param.t array;
  mutable lr : float;
  algo : algo;
}

let adam ?(beta1 = 0.9) ?(beta2 = 0.999) ?(eps = 1e-8) ~lr params =
  let params = Array.of_list params in
  {
    params;
    lr;
    algo =
      Adam
        {
          beta1;
          beta2;
          eps;
          m = Array.map (fun p -> Tensor.zeros (Tensor.dims p.Autodiff.Param.data)) params;
          v = Array.map (fun p -> Tensor.zeros (Tensor.dims p.Autodiff.Param.data)) params;
          t = 0;
        };
  }

let sgd ~lr params = { params = Array.of_list params; lr; algo = Sgd }

let step opt =
  match opt.algo with
  | Sgd ->
      Array.iter
        (fun (p : Autodiff.Param.t) ->
          let d = p.data.Tensor.data and g = p.grad.Tensor.data in
          for i = 0 to Tensor.numel p.data - 1 do
            uset d i (uget d i -. (opt.lr *. uget g i))
          done)
        opt.params
  | Adam a ->
      a.t <- a.t + 1;
      let t = float_of_int a.t in
      let bc1 = 1.0 -. (a.beta1 ** t) in
      let bc2 = 1.0 -. (a.beta2 ** t) in
      Array.iteri
        (fun k (p : Autodiff.Param.t) ->
          let md = a.m.(k).Tensor.data and vd = a.v.(k).Tensor.data in
          let d = p.data.Tensor.data and gd = p.grad.Tensor.data in
          for i = 0 to Tensor.numel p.data - 1 do
            let g = uget gd i in
            let mi = (a.beta1 *. uget md i) +. ((1.0 -. a.beta1) *. g) in
            let vi = (a.beta2 *. uget vd i) +. ((1.0 -. a.beta2) *. g *. g) in
            uset md i mi;
            uset vd i vi;
            let m_hat = mi /. bc1 in
            let v_hat = vi /. bc2 in
            uset d i (uget d i -. (opt.lr *. m_hat /. (sqrt v_hat +. a.eps)))
          done)
        opt.params

let zero_grad opt = Array.iter Autodiff.Param.zero_grad opt.params

let set_lr opt lr = opt.lr <- lr

(* Adam moments (and the step counter, boxed as a 1-element tensor) as
   named parameters, so checkpoints reuse the Serialize format. *)
let state_params opt step_tensor =
  match opt.algo with
  | Sgd -> []
  | Adam a ->
      let wrap prefix arr =
        Array.to_list
          (Array.mapi
             (fun i (p : Autodiff.Param.t) ->
               Autodiff.Param.create (prefix ^ p.Autodiff.Param.name) arr.(i))
             opt.params)
      in
      Autodiff.Param.create "adam.step" step_tensor
      :: (wrap "adam.m." a.m @ wrap "adam.v." a.v)

let save opt path =
  let step_tensor =
    Tensor.of_array [| 1 |]
      [| (match opt.algo with Sgd -> 0.0 | Adam a -> float_of_int a.t) |]
  in
  Serialize.save_params path (state_params opt step_tensor)

let load opt path =
  let step_tensor = Tensor.of_array [| 1 |] [| 0.0 |] in
  match Serialize.load_params path (state_params opt step_tensor) with
  | Error _ as e -> e
  | Ok () ->
      (match opt.algo with
      | Sgd -> ()
      | Adam a -> a.t <- int_of_float (Tensor.get step_tensor 0));
      Ok ()

let clip_grad_norm opt max_norm =
  let sq = ref 0.0 in
  Array.iter
    (fun (p : Autodiff.Param.t) ->
      let gd = p.grad.Tensor.data in
      for i = 0 to Tensor.numel p.grad - 1 do
        let g = uget gd i in
        sq := !sq +. (g *. g)
      done)
    opt.params;
  let norm = sqrt !sq in
  if norm > max_norm && norm > 0.0 then begin
    let k = max_norm /. norm in
    Array.iter (fun (p : Autodiff.Param.t) -> Tensor.scale_inplace p.grad k) opt.params
  end;
  norm
