let magic = "mlir-rl-params v1"

let save_params path params =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc (magic ^ "\n");
      Printf.fprintf oc "%d\n" (List.length params);
      List.iter
        (fun (p : Autodiff.Param.t) ->
          let dims = Tensor.dims p.Autodiff.Param.data in
          Printf.fprintf oc "%s %d %s\n" p.Autodiff.Param.name
            (Array.length dims)
            (String.concat " " (Array.to_list (Array.map string_of_int dims)));
          let data = p.Autodiff.Param.data in
          for i = 0 to Tensor.numel data - 1 do
            if i > 0 then output_char oc ' ';
            Printf.fprintf oc "%h" (Tensor.get data i)
          done;
          output_char oc '\n')
        params);
  Sys.rename tmp path

let load_params path params =
  if not (Sys.file_exists path) then
    Error (Printf.sprintf "no such file: %s" path)
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let line () = try Some (input_line ic) with End_of_file -> None in
        match line () with
        | Some header when header = magic -> (
            match line () with
            | None -> Error "truncated file"
            | Some count_line -> (
                match int_of_string_opt (String.trim count_line) with
                | None -> Error "bad parameter count"
                | Some count when count <> List.length params ->
                    Error
                      (Printf.sprintf "file has %d parameters, model has %d"
                         count (List.length params))
                | Some _ ->
                    let load_one (p : Autodiff.Param.t) =
                      match line () with
                      | None -> Error "truncated file"
                      | Some header -> (
                          match String.split_on_char ' ' header with
                          | name :: _rank :: dims ->
                              if name <> p.Autodiff.Param.name then
                                Error
                                  (Printf.sprintf "expected parameter %s, found %s"
                                     p.Autodiff.Param.name name)
                              else begin
                                let shape =
                                  try
                                    Some (Array.of_list (List.map int_of_string dims))
                                  with Failure _ -> None
                                in
                                match shape with
                                | None -> Error ("bad shape for " ^ name)
                                | Some shape
                                  when shape <> Tensor.dims p.Autodiff.Param.data ->
                                    Error ("shape mismatch for " ^ name)
                                | Some _ -> (
                                    match line () with
                                    | None -> Error "truncated values"
                                    | Some values -> (
                                        let parts =
                                          List.filter
                                            (fun s -> s <> "")
                                            (String.split_on_char ' ' values)
                                        in
                                        let data = p.Autodiff.Param.data in
                                        if List.length parts <> Tensor.numel data
                                        then Error ("value count mismatch for " ^ name)
                                        else
                                          try
                                            List.iteri
                                              (fun i v ->
                                                Tensor.set data i (float_of_string v))
                                              parts;
                                            Ok ()
                                          with Failure _ ->
                                            Error ("bad float in " ^ name)))
                              end
                          | [] | [ _ ] -> Error "malformed parameter header")
                    in
                    let rec go = function
                      | [] -> Ok ()
                      | p :: rest -> (
                          match load_one p with Ok () -> go rest | e -> e)
                    in
                    go params))
        | Some _ -> Error "not a mlir-rl parameter file"
        | None -> Error "empty file")
  end

let params_equal a b =
  List.length a = List.length b
  && List.for_all2
       (fun (x : Autodiff.Param.t) (y : Autodiff.Param.t) ->
         x.Autodiff.Param.name = y.Autodiff.Param.name
         && Tensor.equal x.Autodiff.Param.data y.Autodiff.Param.data)
       a b
