type t = { shape : int array; data : float array }

let product = Array.fold_left ( * ) 1

let create shape v =
  if Array.exists (fun d -> d <= 0) shape then
    invalid_arg "Tensor.create: non-positive dimension";
  { shape = Array.copy shape; data = Array.make (product shape) v }

let zeros shape = create shape 0.0
let ones shape = create shape 1.0

let of_array shape data =
  if Array.length data <> product shape then
    invalid_arg "Tensor.of_array: size mismatch";
  { shape = Array.copy shape; data = Array.copy data }

let init shape f =
  { shape = Array.copy shape; data = Array.init (product shape) f }

let scalar v = { shape = [| 1 |]; data = [| v |] }

let numel t = Array.length t.data
let dims t = Array.copy t.shape
let copy t = { shape = Array.copy t.shape; data = Array.copy t.data }

let reshape shape t =
  if product shape <> numel t then invalid_arg "Tensor.reshape: size mismatch";
  { shape = Array.copy shape; data = Array.copy t.data }

let get t i = t.data.(i)
let set t i v = t.data.(i) <- v

let check_rank2 name t =
  if Array.length t.shape <> 2 then invalid_arg (name ^ ": expected rank 2")

let get2 t i j =
  check_rank2 "Tensor.get2" t;
  t.data.((i * t.shape.(1)) + j)

let set2 t i j v =
  check_rank2 "Tensor.set2" t;
  t.data.((i * t.shape.(1)) + j) <- v

let matmul a b =
  check_rank2 "Tensor.matmul" a;
  check_rank2 "Tensor.matmul" b;
  let m = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then invalid_arg "Tensor.matmul: inner dimension mismatch";
  let out = Array.make (m * n) 0.0 in
  let ad = a.data and bd = b.data in
  (* No zero-skip here: NN weights and activations are dense, so an
     [if av <> 0.0] per element mispredicts far more than it saves
     (bench/micro.ml "matmul dense vs zero-skip" quantifies it). The
     transpose-A variant keeps its skip — it runs on backward grads,
     which masking and ReLU do zero out in practice. *)
  for i = 0 to m - 1 do
    let arow = i * k in
    let orow = i * n in
    for p = 0 to k - 1 do
      let av = Array.unsafe_get ad (arow + p) in
      let brow = p * n in
      for j = 0 to n - 1 do
        Array.unsafe_set out (orow + j)
          (Array.unsafe_get out (orow + j)
          +. (av *. Array.unsafe_get bd (brow + j)))
      done
    done
  done;
  { shape = [| m; n |]; data = out }

let matmul_transpose_a a b =
  (* a : [k; m], b : [k; n] -> [m; n] *)
  check_rank2 "Tensor.matmul_transpose_a" a;
  check_rank2 "Tensor.matmul_transpose_a" b;
  let k = a.shape.(0) and m = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then invalid_arg "Tensor.matmul_transpose_a: dimension mismatch";
  let out = Array.make (m * n) 0.0 in
  let ad = a.data and bd = b.data in
  for p = 0 to k - 1 do
    let arow = p * m and brow = p * n in
    for i = 0 to m - 1 do
      let av = Array.unsafe_get ad (arow + i) in
      if av <> 0.0 then begin
        let orow = i * n in
        for j = 0 to n - 1 do
          Array.unsafe_set out (orow + j)
            (Array.unsafe_get out (orow + j)
            +. (av *. Array.unsafe_get bd (brow + j)))
        done
      end
    done
  done;
  { shape = [| m; n |]; data = out }

let matmul_transpose_b a b =
  (* a : [m; k], b : [n; k] -> [m; n] *)
  check_rank2 "Tensor.matmul_transpose_b" a;
  check_rank2 "Tensor.matmul_transpose_b" b;
  let m = a.shape.(0) and k = a.shape.(1) in
  let n = b.shape.(0) and k' = b.shape.(1) in
  if k <> k' then invalid_arg "Tensor.matmul_transpose_b: dimension mismatch";
  let out = Array.make (m * n) 0.0 in
  let ad = a.data and bd = b.data in
  for i = 0 to m - 1 do
    let arow = i * k in
    let orow = i * n in
    for j = 0 to n - 1 do
      let brow = j * k in
      let acc = ref 0.0 in
      for p = 0 to k - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get ad (arow + p) *. Array.unsafe_get bd (brow + p))
      done;
      Array.unsafe_set out (orow + j) !acc
    done
  done;
  { shape = [| m; n |]; data = out }

let slice_cols t ~lo ~hi =
  check_rank2 "Tensor.slice_cols" t;
  let m = t.shape.(0) and n = t.shape.(1) in
  if lo < 0 || hi > n || lo >= hi then
    invalid_arg "Tensor.slice_cols: bad column range";
  let w = hi - lo in
  let out = Array.make (m * w) 0.0 in
  for i = 0 to m - 1 do
    Array.blit t.data ((i * n) + lo) out (i * w) w
  done;
  { shape = [| m; w |]; data = out }

let transpose t =
  check_rank2 "Tensor.transpose" t;
  let m = t.shape.(0) and n = t.shape.(1) in
  let out = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    for j = 0 to n - 1 do
      out.((j * m) + i) <- t.data.((i * n) + j)
    done
  done;
  { shape = [| n; m |]; data = out }

let map f t = { shape = Array.copy t.shape; data = Array.map f t.data }

let same_shape a b = a.shape = b.shape

let map2 f a b =
  if not (same_shape a b) then invalid_arg "Tensor.map2: shape mismatch";
  {
    shape = Array.copy a.shape;
    data = Array.init (numel a) (fun i -> f a.data.(i) b.data.(i));
  }

let add a b = map2 ( +. ) a b
let sub a b = map2 ( -. ) a b
let mul a b = map2 ( *. ) a b
let scale k t = map (fun x -> k *. x) t

let add_bias x b =
  check_rank2 "Tensor.add_bias" x;
  if Array.length b.shape <> 1 || b.shape.(0) <> x.shape.(1) then
    invalid_arg "Tensor.add_bias: bias shape mismatch";
  let m = x.shape.(0) and n = x.shape.(1) in
  let out = Array.make (m * n) 0.0 in
  for i = 0 to m - 1 do
    let row = i * n in
    for j = 0 to n - 1 do
      out.(row + j) <- x.data.(row + j) +. b.data.(j)
    done
  done;
  { shape = [| m; n |]; data = out }

let sum t = Array.fold_left ( +. ) 0.0 t.data
let mean t = sum t /. float_of_int (numel t)

let sum_rows t =
  check_rank2 "Tensor.sum_rows" t;
  let m = t.shape.(0) and n = t.shape.(1) in
  let out = Array.make m 0.0 in
  for i = 0 to m - 1 do
    let row = i * n in
    for j = 0 to n - 1 do
      out.(i) <- out.(i) +. t.data.(row + j)
    done
  done;
  { shape = [| m |]; data = out }

let argmax_row t i =
  check_rank2 "Tensor.argmax_row" t;
  let n = t.shape.(1) in
  let best = ref 0 in
  for j = 1 to n - 1 do
    if t.data.((i * n) + j) > t.data.((i * n) + !best) then best := j
  done;
  !best

let add_inplace dst src =
  if not (same_shape dst src) then invalid_arg "Tensor.add_inplace: shape mismatch";
  for i = 0 to numel dst - 1 do
    dst.data.(i) <- dst.data.(i) +. src.data.(i)
  done

let fill_inplace t v =
  Array.fill t.data 0 (Array.length t.data) v

let scale_inplace t k =
  for i = 0 to numel t - 1 do
    t.data.(i) <- t.data.(i) *. k
  done

let xavier_uniform rng ~fan_in ~fan_out shape =
  let bound = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  init shape (fun _ -> (Util.Rng.uniform rng *. 2.0 *. bound) -. bound)

let equal a b = same_shape a b && a.data = b.data

let approx_equal ?(tol = 1e-9) a b =
  same_shape a b
  && Array.for_all2 (fun x y -> Float.abs (x -. y) <= tol) a.data b.data

let pp ppf t =
  Format.fprintf ppf "tensor[%s]"
    (String.concat "x" (Array.to_list (Array.map string_of_int t.shape)));
  if numel t <= 16 then begin
    Format.fprintf ppf " {";
    Array.iteri
      (fun i v ->
        if i > 0 then Format.fprintf ppf ", ";
        Format.fprintf ppf "%g" v)
      t.data;
    Format.fprintf ppf "}"
  end
