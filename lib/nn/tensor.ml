(* Dense float64 tensors on Bigarray storage (c_layout, row-major).

   Two tiers of kernels:

   - allocating ops ([matmul], [add], ...) keep the historical API and
     allocate a fresh result per call;
   - destination-passing [_into] twins write into a caller-supplied
     tensor (usually drawn from a {!Workspace} arena) and allocate
     nothing on the OCaml heap beyond a few words.

   Every kernel pair is bit-identical: the [_into] variant and its
   allocating twin perform the same float operations in the same order,
   and the register-/cache-blocked matmul preserves the exact
   accumulation order of the naive triple loop (for each output element
   the reduction index p ascends 0..k-1, added one product at a time),
   so blocking and unrolling are invisible at the bit level. This is
   what keeps the jobs=1-vs-N byte-equality, checkpoint-resume and
   serve-determinism contracts intact (docs/performance.md). *)

type buf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

(* The runtime paces custom-block memory (which Bigarray payloads are)
   as if it were a scarce external resource: with the default
   [custom_major_ratio] (44), once live tensors outweigh a small OCaml
   heap the GC forces near-continuous major collections, and on
   multi-domain runs every forced major is a stop-the-world
   synchronization — measured 2x wall-clock on --jobs 4 training.
   Tensor payloads are plain memory, so pace them like memory. The
   larger minor heap (32 MB/domain, set before any domain spawns)
   spaces out the stop-the-world minor collections that multi-domain
   runs on few cores otherwise spend their time synchronizing on.
   MLIR_RL_GC_DEFAULT=1 restores the runtime defaults. *)
let () =
  if Sys.getenv_opt "MLIR_RL_GC_DEFAULT" = None then
    Gc.set
      {
        (Gc.get ()) with
        Gc.minor_heap_size = 4194304;
        custom_major_ratio = 10000;
        custom_minor_ratio = 10000;
        custom_minor_max_size = 65536;
      }

type t = { shape : int array; data : buf }

let uget : buf -> int -> float = Bigarray.Array1.unsafe_get
let uset : buf -> int -> float -> unit = Bigarray.Array1.unsafe_set

let alloc_buf n : buf = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n

let product = Array.fold_left ( * ) 1

(* Fresh tensor with unspecified contents (kernels overwrite every
   element before it escapes). *)
let unsafe_create shape = { shape = Array.copy shape; data = alloc_buf (product shape) }

let create shape v =
  if Array.exists (fun d -> d < 0) shape then
    invalid_arg "Tensor.create: negative dimension";
  let t = unsafe_create shape in
  Bigarray.Array1.fill t.data v;
  t

let zeros shape = create shape 0.0
let ones shape = create shape 1.0

let numel t = Bigarray.Array1.dim t.data
let dims t = Array.copy t.shape

let of_array shape data =
  if Array.length data <> product shape then
    invalid_arg "Tensor.of_array: size mismatch";
  let t = unsafe_create shape in
  for i = 0 to Array.length data - 1 do
    uset t.data i (Array.unsafe_get data i)
  done;
  t

let to_array t =
  Array.init (numel t) (fun i -> uget t.data i)

let init shape f =
  let t = unsafe_create shape in
  for i = 0 to numel t - 1 do
    uset t.data i (f i)
  done;
  t

let scalar v = of_array [| 1 |] [| v |]

let blit src dst =
  if numel src <> numel dst then invalid_arg "Tensor.blit: size mismatch";
  Bigarray.Array1.blit src.data dst.data

let copy t =
  let out = unsafe_create t.shape in
  Bigarray.Array1.blit t.data out.data;
  out

let reshape shape t =
  if product shape <> numel t then invalid_arg "Tensor.reshape: size mismatch";
  let out = copy t in
  { out with shape = Array.copy shape }

let get t i = Bigarray.Array1.get t.data i
let set t i v = Bigarray.Array1.set t.data i v
let[@inline always] unsafe_get t i = uget t.data i
let[@inline always] unsafe_set t i v = uset t.data i v

let check_rank2 name t =
  if Array.length t.shape <> 2 then invalid_arg (name ^ ": expected rank 2")

let get2 t i j =
  check_rank2 "Tensor.get2" t;
  Bigarray.Array1.get t.data ((i * t.shape.(1)) + j)

let set2 t i j v =
  check_rank2 "Tensor.set2" t;
  Bigarray.Array1.set t.data ((i * t.shape.(1)) + j) v

(* -- workspace arena ---------------------------------------------------

   A [Workspace.t] owns a pool of Bigarray buffers handed out in call
   order. [reset] rewinds the cursor without freeing, so a steady-state
   caller (one [reset] per inference call, the same [get] sequence every
   time) reuses the same buffers forever: no per-op allocation, no
   minor-heap churn, no major-heap growth. Tensors returned by [get]
   are only valid until the owner's next [reset]. *)

module Workspace = struct
  type nonrec t = {
    mutable slots : buf array;  (* backing buffers, in hand-out order *)
    mutable used : int;  (* cursor into [slots] *)
    mutable grabs : int;  (* total [get] calls (stats) *)
    mutable reallocs : int;  (* [get]s that had to allocate (stats) *)
  }

  let create () = { slots = [||]; used = 0; grabs = 0; reallocs = 0 }
  let reset ws = ws.used <- 0

  let get ws shape =
    let n = product shape in
    ws.grabs <- ws.grabs + 1;
    let slot = ws.used in
    ws.used <- slot + 1;
    if slot >= Array.length ws.slots then begin
      ws.reallocs <- ws.reallocs + 1;
      let buf = alloc_buf n in
      let slots = Array.make (slot + 1) buf in
      Array.blit ws.slots 0 slots 0 (Array.length ws.slots);
      ws.slots <- slots;
      { shape = Array.copy shape; data = buf }
    end
    else begin
      let buf = ws.slots.(slot) in
      let cap = Bigarray.Array1.dim buf in
      if cap = n then { shape = Array.copy shape; data = buf }
      else if cap > n then
        (* Capacity reuse: a prefix view over the pooled buffer, no
           copy. Batch sizes shrink as episodes in a slab finish, so a
           slot sized for the largest batch serves every smaller one. *)
        { shape = Array.copy shape; data = Bigarray.Array1.sub buf 0 n }
      else begin
        ws.reallocs <- ws.reallocs + 1;
        let buf = alloc_buf n in
        ws.slots.(slot) <- buf;
        { shape = Array.copy shape; data = buf }
      end
    end

  let slots ws = Array.length ws.slots
  let reallocs ws = ws.reallocs
  let grabs ws = ws.grabs

  let live_bytes ws =
    Array.fold_left (fun acc b -> acc + (8 * Bigarray.Array1.dim b)) 0 ws.slots
end

(* -- matmul ------------------------------------------------------------ *)

(* Cache-tile edge for the blocked matmul, in elements per dimension.
   128 x 128 doubles per B tile (128 KiB) measured fastest on the
   bench/micro sweep; tunable via MLIR_RL_MM_BLOCK or
   [set_matmul_block]. Blocking never changes results (see the header
   comment), only locality. *)
let default_matmul_block = 128
let matmul_block_ref = ref default_matmul_block

let set_matmul_block b =
  if b < 4 then invalid_arg "Tensor.set_matmul_block: block must be >= 4";
  matmul_block_ref := b

let matmul_block () = !matmul_block_ref

let () =
  match Sys.getenv_opt "MLIR_RL_MM_BLOCK" with
  | Some s -> ( match int_of_string_opt (String.trim s) with
    | Some b when b >= 4 -> matmul_block_ref := b
    | _ -> ())
  | None -> ()

(* Register-blocked panel: out rows [i] over p in [p0,p1), j in [j0,j1),
   p unrolled by 4 (one chained add per product, ascending p) and j by 4
   (distinct output elements). Accumulation order per output element is
   exactly the naive kernel's. *)
let matmul_panel (a : buf) (b : buf) (out : buf) ~arow ~orow ~n ~p0 ~p1 ~j0 ~j1 =
  let p4 = p0 + ((p1 - p0) / 4 * 4) in
  let j4 = j0 + ((j1 - j0) / 4 * 4) in
  let p = ref p0 in
  while !p < p4 do
    let q = !p in
    let av0 = uget a (arow + q)
    and av1 = uget a (arow + q + 1)
    and av2 = uget a (arow + q + 2)
    and av3 = uget a (arow + q + 3) in
    let b0 = q * n and b1 = (q + 1) * n and b2 = (q + 2) * n and b3 = (q + 3) * n in
    let j = ref j0 in
    while !j < j4 do
      let s = !j in
      let acc0 =
        (((uget out (orow + s) +. (av0 *. uget b (b0 + s)))
          +. (av1 *. uget b (b1 + s)))
         +. (av2 *. uget b (b2 + s)))
        +. (av3 *. uget b (b3 + s))
      in
      let acc1 =
        (((uget out (orow + s + 1) +. (av0 *. uget b (b0 + s + 1)))
          +. (av1 *. uget b (b1 + s + 1)))
         +. (av2 *. uget b (b2 + s + 1)))
        +. (av3 *. uget b (b3 + s + 1))
      in
      let acc2 =
        (((uget out (orow + s + 2) +. (av0 *. uget b (b0 + s + 2)))
          +. (av1 *. uget b (b1 + s + 2)))
         +. (av2 *. uget b (b2 + s + 2)))
        +. (av3 *. uget b (b3 + s + 2))
      in
      let acc3 =
        (((uget out (orow + s + 3) +. (av0 *. uget b (b0 + s + 3)))
          +. (av1 *. uget b (b1 + s + 3)))
         +. (av2 *. uget b (b2 + s + 3)))
        +. (av3 *. uget b (b3 + s + 3))
      in
      uset out (orow + s) acc0;
      uset out (orow + s + 1) acc1;
      uset out (orow + s + 2) acc2;
      uset out (orow + s + 3) acc3;
      j := s + 4
    done;
    for s = j4 to j1 - 1 do
      uset out (orow + s)
        ((((uget out (orow + s) +. (av0 *. uget b (b0 + s)))
           +. (av1 *. uget b (b1 + s)))
          +. (av2 *. uget b (b2 + s)))
        +. (av3 *. uget b (b3 + s)))
    done;
    p := q + 4
  done;
  for q = p4 to p1 - 1 do
    let av = uget a (arow + q) in
    let brow = q * n in
    for s = j0 to j1 - 1 do
      uset out (orow + s) (uget out (orow + s) +. (av *. uget b (brow + s)))
    done
  done

let matmul_dims name a b =
  check_rank2 name a;
  check_rank2 name b;
  let m = a.shape.(0) and k = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then invalid_arg (name ^ ": inner dimension mismatch");
  (m, k, n)

let check_dst name dst m n =
  check_rank2 name dst;
  if dst.shape.(0) <> m || dst.shape.(1) <> n then
    invalid_arg (name ^ ": destination shape mismatch")

let matmul_into ~dst a b =
  let m, k, n = matmul_dims "Tensor.matmul_into" a b in
  check_dst "Tensor.matmul_into" dst m n;
  if dst.data == a.data || dst.data == b.data then
    invalid_arg "Tensor.matmul_into: dst aliases an operand";
  let ad = a.data and bd = b.data and out = dst.data in
  Bigarray.Array1.fill out 0.0;
  let blk = !matmul_block_ref in
  if k <= blk && n <= blk then
    for i = 0 to m - 1 do
      matmul_panel ad bd out ~arow:(i * k) ~orow:(i * n) ~n ~p0:0 ~p1:k ~j0:0
        ~j1:n
    done
  else begin
    (* p tiles outermost, then j tiles, rows streamed inside: for any
       output element the p tiles (and p within a tile) still ascend, so
       the accumulation order is the naive kernel's. *)
    let pp = ref 0 in
    while !pp < k do
      let p1 = min k (!pp + blk) in
      let jj = ref 0 in
      while !jj < n do
        let j1 = min n (!jj + blk) in
        for i = 0 to m - 1 do
          matmul_panel ad bd out ~arow:(i * k) ~orow:(i * n) ~n ~p0:!pp ~p1
            ~j0:!jj ~j1
        done;
        jj := j1
      done;
      pp := p1
    done
  end;
  dst

let matmul a b =
  let m, _, n = matmul_dims "Tensor.matmul" a b in
  matmul_into ~dst:(unsafe_create [| m; n |]) a b

(* a : [k; m], b : [k; n] -> [m; n]. The zero-skip guard stays: this
   kernel runs on backward grads, which masking and ReLU do zero out in
   practice (the forward matmul is dense and has no guard). *)
let matmul_transpose_a_dims a b =
  check_rank2 "Tensor.matmul_transpose_a" a;
  check_rank2 "Tensor.matmul_transpose_a" b;
  let k = a.shape.(0) and m = a.shape.(1) in
  let k' = b.shape.(0) and n = b.shape.(1) in
  if k <> k' then invalid_arg "Tensor.matmul_transpose_a: dimension mismatch";
  (m, k, n)

let matmul_transpose_a_into ~dst a b =
  let m, k, n = matmul_transpose_a_dims a b in
  check_dst "Tensor.matmul_transpose_a_into" dst m n;
  let ad = a.data and bd = b.data and out = dst.data in
  Bigarray.Array1.fill out 0.0;
  for p = 0 to k - 1 do
    let arow = p * m and brow = p * n in
    for i = 0 to m - 1 do
      let av = uget ad (arow + i) in
      if av <> 0.0 then begin
        let orow = i * n in
        for j = 0 to n - 1 do
          uset out (orow + j) (uget out (orow + j) +. (av *. uget bd (brow + j)))
        done
      end
    done
  done;
  dst

let matmul_transpose_a a b =
  let m, _, n = matmul_transpose_a_dims a b in
  matmul_transpose_a_into ~dst:(unsafe_create [| m; n |]) a b

(* a : [m; k], b : [n; k] -> [m; n]; per-element register accumulator
   over ascending p (p unrolled by 4, adds chained left-to-right). *)
let matmul_transpose_b_dims a b =
  check_rank2 "Tensor.matmul_transpose_b" a;
  check_rank2 "Tensor.matmul_transpose_b" b;
  let m = a.shape.(0) and k = a.shape.(1) in
  let n = b.shape.(0) and k' = b.shape.(1) in
  if k <> k' then invalid_arg "Tensor.matmul_transpose_b: dimension mismatch";
  (m, k, n)

let transpose_b_cell (ad : buf) (bd : buf) ~arow ~brow ~k =
  let k4 = k / 4 * 4 in
  let acc = ref 0.0 in
  let p = ref 0 in
  while !p < k4 do
    let q = !p in
    acc :=
      (((!acc +. (uget ad (arow + q) *. uget bd (brow + q)))
        +. (uget ad (arow + q + 1) *. uget bd (brow + q + 1)))
       +. (uget ad (arow + q + 2) *. uget bd (brow + q + 2)))
      +. (uget ad (arow + q + 3) *. uget bd (brow + q + 3));
    p := q + 4
  done;
  for q = k4 to k - 1 do
    acc := !acc +. (uget ad (arow + q) *. uget bd (brow + q))
  done;
  !acc

let matmul_transpose_b_into ~dst a b =
  let m, k, n = matmul_transpose_b_dims a b in
  check_dst "Tensor.matmul_transpose_b_into" dst m n;
  let ad = a.data and bd = b.data and out = dst.data in
  for i = 0 to m - 1 do
    let arow = i * k and orow = i * n in
    for j = 0 to n - 1 do
      uset out (orow + j) (transpose_b_cell ad bd ~arow ~brow:(j * k) ~k)
    done
  done;
  dst

let matmul_transpose_b a b =
  let m, _, n = matmul_transpose_b_dims a b in
  matmul_transpose_b_into ~dst:(unsafe_create [| m; n |]) a b

(* dst += a * b^T, the [Autodiff.matmul] backward step for dA. The cell
   sum is formed in a register starting from 0 and added to [dst] once,
   exactly like the historical "allocate the product, then
   [add_inplace]" pair. *)
(* Four adjacent cells of one output row, interleaved: each cell keeps
   its own accumulator with exactly [transpose_b_cell]'s chained-add
   order, but the four independent chains overlap in the pipeline
   instead of serializing on one accumulator's add latency (~4x the
   throughput of cell-at-a-time). Cells are independent, so the
   interleaving cannot change any cell's result. *)
let transpose_b_row4 (ad : buf) (bd : buf) (out : buf) ~arow ~orow ~j ~k =
  let brow0 = j * k in
  let brow1 = brow0 + k in
  let brow2 = brow1 + k in
  let brow3 = brow2 + k in
  let k4 = k / 4 * 4 in
  let acc0 = ref 0.0 and acc1 = ref 0.0 and acc2 = ref 0.0 and acc3 = ref 0.0 in
  let p = ref 0 in
  while !p < k4 do
    let q = !p in
    let a0 = uget ad (arow + q)
    and a1 = uget ad (arow + q + 1)
    and a2 = uget ad (arow + q + 2)
    and a3 = uget ad (arow + q + 3) in
    acc0 :=
      (((!acc0 +. (a0 *. uget bd (brow0 + q)))
        +. (a1 *. uget bd (brow0 + q + 1)))
       +. (a2 *. uget bd (brow0 + q + 2)))
      +. (a3 *. uget bd (brow0 + q + 3));
    acc1 :=
      (((!acc1 +. (a0 *. uget bd (brow1 + q)))
        +. (a1 *. uget bd (brow1 + q + 1)))
       +. (a2 *. uget bd (brow1 + q + 2)))
      +. (a3 *. uget bd (brow1 + q + 3));
    acc2 :=
      (((!acc2 +. (a0 *. uget bd (brow2 + q)))
        +. (a1 *. uget bd (brow2 + q + 1)))
       +. (a2 *. uget bd (brow2 + q + 2)))
      +. (a3 *. uget bd (brow2 + q + 3));
    acc3 :=
      (((!acc3 +. (a0 *. uget bd (brow3 + q)))
        +. (a1 *. uget bd (brow3 + q + 1)))
       +. (a2 *. uget bd (brow3 + q + 2)))
      +. (a3 *. uget bd (brow3 + q + 3));
    p := q + 4
  done;
  for q = k4 to k - 1 do
    let av = uget ad (arow + q) in
    acc0 := !acc0 +. (av *. uget bd (brow0 + q));
    acc1 := !acc1 +. (av *. uget bd (brow1 + q));
    acc2 := !acc2 +. (av *. uget bd (brow2 + q));
    acc3 := !acc3 +. (av *. uget bd (brow3 + q))
  done;
  uset out (orow + j) (uget out (orow + j) +. !acc0);
  uset out (orow + j + 1) (uget out (orow + j + 1) +. !acc1);
  uset out (orow + j + 2) (uget out (orow + j + 2) +. !acc2);
  uset out (orow + j + 3) (uget out (orow + j + 3) +. !acc3)

let matmul_transpose_b_addto ~dst a b =
  let m, k, n = matmul_transpose_b_dims a b in
  check_dst "Tensor.matmul_transpose_b_addto" dst m n;
  let ad = a.data and bd = b.data and out = dst.data in
  let n4 = n / 4 * 4 in
  for i = 0 to m - 1 do
    let arow = i * k and orow = i * n in
    let j = ref 0 in
    while !j < n4 do
      transpose_b_row4 ad bd out ~arow ~orow ~j:!j ~k;
      j := !j + 4
    done;
    for j = n4 to n - 1 do
      uset out (orow + j)
        (uget out (orow + j) +. transpose_b_cell ad bd ~arow ~brow:(j * k) ~k)
    done
  done

(* -- row/column kernels ------------------------------------------------ *)

let slice_cols_into ~dst t ~lo ~hi =
  check_rank2 "Tensor.slice_cols_into" t;
  let m = t.shape.(0) and n = t.shape.(1) in
  if lo < 0 || hi > n || lo >= hi then
    invalid_arg "Tensor.slice_cols_into: bad column range";
  let w = hi - lo in
  check_dst "Tensor.slice_cols_into" dst m w;
  for i = 0 to m - 1 do
    Bigarray.Array1.blit
      (Bigarray.Array1.sub t.data ((i * n) + lo) w)
      (Bigarray.Array1.sub dst.data (i * w) w)
  done;
  dst

let slice_cols t ~lo ~hi =
  check_rank2 "Tensor.slice_cols" t;
  let m = t.shape.(0) and n = t.shape.(1) in
  if lo < 0 || hi > n || lo >= hi then
    invalid_arg "Tensor.slice_cols: bad column range";
  slice_cols_into ~dst:(unsafe_create [| m; hi - lo |]) t ~lo ~hi

let transpose_into ~dst t =
  check_rank2 "Tensor.transpose_into" t;
  let m = t.shape.(0) and n = t.shape.(1) in
  check_dst "Tensor.transpose_into" dst n m;
  if dst.data == t.data then invalid_arg "Tensor.transpose_into: dst aliases src";
  let src = t.data and out = dst.data in
  for i = 0 to m - 1 do
    let row = i * n in
    for j = 0 to n - 1 do
      uset out ((j * m) + i) (uget src (row + j))
    done
  done;
  dst

let transpose t =
  check_rank2 "Tensor.transpose" t;
  transpose_into ~dst:(unsafe_create [| t.shape.(1); t.shape.(0) |]) t

let same_shape a b = a.shape = b.shape

let map_into f ~dst t =
  if not (same_shape dst t) then invalid_arg "Tensor.map_into: shape mismatch";
  let src = t.data and out = dst.data in
  for i = 0 to numel t - 1 do
    uset out i (f (uget src i))
  done;
  dst

let map f t = map_into f ~dst:(unsafe_create t.shape) t

let relu_into ~dst t =
  if not (same_shape dst t) then invalid_arg "Tensor.relu_into: shape mismatch";
  let src = t.data and out = dst.data in
  for i = 0 to numel t - 1 do
    let v = uget src i in
    uset out i (if v > 0.0 then v else 0.0)
  done;
  dst

let relu t = relu_into ~dst:(unsafe_create t.shape) t

let map2_into f ~dst a b =
  if not (same_shape a b) then invalid_arg "Tensor.map2: shape mismatch";
  if not (same_shape dst a) then invalid_arg "Tensor.map2_into: shape mismatch";
  let ad = a.data and bd = b.data and out = dst.data in
  for i = 0 to numel a - 1 do
    uset out i (f (uget ad i) (uget bd i))
  done;
  dst

let map2 f a b =
  if not (same_shape a b) then invalid_arg "Tensor.map2: shape mismatch";
  map2_into f ~dst:(unsafe_create a.shape) a b

(* The arithmetic pairs spell out their loops instead of going through
   [map2_into]: an unknown [float -> float -> float] closure call boxes
   three floats per element, and these run over every activation. *)
let binop_check name dst a b =
  if not (same_shape a b) then invalid_arg (name ^ ": shape mismatch");
  if not (same_shape dst a) then invalid_arg (name ^ ": shape mismatch")

let add_into ~dst a b =
  binop_check "Tensor.add_into" dst a b;
  let ad = a.data and bd = b.data and out = dst.data in
  for i = 0 to numel a - 1 do
    uset out i (uget ad i +. uget bd i)
  done;
  dst

let sub_into ~dst a b =
  binop_check "Tensor.sub_into" dst a b;
  let ad = a.data and bd = b.data and out = dst.data in
  for i = 0 to numel a - 1 do
    uset out i (uget ad i -. uget bd i)
  done;
  dst

let mul_into ~dst a b =
  binop_check "Tensor.mul_into" dst a b;
  let ad = a.data and bd = b.data and out = dst.data in
  for i = 0 to numel a - 1 do
    uset out i (uget ad i *. uget bd i)
  done;
  dst

let add a b = add_into ~dst:(unsafe_create a.shape) a b
let sub a b = sub_into ~dst:(unsafe_create a.shape) a b
let mul a b = mul_into ~dst:(unsafe_create a.shape) a b

let scale_into k ~dst t =
  if not (same_shape dst t) then invalid_arg "Tensor.scale_into: shape mismatch";
  let src = t.data and out = dst.data in
  for i = 0 to numel t - 1 do
    uset out i (k *. uget src i)
  done;
  dst

let scale k t = scale_into k ~dst:(unsafe_create t.shape) t

let add_bias_into ~dst x b =
  check_rank2 "Tensor.add_bias_into" x;
  if Array.length b.shape <> 1 || b.shape.(0) <> x.shape.(1) then
    invalid_arg "Tensor.add_bias: bias shape mismatch";
  let m = x.shape.(0) and n = x.shape.(1) in
  check_dst "Tensor.add_bias_into" dst m n;
  let xd = x.data and bd = b.data and out = dst.data in
  for i = 0 to m - 1 do
    let row = i * n in
    for j = 0 to n - 1 do
      uset out (row + j) (uget xd (row + j) +. uget bd j)
    done
  done;
  dst

let add_bias x b =
  check_rank2 "Tensor.add_bias" x;
  if Array.length b.shape <> 1 || b.shape.(0) <> x.shape.(1) then
    invalid_arg "Tensor.add_bias: bias shape mismatch";
  add_bias_into ~dst:(unsafe_create x.shape) x b

(* -- reductions -------------------------------------------------------- *)

let sum t =
  let d = t.data in
  let acc = ref 0.0 in
  for i = 0 to numel t - 1 do
    acc := !acc +. uget d i
  done;
  !acc

let mean t = sum t /. float_of_int (numel t)

let sum_rows_into ~dst t =
  check_rank2 "Tensor.sum_rows_into" t;
  let m = t.shape.(0) and n = t.shape.(1) in
  if Array.length dst.shape <> 1 || dst.shape.(0) <> m then
    invalid_arg "Tensor.sum_rows_into: destination shape mismatch";
  let src = t.data and out = dst.data in
  for i = 0 to m - 1 do
    let row = i * n in
    let acc = ref 0.0 in
    for j = 0 to n - 1 do
      acc := !acc +. uget src (row + j)
    done;
    uset out i !acc
  done;
  dst

let sum_rows t =
  check_rank2 "Tensor.sum_rows" t;
  sum_rows_into ~dst:(unsafe_create [| t.shape.(0) |]) t

let argmax_row t i =
  check_rank2 "Tensor.argmax_row" t;
  let n = t.shape.(1) in
  let d = t.data in
  let row = i * n in
  let best = ref 0 in
  let best_v = ref (uget d row) in
  for j = 1 to n - 1 do
    let v = uget d (row + j) in
    if v > !best_v then begin
      best := j;
      best_v := v
    end
  done;
  !best

(* -- in-place updates -------------------------------------------------- *)

let add_inplace dst src =
  if not (same_shape dst src) then invalid_arg "Tensor.add_inplace: shape mismatch";
  let d = dst.data and s = src.data in
  for i = 0 to numel dst - 1 do
    uset d i (uget d i +. uget s i)
  done

(* dst += a * b elementwise; one fused traversal of the historical
   "allocate [mul a b], then [add_inplace]" pair, same per-element
   float expression. *)
let add_mul_inplace dst a b =
  if not (same_shape a b) || not (same_shape dst a) then
    invalid_arg "Tensor.add_mul_inplace: shape mismatch";
  let d = dst.data and ad = a.data and bd = b.data in
  for i = 0 to numel dst - 1 do
    uset d i (uget d i +. (uget ad i *. uget bd i))
  done

let fill_inplace t v = Bigarray.Array1.fill t.data v

let scale_inplace t k =
  let d = t.data in
  for i = 0 to numel t - 1 do
    uset d i (uget d i *. k)
  done

let xavier_uniform rng ~fan_in ~fan_out shape =
  let bound = sqrt (6.0 /. float_of_int (fan_in + fan_out)) in
  init shape (fun _ -> (Util.Rng.uniform rng *. 2.0 *. bound) -. bound)

(* Bit-level equality: NaN payloads compare equal to themselves and
   0.0 <> -0.0, unlike polymorphic [=] on floats (NaN <> NaN, and
   0.0 = -0.0), which silently mis-answered "is this checkpoint the
   same" whenever a weight was NaN. *)
let equal a b =
  same_shape a b
  && begin
       let ad = a.data and bd = b.data in
       let ok = ref true in
       let i = ref 0 in
       let n = numel a in
       while !ok && !i < n do
         if Int64.bits_of_float (uget ad !i) <> Int64.bits_of_float (uget bd !i)
         then ok := false;
         incr i
       done;
       !ok
     end

let approx_equal ?(tol = 1e-9) a b =
  same_shape a b
  && begin
       let ad = a.data and bd = b.data in
       let ok = ref true in
       let i = ref 0 in
       let n = numel a in
       while !ok && !i < n do
         if not (Float.abs (uget ad !i -. uget bd !i) <= tol) then ok := false;
         incr i
       done;
       !ok
     end

let pp ppf t =
  Format.fprintf ppf "tensor[%s]"
    (String.concat "x" (Array.to_list (Array.map string_of_int t.shape)));
  if numel t <= 16 then begin
    Format.fprintf ppf " {";
    for i = 0 to numel t - 1 do
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%g" (uget t.data i)
    done;
    Format.fprintf ppf "}"
  end
