(** Gradient-descent optimizers. *)

type t
(** Optimizer state bound to a fixed parameter list. *)

val adam :
  ?beta1:float ->
  ?beta2:float ->
  ?eps:float ->
  lr:float ->
  Autodiff.Param.t list ->
  t
(** Adam with bias correction (Kingma & Ba). *)

val sgd : lr:float -> Autodiff.Param.t list -> t

val step : t -> unit
(** Apply one update from the parameters' accumulated gradients. *)

val zero_grad : t -> unit

val set_lr : t -> float -> unit

val save : t -> string -> unit
(** Persist the optimizer state (Adam moments and step counter) in the
    {!Serialize} format, atomically. SGD has no state; an empty record
    is written so [load] round-trips. *)

val load : t -> string -> (unit, string) result
(** Restore state saved by {!save} into an optimizer built over the
    same parameter list (names and shapes are validated). *)

val clip_grad_norm : t -> float -> float
(** [clip_grad_norm t max_norm] rescales all gradients if their global L2
    norm exceeds [max_norm]; returns the pre-clip norm. *)
