(** Tape-based reverse-mode automatic differentiation over {!Tensor}.

    Operations executed under a {!Tape.t} record their backward closures;
    {!backward} replays the tape in reverse, accumulating gradients into
    each node and, for parameter leaves, into the parameter's persistent
    gradient buffer. Granularity is whole tensors (matmul, elementwise,
    softmax...), which keeps the overhead negligible next to the matrix
    products. *)

module Param : sig
  type t = {
    name : string;
    data : Tensor.t;  (** mutable storage updated by the optimizer *)
    grad : Tensor.t;  (** accumulated by {!val-backward} *)
  }

  val create : string -> Tensor.t -> t
  val zero_grad : t -> unit
  val numel : t -> int
end

module Tape : sig
  type t

  val create : ?ws:Tensor.Workspace.t -> unit -> t
  (** With [~ws], every node value and every forced gradient is drawn
      from the workspace instead of the heap — a steady-state training
      step (same network each minibatch) allocates nothing. [create]
      resets [ws], invalidating buffers handed out to the previous tape
      on the same workspace: extract anything you keep (scalars,
      copies) before starting the next tape. Results are bit-identical
      to the allocating tape. Without [~ws], fresh allocation. *)

  val ws : t -> Tensor.Workspace.t option
  (** The arena this tape draws from, for staging related buffers
      (observation matrices, mask penalties) with the same lifetime. *)

  val length : t -> int
  (** Number of recorded nodes (for tests). *)
end

type node
(** A value in the computation graph. *)

val value : node -> Tensor.t
val grad : node -> Tensor.t
(** Gradient accumulated so far (zeros before {!backward}). *)

val of_param : Tape.t -> Param.t -> node
(** Parameter leaf: backward adds into [Param.grad]. *)

val const : Tape.t -> Tensor.t -> node
(** Constant leaf: no gradient flows out of it. *)

(* -- differentiable operations -- *)

val matmul : Tape.t -> node -> node -> node
val add : Tape.t -> node -> node -> node
val sub : Tape.t -> node -> node -> node
val mul : Tape.t -> node -> node -> node
val add_bias : Tape.t -> node -> node -> node
(** [add_bias t x b]: rank-2 [x] plus rank-1 bias [b] per row. *)

val relu : Tape.t -> node -> node
val exp_ : Tape.t -> node -> node
val neg : Tape.t -> node -> node
val scale : Tape.t -> float -> node -> node
val add_scalar : Tape.t -> float -> node -> node
val square : Tape.t -> node -> node

val clamp : Tape.t -> lo:float -> hi:float -> node -> node
(** Gradient passes through inside \[lo, hi\], zero outside (PPO clip). *)

val min_ : Tape.t -> node -> node -> node
(** Elementwise minimum; gradient routes to the smaller operand. *)

val log_softmax : Tape.t -> node -> node
(** Row-wise log-softmax of a rank-2 tensor, numerically stabilized. *)

val gather_cols : Tape.t -> node -> int array -> node
(** [gather_cols t x cols] picks [x.(i, cols.(i))] per row; result has
    shape [rows]. *)

val slice_cols : Tape.t -> node -> lo:int -> hi:int -> node
(** Columns [lo, hi) of a rank-2 tensor. *)

val sum_rows : Tape.t -> node -> node
(** [m; n] -> [m]. *)

val sum_all : Tape.t -> node -> node
(** Any shape -> scalar (shape [1]). *)

val mean_all : Tape.t -> node -> node

val backward : Tape.t -> node -> unit
(** Seed the given (scalar) node's gradient with ones and propagate
    backwards through everything recorded on the tape. Raises
    [Invalid_argument] if the node holds more than one element. *)
