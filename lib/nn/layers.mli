(** Network building blocks: linear layers and MLP stacks. *)

type linear = {
  w : Autodiff.Param.t;  (** \[in_dim; out_dim\] *)
  b : Autodiff.Param.t;  (** \[out_dim\] *)
}

val linear : Util.Rng.t -> in_dim:int -> out_dim:int -> string -> linear
(** Xavier-uniform weights, zero bias. *)

val forward_linear : Autodiff.Tape.t -> linear -> Autodiff.node -> Autodiff.node
(** [x * w + b] for a batch [x] of shape \[batch; in_dim\]. *)

val linear_params : linear -> Autodiff.Param.t list

type mlp = { layers : linear list }
(** Dense layers with ReLU between them (none after the last). *)

val mlp : Util.Rng.t -> dims:int list -> string -> mlp
(** [mlp rng ~dims:\[in; h1; ...; out\] name] builds len-1 linear layers. *)

val forward_mlp : Autodiff.Tape.t -> mlp -> Autodiff.node -> Autodiff.node

val forward_linear_values : ?ws:Tensor.Workspace.t -> linear -> Tensor.t -> Tensor.t
(** Tape-free [x * w + b] on raw tensors — no gradients recorded. With
    [?ws] the result lives in the workspace (valid until its next
    [reset]) and the call allocates nothing in steady state. *)

val forward_batch : ?ws:Tensor.Workspace.t -> mlp -> Tensor.t -> Tensor.t
(** Tape-free MLP forward for inference. Produces bit-identical values
    to {!forward_mlp} (same kernels, same accumulation order), and each
    output row depends only on the same input row — so one call on a
    stacked \[batch; in_dim\] matrix equals [batch] single-row calls.
    With [?ws], activations live in the workspace — including the
    returned tensor: copy it out if it must outlive the next [reset]. *)

val mlp_params : mlp -> Autodiff.Param.t list
val param_count : Autodiff.Param.t list -> int
