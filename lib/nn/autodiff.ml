(* Without flambda a cross-module [Tensor.unsafe_get] is a real call
   that boxes its float result; the backward loops below run over every
   activation element of every node, so they fetch the raw buffer once
   and use the Bigarray primitives, which compile to inline
   loads/stores from any module. *)
let uget (b : Tensor.buf) i : float = Bigarray.Array1.unsafe_get b i
let uset (b : Tensor.buf) i (v : float) = Bigarray.Array1.unsafe_set b i v

module Param = struct
  type t = { name : string; data : Tensor.t; grad : Tensor.t }

  let create name data =
    { name; data; grad = Tensor.zeros (Tensor.dims data) }

  let zero_grad p = Tensor.fill_inplace p.grad 0.0
  let numel p = Tensor.numel p.data
end

type node = {
  value : Tensor.t;
  grad : Tensor.t Lazy.t;
      (* Allocated on first touch. Inference tapes (batched sampling,
         serving) never call [backward], so their nodes never pay for a
         gradient buffer; training tapes force every grad during
         [backward], which preserves the eager semantics (zeros until
         accumulated into) bit for bit. *)
  back : unit -> unit;  (* reads [grad], accumulates into parents *)
}

module Tape = struct
  type t = {
    mutable nodes : node list;
    mutable n : int;
    ws : Tensor.Workspace.t option;
  }

  (* A tape created with [~ws] draws every node value and every forced
     gradient from the workspace instead of the heap: after the first
     tape over a given network, the op sequence repeats, so every
     buffer is a pooled reuse and a whole forward/backward allocates
     nothing. The workspace is reset here, which invalidates buffers
     handed out to the PREVIOUS tape that used it — callers must
     extract anything they keep (scalars, copies) before creating the
     next tape on the same workspace. Plain [create ()] keeps
     fresh-allocation semantics. *)
  let create ?ws () =
    Option.iter Tensor.Workspace.reset ws;
    { nodes = []; n = 0; ws }

  let push t node =
    t.nodes <- node :: t.nodes;
    t.n <- t.n + 1
  let length t = t.n
  let ws t = t.ws
end

let value n = n.value
let grad n = Lazy.force n.grad

(* Scratch for backward steps that need a real output buffer (the dB
   half of the matmul backward). Reset once per [backward]; the hand-out
   sequence is the reverse tape order, which is stable for a fixed
   network, so after the first minibatch every [get] reuses a pooled
   buffer. Per-domain, never shared. *)
let bw_ws_key = Domain.DLS.new_key Tensor.Workspace.create
let bw_ws () = Domain.DLS.get bw_ws_key

(* Value buffer for an op that overwrites every element. *)
let alloc tape shape =
  match tape.Tape.ws with
  | None -> Tensor.zeros shape
  | Some ws -> Tensor.Workspace.get ws shape

(* Gradients start at zero either way; a workspace slot holds stale
   data from the previous tape and is cleared on first touch. *)
let lazy_grad tape shape =
  match tape.Tape.ws with
  | None -> lazy (Tensor.zeros shape)
  | Some ws ->
      lazy
        (let g = Tensor.Workspace.get ws shape in
         Tensor.fill_inplace g 0.0;
         g)

let mk tape value back_of =
  let rec node =
    { value; grad = lazy_grad tape (Tensor.dims value); back = (fun () -> back_of node) }
  in
  Tape.push tape node;
  node

let of_param tape (p : Param.t) =
  mk tape p.Param.data (fun node ->
      Tensor.add_inplace p.Param.grad (Lazy.force node.grad))

let const tape t = mk tape t (fun _ -> ())

let matmul tape a b =
  let value =
    Tensor.matmul_into
      ~dst:(alloc tape [| a.value.Tensor.shape.(0); b.value.Tensor.shape.(1) |])
      a.value b.value
  in
  mk tape value (fun node ->
      (* dA = dC * B^T ; dB = A^T * dC. dA fuses the product with the
         accumulate (each cell formed in a register, added once); dB
         needs a staging buffer because transpose-A accumulates across p
         in memory — drawn from the backward workspace, so neither half
         allocates in steady state. *)
      let g = Lazy.force node.grad in
      Tensor.matmul_transpose_b_addto ~dst:(Lazy.force a.grad) g b.value;
      let scratch =
        Tensor.Workspace.get (bw_ws ()) (Tensor.dims b.value)
      in
      Tensor.matmul_transpose_a_into ~dst:scratch a.value g |> ignore;
      Tensor.add_inplace (Lazy.force b.grad) scratch)

let add tape a b =
  let value = Tensor.add_into ~dst:(alloc tape (Tensor.dims a.value)) a.value b.value in
  mk tape value (fun node ->
      let g = Lazy.force node.grad in
      Tensor.add_inplace (Lazy.force a.grad) g;
      Tensor.add_inplace (Lazy.force b.grad) g)

let sub tape a b =
  let value = Tensor.sub_into ~dst:(alloc tape (Tensor.dims a.value)) a.value b.value in
  mk tape value (fun node ->
      let g = Lazy.force node.grad in
      Tensor.add_inplace (Lazy.force a.grad) g;
      let bg = (Lazy.force b.grad).Tensor.data and gd = g.Tensor.data in
      for i = 0 to Tensor.numel g - 1 do
        uset bg i (uget bg i -. uget gd i)
      done)

let mul tape a b =
  let value = Tensor.mul_into ~dst:(alloc tape (Tensor.dims a.value)) a.value b.value in
  mk tape value (fun node ->
      let g = Lazy.force node.grad in
      Tensor.add_mul_inplace (Lazy.force a.grad) g b.value;
      Tensor.add_mul_inplace (Lazy.force b.grad) g a.value)

let add_bias tape x b =
  let value =
    Tensor.add_bias_into ~dst:(alloc tape (Tensor.dims x.value)) x.value b.value
  in
  mk tape value (fun node ->
      let g = Lazy.force node.grad in
      Tensor.add_inplace (Lazy.force x.grad) g;
      let m = x.value.Tensor.shape.(0) and n = x.value.Tensor.shape.(1) in
      let bg = (Lazy.force b.grad).Tensor.data and gd = g.Tensor.data in
      for i = 0 to m - 1 do
        let row = i * n in
        for j = 0 to n - 1 do
          uset bg j (uget bg j +. uget gd (row + j))
        done
      done)

let unary tape a ~f ~df =
  (* df receives (input value, output gradient) elementwise *)
  let value = Tensor.map_into f ~dst:(alloc tape (Tensor.dims a.value)) a.value in
  mk tape value (fun node ->
      let gd = (Lazy.force node.grad).Tensor.data in
      let ag = (Lazy.force a.grad).Tensor.data in
      let av = a.value.Tensor.data in
      for i = 0 to Tensor.numel a.value - 1 do
        uset ag i (uget ag i +. df (uget av i) (uget gd i))
      done)

(* [relu] and [exp_] run over every activation in a training step, so
   they bypass [unary]: calling a [float -> float -> float] closure per
   element boxes three floats per call — measured as the bulk of a
   backward pass's minor allocation. Direct loops keep the identical
   arithmetic with zero boxing. *)
let relu tape a =
  let value = Tensor.relu_into ~dst:(alloc tape (Tensor.dims a.value)) a.value in
  mk tape value (fun node ->
      let gd = (Lazy.force node.grad).Tensor.data in
      let ag = (Lazy.force a.grad).Tensor.data in
      let av = a.value.Tensor.data in
      for i = 0 to Tensor.numel a.value - 1 do
        if uget av i > 0.0 then uset ag i (uget ag i +. uget gd i)
      done)

let exp_ tape a =
  let value = alloc tape (Tensor.dims a.value) in
  let vd = value.Tensor.data and avd = a.value.Tensor.data in
  for i = 0 to Tensor.numel a.value - 1 do
    uset vd i (exp (uget avd i))
  done;
  mk tape value (fun node ->
      let gd = (Lazy.force node.grad).Tensor.data in
      let ag = (Lazy.force a.grad).Tensor.data in
      let av = a.value.Tensor.data in
      for i = 0 to Tensor.numel a.value - 1 do
        uset ag i (uget ag i +. (uget gd i *. exp (uget av i)))
      done)
let neg tape a = unary tape a ~f:(fun x -> -.x) ~df:(fun _ g -> -.g)
let scale tape k a = unary tape a ~f:(fun x -> k *. x) ~df:(fun _ g -> k *. g)
let add_scalar tape k a = unary tape a ~f:(fun x -> x +. k) ~df:(fun _ g -> g)
let square tape a = unary tape a ~f:(fun x -> x *. x) ~df:(fun x g -> 2.0 *. x *. g)

let clamp tape ~lo ~hi a =
  unary tape a
    ~f:(fun x -> Float.min hi (Float.max lo x))
    ~df:(fun x g -> if x >= lo && x <= hi then g else 0.0)

let min_ tape a b =
  let value =
    Tensor.map2_into Float.min ~dst:(alloc tape (Tensor.dims a.value)) a.value b.value
  in
  mk tape value (fun node ->
      let gd = (Lazy.force node.grad).Tensor.data in
      let ag = (Lazy.force a.grad).Tensor.data
      and bg = (Lazy.force b.grad).Tensor.data in
      let av = a.value.Tensor.data and bv = b.value.Tensor.data in
      for i = 0 to Tensor.numel a.value - 1 do
        let gi = uget gd i in
        if uget av i <= uget bv i then uset ag i (uget ag i +. gi)
        else uset bg i (uget bg i +. gi)
      done)

let log_softmax tape a =
  let x = a.value in
  if Array.length x.Tensor.shape <> 2 then
    invalid_arg "Autodiff.log_softmax: expected rank 2";
  let m = x.Tensor.shape.(0) and n = x.Tensor.shape.(1) in
  let out = alloc tape [| m; n |] in
  let xd = x.Tensor.data and od = out.Tensor.data in
  for i = 0 to m - 1 do
    let row = i * n in
    let row_max = ref neg_infinity in
    for j = 0 to n - 1 do
      row_max := Float.max !row_max (uget xd (row + j))
    done;
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      sum := !sum +. exp (uget xd (row + j) -. !row_max)
    done;
    let log_z = !row_max +. log !sum in
    for j = 0 to n - 1 do
      uset od (row + j) (uget xd (row + j) -. log_z)
    done
  done;
  mk tape out (fun node ->
      (* dx_ij = g_ij - softmax_ij * sum_j g_ij *)
      let gd = (Lazy.force node.grad).Tensor.data in
      let ag = (Lazy.force a.grad).Tensor.data in
      let v = node.value.Tensor.data in
      for i = 0 to m - 1 do
        let row = i * n in
        let gsum = ref 0.0 in
        for j = 0 to n - 1 do
          gsum := !gsum +. uget gd (row + j)
        done;
        for j = 0 to n - 1 do
          let p = exp (uget v (row + j)) in
          uset ag (row + j) (uget ag (row + j) +. uget gd (row + j) -. (p *. !gsum))
        done
      done)

let gather_cols tape a cols =
  let x = a.value in
  if Array.length x.Tensor.shape <> 2 then
    invalid_arg "Autodiff.gather_cols: expected rank 2";
  let m = x.Tensor.shape.(0) in
  if Array.length cols <> m then
    invalid_arg "Autodiff.gather_cols: one column index per row required";
  let out = alloc tape [| m |] in
  for i = 0 to m - 1 do
    Tensor.set out i (Tensor.get2 x i cols.(i))
  done;
  mk tape out (fun node ->
      let gd = (Lazy.force node.grad).Tensor.data in
      let ag = (Lazy.force a.grad).Tensor.data in
      let n = x.Tensor.shape.(1) in
      for i = 0 to m - 1 do
        let idx = (i * n) + cols.(i) in
        uset ag idx (uget ag idx +. uget gd i)
      done)

let slice_cols tape a ~lo ~hi =
  let x = a.value in
  if Array.length x.Tensor.shape <> 2 then
    invalid_arg "Autodiff.slice_cols: expected rank 2";
  let m = x.Tensor.shape.(0) and n = x.Tensor.shape.(1) in
  if lo < 0 || hi > n || lo >= hi then
    invalid_arg "Autodiff.slice_cols: bad range";
  let w = hi - lo in
  let out = Tensor.slice_cols_into ~dst:(alloc tape [| m; w |]) x ~lo ~hi in
  mk tape out (fun node ->
      let gd = (Lazy.force node.grad).Tensor.data in
      let ag = (Lazy.force a.grad).Tensor.data in
      for i = 0 to m - 1 do
        let arow = (i * n) + lo and grow = i * w in
        for j = 0 to w - 1 do
          uset ag (arow + j) (uget ag (arow + j) +. uget gd (grow + j))
        done
      done)

let sum_rows tape a =
  let x = a.value in
  if Array.length x.Tensor.shape <> 2 then
    invalid_arg "Autodiff.sum_rows: expected rank 2";
  let m = x.Tensor.shape.(0) and n = x.Tensor.shape.(1) in
  let value = Tensor.sum_rows_into ~dst:(alloc tape [| m |]) x in
  mk tape value (fun node ->
      let gd = (Lazy.force node.grad).Tensor.data in
      let ag = (Lazy.force a.grad).Tensor.data in
      for i = 0 to m - 1 do
        let gi = uget gd i in
        let row = i * n in
        for j = 0 to n - 1 do
          uset ag (row + j) (uget ag (row + j) +. gi)
        done
      done)

let sum_all tape a =
  let value = alloc tape [| 1 |] in
  Tensor.set value 0 (Tensor.sum a.value);
  mk tape value (fun node ->
      let g = Tensor.get (Lazy.force node.grad) 0 in
      let ag = (Lazy.force a.grad).Tensor.data in
      for i = 0 to Tensor.numel a.value - 1 do
        uset ag i (uget ag i +. g)
      done)

let mean_all tape a =
  let n = Tensor.numel a.value in
  scale tape (1.0 /. float_of_int n) (sum_all tape a)

let backward (tape : Tape.t) node =
  if Tensor.numel node.value <> 1 then
    invalid_arg "Autodiff.backward: loss must be a scalar";
  Tensor.Workspace.reset (bw_ws ());
  Tensor.fill_inplace (Lazy.force node.grad) 1.0;
  List.iter (fun n -> n.back ()) tape.Tape.nodes
