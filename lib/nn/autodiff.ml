module Param = struct
  type t = { name : string; data : Tensor.t; grad : Tensor.t }

  let create name data =
    { name; data; grad = Tensor.zeros (Tensor.dims data) }

  let zero_grad p = Tensor.fill_inplace p.grad 0.0
  let numel p = Tensor.numel p.data
end

type node = {
  value : Tensor.t;
  grad : Tensor.t;
  back : unit -> unit;  (* reads [grad], accumulates into parents *)
}

module Tape = struct
  type t = { mutable nodes : node list; mutable n : int }

  let create () = { nodes = []; n = 0 }
  let push t node =
    t.nodes <- node :: t.nodes;
    t.n <- t.n + 1
  let length t = t.n
end

let value n = n.value
let grad n = n.grad

let mk tape value back =
  let node = { value; grad = Tensor.zeros (Tensor.dims value); back } in
  (* [back] closures capture the node's grad via this record; we tie the
     knot by building the closure after allocation in each op. *)
  Tape.push tape node;
  node

let of_param tape (p : Param.t) =
  let rec node =
    {
      value = p.Param.data;
      grad = Tensor.zeros (Tensor.dims p.Param.data);
      back = (fun () -> Tensor.add_inplace p.Param.grad node.grad);
    }
  in
  Tape.push tape node;
  node

let const tape t =
  mk tape t (fun () -> ())

let matmul tape a b =
  let rec node =
    {
      value = Tensor.matmul a.value b.value;
      grad = Tensor.zeros [| a.value.Tensor.shape.(0); b.value.Tensor.shape.(1) |];
      back =
        (fun () ->
          (* dA = dC * B^T ; dB = A^T * dC *)
          Tensor.add_inplace a.grad (Tensor.matmul_transpose_b node.grad b.value);
          Tensor.add_inplace b.grad (Tensor.matmul_transpose_a a.value node.grad));
    }
  in
  Tape.push tape node;
  node

let add tape a b =
  let rec node =
    {
      value = Tensor.add a.value b.value;
      grad = Tensor.zeros (Tensor.dims a.value);
      back =
        (fun () ->
          Tensor.add_inplace a.grad node.grad;
          Tensor.add_inplace b.grad node.grad);
    }
  in
  Tape.push tape node;
  node

let sub tape a b =
  let rec node =
    {
      value = Tensor.sub a.value b.value;
      grad = Tensor.zeros (Tensor.dims a.value);
      back =
        (fun () ->
          Tensor.add_inplace a.grad node.grad;
          for i = 0 to Tensor.numel b.grad - 1 do
            Tensor.set b.grad i (Tensor.get b.grad i -. Tensor.get node.grad i)
          done);
    }
  in
  Tape.push tape node;
  node

let mul tape a b =
  let rec node =
    {
      value = Tensor.mul a.value b.value;
      grad = Tensor.zeros (Tensor.dims a.value);
      back =
        (fun () ->
          Tensor.add_inplace a.grad (Tensor.mul node.grad b.value);
          Tensor.add_inplace b.grad (Tensor.mul node.grad a.value));
    }
  in
  Tape.push tape node;
  node

let add_bias tape x b =
  let rec node =
    {
      value = Tensor.add_bias x.value b.value;
      grad = Tensor.zeros (Tensor.dims x.value);
      back =
        (fun () ->
          Tensor.add_inplace x.grad node.grad;
          let m = x.value.Tensor.shape.(0) and n = x.value.Tensor.shape.(1) in
          for i = 0 to m - 1 do
            for j = 0 to n - 1 do
              Tensor.set b.grad j
                (Tensor.get b.grad j +. Tensor.get2 node.grad i j)
            done
          done);
    }
  in
  Tape.push tape node;
  node

let unary tape a ~f ~df =
  (* df receives (input value, output gradient) elementwise *)
  let rec node =
    {
      value = Tensor.map f a.value;
      grad = Tensor.zeros (Tensor.dims a.value);
      back =
        (fun () ->
          for i = 0 to Tensor.numel a.value - 1 do
            Tensor.set a.grad i
              (Tensor.get a.grad i
              +. df (Tensor.get a.value i) (Tensor.get node.grad i))
          done);
    }
  in
  Tape.push tape node;
  node

let relu tape a =
  unary tape a
    ~f:(fun x -> if x > 0.0 then x else 0.0)
    ~df:(fun x g -> if x > 0.0 then g else 0.0)

let exp_ tape a = unary tape a ~f:exp ~df:(fun x g -> g *. exp x)
let neg tape a = unary tape a ~f:(fun x -> -.x) ~df:(fun _ g -> -.g)
let scale tape k a = unary tape a ~f:(fun x -> k *. x) ~df:(fun _ g -> k *. g)
let add_scalar tape k a = unary tape a ~f:(fun x -> x +. k) ~df:(fun _ g -> g)
let square tape a = unary tape a ~f:(fun x -> x *. x) ~df:(fun x g -> 2.0 *. x *. g)

let clamp tape ~lo ~hi a =
  unary tape a
    ~f:(fun x -> Float.min hi (Float.max lo x))
    ~df:(fun x g -> if x >= lo && x <= hi then g else 0.0)

let min_ tape a b =
  let rec node =
    {
      value = Tensor.map2 Float.min a.value b.value;
      grad = Tensor.zeros (Tensor.dims a.value);
      back =
        (fun () ->
          for i = 0 to Tensor.numel a.value - 1 do
            let g = Tensor.get node.grad i in
            if Tensor.get a.value i <= Tensor.get b.value i then
              Tensor.set a.grad i (Tensor.get a.grad i +. g)
            else Tensor.set b.grad i (Tensor.get b.grad i +. g)
          done);
    }
  in
  Tape.push tape node;
  node

let log_softmax tape a =
  let x = a.value in
  if Array.length x.Tensor.shape <> 2 then
    invalid_arg "Autodiff.log_softmax: expected rank 2";
  let m = x.Tensor.shape.(0) and n = x.Tensor.shape.(1) in
  let out = Tensor.zeros [| m; n |] in
  for i = 0 to m - 1 do
    let row_max = ref neg_infinity in
    for j = 0 to n - 1 do
      row_max := Float.max !row_max (Tensor.get2 x i j)
    done;
    let sum = ref 0.0 in
    for j = 0 to n - 1 do
      sum := !sum +. exp (Tensor.get2 x i j -. !row_max)
    done;
    let log_z = !row_max +. log !sum in
    for j = 0 to n - 1 do
      Tensor.set2 out i j (Tensor.get2 x i j -. log_z)
    done
  done;
  let rec node =
    {
      value = out;
      grad = Tensor.zeros [| m; n |];
      back =
        (fun () ->
          (* dx_ij = g_ij - softmax_ij * sum_j g_ij *)
          for i = 0 to m - 1 do
            let gsum = ref 0.0 in
            for j = 0 to n - 1 do
              gsum := !gsum +. Tensor.get2 node.grad i j
            done;
            for j = 0 to n - 1 do
              let p = exp (Tensor.get2 node.value i j) in
              Tensor.set2 a.grad i j
                (Tensor.get2 a.grad i j
                +. Tensor.get2 node.grad i j
                -. (p *. !gsum))
            done
          done);
    }
  in
  Tape.push tape node;
  node

let gather_cols tape a cols =
  let x = a.value in
  if Array.length x.Tensor.shape <> 2 then
    invalid_arg "Autodiff.gather_cols: expected rank 2";
  let m = x.Tensor.shape.(0) in
  if Array.length cols <> m then
    invalid_arg "Autodiff.gather_cols: one column index per row required";
  let out = Tensor.init [| m |] (fun i -> Tensor.get2 x i cols.(i)) in
  let rec node =
    {
      value = out;
      grad = Tensor.zeros [| m |];
      back =
        (fun () ->
          for i = 0 to m - 1 do
            Tensor.set2 a.grad i cols.(i)
              (Tensor.get2 a.grad i cols.(i) +. Tensor.get node.grad i)
          done);
    }
  in
  Tape.push tape node;
  node

let slice_cols tape a ~lo ~hi =
  let x = a.value in
  if Array.length x.Tensor.shape <> 2 then
    invalid_arg "Autodiff.slice_cols: expected rank 2";
  let m = x.Tensor.shape.(0) and n = x.Tensor.shape.(1) in
  if lo < 0 || hi > n || lo >= hi then
    invalid_arg "Autodiff.slice_cols: bad range";
  let w = hi - lo in
  let out = Tensor.init [| m; w |] (fun i -> Tensor.get2 x (i / w) (lo + (i mod w))) in
  let rec node =
    {
      value = out;
      grad = Tensor.zeros [| m; w |];
      back =
        (fun () ->
          for i = 0 to m - 1 do
            for j = 0 to w - 1 do
              Tensor.set2 a.grad i (lo + j)
                (Tensor.get2 a.grad i (lo + j) +. Tensor.get2 node.grad i j)
            done
          done);
    }
  in
  Tape.push tape node;
  node

let sum_rows tape a =
  let x = a.value in
  if Array.length x.Tensor.shape <> 2 then
    invalid_arg "Autodiff.sum_rows: expected rank 2";
  let m = x.Tensor.shape.(0) and n = x.Tensor.shape.(1) in
  let rec node =
    {
      value = Tensor.sum_rows x;
      grad = Tensor.zeros [| m |];
      back =
        (fun () ->
          for i = 0 to m - 1 do
            let g = Tensor.get node.grad i in
            for j = 0 to n - 1 do
              Tensor.set2 a.grad i j (Tensor.get2 a.grad i j +. g)
            done
          done);
    }
  in
  Tape.push tape node;
  node

let sum_all tape a =
  let rec node =
    {
      value = Tensor.scalar (Tensor.sum a.value);
      grad = Tensor.zeros [| 1 |];
      back =
        (fun () ->
          let g = Tensor.get node.grad 0 in
          for i = 0 to Tensor.numel a.value - 1 do
            Tensor.set a.grad i (Tensor.get a.grad i +. g)
          done);
    }
  in
  Tape.push tape node;
  node

let mean_all tape a =
  let n = Tensor.numel a.value in
  scale tape (1.0 /. float_of_int n) (sum_all tape a)

let backward (tape : Tape.t) node =
  if Tensor.numel node.value <> 1 then
    invalid_arg "Autodiff.backward: loss must be a scalar";
  Tensor.fill_inplace node.grad 1.0;
  List.iter (fun n -> n.back ()) tape.Tape.nodes
