type buffer_footprint = { fb_buf : string; fb_elements : int }

type level = {
  depth : int;
  per_buffer : buffer_footprint list;
  elements : int;
}

type t = { n_loops : int; levels : level array }

(* References that resolve against the buffer declarations (declared
   buffer, matching ranks and arity). Anything else is a validation
   problem that Bounds / Nest_lint reports; the footprint just skips
   it. Structurally identical references (same buffer, same subscript
   expressions) are collapsed so e.g. the load and store of an
   accumulator count its cell once. *)
let resolved_refs (nest : Loop_nest.t) =
  let n = Loop_nest.n_loops nest in
  let ok (r : Loop_nest.mem_ref) =
    match List.assoc_opt r.Loop_nest.buf nest.Loop_nest.buffers with
    | None -> false
    | Some shape ->
        Array.length r.Loop_nest.idx = Array.length shape
        && Array.for_all
             (fun (e : Affine.expr) -> Array.length e.Affine.coeffs = n)
             r.Loop_nest.idx
  in
  let same (a : Loop_nest.mem_ref) (b : Loop_nest.mem_ref) =
    a.Loop_nest.buf = b.Loop_nest.buf
    && Array.length a.Loop_nest.idx = Array.length b.Loop_nest.idx
    && Array.for_all2 Affine.equal_expr a.Loop_nest.idx b.Loop_nest.idx
  in
  List.fold_left
    (fun acc r ->
      if ok r && not (List.exists (same r) acc) then r :: acc else acc)
    []
    (Loop_nest.stores_of_body nest @ Loop_nest.loads_of_body nest)
  |> List.rev

let box_elements ~vary ~trip_counts shape (r : Loop_nest.mem_ref) =
  let total = ref 1 in
  Array.iteri
    (fun d e ->
      let iv = Bounds.expr_interval ~vary ~trip_counts e in
      let width = min (iv.Bounds.hi - iv.Bounds.lo + 1) shape.(d) in
      total := !total * max 1 width)
    r.Loop_nest.idx;
  !total

let analyze (nest : Loop_nest.t) =
  let n = Loop_nest.n_loops nest in
  let trip_counts = Loop_nest.trip_counts nest in
  let refs = resolved_refs nest in
  let level depth =
    let vary = Array.init n (fun i -> i >= depth) in
    let per_buffer =
      List.filter_map
        (fun (buf, shape) ->
          let boxes =
            List.filter_map
              (fun (r : Loop_nest.mem_ref) ->
                if r.Loop_nest.buf = buf then
                  Some (box_elements ~vary ~trip_counts shape r)
                else None)
              refs
          in
          match boxes with
          | [] -> None
          | _ ->
              let size = Array.fold_left ( * ) 1 shape in
              let sum = List.fold_left ( + ) 0 boxes in
              Some { fb_buf = buf; fb_elements = min sum size })
        nest.Loop_nest.buffers
    in
    {
      depth;
      per_buffer;
      elements = List.fold_left (fun a b -> a + b.fb_elements) 0 per_buffer;
    }
  in
  { n_loops = n; levels = Array.init (n + 1) level }

let level_elements t d =
  t.levels.(max 0 (min t.n_loops d)).elements

let reuse_distance t d = level_elements t (d + 1)

let predicted_misses t ~trip_counts ~cache_elements ~line_elements =
  let line = float_of_int (max 1 line_elements) in
  (* Shallowest depth whose working set fits; footprints only shrink as
     depth grows, so scan outside-in. *)
  let fit = ref t.n_loops in
  (try
     for d = 0 to t.n_loops do
       if level_elements t d <= cache_elements then begin
         fit := d;
         raise Exit
       end
     done
   with Exit -> ());
  let outer_iters = ref 1.0 in
  for i = 0 to !fit - 1 do
    if i < Array.length trip_counts then
      outer_iters := !outer_iters *. float_of_int trip_counts.(i)
  done;
  !outer_iters *. float_of_int (level_elements t !fit) /. line

(* --- buffer regions and overlap ----------------------------------- *)

type region = Bounds.interval array

let accessed_region (nest : Loop_nest.t) ~kind buf =
  let trip_counts = Loop_nest.trip_counts nest in
  let n = Loop_nest.n_loops nest in
  let refs =
    match kind with
    | `Read -> Loop_nest.loads_of_body nest
    | `Write -> Loop_nest.stores_of_body nest
    | `Any -> Loop_nest.stores_of_body nest @ Loop_nest.loads_of_body nest
  in
  let boxes =
    List.filter_map
      (fun (r : Loop_nest.mem_ref) ->
        if
          r.Loop_nest.buf = buf
          && Array.for_all
               (fun (e : Affine.expr) -> Array.length e.Affine.coeffs = n)
               r.Loop_nest.idx
        then
          Some
            (Array.map
               (fun e -> Bounds.expr_interval ~trip_counts e)
               r.Loop_nest.idx)
        else None)
      refs
  in
  match boxes with
  | [] -> None
  | first :: rest ->
      if List.exists (fun b -> Array.length b <> Array.length first) rest then
        None
      else
        Some
          (List.fold_left
             (fun acc b ->
               Array.map2
                 (fun (a : Bounds.interval) (x : Bounds.interval) ->
                   { Bounds.lo = min a.Bounds.lo x.Bounds.lo;
                     hi = max a.Bounds.hi x.Bounds.hi })
                 acc b)
             first rest)

let regions_overlap a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun (x : Bounds.interval) (y : Bounds.interval) ->
         x.Bounds.lo <= y.Bounds.hi && y.Bounds.lo <= x.Bounds.hi)
       a b

let region_contains ~outer ~inner =
  Array.length outer = Array.length inner
  && Array.for_all2
       (fun (o : Bounds.interval) (i : Bounds.interval) ->
         o.Bounds.lo <= i.Bounds.lo && i.Bounds.hi <= o.Bounds.hi)
       outer inner

type overlap = Disjoint | Partial | Covers

let overlap_to_string = function
  | Disjoint -> "disjoint"
  | Partial -> "partial"
  | Covers -> "covers"

type pc_verdict = { pc_buf : string; pc_overlap : overlap }

let producer_consumer ~producer ~consumer =
  List.filter_map
    (fun (buf, _) ->
      match
        ( accessed_region producer ~kind:`Write buf,
          accessed_region consumer ~kind:`Read buf )
      with
      | Some w, Some r ->
          let pc_overlap =
            if not (regions_overlap w r) then Disjoint
            else if region_contains ~outer:w ~inner:r then Covers
            else Partial
          in
          Some { pc_buf = buf; pc_overlap }
      | _ -> None)
    consumer.Loop_nest.buffers
