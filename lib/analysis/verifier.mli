(** Post-transform schedule verifier.

    A cheap structural check run after every accepted transformation
    (wired into [Sched_state.apply] behind the [MLIR_RL_VERIFY]
    environment variable / the [Env_config.verify_transforms] flag):
    the transformed nest must pass {!Loop_nest.validate}, every access
    must be provably in-bounds ({!Bounds}), and the incrementally
    maintained digest must equal a from-scratch {!Loop_nest.digest} of
    the nest. A failure means a transformation produced a malformed
    nest (or the digest bookkeeping drifted) — it raises {!Violation}
    so the bug surfaces at the transformation that introduced it, not
    as silent garbage downstream.

    The enable flag and the check/violation counters are process-global
    and domain-safe, mirroring the legality-certificate toggle: parallel
    rollout workers share them, and serving/CLI stats read them. *)

exception Violation of string

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Defaults to the [MLIR_RL_VERIFY] environment variable
    ("1"/"true"/"yes"). *)

type stats = { checks : int; violations : int }

val stats : unit -> stats
val reset_stats : unit -> unit

val check : ?expected_digest:string -> Loop_nest.t -> (unit, string) result
(** Run the three-stage check without touching counters or raising:
    validate, bounds soundness, and (when [expected_digest] is given)
    digest consistency. *)

val run : ?expected_digest:string -> Loop_nest.t -> unit
(** Counted variant: increments [checks], and on failure increments
    [violations] and raises {!Violation}. *)
