(** Lint pass over {!Loop_nest.t}: structural failures (anything
    {!Loop_nest.validate} rejects) come back as [Error]; suspicious but
    executable shapes — dead buffers, dead stores, uninitialized
    read-modify-write, redundant inits, trip-count-1 loops, non-uniform
    store/load aliasing — come back as [Warning] or [Info].

    Invariant (tested): [has_error (run nest)] iff
    [Loop_nest.validate nest] is [Error _]. *)

type severity = Error | Warning | Info
type diagnostic = { severity : severity; loc : string; message : string }

val severity_label : severity -> string
val pp_diagnostic : Format.formatter -> diagnostic -> unit
val diagnostic_to_string : diagnostic -> string
val has_error : diagnostic list -> bool
val run : Loop_nest.t -> diagnostic list
