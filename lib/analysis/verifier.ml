exception Violation of string

let enabled_flag =
  Atomic.make
    (match Sys.getenv_opt "MLIR_RL_VERIFY" with
    | Some ("1" | "true" | "yes") -> true
    | Some _ | None -> false)

let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b

type stats = { checks : int; violations : int }

let checks_ctr = Atomic.make 0
let violations_ctr = Atomic.make 0

let stats () =
  { checks = Atomic.get checks_ctr; violations = Atomic.get violations_ctr }

let reset_stats () =
  Atomic.set checks_ctr 0;
  Atomic.set violations_ctr 0

let check ?expected_digest (nest : Loop_nest.t) =
  match Loop_nest.validate nest with
  | Error e -> Error ("validate: " ^ e)
  | Ok () -> (
      match Bounds.check nest with
      | Error e -> Error ("bounds: " ^ e)
      | Ok () -> (
          match expected_digest with
          | None -> Ok ()
          | Some d ->
              let fresh = Loop_nest.digest nest in
              if String.equal d fresh then Ok ()
              else
                Error
                  (Printf.sprintf
                     "digest drift: state carries %s, recomputed %s" d fresh)))

let run ?expected_digest nest =
  Atomic.incr checks_ctr;
  match check ?expected_digest nest with
  | Ok () -> ()
  | Error e ->
      Atomic.incr violations_ctr;
      raise
        (Violation
           (Printf.sprintf "schedule verifier: nest %s: %s"
              nest.Loop_nest.name e))
