(** Sound per-transformation legality verdicts for a loop nest.

    Built on {!Dependence}: [true] means "provably
    semantics-preserving", [false] means "could not prove it" —
    conservative false negatives are possible, false positives are a
    bug (enforced by the differential suite in test/test_dependence.ml).

    Loop indices are absolute positions in the nest; the action layer
    translates point-band-relative indices before asking. *)

type t

val analyze : Loop_nest.t -> t
val n_loops : t -> int

val carries_dependence : t -> int -> bool
(** Loop [k] carries a dependence (textbook notion: some dependence has
    [=] on every outer loop and [<] on [k]). *)

val can_parallelize : t -> int -> bool
(** No dependence is sensitive to loop [k] in any direction context —
    iterations of [k] may run concurrently even after the chunk loop is
    hoisted above the band (the environment's tile-to-forall
    Parallelize). Strictly stronger than [not (carries_dependence t k)]. *)

val can_interchange : t -> int -> bool
(** Swapping adjacent loops [k] and [k+1] preserves every dependence
    (no [(<, >)] direction pair at those positions). Accumulator
    self-dependences ([C\[i\] = C\[i\] + ...]) are exempt: a sequential
    reordering of one cell's reduction updates only reassociates the
    reduction, which this environment treats as legal (parallelization
    does not get this exemption — concurrent updates race). *)

val can_vectorize : t -> bool
(** The innermost loop carries no dependence, except same-statement
    accumulator pairs (identical subscripts), which lower to vector
    reductions. *)

val can_tile : t -> band_start:int -> bool
(** The band [\[band_start, n)] is fully permutable, so rectangular
    tiling (which hoists chunk loops above untiled band members) is
    order-safe. Accumulator self-dependences are exempt, as in
    {!can_interchange}. Memoized per [band_start]. *)

val can_unroll : t -> bool
(** Always true: unrolling replicates the body in iteration order. *)

type verdicts = {
  parallelize : bool array;
  interchange : bool array;
  vectorize : bool;
  tile : bool;
  unroll : bool;
}

val verdicts : ?band_start:int -> t -> verdicts
(** The whole legality table at once (CLI / docs convenience). *)
