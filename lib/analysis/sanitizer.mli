(** Differential schedule sanitizer.

    Runs the reference interpreter on an original nest and on its
    transformed counterpart over identical seeded pseudo-random inputs
    and compares the outputs element-wise (relative tolerance, since
    tiling and unrolling reassociate floating-point reductions). A
    mismatch is the strongest possible evidence of a miscompile: the
    transformation changed what the program computes.

    Interpretation is exact but slow, so every check is budgeted by
    total iteration count (big nests are skipped, and counted as
    skips), and callers deduplicate by digest pair via {!fresh_pair} so
    a memoized search doesn't re-execute the same (original,
    transformed) comparison thousands of times. Enablement, the budget
    and all counters are process-global and domain-safe; the
    [MLIR_RL_SANITIZE] / [MLIR_RL_SANITIZE_BUDGET] environment
    variables set the defaults.

    Violations are {e counted}, not raised — the sanitizer is a
    monitoring layer (surfaced in serve metrics and CLI stats); the
    {!Verifier} is the fail-stop layer. *)

val enabled : unit -> bool
val set_enabled : bool -> unit
(** Defaults to the [MLIR_RL_SANITIZE] environment variable
    ("1"/"true"/"yes"). *)

val budget : unit -> int
val set_budget : int -> unit
(** Maximum summed iteration count (reference + candidate) a single
    differential run may execute; larger pairs are skipped. Defaults to
    [MLIR_RL_SANITIZE_BUDGET] or 300_000. *)

type outcome =
  | Matched  (** outputs agree within tolerance *)
  | Skipped of string  (** not executed (over budget, uninterpretable) *)
  | Mismatch of string  (** differential violation — includes evidence *)

type stats = { runs : int; skips : int; violations : int }

val stats : unit -> stats
val reset_stats : unit -> unit

val fresh_pair : reference:string -> candidate:string -> bool
(** Global dedup registry keyed by digest pair: true exactly once per
    (reference, candidate) pair per process, so hot search loops
    sanitize each distinct transformation once. *)

val seeded_inputs : Loop_nest.t -> (string * float array) list
(** Deterministic pseudo-random fills for the nest's input buffers
    (loaded but never stored), keyed by the nest digest and buffer
    name; values in [0.25, 1.25] so divisions and logs stay
    well-conditioned. *)

val run_pair :
  ?tol:float ->
  reference:Loop_nest.t ->
  ref_inputs:(string * float array) list ->
  candidate:Loop_nest.t ->
  cand_inputs:(string * float array) list ->
  unit ->
  outcome
(** The counted differential core: budget check, interpret both nests,
    compare the output buffers flat (they may be shaped differently —
    im2col's GEMM output is the conv output reshaped). Updates the
    global counters. [tol] is the relative tolerance (default 1e-6). *)

val skip : string -> outcome
(** Record a counted skip without executing anything — for callers that
    decide a pair is uncheckable before reaching {!run_pair}. *)

val check : reference:Loop_nest.t -> candidate:Loop_nest.t -> outcome
(** [run_pair] over shared {!seeded_inputs} of the reference — the
    common case where the transformation preserved buffer names. *)

val outcome_to_string : outcome -> string
