(** Polyhedral-lite dependence analysis over {!Loop_nest.t}.

    Decides, conservatively, whether two subscripted accesses to the
    same buffer can touch the same element at two (direction-related)
    points of the iteration domain, using the classic ZIV / GCD /
    Banerjee-bound tests over the {!Affine.expr} subscripts.

    All answers over-approximate: a "feasible" verdict may be a false
    positive, but "infeasible" is a proof. {!Legality} builds sound
    action masks on top of this guarantee. *)

type kind = Flow | Anti | Output

type dir = Lt | Eq | Gt
(** Direction of a dependence on one loop: source iteration before (Lt),
    equal to (Eq) or after (Gt) the destination iteration. *)

type constr = Any | Must of dir
(** Per-loop constraint of a feasibility query. *)

type dependence = {
  kind : kind;
  buf : string;
  src_stmt : int;
  dst_stmt : int;
  carrier : int option;
      (** Outermost loop with a [Lt] direction; [None] for a
          loop-independent (same-iteration) dependence. *)
  dirs : dir option array;
      (** One entry per loop; [None] prints as ['*'] — more than one
          direction remains feasible at that position. *)
}

val kind_label : kind -> string
val dir_label : dir option -> string
val pp_dependence : Format.formatter -> dependence -> unit
val dependence_to_string : dependence -> string

val exists_dep : ?exclude_accumulator:bool -> Loop_nest.t -> constr array -> bool
(** [exists_dep nest cs] — does any ordered pair of same-buffer accesses
    (at least one a store) admit a dependence under the per-loop
    constraints [cs] (length = loop count)? Pairs are enumerated in both
    orders, so a [Must Lt] constraint also covers the symmetric [Gt]
    case of the reversed pair. With [~exclude_accumulator:true],
    same-statement pairs with identical subscripts (the [C += ...]
    reduction idiom) are skipped. *)

val analyze : Loop_nest.t -> dependence list
(** All dependences of the nest: at most one loop-independent entry plus
    one entry per feasible carrier level, per ordered access pair. *)
