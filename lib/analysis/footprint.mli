(** Per-loop-level data footprint, reuse distance, and buffer-overlap
    (alias) analysis.

    For each nesting depth [d] (0 = whole nest, [n_loops] = one body
    execution) the pass computes how many distinct buffer elements one
    execution of the subtree at that depth touches, with the outer
    iterators [0..d-1] pinned at an arbitrary value and the inner
    iterators [d..n-1] ranging over their trip counts. Each reference
    contributes the bounding box of its subscript intervals
    ({!Bounds.expr_interval} restricted to the varying iterators);
    references with structurally identical subscripts are deduplicated
    and the per-buffer total is capped at the buffer size, so the
    result is a sound over-approximation of the true distinct-element
    count (exact for the dense single-reference accesses produced by
    {!Lower}).

    The per-level footprints feed three consumers: a working-set cache
    miss predictor cross-checked against {!Cache_sim} (see the test
    suite), optional {!Observation} features, and the producer/consumer
    region-overlap verdict the fusion work needs. *)

type buffer_footprint = { fb_buf : string; fb_elements : int }

type level = {
  depth : int;  (** iterators [depth..n-1] vary, [0..depth-1] pinned *)
  per_buffer : buffer_footprint list;  (** in buffer-declaration order *)
  elements : int;  (** total distinct elements touched at this depth *)
}

type t = {
  n_loops : int;
  levels : level array;  (** [n_loops + 1] entries, index = depth *)
}

val analyze : Loop_nest.t -> t

val level_elements : t -> int -> int
(** [level_elements t d] — total footprint at depth [d]; clamped to the
    valid range, so [d > n_loops] returns the body footprint. *)

val reuse_distance : t -> int -> int
(** [reuse_distance t d] — distinct elements touched between successive
    iterations of loop [d], i.e. the footprint of depth [d + 1]. Loop-
    carried reuse at depth [d] survives in a cache of at least this
    many elements. *)

val predicted_misses :
  t -> trip_counts:int array -> cache_elements:int -> line_elements:int -> float
(** Analytic working-set miss count for an LRU cache holding
    [cache_elements] elements with [line_elements]-element lines: find
    the shallowest depth [l] whose footprint fits the cache; everything
    below [l] hits after the first touch, so misses ≈ (product of trip
    counts above [l]) × footprint(l) ÷ line size. A coarse model — its
    job is to rank schedules the same way {!Cache_sim} does, not to
    match absolute counts. *)

(** {1 Buffer regions and overlap} *)

type region = Bounds.interval array
(** Per-dimension inclusive subscript intervals — the bounding box of
    the elements a nest touches in one buffer. *)

val accessed_region :
  Loop_nest.t -> kind:[ `Read | `Write | `Any ] -> string -> region option
(** Union bounding box over the nest's references to the named buffer
    of the given kind; [None] when the buffer has no such (structurally
    resolvable) reference. *)

val regions_overlap : region -> region -> bool
val region_contains : outer:region -> inner:region -> bool

type overlap = Disjoint | Partial | Covers

(** Producer/consumer verdict for one shared buffer: how the producer's
    written region relates to the consumer's read region. [Covers]
    (every element the consumer reads was written by the producer) is
    the fusion-friendly case; [Partial] means the consumer also reads
    elements the producer never defined; [Disjoint] means the shared
    name carries no actual data flow. *)
type pc_verdict = { pc_buf : string; pc_overlap : overlap }

val producer_consumer :
  producer:Loop_nest.t -> consumer:Loop_nest.t -> pc_verdict list
(** One verdict per buffer the producer writes and the consumer reads
    (matched by name), in consumer buffer-declaration order. *)

val overlap_to_string : overlap -> string
