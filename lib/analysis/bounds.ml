type interval = { lo : int; hi : int }

(* Exact min/max of an affine expression over the box domain: a linear
   function over a product of intervals attains its extrema at the
   corners selected per coefficient sign. Identical arithmetic to
   Loop_nest.validate, so the two can never disagree about whether an
   access is in range. *)
let expr_interval ?vary ~trip_counts (e : Affine.expr) =
  let n = Array.length trip_counts in
  if Array.length e.Affine.coeffs <> n then
    invalid_arg "Bounds.expr_interval: arity mismatch";
  (match vary with
  | Some v when Array.length v <> n ->
      invalid_arg "Bounds.expr_interval: vary mask arity mismatch"
  | _ -> ());
  let varies i = match vary with None -> true | Some v -> v.(i) in
  let lo = ref e.Affine.const and hi = ref e.Affine.const in
  Array.iteri
    (fun i c ->
      if varies i then begin
        let extent = trip_counts.(i) - 1 in
        if c > 0 then hi := !hi + (c * extent) else lo := !lo + (c * extent)
      end)
    e.Affine.coeffs;
  { lo = !lo; hi = !hi }

type violation = {
  v_buf : string;
  v_dim : int;
  v_range : interval;
  v_extent : int;
  v_is_store : bool;
}

type report = {
  checked : int;
  violations : violation list;
  structural : string list;
}

let pp_violation ppf v =
  Format.fprintf ppf
    "%s of buffer %s dim %d: subscript range [%d, %d] out of [0, %d)"
    (if v.v_is_store then "store" else "load")
    v.v_buf v.v_dim v.v_range.lo v.v_range.hi v.v_extent

let violation_to_string v = Format.asprintf "%a" pp_violation v

let analyze (nest : Loop_nest.t) =
  let n = Loop_nest.n_loops nest in
  let trip_counts = Loop_nest.trip_counts nest in
  let checked = ref 0 in
  let violations = ref [] in
  let structural = ref [] in
  let bad fmt = Format.kasprintf (fun s -> structural := s :: !structural) fmt in
  let check_ref is_store (r : Loop_nest.mem_ref) =
    incr checked;
    match List.assoc_opt r.Loop_nest.buf nest.Loop_nest.buffers with
    | None -> bad "undeclared buffer %s" r.Loop_nest.buf
    | Some shape ->
        if Array.length r.Loop_nest.idx <> Array.length shape then
          bad "buffer %s: rank %d, subscript rank %d" r.Loop_nest.buf
            (Array.length shape)
            (Array.length r.Loop_nest.idx)
        else
          Array.iteri
            (fun d (e : Affine.expr) ->
              if Array.length e.Affine.coeffs <> n then
                bad "buffer %s dim %d: subscript arity %d, expected %d"
                  r.Loop_nest.buf d
                  (Array.length e.Affine.coeffs)
                  n
              else
                let range = expr_interval ~trip_counts e in
                if range.hi >= shape.(d) || range.lo < 0 then
                  violations :=
                    {
                      v_buf = r.Loop_nest.buf;
                      v_dim = d;
                      v_range = range;
                      v_extent = shape.(d);
                      v_is_store = is_store;
                    }
                    :: !violations)
            r.Loop_nest.idx
  in
  List.iter (check_ref true) (Loop_nest.stores_of_body nest);
  List.iter (check_ref false) (Loop_nest.loads_of_body nest);
  {
    checked = !checked;
    violations = List.rev !violations;
    structural = List.rev !structural;
  }

let is_sound r = r.violations = [] && r.structural = []

let check nest =
  let r = analyze nest in
  match (r.structural, r.violations) with
  | [], [] -> Ok ()
  | s :: _, _ -> Error s
  | [], v :: _ -> Error (violation_to_string v)
