(* Diagnostics pass over a loop nest: structural problems (validation
   failures) surface as errors; suspicious-but-legal shapes surface as
   warnings or notes. CI's @lint-examples alias fails on any Error. *)

type severity = Error | Warning | Info
type diagnostic = { severity : severity; loc : string; message : string }

let severity_label = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp_diagnostic ppf d =
  Format.fprintf ppf "%s: %s: %s" (severity_label d.severity) d.loc d.message

let diagnostic_to_string d = Format.asprintf "%a" pp_diagnostic d
let has_error ds = List.exists (fun d -> d.severity = Error) ds

let diag severity loc fmt =
  Format.kasprintf (fun message -> { severity; loc; message }) fmt

let run (nest : Loop_nest.t) =
  let out = ref [] in
  let emit d = out := d :: !out in
  let name = nest.Loop_nest.name in
  (* 1. Structural validity; a failing nest lints as an error so that
     [validate] and the linter always agree on hard problems. *)
  (match Loop_nest.validate nest with
  | Ok () -> ()
  | Error msg -> emit (diag Error name "%s" msg));
  (* 1b. Every out-of-bounds access, individually. [validate] reports
     only the first problem it meets; the interval analysis visits all
     references, so a broken tile/pad shows each offending access. The
     two use identical corner arithmetic, so these errors appear only
     when validate already failed above — the has_error-iff-validate
     invariant is preserved. *)
  let bounds = Bounds.analyze nest in
  List.iter
    (fun (v : Bounds.violation) ->
      emit
        (diag Error
           (name ^ "/" ^ v.Bounds.v_buf)
           "out-of-bounds access: %s" (Bounds.violation_to_string v)))
    bounds.Bounds.violations;
  let loads = Loop_nest.loads_of_body nest in
  let stores = Loop_nest.stores_of_body nest in
  let loaded b = List.exists (fun (r : Loop_nest.mem_ref) -> r.Loop_nest.buf = b) loads in
  let stored b = List.exists (fun (r : Loop_nest.mem_ref) -> r.Loop_nest.buf = b) stores in
  let output_buf =
    match List.rev stores with
    | [] -> None
    | r :: _ -> Some r.Loop_nest.buf
  in
  List.iter
    (fun (b, _) ->
      let loc = name ^ "/" ^ b in
      if (not (loaded b)) && not (stored b) then
        emit (diag Warning loc "dead buffer: declared but never accessed")
      else if stored b && (not (loaded b)) && Some b <> output_buf then
        emit
          (diag Warning loc
             "dead store: written but never read, and not the nest output");
      if stored b && loaded b && not (List.mem_assoc b nest.Loop_nest.inits)
      then
        emit
          (diag Warning loc
             "read-modify-write without an init: reads are undefined unless \
              the buffer is supplied as an input");
      if List.mem_assoc b nest.Loop_nest.inits && not (loaded b) then
        emit
          (diag Info loc
             "redundant init: the buffer is never read, so the init value \
              cannot influence the computation"))
    nest.Loop_nest.buffers;
  Array.iteri
    (fun i (l : Loop_nest.loop) ->
      if l.Loop_nest.ub = 1 then
        emit
          (diag Info
             (Printf.sprintf "%s/loop %d" name i)
             "trip-count-1 loop: a degenerate dimension that transformations \
              cannot exploit"))
    nest.Loop_nest.loops;
  (* Stores aliasing loads non-uniformly: same buffer, but the subscript
     coefficient patterns differ in some dimension, so the dependence
     between them is coupled rather than a constant shift. *)
  let non_uniform (s : Loop_nest.mem_ref) (l : Loop_nest.mem_ref) =
    s.Loop_nest.buf = l.Loop_nest.buf
    && Array.length s.Loop_nest.idx = Array.length l.Loop_nest.idx
    && Array.exists2
         (fun (a : Affine.expr) (b : Affine.expr) ->
           a.Affine.coeffs <> b.Affine.coeffs)
         s.Loop_nest.idx l.Loop_nest.idx
  in
  List.iter
    (fun (s : Loop_nest.mem_ref) ->
      if List.exists (fun l -> non_uniform s l) loads then
        emit
          (diag Info
             (name ^ "/" ^ s.Loop_nest.buf)
             "store aliases a load of the same buffer with a different \
              subscript pattern: the dependence is coupled, so the analysis \
              is likely conservative here"))
    stores;
  (* Loop indices that no subscript reads, and stores they shadow. A
     multi-trip loop whose index appears in no access repeats identical
     work; a store whose subscript ignores such a varying loop is
     overwritten by every later iteration — unless the statement also
     loads the stored cell (a reduction accumulator, which is the
     legitimate shape of exactly this pattern). *)
  let uses_index (r : Loop_nest.mem_ref) i =
    Array.exists
      (fun (e : Affine.expr) ->
        i < Array.length e.Affine.coeffs && e.Affine.coeffs.(i) <> 0)
      r.Loop_nest.idx
  in
  let accumulator (Loop_nest.Store (r, rhs)) =
    List.exists
      (fun (l : Loop_nest.mem_ref) ->
        l.Loop_nest.buf = r.Loop_nest.buf
        && Array.length l.Loop_nest.idx = Array.length r.Loop_nest.idx
        && Array.for_all2 Affine.equal_expr l.Loop_nest.idx r.Loop_nest.idx)
      (List.rev (Loop_nest.refs_of_sexpr [] rhs))
  in
  Array.iteri
    (fun i (l : Loop_nest.loop) ->
      if l.Loop_nest.ub > 1 then begin
        let used_anywhere =
          List.exists (fun r -> uses_index r i) (stores @ loads)
        in
        if not used_anywhere then
          emit
            (diag Warning
               (Printf.sprintf "%s/loop %d" name i)
               "unused loop index: no access reads it, so all %d iterations \
                repeat identical work"
               l.Loop_nest.ub)
        else
          List.iter
            (fun (Loop_nest.Store (r, _) as st) ->
              if (not (uses_index r i)) && not (accumulator st) then
                emit
                  (diag Warning
                     (name ^ "/" ^ r.Loop_nest.buf)
                     "shadowed store: the subscript ignores loop %d, so each \
                      of its %d iterations overwrites the previous one's \
                      result without reading it"
                     i l.Loop_nest.ub))
            nest.Loop_nest.body
      end)
    nest.Loop_nest.loops;
  List.rev !out
