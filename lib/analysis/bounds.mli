(** Interval analysis over affine index maps.

    Proves every access of every buffer in-range over the nest's box
    domain, using the same per-coefficient-sign corner arithmetic as
    {!Loop_nest.validate} — but where [validate] stops at the first
    problem with a formatted string, this pass visits every reference
    and returns typed per-access violations (buffer, dimension, the
    computed subscript interval, the declared extent), so callers such
    as {!Nest_lint} and the post-transform {!Verifier} can report all
    out-of-bounds accesses introduced by a broken tile/pad/interchange
    rather than just the first.

    On the box domain [0, ub) the corner bound is exact, not an
    over-approximation: an access is reported out-of-bounds iff some
    iteration really indexes outside the buffer. *)

type interval = { lo : int; hi : int }
(** An inclusive integer interval [lo, hi]. *)

val expr_interval :
  ?vary:bool array -> trip_counts:int array -> Affine.expr -> interval
(** [expr_interval ~trip_counts e] is the exact range of [e] over the
    box [0, trip_counts.(i)) per iterator. With [vary], iterators [i]
    with [vary.(i) = false] are pinned (contribute nothing beyond the
    constant — the returned interval is then the range of [e] relative
    to any fixed assignment of the pinned iterators, used by
    {!Footprint} for per-level extents). Raises [Invalid_argument] if
    arities disagree. *)

type violation = {
  v_buf : string;  (** buffer being accessed *)
  v_dim : int;  (** which dimension of the subscript *)
  v_range : interval;  (** computed subscript range over the domain *)
  v_extent : int;  (** declared extent of that dimension *)
  v_is_store : bool;  (** store or load *)
}

type report = {
  checked : int;  (** memory references examined *)
  violations : violation list;  (** out-of-bounds accesses, in body order *)
  structural : string list;
      (** references that could not be bounds-checked at all: undeclared
          buffer, rank mismatch, or subscript-arity mismatch *)
}

val analyze : Loop_nest.t -> report
(** Bounds-check every store and load of the nest. *)

val is_sound : report -> bool
(** No violations and no structurally unresolvable references. *)

val check : Loop_nest.t -> (unit, string) result
(** [analyze] folded to a result; the error message lists the first
    violation (or structural problem) in the same style as
    {!Loop_nest.validate}. *)

val pp_violation : Format.formatter -> violation -> unit
val violation_to_string : violation -> string
