(* Sound legality verdicts for the environment's transformations,
   derived from {!Dependence} feasibility queries.

   Soundness contract: a [true] verdict means the transformation
   provably preserves semantics on this nest; [false] means "could not
   prove it" (the dependence tests are conservative), never "provably
   illegal". The differential suite in test/test_dependence.ml enforces
   the first half against the interpreter. *)

open Dependence

type t = {
  nest : Loop_nest.t;
  n : int;
  carried : bool array;
  dim_parallel : bool array;
  swap_ok : bool array;  (* length max (n-1) 0 *)
  vector_ok : bool;
  mutable tile_memo : (int * bool) list;
}

let constraints n f = Array.init n f

(* Does loop [k] carry a dependence — same iteration of every outer
   loop, source strictly before destination on [k]? *)
let carries nest n k =
  exists_dep nest
    (constraints n (fun i ->
         if i < k then Must Eq else if i = k then Must Lt else Any))

(* Is any dependence at all sensitive to loop [k] (a non-[=] direction
   in any surrounding context)? Loops clean in this sense can run their
   iterations in any order — or concurrently — wherever they sit in the
   nest, which is what the environment's Parallelize (tile-to-forall,
   hoisting the chunk loop above the band) requires. *)
let dim_sensitive nest n k =
  exists_dep nest (constraints n (fun i -> if i = k then Must Lt else Any))

(* Adjacent interchange of [k] and [k+1] is illegal only when a
   dependence is carried by [k] with a [>] direction on [k+1]: swapping
   would make the destination execute first. Accumulator self-deps are
   excluded: interchange is a sequential reordering, and reordering the
   updates of one accumulation cell only reassociates the reduction —
   legal in this environment (like the paper's transformations, and like
   the vectorize verdict below). Parallelization must NOT make this
   exclusion: concurrent accumulator updates race rather than
   reassociate, so [dim_sensitive] keeps every dependence. *)
let swap_blocked nest n k =
  exists_dep ~exclude_accumulator:true nest
    (constraints n (fun i ->
         if i < k then Must Eq
         else if i = k then Must Lt
         else if i = k + 1 then Must Gt
         else Any))

(* Vectorizing the innermost loop: no dependence carried by it, except
   the same-statement accumulator pattern (identical subscripts), which
   lowers to a vector reduction. *)
let vectorizable nest n =
  n = 0
  || not
       (exists_dep ~exclude_accumulator:true nest
          (constraints n (fun i -> if i = n - 1 then Must Lt else Must Eq)))

let analyze (nest : Loop_nest.t) =
  let n = Loop_nest.n_loops nest in
  {
    nest;
    n;
    carried = Array.init n (fun k -> carries nest n k);
    dim_parallel = Array.init n (fun k -> not (dim_sensitive nest n k));
    swap_ok = Array.init (max (n - 1) 0) (fun k -> not (swap_blocked nest n k));
    vector_ok = vectorizable nest n;
    tile_memo = [];
  }

let n_loops t = t.n
let carries_dependence t k = k >= 0 && k < t.n && t.carried.(k)
let can_parallelize t k = k >= 0 && k < t.n && t.dim_parallel.(k)
let can_interchange t k = k >= 0 && k < t.n - 1 && t.swap_ok.(k)
let can_vectorize t = t.vector_ok
let can_unroll (_ : t) = true  (* unrolling replicates the body in order *)

(* Tiling the band [band_start, n) inserts the chunk loops at
   [band_start], above untiled band members — an implicit interchange.
   It is legal when the band is fully permutable: no dependence carried
   inside the band has a [>] direction on any deeper band loop.
   Accumulator self-deps are excluded for the same reason as in
   [swap_blocked]: tiling is sequential, so permuting one cell's
   reduction updates only reassociates. *)
let can_tile t ~band_start =
  match List.assoc_opt band_start t.tile_memo with
  | Some v -> v
  | None ->
      let blocked = ref false in
      for c = max 0 band_start to t.n - 1 do
        for k = c + 1 to t.n - 1 do
          if not !blocked then
            if
              exists_dep ~exclude_accumulator:true t.nest
                (constraints t.n (fun i ->
                     if i < c then Must Eq
                     else if i = c then Must Lt
                     else if i = k then Must Gt
                     else Any))
            then blocked := true
        done
      done;
      let v = not !blocked in
      t.tile_memo <- (band_start, v) :: t.tile_memo;
      v

(* The per-action legality table, for the CLI and the docs. *)
type verdicts = {
  parallelize : bool array;
  interchange : bool array;
  vectorize : bool;
  tile : bool;
  unroll : bool;
}

let verdicts ?(band_start = 0) t =
  {
    parallelize = Array.init t.n (fun k -> can_parallelize t k);
    interchange = Array.init (max (t.n - 1) 0) (fun k -> can_interchange t k);
    vectorize = can_vectorize t;
    tile = can_tile t ~band_start;
    unroll = can_unroll t;
  }
