(* Polyhedral-lite dependence analysis over [Loop_nest.t].

   Every pair of accesses to the same buffer (at least one of them a
   store) induces a dependence system: the two subscript vectors must be
   equal at two iteration points of the (rectangular) loop domain,
   subject to a per-loop direction constraint between the points. The
   system is decided conservatively with the classic battery:

   - ZIV: a subscript dimension that uses no loop variable depends only
     on the constants — equal constants or no dependence.
   - GCD: the gcd of the live coefficients must divide the constant
     difference, else the diophantine equation has no solution.
   - Banerjee bounds: the range of [f_a(i) - f_b(j)] over the
     (direction-constrained) domain must contain 0. Under a [<] or [>]
     constraint the range is evaluated at the vertices of the triangular
     region — exact for a linear form, hence a sound over-approximation
     of the lattice range.

   "Feasible" answers are over-approximations: the analysis may report a
   dependence that no execution realizes, but it never misses one —
   every "no dependence" verdict is backed by one of the disproofs
   above. Legality built on top (see {!Legality}) therefore only errs
   toward conservatism. *)

type kind = Flow | Anti | Output
type dir = Lt | Eq | Gt
type constr = Any | Must of dir

type dependence = {
  kind : kind;
  buf : string;
  src_stmt : int;
  dst_stmt : int;
  carrier : int option;  (* outermost loop with a [<] direction; None =
                            loop-independent (same iteration) *)
  dirs : dir option array;  (* per loop; None prints as '*' (undetermined) *)
}

let kind_label = function Flow -> "flow" | Anti -> "anti" | Output -> "output"

let dir_label = function
  | Some Lt -> "<"
  | Some Eq -> "="
  | Some Gt -> ">"
  | None -> "*"

let pp_dependence ppf d =
  Format.fprintf ppf "%s %s: stmt %d -> stmt %d, %s, dirs (%s)" (kind_label d.kind)
    d.buf d.src_stmt d.dst_stmt
    (match d.carrier with
    | None -> "loop-independent"
    | Some c -> Printf.sprintf "carried by loop %d" c)
    (String.concat ", " (Array.to_list (Array.map dir_label d.dirs)))

let dependence_to_string d = Format.asprintf "%a" pp_dependence d

(* ------------------------------------------------------------------ *)
(* Access collection                                                  *)
(* ------------------------------------------------------------------ *)

type access = {
  stmt : int;
  seq : int;  (* execution position inside the statement: loads 0, store 1 *)
  is_store : bool;
  mref : Loop_nest.mem_ref;
}

let rec load_refs acc = function
  | Loop_nest.Load r -> r :: acc
  | Loop_nest.Const _ -> acc
  | Loop_nest.Binop (_, a, b) -> load_refs (load_refs acc a) b
  | Loop_nest.Unop (_, e) -> load_refs acc e

let accesses (nest : Loop_nest.t) =
  List.concat
    (List.mapi
       (fun s (Loop_nest.Store (r, e)) ->
         let loads = List.rev (load_refs [] e) in
         List.map (fun lr -> { stmt = s; seq = 0; is_store = false; mref = lr }) loads
         @ [ { stmt = s; seq = 1; is_store = true; mref = r } ])
       nest.Loop_nest.body)

let stored_buffers (nest : Loop_nest.t) =
  List.sort_uniq compare
    (List.map (fun (r : Loop_nest.mem_ref) -> r.Loop_nest.buf)
       (Loop_nest.stores_of_body nest))

(* ------------------------------------------------------------------ *)
(* Feasibility of one direction-constrained system                    *)
(* ------------------------------------------------------------------ *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Range of [a*i - b*j] with [0 <= i, j <= u-1] under the constraint.
   [None] means the constrained region is empty (u < 2 for < or >). *)
let term_range ~u a b = function
  | Must Eq ->
      let v = (a - b) * (u - 1) in
      Some (min 0 v, max 0 v)
  | Any ->
      let ai = a * (u - 1) and bj = -b * (u - 1) in
      Some (min 0 ai + min 0 bj, max 0 ai + max 0 bj)
  | Must Lt ->
      if u < 2 then None
      else
        (* vertices of {0 <= i < j <= u-1}: (0,1), (0,u-1), (u-2,u-1) *)
        let v1 = -b and v2 = -b * (u - 1) and v3 = (a * (u - 2)) - (b * (u - 1)) in
        Some (min v1 (min v2 v3), max v1 (max v2 v3))
  | Must Gt ->
      if u < 2 then None
      else
        (* vertices of {0 <= j < i <= u-1}: (1,0), (u-1,0), (u-1,u-2) *)
        let v1 = a and v2 = a * (u - 1) and v3 = (a * (u - 1)) - (b * (u - 2)) in
        Some (min v1 (min v2 v3), max v1 (max v2 v3))

let region_nonempty (loops : Loop_nest.loop array) cs =
  let ok = ref true in
  Array.iteri
    (fun k c ->
      match c with
      | Must Lt | Must Gt -> if loops.(k).Loop_nest.ub < 2 then ok := false
      | Must Eq | Any -> ())
    cs;
  !ok

(* One subscript dimension: can [ea(i) = eb(j)] hold under [cs]? *)
let dim_feasible (loops : Loop_nest.loop array) (ea : Affine.expr)
    (eb : Affine.expr) cs =
  let n = Array.length loops in
  (* Banerjee bounds *)
  let lo = ref (ea.Affine.const - eb.Affine.const) in
  let hi = ref !lo in
  let empty = ref false in
  for k = 0 to n - 1 do
    match term_range ~u:loops.(k).Loop_nest.ub ea.Affine.coeffs.(k)
            eb.Affine.coeffs.(k) cs.(k)
    with
    | None -> empty := true
    | Some (tlo, thi) ->
        lo := !lo + tlo;
        hi := !hi + thi
  done;
  if !empty then false
  else if !lo > 0 || !hi < 0 then false
  else begin
    (* GCD / ZIV: sum_k (a_k i_k - b_k j_k) = cb - ca must have an
       integer solution. Loops pinned by [Eq] merge into one variable;
       trip-count-1 loops contribute nothing (their variable is 0). *)
    let g = ref 0 in
    for k = 0 to n - 1 do
      if loops.(k).Loop_nest.ub > 1 then
        match cs.(k) with
        | Must Eq ->
            g := gcd !g (ea.Affine.coeffs.(k) - eb.Affine.coeffs.(k))
        | Any | Must Lt | Must Gt ->
            g := gcd !g ea.Affine.coeffs.(k);
            g := gcd !g eb.Affine.coeffs.(k)
    done;
    let diff = eb.Affine.const - ea.Affine.const in
    if !g = 0 then diff = 0
    else if diff mod !g <> 0 then false
    else begin
      (* Per-dimension stride refinement. Writing the system as
         [sum_k t_k = diff] with [t_k = a_k i - b_k j] ranging over
         [term_range k], each pair contributes only multiples of its own
         gcd ([a_k - b_k] when pinned to Eq). So for every k there must
         exist [t] in k's range with [t = diff (mod gcd of the others)].
         This catches post-tiling subscripts like [8*ic + ip] where a
         [<] on the point loop bounds [t] to [-7, -1] but the chunk pair
         only supplies multiples of 8 — the plain GCD test (gcd = 1)
         cannot see it. *)
      let live k = loops.(k).Loop_nest.ub > 1 in
      let pair_gcd k =
        match cs.(k) with
        | Must Eq -> abs (ea.Affine.coeffs.(k) - eb.Affine.coeffs.(k))
        | Any | Must Lt | Must Gt ->
            gcd ea.Affine.coeffs.(k) eb.Affine.coeffs.(k)
      in
      let feasible = ref true in
      for k = 0 to n - 1 do
        if !feasible && live k then begin
          let g_rest = ref 0 in
          for j = 0 to n - 1 do
            if j <> k && live j then g_rest := gcd !g_rest (pair_gcd j)
          done;
          match
            term_range ~u:loops.(k).Loop_nest.ub ea.Affine.coeffs.(k)
              eb.Affine.coeffs.(k) cs.(k)
          with
          | None -> feasible := false
          | Some (lo, hi) ->
              let ok =
                if !g_rest = 0 then lo <= diff && diff <= hi
                else
                  let gr = !g_rest in
                  lo + ((((diff - lo) mod gr) + gr) mod gr) <= hi
              in
              if not ok then feasible := false
        end
      done;
      !feasible
    end
  end

let refs_feasible (loops : Loop_nest.loop array) (ra : Loop_nest.mem_ref)
    (rb : Loop_nest.mem_ref) cs =
  region_nonempty loops cs
  && Array.length ra.Loop_nest.idx = Array.length rb.Loop_nest.idx
  &&
  let ok = ref true in
  Array.iteri
    (fun d ea ->
      if !ok && not (dim_feasible loops ea rb.Loop_nest.idx.(d) cs) then
        ok := false)
    ra.Loop_nest.idx;
  !ok

(* ------------------------------------------------------------------ *)
(* Pair enumeration and existence queries                             *)
(* ------------------------------------------------------------------ *)

let same_subscripts (ra : Loop_nest.mem_ref) (rb : Loop_nest.mem_ref) =
  Array.length ra.Loop_nest.idx = Array.length rb.Loop_nest.idx
  && Array.for_all2 Affine.equal_expr ra.Loop_nest.idx rb.Loop_nest.idx

(* Ordered pairs (src, dst) of accesses to the same stored buffer with at
   least one store. The same unordered pair appears in both orders, so a
   query constraining some loop to [<] also covers the symmetric [>]
   case of the reverse pair. *)
let dep_pairs nest =
  let accs = accesses nest in
  let stored = stored_buffers nest in
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if
            a.mref.Loop_nest.buf = b.mref.Loop_nest.buf
            && (a.is_store || b.is_store)
            && List.mem a.mref.Loop_nest.buf stored
          then Some (a, b)
          else None)
        accs)
    accs

let pair_kind a b =
  match (a.is_store, b.is_store) with
  | true, false -> Flow
  | false, true -> Anti
  | true, true -> Output
  | false, false -> assert false

(* A statement is an accumulator when it loads the very cell it stores
   ([C[i] = C[i] + ...]): its self-dependences lower to a reduction, so
   reordering them only changes float rounding, not which value wins. A
   statement that merely rewrites the same cell each iteration WITHOUT
   reading it back ([C[i] = f(k)]) is order-sensitive — its output
   self-dependence must not be excluded. *)
let accumulator_stmt (Loop_nest.Store (r, e)) =
  List.exists (fun lr -> same_subscripts lr r && lr.Loop_nest.buf = r.Loop_nest.buf)
    (load_refs [] e)

(* [exists_dep nest cs] — is there any access pair whose dependence
   system is feasible under the per-loop constraints [cs]?
   [~exclude_accumulator:true] additionally skips same-subscript pairs
   within one accumulator statement (the [C += ...] reduction pattern),
   used by the vectorization verdict. *)
let exists_dep ?(exclude_accumulator = false) (nest : Loop_nest.t) cs =
  let acc_stmts =
    if exclude_accumulator then
      Array.of_list (List.map accumulator_stmt nest.Loop_nest.body)
    else [||]
  in
  List.exists
    (fun (a, b) ->
      (not
         (exclude_accumulator && a.stmt = b.stmt && acc_stmts.(a.stmt)
         && same_subscripts a.mref b.mref))
      && refs_feasible nest.Loop_nest.loops a.mref b.mref cs)
    (dep_pairs nest)

(* ------------------------------------------------------------------ *)
(* Full analysis: dependences with direction vectors                  *)
(* ------------------------------------------------------------------ *)

let textually_before a b = (a.stmt, a.seq) < (b.stmt, b.seq)

let refine_dirs (nest : Loop_nest.t) a b cs =
  (* For each unconstrained loop, which single direction (if any) is
     feasible with everything else fixed? *)
  Array.mapi
    (fun k c ->
      match c with
      | Must d -> Some d
      | Any ->
          let feasible_with d =
            let cs' = Array.copy cs in
            cs'.(k) <- Must d;
            refs_feasible nest.Loop_nest.loops a.mref b.mref cs'
          in
          let options = List.filter feasible_with [ Lt; Eq; Gt ] in
          (match options with [ d ] -> Some d | _ -> None))
    cs

let analyze (nest : Loop_nest.t) =
  let n = Loop_nest.n_loops nest in
  let deps = ref [] in
  List.iter
    (fun (a, b) ->
      let emit carrier dirs =
        deps :=
          {
            kind = pair_kind a b;
            buf = a.mref.Loop_nest.buf;
            src_stmt = a.stmt;
            dst_stmt = b.stmt;
            carrier;
            dirs;
          }
          :: !deps
      in
      (* Loop-independent dependence: same iteration, [a] executes
         before [b] in the body. *)
      let all_eq = Array.make n (Must Eq) in
      if
        textually_before a b
        && refs_feasible nest.Loop_nest.loops a.mref b.mref all_eq
      then emit None (Array.make n (Some Eq));
      (* Carried dependences, one per feasible carrier level. *)
      for c = 0 to n - 1 do
        let cs = Array.init n (fun k -> if k < c then Must Eq else Any) in
        cs.(c) <- Must Lt;
        if refs_feasible nest.Loop_nest.loops a.mref b.mref cs then
          emit (Some c) (refine_dirs nest a b cs)
      done)
    (dep_pairs nest);
  List.rev !deps
