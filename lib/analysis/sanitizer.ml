let read_enabled () =
  match Sys.getenv_opt "MLIR_RL_SANITIZE" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let read_budget () =
  match Sys.getenv_opt "MLIR_RL_SANITIZE_BUDGET" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 300_000)
  | None -> 300_000

let enabled_flag = Atomic.make (read_enabled ())
let enabled () = Atomic.get enabled_flag
let set_enabled b = Atomic.set enabled_flag b
let budget_ref = Atomic.make (read_budget ())
let budget () = Atomic.get budget_ref
let set_budget n = if n > 0 then Atomic.set budget_ref n

type outcome = Matched | Skipped of string | Mismatch of string

let outcome_to_string = function
  | Matched -> "matched"
  | Skipped r -> "skipped: " ^ r
  | Mismatch r -> "MISMATCH: " ^ r

type stats = { runs : int; skips : int; violations : int }

let runs_ctr = Atomic.make 0
let skips_ctr = Atomic.make 0
let violations_ctr = Atomic.make 0

let stats () =
  {
    runs = Atomic.get runs_ctr;
    skips = Atomic.get skips_ctr;
    violations = Atomic.get violations_ctr;
  }

let reset_stats () =
  Atomic.set runs_ctr 0;
  Atomic.set skips_ctr 0;
  Atomic.set violations_ctr 0

(* Digest-pair dedup registry. Size-capped: a pathological run that
   somehow produces hundreds of thousands of distinct pairs drops its
   memory of old ones rather than growing without bound (the cost is
   only a re-check). *)
let seen_lock = Mutex.create ()
let seen : (string, unit) Hashtbl.t = Hashtbl.create 256
let seen_cap = 65_536

let fresh_pair ~reference ~candidate =
  let key = reference ^ "|" ^ candidate in
  Mutex.lock seen_lock;
  let fresh = not (Hashtbl.mem seen key) in
  if fresh then begin
    if Hashtbl.length seen >= seen_cap then Hashtbl.reset seen;
    Hashtbl.replace seen key ()
  end;
  Mutex.unlock seen_lock;
  fresh

(* --- seeded input generation ---------------------------------------
   A self-contained splitmix stream (same finalizer family as the nest
   digest): the sanitizer must not consume any shared RNG stream —
   training determinism contracts require byte-identical traces with
   the sanitizer on or off. *)

let mix z =
  let z = (z lxor (z lsr 30)) * 0x2f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  z lxor (z lsr 31)

let hash_string seed s =
  let h = ref (mix (seed + 0x9e3779b9)) in
  String.iter (fun c -> h := mix (!h lxor Char.code c)) s;
  !h

let fill_seeded seed n =
  let state = ref (mix seed) in
  Array.init n (fun _ ->
      state := !state + 0x1e3779b97f4a7c15;
      let v = mix !state land 0xFFFFFF in
      0.25 +. (float_of_int v /. 16777216.0))

let input_buffer_names (nest : Loop_nest.t) =
  let stores = Loop_nest.stores_of_body nest in
  let stored b =
    List.exists (fun (r : Loop_nest.mem_ref) -> r.Loop_nest.buf = b) stores
  in
  let loads = Loop_nest.loads_of_body nest in
  List.filter
    (fun (b, _) ->
      (not (stored b))
      && List.exists (fun (r : Loop_nest.mem_ref) -> r.Loop_nest.buf = b) loads)
    nest.Loop_nest.buffers

let seeded_inputs (nest : Loop_nest.t) =
  let seed = hash_string 0x5eed (Loop_nest.digest nest) in
  List.map
    (fun (b, shape) ->
      let n = Array.fold_left ( * ) 1 shape in
      (b, fill_seeded (hash_string seed b) n))
    (input_buffer_names nest)

(* Relative comparison, matching the transformation test-suite's
   tolerance discipline: tiling and unrolling reassociate reductions,
   so bit equality is the wrong bar. *)
let arrays_close tol a b =
  let n = Array.length a in
  if Array.length b <> n then Some (-1)
  else begin
    let bad = ref None in
    (try
       for i = 0 to n - 1 do
         let diff = Float.abs (a.(i) -. b.(i)) in
         let scale = Float.max 1.0 (Float.max (Float.abs a.(i)) (Float.abs b.(i))) in
         if not (diff <= tol *. scale) then begin
           bad := Some i;
           raise Exit
         end
       done
     with Exit -> ());
    !bad
  end

let run_pair ?(tol = 1e-6) ~(reference : Loop_nest.t)
    ~(ref_inputs : (string * float array) list) ~(candidate : Loop_nest.t)
    ~(cand_inputs : (string * float array) list) () =
  let cost =
    Loop_nest.iteration_count reference + Loop_nest.iteration_count candidate
  in
  if cost > budget () then begin
    Atomic.incr skips_ctr;
    Skipped (Printf.sprintf "%d iterations over budget %d" cost (budget ()))
  end
  else
    match Interp.run reference ~inputs:ref_inputs with
    | exception e ->
        Atomic.incr skips_ctr;
        Skipped ("reference uninterpretable: " ^ Printexc.to_string e)
    | ref_bindings -> (
        let expected = Interp.output_of reference ref_bindings in
        match Interp.run candidate ~inputs:cand_inputs with
        | exception e ->
            Atomic.incr runs_ctr;
            Atomic.incr violations_ctr;
            Mismatch ("transformed nest failed to execute: " ^ Printexc.to_string e)
        | cand_bindings -> (
            let got = Interp.output_of candidate cand_bindings in
            Atomic.incr runs_ctr;
            match arrays_close tol expected got with
            | None -> Matched
            | Some i when i < 0 ->
                Atomic.incr violations_ctr;
                Mismatch
                  (Printf.sprintf "output sizes differ: %d vs %d"
                     (Array.length expected) (Array.length got))
            | Some i ->
                Atomic.incr violations_ctr;
                Mismatch
                  (Printf.sprintf
                     "output element %d differs: reference %.9g, transformed %.9g"
                     i expected.(i) got.(i))))

let skip reason =
  Atomic.incr skips_ctr;
  Skipped reason

let check ~reference ~candidate =
  let inputs = seeded_inputs reference in
  run_pair ~reference ~ref_inputs:inputs ~candidate ~cand_inputs:inputs ()
