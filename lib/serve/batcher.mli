(** Admission control and micro-batching, layer 2 of [lib/serve].

    A bounded FIFO of pending requests with three policies:

    - {b load shedding}: {!admit} refuses (returns [Shed]) once
      [max_queue] items are waiting, so overload produces an immediate
      [Overloaded] reply instead of unbounded queue growth and blown
      latencies;
    - {b per-request deadlines}: an admitted item whose deadline passes
      while it queues is surfaced by {!pop_expired} (answered
      [Deadline_exceeded]) rather than dispatched late;
    - {b micro-batching}: {!take_batch} releases work only when a batch
      is worth flushing — [max_batch] items are waiting, or the oldest
      has waited [max_wait_s] — so a brief wait under light load buys
      batched-inference amortization under heavy load.

    The structure is deliberately {e pure}: no threads, no mutex, no
    clock. Every operation takes [now] (seconds, any monotonic origin)
    explicitly, which makes the flush/deadline logic unit-testable with
    a scripted clock; {!Server} provides the real clock and the lock. *)

type 'a t

type config = {
  max_queue : int;  (** admission bound; >= 1 *)
  max_batch : int;  (** flush as soon as this many are waiting; >= 1 *)
  max_wait_s : float;
      (** flush when the oldest item has waited this long; 0 disables
          waiting entirely (every {!take_batch} flushes what is there) *)
}

val default_config : config
(** [max_queue = 64], [max_batch = 8], [max_wait_s = 0.002]. *)

type 'a item = {
  payload : 'a;
  enqueued_at : float;  (** the [now] passed to {!admit} *)
  deadline : float option;  (** absolute, same clock as [now] *)
}

type admit_result = Admitted | Shed

val create : config -> 'a t
(** Raises [Invalid_argument] on a non-positive [max_queue]/[max_batch]
    or negative [max_wait_s]. *)

val length : 'a t -> int

val admit : 'a t -> now:float -> ?deadline_ms:int -> 'a -> admit_result
(** FIFO-append unless full. A [deadline_ms] of 0 admits the item
    already expired — it will come back from the next {!pop_expired},
    never from {!take_batch}. *)

val pop_expired : 'a t -> now:float -> 'a item list
(** Remove and return every queued item whose deadline is [<= now], in
    queue order. Call before {!take_batch} so expired items are not
    dispatched. *)

val take_batch : ?force:bool -> 'a t -> now:float -> 'a item list
(** The oldest [min length max_batch] items if the flush condition holds
    ([length >= max_batch], or the head item has waited [>= max_wait_s],
    or [force] — used when draining); [[]] otherwise. Never returns an
    expired item if {!pop_expired} was called with the same [now]. *)

val next_deadline_in : 'a t -> now:float -> float option
(** Seconds until the next flush-by-timeout or deadline-expiry event
    (0. if one is already due), or [None] when the queue is empty. The
    dispatcher sleeps at most this long. *)

val next_expiry_in : 'a t -> now:float -> float option
(** Like {!next_deadline_in} but considering only request deadlines, not
    the flush timer — what a dispatcher with no free worker (so unable
    to flush anyway) must still wake up for. [None] when no queued item
    carries a deadline. *)

val admitted_total : 'a t -> int

val shed_total : 'a t -> int

val expired_total : 'a t -> int
(** Items returned by {!pop_expired} since {!create}. *)
