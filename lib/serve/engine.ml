type config = {
  env_cfg : Env_config.t;
  hidden : int;
  checkpoint : string option;
  cache_capacity : int;
  measure_delay_s : float;
  jobs : int;
}

let default_config =
  {
    env_cfg = Env_config.default;
    hidden = 64;
    checkpoint = None;
    cache_capacity = 4096;
    measure_delay_s = 0.0;
    jobs = 1;
  }

type outcome = { schedule : string; speedup : float }

type t = {
  cfg : config;
  policy : Policy.t;
  base_env : Env.t;
  cache : (string, outcome) Util.Sharded_cache.t;
  digest : string;
  (* [Some] iff [cfg.jobs > 1]: the rollout pool the batched greedy
     decode chunks over. FIFO (not stealing): chunks are equal-sized
     slices of one batch. Shared by every server worker that calls
     [solve_batch] — the pool is multi-producer safe. *)
  pool : Util.Domain_pool.t option;
}

(* The digest is over the canonical serialized weights, not the
   checkpoint file: a random-init policy gets a digest too, and two
   checkpoints with identical weights share one. *)
let digest_params params =
  let path = Filename.temp_file "mrs_policy" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Serialize.save_params path params;
      Digest.to_hex (Digest.file path))

let create cfg =
  if cfg.jobs < 1 then
    Error (Printf.sprintf "jobs must be >= 1 (got %d)" cfg.jobs)
  else
  match Env_config.validate cfg.env_cfg with
  | Error e -> Error ("bad env config: " ^ e)
  | Ok () -> (
      let policy =
        Policy.create ~hidden:cfg.hidden (Util.Rng.create 0x51) cfg.env_cfg
      in
      let load_result =
        match cfg.checkpoint with
        | None -> Ok ()
        | Some path -> Policy.load policy path
      in
      match load_result with
      | Error e -> Error ("checkpoint load failed: " ^ e)
      | Ok () ->
          let base_env = Env.create cfg.env_cfg in
          let cache =
            Util.Sharded_cache.create ~capacity:cfg.cache_capacity ()
          in
          let digest = digest_params (Policy.params policy) in
          let pool =
            if cfg.jobs > 1 then
              Some (Util.Domain_pool.create ~size:cfg.jobs)
            else None
          in
          Ok { cfg; policy; base_env; cache; digest; pool })

let shutdown t =
  match t.pool with None -> () | Some p -> Util.Domain_pool.shutdown p

let policy_digest t = t.digest

let check_bounds (cfg : Env_config.t) (op : Linalg.t) =
  let n = Array.length op.Linalg.domain in
  let l = Array.length op.Linalg.inputs in
  let rank_bad =
    Array.exists
      (fun (o : Linalg.operand) -> Array.length o.Linalg.shape > cfg.d_max)
      op.Linalg.inputs
    || Array.length op.Linalg.output.Linalg.shape > cfg.d_max
  in
  if n = 0 || n > cfg.n_max then
    Error
      (Printf.sprintf "op has %d loops; this server handles 1..%d" n cfg.n_max)
  else if l > cfg.l_max then
    Error
      (Printf.sprintf "op has %d inputs; this server handles at most %d" l
         cfg.l_max)
  else if rank_bad then
    Error
      (Printf.sprintf "an operand exceeds the server's max rank %d" cfg.d_max)
  else Ok ()

let resolve_target t (target : Protocol.target) =
  let op_result =
    match target with
    | Protocol.Spec s -> (
        match Op_spec.parse s with
        | Ok op -> Ok op
        | Error e -> Error (Protocol.Parse_error, "bad op spec: " ^ e))
    | Protocol.Ir s -> (
        match Ir_parser.parse_result s with
        | Error e -> Error (Protocol.Parse_error, "bad IR: " ^ e)
        | Ok nest -> (
            match Lower.raise_nest nest with
            | Ok op -> Ok op
            | Error e ->
                Error (Protocol.Unsupported, "nest cannot be raised: " ^ e)))
  in
  match op_result with
  | Error _ as e -> e
  | Ok op -> (
      match check_bounds (Env.config t.base_env) op with
      | Ok () -> Ok op
      | Error e -> Error (Protocol.Unsupported, e))

(* Structural digest of the canonical lowered nest — O(nest) with no
   intermediate pretty-printed string (the previous scheme printed the
   whole nest and MD5-ed the text). Nest names are excluded from the
   digest, so e.g. a spec-built op and the same op raised from IR under
   another name share a result-cache entry; everything semantic
   (buffers, subscripts, bodies, shapes) is hashed, so same-named ops
   with different shapes never collide. *)
let nest_digest op = Loop_nest.digest (Lower.to_loop_nest op)

let cache_key _t op = nest_digest op

(* Engine-free digest for routing: the fleet supervisor hashes this
   onto its replica ring, so it must agree with [cache_key] whenever
   the target parses (then requests for one nest keep landing on the
   replica whose result cache already holds it, however the nest was
   spelled). Unparsable targets fall back to a digest of the raw text —
   any replica will answer those with the same parse error. *)
let target_digest (target : Protocol.target) =
  match target with
  | Protocol.Spec s -> (
      match Op_spec.parse s with
      | Ok op -> nest_digest op
      | Error _ -> Digest.to_hex (Digest.string ("spec:" ^ s)))
  | Protocol.Ir s -> (
      match Ir_parser.parse_result s with
      | Ok nest -> (
          match Lower.raise_nest nest with
          | Ok op -> nest_digest op
          | Error _ -> Loop_nest.digest nest)
      | Error _ -> Digest.to_hex (Digest.string ("ir:" ^ s)))

(* One lockstep batched rollout: every active episode contributes a row
   to a single greedy forward pass per step. act_greedy_batch is
   row-independent, so this computes exactly what per-op greedy_rollout
   calls would — just with the inference amortized. *)
let rollout_batch t (ops : Linalg.t array) :
    (outcome, Protocol.error_code * string) result array =
  let n = Array.length ops in
  let envs = Array.map (fun _ -> Env.fork t.base_env) ops in
  let results = Array.make n (Error (Protocol.Env_failure, "not computed")) in
  let obs = Array.make n [||] in
  let active = Array.make n false in
  Array.iteri
    (fun i op ->
      try
        obs.(i) <- Env.reset envs.(i) op;
        active.(i) <- true
      with e ->
        results.(i) <-
          Error (Protocol.Env_failure, "reset failed: " ^ Printexc.to_string e))
    ops;
  let any_active () = Array.exists Fun.id active in
  while any_active () do
    let idxs =
      Array.of_list
        (List.filter (fun i -> active.(i)) (List.init n Fun.id))
    in
    let batch_obs = Array.map (fun i -> obs.(i)) idxs in
    let batch_masks = Array.map (fun i -> Env.masks envs.(i)) idxs in
    let actions =
      Policy.act_greedy_batch t.policy ~obs:batch_obs ~masks:batch_masks
    in
    Array.iteri
      (fun k i ->
        try
          let r = Env.step_hierarchical envs.(i) actions.(k) in
          obs.(i) <- r.Env.obs;
          if r.Env.terminal then begin
            active.(i) <- false;
            results.(i) <-
              Ok
                {
                  schedule = Schedule.to_string (Env.schedule envs.(i));
                  speedup = Env.current_speedup envs.(i);
                }
          end
        with e ->
          active.(i) <- false;
          results.(i) <-
            Error
              (Protocol.Env_failure, "step failed: " ^ Printexc.to_string e))
      idxs
  done;
  results

(* Chunked parallel decode: slice the batch into [jobs] contiguous
   chunks and run each as its own lockstep rollout on the pool. Every
   row of [rollout_batch] is independent (greedy decode, per-row forked
   env), so the concatenated chunk results are exactly what one big
   lockstep batch computes — splitting changes only which rows share a
   forward pass, never any row's answer. *)
let rollout_chunked t (ops : Linalg.t array) =
  match t.pool with
  | None -> rollout_batch t ops
  | Some pool ->
      let n = Array.length ops in
      let jobs = Util.Domain_pool.size pool in
      let chunk = (n + jobs - 1) / jobs in
      if n = 0 then [||]
      else if n <= 1 || jobs <= 1 then rollout_batch t ops
      else begin
        let slices = ref [] in
        let start = ref 0 in
        while !start < n do
          let len = min chunk (n - !start) in
          slices := (!start, len) :: !slices;
          start := !start + len
        done;
        let parts =
          Util.Domain_pool.map_array pool
            (fun (start, len) -> rollout_batch t (Array.sub ops start len))
            (Array.of_list (List.rev !slices))
        in
        Array.concat (Array.to_list parts)
      end

let solve_batch t ops =
  let n = Array.length ops in
  let keys = Array.map (cache_key t) ops in
  let results = Array.make n (Error (Protocol.Env_failure, "not computed")) in
  let miss_idx = ref [] in
  for i = n - 1 downto 0 do
    match Util.Sharded_cache.find_opt t.cache keys.(i) with
    | Some outcome -> results.(i) <- Ok outcome
    | None -> miss_idx := i :: !miss_idx
  done;
  (* Requests for the same op inside one batch roll out once. *)
  let seen = Hashtbl.create 8 in
  let unique =
    List.filter
      (fun i ->
        if Hashtbl.mem seen keys.(i) then false
        else begin
          Hashtbl.replace seen keys.(i) i;
          true
        end)
      !miss_idx
  in
  if unique <> [] then begin
    let unique = Array.of_list unique in
    (* Emulated measurement wall time: one hardware-measurement round
       per unique uncached nest. The analytic evaluator answers in
       microseconds, which no real deployment does — schedules are
       timed on hardware — so benchmarks of fleet scaling would
       otherwise be bottlenecked by this host's single core instead of
       by measurement latency. With [jobs > 1] the engine measures
       [jobs] nests concurrently, so the stall shrinks to the round
       count. Cache hits skip it: a cached result needs no
       re-measurement. Off (0.0) by default. *)
    if t.cfg.measure_delay_s > 0.0 then begin
      let rounds =
        (Array.length unique + t.cfg.jobs - 1) / t.cfg.jobs
      in
      Unix.sleepf (t.cfg.measure_delay_s *. float_of_int rounds)
    end;
    let computed = rollout_chunked t (Array.map (fun i -> ops.(i)) unique) in
    Array.iteri
      (fun k i ->
        (match computed.(k) with
        | Ok outcome -> Util.Sharded_cache.add t.cache keys.(i) outcome
        | Error _ -> ());
        results.(i) <- computed.(k))
      unique;
    List.iter
      (fun i ->
        match results.(i) with
        | Ok _ -> ()
        | Error _ ->
            let owner = Hashtbl.find seen keys.(i) in
            if owner <> i then results.(i) <- results.(owner))
      !miss_idx
  end;
  results

let cache_stats t = Util.Sharded_cache.stats t.cache

let cache_hits t = (cache_stats t).Util.Sharded_cache.hits

let cache_misses t = (cache_stats t).Util.Sharded_cache.misses

let evaluator_cache_stats t = Evaluator.cache_stats (Env.evaluator t.base_env)
