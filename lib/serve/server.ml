type config = { workers : int; batcher : Batcher.config }

let default_config = { workers = 1; batcher = Batcher.default_config }

(* Event-driven timed wait for the dispatcher. The stdlib has no timed
   condition wait, so blocking "until notified or until the flush
   timer fires" uses the classic self-pipe: waiters select on the read
   end with the timer as select's timeout, notifiers write one byte.
   The byte persists until drained, so a notification sent between
   "checked state under the lock" and "entered select" wakes the very
   next wait — no lost-wakeup window, and an idle dispatcher burns no
   CPU (it used to sleep-poll in sub-millisecond slices). *)
module Waker = struct
  type t = { rd : Unix.file_descr; wr : Unix.file_descr }

  let create () =
    let rd, wr = Unix.pipe ~cloexec:true () in
    Unix.set_nonblock rd;
    Unix.set_nonblock wr;
    { rd; wr }

  let notify t =
    (* A full pipe already holds a pending wakeup; a closed pipe means
       the dispatcher is gone. Either way there is nothing to do. *)
    try ignore (Unix.write t.wr (Bytes.make 1 '\001') 0 1)
    with
    | Unix.Unix_error
        ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE | Unix.EBADF), _, _)
    ->
      ()

  let drain_pipe t =
    let buf = Bytes.create 64 in
    let rec go () =
      match Unix.read t.rd buf 0 (Bytes.length buf) with
      | n when n > 0 -> go ()
      | _ -> ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
    in
    go ()

  (* Block until notified or [timeout] seconds pass ([None] = forever).
     Pending notifications are drained before returning; the caller
     re-examines all shared state after every wakeup, so coalescing
     them is safe. *)
  let wait t timeout =
    let tv = match timeout with None -> -1.0 | Some s -> Float.max s 0.0 in
    (match Unix.select [ t.rd ] [] [] tv with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    drain_pipe t

  let close t =
    (try Unix.close t.wr with Unix.Unix_error _ -> ());
    try Unix.close t.rd with Unix.Unix_error _ -> ()
end

(* One admitted optimize request: resolved op, reply callback, and the
   submit timestamp for the latency histogram. *)
type job = {
  j_id : string;
  op : Linalg.t;
  reply : Protocol.response -> unit;
  submitted_at : float;
}

type state = Running | Draining | Drained

type t = {
  engine : Engine.t;
  cfg : config;
  pool : Util.Domain_pool.t;
  metrics : Metrics.t;
  mutex : Mutex.t;
  cond : Condition.t;  (** drain waiters; the dispatcher waits on [waker] *)
  waker : Waker.t;
  batcher : job Batcher.t;
  mutable state : state;
  mutable in_flight : int;  (** batches currently on the pool *)
  mutable dispatcher : unit Domain.t option;
  mutable drain_done : bool;  (** set once by the draining caller *)
}

let now () = Unix.gettimeofday ()

let metrics t = t.metrics

(* -- reply helpers ---------------------------------------------------- *)

let code_counter code =
  "serve_replies_" ^ Protocol.error_code_to_string code ^ "_total"

let reply_error t job code message =
  Metrics.incr t.metrics (code_counter code);
  Metrics.observe t.metrics "serve_latency_seconds" (now () -. job.submitted_at);
  job.reply (Protocol.Error_reply { e_id = job.j_id; code; message })

let reply_ok t job (o : Engine.outcome) =
  Metrics.incr t.metrics "serve_replies_ok_total";
  Metrics.observe t.metrics "serve_latency_seconds" (now () -. job.submitted_at);
  job.reply
    (Protocol.Ok_reply
       {
         r_id = job.j_id;
         schedule = o.Engine.schedule;
         speedup = o.Engine.speedup;
         policy_digest = Engine.policy_digest t.engine;
       })

(* -- worker side ------------------------------------------------------ *)

let run_batch t (items : job Batcher.item list) =
  let jobs = Array.of_list (List.map (fun it -> it.Batcher.payload) items) in
  let t0 = now () in
  List.iter
    (fun (it : job Batcher.item) ->
      Metrics.observe t.metrics "serve_queue_wait_seconds"
        (t0 -. it.Batcher.enqueued_at))
    items;
  Metrics.observe t.metrics "serve_batch_size" (float_of_int (Array.length jobs));
  let results =
    try Engine.solve_batch t.engine (Array.map (fun j -> j.op) jobs)
    with e ->
      Array.map
        (fun _ ->
          Error (Protocol.Env_failure, "batch failed: " ^ Printexc.to_string e))
        jobs
  in
  Array.iteri
    (fun i job ->
      match results.(i) with
      | Ok outcome -> reply_ok t job outcome
      | Error (code, msg) -> reply_error t job code msg)
    jobs

(* -- dispatcher ------------------------------------------------------- *)

(* The dispatcher blocks on its {!Waker} whenever there is nothing to
   do: forever when no timed event is scheduled, with the distance to
   the next flush/deadline as the select timeout otherwise. Every
   state change that could unblock it (admission, drain, a worker slot
   freeing) notifies the waker, and the notification byte persists
   until drained — so an idle or timer-waiting dispatcher costs zero
   CPU and still reacts to events immediately, where it used to
   sleep-poll in sub-millisecond slices. *)
let dispatcher_loop t =
  let finished = ref false in
  while not !finished do
    Mutex.lock t.mutex;
    let tnow = now () in
    let expired = Batcher.pop_expired t.batcher ~now:tnow in
    let batch =
      if t.in_flight < t.cfg.workers then begin
        let force = t.state <> Running in
        let b = Batcher.take_batch ~force t.batcher ~now:tnow in
        if b <> [] then t.in_flight <- t.in_flight + 1;
        b
      end
      else []
    in
    let drained_now =
      t.state = Draining && Batcher.length t.batcher = 0 && t.in_flight = 0
      && batch = [] && expired = []
    in
    if drained_now then t.state <- Drained;
    (* Decide how to wait before releasing the lock. With all workers
       busy the flush timer cannot fire anyway, so only request
       deadlines force timed wakeups; notifications sent after we
       unlock are parked in the waker pipe and wake the select
       instantly, so the decision cannot go stale. *)
    let wait_plan =
      if drained_now || batch <> [] || expired <> [] then `Continue
      else if t.in_flight >= t.cfg.workers then
        match Batcher.next_expiry_in t.batcher ~now:tnow with
        | None -> `Block
        | Some s when s <= 0.0 -> `Continue
        | Some s -> `Sleep s
      else
        match Batcher.next_deadline_in t.batcher ~now:tnow with
        | None -> `Block (* empty queue *)
        | Some s when s <= 0.0 -> `Continue
        | Some s -> `Sleep s
    in
    Mutex.unlock t.mutex;
    List.iter
      (fun (it : job Batcher.item) ->
        Metrics.incr t.metrics "serve_expired_total";
        reply_error t it.Batcher.payload Protocol.Deadline_exceeded
          "deadline expired while queued")
      expired;
    if batch <> [] then begin
      let _p =
        Util.Domain_pool.submit t.pool (fun () ->
            Fun.protect
              ~finally:(fun () ->
                Mutex.lock t.mutex;
                t.in_flight <- t.in_flight - 1;
                Condition.broadcast t.cond;
                Mutex.unlock t.mutex;
                Waker.notify t.waker)
              (fun () -> run_batch t batch))
      in
      ()
    end;
    (match wait_plan with
    | `Block -> Waker.wait t.waker None
    | `Sleep s -> Waker.wait t.waker (Some s)
    | `Continue -> ());
    if drained_now then begin
      Mutex.lock t.mutex;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex;
      finished := true
    end
  done

let create ?(config = default_config) engine =
  if config.workers < 1 then invalid_arg "Server.create: workers < 1";
  let t =
    {
      engine;
      cfg = config;
      pool = Util.Domain_pool.create ~size:config.workers;
      metrics = Metrics.create ();
      mutex = Mutex.create ();
      cond = Condition.create ();
      waker = Waker.create ();
      batcher = Batcher.create config.batcher;
      state = Running;
      in_flight = 0;
      dispatcher = None;
      drain_done = false;
    }
  in
  t.dispatcher <- Some (Domain.spawn (fun () -> dispatcher_loop t));
  t

let stats_body t =
  let cache = Engine.cache_stats t.engine in
  let eval = Engine.evaluator_cache_stats t.engine in
  let extra =
    Printf.sprintf
      "state=%s queue=%d in_flight=%d admitted=%d shed=%d expired=%d \
       cache_hits=%d cache_misses=%d cache_size=%d"
      (match t.state with
      | Running -> "running"
      | Draining -> "draining"
      | Drained -> "drained")
      (Batcher.length t.batcher) t.in_flight
      (Batcher.admitted_total t.batcher)
      (Batcher.shed_total t.batcher)
      (Batcher.expired_total t.batcher)
      cache.Util.Sharded_cache.hits cache.Util.Sharded_cache.misses
      cache.Util.Sharded_cache.size
  in
  (* The evaluator caches sit below the result cache: base times per op
     and memoized state seconds per nest digest, shared by every forked
     rollout env. *)
  let eval_extra = Evaluator.render_cache_kv eval in
  (* Verifier / differential-sanitizer counters (process-global in
     lib/analysis; populated only when MLIR_RL_VERIFY / MLIR_RL_SANITIZE
     enabled them, otherwise all zero). *)
  let analysis_extra =
    let v = Verifier.stats () in
    let s = Sanitizer.stats () in
    let sg = Surrogate.Counters.stats () in
    Printf.sprintf
      "verify_checks=%d verify_violations=%d sanitize_runs=%d \
       sanitize_skips=%d sanitize_violations=%d surrogate_scored=%d \
       surrogate_reranked=%d surrogate_searches=%d"
      v.Verifier.checks v.Verifier.violations s.Sanitizer.runs
      s.Sanitizer.skips s.Sanitizer.violations sg.Surrogate.Counters.scored
      sg.Surrogate.Counters.reranked sg.Surrogate.Counters.searches
  in
  extra ^ " " ^ eval_extra ^ " " ^ analysis_extra ^ " "
  ^ Metrics.stats_line t.metrics

(* Evaluator-cache counters appended to the Prometheus dump, read at
   render time from the shared sharded-cache counters. *)
let eval_cache_metrics t =
  let s = Engine.evaluator_cache_stats t.engine in
  let b = Buffer.create 256 in
  let counter name v =
    Buffer.add_string b (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name v)
  in
  let cache tag (c : Util.Sharded_cache.stats) =
    counter
      (Printf.sprintf "serve_eval_%s_cache_hits_total" tag)
      c.Util.Sharded_cache.hits;
    counter
      (Printf.sprintf "serve_eval_%s_cache_misses_total" tag)
      c.Util.Sharded_cache.misses;
    counter
      (Printf.sprintf "serve_eval_%s_cache_evictions_total" tag)
      c.Util.Sharded_cache.evictions;
    counter
      (Printf.sprintf "serve_eval_%s_cache_contention_total" tag)
      c.Util.Sharded_cache.contention
  in
  List.iter
    (fun (tag, st) -> cache tag st)
    (Evaluator.cache_stats_groups s);
  let sg = Surrogate.Counters.stats () in
  counter "serve_surrogate_scored_total" sg.Surrogate.Counters.scored;
  counter "serve_surrogate_reranked_total" sg.Surrogate.Counters.reranked;
  counter "serve_surrogate_searches_total" sg.Surrogate.Counters.searches;
  let v = Verifier.stats () in
  let sz = Sanitizer.stats () in
  counter "serve_verify_checks_total" v.Verifier.checks;
  counter "serve_verify_violations_total" v.Verifier.violations;
  counter "serve_sanitize_runs_total" sz.Sanitizer.runs;
  counter "serve_sanitize_skips_total" sz.Sanitizer.skips;
  counter "serve_sanitize_violations_total" sz.Sanitizer.violations;
  Buffer.contents b

let submit t (req : Protocol.request) reply =
  Metrics.incr t.metrics "serve_requests_total";
  match req with
  | Protocol.Ping { id } -> reply (Protocol.Pong { p_id = id })
  | Protocol.Stats { id } ->
      reply (Protocol.Stats_reply { s_id = id; body = stats_body t })
  | Protocol.Metrics { id } ->
      reply
        (Protocol.Metrics_reply
           { m_id = id; body = Metrics.render t.metrics ^ eval_cache_metrics t })
  | Protocol.Optimize { id; target; deadline_ms } -> (
      let submitted_at = now () in
      match Engine.resolve_target t.engine target with
      | Error (code, msg) ->
          Metrics.incr t.metrics (code_counter code);
          reply (Protocol.Error_reply { e_id = id; code; message = msg })
      | Ok op -> (
          let job = { j_id = id; op; reply; submitted_at } in
          Mutex.lock t.mutex;
          let verdict =
            if t.state <> Running then `Shutting_down
            else
              match
                Batcher.admit t.batcher ~now:submitted_at ?deadline_ms job
              with
              | Batcher.Admitted ->
                  Waker.notify t.waker;
                  `Admitted
              | Batcher.Shed -> `Shed
          in
          Mutex.unlock t.mutex;
          match verdict with
          | `Admitted -> ()
          | `Shed ->
              Metrics.incr t.metrics "serve_shed_total";
              reply_error t job Protocol.Overloaded "admission queue full"
          | `Shutting_down ->
              reply_error t job Protocol.Shutting_down "server is draining"))

let drain t =
  Mutex.lock t.mutex;
  match t.state with
  | Draining | Drained ->
      (* Another caller is (or was) draining; wait for it to finish. *)
      while not t.drain_done do
        Condition.wait t.cond t.mutex
      done;
      Mutex.unlock t.mutex
  | Running ->
      t.state <- Draining;
      Condition.broadcast t.cond;
      Waker.notify t.waker;
      while t.state <> Drained do
        Condition.wait t.cond t.mutex
      done;
      Mutex.unlock t.mutex;
      (match t.dispatcher with
      | Some d ->
          (try Domain.join d with _ -> ());
          t.dispatcher <- None
      | None -> ());
      Waker.close t.waker;
      Util.Domain_pool.shutdown t.pool;
      (* Workers are gone, so no solve_batch is in flight: the engine's
         rollout pool (if --jobs gave it one) can join too. *)
      Engine.shutdown t.engine;
      Mutex.lock t.mutex;
      t.drain_done <- true;
      Condition.broadcast t.cond;
      Mutex.unlock t.mutex
