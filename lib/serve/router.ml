(* Consistent-hash ring over replica indices.

   Each replica owns [vnodes] pseudo-random points on a 64-bit ring;
   a request key (the nest's structural digest) routes to the owner of
   the first point at or clockwise-after the key's hash. Health is the
   caller's concern: {!preference} returns every replica in ring order
   and the supervisor takes the first routable one, so a key keeps its
   home replica (and that replica's hot result cache) across the
   failure and recovery of *other* replicas, and only keys homed on a
   dead replica move — the property that makes per-shard caches
   survive chaos. *)

type t = {
  replicas : int;
  points : (int64 * int) array; (* (hash, replica), sorted by hash *)
}

(* FNV-1a 64-bit, finalized with a splitmix64 round: fast, portable,
   and uniform enough for ring placement. *)
let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let splitmix_fin z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_key s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  splitmix_fin !h

let create ?(vnodes = 64) ~replicas () =
  if replicas < 1 then invalid_arg "Router.create: replicas < 1";
  if vnodes < 1 then invalid_arg "Router.create: vnodes < 1";
  let points =
    Array.init (replicas * vnodes) (fun i ->
        let r = i / vnodes and v = i mod vnodes in
        (hash_key (Printf.sprintf "replica-%d-vnode-%d" r v), r))
  in
  Array.sort compare points;
  { replicas; points }

let replicas t = t.replicas

(* Index of the first point with hash >= h, wrapping to 0. The
   comparison must be unsigned: Int64 compare is signed, so map both
   operands through an offset flip. *)
let unsigned_ge a b = Int64.unsigned_compare a b >= 0

let first_at_or_after t h =
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    let ph, _ = t.points.(mid) in
    if unsigned_ge ph h then hi := mid else lo := mid + 1
  done;
  if !lo >= n then 0 else !lo

let owner t key =
  let _, r = t.points.(first_at_or_after t (hash_key key)) in
  r

let preference t key =
  let n = Array.length t.points in
  let start = first_at_or_after t (hash_key key) in
  let seen = Array.make t.replicas false in
  let order = ref [] in
  let found = ref 0 in
  let i = ref 0 in
  while !found < t.replicas && !i < n do
    let _, r = t.points.((start + !i) mod n) in
    if not seen.(r) then begin
      seen.(r) <- true;
      order := r :: !order;
      incr found
    end;
    incr i
  done;
  (* vnodes guarantee every replica appears, but guard anyway *)
  for r = 0 to t.replicas - 1 do
    if not seen.(r) then order := r :: !order
  done;
  List.rev !order
