(** A handle on one serving replica, as seen by the {!Supervisor}.

    A replica is usually a child process running [serve --socket PATH]
    plus a pooled Unix-socket client speaking the {!Protocol} line
    format, but the type is a plain record of closures so tests
    substitute in-process fakes (scripted replies, refusing sockets,
    processes that "die" on cue) without forking anything.

    Transport failures are typed: the supervisor treats {!Timeout} and
    {!Connection} as evidence against the replica (circuit-breaker
    food, hedge triggers) and {!Garbled} as protocol corruption — the
    connection that produced it is never reused. *)

val ignore_sigpipe : unit -> unit
(** Set SIGPIPE to ignore for this process (idempotent, no-op where
    unsupported), so writes to a dead peer raise [EPIPE] and become
    typed {!Connection} errors instead of killing the process. Runs
    once at module load; daemon entry points ({!Supervisor.create},
    the {!Frontend} accept loops) also call it explicitly. Ignored
    dispositions survive fork+exec, so spawned replicas inherit it. *)

type error =
  | Timeout  (** no complete reply line within the caller's deadline *)
  | Connection of string  (** connect/write/EOF-level failure *)
  | Garbled of string  (** reply line undecodable or for the wrong id *)

val error_to_string : error -> string

type t = {
  pid : int option;  (** [None] for in-process fakes *)
  describe : string;  (** for logs and status lines *)
  call :
    Protocol.request -> timeout_s:float -> (Protocol.response, error) result;
      (** Synchronous round trip. Each in-flight call holds its own
          pooled connection, so concurrent calls never interleave
          replies; a call that fails in any way discards its
          connection (a late reply to a timed-out request must never
          be read by the next call). *)
  alive : unit -> bool;
      (** Whether the underlying process still runs. Reaps the child
          on first observation of exit; idempotent after that. *)
  kill : unit -> unit;  (** SIGKILL + reap; idempotent. *)
}

val connect :
  ?describe:string -> socket:string -> unit -> t
(** A client-only handle (no process) for a daemon someone else runs:
    [pid = None], [alive] reports whether a fresh connection can be
    opened, [kill] just closes pooled connections. *)

val spawn :
  exe:string ->
  args:string list ->
  socket:string ->
  unit ->
  (t, string) result
(** Start [exe args] with [Unix.create_process] (fork+exec — safe with
    OCaml 5 domains running) and return a handle whose [call] connects
    to [socket]. stdin/stdout are [/dev/null]; stderr is inherited so
    replica crashes stay diagnosable. The child is expected to create
    [socket] once ready — callers probe with {!Protocol.Ping} (the
    supervisor's health loop does this) rather than assuming
    readiness. Returns [Error] if the executable cannot be started. *)

val call_once :
  socket:string ->
  timeout_s:float ->
  Protocol.request ->
  (Protocol.response, error) result
(** One-shot convenience for CLI clients: connect (failing fast with
    [Connection] if nobody listens), send, await one reply under
    [timeout_s], close. *)
