(** Server metrics: counters and latency histograms, layer of [lib/serve]
    shared by the batcher, server and frontends.

    A {!t} is a small mutex-guarded registry, safe to update from worker
    domains and frontend threads. Histograms use logarithmic buckets
    (fixed ratio between consecutive upper bounds) so one 30-bucket
    histogram spans microseconds to minutes with bounded relative error,
    and quantile estimates never cost more than a bucket walk.

    Everything renders to the Prometheus text exposition format
    ({!render}) — scrapeable with [curl | grep] — and to a compact
    [k=v] line for the wire protocol's [stats] verb ({!stats_line}). *)

type t

val create : unit -> t

(** {1 Counters} *)

val incr : t -> ?by:int -> string -> unit
(** Bump counter [name], creating it at 0 first. [by] defaults to 1. *)

val counter : t -> string -> int
(** Current value; 0 for a counter never bumped. *)

(** {1 Gauges}

    Point-in-time levels (replica up/down, breaker state, queue depth)
    — set absolutely rather than accumulated. *)

val set_gauge : t -> string -> float -> unit
(** Set gauge [name] to [v], creating it if needed. *)

val gauge : t -> string -> float option
(** Current value; [None] for a gauge never set. *)

(** {1 Histograms}

    Observations are non-negative floats (seconds, batch sizes, ...).
    Buckets are [base * ratio^i]; values above the last bound land in a
    [+Inf] overflow bucket. *)

val observe : t -> string -> float -> unit

val hist_count : t -> string -> int
(** Number of observations; 0 for a histogram never observed. *)

val hist_sum : t -> string -> float

val quantile : t -> string -> float -> float option
(** [quantile t name q] (0 <= q <= 1) estimates the [q]-quantile as the
    upper bound of the bucket holding the [q]-th observation — an
    overestimate by at most the bucket ratio. [None] when empty. *)

(** {1 Rendering} *)

val render : t -> string
(** Prometheus text format. Counters as [# TYPE name counter] lines,
    histograms as cumulative [name_bucket{le="..."}] series with
    [_sum]/[_count]. Metric names are emitted in sorted order so output
    is reproducible. *)

val stats_line : t -> string
(** Compact single-line [k=v k=v ...] summary: every counter and gauge,
    plus [NAME_count], [NAME_sum] (and [NAME_p50]/[NAME_p99] as
    upper-bound estimates) per histogram. Sorted, space-separated. *)

val merge_rendered : string list -> string
(** Merge several {!render}-format dumps into one: counters and gauges
    sum, histogram buckets sum per upper bound (exact, because every
    registry renders identical bounds), [_sum]/[_count] sum. The fleet
    supervisor uses this to serve one aggregated view of its replicas'
    scrapes. Lines that do not parse are dropped. *)
