type config = { max_queue : int; max_batch : int; max_wait_s : float }

let default_config = { max_queue = 64; max_batch = 8; max_wait_s = 0.002 }

type 'a item = { payload : 'a; enqueued_at : float; deadline : float option }

type admit_result = Admitted | Shed

(* The queue is a plain list in reverse arrival order plus a length
   field: admission is O(1), and batch extraction — bounded by max_batch
   anyway — pays one reversal. Queues here are tiny (max_queue tens to
   hundreds); simplicity beats a two-stack dequeue. *)
type 'a t = {
  cfg : config;
  mutable rev_items : 'a item list;
  mutable len : int;
  mutable admitted : int;
  mutable shed : int;
  mutable expired : int;
}

let create cfg =
  if cfg.max_queue < 1 then invalid_arg "Batcher.create: max_queue < 1";
  if cfg.max_batch < 1 then invalid_arg "Batcher.create: max_batch < 1";
  if cfg.max_wait_s < 0.0 then invalid_arg "Batcher.create: max_wait_s < 0";
  { cfg; rev_items = []; len = 0; admitted = 0; shed = 0; expired = 0 }

let length t = t.len

let admit t ~now ?deadline_ms payload =
  if t.len >= t.cfg.max_queue then begin
    t.shed <- t.shed + 1;
    Shed
  end
  else begin
    let deadline =
      Option.map (fun ms -> now +. (float_of_int ms /. 1000.0)) deadline_ms
    in
    t.rev_items <- { payload; enqueued_at = now; deadline } :: t.rev_items;
    t.len <- t.len + 1;
    t.admitted <- t.admitted + 1;
    Admitted
  end

let is_expired now it =
  match it.deadline with Some d -> d <= now | None -> false

let pop_expired t ~now =
  let expired, live = List.partition (is_expired now) t.rev_items in
  if expired = [] then []
  else begin
    t.rev_items <- live;
    t.len <- List.length live;
    let expired = List.rev expired in
    t.expired <- t.expired + List.length expired;
    expired
  end

let should_flush t ~now =
  t.len >= t.cfg.max_batch
  ||
  match List.rev t.rev_items with
  | [] -> false
  | head :: _ -> now -. head.enqueued_at >= t.cfg.max_wait_s

let take_batch ?(force = false) t ~now =
  if t.len = 0 then []
  else if force || should_flush t ~now then begin
    let in_order = List.rev t.rev_items in
    let rec split i acc = function
      | x :: rest when i < t.cfg.max_batch -> split (i + 1) (x :: acc) rest
      | rest -> (List.rev acc, rest)
    in
    let batch, rest = split 0 [] in_order in
    t.rev_items <- List.rev rest;
    t.len <- List.length rest;
    batch
  end
  else []

let soonest_deadline t =
  List.fold_left
    (fun acc it ->
      match it.deadline with Some d -> Float.min d acc | None -> acc)
    Float.infinity t.rev_items

let next_expiry_in t ~now =
  let d = soonest_deadline t in
  if Float.is_finite d then Some (Float.max 0.0 (d -. now)) else None

let next_deadline_in t ~now =
  if t.len = 0 then None
  else begin
    let soonest = soonest_deadline t -. now in
    let flush_in =
      if t.len >= t.cfg.max_batch then 0.0
      else
        match List.rev t.rev_items with
        | [] -> Float.infinity
        | head :: _ -> head.enqueued_at +. t.cfg.max_wait_s -. now
    in
    Some (Float.max 0.0 (Float.min soonest flush_in))
  end

let admitted_total t = t.admitted

let shed_total t = t.shed

let expired_total t = t.expired
