(** Consistent-hash request router.

    Maps request keys (nest structural digests) onto replica indices
    through a virtual-node hash ring, so each replica serves a stable
    shard of the digest space and its digest-keyed result cache stays
    hot. Pure and deterministic: same replica count, same ring, on
    every process and every run.

    Health is deliberately not modelled here. {!preference} returns
    {e all} replicas in ring order for a key; the supervisor walks the
    list and takes the first healthy one. Keys homed on live replicas
    therefore never move when some {e other} replica dies or recovers —
    the property that preserves per-shard cache hit rates through
    chaos. *)

type t

val create : ?vnodes:int -> replicas:int -> unit -> t
(** [vnodes] (default 64) points per replica — more points, smoother
    shard balance. Raises [Invalid_argument] when either is < 1. *)

val replicas : t -> int

val hash_key : string -> int64
(** The ring hash (FNV-1a 64 + splitmix finalizer). Exposed for tests. *)

val owner : t -> string -> int
(** The key's home replica: first ring point clockwise of its hash. *)

val preference : t -> string -> int list
(** Every replica exactly once, in ring order from the key's hash; the
    head is {!owner}. Fail-over order for hedged retries. *)
