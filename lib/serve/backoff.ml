type config = {
  base_s : float;
  multiplier : float;
  cap_s : float;
  jitter : float;
}

let default_config = { base_s = 0.1; multiplier = 2.0; cap_s = 2.0; jitter = 0.1 }

let validate c =
  if c.base_s <= 0.0 then Error "base_s must be > 0"
  else if c.multiplier < 1.0 then Error "multiplier must be >= 1"
  else if c.cap_s < c.base_s then Error "cap_s must be >= base_s"
  else if c.jitter < 0.0 || c.jitter >= 1.0 then Error "jitter must be in [0, 1)"
  else Ok ()

type t = { cfg : config; rng : Util.Rng.t; mutable attempt : int }

let create ?(seed = 0x0b0f) cfg =
  (match validate cfg with
  | Ok () -> ()
  | Error e -> invalid_arg ("Backoff.create: " ^ e));
  { cfg; rng = Util.Rng.create seed; attempt = 0 }

let attempt t = t.attempt

(* Deterministic given the seed: delay_n = min(cap, base * mult^n),
   scaled by a symmetric jitter factor in [1-j, 1+j] so a fleet of
   replicas restarting off the same crash does not reconnect in
   lockstep. The cap applies before the jitter, so the worst case is
   cap * (1 + jitter). *)
let next t =
  let raw =
    t.cfg.base_s *. (t.cfg.multiplier ** float_of_int t.attempt)
  in
  t.attempt <- t.attempt + 1;
  let capped = Float.min raw t.cfg.cap_s in
  if t.cfg.jitter = 0.0 then capped
  else
    let u = Util.Rng.uniform t.rng in
    capped *. (1.0 -. t.cfg.jitter +. (2.0 *. t.cfg.jitter *. u))

let reset t = t.attempt <- 0

let max_delay c = c.cap_s *. (1.0 +. c.jitter)
