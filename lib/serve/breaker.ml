type config = {
  failure_threshold : int;
  cooldown_s : float;
  success_threshold : int;
}

let default_config =
  { failure_threshold = 3; cooldown_s = 1.0; success_threshold = 2 }

let validate c =
  if c.failure_threshold < 1 then Error "failure_threshold must be >= 1"
  else if c.cooldown_s < 0.0 then Error "cooldown_s must be >= 0"
  else if c.success_threshold < 1 then Error "success_threshold must be >= 1"
  else Ok ()

type state = Closed | Open | Half_open

(* The stored state never holds Half_open: an Open breaker whose
   cooldown has elapsed *reads* as Half_open ({!state} is a function of
   the clock), which makes the transition impossible to miss — there is
   no tick that could arrive late. Outcome recording then moves the
   stored state. *)
type t = {
  cfg : config;
  mutable stored : state;
  mutable failures : int;  (** consecutive, while Closed *)
  mutable successes : int;  (** consecutive probes, while Half_open *)
  mutable opened_at : float;
  mutable transitions : int;
}

let create ?(config = default_config) () =
  (match validate config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Breaker.create: " ^ e));
  {
    cfg = config;
    stored = Closed;
    failures = 0;
    successes = 0;
    opened_at = neg_infinity;
    transitions = 0;
  }

let state t ~now =
  match t.stored with
  | Open when now -. t.opened_at >= t.cfg.cooldown_s -> Half_open
  | s -> s

let allow t ~now = state t ~now <> Open

let transitions t = t.transitions

let trip t ~now =
  t.stored <- Open;
  t.opened_at <- now;
  t.failures <- 0;
  t.successes <- 0;
  t.transitions <- t.transitions + 1

let close t =
  t.stored <- Closed;
  t.failures <- 0;
  t.successes <- 0;
  t.transitions <- t.transitions + 1

let record_success t ~now =
  match state t ~now with
  | Closed -> t.failures <- 0
  | Half_open ->
      (* materialize the clock-driven transition before counting *)
      t.stored <- Half_open;
      t.successes <- t.successes + 1;
      if t.successes >= t.cfg.success_threshold then close t
  | Open -> ()

let record_failure t ~now =
  match state t ~now with
  | Closed ->
      t.failures <- t.failures + 1;
      if t.failures >= t.cfg.failure_threshold then trip t ~now
  | Half_open -> trip t ~now
  | Open -> ()

let state_to_string = function
  | Closed -> "closed"
  | Open -> "open"
  | Half_open -> "half-open"

(* Prometheus-friendly encoding, documented in docs/serving.md. *)
let state_to_float = function Closed -> 0.0 | Half_open -> 1.0 | Open -> 2.0
