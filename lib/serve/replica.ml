(* One serving replica as the supervisor sees it: a record of closures
   (call / alive / kill) over either a spawned child process or a bare
   socket. All socket I/O is done with [Unix.select] + raw reads
   against an explicit deadline — never buffered channels — so a
   timeout is a typed [Error Timeout] decided by our clock, not a
   Sys_error fished out of errno, and a timed-out connection is closed
   rather than returned to the pool (its late reply must never be
   misread as the answer to a later request). *)

(* Writing to a peer that died (exactly what the chaos harness
   injects) must raise EPIPE and flow into the typed error handling
   below — the default SIGPIPE action would kill the whole
   supervisor/front-door process instead. Ignored dispositions survive
   fork+exec, so spawned replicas inherit this too. *)
let ignore_sigpipe () =
  try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
  with Invalid_argument _ | Sys_error _ -> ()

let () = ignore_sigpipe ()

type error =
  | Timeout
  | Connection of string
  | Garbled of string

let error_to_string = function
  | Timeout -> "timeout"
  | Connection m -> "connection: " ^ m
  | Garbled m -> "garbled: " ^ m

type t = {
  pid : int option;
  describe : string;
  call :
    Protocol.request -> timeout_s:float -> (Protocol.response, error) result;
  alive : unit -> bool;
  kill : unit -> unit;
}

(* ---------- low-level deadline I/O ---------- *)

type conn = { fd : Unix.file_descr; mutable residue : Bytes.t }

let close_conn c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let connect_fd path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  try
    Unix.connect fd (Unix.ADDR_UNIX path);
    Ok { fd; residue = Bytes.empty }
  with
  | Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Connection (Unix.error_message e))
  | exn ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Connection (Printexc.to_string exn))

(* Write one protocol line, never blocking past [deadline]: a stalled
   peer (SIGSTOPped replica with a full socket buffer — a scenario the
   chaos plan injects) must surface as [Error Timeout], not block the
   request thread indefinitely. Each write is preceded by a
   writability select against the remaining budget; a blocking write
   after a positive select transfers at least one byte without
   blocking (the connection is checked out exclusively, so no other
   thread competes for the buffer space select saw). A dead peer
   raises EPIPE/ECONNRESET immediately (SIGPIPE is ignored above). *)
let write_line c line ~deadline =
  let data = line ^ "\n" in
  let len = String.length data in
  let rec go off =
    if off >= len then Ok ()
    else
      let remaining = deadline -. Unix.gettimeofday () in
      if remaining <= 0.0 then Error Timeout
      else
        match Unix.select [] [ c.fd ] [] remaining with
        | _, [], _ -> Error Timeout
        | _ -> (
            match Unix.write_substring c.fd data off (len - off) with
            | n -> go (off + n)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
            | exception
                Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
                go off
            | exception Unix.Unix_error (e, _, _) ->
                Error (Connection (Unix.error_message e)))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Read until '\n' or [deadline] (absolute, Unix.gettimeofday clock).
   Bytes after the newline are kept as residue for the next read on
   this connection. *)
let read_line c ~deadline =
  let buf = Buffer.create 256 in
  Buffer.add_bytes buf c.residue;
  c.residue <- Bytes.empty;
  let chunk = Bytes.create 4096 in
  let take_line () =
    let s = Buffer.contents buf in
    match String.index_opt s '\n' with
    | None -> None
    | Some i ->
        let line = String.sub s 0 i in
        let rest = String.length s - i - 1 in
        c.residue <- Bytes.of_string (String.sub s (i + 1) rest);
        Some line
  in
  let rec go () =
    match take_line () with
    | Some line -> Ok line
    | None -> (
        let remaining = deadline -. Unix.gettimeofday () in
        if remaining <= 0.0 then Error Timeout
        else
          match Unix.select [ c.fd ] [] [] remaining with
          | [], _, _ -> Error Timeout
          | _ -> (
              match Unix.read c.fd chunk 0 (Bytes.length chunk) with
              | 0 -> Error (Connection "peer closed the connection")
              | n ->
                  Buffer.add_subbytes buf chunk 0 n;
                  go ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
              | exception Unix.Unix_error (e, _, _) ->
                  Error (Connection (Unix.error_message e)))
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ())
  in
  go ()

let round_trip c req ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  match write_line c (Protocol.encode_request req) ~deadline with
  | Error _ as e -> e
  | Ok () -> (
      match read_line c ~deadline with
      | Error _ as e -> e
      | Ok line -> (
          match Protocol.decode_response line with
          | Error e -> Error (Garbled e)
          | Ok resp ->
              if Protocol.response_id resp = Protocol.request_id req then
                Ok resp
              else
                Error
                  (Garbled
                     (Printf.sprintf "reply id %S for request id %S"
                        (Protocol.response_id resp)
                        (Protocol.request_id req)))))

(* ---------- connection pool ---------- *)

(* Idle connections to one socket. Checkout pops (or dials); a call
   that succeeds checks its connection back in, any failure closes it.
   [close_all] empties the pool and marks it closed so late check-ins
   are closed instead of cached. *)
type pool = {
  path : string;
  mutex : Mutex.t;
  mutable idle : conn list;
  mutable closed : bool;
}

let pool_create path = { path; mutex = Mutex.create (); idle = []; closed = false }

let pool_checkout p =
  Mutex.lock p.mutex;
  let cached =
    match p.idle with
    | c :: rest ->
        p.idle <- rest;
        Some c
    | [] -> None
  in
  Mutex.unlock p.mutex;
  match cached with Some c -> Ok c | None -> connect_fd p.path

let pool_checkin p c =
  Mutex.lock p.mutex;
  let keep = not p.closed in
  if keep then p.idle <- c :: p.idle;
  Mutex.unlock p.mutex;
  if not keep then close_conn c

let pool_close_all p =
  Mutex.lock p.mutex;
  let conns = p.idle in
  p.idle <- [];
  p.closed <- true;
  Mutex.unlock p.mutex;
  List.iter close_conn conns

let pool_reopen p =
  Mutex.lock p.mutex;
  p.closed <- false;
  Mutex.unlock p.mutex

let pool_call p req ~timeout_s =
  match pool_checkout p with
  | Error _ as e -> e
  | Ok c -> (
      match round_trip c req ~timeout_s with
      | Ok _ as ok ->
          pool_checkin p c;
          ok
      | Error _ as e ->
          (* On any failure the connection's stream state is suspect
             (half-written request, reply still in flight): drop it. *)
          close_conn c;
          e)

(* ---------- constructors ---------- *)

let connect ?describe ~socket () =
  let pool = pool_create socket in
  let describe =
    match describe with Some d -> d | None -> "socket:" ^ socket
  in
  {
    pid = None;
    describe;
    call =
      (fun req ~timeout_s ->
        pool_reopen pool;
        pool_call pool req ~timeout_s);
    alive =
      (fun () ->
        match connect_fd socket with
        | Ok c ->
            close_conn c;
            true
        | Error _ -> false);
    kill = (fun () -> pool_close_all pool);
  }

let dev_null_in () = Unix.openfile "/dev/null" [ Unix.O_RDONLY ] 0

let dev_null_out () = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0

let spawn ~exe ~args ~socket () =
  let argv = Array.of_list (exe :: args) in
  let fd_in = dev_null_in () in
  let fd_out = dev_null_out () in
  let spawn_result =
    try Ok (Unix.create_process exe argv fd_in fd_out Unix.stderr)
    with
    | Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | exn -> Error (Printexc.to_string exn)
  in
  (try Unix.close fd_in with Unix.Unix_error _ -> ());
  (try Unix.close fd_out with Unix.Unix_error _ -> ());
  match spawn_result with
  | Error e -> Error (Printf.sprintf "cannot start %s: %s" exe e)
  | Ok pid ->
      let pool = pool_create socket in
      (* Exit is observed at most once per process: cache it. The
         mutex makes the check-exited / waitpid / kill sequences
         atomic across threads (heartbeat calls [alive], request and
         drain threads call [kill]) — without it, kill could pass the
         [not !exited] check just as another thread's waitpid reaps
         the child, then SIGKILL a recycled pid belonging to an
         unrelated process. *)
      let proc_mutex = Mutex.create () in
      let exited = ref false in
      let reap_locked ~block =
        if !exited then true
        else
          let flags = if block then [] else [ Unix.WNOHANG ] in
          match Unix.waitpid flags pid with
          | 0, _ -> false
          | _ ->
              exited := true;
              true
          | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
              exited := true;
              true
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> false
      in
      let reap ~block =
        Mutex.lock proc_mutex;
        let r = reap_locked ~block in
        Mutex.unlock proc_mutex;
        r
      in
      Ok
        {
          pid = Some pid;
          describe = Printf.sprintf "pid:%d socket:%s" pid socket;
          call = (fun req ~timeout_s -> pool_call pool req ~timeout_s);
          alive = (fun () -> not (reap ~block:false));
          kill =
            (fun () ->
              pool_close_all pool;
              Mutex.lock proc_mutex;
              if not !exited then begin
                (try Unix.kill pid Sys.sigkill
                 with Unix.Unix_error _ -> ());
                ignore (reap_locked ~block:true)
              end;
              Mutex.unlock proc_mutex);
        }

let call_once ~socket ~timeout_s req =
  match connect_fd socket with
  | Error _ as e -> e
  | Ok c ->
      let r = round_trip c req ~timeout_s in
      close_conn c;
      r
