(** The schedule-serving wire protocol, layer 1 of [lib/serve].

    Line-delimited and versioned: every message is one text line whose
    first token is the protocol tag [mrs1] ("mlir-rl serve, version 1"),
    followed by space-separated fields. String fields (request ids, op
    specs, textual IR, error messages) are percent-escaped so payloads
    may contain spaces, newlines and arbitrary bytes; everything else is
    plain ASCII. The format is deliberately greppable: a smoke test can
    assert ["^mrs1 r1 ok "] without a JSON parser.

    Decoding never raises — malformed input comes back as
    [Error reason], which frontends turn into an {!error_code}
    [Invalid_request] reply. Failures inside the server reuse the typed
    {!Env_error} vocabulary via [Env_failure].

    Requests:
    - [mrs1 ID optimize spec ESC-SPEC [DEADLINE-MS]] — optimize an op
      given as an {!Op_spec} string;
    - [mrs1 ID optimize ir ESC-IR [DEADLINE-MS]] — optimize a loop nest
      given as textual IR ({!Ir_parser} syntax);
    - [mrs1 ID stats] — compact [k=v] server statistics;
    - [mrs1 ID metrics] — full Prometheus text-format dump;
    - [mrs1 ID ping] — liveness probe.

    Responses:
    - [mrs1 ID ok ESC-SCHEDULE SPEEDUP POLICY-DIGEST] — the chosen
      schedule (printable {!Schedule} notation), its predicted speedup
      and the digest of the policy checkpoint that answered. Identical
      requests to one server instance produce byte-identical [ok] lines
      (greedy decoding is deterministic and the speedup is printed with
      round-trippable precision);
    - [mrs1 ID error CODE ESC-MESSAGE];
    - [mrs1 ID stats ESC-BODY] / [mrs1 ID metrics ESC-BODY];
    - [mrs1 ID pong]. *)

type target =
  | Spec of string  (** an {!Op_spec} string, e.g. ["matmul:64x64x64"] *)
  | Ir of string  (** a loop nest in the textual IR syntax *)

type request =
  | Optimize of { id : string; target : target; deadline_ms : int option }
      (** [deadline_ms] bounds queueing + service time; an admitted
          request that cannot start in time is answered with
          [Deadline_exceeded] instead of being served late. *)
  | Stats of { id : string }
  | Metrics of { id : string }
  | Ping of { id : string }

type error_code =
  | Parse_error  (** the op spec or IR payload did not parse *)
  | Invalid_request  (** the wire line itself was malformed *)
  | Unsupported
      (** parsed, but not servable: nest cannot be raised to a
          structured op, or exceeds the policy's N/D/L bounds *)
  | Overloaded  (** admission queue full — load was shed *)
  | Deadline_exceeded
  | Env_failure  (** the rollout failed; message carries the detail *)
  | Shutting_down  (** the server is draining and admits no new work *)
  | Unavailable
      (** fleet front door: no healthy replica to route to (all down,
          restarting, or shedding through an open circuit breaker) *)
  | Upstream_failure
      (** fleet front door: the replica serving this request died,
          stalled past its deadline or answered garbage, and the one
          bounded hedged retry also failed *)

type reply = {
  r_id : string;
  schedule : string;  (** printable {!Schedule} notation *)
  speedup : float;  (** predicted speedup of the schedule *)
  policy_digest : string;  (** checkpoint digest the reply answers with *)
}

type response =
  | Ok_reply of reply
  | Error_reply of { e_id : string; code : error_code; message : string }
  | Stats_reply of { s_id : string; body : string }
  | Metrics_reply of { m_id : string; body : string }
  | Pong of { p_id : string }

val version : int
(** 1. Bumps when the line grammar changes; the tag token is
    ["mrs" ^ string_of_int version]. *)

val request_id : request -> string
val response_id : response -> string

val error_code_to_string : error_code -> string
(** Stable lower-snake names, e.g. ["deadline_exceeded"]. *)

val error_code_of_string : string -> error_code option

val escape : string -> string
(** Percent-escape ['%'], space, TAB, CR and LF (the characters that
    would break line/token framing). Total and injective. *)

val unescape : string -> (string, string) result
(** Inverse of {!escape}; rejects truncated or non-hex [%] sequences. *)

val encode_request : request -> string
(** One line, no trailing newline. *)

val decode_request : string -> (request, string) result
(** Total: never raises, rejects unknown tags/verbs, bad escapes, bad
    deadlines and trailing garbage with a descriptive message. *)

val encode_response : response -> string

val decode_response : string -> (response, string) result
(** Total, like {!decode_request}. [decode_response (encode_response r)]
    is [Ok r]; speedups are printed with 17 significant digits so the
    float round-trips exactly. *)
