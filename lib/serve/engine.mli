(** The compute core of [lib/serve]: target resolution, result caching
    and batched greedy rollouts. Transport-free and thread-compatible —
    {!Server} calls {!solve_batch} from worker domains; callers on
    different domains must use disjoint calls (the shared pieces, the
    policy weights (read-only at inference) and the {!Util.Sharded_cache},
    are domain-safe).

    Determinism contract: the policy decodes greedily
    ({!Policy.act_greedy_batch}, row-independent), the evaluator is
    noiseless, and the cache stores exactly what the rollout computed —
    so one engine answers identical requests with identical schedules
    and speedups, however they are batched, whether or not they hit the
    cache. *)

type t

type config = {
  env_cfg : Env_config.t;
  hidden : int;  (** policy width; see {!Policy.create} *)
  checkpoint : string option;
      (** weights to serve ({!Serialize} format); [None] serves a
          seed-0x51-initialized policy — useful for smoke tests *)
  cache_capacity : int;  (** result-cache bound (entries) *)
  measure_delay_s : float;
      (** emulated hardware-measurement time per unique uncached nest
          in a batch (a real deployment times candidate schedules on
          hardware; the analytic evaluator does not). [solve_batch]
          sleeps [measure_delay_s * ceil(unique_misses / jobs)] before
          rolling out — [jobs] nests measure concurrently — so serving
          latency is measurement-bound the way production is, cache
          hits stay instant, and fleet benchmarks scale with replicas
          instead of with this host's core count. 0 (off) by
          default. *)
  jobs : int;
      (** rollout parallelism (default 1; {!create} rejects values
          below 1). Above 1 the engine owns a {!Util.Domain_pool} of
          [jobs] workers; each miss batch splits into [jobs] contiguous
          chunks decoded as independent lockstep rollouts. Rows of a
          batch are independent (greedy decode, per-row forked env), so
          results are identical to [jobs = 1] for any batch and any
          chunking — only latency changes. Call {!shutdown} when done
          to join the pool. *)
}

val default_config : config
(** [Env_config.default], hidden 64, no checkpoint, capacity 4096,
    no measurement delay, jobs 1. *)

type outcome = {
  schedule : string;  (** printable {!Schedule} notation *)
  speedup : float;
}

val create : config -> (t, string) result
(** Build the policy (loading [checkpoint] if given), the base
    environment, the result cache and (for [jobs > 1]) the rollout
    pool. [Error] on an unreadable or mismatched checkpoint, or on
    [jobs < 1]. *)

val shutdown : t -> unit
(** Join the rollout pool, if any. Idempotent; a no-op for
    [jobs = 1]. Call after the last {!solve_batch}. *)

val policy_digest : t -> string
(** Hex digest of the served weights (canonical serialized form), the
    checkpoint fingerprint every [ok] reply carries. Computed once at
    {!create}. *)

val resolve_target :
  t -> Protocol.target -> (Linalg.t, Protocol.error_code * string) result
(** [Spec] strings go through {!Op_spec.parse}; [Ir] payloads through
    {!Ir_parser.parse_result} then {!Lower.raise_nest}. Parse failures
    map to [Parse_error]; raisable-but-unservable ops (raise failure, or
    loop/operand/rank counts beyond the policy's N/L/D bounds) map to
    [Unsupported]. Never raises. *)

val nest_digest : Linalg.t -> string
(** {!Loop_nest.digest} of the op's canonical lowered nest: the full
    semantics, not just name and shape, so two different bodies never
    collide — and no pretty-printed intermediate string, unlike the
    print+MD5 scheme it replaced. Names are not hashed, so renamed
    copies of one op share a cache entry. *)

val cache_key : t -> Linalg.t -> string
(** The result-cache key: {!nest_digest} of the op. *)

val target_digest : Protocol.target -> string
(** Routing key for the fleet supervisor: {!nest_digest} of the parsed
    target, so it equals the replica-side {!cache_key} whenever the
    target parses (consistent-hash routing then keeps each digest on
    the replica whose cache is already hot for it, whether the nest
    arrived as a spec or as IR). Targets that do not parse hash their
    raw text instead — every replica answers those with the same
    error, so placement is irrelevant. Needs no engine. *)

val solve_batch :
  t -> Linalg.t array -> (outcome, Protocol.error_code * string) result array
(** Optimize a slab of ops: cache hits answered immediately, misses run
    as one lockstep batched greedy rollout (one forward pass per step
    across all still-active episodes) and are cached. Per-op failures
    come back as [Env_failure] entries; the other ops still succeed. *)

val cache_stats : t -> Util.Sharded_cache.stats

val cache_hits : t -> int

val cache_misses : t -> int

val evaluator_cache_stats : t -> Evaluator.cache_stats
(** Counters of the engine evaluator's base-time and state-seconds
    caches, aggregated across every forked rollout env — the layer
    below the result cache, surfaced in serve stats and metrics. *)
