(** The serving daemon's core, layer 3 of [lib/serve]: wires
    {!Batcher} admission to {!Engine} rollouts over a
    {!Util.Domain_pool}, with a dispatcher domain in between.

    Transport-agnostic: callers ({!Frontend}, tests) push decoded
    {!Protocol.request}s through {!submit} and receive
    {!Protocol.response}s through a callback — no sockets, no line
    parsing in this layer, so every queueing, shedding, deadline and
    drain behaviour is unit-testable in-process.

    Lifecycle of an [optimize] request: {!submit} resolves the target
    (parse failures answered synchronously), then admits into the
    batcher — a full queue answers [Overloaded], a draining server
    [Shutting_down]. The dispatcher wakes on admission, expires
    overdue requests ([Deadline_exceeded]), and when a worker slot is
    free flushes a micro-batch ([max_batch] waiting, or the oldest
    waited [max_wait_ms]) to the pool, where {!Engine.solve_batch}
    answers the whole batch with one lockstep rollout per step.

    [stats]/[metrics]/[ping] are answered synchronously on the
    caller's thread and never queue.

    Callbacks fire on the submitting thread (synchronous replies), the
    dispatcher domain (shed/expired/drain replies) or a worker domain
    (served replies) — they must be thread-safe and quick. *)

type config = {
  workers : int;  (** rollout worker domains; >= 1 *)
  batcher : Batcher.config;
}

val default_config : config
(** 1 worker (single-core friendly), {!Batcher.default_config}. *)

type t

val create : ?config:config -> Engine.t -> t
(** Spawns the dispatcher domain and the worker pool; the server is
    accepting as soon as this returns. *)

val submit : t -> Protocol.request -> (Protocol.response -> unit) -> unit
(** Never raises and always answers: every submitted request produces
    exactly one callback invocation, eventually. *)

val drain : t -> unit
(** Graceful shutdown: stop admitting (new optimize requests are
    answered [Shutting_down]), serve everything already admitted, then
    stop the dispatcher and join the worker pool. Idempotent and safe
    from several threads — one caller does the work, the rest block
    until the drain completes. *)

val metrics : t -> Metrics.t
(** Live registry — counters [serve_requests_total],
    [serve_replies_total{...}]-style per-code counters, histograms
    [serve_latency_seconds], [serve_queue_wait_seconds],
    [serve_batch_size]. See [docs/serving.md] for the full reference. *)

val stats_body : t -> string
(** The [k=v] body served for [stats] requests: metrics summary plus
    engine cache and batcher counters. *)
