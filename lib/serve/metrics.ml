(* Log-bucketed histograms: bounds base * ratio^i for i in [0, n_buckets),
   plus a +Inf overflow bucket. base 1e-6 (1us) and ratio 2 give 30
   buckets up to ~17 minutes — plenty for request latencies — with at
   most 2x relative overestimate from quantile. *)

let n_buckets = 30

let base_bound = 1e-6

let ratio = 2.0

type hist = {
  bounds : float array; (* length n_buckets, ascending *)
  buckets : int array; (* length n_buckets + 1; last is +Inf *)
  mutable sum : float;
  mutable count : int;
}

type t = {
  mutex : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
}

let create () =
  {
    mutex = Mutex.create ();
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    hists = Hashtbl.create 16;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let incr t ?(by = 1) name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.replace t.counters name (ref by))

let counter t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0)

(* Gauges are point-in-time values (replica up/down, breaker state) —
   set absolutely, never accumulated. *)
let set_gauge t name v =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.gauges name with
      | Some r -> r := v
      | None -> Hashtbl.replace t.gauges name (ref v))

let gauge t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None)

let make_hist () =
  let bounds = Array.init n_buckets (fun i -> base_bound *. (ratio ** float_of_int i)) in
  { bounds; buckets = Array.make (n_buckets + 1) 0; sum = 0.0; count = 0 }

let bucket_index h v =
  (* First bucket whose upper bound contains v; linear scan is fine for
     30 buckets and avoids float-log edge cases. *)
  let rec go i = if i >= n_buckets then n_buckets else if v <= h.bounds.(i) then i else go (i + 1) in
  go 0

let observe t name v =
  with_lock t (fun () ->
      let h =
        match Hashtbl.find_opt t.hists name with
        | Some h -> h
        | None ->
            let h = make_hist () in
            Hashtbl.replace t.hists name h;
            h
      in
      let v = if v < 0.0 || Float.is_nan v then 0.0 else v in
      h.buckets.(bucket_index h v) <- h.buckets.(bucket_index h v) + 1;
      h.sum <- h.sum +. v;
      h.count <- h.count + 1)

let hist_count t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.hists name with Some h -> h.count | None -> 0)

let hist_sum t name =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.hists name with Some h -> h.sum | None -> 0.0)

let quantile t name q =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.hists name with
      | None -> None
      | Some h when h.count = 0 -> None
      | Some h ->
          let q = Float.max 0.0 (Float.min 1.0 q) in
          let rank = int_of_float (Float.round (q *. float_of_int (h.count - 1))) + 1 in
          let rec go i seen =
            if i > n_buckets then h.bounds.(n_buckets - 1)
            else
              let seen = seen + h.buckets.(i) in
              if seen >= rank then
                if i < n_buckets then h.bounds.(i) else Float.infinity
              else go (i + 1) seen
          in
          Some (go 0 0))

let sorted_keys tbl = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) tbl [])

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.9g" f

let render t =
  with_lock t (fun () ->
      let buf = Buffer.create 1024 in
      List.iter
        (fun name ->
          let v = !(Hashtbl.find t.counters name) in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s counter\n%s %d\n" name name v))
        (sorted_keys t.counters);
      List.iter
        (fun name ->
          let v = !(Hashtbl.find t.gauges name) in
          Buffer.add_string buf
            (Printf.sprintf "# TYPE %s gauge\n%s %s\n" name name (float_str v)))
        (sorted_keys t.gauges);
      List.iter
        (fun name ->
          let h = Hashtbl.find t.hists name in
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
          let cum = ref 0 in
          Array.iteri
            (fun i b ->
              cum := !cum + b;
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" name (float_str h.bounds.(i)) !cum))
            (Array.sub h.buckets 0 n_buckets);
          cum := !cum + h.buckets.(n_buckets);
          Buffer.add_string buf (Printf.sprintf "%s_bucket{le=\"+Inf\"} %d\n" name !cum);
          Buffer.add_string buf (Printf.sprintf "%s_sum %s\n" name (float_str h.sum));
          Buffer.add_string buf (Printf.sprintf "%s_count %d\n" name h.count))
        (sorted_keys t.hists);
      Buffer.contents buf)

let stats_line t =
  (* Quantiles call back into the lock, so gather the raw data under the
     lock and format outside it. *)
  let counters, gauges, hists =
    with_lock t (fun () ->
        ( List.map (fun k -> (k, !(Hashtbl.find t.counters k))) (sorted_keys t.counters),
          List.map (fun k -> (k, !(Hashtbl.find t.gauges k))) (sorted_keys t.gauges),
          List.map (fun k -> k) (sorted_keys t.hists) ))
  in
  let parts =
    List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) counters
    @ List.map (fun (k, v) -> Printf.sprintf "%s=%s" k (float_str v)) gauges
    @ List.concat_map
        (fun k ->
          let p50 = match quantile t k 0.5 with Some v -> v | None -> 0.0 in
          let p99 = match quantile t k 0.99 with Some v -> v | None -> 0.0 in
          [
            Printf.sprintf "%s_count=%d" k (hist_count t k);
            Printf.sprintf "%s_sum=%s" k (float_str (hist_sum t k));
            Printf.sprintf "%s_p50=%s" k (float_str p50);
            Printf.sprintf "%s_p99=%s" k (float_str p99);
          ])
        hists
  in
  String.concat " " parts

(* -- merging rendered dumps -------------------------------------------

   The fleet supervisor scrapes each replica's Prometheus dump and
   serves one merged view: counters and histogram buckets sum across
   replicas (every replica renders the same bucket bounds, so summing
   the cumulative counts per upper bound is exact), gauges sum too
   (fleet totals of per-replica levels). Only the format produced by
   {!render} is understood; unparseable lines are dropped rather than
   guessed at. *)

type merge_acc = {
  mutable m_kind : string; (* "counter" | "gauge" | "histogram" *)
  m_buckets : (string, float) Hashtbl.t; (* le -> cumulative count *)
  mutable m_sum : float;
  mutable m_count : float;
  mutable m_value : float; (* counters and gauges *)
}

let merge_rendered dumps =
  let accs : (string, merge_acc) Hashtbl.t = Hashtbl.create 32 in
  let acc name kind =
    match Hashtbl.find_opt accs name with
    | Some a -> a
    | None ->
        let a =
          {
            m_kind = kind;
            m_buckets = Hashtbl.create 8;
            m_sum = 0.0;
            m_count = 0.0;
            m_value = 0.0;
          }
        in
        Hashtbl.replace accs name a;
        a
  in
  let strip_suffix s suf =
    let n = String.length s and m = String.length suf in
    if n > m && String.sub s (n - m) m = suf then Some (String.sub s 0 (n - m))
    else None
  in
  let handle_sample name value =
    match String.index_opt name '{' with
    | Some i -> (
        (* NAME_bucket{le="BOUND"} *)
        match strip_suffix (String.sub name 0 i) "_bucket" with
        | None -> ()
        | Some base ->
            let rest = String.sub name i (String.length name - i) in
            let le =
              match (String.index_opt rest '"', String.rindex_opt rest '"') with
              | Some a, Some b when b > a -> String.sub rest (a + 1) (b - a - 1)
              | _ -> ""
            in
            if le <> "" then begin
              let a = acc base "histogram" in
              let prev =
                Option.value ~default:0.0 (Hashtbl.find_opt a.m_buckets le)
              in
              Hashtbl.replace a.m_buckets le (prev +. value)
            end)
    | None -> (
        match strip_suffix name "_sum" with
        | Some base when Hashtbl.mem accs base ->
            (acc base "histogram").m_sum <- (acc base "histogram").m_sum +. value
        | _ -> (
            match strip_suffix name "_count" with
            | Some base when Hashtbl.mem accs base ->
                (acc base "histogram").m_count <-
                  (acc base "histogram").m_count +. value
            | _ ->
                (* TYPE lines precede samples in rendered dumps, so the
                   kind is already registered; default to counter. *)
                let a = acc name "counter" in
                a.m_value <- a.m_value +. value))
  in
  List.iter
    (fun dump ->
      String.split_on_char '\n' dump
      |> List.iter (fun line ->
             let line = String.trim line in
             if line = "" then ()
             else if String.length line > 0 && line.[0] = '#' then begin
               match String.split_on_char ' ' line with
               | [ "#"; "TYPE"; name; kind ] -> (acc name kind).m_kind <- kind
               | _ -> ()
             end
             else
               match String.rindex_opt line ' ' with
               | None -> ()
               | Some i -> (
                   let name = String.sub line 0 i in
                   let v = String.sub line (i + 1) (String.length line - i - 1) in
                   match float_of_string_opt v with
                   | Some value -> handle_sample name value
                   | None -> ())))
    dumps;
  let names = List.sort String.compare (Hashtbl.fold (fun k _ l -> k :: l) accs []) in
  let buf = Buffer.create 1024 in
  List.iter
    (fun name ->
      let a = Hashtbl.find accs name in
      match a.m_kind with
      | "histogram" ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s histogram\n" name);
          let les = Hashtbl.fold (fun le c l -> (le, c) :: l) a.m_buckets [] in
          let les =
            List.sort
              (fun (a, _) (b, _) ->
                let key le =
                  if le = "+Inf" then Float.infinity
                  else Option.value ~default:Float.infinity (float_of_string_opt le)
                in
                compare (key a) (key b))
              les
          in
          List.iter
            (fun (le, c) ->
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %s\n" name le (float_str c)))
            les;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" name (float_str a.m_sum));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %s\n" name (float_str a.m_count))
      | kind ->
          Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind);
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" name (float_str a.m_value)))
    names;
  Buffer.contents buf
