(** Transports for {!Server}, layer 4 of [lib/serve]: the only layer
    that touches file descriptors. One request line in, one response
    line out ({!Protocol} framing); lines that do not decode are
    answered with an [invalid_request] error reply rather than dropped,
    so a client always gets exactly one response per line sent.

    Replies are written by whichever thread the server invokes the
    callback on, serialized per output channel by an internal lock, and
    flushed per line — interleaving across in-flight requests is
    expected, clients correlate by id. *)

type handler = Protocol.request -> (Protocol.response -> unit) -> unit
(** Whatever answers requests behind a transport: [Server.submit s]
    for a single-engine daemon, [fun req k -> k (Supervisor.call s req)]
    for the fleet front door. The callback may be invoked on any
    thread, synchronously or later; exactly once per request. *)

val serve_channels_handler : handler -> in_channel -> out_channel -> unit
(** {!serve_channels} generalized over the {!handler}. *)

val listen_unix_handler : ?backlog:int -> handler -> path:string -> unit
(** {!listen_unix} generalized over the {!handler}. *)

val serve_channels : Server.t -> in_channel -> out_channel -> unit
(** The stdin/stdout frontend: read request lines until EOF, then wait
    for every outstanding reply on this channel pair before returning
    (the server itself is left running — the caller decides when to
    {!Server.drain}). *)

val listen_unix : ?backlog:int -> Server.t -> path:string -> unit
(** Bind a Unix-domain stream socket at [path] (unlinking any stale
    socket file first) and serve forever: one lightweight thread per
    connection, each running the {!serve_channels} loop. Never returns
    normally — the daemon is stopped by killing the process; raises
    [Unix.Unix_error] if the socket cannot be bound. *)
