(* Per-channel-pair connection state: a write lock so replies from
   worker/dispatcher domains and the reader thread never interleave
   bytes, and an outstanding-reply count so EOF can wait for quiescence
   before the channels are closed under the server's feet. *)
type conn = {
  out : out_channel;
  lock : Mutex.t;
  cond : Condition.t;
  mutable outstanding : int;
}

let write_line conn line =
  Mutex.lock conn.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock conn.lock)
    (fun () ->
      (* A client that hung up mid-flight must not kill the server. *)
      try
        output_string conn.out line;
        output_char conn.out '\n';
        flush conn.out
      with Sys_error _ -> ())

let reply_callback conn response =
  write_line conn (Protocol.encode_response response);
  Mutex.lock conn.lock;
  conn.outstanding <- conn.outstanding - 1;
  Condition.broadcast conn.cond;
  Mutex.unlock conn.lock

type handler = Protocol.request -> (Protocol.response -> unit) -> unit

let serve_channels_handler handler ic oc =
  (* write_line's [Sys_error] catch only sees a client hang-up if the
     broken-pipe write raises instead of delivering a fatal SIGPIPE. *)
  Replica.ignore_sigpipe ();
  let conn = { out = oc; lock = Mutex.create (); cond = Condition.create (); outstanding = 0 } in
  (try
     while true do
       let line = input_line ic in
       if String.length (String.trim line) > 0 then
         match Protocol.decode_request line with
         | Error msg ->
             write_line conn
               (Protocol.encode_response
                  (Protocol.Error_reply
                     {
                       e_id = "unknown";
                       code = Protocol.Invalid_request;
                       message = msg;
                     }))
         | Ok req ->
             Mutex.lock conn.lock;
             conn.outstanding <- conn.outstanding + 1;
             Mutex.unlock conn.lock;
             handler req (reply_callback conn)
     done
   with End_of_file -> ());
  Mutex.lock conn.lock;
  while conn.outstanding > 0 do
    Condition.wait conn.cond conn.lock
  done;
  Mutex.unlock conn.lock

let serve_channels server ic oc =
  serve_channels_handler (Server.submit server) ic oc

let listen_unix_handler ?(backlog = 16) handler ~path =
  Replica.ignore_sigpipe ();
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock backlog;
  (* A signal (e.g. the fleet's SIGTERM handler poking its shutdown
     pipe) interrupts accept with EINTR; that must restart the loop,
     not crash the front door out from under the shutdown thread. *)
  let rec accept_retry () =
    match Unix.accept sock with
    | r -> r
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_retry ()
  in
  while true do
    let fd, _addr = accept_retry () in
    let _t : Thread.t =
      Thread.create
        (fun fd ->
          let ic = Unix.in_channel_of_descr fd in
          let oc = Unix.out_channel_of_descr fd in
          (try serve_channels_handler handler ic oc with _ -> ());
          try Unix.close fd with Unix.Unix_error _ -> ())
        fd
    in
    ()
  done

let listen_unix ?backlog server ~path =
  listen_unix_handler ?backlog (Server.submit server) ~path
