(** Capped exponential backoff with seeded jitter.

    Pure bookkeeping — no clocks, no sleeping. The supervisor asks
    {!next} for the delay before the n-th consecutive restart attempt
    and schedules the restart itself; {!reset} is called once the
    replica proves healthy again. Deterministic given the seed, so
    restart schedules replay exactly in tests and chaos runs. *)

type config = {
  base_s : float;  (** delay before the first retry; > 0 *)
  multiplier : float;  (** growth per attempt; >= 1 *)
  cap_s : float;  (** delays never exceed this (pre-jitter) *)
  jitter : float;
      (** symmetric relative jitter in [0, 1): each delay is scaled by
          a uniform factor in [1-jitter, 1+jitter] *)
}

val default_config : config
(** 100ms base, doubling, 2s cap, 10% jitter. *)

val validate : config -> (unit, string) result

type t

val create : ?seed:int -> config -> t
(** Raises [Invalid_argument] on an invalid config. *)

val next : t -> float
(** Delay in seconds before the next attempt; advances the attempt
    counter. *)

val attempt : t -> int
(** Consecutive attempts drawn since the last {!reset}. *)

val reset : t -> unit
(** Back to the base delay — call when the replica is healthy again. *)

val max_delay : config -> float
(** The worst-case single delay: [cap_s * (1 + jitter)]. Chaos tests
    assert restart-to-healthy within a small multiple of this. *)
