(** Per-replica circuit breaker.

    Pure state machine over an explicit clock — no threads, no
    [gettimeofday] — so every transition is unit-testable with a
    scripted [now].

    Closed: requests flow; [failure_threshold] {e consecutive} failures
    trip it Open. Open: requests are shed to other replicas; after
    [cooldown_s] the breaker {e reads} as Half_open (the transition is
    a function of the clock, not of a tick that could arrive late).
    Half_open: probe traffic is allowed; [success_threshold]
    consecutive successes close it, any failure re-opens it and
    restarts the cooldown. *)

type config = {
  failure_threshold : int;  (** consecutive failures that trip Open *)
  cooldown_s : float;  (** Open duration before probing resumes *)
  success_threshold : int;  (** consecutive probe successes that close *)
}

val default_config : config
(** 3 failures trip, 1s cooldown, 2 successes close. *)

val validate : config -> (unit, string) result

type state = Closed | Open | Half_open

type t

val create : ?config:config -> unit -> t
(** Starts Closed. Raises [Invalid_argument] on an invalid config. *)

val state : t -> now:float -> state

val allow : t -> now:float -> bool
(** Whether a request (or probe) may be routed here: true in Closed and
    Half_open, false in Open. *)

val record_success : t -> now:float -> unit

val record_failure : t -> now:float -> unit

val transitions : t -> int
(** Total state transitions — a cheap flappiness signal for metrics. *)

val state_to_string : state -> string

val state_to_float : state -> float
(** Gauge encoding: closed 0, half-open 1, open 2. *)
