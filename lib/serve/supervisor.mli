(** Fleet supervisor: crash recovery, health-checked routing, hedged
    retries — the front door of a multi-replica serving fleet.

    The supervisor owns [replicas] slots, each holding one
    {!Replica.t} (normally a child [serve --socket] process). It
    routes [optimize] requests by consistent-hashing the nest digest
    ({!Engine.target_digest}) over a {!Router} ring, so each replica
    serves a stable shard of the digest space and its digest-keyed
    result cache stays hot through the failure and recovery of other
    replicas. Per slot it keeps a {!Breaker} (shed to healthy replicas
    while a slot misbehaves) and a {!Backoff} (capped exponential
    restart schedule with seeded jitter).

    {!tick} is one supervision pass — detect exited processes,
    relaunch the ones whose backoff delay has elapsed, ping the live
    ones with a deadline, promote [starting -> up], recycle stalled
    replicas whose breaker has opened. Production runs call
    {!start_heartbeat} which ticks on a background thread; tests drive
    {!tick} directly under an injected clock and sleep function, so
    restart/backoff/breaker schedules are asserted without a single
    real sleep.

    Requests stranded by a dying replica (timeout, connection drop,
    garbled reply) get exactly one hedged retry on the next healthy
    replica in ring order; if that also fails the client receives a
    typed [upstream_failure]. When no replica is routable the reply is
    [unavailable] — the fleet never hangs a client on a dead backend.

    {!drain} and {!reload} never drop an accepted request: a slot is
    first fenced from new routing, then its in-flight count is waited
    down to zero (condition-variable, event-driven), and only then is
    the process stopped. *)

type config = {
  replicas : int;
  vnodes : int;  (** ring points per replica; {!Router.create} *)
  request_timeout_s : float;
      (** per-attempt deadline the supervisor imposes on replica calls *)
  health_interval_s : float;  (** heartbeat period *)
  health_timeout_s : float;  (** ping deadline per health probe *)
  ready_timeout_s : float;
      (** how long a freshly launched replica may take to answer its
          first ping before it is recycled *)
  hedge : bool;  (** allow the one hedged retry (default true) *)
  breaker : Breaker.config;
  backoff : Backoff.config;
  seed : int;  (** jitter seed; slot [i] uses [seed + i] *)
}

val default_config : config

val validate : config -> (unit, string) result

type t

val create :
  ?config:config ->
  ?now:(unit -> float) ->
  ?sleep:(float -> unit) ->
  launcher:(index:int -> (Replica.t, string) result) ->
  unit ->
  (t, string) result
(** Launch every slot once via [launcher] (failures go straight onto
    the restart schedule; {!create} itself only fails on an invalid
    config). [now]/[sleep] default to [Unix.gettimeofday]/[Thread.delay]
    and exist to be replaced by mock clocks in tests. *)

val call : t -> Protocol.request -> Protocol.response
(** The front door. [optimize] routes by digest with breaker shedding
    and the hedged retry; [ping] answers directly; [stats] returns the
    fleet status body ({!status_body}); [metrics] returns the
    aggregated fleet scrape ({!render_metrics}). While draining, every
    request is answered [shutting_down]. *)

val tick : t -> unit
(** One supervision pass; see the module description. Safe to call
    concurrently with {!call}, {!reload} and a running heartbeat. *)

val start_heartbeat : t -> unit
(** Spawn the background thread that runs {!tick} every
    [health_interval_s]. Idempotent; stopped by {!stop_heartbeat} or
    {!drain}, and restartable after {!stop_heartbeat}. *)

val stop_heartbeat : t -> unit
(** Stop and join the heartbeat thread (no-op if none runs).
    Supervision pauses — no health probes, no restarts — but slot
    state is kept and the request path stays live; {!start_heartbeat}
    resumes. {!drain} calls this on the way down. *)

val await_ready : t -> timeout_s:float -> bool
(** Tick until every slot is up (true) or the timeout elapses (false).
    Uses the injected clock and sleep. *)

val reload :
  ?launcher:(index:int -> (Replica.t, string) result) -> t -> (unit, string) result
(** Rolling restart, slot by slot: fence from routing, wait in-flight
    to zero, stop the old process, launch (with [launcher] if given —
    hot checkpoint reload passes a launcher pointing at the new
    weights), wait ready. A slot that fails to come back is put on the
    normal restart schedule and reported in [Error]; the rest of the
    fleet keeps serving throughout. *)

val drain : t -> unit
(** Graceful shutdown: fence every slot, wait for all in-flight
    requests to finish, stop all replicas and the heartbeat.
    Idempotent. *)

val draining : t -> bool

(** {1 Introspection} *)

type replica_status = {
  rs_index : int;
  rs_state : string;  (** ["starting"|"up"|"down"|"draining"] *)
  rs_pid : int option;
  rs_restarts : int;  (** relaunches since {!create} *)
  rs_breaker : Breaker.state;
  rs_in_flight : int;
  rs_generation : int;  (** bumps per launch; guards stale outcomes *)
}

val status : t -> replica_status array

val status_body : t -> string
(** Multi-line fleet status: one [k=v] header line, one line per
    replica, then the supervisor's {!Metrics.stats_line}. *)

val metrics : t -> Metrics.t
(** The supervisor's own registry: [fleet_*] counters and histograms
    plus per-replica [fleet_replica_<i>_up] / [..._breaker_state] /
    [..._in_flight] gauges. *)

val render_metrics : t -> string
(** {!Metrics.merge_rendered} of the supervisor's registry and a
    deadline-bounded [metrics] scrape of every live replica: one
    Prometheus document with fleet-level series and the replicas'
    [serve_*] series summed across the fleet. *)

(** {1 Chaos and test hooks} *)

val replica_pid : t -> int -> int option

val kill_replica : t -> int -> unit
(** SIGKILL slot [i]'s process {e without} telling the supervisor —
    the crash must be discovered by the health loop, exactly like a
    real die. The chaos harness's [kill] action. *)

val replica_call :
  t ->
  int ->
  Protocol.request ->
  timeout_s:float ->
  (Protocol.response, Replica.error) result
(** Side-channel call to one replica (bench uses it to read per-shard
    cache stats). [Error Connection] when the slot has no process. *)
