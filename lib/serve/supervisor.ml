(* Fleet supervisor. One mutex guards all slot state; everything slow
   (launching processes, socket round trips, health pings) happens
   outside it under a generation guard: each launch bumps the slot's
   generation, and an outcome observed against generation g is applied
   only if the slot still runs generation g. That makes tick safe to
   run concurrently with the request path, reload and itself.

   The clock and sleep are injected so tier-1 tests script time:
   restart schedules, breaker cooldowns and ready timeouts are all
   functions of [now ()], never of wall time. *)

type config = {
  replicas : int;
  vnodes : int;
  request_timeout_s : float;
  health_interval_s : float;
  health_timeout_s : float;
  ready_timeout_s : float;
  hedge : bool;
  breaker : Breaker.config;
  backoff : Backoff.config;
  seed : int;
}

let default_config =
  {
    replicas = 3;
    vnodes = 64;
    request_timeout_s = 10.0;
    health_interval_s = 0.2;
    health_timeout_s = 1.0;
    ready_timeout_s = 10.0;
    hedge = true;
    breaker = Breaker.default_config;
    backoff = Backoff.default_config;
    seed = 0x5eed;
  }

let validate c =
  if c.replicas < 1 then Error "replicas must be >= 1"
  else if c.vnodes < 1 then Error "vnodes must be >= 1"
  else if c.request_timeout_s <= 0.0 then Error "request_timeout_s must be > 0"
  else if c.health_interval_s <= 0.0 then Error "health_interval_s must be > 0"
  else if c.health_timeout_s <= 0.0 then Error "health_timeout_s must be > 0"
  else if c.ready_timeout_s <= 0.0 then Error "ready_timeout_s must be > 0"
  else
    match Breaker.validate c.breaker with
    | Error e -> Error ("breaker: " ^ e)
    | Ok () -> (
        match Backoff.validate c.backoff with
        | Error e -> Error ("backoff: " ^ e)
        | Ok () -> Ok ())

type slot_state = Starting | Up | Down | Draining

let slot_state_to_string = function
  | Starting -> "starting"
  | Up -> "up"
  | Down -> "down"
  | Draining -> "draining"

type slot = {
  index : int;
  mutable proc : Replica.t option;
  mutable state : slot_state;
  mutable generation : int;
  mutable restarts : int;
  mutable next_restart_at : float;
  mutable restarting : bool;  (* a launcher call for this slot is in flight *)
  mutable started_at : float;  (* of the current generation's launch *)
  mutable in_flight : int;
  breaker : Breaker.t;
  backoff : Backoff.t;
}

type t = {
  cfg : config;
  now : unit -> float;
  sleep : float -> unit;
  mutable launcher : index:int -> (Replica.t, string) result;
  ring : Router.t;
  slots : slot array;
  mutex : Mutex.t;
  cond : Condition.t;  (* in_flight decrements and drain progress *)
  metrics : Metrics.t;
  mutable draining : bool;
  mutable heartbeat : Thread.t option;
  mutable heartbeat_stop : bool;
}

type replica_status = {
  rs_index : int;
  rs_state : string;
  rs_pid : int option;
  rs_restarts : int;
  rs_breaker : Breaker.state;
  rs_in_flight : int;
  rs_generation : int;
}

let metrics t = t.metrics

let draining t =
  Mutex.lock t.mutex;
  let d = t.draining in
  Mutex.unlock t.mutex;
  d

(* ---------- locked helpers ---------- *)

let update_slot_gauges_locked t slot ~now =
  let g fmt = Printf.sprintf fmt slot.index in
  Metrics.set_gauge t.metrics
    (g "fleet_replica_%d_up")
    (if slot.state = Up then 1.0 else 0.0);
  Metrics.set_gauge t.metrics
    (g "fleet_replica_%d_breaker_state")
    (Breaker.state_to_float (Breaker.state slot.breaker ~now));
  Metrics.set_gauge t.metrics
    (g "fleet_replica_%d_in_flight")
    (float_of_int slot.in_flight);
  Metrics.set_gauge t.metrics
    (g "fleet_replica_%d_restarts")
    (float_of_int slot.restarts)

let update_gauges_locked t =
  let now = t.now () in
  Array.iter (fun s -> update_slot_gauges_locked t s ~now) t.slots

let schedule_restart_locked t slot =
  slot.state <- Down;
  slot.next_restart_at <- t.now () +. Backoff.next slot.backoff

(* Stop the slot's process (if any) and put it on the restart
   schedule. SIGKILL cannot be caught or ignored (it even stops
   SIGSTOPped children), and reaping after it is immediate, so doing
   this under the lock is fine. *)
let take_down_locked t slot =
  (match slot.proc with
  | Some p -> p.Replica.kill ()
  | None -> ());
  slot.proc <- None;
  Metrics.incr t.metrics "fleet_replica_down_total";
  schedule_restart_locked t slot;
  update_slot_gauges_locked t slot ~now:(t.now ())

let install_launch_locked t slot result ~relaunch =
  slot.restarting <- false;
  (match result with
  | Ok proc ->
      (match slot.proc with
      | Some old -> old.Replica.kill ()
      | None -> ());
      slot.proc <- Some proc;
      slot.generation <- slot.generation + 1;
      slot.state <- Starting;
      slot.started_at <- t.now ();
      if relaunch then begin
        slot.restarts <- slot.restarts + 1;
        Metrics.incr t.metrics "fleet_restarts_total"
      end
  | Error _ ->
      Metrics.incr t.metrics "fleet_launch_failures_total";
      schedule_restart_locked t slot);
  update_slot_gauges_locked t slot ~now:(t.now ())

(* ---------- create ---------- *)

let create ?(config = default_config) ?now ?sleep ~launcher () =
  (* A replica dying mid-write (the chaos harness's bread and butter)
     must produce EPIPE, not a process-killing SIGPIPE. *)
  Replica.ignore_sigpipe ();
  match validate config with
  | Error e -> Error ("Supervisor.create: " ^ e)
  | Ok () ->
      let now = match now with Some f -> f | None -> Unix.gettimeofday in
      let sleep = match sleep with Some f -> f | None -> Thread.delay in
      let mk_slot index =
        {
          index;
          proc = None;
          state = Down;
          generation = 0;
          restarts = 0;
          next_restart_at = neg_infinity;
          restarting = false;
          started_at = neg_infinity;
          in_flight = 0;
          breaker = Breaker.create ~config:config.breaker ();
          backoff = Backoff.create ~seed:(config.seed + index) config.backoff;
        }
      in
      let t =
        {
          cfg = config;
          now;
          sleep;
          launcher;
          ring = Router.create ~vnodes:config.vnodes ~replicas:config.replicas ();
          slots = Array.init config.replicas mk_slot;
          mutex = Mutex.create ();
          cond = Condition.create ();
          metrics = Metrics.create ();
          draining = false;
          heartbeat = None;
          heartbeat_stop = false;
        }
      in
      Array.iter
        (fun slot ->
          let result = t.launcher ~index:slot.index in
          Mutex.lock t.mutex;
          install_launch_locked t slot result ~relaunch:false;
          Mutex.unlock t.mutex)
        t.slots;
      Ok t

(* ---------- health / supervision pass ---------- *)

let ping_id = "fleet-hc"

let probe_healthy t (proc : Replica.t) =
  proc.Replica.alive ()
  &&
  match
    proc.Replica.call
      (Protocol.Ping { id = ping_id })
      ~timeout_s:t.cfg.health_timeout_s
  with
  | Ok (Protocol.Pong _) -> true
  | Ok _ | Error _ -> false

let tick t =
  (* Phase 1 (locked): decide what to do. *)
  Mutex.lock t.mutex;
  if t.draining then Mutex.unlock t.mutex
  else begin
    let now = t.now () in
    let relaunch = ref [] in
    let probe = ref [] in
    Array.iter
      (fun slot ->
        match slot.state with
        | Down when (not slot.restarting) && now >= slot.next_restart_at ->
            slot.restarting <- true;
            relaunch := slot :: !relaunch
        | (Starting | Up) when slot.proc <> None -> (
            match slot.proc with
            | Some proc -> probe := (slot, proc, slot.generation) :: !probe
            | None -> ())
        | _ -> ())
      t.slots;
    Mutex.unlock t.mutex;
    (* Phase 2 (unlocked): launch and probe. *)
    List.iter
      (fun slot ->
        let result = t.launcher ~index:slot.index in
        Mutex.lock t.mutex;
        install_launch_locked t slot result ~relaunch:true;
        Mutex.unlock t.mutex)
      (List.rev !relaunch);
    List.iter
      (fun (slot, proc, gen) ->
        let healthy = probe_healthy t proc in
        Mutex.lock t.mutex;
        if slot.generation = gen && slot.state <> Draining then begin
          let now = t.now () in
          if healthy then begin
            Breaker.record_success slot.breaker ~now;
            if slot.state = Starting then begin
              slot.state <- Up;
              Backoff.reset slot.backoff;
              Metrics.incr t.metrics "fleet_replica_ready_total"
            end
          end
          else begin
            Metrics.incr t.metrics "fleet_health_failures_total";
            if not (proc.Replica.alive ()) then begin
              Metrics.incr t.metrics "fleet_crashes_detected_total";
              take_down_locked t slot
            end
            else if slot.state = Starting then begin
              (* Not serving yet: give it ready_timeout_s, no breaker
                 food (a loading replica is not misbehaving). *)
              if now -. slot.started_at > t.cfg.ready_timeout_s then begin
                Metrics.incr t.metrics "fleet_ready_timeouts_total";
                take_down_locked t slot
              end
            end
            else begin
              (* Up but failing probes: alive yet stalled or garbling.
                 Feed the breaker; when it opens, recycle the process —
                 a stall is a crash that forgot to exit. *)
              Breaker.record_failure slot.breaker ~now;
              if Breaker.state slot.breaker ~now = Open then begin
                Metrics.incr t.metrics "fleet_stall_recycles_total";
                take_down_locked t slot
              end
            end
          end;
          update_slot_gauges_locked t slot ~now
        end;
        Mutex.unlock t.mutex)
      !probe;
    Mutex.lock t.mutex;
    update_gauges_locked t;
    Mutex.unlock t.mutex
  end

let all_up t =
  Mutex.lock t.mutex;
  let up = Array.for_all (fun s -> s.state = Up) t.slots in
  Mutex.unlock t.mutex;
  up

let await_ready t ~timeout_s =
  let deadline = t.now () +. timeout_s in
  let rec go () =
    tick t;
    if all_up t then true
    else if t.now () >= deadline then false
    else begin
      t.sleep (Float.min t.cfg.health_interval_s 0.05);
      go ()
    end
  in
  go ()

let start_heartbeat t =
  Mutex.lock t.mutex;
  let need = t.heartbeat = None && not t.draining in
  if need then begin
    (* Reset the stop flag so start after stop spawns a live loop, not
       a thread that observes a stale [true] and exits immediately. *)
    t.heartbeat_stop <- false;
    t.heartbeat <-
      Some
        (Thread.create
           (fun () ->
             while not t.heartbeat_stop do
               tick t;
               t.sleep t.cfg.health_interval_s
             done)
           ())
  end;
  Mutex.unlock t.mutex

(* ---------- request path ---------- *)

(* Reserve the first routable replica in ring-preference order for
   [key], skipping [exclude]. Bumps in_flight so drain/reload wait for
   us; the caller must hand the reservation to [finish_attempt]. *)
let pick t ~key ~exclude =
  Mutex.lock t.mutex;
  let now = t.now () in
  let chosen =
    if t.draining then None
    else
      List.find_map
        (fun r ->
          if List.mem r exclude then None
          else
            let slot = t.slots.(r) in
            match (slot.state, slot.proc) with
            | Up, Some proc when Breaker.allow slot.breaker ~now ->
                slot.in_flight <- slot.in_flight + 1;
                Some (slot, proc, slot.generation)
            | _ -> None)
        (Router.preference t.ring key)
  in
  Mutex.unlock t.mutex;
  chosen

(* Release the reservation and account the outcome. Any decoded
   response is breaker success (the replica answered — an error *reply*
   is the replica working); transport errors are breaker failures, and
   a dead process is taken down immediately rather than waiting for
   the next heartbeat. *)
let finish_attempt t (slot, (proc : Replica.t), gen) outcome =
  Mutex.lock t.mutex;
  slot.in_flight <- slot.in_flight - 1;
  Condition.broadcast t.cond;
  let now = t.now () in
  (if slot.generation = gen && slot.state <> Draining then
     match outcome with
     | Ok _ -> Breaker.record_success slot.breaker ~now
     | Error _ ->
         Metrics.incr t.metrics "fleet_transport_errors_total";
         Breaker.record_failure slot.breaker ~now;
         if not (proc.Replica.alive ()) then begin
           Metrics.incr t.metrics "fleet_crashes_detected_total";
           take_down_locked t slot
         end);
  update_slot_gauges_locked t slot ~now;
  Mutex.unlock t.mutex

let attempt t reservation req =
  let _, (proc : Replica.t), _ = reservation in
  let outcome =
    proc.Replica.call req ~timeout_s:t.cfg.request_timeout_s
  in
  finish_attempt t reservation outcome;
  outcome

let route_optimize t req ~id ~key =
  let started = t.now () in
  let fail code message = Protocol.Error_reply { e_id = id; code; message } in
  let ok resp =
    Metrics.observe t.metrics "fleet_latency_seconds" (t.now () -. started);
    (match resp with
    | Protocol.Ok_reply _ -> Metrics.incr t.metrics "fleet_replies_ok_total"
    | _ -> Metrics.incr t.metrics "fleet_replies_other_total");
    resp
  in
  Metrics.incr t.metrics "fleet_requests_total";
  match pick t ~key ~exclude:[] with
  | None ->
      Metrics.incr t.metrics "fleet_unavailable_total";
      fail Protocol.Unavailable
        "no healthy replica (fleet down, restarting, or shedding)"
  | Some ((slot1, _, _) as res1) -> (
      match attempt t res1 req with
      | Ok resp -> ok resp
      | Error e1 -> (
          let e1s = Replica.error_to_string e1 in
          if not t.cfg.hedge then begin
            Metrics.incr t.metrics "fleet_upstream_failures_total";
            fail Protocol.Upstream_failure e1s
          end
          else begin
            Metrics.incr t.metrics "fleet_hedges_total";
            match pick t ~key ~exclude:[ slot1.index ] with
            | None ->
                Metrics.incr t.metrics "fleet_upstream_failures_total";
                fail Protocol.Upstream_failure
                  (Printf.sprintf "replica %d failed (%s); no hedge target"
                     slot1.index e1s)
            | Some res2 -> (
                match attempt t res2 req with
                | Ok resp ->
                    Metrics.incr t.metrics "fleet_hedge_rescues_total";
                    ok resp
                | Error e2 ->
                    Metrics.incr t.metrics "fleet_upstream_failures_total";
                    fail Protocol.Upstream_failure
                      (Printf.sprintf
                         "replica %d failed (%s); hedge on replica %d failed \
                          (%s)"
                         slot1.index e1s
                         (let s, _, _ = res2 in
                          s.index)
                         (Replica.error_to_string e2)))
          end))

(* ---------- introspection ---------- *)

let status t =
  Mutex.lock t.mutex;
  let now = t.now () in
  let st =
    Array.map
      (fun s ->
        {
          rs_index = s.index;
          rs_state = slot_state_to_string s.state;
          rs_pid =
            (match s.proc with Some p -> p.Replica.pid | None -> None);
          rs_restarts = s.restarts;
          rs_breaker = Breaker.state s.breaker ~now;
          rs_in_flight = s.in_flight;
          rs_generation = s.generation;
        })
      t.slots
  in
  Mutex.unlock t.mutex;
  st

let status_body t =
  let st = status t in
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "fleet replicas=%d draining=%b\n" t.cfg.replicas
       (draining t));
  Array.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf
           "replica=%d state=%s pid=%s restarts=%d breaker=%s in_flight=%d \
            generation=%d\n"
           r.rs_index r.rs_state
           (match r.rs_pid with Some p -> string_of_int p | None -> "-")
           r.rs_restarts
           (Breaker.state_to_string r.rs_breaker)
           r.rs_in_flight r.rs_generation))
    st;
  Buffer.add_string b (Metrics.stats_line t.metrics);
  Buffer.contents b

let scrape_replicas t =
  let procs = ref [] in
  Mutex.lock t.mutex;
  Array.iter
    (fun s ->
      match (s.state, s.proc) with
      | Up, Some p -> procs := p :: !procs
      | _ -> ())
    t.slots;
  Mutex.unlock t.mutex;
  List.filter_map
    (fun (p : Replica.t) ->
      match
        p.Replica.call
          (Protocol.Metrics { id = "fleet-scrape" })
          ~timeout_s:t.cfg.health_timeout_s
      with
      | Ok (Protocol.Metrics_reply { body; _ }) -> Some body
      | Ok _ | Error _ -> None)
    (List.rev !procs)

let render_metrics t =
  Mutex.lock t.mutex;
  update_gauges_locked t;
  Mutex.unlock t.mutex;
  Metrics.merge_rendered (Metrics.render t.metrics :: scrape_replicas t)

(* ---------- front door ---------- *)

let call t req =
  let id = Protocol.request_id req in
  if draining t then
    Protocol.Error_reply
      {
        e_id = id;
        code = Protocol.Shutting_down;
        message = "fleet is draining";
      }
  else
    match req with
    | Protocol.Ping _ -> Protocol.Pong { p_id = id }
    | Protocol.Stats _ ->
        Protocol.Stats_reply { s_id = id; body = status_body t }
    | Protocol.Metrics _ ->
        Protocol.Metrics_reply { m_id = id; body = render_metrics t }
    | Protocol.Optimize { target; _ } ->
        route_optimize t req ~id ~key:(Engine.target_digest target)

(* ---------- drain / reload ---------- *)

let stop_heartbeat t =
  Mutex.lock t.mutex;
  t.heartbeat_stop <- true;
  let hb = t.heartbeat in
  t.heartbeat <- None;
  Mutex.unlock t.mutex;
  match hb with Some th -> Thread.join th | None -> ()

let drain t =
  Mutex.lock t.mutex;
  if t.draining then Mutex.unlock t.mutex
  else begin
    t.draining <- true;
    Array.iter (fun s -> s.state <- Draining) t.slots;
    while Array.exists (fun s -> s.in_flight > 0) t.slots do
      Condition.wait t.cond t.mutex
    done;
    let procs =
      Array.to_list t.slots
      |> List.filter_map (fun s ->
             let p = s.proc in
             s.proc <- None;
             s.state <- Down;
             p)
    in
    update_gauges_locked t;
    Mutex.unlock t.mutex;
    List.iter (fun (p : Replica.t) -> p.Replica.kill ()) procs;
    stop_heartbeat t
  end

let reload ?launcher t =
  (match launcher with
  | Some l ->
      Mutex.lock t.mutex;
      t.launcher <- l;
      Mutex.unlock t.mutex
  | None -> ());
  let errors = ref [] in
  Array.iter
    (fun slot ->
      Mutex.lock t.mutex;
      if t.draining then begin
        Mutex.unlock t.mutex;
        errors := Printf.sprintf "replica %d: fleet draining" slot.index :: !errors
      end
      else begin
        (* 1. Fence: pick skips non-Up slots, so no new request lands
           here from now on. *)
        slot.state <- Draining;
        (* 2. Event-driven wait for the accepted in-flight requests —
           this is what "reload never drops an accepted request"
           means. *)
        while slot.in_flight > 0 do
          Condition.wait t.cond t.mutex
        done;
        let old = slot.proc in
        slot.proc <- None;
        Mutex.unlock t.mutex;
        (match old with Some p -> p.Replica.kill () | None -> ());
        (* 3. Launch the replacement. *)
        let result = t.launcher ~index:slot.index in
        Mutex.lock t.mutex;
        (match result with
        | Error e ->
            errors :=
              Printf.sprintf "replica %d: relaunch failed: %s" slot.index e
              :: !errors;
            Metrics.incr t.metrics "fleet_launch_failures_total";
            slot.restarting <- false;
            schedule_restart_locked t slot
        | Ok _ -> install_launch_locked t slot result ~relaunch:true);
        let gen = slot.generation in
        Mutex.unlock t.mutex;
        (* 4. Wait until it serves (or put it on the restart path). *)
        match result with
        | Error _ -> ()
        | Ok proc ->
            let deadline = t.now () +. t.cfg.ready_timeout_s in
            let rec wait_ready () =
              if probe_healthy t proc then begin
                Mutex.lock t.mutex;
                if slot.generation = gen && slot.state = Starting then begin
                  slot.state <- Up;
                  Backoff.reset slot.backoff;
                  update_slot_gauges_locked t slot ~now:(t.now ())
                end;
                Mutex.unlock t.mutex;
                true
              end
              else if t.now () >= deadline then false
              else begin
                t.sleep (Float.min t.cfg.health_interval_s 0.05);
                wait_ready ()
              end
            in
            if not (wait_ready ()) then begin
              Mutex.lock t.mutex;
              if slot.generation = gen then begin
                Metrics.incr t.metrics "fleet_ready_timeouts_total";
                take_down_locked t slot
              end;
              Mutex.unlock t.mutex;
              errors :=
                Printf.sprintf "replica %d: not ready after reload" slot.index
                :: !errors
            end
      end)
    t.slots;
  Metrics.incr t.metrics "fleet_reloads_total";
  match !errors with
  | [] -> Ok ()
  | es -> Error (String.concat "; " (List.rev es))

(* ---------- chaos hooks ---------- *)

let replica_pid t i =
  Mutex.lock t.mutex;
  let pid =
    match t.slots.(i).proc with Some p -> p.Replica.pid | None -> None
  in
  Mutex.unlock t.mutex;
  pid

let kill_replica t i =
  Mutex.lock t.mutex;
  let proc = t.slots.(i).proc in
  Mutex.unlock t.mutex;
  (* Kill without bookkeeping: the supervisor must *discover* this. *)
  match proc with Some p -> p.Replica.kill () | None -> ()

let replica_call t i req ~timeout_s =
  Mutex.lock t.mutex;
  let proc = t.slots.(i).proc in
  Mutex.unlock t.mutex;
  match proc with
  | Some p -> p.Replica.call req ~timeout_s
  | None -> Error (Replica.Connection "slot has no process")
