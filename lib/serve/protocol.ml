let version = 1

let tag = "mrs" ^ string_of_int version

type target = Spec of string | Ir of string

type request =
  | Optimize of { id : string; target : target; deadline_ms : int option }
  | Stats of { id : string }
  | Metrics of { id : string }
  | Ping of { id : string }

type error_code =
  | Parse_error
  | Invalid_request
  | Unsupported
  | Overloaded
  | Deadline_exceeded
  | Env_failure
  | Shutting_down
  | Unavailable
  | Upstream_failure

type reply = {
  r_id : string;
  schedule : string;
  speedup : float;
  policy_digest : string;
}

type response =
  | Ok_reply of reply
  | Error_reply of { e_id : string; code : error_code; message : string }
  | Stats_reply of { s_id : string; body : string }
  | Metrics_reply of { m_id : string; body : string }
  | Pong of { p_id : string }

let request_id = function
  | Optimize { id; _ } | Stats { id } | Metrics { id } | Ping { id } -> id

let response_id = function
  | Ok_reply { r_id; _ } -> r_id
  | Error_reply { e_id; _ } -> e_id
  | Stats_reply { s_id; _ } -> s_id
  | Metrics_reply { m_id; _ } -> m_id
  | Pong { p_id } -> p_id

let error_code_to_string = function
  | Parse_error -> "parse_error"
  | Invalid_request -> "invalid_request"
  | Unsupported -> "unsupported"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline_exceeded"
  | Env_failure -> "env_failure"
  | Shutting_down -> "shutting_down"
  | Unavailable -> "unavailable"
  | Upstream_failure -> "upstream_failure"

let error_code_of_string = function
  | "parse_error" -> Some Parse_error
  | "invalid_request" -> Some Invalid_request
  | "unsupported" -> Some Unsupported
  | "overloaded" -> Some Overloaded
  | "deadline_exceeded" -> Some Deadline_exceeded
  | "env_failure" -> Some Env_failure
  | "shutting_down" -> Some Shutting_down
  | "unavailable" -> Some Unavailable
  | "upstream_failure" -> Some Upstream_failure
  | _ -> None

(* -- escaping --------------------------------------------------------- *)

let must_escape c = c = '%' || c = ' ' || c = '\t' || c = '\r' || c = '\n'

let escape s =
  if not (String.exists must_escape s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if must_escape c then Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let hex_val c =
  match c with
  | '0' .. '9' -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let unescape s =
  let n = String.length s in
  let buf = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents buf)
    else if s.[i] <> '%' then begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
    else if i + 2 >= n then Error "truncated % escape"
    else
      match (hex_val s.[i + 1], hex_val s.[i + 2]) with
      | Some hi, Some lo ->
          Buffer.add_char buf (Char.chr ((hi * 16) + lo));
          go (i + 3)
      | _ -> Error (Printf.sprintf "bad %% escape %%%c%c" s.[i + 1] s.[i + 2])
  in
  go 0

(* -- tokenization ------------------------------------------------------

   Fields never contain raw spaces (escaping removes them), so splitting
   on every single space — keeping empty tokens — is unambiguous and
   preserves fields that escape to the empty string. *)

let tokens line = String.split_on_char ' ' line

let ( let* ) = Result.bind

(* Ids travel escaped like any other string field; an id that unescapes
   to the empty string is rejected so every reply can be correlated. *)
let decode_id raw =
  let* id = unescape raw in
  if String.length id = 0 then Error "empty request id" else Ok id

let decode_deadline = function
  | [] -> Ok None
  | [ d ] -> (
      match int_of_string_opt d with
      | Some ms when ms >= 0 -> Ok (Some ms)
      | Some _ -> Error "negative deadline"
      | None -> Error (Printf.sprintf "bad deadline %S" d))
  | _ -> Error "trailing tokens after deadline"

let encode_deadline = function
  | None -> ""
  | Some ms -> " " ^ string_of_int ms

let encode_request = function
  | Optimize { id; target; deadline_ms } ->
      let kind, payload =
        match target with Spec s -> ("spec", s) | Ir s -> ("ir", s)
      in
      Printf.sprintf "%s %s optimize %s %s%s" tag (escape id) kind
        (escape payload)
        (encode_deadline deadline_ms)
  | Stats { id } -> Printf.sprintf "%s %s stats" tag (escape id)
  | Metrics { id } -> Printf.sprintf "%s %s metrics" tag (escape id)
  | Ping { id } -> Printf.sprintf "%s %s ping" tag (escape id)

let decode_request line =
  match tokens line with
  | t :: _ when t <> tag -> Error (Printf.sprintf "unknown protocol tag %S" t)
  | [] | [ _ ] -> Error "missing request id"
  | _ :: raw_id :: rest -> (
      let* id = decode_id raw_id in
      match rest with
      | "optimize" :: kind :: payload :: rest ->
          let* target =
            match kind with
            | "spec" ->
                let* s = unescape payload in
                Ok (Spec s)
            | "ir" ->
                let* s = unescape payload in
                Ok (Ir s)
            | k -> Error (Printf.sprintf "unknown optimize target kind %S" k)
          in
          let* deadline_ms = decode_deadline rest in
          Ok (Optimize { id; target; deadline_ms })
      | [ "optimize" ] | [ "optimize"; _ ] ->
          Error "optimize needs a target kind and payload"
      | [ "stats" ] -> Ok (Stats { id })
      | [ "metrics" ] -> Ok (Metrics { id })
      | [ "ping" ] -> Ok (Ping { id })
      | verb :: _ -> Error (Printf.sprintf "unknown or malformed verb %S" verb)
      | [] -> Error "missing verb")

(* 17 significant digits round-trip any finite double exactly. *)
let float_to_wire f = Printf.sprintf "%.17g" f

let float_of_wire s =
  match float_of_string_opt s with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "bad float %S" s)

let encode_response = function
  | Ok_reply { r_id; schedule; speedup; policy_digest } ->
      Printf.sprintf "%s %s ok %s %s %s" tag (escape r_id) (escape schedule)
        (float_to_wire speedup) (escape policy_digest)
  | Error_reply { e_id; code; message } ->
      Printf.sprintf "%s %s error %s %s" tag (escape e_id)
        (error_code_to_string code) (escape message)
  | Stats_reply { s_id; body } ->
      Printf.sprintf "%s %s stats %s" tag (escape s_id) (escape body)
  | Metrics_reply { m_id; body } ->
      Printf.sprintf "%s %s metrics %s" tag (escape m_id) (escape body)
  | Pong { p_id } -> Printf.sprintf "%s %s pong" tag (escape p_id)

let decode_response line =
  match tokens line with
  | t :: _ when t <> tag -> Error (Printf.sprintf "unknown protocol tag %S" t)
  | [] | [ _ ] -> Error "missing response id"
  | _ :: raw_id :: rest -> (
      let* id = decode_id raw_id in
      match rest with
      | [ "ok"; sched; speedup; digest ] ->
          let* schedule = unescape sched in
          let* speedup = float_of_wire speedup in
          let* policy_digest = unescape digest in
          Ok (Ok_reply { r_id = id; schedule; speedup; policy_digest })
      | [ "error"; code; message ] -> (
          match error_code_of_string code with
          | Some code ->
              let* message = unescape message in
              Ok (Error_reply { e_id = id; code; message })
          | None -> Error (Printf.sprintf "unknown error code %S" code))
      | [ "stats"; body ] ->
          let* body = unescape body in
          Ok (Stats_reply { s_id = id; body })
      | [ "metrics"; body ] ->
          let* body = unescape body in
          Ok (Metrics_reply { m_id = id; body })
      | [ "pong" ] -> Ok (Pong { p_id = id })
      | verb :: _ -> Error (Printf.sprintf "unknown or malformed verb %S" verb)
      | [] -> Error "missing verb")
