(** Parser for the loop-nest concrete syntax produced by {!Ir_printer}.

    A hand-written lexer and recursive-descent parser; {!parse} is a left
    inverse of {!Ir_printer.to_string} (round-trip property tested in the
    suite). *)

exception Syntax_error of string
(** Raised with a message containing the offending position. *)

val parse : string -> Loop_nest.t
(** Parse one [func] definition. Raises {!Syntax_error} on malformed
    input; the returned nest is validated structurally. *)

val parse_result : string -> (Loop_nest.t, string) result
(** Non-raising variant. *)
