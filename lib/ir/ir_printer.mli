(** Textual concrete syntax for loop nests.

    An MLIR-flavored, round-trippable format (see {!Ir_parser.parse}):

    {v
    func @matmul_4x4x8 {
      buffer A : [4, 8]
      buffer C : [4, 4] init 0.0
      for %0 = 0 to 4 origin 0 {
        parallel %1 = 0 to 4 origin 1 {
          vector %2 = 0 to 8 origin 2 {
            store C[%0, %1] = add(load C[%0, %1],
                                  mul(load A[%0, %2], load B[%2, %1]))
          }
        }
      }
    }
    v} *)

val pp : Format.formatter -> Loop_nest.t -> unit
(** Pretty-print a nest in the concrete syntax above. *)

val to_string : Loop_nest.t -> string
(** [to_string nest] is [Format.asprintf "%a" pp nest]. *)
