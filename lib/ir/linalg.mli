(** Linalg-style structured operations.

    A structured op is a perfectly-nested computation described by an
    iteration domain, per-operand affine indexing maps and a scalar body
    expression — the same abstraction MLIR's [linalg.generic] provides and
    the one the paper's environment optimizes. All five benchmark kinds of
    the paper (matmul, 2-d convolution, max-pooling, elementwise addition
    and ReLU) are expressible, and every transformation of the action
    space is legal on them without further checks (§3 of the paper). *)

type iter_kind = Parallel_iter | Reduction_iter

type binop = Add | Sub | Mul | Div | Max
type unop = Exp | Log | Neg

type scalar_expr =
  | Input of int  (** value loaded from the i-th input at its map *)
  | Output  (** current accumulator value (reductions only) *)
  | Const of float
  | Binop of binop * scalar_expr * scalar_expr
  | Unop of unop * scalar_expr

type operand = {
  name : string;  (** buffer name, unique within the op *)
  shape : int array;  (** array extents, row-major *)
  map : Affine.map;  (** iteration dims -> array subscripts *)
}

type conv_params = {
  batch : int;
  in_h : int;
  in_w : int;
  channels : int;
  kernel_h : int;
  kernel_w : int;
  filters : int;
  stride : int;
}

type pool_params = {
  p_batch : int;
  p_in_h : int;
  p_in_w : int;
  p_channels : int;
  p_kernel : int;
  p_stride : int;
}

type unary_kind = Exp_k | Log_k | Relu_k
type binary_kind = Add_k | Sub_k | Mul_k | Div_k

type kind =
  | Matmul of { m : int; n : int; k : int }
  | Batch_matmul of { bb : int; m : int; n : int; k : int }
  | Conv2d of conv_params
  | Conv2d_nchw of conv_params
  | Depthwise_conv2d of conv_params  (** filters = channel multiplier 1 *)
  | Maxpool of pool_params
  | Avgpool of pool_params
  | Add_op of int array
  | Relu_op of int array
  | Unary_op of unary_kind * int array
  | Binary_op of binary_kind * int array
  | Bias_add of int array  (** bias vector over the last dim *)
  | Generic_op

type t = {
  op_name : string;
  kind : kind;
  domain : int array;  (** iteration-space upper bounds (lb 0, step 1) *)
  iter_kinds : iter_kind array;
  inputs : operand array;
  output : operand;
  body : scalar_expr;  (** value yielded to the output point *)
  init : float option;  (** accumulator initialization, reductions only *)
}

val matmul : ?name:string -> m:int -> n:int -> k:int -> unit -> t
(** C\[m,n\] = sum_k A\[m,k\] * B\[k,n\]. Iteration domain (m, n, k). *)

val batch_matmul : ?name:string -> b:int -> m:int -> n:int -> k:int -> unit -> t
(** C\[b,m,n\] = sum_k A\[b,m,k\] * B\[b,k,n\] — transformer attention
    batches. Iteration domain (b, m, n, k). *)

val conv2d : ?name:string -> conv_params -> t
(** NHWC valid convolution, iteration domain
    (batch, out_h, out_w, filters, kernel_h, kernel_w, channels) — seven
    loops, matching the paper's N = 7. Raises [Invalid_argument] when the
    kernel does not fit the input. *)

val conv2d_nchw : ?name:string -> conv_params -> t
(** The same convolution in NCHW layout: input \[n,c,h,w\], filter
    \[f,c,kh,kw\], output \[n,f,oh,ow\]. Same seven-loop iteration
    domain as {!conv2d}, but every access matrix changes — the layout
    ablation's subject. Not eligible for im2col (the packing helper
    assumes NHWC). *)

val depthwise_conv2d : ?name:string -> conv_params -> t
(** NHWC depthwise convolution: each channel convolved with its own
    kernel ([filters] is ignored — the output has [channels] channels).
    Domain (batch, oh, ow, channels, kh, kw) — six loops. *)

val maxpool : ?name:string -> pool_params -> t
(** NHWC max pooling, domain (batch, out_h, out_w, channels, kh, kw). *)

val avgpool : ?name:string -> pool_params -> t
(** NHWC average pooling: accumulates input scaled by 1/(k*k). *)

val add : ?name:string -> int array -> t
(** Elementwise addition of two arrays of the given shape. *)

val relu : ?name:string -> int array -> t
(** Elementwise [max(x, 0)]. *)

val unary : ?name:string -> unary_kind -> int array -> t
(** Elementwise exp / log / relu of one input. *)

val binary : ?name:string -> binary_kind -> int array -> t
(** Elementwise add / sub / mul / div of two inputs. *)

val bias_add : ?name:string -> int array -> t
(** [x + b] where [b] broadcasts over all but the last dimension — the
    canonical bias of a dense or conv layer. The bias operand's access
    matrix has a single non-zero column, exercising the broadcast case
    of the paper's Figure 2 features. *)

val generic :
  ?name:string ->
  domain:int array ->
  iter_kinds:iter_kind array ->
  inputs:operand list ->
  output:operand ->
  body:scalar_expr ->
  ?init:float ->
  unit ->
  t
(** Raw constructor for tests and extensions; validates like [validate]. *)

val validate : t -> (unit, string) result
(** Structural checks: map arities match the domain, operand ranks match
    their maps, subscripts stay in bounds over the whole domain, [Input]
    indices are valid, reductions have an [init]. *)

val n_loops : t -> int
(** Number of iteration dimensions. *)

val loop_bounds : t -> int array
(** Copy of the iteration-domain upper bounds. *)

val iteration_count : t -> int
(** Product of the domain bounds. *)

val is_conv : t -> bool
(** True for [Conv2d] ops — the only ones im2col applies to. *)

val math_op_counts : t -> int array
(** The six counters of the paper's observation (Table 1), in the order
    add, sub, mul, div, exp, log. *)

val flops_per_point : t -> int
(** Number of arithmetic operations evaluated per iteration-space point
    (max counts as one op). *)

val execute_reference : t -> (string * float array) list -> float array
(** [execute_reference op inputs] runs the op naively over its whole
    domain and returns the flattened output buffer. [inputs] binds every
    input operand name to a buffer of matching size; used as ground truth
    by the transformation tests. Raises [Invalid_argument] on a missing or
    mis-sized buffer. *)

val kind_name : t -> string
(** Short tag: "matmul", "conv2d", "maxpool", "add", "relu", "generic". *)

val digest : t -> string
(** Canonical identity of an op for caching: name, iteration-domain
    extents and iterator kinds. Two ops sharing a name but differing in
    shape get distinct digests. *)

val pp : Format.formatter -> t -> unit
(** Multi-line summary including domain, operands and maps. *)
