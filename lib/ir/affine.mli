(** Affine expressions and maps over loop iterators.

    This mirrors the part of MLIR's affine machinery the paper relies on:
    array subscripts are linear combinations of loop iterators plus a
    constant, and a Linalg operand's indexing map is a list of such
    expressions, one per array dimension. The access-matrix observation of
    the paper (Figure 2) is exactly the coefficient matrix of such a map. *)

type expr = {
  coeffs : int array;  (** one coefficient per loop iterator *)
  const : int;  (** constant term *)
}
(** An affine expression [sum_i coeffs.(i) * iter_i + const] over a fixed
    number of loop iterators. *)

type map = {
  n_dims : int;  (** number of loop iterators the map reads *)
  exprs : expr array;  (** one expression per array dimension *)
}
(** An affine map from loop iterators to array subscripts. *)

val expr : ?const:int -> int -> (int * int) list -> expr
(** [expr ~const n_dims terms] builds an expression over [n_dims]
    iterators from [(dim, coeff)] pairs. Raises [Invalid_argument] if a
    dim index is out of range. *)

val dim : int -> int -> expr
(** [dim n_dims d] is the single-iterator expression [iter_d]. *)

val const_expr : int -> int -> expr
(** [const_expr n_dims c] is the constant expression [c]. *)

val scale : int -> expr -> expr
(** Multiply all coefficients and the constant by a factor. *)

val add_expr : expr -> expr -> expr
(** Pointwise sum of two expressions over the same iterator count. *)

val eval_expr : expr -> int array -> int
(** [eval_expr e iters] evaluates [e] at concrete iterator values. *)

val substitute : expr -> expr array -> expr
(** [substitute e subst] rewrites [e] by replacing iterator [i] with the
    expression [subst.(i)]; all [subst] entries must share one arity,
    which becomes the arity of the result. Used by tiling to re-express
    subscripts over the split loops. *)

val substitute_map : map -> expr array -> map
(** [substitute_map m subst] applies {!substitute} to every result. *)

val map_of_exprs : int -> expr list -> map
(** [map_of_exprs n_dims exprs] checks arities and packs a map. *)

val identity_map : int -> map
(** The map [(d0, ..., dn-1) -> (d0, ..., dn-1)]. *)

val projection_map : int -> int list -> map
(** [projection_map n_dims dims] maps iterators to the selected dims, e.g.
    [projection_map 3 [0; 2]] is [(d0, d1, d2) -> (d0, d2)]. *)

val eval_map : map -> int array -> int array
(** Evaluate every result expression at concrete iterator values. *)

val permute_dims : int array -> map -> map
(** [permute_dims perm m] precomposes [m] with the loop permutation that
    sends position [i] of the new loop order to original iterator
    [perm.(i)]: new expression coefficient for new dim [i] is the old
    coefficient of iterator [perm.(i)]. *)

val rank : map -> int
(** Number of result dimensions. *)

val uses_dim : map -> int -> bool
(** [uses_dim m d] is true when iterator [d] appears with a non-zero
    coefficient in some result expression. *)

val innermost_stride : map -> int array -> int -> int
(** [innermost_stride m shape d] is the flat row-major element stride of
    the access described by [m] into an array of shape [shape] when only
    iterator [d] advances by one. Zero means the access is invariant in
    [d]. *)

val to_matrix : map -> int array array
(** The access matrix of Figure 2: one row per array dimension, columns
    are iterator coefficients followed by the constant, i.e. each row has
    [n_dims + 1] entries. *)

val equal_expr : expr -> expr -> bool
val equal_map : map -> map -> bool

val pp_expr : Format.formatter -> expr -> unit
(** Prints e.g. [d0 + 2*d2 + 3]. *)

val pp_map : Format.formatter -> map -> unit
(** Prints e.g. [(d0, d1, d2) -> (d0, d2 + 1)]. *)
