(** Lowering structured ops to affine loop nests.

    Mirrors MLIR's Linalg-to-Affine lowering used by the paper's feature
    extraction pipeline (Figure 1): the op's iteration domain becomes a
    perfect loop band, indexing maps become load/store subscripts and the
    scalar body becomes a single store statement. *)

val to_loop_nest : Linalg.t -> Loop_nest.t
(** Lower an op to its canonical (untransformed) loop nest. The resulting
    nest validates, all loops are sequential, and running it through the
    interpreter computes exactly {!Linalg.execute_reference}. *)
