(** Lowering structured ops to affine loop nests.

    Mirrors MLIR's Linalg-to-Affine lowering used by the paper's feature
    extraction pipeline (Figure 1): the op's iteration domain becomes a
    perfect loop band, indexing maps become load/store subscripts and the
    scalar body becomes a single store statement. *)

val to_loop_nest : Linalg.t -> Loop_nest.t
(** Lower an op to its canonical (untransformed) loop nest. The resulting
    nest validates, all loops are sequential, and running it through the
    interpreter computes exactly {!Linalg.execute_reference}. *)

val raise_nest : Loop_nest.t -> (Linalg.t, string) result
(** Partial inverse of {!to_loop_nest}: recover a structured (generic)
    op from a canonical nest — the entry point that lets textual-IR
    requests drive the environment (the serving daemon parses incoming
    IR with {!Ir_parser} and raises it here). Accepts exactly the
    canonical shape lowering produces: a validating perfect band of
    sequential loops around a single store whose operands are affine
    loads. Loads of the output buffer at the store's own subscripts
    become the reduction accumulator; iteration dims the store does not
    use become reduction dims (which then require an [init] on the
    output buffer). Distinct (buffer, indexing-map) pairs become
    distinct inputs. Anything else — multiple stores, already-scheduled
    (parallel/vector) loops, inits on input buffers, accumulator loads
    at shifted subscripts — is rejected with a message. The raised op
    satisfies [raise(lower(op)) ≡ op] up to operand numbering, and
    [lower(raise(nest))] reproduces [nest]'s semantics. *)
