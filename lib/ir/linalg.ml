type iter_kind = Parallel_iter | Reduction_iter
type binop = Add | Sub | Mul | Div | Max
type unop = Exp | Log | Neg

type scalar_expr =
  | Input of int
  | Output
  | Const of float
  | Binop of binop * scalar_expr * scalar_expr
  | Unop of unop * scalar_expr

type operand = { name : string; shape : int array; map : Affine.map }

type conv_params = {
  batch : int;
  in_h : int;
  in_w : int;
  channels : int;
  kernel_h : int;
  kernel_w : int;
  filters : int;
  stride : int;
}

type pool_params = {
  p_batch : int;
  p_in_h : int;
  p_in_w : int;
  p_channels : int;
  p_kernel : int;
  p_stride : int;
}

type unary_kind = Exp_k | Log_k | Relu_k
type binary_kind = Add_k | Sub_k | Mul_k | Div_k

type kind =
  | Matmul of { m : int; n : int; k : int }
  | Batch_matmul of { bb : int; m : int; n : int; k : int }
  | Conv2d of conv_params
  | Conv2d_nchw of conv_params
  | Depthwise_conv2d of conv_params
  | Maxpool of pool_params
  | Avgpool of pool_params
  | Add_op of int array
  | Relu_op of int array
  | Unary_op of unary_kind * int array
  | Binary_op of binary_kind * int array
  | Bias_add of int array
  | Generic_op

type t = {
  op_name : string;
  kind : kind;
  domain : int array;
  iter_kinds : iter_kind array;
  inputs : operand array;
  output : operand;
  body : scalar_expr;
  init : float option;
}

let n_loops op = Array.length op.domain
let loop_bounds op = Array.copy op.domain
let iteration_count op = Array.fold_left ( * ) 1 op.domain

let is_conv op = match op.kind with Conv2d _ -> true | _ -> false

let rec body_uses_output = function
  | Output -> true
  | Input _ | Const _ -> false
  | Binop (_, a, b) -> body_uses_output a || body_uses_output b
  | Unop (_, e) -> body_uses_output e

let rec max_input_index = function
  | Input i -> i
  | Output | Const _ -> -1
  | Binop (_, a, b) -> max (max_input_index a) (max_input_index b)
  | Unop (_, e) -> max_input_index e

let validate op =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let n = Array.length op.domain in
  if Array.length op.iter_kinds <> n then
    err "op %s: %d iter kinds for %d loops" op.op_name
      (Array.length op.iter_kinds) n
  else if Array.exists (fun b -> b <= 0) op.domain then
    err "op %s: non-positive loop bound" op.op_name
  else
    let check_operand o =
      if o.map.Affine.n_dims <> n then
        err "operand %s: map over %d dims, expected %d" o.name
          o.map.Affine.n_dims n
      else if Affine.rank o.map <> Array.length o.shape then
        err "operand %s: map rank %d but shape rank %d" o.name
          (Affine.rank o.map)
          (Array.length o.shape)
      else begin
        (* With non-negative coefficients the maximal subscript is reached
           at the far corner of the domain; check bounds there and at 0. *)
        let corner = Array.map (fun b -> b - 1) op.domain in
        let zeros = Array.make n 0 in
        let hi = Affine.eval_map o.map corner in
        let lo = Affine.eval_map o.map zeros in
        let ok = ref (Ok ()) in
        Array.iteri
          (fun d s ->
            if hi.(d) >= s || lo.(d) < 0 then
              ok :=
                err "operand %s: subscript %d out of bounds [0, %d)" o.name
                  hi.(d) s)
          o.shape;
        !ok
      end
    in
    let rec first_err = function
      | [] -> Ok ()
      | o :: rest -> (
          match check_operand o with Ok () -> first_err rest | e -> e)
    in
    match first_err (Array.to_list op.inputs @ [ op.output ]) with
    | Error _ as e -> e
    | Ok () ->
        let max_in = max_input_index op.body in
        if max_in >= Array.length op.inputs then
          err "op %s: body reads input %d of %d" op.op_name max_in
            (Array.length op.inputs)
        else if body_uses_output op.body && op.init = None then
          err "op %s: reduction body without init value" op.op_name
        else Ok ()

let checked op =
  match validate op with Ok () -> op | Error msg -> invalid_arg msg

let matmul ?name ~m ~n ~k () =
  let nd = 3 in
  let name =
    match name with Some s -> s | None -> Printf.sprintf "matmul_%dx%dx%d" m n k
  in
  checked
    {
      op_name = name;
      kind = Matmul { m; n; k };
      domain = [| m; n; k |];
      iter_kinds = [| Parallel_iter; Parallel_iter; Reduction_iter |];
      inputs =
        [|
          { name = "A"; shape = [| m; k |]; map = Affine.projection_map nd [ 0; 2 ] };
          { name = "B"; shape = [| k; n |]; map = Affine.projection_map nd [ 2; 1 ] };
        |];
      output =
        { name = "C"; shape = [| m; n |]; map = Affine.projection_map nd [ 0; 1 ] };
      body = Binop (Add, Output, Binop (Mul, Input 0, Input 1));
      init = Some 0.0;
    }

let batch_matmul ?name ~b ~m ~n ~k () =
  let nd = 4 in
  let name =
    match name with
    | Some s -> s
    | None -> Printf.sprintf "batch_matmul_%dx%dx%dx%d" b m n k
  in
  checked
    {
      op_name = name;
      kind = Batch_matmul { bb = b; m; n; k };
      domain = [| b; m; n; k |];
      iter_kinds =
        [| Parallel_iter; Parallel_iter; Parallel_iter; Reduction_iter |];
      inputs =
        [|
          {
            name = "A";
            shape = [| b; m; k |];
            map = Affine.projection_map nd [ 0; 1; 3 ];
          };
          {
            name = "B";
            shape = [| b; k; n |];
            map = Affine.projection_map nd [ 0; 3; 2 ];
          };
        |];
      output =
        { name = "C"; shape = [| b; m; n |]; map = Affine.projection_map nd [ 0; 1; 2 ] };
      body = Binop (Add, Output, Binop (Mul, Input 0, Input 1));
      init = Some 0.0;
    }

let conv_out_dim ~in_dim ~kernel ~stride =
  if kernel > in_dim then
    invalid_arg "Linalg.conv2d: kernel larger than input";
  ((in_dim - kernel) / stride) + 1

let conv2d ?name (p : conv_params) =
  if p.stride <= 0 then invalid_arg "Linalg.conv2d: stride must be positive";
  let oh = conv_out_dim ~in_dim:p.in_h ~kernel:p.kernel_h ~stride:p.stride in
  let ow = conv_out_dim ~in_dim:p.in_w ~kernel:p.kernel_w ~stride:p.stride in
  let nd = 7 in
  (* Iterators: (n, oh, ow, f, kh, kw, c). *)
  let input_map =
    Affine.map_of_exprs nd
      [
        Affine.dim nd 0;
        Affine.expr nd [ (1, p.stride); (4, 1) ];
        Affine.expr nd [ (2, p.stride); (5, 1) ];
        Affine.dim nd 6;
      ]
  in
  let filter_map = Affine.projection_map nd [ 4; 5; 6; 3 ] in
  let out_map = Affine.projection_map nd [ 0; 1; 2; 3 ] in
  let name =
    match name with
    | Some s -> s
    | None ->
        Printf.sprintf "conv2d_n%d_%dx%dx%d_k%dx%d_f%d_s%d" p.batch p.in_h
          p.in_w p.channels p.kernel_h p.kernel_w p.filters p.stride
  in
  checked
    {
      op_name = name;
      kind = Conv2d p;
      domain = [| p.batch; oh; ow; p.filters; p.kernel_h; p.kernel_w; p.channels |];
      iter_kinds =
        [|
          Parallel_iter; Parallel_iter; Parallel_iter; Parallel_iter;
          Reduction_iter; Reduction_iter; Reduction_iter;
        |];
      inputs =
        [|
          {
            name = "input";
            shape = [| p.batch; p.in_h; p.in_w; p.channels |];
            map = input_map;
          };
          {
            name = "filter";
            shape = [| p.kernel_h; p.kernel_w; p.channels; p.filters |];
            map = filter_map;
          };
        |];
      output =
        { name = "output"; shape = [| p.batch; oh; ow; p.filters |]; map = out_map };
      body = Binop (Add, Output, Binop (Mul, Input 0, Input 1));
      init = Some 0.0;
    }

let conv2d_nchw ?name (p : conv_params) =
  if p.stride <= 0 then invalid_arg "Linalg.conv2d_nchw: stride must be positive";
  let oh = conv_out_dim ~in_dim:p.in_h ~kernel:p.kernel_h ~stride:p.stride in
  let ow = conv_out_dim ~in_dim:p.in_w ~kernel:p.kernel_w ~stride:p.stride in
  let nd = 7 in
  (* Iterators: (n, oh, ow, f, kh, kw, c) — same domain as NHWC. *)
  let input_map =
    Affine.map_of_exprs nd
      [
        Affine.dim nd 0;
        Affine.dim nd 6;
        Affine.expr nd [ (1, p.stride); (4, 1) ];
        Affine.expr nd [ (2, p.stride); (5, 1) ];
      ]
  in
  let filter_map = Affine.projection_map nd [ 3; 6; 4; 5 ] in
  let out_map = Affine.projection_map nd [ 0; 3; 1; 2 ] in
  let name =
    match name with
    | Some s -> s
    | None ->
        Printf.sprintf "conv2d_nchw_n%d_%dx%dx%d_k%dx%d_f%d_s%d" p.batch
          p.in_h p.in_w p.channels p.kernel_h p.kernel_w p.filters p.stride
  in
  checked
    {
      op_name = name;
      kind = Conv2d_nchw p;
      domain = [| p.batch; oh; ow; p.filters; p.kernel_h; p.kernel_w; p.channels |];
      iter_kinds =
        [|
          Parallel_iter; Parallel_iter; Parallel_iter; Parallel_iter;
          Reduction_iter; Reduction_iter; Reduction_iter;
        |];
      inputs =
        [|
          {
            name = "input";
            shape = [| p.batch; p.channels; p.in_h; p.in_w |];
            map = input_map;
          };
          {
            name = "filter";
            shape = [| p.filters; p.channels; p.kernel_h; p.kernel_w |];
            map = filter_map;
          };
        |];
      output =
        { name = "output"; shape = [| p.batch; p.filters; oh; ow |]; map = out_map };
      body = Binop (Add, Output, Binop (Mul, Input 0, Input 1));
      init = Some 0.0;
    }

let depthwise_conv2d ?name (p : conv_params) =
  if p.stride <= 0 then
    invalid_arg "Linalg.depthwise_conv2d: stride must be positive";
  let oh = conv_out_dim ~in_dim:p.in_h ~kernel:p.kernel_h ~stride:p.stride in
  let ow = conv_out_dim ~in_dim:p.in_w ~kernel:p.kernel_w ~stride:p.stride in
  let nd = 6 in
  (* Iterators: (n, oh, ow, c, kh, kw). *)
  let input_map =
    Affine.map_of_exprs nd
      [
        Affine.dim nd 0;
        Affine.expr nd [ (1, p.stride); (4, 1) ];
        Affine.expr nd [ (2, p.stride); (5, 1) ];
        Affine.dim nd 3;
      ]
  in
  let filter_map = Affine.projection_map nd [ 4; 5; 3 ] in
  let out_map = Affine.projection_map nd [ 0; 1; 2; 3 ] in
  let name =
    match name with
    | Some s -> s
    | None ->
        Printf.sprintf "dwconv_n%d_%dx%dx%d_k%dx%d_s%d" p.batch p.in_h p.in_w
          p.channels p.kernel_h p.kernel_w p.stride
  in
  checked
    {
      op_name = name;
      kind = Depthwise_conv2d p;
      domain = [| p.batch; oh; ow; p.channels; p.kernel_h; p.kernel_w |];
      iter_kinds =
        [|
          Parallel_iter; Parallel_iter; Parallel_iter; Parallel_iter;
          Reduction_iter; Reduction_iter;
        |];
      inputs =
        [|
          {
            name = "input";
            shape = [| p.batch; p.in_h; p.in_w; p.channels |];
            map = input_map;
          };
          {
            name = "filter";
            shape = [| p.kernel_h; p.kernel_w; p.channels |];
            map = filter_map;
          };
        |];
      output =
        { name = "output"; shape = [| p.batch; oh; ow; p.channels |]; map = out_map };
      body = Binop (Add, Output, Binop (Mul, Input 0, Input 1));
      init = Some 0.0;
    }

let maxpool ?name (p : pool_params) =
  if p.p_stride <= 0 then invalid_arg "Linalg.maxpool: stride must be positive";
  let oh = conv_out_dim ~in_dim:p.p_in_h ~kernel:p.p_kernel ~stride:p.p_stride in
  let ow = conv_out_dim ~in_dim:p.p_in_w ~kernel:p.p_kernel ~stride:p.p_stride in
  let nd = 6 in
  (* Iterators: (n, oh, ow, c, kh, kw). *)
  let input_map =
    Affine.map_of_exprs nd
      [
        Affine.dim nd 0;
        Affine.expr nd [ (1, p.p_stride); (4, 1) ];
        Affine.expr nd [ (2, p.p_stride); (5, 1) ];
        Affine.dim nd 3;
      ]
  in
  let out_map = Affine.projection_map nd [ 0; 1; 2; 3 ] in
  let name =
    match name with
    | Some s -> s
    | None ->
        Printf.sprintf "maxpool_n%d_%dx%dx%d_k%d_s%d" p.p_batch p.p_in_h
          p.p_in_w p.p_channels p.p_kernel p.p_stride
  in
  checked
    {
      op_name = name;
      kind = Maxpool p;
      domain = [| p.p_batch; oh; ow; p.p_channels; p.p_kernel; p.p_kernel |];
      iter_kinds =
        [|
          Parallel_iter; Parallel_iter; Parallel_iter; Parallel_iter;
          Reduction_iter; Reduction_iter;
        |];
      inputs =
        [|
          {
            name = "input";
            shape = [| p.p_batch; p.p_in_h; p.p_in_w; p.p_channels |];
            map = input_map;
          };
        |];
      output =
        { name = "output"; shape = [| p.p_batch; oh; ow; p.p_channels |]; map = out_map };
      body = Binop (Max, Output, Input 0);
      init = Some neg_infinity;
    }

let avgpool ?name (p : pool_params) =
  if p.p_stride <= 0 then invalid_arg "Linalg.avgpool: stride must be positive";
  let mp = maxpool ?name p in
  let inv_area = 1.0 /. float_of_int (p.p_kernel * p.p_kernel) in
  let name =
    match name with
    | Some s -> s
    | None ->
        Printf.sprintf "avgpool_n%d_%dx%dx%d_k%d_s%d" p.p_batch p.p_in_h
          p.p_in_w p.p_channels p.p_kernel p.p_stride
  in
  checked
    {
      mp with
      op_name = name;
      kind = Avgpool p;
      body = Binop (Add, Output, Binop (Mul, Input 0, Const inv_area));
      init = Some 0.0;
    }

let elementwise ?name ~tag ~kind ~n_inputs ~body shape =
  let nd = Array.length shape in
  if nd = 0 then invalid_arg "Linalg: elementwise op needs rank >= 1";
  let id = Affine.identity_map nd in
  let dims_str =
    String.concat "x" (Array.to_list (Array.map string_of_int shape))
  in
  let name =
    match name with Some s -> s | None -> Printf.sprintf "%s_%s" tag dims_str
  in
  checked
    {
      op_name = name;
      kind;
      domain = Array.copy shape;
      iter_kinds = Array.make nd Parallel_iter;
      inputs =
        Array.init n_inputs (fun i ->
            { name = Printf.sprintf "in%d" i; shape = Array.copy shape; map = id });
      output = { name = "out"; shape = Array.copy shape; map = id };
      body;
      init = None;
    }

let add ?name shape =
  elementwise ?name ~tag:"add" ~kind:(Add_op (Array.copy shape)) ~n_inputs:2
    ~body:(Binop (Add, Input 0, Input 1))
    shape

let relu ?name shape =
  elementwise ?name ~tag:"relu" ~kind:(Relu_op (Array.copy shape)) ~n_inputs:1
    ~body:(Binop (Max, Input 0, Const 0.0))
    shape

let unary ?name k shape =
  let tag, body =
    match k with
    | Exp_k -> ("exp", Unop (Exp, Input 0))
    | Log_k -> ("log", Unop (Log, Input 0))
    | Relu_k -> ("relu", Binop (Max, Input 0, Const 0.0))
  in
  elementwise ?name ~tag ~kind:(Unary_op (k, Array.copy shape)) ~n_inputs:1
    ~body shape

let binary ?name k shape =
  let tag, op =
    match k with
    | Add_k -> ("add2", Add)
    | Sub_k -> ("sub", Sub)
    | Mul_k -> ("mul", Mul)
    | Div_k -> ("div", Div)
  in
  elementwise ?name ~tag ~kind:(Binary_op (k, Array.copy shape)) ~n_inputs:2
    ~body:(Binop (op, Input 0, Input 1))
    shape

let bias_add ?name shape =
  let nd = Array.length shape in
  if nd < 2 then invalid_arg "Linalg.bias_add: rank >= 2 required";
  let id = Affine.identity_map nd in
  let bias_map = Affine.projection_map nd [ nd - 1 ] in
  let dims_str =
    String.concat "x" (Array.to_list (Array.map string_of_int shape))
  in
  let name =
    match name with Some s -> s | None -> Printf.sprintf "bias_add_%s" dims_str
  in
  checked
    {
      op_name = name;
      kind = Bias_add (Array.copy shape);
      domain = Array.copy shape;
      iter_kinds = Array.make nd Parallel_iter;
      inputs =
        [|
          { name = "x"; shape = Array.copy shape; map = id };
          { name = "bias"; shape = [| shape.(nd - 1) |]; map = bias_map };
        |];
      output = { name = "out"; shape = Array.copy shape; map = id };
      body = Binop (Add, Input 0, Input 1);
      init = None;
    }

let generic ?(name = "generic") ~domain ~iter_kinds ~inputs ~output ~body ?init
    () =
  checked
    {
      op_name = name;
      kind = Generic_op;
      domain;
      iter_kinds;
      inputs = Array.of_list inputs;
      output;
      body;
      init;
    }

let math_op_counts op =
  let counts = Array.make 6 0 in
  let rec go = function
    | Input _ | Output | Const _ -> ()
    | Binop (b, a, c) ->
        (match b with
        | Add -> counts.(0) <- counts.(0) + 1
        | Sub -> counts.(1) <- counts.(1) + 1
        | Mul -> counts.(2) <- counts.(2) + 1
        | Div -> counts.(3) <- counts.(3) + 1
        | Max -> () (* max is a comparison, not counted by the paper *));
        go a;
        go c
    | Unop (u, e) ->
        (match u with
        | Exp -> counts.(4) <- counts.(4) + 1
        | Log -> counts.(5) <- counts.(5) + 1
        | Neg -> ());
        go e
  in
  go op.body;
  counts

let flops_per_point op =
  let rec go = function
    | Input _ | Output | Const _ -> 0
    | Binop (_, a, b) -> 1 + go a + go b
    | Unop (_, e) -> 1 + go e
  in
  go op.body

let buffer_size shape = Array.fold_left ( * ) 1 shape

let flat_index shape subscripts =
  let idx = ref 0 in
  for d = 0 to Array.length shape - 1 do
    idx := (!idx * shape.(d)) + subscripts.(d)
  done;
  !idx

let eval_binop b x y =
  match b with
  | Add -> x +. y
  | Sub -> x -. y
  | Mul -> x *. y
  | Div -> x /. y
  | Max -> Float.max x y

let eval_unop u x =
  match u with Exp -> exp x | Log -> log x | Neg -> -.x

let execute_reference op bindings =
  let find_buffer (o : operand) =
    match List.assoc_opt o.name bindings with
    | None -> invalid_arg ("Linalg.execute_reference: missing buffer " ^ o.name)
    | Some buf ->
        if Array.length buf <> buffer_size o.shape then
          invalid_arg
            ("Linalg.execute_reference: wrong size for buffer " ^ o.name);
        buf
  in
  let input_bufs = Array.map find_buffer op.inputs in
  let out_size = buffer_size op.output.shape in
  let out =
    Array.make out_size (match op.init with Some v -> v | None -> 0.0)
  in
  let n = Array.length op.domain in
  let iters = Array.make n 0 in
  let rec eval_body = function
    | Input i ->
        let o = op.inputs.(i) in
        let sub = Affine.eval_map o.map iters in
        input_bufs.(i).(flat_index o.shape sub)
    | Output ->
        let sub = Affine.eval_map op.output.map iters in
        out.(flat_index op.output.shape sub)
    | Const c -> c
    | Binop (b, a, c) -> eval_binop b (eval_body a) (eval_body c)
    | Unop (u, e) -> eval_unop u (eval_body e)
  in
  let rec loop d =
    if d = n then begin
      let v = eval_body op.body in
      let sub = Affine.eval_map op.output.map iters in
      out.(flat_index op.output.shape sub) <- v
    end
    else
      for i = 0 to op.domain.(d) - 1 do
        iters.(d) <- i;
        loop (d + 1)
      done
  in
  loop 0;
  out

let kind_name op =
  match op.kind with
  | Matmul _ -> "matmul"
  | Batch_matmul _ -> "batch_matmul"
  | Conv2d _ -> "conv2d"
  | Conv2d_nchw _ -> "conv2d_nchw"
  | Depthwise_conv2d _ -> "depthwise_conv2d"
  | Maxpool _ -> "maxpool"
  | Avgpool _ -> "avgpool"
  | Add_op _ -> "add"
  | Relu_op _ -> "relu"
  | Unary_op (Exp_k, _) -> "exp"
  | Unary_op (Log_k, _) -> "log"
  | Unary_op (Relu_k, _) -> "relu"
  | Binary_op (Add_k, _) -> "add"
  | Binary_op (Sub_k, _) -> "sub"
  | Binary_op (Mul_k, _) -> "mul"
  | Binary_op (Div_k, _) -> "div"
  | Bias_add _ -> "bias_add"
  | Generic_op -> "generic"

let digest op =
  let dims =
    String.concat "x" (Array.to_list (Array.map string_of_int op.domain))
  in
  let kinds =
    String.concat ""
      (Array.to_list
         (Array.map
            (function Parallel_iter -> "p" | Reduction_iter -> "r")
            op.iter_kinds))
  in
  Printf.sprintf "%s|%s|%s" op.op_name dims kinds

let pp ppf op =
  Format.fprintf ppf "@[<v 2>linalg.%s %s {@," (kind_name op) op.op_name;
  Format.fprintf ppf "domain = [%s]@,"
    (String.concat ", " (Array.to_list (Array.map string_of_int op.domain)));
  Array.iter
    (fun (o : operand) ->
      Format.fprintf ppf "in  %s : [%s] via %a@," o.name
        (String.concat "x" (Array.to_list (Array.map string_of_int o.shape)))
        Affine.pp_map o.map)
    op.inputs;
  let o = op.output in
  Format.fprintf ppf "out %s : [%s] via %a" o.name
    (String.concat "x" (Array.to_list (Array.map string_of_int o.shape)))
    Affine.pp_map o.map;
  Format.fprintf ppf "@]@,}"
