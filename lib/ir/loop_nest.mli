(** Perfectly-nested affine loop programs.

    This is the Affine-dialect analog the environment lowers Linalg ops
    into before applying loop transformations. A nest is an ordered band
    of loops (outermost first, all with lower bound 0 and step 1) around a
    single perfectly-nested body of stores whose subscripts are affine
    expressions over the loop variables. Loops carry an execution kind
    (sequential, parallel, vector) that the performance model interprets
    but the reference interpreter ignores — so a transformed nest can be
    checked for semantic equality against the original by running both. *)

type loop_kind = Seq | Parallel | Vector

type loop = {
  ub : int;  (** trip count: iterates 0, 1, ..., ub-1 *)
  kind : loop_kind;
  origin : int;  (** index of the source op's iteration dim, for features *)
}

type mem_ref = {
  buf : string;
  idx : Affine.expr array;  (** subscripts over the nest's loop variables *)
}

type sexpr =
  | Load of mem_ref
  | Const of float
  | Binop of Linalg.binop * sexpr * sexpr
  | Unop of Linalg.unop * sexpr

type stmt = Store of mem_ref * sexpr

type t = {
  name : string;
  loops : loop array;  (** outermost first *)
  body : stmt list;  (** executed at every point of the loop band *)
  buffers : (string * int array) list;  (** every buffer with its shape *)
  inits : (string * float) list;  (** buffers pre-filled before the nest *)
}

val n_loops : t -> int
val trip_counts : t -> int array

val iteration_count : t -> int
(** Product of all trip counts. *)

val validate : t -> (unit, string) result
(** Checks that subscript expressions have the nest's arity, reference
    declared buffers, match buffer ranks and stay within bounds over the
    whole iteration space (subscript coefficients may be any sign; bounds
    are checked at both domain corners per coefficient sign). *)

val buffer_shape : t -> string -> int array
(** Raises [Not_found] for an undeclared buffer. *)

val refs_of_sexpr : mem_ref list -> sexpr -> mem_ref list
(** [refs_of_sexpr acc e] prepends the load references of [e] to [acc]
    in reverse evaluation order. *)

val loads_of_body : t -> mem_ref list
(** All load references appearing in the body, in evaluation order. *)

val stores_of_body : t -> mem_ref list
(** All store targets, in order. *)

val rename : string -> t -> t

val digest : t -> string
(** 128-bit structural fingerprint (32 hex chars) in O(nest size),
    without printing the nest: loops (trip count, kind, origin), body
    (every constructor tagged, float constants by IEEE bit pattern,
    subscripts coefficient by coefficient), buffer declarations and
    inits. The nest [name] is excluded — nothing downstream of lowering
    reads it, so renamed copies of a nest share memoization entries —
    but buffer names are included because aliasing is semantic. This is
    the key of the evaluator's state-seconds cache and the serving
    daemon's result cache. *)

val map_body_exprs : (Affine.expr -> Affine.expr) -> t -> t
(** Rewrite every subscript expression of every load and store. *)

val equal_semantics_domain : t -> t -> bool
(** Quick structural test: same buffers, same inits, same total iteration
    count — a necessary condition for two nests to be equivalent. *)
