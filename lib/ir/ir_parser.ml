exception Syntax_error of string

type token =
  | Tident of string
  | Tint of int
  | Tfloat of float
  | Tvar of int  (* %3 *)
  | Tat
  | Tlbrace
  | Trbrace
  | Tlbrack
  | Trbrack
  | Tlparen
  | Trparen
  | Tcomma
  | Tequal
  | Tcolon
  | Tstar
  | Tplus
  | Tminus
  | Teof

let token_to_string = function
  | Tident s -> Printf.sprintf "identifier %S" s
  | Tint n -> Printf.sprintf "integer %d" n
  | Tfloat f -> Printf.sprintf "float %g" f
  | Tvar v -> Printf.sprintf "%%%d" v
  | Tat -> "'@'"
  | Tlbrace -> "'{'"
  | Trbrace -> "'}'"
  | Tlbrack -> "'['"
  | Trbrack -> "']'"
  | Tlparen -> "'('"
  | Trparen -> "')'"
  | Tcomma -> "','"
  | Tequal -> "'='"
  | Tcolon -> "':'"
  | Tstar -> "'*'"
  | Tplus -> "'+'"
  | Tminus -> "'-'"
  | Teof -> "end of input"

(* ------------------------------------------------------------------ *)
(* Lexer                                                              *)
(* ------------------------------------------------------------------ *)

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9') || c = '.'

let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let line = ref 1 in
  let fail msg = raise (Syntax_error (Printf.sprintf "line %d: %s" !line msg)) in
  let pos = ref 0 in
  let peek_char i = if i < n then Some src.[i] else None in
  while !pos < n do
    let c = src.[!pos] in
    if c = '\n' then begin
      incr line;
      incr pos
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr pos
    else if is_digit c then begin
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do incr pos done;
      let is_float = ref false in
      if !pos < n && src.[!pos] = '.' then begin
        is_float := true;
        incr pos;
        while !pos < n && is_digit src.[!pos] do incr pos done
      end;
      if !pos < n && (src.[!pos] = 'e' || src.[!pos] = 'E') then begin
        is_float := true;
        incr pos;
        if !pos < n && (src.[!pos] = '+' || src.[!pos] = '-') then incr pos;
        while !pos < n && is_digit src.[!pos] do incr pos done
      end;
      let text = String.sub src start (!pos - start) in
      if !is_float then tokens := Tfloat (float_of_string text) :: !tokens
      else tokens := Tint (int_of_string text) :: !tokens
    end
    else if is_ident_start c then begin
      let start = !pos in
      while !pos < n && is_ident_char src.[!pos] do incr pos done;
      tokens := Tident (String.sub src start (!pos - start)) :: !tokens
    end
    else if c = '%' then begin
      incr pos;
      let start = !pos in
      while !pos < n && is_digit src.[!pos] do incr pos done;
      if !pos = start then fail "expected loop variable index after '%'";
      tokens := Tvar (int_of_string (String.sub src start (!pos - start))) :: !tokens
    end
    else begin
      (match c with
      | '@' -> tokens := Tat :: !tokens
      | '{' -> tokens := Tlbrace :: !tokens
      | '}' -> tokens := Trbrace :: !tokens
      | '[' -> tokens := Tlbrack :: !tokens
      | ']' -> tokens := Trbrack :: !tokens
      | '(' -> tokens := Tlparen :: !tokens
      | ')' -> tokens := Trparen :: !tokens
      | ',' -> tokens := Tcomma :: !tokens
      | '=' -> tokens := Tequal :: !tokens
      | ':' -> tokens := Tcolon :: !tokens
      | '*' -> tokens := Tstar :: !tokens
      | '+' -> tokens := Tplus :: !tokens
      | '-' -> tokens := Tminus :: !tokens
      | _ ->
          ignore (peek_char !pos);
          fail (Printf.sprintf "unexpected character %C" c));
      incr pos
    end
  done;
  List.rev (Teof :: !tokens)

(* ------------------------------------------------------------------ *)
(* Parser state                                                       *)
(* ------------------------------------------------------------------ *)

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> Teof | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let t = next st in
  if t <> tok then
    raise
      (Syntax_error
         (Printf.sprintf "expected %s, found %s" (token_to_string tok)
            (token_to_string t)))

let expect_ident st =
  match next st with
  | Tident s -> s
  | t ->
      raise
        (Syntax_error
           (Printf.sprintf "expected identifier, found %s" (token_to_string t)))

let expect_int st =
  match next st with
  | Tint n -> n
  | t ->
      raise
        (Syntax_error
           (Printf.sprintf "expected integer, found %s" (token_to_string t)))

let expect_keyword st kw =
  let s = expect_ident st in
  if s <> kw then
    raise (Syntax_error (Printf.sprintf "expected keyword %S, found %S" kw s))

(* Floats appear for init values and constants; accept "inf" spellings
   and a leading minus sign. *)
let expect_float st =
  let negated, t =
    match next st with Tminus -> (true, next st) | t -> (false, t)
  in
  let v =
    match t with
    | Tfloat f -> f
    | Tint n -> float_of_int n
    | Tident ("inf" | "infinity") -> infinity
    | Tident "nan" -> nan
    | t ->
        raise
          (Syntax_error
             (Printf.sprintf "expected float, found %s" (token_to_string t)))
  in
  if negated then -.v else v

(* ------------------------------------------------------------------ *)
(* Grammar                                                            *)
(* ------------------------------------------------------------------ *)

let parse_shape st =
  expect st Tlbrack;
  let dims = ref [] in
  let rec go () =
    dims := expect_int st :: !dims;
    match peek st with
    | Tcomma ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  expect st Trbrack;
  Array.of_list (List.rev !dims)

(* term := INT | INT '*' VAR | VAR ; expr := ['-'] term (('+'|'-') term)* *)
let parse_affine_expr st ~n_dims =
  let coeffs = Array.make n_dims 0 in
  let const = ref 0 in
  let add_var v c =
    if v >= n_dims then
      raise (Syntax_error (Printf.sprintf "loop variable %%%d out of range" v));
    coeffs.(v) <- coeffs.(v) + c
  in
  let rec parse_term sign =
    match next st with
    | Tminus -> parse_term (-sign)
    | Tint n -> (
        match peek st with
        | Tstar ->
            advance st;
            (match next st with
            | Tvar v -> add_var v (sign * n)
            | t ->
                raise
                  (Syntax_error
                     (Printf.sprintf "expected loop variable after '*', found %s"
                        (token_to_string t))))
        | _ -> const := !const + (sign * n))
    | Tvar v -> add_var v sign
    | t ->
        raise
          (Syntax_error
             (Printf.sprintf "expected affine term, found %s" (token_to_string t)))
  in
  let first_sign = match peek st with
    | Tminus -> advance st; -1
    | _ -> 1
  in
  parse_term first_sign;
  let rec go () =
    match peek st with
    | Tplus ->
        advance st;
        parse_term 1;
        go ()
    | Tminus ->
        advance st;
        parse_term (-1);
        go ()
    | _ -> ()
  in
  go ();
  { Affine.coeffs; const = !const }

let parse_mem_ref st ~n_dims ~buf =
  expect st Tlbrack;
  let idx = ref [] in
  let rec go () =
    idx := parse_affine_expr st ~n_dims :: !idx;
    match peek st with
    | Tcomma ->
        advance st;
        go ()
    | _ -> ()
  in
  go ();
  expect st Trbrack;
  { Loop_nest.buf; idx = Array.of_list (List.rev !idx) }

let binop_of_name = function
  | "add" -> Some Linalg.Add
  | "sub" -> Some Linalg.Sub
  | "mul" -> Some Linalg.Mul
  | "div" -> Some Linalg.Div
  | "max" -> Some Linalg.Max
  | _ -> None

let unop_of_name = function
  | "exp" -> Some Linalg.Exp
  | "log" -> Some Linalg.Log
  | "neg" -> Some Linalg.Neg
  | _ -> None

let rec parse_sexpr st ~n_dims : Loop_nest.sexpr =
  match peek st with
  | Tint _ | Tfloat _ | Tminus -> Loop_nest.Const (expect_float st)
  | Tident "load" ->
      advance st;
      let buf = expect_ident st in
      Loop_nest.Load (parse_mem_ref st ~n_dims ~buf)
  | Tident name -> (
      advance st;
      match binop_of_name name with
      | Some b ->
          expect st Tlparen;
          let x = parse_sexpr st ~n_dims in
          expect st Tcomma;
          let y = parse_sexpr st ~n_dims in
          expect st Trparen;
          Loop_nest.Binop (b, x, y)
      | None -> (
          match unop_of_name name with
          | Some u ->
              expect st Tlparen;
              let x = parse_sexpr st ~n_dims in
              expect st Trparen;
              Loop_nest.Unop (u, x)
          | None ->
              raise
                (Syntax_error (Printf.sprintf "unknown operation %S" name))))
  | t ->
      raise
        (Syntax_error
           (Printf.sprintf "expected expression, found %s" (token_to_string t)))

(* The loop header count is unknown until we meet "store"; collect loops
   first, then parse the body with full arity. That requires affine
   expressions inside the body only — loop headers contain plain ints —
   so a two-phase parse is unnecessary: we track loop headers as we
   descend and parse stores when we reach them. But store subscripts need
   the final arity; we therefore pre-scan for it. *)
let count_loops toks =
  let rec go depth maxd = function
    | Tident ("for" | "parallel" | "vector") :: rest ->
        go (depth + 1) (max maxd (depth + 1)) rest
    | _ :: rest -> go depth maxd rest
    | [] -> maxd
  in
  go 0 0 toks

let parse_loop_kind = function
  | "for" -> Some Loop_nest.Seq
  | "parallel" -> Some Loop_nest.Parallel
  | "vector" -> Some Loop_nest.Vector
  | _ -> None

let parse_func st =
  expect_keyword st "func";
  expect st Tat;
  let name = expect_ident st in
  expect st Tlbrace;
  let n_dims = count_loops st.toks in
  let buffers = ref [] in
  let inits = ref [] in
  let rec parse_buffers () =
    match peek st with
    | Tident "buffer" ->
        advance st;
        let bname = expect_ident st in
        expect st Tcolon;
        let shape = parse_shape st in
        (match peek st with
        | Tident "init" ->
            advance st;
            inits := (bname, expect_float st) :: !inits
        | _ -> ());
        buffers := (bname, shape) :: !buffers;
        parse_buffers ()
    | _ -> ()
  in
  parse_buffers ();
  let loops = ref [] in
  let body = ref [] in
  let rec parse_nest depth =
    match peek st with
    | Tident kw when parse_loop_kind kw <> None ->
        advance st;
        let kind = Option.get (parse_loop_kind kw) in
        (match next st with
        | Tvar v when v = depth -> ()
        | Tvar v ->
            raise
              (Syntax_error
                 (Printf.sprintf "loop variable %%%d at depth %d" v depth))
        | t ->
            raise
              (Syntax_error
                 (Printf.sprintf "expected loop variable, found %s"
                    (token_to_string t))));
        expect st Tequal;
        let lb = expect_int st in
        if lb <> 0 then raise (Syntax_error "loop lower bound must be 0");
        expect_keyword st "to";
        let ub = expect_int st in
        expect_keyword st "origin";
        let origin = expect_int st in
        expect st Tlbrace;
        loops := { Loop_nest.ub; kind; origin } :: !loops;
        parse_nest (depth + 1);
        expect st Trbrace
    | _ ->
        let rec parse_stores () =
          match peek st with
          | Tident "store" ->
              advance st;
              let buf = expect_ident st in
              let r = parse_mem_ref st ~n_dims ~buf in
              expect st Tequal;
              let e = parse_sexpr st ~n_dims in
              body := Loop_nest.Store (r, e) :: !body;
              parse_stores ()
          | _ -> ()
        in
        parse_stores ()
  in
  parse_nest 0;
  expect st Trbrace;
  let nest =
    {
      Loop_nest.name;
      loops = Array.of_list (List.rev !loops);
      body = List.rev !body;
      buffers = List.rev !buffers;
      inits = List.rev !inits;
    }
  in
  match Loop_nest.validate nest with
  | Ok () -> nest
  | Error msg -> raise (Syntax_error ("invalid nest: " ^ msg))

let parse src =
  let st = { toks = tokenize src } in
  let nest = parse_func st in
  (match peek st with
  | Teof -> ()
  | t ->
      raise
        (Syntax_error
           (Printf.sprintf "trailing input: %s" (token_to_string t))));
  nest

let parse_result src =
  match parse src with
  | nest -> Ok nest
  | exception Syntax_error msg -> Error msg
