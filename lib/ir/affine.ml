type expr = { coeffs : int array; const : int }
type map = { n_dims : int; exprs : expr array }

let expr ?(const = 0) n_dims terms =
  let coeffs = Array.make n_dims 0 in
  List.iter
    (fun (d, c) ->
      if d < 0 || d >= n_dims then invalid_arg "Affine.expr: dim out of range";
      coeffs.(d) <- coeffs.(d) + c)
    terms;
  { coeffs; const }

let dim n_dims d = expr n_dims [ (d, 1) ]
let const_expr n_dims c = expr ~const:c n_dims []

let scale k e =
  { coeffs = Array.map (fun c -> k * c) e.coeffs; const = k * e.const }

let add_expr a b =
  if Array.length a.coeffs <> Array.length b.coeffs then
    invalid_arg "Affine.add_expr: arity mismatch";
  {
    coeffs = Array.mapi (fun i c -> c + b.coeffs.(i)) a.coeffs;
    const = a.const + b.const;
  }

let eval_expr e iters =
  let acc = ref e.const in
  Array.iteri
    (fun i c -> if c <> 0 then acc := !acc + (c * iters.(i)))
    e.coeffs;
  !acc

let substitute e subst =
  if Array.length subst <> Array.length e.coeffs then
    invalid_arg "Affine.substitute: arity mismatch";
  let new_n_dims =
    if Array.length subst = 0 then 0 else Array.length subst.(0).coeffs
  in
  let acc = ref { coeffs = Array.make new_n_dims 0; const = e.const } in
  Array.iteri
    (fun i c -> if c <> 0 then acc := add_expr !acc (scale c subst.(i)))
    e.coeffs;
  !acc

let map_of_exprs n_dims exprs =
  List.iter
    (fun e ->
      if Array.length e.coeffs <> n_dims then
        invalid_arg "Affine.map_of_exprs: arity mismatch")
    exprs;
  { n_dims; exprs = Array.of_list exprs }

let identity_map n_dims =
  { n_dims; exprs = Array.init n_dims (fun d -> dim n_dims d) }

let projection_map n_dims dims =
  map_of_exprs n_dims (List.map (fun d -> dim n_dims d) dims)

let eval_map m iters = Array.map (fun e -> eval_expr e iters) m.exprs

let substitute_map m subst =
  let exprs = Array.map (fun e -> substitute e subst) m.exprs in
  let n_dims =
    if Array.length subst = 0 then m.n_dims
    else Array.length subst.(0).coeffs
  in
  { n_dims; exprs }

let permute_dims perm m =
  if Array.length perm <> m.n_dims then
    invalid_arg "Affine.permute_dims: permutation arity mismatch";
  let permute_expr e =
    { e with coeffs = Array.init m.n_dims (fun i -> e.coeffs.(perm.(i))) }
  in
  { m with exprs = Array.map permute_expr m.exprs }

let rank m = Array.length m.exprs

let uses_dim m d =
  Array.exists (fun e -> e.coeffs.(d) <> 0) m.exprs

let innermost_stride m shape d =
  if Array.length shape <> rank m then
    invalid_arg "Affine.innermost_stride: shape rank mismatch";
  (* Row-major strides of the target array. *)
  let n = Array.length shape in
  let strides = Array.make n 1 in
  for i = n - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * shape.(i + 1)
  done;
  let total = ref 0 in
  Array.iteri
    (fun i e -> total := !total + (e.coeffs.(d) * strides.(i)))
    m.exprs;
  !total

let to_matrix m =
  Array.map
    (fun e ->
      Array.init (m.n_dims + 1) (fun j ->
          if j < m.n_dims then e.coeffs.(j) else e.const))
    m.exprs

let equal_expr a b = a.coeffs = b.coeffs && a.const = b.const

let equal_map a b =
  a.n_dims = b.n_dims
  && Array.length a.exprs = Array.length b.exprs
  && Array.for_all2 equal_expr a.exprs b.exprs

let pp_expr ppf e =
  let printed = ref false in
  Array.iteri
    (fun i c ->
      if c <> 0 then begin
        if !printed then Format.fprintf ppf " + ";
        if c = 1 then Format.fprintf ppf "d%d" i
        else Format.fprintf ppf "%d*d%d" c i;
        printed := true
      end)
    e.coeffs;
  if e.const <> 0 || not !printed then begin
    if !printed then Format.fprintf ppf " + ";
    Format.fprintf ppf "%d" e.const
  end

let pp_map ppf m =
  Format.fprintf ppf "(";
  for d = 0 to m.n_dims - 1 do
    if d > 0 then Format.fprintf ppf ", ";
    Format.fprintf ppf "d%d" d
  done;
  Format.fprintf ppf ") -> (";
  Array.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf ", ";
      pp_expr ppf e)
    m.exprs;
  Format.fprintf ppf ")"
