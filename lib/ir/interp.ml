type access = { acc_buf : string; acc_index : int; acc_is_store : bool }

let flat_index shape subscripts =
  let idx = ref 0 in
  for d = 0 to Array.length shape - 1 do
    let s = subscripts.(d) in
    if s < 0 || s >= shape.(d) then invalid_arg "Interp: subscript out of bounds";
    idx := (!idx * shape.(d)) + s
  done;
  !idx

let buffer_size shape = Array.fold_left ( * ) 1 shape

let run ?on_access (nest : Loop_nest.t) ~inputs =
  (match Loop_nest.validate nest with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Interp.run: " ^ msg));
  let buffers = Hashtbl.create 8 in
  List.iter
    (fun (name, shape) ->
      let size = buffer_size shape in
      let data =
        match List.assoc_opt name inputs with
        | Some buf ->
            if Array.length buf <> size then
              invalid_arg ("Interp.run: wrong size for buffer " ^ name);
            Array.copy buf
        | None ->
            let init =
              match List.assoc_opt name nest.inits with
              | Some v -> v
              | None -> 0.0
            in
            Array.make size init
      in
      (* An input buffer that also has an init (reduction output passed as
         input) keeps the provided contents; inits only apply to buffers
         the interpreter allocates itself. *)
      Hashtbl.replace buffers name (shape, data))
    nest.buffers;
  let notify buf index is_store =
    match on_access with
    | None -> ()
    | Some f -> f { acc_buf = buf; acc_index = index; acc_is_store = is_store }
  in
  let n = Loop_nest.n_loops nest in
  let iters = Array.make n 0 in
  let resolve (r : Loop_nest.mem_ref) =
    let shape, data = Hashtbl.find buffers r.buf in
    let subscripts = Array.map (fun e -> Affine.eval_expr e iters) r.idx in
    (data, flat_index shape subscripts)
  in
  let rec eval (e : Loop_nest.sexpr) =
    match e with
    | Loop_nest.Load r ->
        let data, idx = resolve r in
        notify r.buf idx false;
        data.(idx)
    | Loop_nest.Const c -> c
    | Loop_nest.Binop (b, x, y) ->
        let vx = eval x in
        let vy = eval y in
        (match b with
        | Linalg.Add -> vx +. vy
        | Linalg.Sub -> vx -. vy
        | Linalg.Mul -> vx *. vy
        | Linalg.Div -> vx /. vy
        | Linalg.Max -> Float.max vx vy)
    | Loop_nest.Unop (u, x) -> (
        let v = eval x in
        match u with
        | Linalg.Exp -> exp v
        | Linalg.Log -> log v
        | Linalg.Neg -> -.v)
  in
  let exec_body () =
    List.iter
      (fun (Loop_nest.Store (r, e)) ->
        let v = eval e in
        let data, idx = resolve r in
        notify r.buf idx true;
        data.(idx) <- v)
      nest.body
  in
  let rec loop d =
    if d = n then exec_body ()
    else
      for i = 0 to nest.loops.(d).Loop_nest.ub - 1 do
        iters.(d) <- i;
        loop (d + 1)
      done
  in
  loop 0;
  List.map
    (fun (name, _) ->
      let _, data = Hashtbl.find buffers name in
      (name, data))
    nest.buffers

let output_of (nest : Loop_nest.t) bindings =
  match List.rev (Loop_nest.stores_of_body nest) with
  | [] -> invalid_arg "Interp.output_of: nest has no store"
  | r :: _ -> (
      match List.assoc_opt r.Loop_nest.buf bindings with
      | Some buf -> buf
      | None -> invalid_arg "Interp.output_of: output buffer missing")
