let to_loop_nest (op : Linalg.t) : Loop_nest.t =
  let ref_of_operand (o : Linalg.operand) : Loop_nest.mem_ref =
    { buf = o.name; idx = Array.copy o.map.Affine.exprs }
  in
  let out_ref = ref_of_operand op.output in
  let rec lower_expr (e : Linalg.scalar_expr) : Loop_nest.sexpr =
    match e with
    | Linalg.Input i -> Loop_nest.Load (ref_of_operand op.inputs.(i))
    | Linalg.Output -> Loop_nest.Load out_ref
    | Linalg.Const c -> Loop_nest.Const c
    | Linalg.Binop (b, x, y) -> Loop_nest.Binop (b, lower_expr x, lower_expr y)
    | Linalg.Unop (u, x) -> Loop_nest.Unop (u, lower_expr x)
  in
  let buffers =
    Array.to_list
      (Array.map (fun (o : Linalg.operand) -> (o.name, Array.copy o.shape)) op.inputs)
    @ [ (op.output.name, Array.copy op.output.shape) ]
  in
  let inits =
    match op.init with
    | Some v -> [ (op.output.name, v) ]
    | None -> []
  in
  {
    Loop_nest.name = op.op_name;
    loops =
      Array.mapi
        (fun i ub -> { Loop_nest.ub; kind = Loop_nest.Seq; origin = i })
        op.domain;
    body = [ Loop_nest.Store (out_ref, lower_expr op.body) ];
    buffers;
    inits;
  }

(* -- raising: canonical nest -> generic op ---------------------------

   The inverse direction exists for one consumer: optimization requests
   that arrive as textual IR. The request pipeline is
   parse -> validate -> raise -> (Sched_state.init re-lowers), so only
   the canonical shape [to_loop_nest] emits needs to be recognized; a
   nest that already carries schedule artifacts (parallel/vector loops,
   imperfect bodies) is a request error, not a raising bug. *)

exception Raise_error of string

let raise_fail fmt = Printf.ksprintf (fun s -> raise (Raise_error s)) fmt

let raise_nest (nest : Loop_nest.t) : (Linalg.t, string) result =
  try
    (match Loop_nest.validate nest with
    | Ok () -> ()
    | Error e -> raise_fail "nest does not validate: %s" e);
    let n = Loop_nest.n_loops nest in
    if n = 0 then raise_fail "nest has no loops";
    Array.iteri
      (fun i (l : Loop_nest.loop) ->
        if l.kind <> Loop_nest.Seq then
          raise_fail
            "loop %d is not sequential: only canonical (unscheduled) nests \
             can be raised"
            i)
      nest.loops;
    let out_ref, body_expr =
      match nest.body with
      | [ Loop_nest.Store (r, e) ] -> (r, e)
      | [] -> raise_fail "nest has an empty body"
      | _ -> raise_fail "nest has more than one store statement"
    in
    let shape_of buf =
      match List.assoc_opt buf nest.buffers with
      | Some s -> Array.copy s
      | None -> raise_fail "undeclared buffer %s" buf
    in
    let map_of idx = Affine.map_of_exprs n (Array.to_list idx) in
    let out_map = map_of out_ref.Loop_nest.idx in
    (* Inputs are deduplicated by (buffer, indexing map): the same
       buffer read through two different maps is two operands, exactly
       as [to_loop_nest] would have printed two distinct loads. *)
    let inputs = ref [] in
    let n_inputs = ref 0 in
    let input_index buf idx =
      let map = map_of idx in
      let rec find = function
        | [] ->
            let i = !n_inputs in
            incr n_inputs;
            inputs := !inputs @ [ (buf, map, i) ];
            i
        | (b, m, i) :: rest ->
            if String.equal b buf && Affine.equal_map m map then i
            else find rest
      in
      find !inputs
    in
    let uses_output = ref false in
    let rec raise_expr (e : Loop_nest.sexpr) : Linalg.scalar_expr =
      match e with
      | Loop_nest.Const c -> Linalg.Const c
      | Loop_nest.Binop (b, x, y) ->
          (* Forced left-to-right so operand numbering follows load
             appearance order (OCaml evaluates arguments right-to-left). *)
          let x = raise_expr x in
          let y = raise_expr y in
          Linalg.Binop (b, x, y)
      | Loop_nest.Unop (u, x) -> Linalg.Unop (u, raise_expr x)
      | Loop_nest.Load { buf; idx } ->
          if String.equal buf out_ref.Loop_nest.buf then
            if
              Array.length idx = Array.length out_ref.Loop_nest.idx
              && Array.for_all2 Affine.equal_expr idx out_ref.Loop_nest.idx
            then begin
              uses_output := true;
              Linalg.Output
            end
            else
              raise_fail
                "load of the output buffer %s at a subscript different from \
                 the store's (stencil-style accumulators cannot be raised)"
                buf
          else Linalg.Input (input_index buf idx)
    in
    let body = raise_expr body_expr in
    let domain = Loop_nest.trip_counts nest in
    let iter_kinds =
      Array.init n (fun d ->
          if Affine.uses_dim out_map d then Linalg.Parallel_iter
          else Linalg.Reduction_iter)
    in
    let has_reduction =
      !uses_output
      || Array.exists (fun k -> k = Linalg.Reduction_iter) iter_kinds
    in
    List.iter
      (fun (buf, _) ->
        if not (String.equal buf out_ref.Loop_nest.buf) then
          raise_fail
            "input buffer %s carries an init, which a structured op cannot \
             express"
            buf)
      nest.inits;
    let init = List.assoc_opt out_ref.Loop_nest.buf nest.inits in
    if has_reduction && init = None then
      raise_fail
        "nest reduces into %s but declares no init for it"
        out_ref.Loop_nest.buf;
    let operands =
      List.map
        (fun (buf, map, _) -> { Linalg.name = buf; shape = shape_of buf; map })
        !inputs
    in
    let output =
      {
        Linalg.name = out_ref.Loop_nest.buf;
        shape = shape_of out_ref.Loop_nest.buf;
        map = out_map;
      }
    in
    let op =
      match init with
      | Some v when has_reduction ->
          Linalg.generic ~name:nest.Loop_nest.name ~domain ~iter_kinds
            ~inputs:operands ~output ~body ~init:v ()
      | _ ->
          (* An init on a pure elementwise op is redundant (every output
             point is overwritten), so it is dropped rather than refused. *)
          Linalg.generic ~name:nest.Loop_nest.name ~domain ~iter_kinds
            ~inputs:operands ~output ~body ()
    in
    Ok op
  with
  | Raise_error msg -> Error msg
  | Invalid_argument msg | Failure msg -> Error msg
