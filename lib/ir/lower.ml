let to_loop_nest (op : Linalg.t) : Loop_nest.t =
  let ref_of_operand (o : Linalg.operand) : Loop_nest.mem_ref =
    { buf = o.name; idx = Array.copy o.map.Affine.exprs }
  in
  let out_ref = ref_of_operand op.output in
  let rec lower_expr (e : Linalg.scalar_expr) : Loop_nest.sexpr =
    match e with
    | Linalg.Input i -> Loop_nest.Load (ref_of_operand op.inputs.(i))
    | Linalg.Output -> Loop_nest.Load out_ref
    | Linalg.Const c -> Loop_nest.Const c
    | Linalg.Binop (b, x, y) -> Loop_nest.Binop (b, lower_expr x, lower_expr y)
    | Linalg.Unop (u, x) -> Loop_nest.Unop (u, lower_expr x)
  in
  let buffers =
    Array.to_list
      (Array.map (fun (o : Linalg.operand) -> (o.name, Array.copy o.shape)) op.inputs)
    @ [ (op.output.name, Array.copy op.output.shape) ]
  in
  let inits =
    match op.init with
    | Some v -> [ (op.output.name, v) ]
    | None -> []
  in
  {
    Loop_nest.name = op.op_name;
    loops =
      Array.mapi
        (fun i ub -> { Loop_nest.ub; kind = Loop_nest.Seq; origin = i })
        op.domain;
    body = [ Loop_nest.Store (out_ref, lower_expr op.body) ];
    buffers;
    inits;
  }
