(** Reference interpreter for loop nests.

    Executes a nest sequentially over concrete float buffers, ignoring
    loop kinds (parallel and vector loops run as ordinary loops, which is
    semantics-preserving for the ops this project handles). Used as
    ground truth by the transformation test-suite and to drive the
    trace-based cache simulator. *)

type access = { acc_buf : string; acc_index : int; acc_is_store : bool }
(** One memory access: buffer name, flat row-major element index, and
    whether it is a store. *)

val run :
  ?on_access:(access -> unit) ->
  Loop_nest.t ->
  inputs:(string * float array) list ->
  (string * float array) list
(** [run nest ~inputs] allocates any buffer not provided in [inputs]
    (applying the nest's [inits], zero otherwise), executes the nest and
    returns every buffer binding. [on_access] is invoked for each load and
    store in evaluation order. Raises [Invalid_argument] on missing or
    mis-sized input buffers or an invalid nest. *)

val output_of : Loop_nest.t -> (string * float array) list -> float array
(** Convenience: extract the buffer that the nest's last store writes to.
    Raises [Invalid_argument] if the nest has no store. *)
