let pp_float ppf f =
  (* Shortest representation that round-trips through float_of_string. *)
  if Float.is_integer f && Float.abs f < 1e16 then
    Format.fprintf ppf "%.1f" f
  else Format.fprintf ppf "%.17g" f

let pp_affine_expr ppf (e : Affine.expr) =
  let printed = ref false in
  Array.iteri
    (fun i c ->
      if c <> 0 then begin
        if !printed then Format.fprintf ppf " + ";
        if c = 1 then Format.fprintf ppf "%%%d" i
        else Format.fprintf ppf "%d*%%%d" c i;
        printed := true
      end)
    e.Affine.coeffs;
  if e.Affine.const <> 0 || not !printed then begin
    if !printed then Format.fprintf ppf " + ";
    Format.fprintf ppf "%d" e.Affine.const
  end

let pp_mem_ref ppf (r : Loop_nest.mem_ref) =
  Format.fprintf ppf "%s[" r.buf;
  Array.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf ", ";
      pp_affine_expr ppf e)
    r.idx;
  Format.fprintf ppf "]"

let binop_name = function
  | Linalg.Add -> "add"
  | Linalg.Sub -> "sub"
  | Linalg.Mul -> "mul"
  | Linalg.Div -> "div"
  | Linalg.Max -> "max"

let unop_name = function
  | Linalg.Exp -> "exp"
  | Linalg.Log -> "log"
  | Linalg.Neg -> "neg"

let rec pp_sexpr ppf (e : Loop_nest.sexpr) =
  match e with
  | Loop_nest.Load r -> Format.fprintf ppf "load %a" pp_mem_ref r
  | Loop_nest.Const c -> pp_float ppf c
  | Loop_nest.Binop (b, x, y) ->
      Format.fprintf ppf "%s(@[%a,@ %a@])" (binop_name b) pp_sexpr x pp_sexpr y
  | Loop_nest.Unop (u, x) ->
      Format.fprintf ppf "%s(@[%a@])" (unop_name u) pp_sexpr x

let loop_keyword = function
  | Loop_nest.Seq -> "for"
  | Loop_nest.Parallel -> "parallel"
  | Loop_nest.Vector -> "vector"

let pp_shape ppf shape =
  Format.fprintf ppf "[";
  Array.iteri
    (fun i d ->
      if i > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%d" d)
    shape;
  Format.fprintf ppf "]"

let pp ppf (nest : Loop_nest.t) =
  let indent d = String.make (2 * (d + 1)) ' ' in
  Format.fprintf ppf "func @@%s {@\n" nest.name;
  List.iter
    (fun (name, shape) ->
      Format.fprintf ppf "%sbuffer %s : %a" (indent 0) name pp_shape shape;
      (match List.assoc_opt name nest.inits with
      | Some v -> Format.fprintf ppf " init %a" pp_float v
      | None -> ());
      Format.fprintf ppf "@\n")
    nest.buffers;
  let rec pp_loops d =
    if d = Array.length nest.loops then
      List.iter
        (fun (Loop_nest.Store (r, e)) ->
          Format.fprintf ppf "%s@[<h>store %a = %a@]@\n" (indent d) pp_mem_ref
            r pp_sexpr e)
        nest.body
    else begin
      let l = nest.loops.(d) in
      Format.fprintf ppf "%s%s %%%d = 0 to %d origin %d {@\n" (indent d)
        (loop_keyword l.Loop_nest.kind)
        d l.Loop_nest.ub l.Loop_nest.origin;
      pp_loops (d + 1);
      Format.fprintf ppf "%s}@\n" (indent d)
    end
  in
  pp_loops 0;
  Format.fprintf ppf "}"

let to_string nest = Format.asprintf "%a" pp nest
