type loop_kind = Seq | Parallel | Vector
type loop = { ub : int; kind : loop_kind; origin : int }
type mem_ref = { buf : string; idx : Affine.expr array }

type sexpr =
  | Load of mem_ref
  | Const of float
  | Binop of Linalg.binop * sexpr * sexpr
  | Unop of Linalg.unop * sexpr

type stmt = Store of mem_ref * sexpr

type t = {
  name : string;
  loops : loop array;
  body : stmt list;
  buffers : (string * int array) list;
  inits : (string * float) list;
}

let n_loops t = Array.length t.loops
let trip_counts t = Array.map (fun l -> l.ub) t.loops
let iteration_count t = Array.fold_left (fun acc l -> acc * l.ub) 1 t.loops

let buffer_shape t name =
  match List.assoc_opt name t.buffers with
  | Some shape -> shape
  | None -> raise Not_found

let rec refs_of_sexpr acc = function
  | Load r -> r :: acc
  | Const _ -> acc
  | Binop (_, a, b) -> refs_of_sexpr (refs_of_sexpr acc a) b
  | Unop (_, e) -> refs_of_sexpr acc e

let loads_of_body t =
  List.concat_map
    (fun (Store (_, e)) -> List.rev (refs_of_sexpr [] e))
    t.body

let stores_of_body t = List.map (fun (Store (r, _)) -> r) t.body

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let n = n_loops t in
  let check_ref (r : mem_ref) =
    match List.assoc_opt r.buf t.buffers with
    | None -> err "nest %s: undeclared buffer %s" t.name r.buf
    | Some shape ->
        if Array.length r.idx <> Array.length shape then
          err "nest %s: buffer %s has rank %d, subscript rank %d" t.name
            r.buf (Array.length shape) (Array.length r.idx)
        else begin
          let result = ref (Ok ()) in
          Array.iteri
            (fun d (e : Affine.expr) ->
              if Array.length e.Affine.coeffs <> n then
                result :=
                  err "nest %s: subscript arity %d, expected %d" t.name
                    (Array.length e.Affine.coeffs)
                    n
              else begin
                (* Max/min over the box domain, per coefficient sign. *)
                let hi = ref e.Affine.const and lo = ref e.Affine.const in
                Array.iteri
                  (fun i c ->
                    let extent = t.loops.(i).ub - 1 in
                    if c > 0 then hi := !hi + (c * extent)
                    else lo := !lo + (c * extent))
                  e.Affine.coeffs;
                if !hi >= shape.(d) || !lo < 0 then
                  result :=
                    err "nest %s: buffer %s dim %d subscript range [%d, %d] out of [0, %d)"
                      t.name r.buf d !lo !hi shape.(d)
              end)
            r.idx;
          !result
        end
  in
  let rec first_err = function
    | [] -> Ok ()
    | r :: rest -> ( match check_ref r with Ok () -> first_err rest | e -> e)
  in
  if Array.exists (fun l -> l.ub <= 0) t.loops then
    err "nest %s: non-positive trip count" t.name
  else
    match first_err (stores_of_body t @ loads_of_body t) with
    | Error _ as e -> e
    | Ok () ->
        let undeclared_init =
          List.find_opt
            (fun (b, _) -> not (List.mem_assoc b t.buffers))
            t.inits
        in
        (match undeclared_init with
        | Some (b, _) -> err "nest %s: init of undeclared buffer %s" t.name b
        | None -> Ok ())

let rename name t = { t with name }

let map_body_exprs f t =
  let map_ref r = { r with idx = Array.map f r.idx } in
  let rec map_sexpr = function
    | Load r -> Load (map_ref r)
    | Const c -> Const c
    | Binop (b, x, y) -> Binop (b, map_sexpr x, map_sexpr y)
    | Unop (u, e) -> Unop (u, map_sexpr e)
  in
  {
    t with
    body = List.map (fun (Store (r, e)) -> Store (map_ref r, map_sexpr e)) t.body;
  }

let equal_semantics_domain a b =
  List.sort compare a.buffers = List.sort compare b.buffers
  && List.sort compare a.inits = List.sort compare b.inits
  && iteration_count a = iteration_count b
