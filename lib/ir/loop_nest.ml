type loop_kind = Seq | Parallel | Vector
type loop = { ub : int; kind : loop_kind; origin : int }
type mem_ref = { buf : string; idx : Affine.expr array }

type sexpr =
  | Load of mem_ref
  | Const of float
  | Binop of Linalg.binop * sexpr * sexpr
  | Unop of Linalg.unop * sexpr

type stmt = Store of mem_ref * sexpr

type t = {
  name : string;
  loops : loop array;
  body : stmt list;
  buffers : (string * int array) list;
  inits : (string * float) list;
}

let n_loops t = Array.length t.loops
let trip_counts t = Array.map (fun l -> l.ub) t.loops
let iteration_count t = Array.fold_left (fun acc l -> acc * l.ub) 1 t.loops

let buffer_shape t name =
  match List.assoc_opt name t.buffers with
  | Some shape -> shape
  | None -> raise Not_found

let rec refs_of_sexpr acc = function
  | Load r -> r :: acc
  | Const _ -> acc
  | Binop (_, a, b) -> refs_of_sexpr (refs_of_sexpr acc a) b
  | Unop (_, e) -> refs_of_sexpr acc e

let loads_of_body t =
  List.concat_map
    (fun (Store (_, e)) -> List.rev (refs_of_sexpr [] e))
    t.body

let stores_of_body t = List.map (fun (Store (r, _)) -> r) t.body

let validate t =
  let err fmt = Format.kasprintf (fun s -> Error s) fmt in
  let n = n_loops t in
  let check_ref (r : mem_ref) =
    match List.assoc_opt r.buf t.buffers with
    | None -> err "nest %s: undeclared buffer %s" t.name r.buf
    | Some shape ->
        if Array.length r.idx <> Array.length shape then
          err "nest %s: buffer %s has rank %d, subscript rank %d" t.name
            r.buf (Array.length shape) (Array.length r.idx)
        else begin
          let result = ref (Ok ()) in
          Array.iteri
            (fun d (e : Affine.expr) ->
              if Array.length e.Affine.coeffs <> n then
                result :=
                  err "nest %s: subscript arity %d, expected %d" t.name
                    (Array.length e.Affine.coeffs)
                    n
              else begin
                (* Max/min over the box domain, per coefficient sign. *)
                let hi = ref e.Affine.const and lo = ref e.Affine.const in
                Array.iteri
                  (fun i c ->
                    let extent = t.loops.(i).ub - 1 in
                    if c > 0 then hi := !hi + (c * extent)
                    else lo := !lo + (c * extent))
                  e.Affine.coeffs;
                if !hi >= shape.(d) || !lo < 0 then
                  result :=
                    err "nest %s: buffer %s dim %d subscript range [%d, %d] out of [0, %d)"
                      t.name r.buf d !lo !hi shape.(d)
              end)
            r.idx;
          !result
        end
  in
  let rec first_err = function
    | [] -> Ok ()
    | r :: rest -> ( match check_ref r with Ok () -> first_err rest | e -> e)
  in
  if Array.exists (fun l -> l.ub <= 0) t.loops then
    err "nest %s: non-positive trip count" t.name
  else
    match first_err (stores_of_body t @ loads_of_body t) with
    | Error _ as e -> e
    | Ok () ->
        let undeclared_init =
          List.find_opt
            (fun (b, _) -> not (List.mem_assoc b t.buffers))
            t.inits
        in
        (match undeclared_init with
        | Some (b, _) -> err "nest %s: init of undeclared buffer %s" t.name b
        | None -> Ok ())

let rename name t = { t with name }

(* --- structural digest ----------------------------------------------

   A 126-bit structural fingerprint in O(nest size), with no
   intermediate string: two independently seeded splitmix-style lanes
   absorb one word per scalar of the structure. Compared to printing
   the nest and MD5-ing the text (the previous scheme in lib/serve)
   this skips the whole pretty-printing allocation storm and hashes
   subscript coefficients as words rather than decimal digits. The
   lanes are native 63-bit ints, not [Int64] — boxed int64 arithmetic
   would cost an allocation per operation and this digest runs once per
   accepted transformation on the search hot path.

   The nest [name] is deliberately excluded — the cost model and the
   policy never read it, so renamed copies of a nest share cache
   entries. Buffer names are included: which references alias is
   semantic. Float constants are hashed by their IEEE bit pattern. Every
   variant constructor and every array feeds a distinguishing tag or
   length word first, so structurally different nests cannot collide by
   concatenation ambiguity. *)

(* splitmix64's finalizer with the multiplicands truncated to odd
   63-bit constants (native-int multiplication wraps mod 2^63 and odd
   multiplicands stay bijective). *)
let dig_mix z =
  let z = (z lxor (z lsr 30)) * 0x2f58476d1ce4e5b9 in
  let z = (z lxor (z lsr 27)) * 0x14d049bb133111eb in
  z lxor (z lsr 31)

type dig = { mutable lane_a : int; mutable lane_b : int }

let dig_create () =
  { lane_a = 0x1e3779b97f4a7c15; lane_b = 0x2545f4914f6cdd1d }

let dig_word d w =
  d.lane_a <- dig_mix ((d.lane_a lxor w) + 0x1e3779b97f4a7c15);
  d.lane_b <- dig_mix ((d.lane_b lxor w) + 0x22b2ae3d27d4eb4f)

let dig_int d (i : int) = dig_word d i

let dig_float d f =
  (* Fold the sign bit (lost by Int64.to_int's 63-bit truncation) back
     into the low bits so e.g. -1.0 and 1.0 stay distinct. *)
  let bits = Int64.bits_of_float f in
  dig_word d
    (Int64.to_int bits lxor Int64.to_int (Int64.shift_right_logical bits 63))

let dig_hex = "0123456789abcdef"

(* Render the two lanes as 32 hex chars without going through Printf
   (the format-string interpreter costs more than the whole hash on
   small nests). *)
let dig_to_hex a b =
  let out = Bytes.create 32 in
  let put off v =
    for i = 0 to 15 do
      Bytes.unsafe_set out (off + i)
        (String.unsafe_get dig_hex ((v lsr (4 * (15 - i))) land 0xf))
    done
  in
  put 0 a;
  put 16 b;
  Bytes.unsafe_to_string out

let dig_string d s =
  let n = String.length s in
  dig_int d n;
  (* 7 bytes per 63-bit word *)
  let i = ref 0 in
  while !i < n do
    let w = ref 0 in
    for j = 0 to 6 do
      let c = if !i + j < n then Char.code (String.unsafe_get s (!i + j)) else 0 in
      w := !w lor (c lsl (8 * j))
    done;
    dig_word d !w;
    i := !i + 7
  done

let digest (t : t) =
  let d = dig_create () in
  let affine (e : Affine.expr) =
    (* Sparse encoding: [arity; nonzero count; (dim, coeff)...; const].
       Post-tiling subscripts have 1-2 nonzero coefficients out of a
       dozen dims, so this absorbs far fewer words than the dense
       array. Still injective: the counts delimit the pair list, and
       equal sparse streams imply equal dense coefficient arrays. *)
    let c = e.Affine.coeffs in
    let nz = ref 0 in
    for j = 0 to Array.length c - 1 do
      if Array.unsafe_get c j <> 0 then incr nz
    done;
    dig_int d (Array.length c);
    dig_int d !nz;
    for j = 0 to Array.length c - 1 do
      let v = Array.unsafe_get c j in
      if v <> 0 then begin
        dig_int d j;
        dig_int d v
      end
    done;
    dig_int d e.Affine.const
  in
  let mem_ref (r : mem_ref) =
    dig_string d r.buf;
    dig_int d (Array.length r.idx);
    Array.iter affine r.idx
  in
  let binop_tag : Linalg.binop -> int = function
    | Linalg.Add -> 0
    | Linalg.Sub -> 1
    | Linalg.Mul -> 2
    | Linalg.Div -> 3
    | Linalg.Max -> 4
  in
  let unop_tag : Linalg.unop -> int = function
    | Linalg.Exp -> 0
    | Linalg.Log -> 1
    | Linalg.Neg -> 2
  in
  let rec sexpr = function
    | Load r ->
        dig_int d 1;
        mem_ref r
    | Const c ->
        dig_int d 2;
        dig_float d c
    | Binop (b, x, y) ->
        dig_int d 3;
        dig_int d (binop_tag b);
        sexpr x;
        sexpr y
    | Unop (u, e) ->
        dig_int d 4;
        dig_int d (unop_tag u);
        sexpr e
  in
  dig_int d (Array.length t.loops);
  Array.iter
    (fun l ->
      dig_int d l.ub;
      dig_int d (match l.kind with Seq -> 0 | Parallel -> 1 | Vector -> 2);
      dig_int d l.origin)
    t.loops;
  dig_int d (List.length t.body);
  List.iter
    (fun (Store (r, e)) ->
      mem_ref r;
      sexpr e)
    t.body;
  dig_int d (List.length t.buffers);
  List.iter
    (fun (b, shape) ->
      dig_string d b;
      dig_int d (Array.length shape);
      Array.iter (dig_int d) shape)
    t.buffers;
  dig_int d (List.length t.inits);
  List.iter
    (fun (b, v) ->
      dig_string d b;
      dig_float d v)
    t.inits;
  dig_to_hex d.lane_a d.lane_b

let map_body_exprs f t =
  let map_ref r = { r with idx = Array.map f r.idx } in
  let rec map_sexpr = function
    | Load r -> Load (map_ref r)
    | Const c -> Const c
    | Binop (b, x, y) -> Binop (b, map_sexpr x, map_sexpr y)
    | Unop (u, e) -> Unop (u, map_sexpr e)
  in
  {
    t with
    body = List.map (fun (Store (r, e)) -> Store (map_ref r, map_sexpr e)) t.body;
  }

let equal_semantics_domain a b =
  List.sort compare a.buffers = List.sort compare b.buffers
  && List.sort compare a.inits = List.sort compare b.inits
  && iteration_count a = iteration_count b
