(* Shared plumbing of the parallel search paths (Auto_scheduler and
   Beam_search): pool lifetime and per-subtask evaluator forks.

   The determinism contract both searches follow:

   - work is decomposed into subtasks whose ENUMERATION is sequential
     and jobs-independent; only evaluation runs on the pool;
   - every subtask evaluates on its own {!Evaluator.fork} whose jitter
     stream is derived from the parent's noise state and the subtask's
     index ({!Util.Rng.derive} — pure, so the stream depends on the
     trie path, never on scheduling or worker count);
   - results merge on the caller's domain in subtask order, replaying
     the sequential bookkeeping exactly;
   - the forks' explored deltas are summed back into the parent.

   With a noiseless evaluator (every search/bench/CLI path) the forked
   streams draw nothing, so any [--jobs N] is byte-identical to
   [--jobs 1]; with noise > 0 all parallel runs are byte-identical to
   each other for any N >= 2 (the candidate-indexed streams replace the
   parent's single sequential stream). *)

(* Run [f] with the caller's pool, or a private work-stealing pool of
   [jobs] workers torn down afterwards. Stealing suits the irregular
   subtrie tasks: one frontier task may enumerate 10x the leaves of
   another, and a worker stuck on it sheds its backlog to idle ones. *)
let with_pool ?pool ~jobs f =
  if jobs < 1 then invalid_arg "Par_eval.with_pool: jobs must be >= 1";
  match pool with
  | Some p -> f p
  | None ->
      let p = Util.Domain_pool.create_stealing ~size:jobs in
      Fun.protect ~finally:(fun () -> Util.Domain_pool.shutdown p) (fun () -> f p)

let noise_base evaluator = Int64.to_int (Evaluator.noise_state evaluator)

(* A worker-local evaluator whose jitter stream is keyed by [stream]
   (the subtask's index in enumeration order) on top of [base] (the
   parent's noise state when the parallel phase began). *)
let derived_fork evaluator ~base ~stream =
  let fork = Evaluator.fork evaluator in
  Evaluator.set_noise_state fork (Util.Rng.state (Util.Rng.derive base ~stream));
  fork
