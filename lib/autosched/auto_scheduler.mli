(** The baseline exhaustive auto-scheduler (paper §5.1.4).

    Enumerates schedules of the shape
    [im2col?; parallelize?; tile; interchange?; vectorize] under the
    paper's constraints — tile sizes at most 64, at least two tiled
    loops — evaluates each with the timing oracle and keeps the best.
    The exploration trace (best speedup after each evaluated schedule)
    feeds the Figure 6 search-efficiency comparison. *)

type config = {
  tile_sizes : int list;
  (** candidate sizes; [\[\]] (the default) derives each loop's options
      from its divisors, capped at 64 per the paper *)
  min_tiled_loops : int;  (** paper: 2 *)
  par_loops_considered : int;
  (** how many leading non-trivial loops are eligible for parallel
      tiling *)
  include_interchange : bool;
  include_im2col : bool;
  max_schedules : int;  (** evaluation budget *)
}

val default_config : config
(** divisor-derived sizes <= 64 (four largest per loop), min 2 tiled
    loops, 3 parallel loops, interchange and im2col on, budget 3000.
    When the space exceeds the budget, {!search} switches from full
    enumeration to seeded random sampling without replacement. *)

type result = {
  best_schedule : Schedule.t;
  best_speedup : float;
  explored : int;  (** schedules actually evaluated *)
  trace : (int * float) array;
  (** (schedules evaluated so far, best speedup so far) — one point per
      evaluation *)
}

val candidates : config -> Linalg.t -> Schedule.t Seq.t
(** The deterministic candidate stream for an op, before the budget
    cap. Exposed for tests. *)

val space_total : config -> Linalg.t -> int
(** The enumeration-size estimate {!search} compares against
    [max_schedules] to pick full enumeration over budgeted sampling: an
    upper bound on the length of {!candidates} (the per-space product
    ignores the min-tiled filter). Exposed so tests and benches can
    pin which branch a given op and budget exercise. *)

val sampling_seed : Linalg.t -> int
(** Seed of the budgeted-sampling RNG, derived from {!Linalg.digest}
    (name, dims, iter kinds) — not just [op_name], so same-named ops
    with different shapes draw decorrelated candidate streams. Exposed
    so the determinism tests can pin the derivation. *)

val default_frontier_depth : int
(** Default trie-split depth of the parallel search (2): subtasks pin
    the parallel combo plus the tile choices of the leading two loops,
    which yields enough subtasks to feed and steal-balance a pool
    without making them trivial. *)

val search :
  ?config:config ->
  ?jobs:int ->
  ?pool:Util.Domain_pool.t ->
  ?frontier_depth:int ->
  Evaluator.t ->
  Linalg.t ->
  result
(** Run the search. Candidates whose application fails are skipped
    without consuming budget. Always explores at least the trivial
    [vectorize] schedule, so [best_speedup] is well-defined.

    When the space fits the budget, the exhaustive enumeration runs as
    a prefix-sharing DFS: each transformation is applied once per
    distinct schedule prefix instead of once per candidate containing
    it, and evaluation goes through the evaluator's state-seconds
    transposition cache. Results (best schedule, speedup, explored,
    trace) are bit-identical to {!search_naive} — the differential
    property suite asserts it.

    [jobs] (default 1; [Invalid_argument] below 1) parallelizes
    evaluation over OCaml domains: the decision trie splits at
    [frontier_depth] into independent subtrie tasks evaluated on a
    work-stealing pool against the evaluator's shared (sharded,
    domain-safe) caches, each task on an {!Evaluator.fork} whose noise
    stream is derived from the subtask's position in the enumeration;
    results merge back in enumeration order. The sampled fallback
    likewise keeps its draws sequential and fans evaluations out in
    chunks. Consequently results are BYTE-IDENTICAL across all [jobs]
    values for noiseless evaluators, and across all [jobs >= 2] when
    [noise > 0]. Pass [pool] to reuse a caller-owned pool (then [jobs]
    only selects the parallel path); otherwise a private pool of
    [jobs] workers is created and torn down around the call. *)

val search_naive : ?config:config -> Evaluator.t -> Linalg.t -> result
(** Reference implementation: re-applies every candidate from scratch
    with {!Sched_state.apply_all} (no prefix sharing). Pair it with an
    evaluator created with [~state_cache_capacity:0] for the fully
    unmemoized baseline the differential tests and the evalcache bench
    compare against. *)

val default_rerank_k : int
(** Exact re-evaluation budget of {!search_staged} (64). *)

val gather_candidates : config -> Linalg.t -> Schedule.t list
(** The budgeted candidate set {!search_staged} ranks: the full
    enumeration when the space fits [max_schedules], otherwise the same
    seeded sampling-without-replacement stream {!search} falls back to
    (collected instead of evaluated). Exposed for tests and data
    collection. *)

val search_staged :
  ?config:config ->
  ?ranker:(Schedule.t array -> float array) ->
  ?rerank_k:int ->
  ?jobs:int ->
  ?pool:Util.Domain_pool.t ->
  Evaluator.t ->
  Linalg.t ->
  result
(** Two-stage search: [ranker] (predicted log-seconds per candidate,
    positionally; lower = faster) scores the whole budgeted candidate
    set in one batched call — no transformation is applied — then only
    the [rerank_k] best-ranked candidates are evaluated exactly. Ties
    rank in enumeration order, so the stage is deterministic. The
    trivial vectorize schedule is always evaluated exactly, and
    [explored]/[trace] count exact evaluations only.

    [jobs]/[pool] follow {!search}'s contract: ranking stays one
    batched call on the calling domain, the [rerank_k] exact
    evaluations fan out over the pool on derived-stream forks and merge
    in rank order — byte-identical to [jobs = 1] for noiseless
    evaluators.

    Without [ranker] this is {!search} — byte-identical results, the
    guaranteed fallback when no surrogate checkpoint is available. *)
