(** The baseline exhaustive auto-scheduler (paper §5.1.4).

    Enumerates schedules of the shape
    [im2col?; parallelize?; tile; interchange?; vectorize] under the
    paper's constraints — tile sizes at most 64, at least two tiled
    loops — evaluates each with the timing oracle and keeps the best.
    The exploration trace (best speedup after each evaluated schedule)
    feeds the Figure 6 search-efficiency comparison. *)

type config = {
  tile_sizes : int list;
  (** candidate sizes; [\[\]] (the default) derives each loop's options
      from its divisors, capped at 64 per the paper *)
  min_tiled_loops : int;  (** paper: 2 *)
  par_loops_considered : int;
  (** how many leading non-trivial loops are eligible for parallel
      tiling *)
  include_interchange : bool;
  include_im2col : bool;
  max_schedules : int;  (** evaluation budget *)
}

val default_config : config
(** divisor-derived sizes <= 64 (four largest per loop), min 2 tiled
    loops, 3 parallel loops, interchange and im2col on, budget 3000.
    When the space exceeds the budget, {!search} switches from full
    enumeration to seeded random sampling without replacement. *)

type result = {
  best_schedule : Schedule.t;
  best_speedup : float;
  explored : int;  (** schedules actually evaluated *)
  trace : (int * float) array;
  (** (schedules evaluated so far, best speedup so far) — one point per
      evaluation *)
}

val candidates : config -> Linalg.t -> Schedule.t Seq.t
(** The deterministic candidate stream for an op, before the budget
    cap. Exposed for tests. *)

val search : ?config:config -> Evaluator.t -> Linalg.t -> result
(** Run the search. Candidates whose application fails are skipped
    without consuming budget. Always explores at least the trivial
    [vectorize] schedule, so [best_speedup] is well-defined. *)
