type config = {
  beam_width : int;
  max_depth : int;
  sizes_per_loop : int;
  max_parallel_combos : int;
  max_tile_size : int;
}

let default_config =
  {
    beam_width = 8;
    max_depth = 7;
    sizes_per_loop = 3;
    max_parallel_combos = 24;
    max_tile_size = 128;
  }

type result = {
  best_schedule : Schedule.t;
  best_speedup : float;
  explored : int;
}

(* Largest [k] divisors of [trip] that are proper and within bounds. *)
let size_options config trip =
  let divisors =
    List.filter
      (fun d -> d > 1 && d < trip && d <= config.max_tile_size)
      (Loop_transforms.divisors trip)
  in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  take config.sizes_per_loop (List.rev divisors)

(* Single transformations applicable to [state]: one- and two-loop
   tilings, bounded parallel combos over leading parallel dims, all
   adjacent swaps, im2col. Vectorization is handled by the driver. *)
let expansions config (state : Sched_state.t) =
  let trips = Sched_state.point_trip_counts state in
  let n = Array.length trips in
  let acc = ref [] in
  let add tr = acc := tr :: !acc in
  (* single-loop tiles *)
  for l = 0 to n - 1 do
    List.iter
      (fun size ->
        let sizes = Array.make n 0 in
        sizes.(l) <- size;
        add (Schedule.Tile sizes))
      (size_options config trips.(l))
  done;
  (* two-loop tiles on adjacent pairs (largest option each) *)
  for l = 0 to n - 2 do
    match (size_options config trips.(l), size_options config trips.(l + 1)) with
    | s1 :: _, s2 :: _ ->
        let sizes = Array.make n 0 in
        sizes.(l) <- s1;
        sizes.(l + 1) <- s2;
        add (Schedule.Tile sizes)
    | _, _ -> ()
  done;
  (* parallelization: combos over the leading parallelizable loops *)
  if Sched_state.can_parallelize state then begin
    let eligible =
      List.filter
        (fun l -> Sched_state.parallelizable_loop state l && trips.(l) > 1)
        (List.init (min n 3) (fun l -> l))
    in
    let combos = ref [] in
    let rec build chosen = function
      | [] -> if chosen <> [] then combos := chosen :: !combos
      | l :: rest ->
          build chosen rest;
          List.iter
            (fun size -> build ((l, size) :: chosen) rest)
            (size_options config trips.(l))
    in
    build [] eligible;
    let combos = List.filteri (fun i _ -> i < config.max_parallel_combos) !combos in
    List.iter
      (fun combo ->
        let sizes = Array.make n 0 in
        List.iter (fun (l, size) -> sizes.(l) <- size) combo;
        add (Schedule.Parallelize sizes))
      combos
  end;
  (* interchange *)
  if Sched_state.can_interchange state then
    for i = 0 to n - 2 do
      add (Schedule.Swap i)
    done;
  if Sched_state.can_im2col state then add Schedule.Im2col;
  List.rev !acc

let default_rerank_k = 32

(* Stage-1 selection at one depth: optional batched surrogate ranking
   of the deduplicated children — ONE network forward over the whole
   depth's aggregated candidate set — then the [rerank_k] best survive.
   Ties keep expansion order, so the stage is deterministic. *)
let select_candidates ?ranker ~rerank_k collected =
  match ranker with
  | None -> collected
  | Some rank ->
      let arr = Array.of_list collected in
      let predictions = rank arr in
      if Array.length predictions <> Array.length arr then
        invalid_arg "Beam_search.search: ranker size mismatch";
      let indexed =
        List.mapi (fun i child -> (predictions.(i), i, child)) collected
      in
      let sorted =
        List.sort
          (fun (a, i, _) (b, j, _) ->
            match compare (a : float) b with 0 -> compare i j | c -> c)
          indexed
      in
      List.filteri (fun i _ -> i < rerank_k) sorted
      |> List.map (fun (_, _, child) -> child)

let search_seq ~config ?ranker ~rerank_k evaluator op =
  let explored = ref 0 in
  (* Expansion is already prefix-shared: each child is one [apply] on
     its parent's state, never an [apply_all] replay. The remaining
     redundancy — distinct action sequences reaching the same nest
     (tile/swap transpositions, revisits across depths) — is absorbed
     by the evaluator's digest-keyed state-seconds cache inside
     [score]. *)
  (* Score = speedup with vectorization appended (virtually). *)
  let score (state : Sched_state.t) =
    incr explored;
    match Sched_state.apply state Schedule.Vectorize with
    | Ok v -> Evaluator.speedup evaluator v
    | Error _ -> Evaluator.speedup evaluator state
  in
  let seen = Hashtbl.create 256 in
  let remember (state : Sched_state.t) =
    let key = Schedule.dedup_key state.Sched_state.applied in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.add seen key ();
      true
    end
  in
  let root = Sched_state.init op in
  let best_speedup = ref (score root) in
  let best_schedule = ref [ Schedule.Vectorize ] in
  let beam = ref [ (root, !best_speedup) ] in
  let depth = ref 0 in
  while !depth < config.max_depth - 1 && !beam <> [] do
    incr depth;
    (* Gather this depth's deduplicated children unscored; what gets the
       exact oracle depends on the mode below. *)
    let collected = ref [] in
    List.iter
      (fun (state, _) ->
        List.iter
          (fun tr ->
            match Sched_state.apply state tr with
            | Error _ -> ()
            | Ok child -> if remember child then collected := child :: !collected)
          (expansions config state))
      !beam;
    let collected = List.rev !collected in
    let candidates = select_candidates ?ranker ~rerank_k collected in
    let children = ref [] in
    List.iter
      (fun child ->
        let s = score child in
        if s > !best_speedup then begin
          best_speedup := s;
          best_schedule := child.Sched_state.applied @ [ Schedule.Vectorize ]
        end;
        children := (child, s) :: !children)
      candidates;
    let sorted = List.sort (fun (_, a) (_, b) -> compare b a) !children in
    beam := List.filteri (fun i _ -> i < config.beam_width) sorted
  done;
  { best_schedule = !best_schedule; best_speedup = !best_speedup; explored = !explored }

(* Domain-parallel beam search, following Par_eval's determinism
   contract. Per depth: expansion (pure [apply] per beam entry) fans
   out and merges in entry x expansion order; dedup and the optional
   batched ranking stay on this domain; exact scoring fans out on
   evaluator forks whose noise streams are indexed by a global
   scored-state counter; the merge replays the sequential beam update
   in candidate order (including its prepend-then-stable-sort tie
   behavior). Byte-identical to [search_seq] for noiseless evaluators,
   for any job count. *)
let search_par ~config ?ranker ~rerank_k ~pool evaluator op =
  let explored = ref 0 in
  let seen = Hashtbl.create 256 in
  let remember (state : Sched_state.t) =
    let key = Schedule.dedup_key state.Sched_state.applied in
    if Hashtbl.mem seen key then false
    else begin
      Hashtbl.add seen key ();
      true
    end
  in
  let root = Sched_state.init op in
  (* The root is scored on the parent evaluator — the same first draw
     the sequential search makes; every later scoring runs on a
     derived-stream fork. *)
  let score_root state =
    incr explored;
    match Sched_state.apply state Schedule.Vectorize with
    | Ok v -> Evaluator.speedup evaluator v
    | Error _ -> Evaluator.speedup evaluator state
  in
  let best_speedup = ref (score_root root) in
  let best_schedule = ref [ Schedule.Vectorize ] in
  let base = Par_eval.noise_base evaluator in
  let scored_total = ref 0 in
  let delta = ref 0 in
  let beam = ref [ (root, !best_speedup) ] in
  let depth = ref 0 in
  while !depth < config.max_depth - 1 && !beam <> [] do
    incr depth;
    let expanded =
      Util.Domain_pool.map_array pool
        (fun ((state : Sched_state.t), _) ->
          List.filter_map
            (fun tr ->
              match Sched_state.apply state tr with
              | Error _ -> None
              | Ok child -> Some child)
            (expansions config state))
        (Array.of_list !beam)
    in
    let collected =
      List.filter remember (List.concat (Array.to_list expanded))
    in
    let candidates = select_candidates ?ranker ~rerank_k collected in
    let tagged =
      Array.of_list
        (List.mapi (fun k child -> (!scored_total + k, child)) candidates)
    in
    scored_total := !scored_total + Array.length tagged;
    let results =
      Util.Domain_pool.map_array pool
        (fun (i, (child : Sched_state.t)) ->
          let fork = Par_eval.derived_fork evaluator ~base ~stream:i in
          let s =
            match Sched_state.apply child Schedule.Vectorize with
            | Ok v -> Evaluator.speedup fork v
            | Error _ -> Evaluator.speedup fork child
          in
          (s, Evaluator.explored fork))
        tagged
    in
    let children = ref [] in
    Array.iteri
      (fun k (s, d) ->
        delta := !delta + d;
        incr explored;
        let child = snd tagged.(k) in
        if s > !best_speedup then begin
          best_speedup := s;
          best_schedule := child.Sched_state.applied @ [ Schedule.Vectorize ]
        end;
        children := (child, s) :: !children)
      results;
    let sorted = List.sort (fun (_, a) (_, b) -> compare b a) !children in
    beam := List.filteri (fun i _ -> i < config.beam_width) sorted
  done;
  Evaluator.set_explored evaluator (Evaluator.explored evaluator + !delta);
  { best_schedule = !best_schedule; best_speedup = !best_speedup; explored = !explored }

let search ?(config = default_config) ?ranker ?(rerank_k = default_rerank_k)
    ?(jobs = 1) ?pool evaluator op =
  if jobs < 1 then invalid_arg "Beam_search.search: jobs must be >= 1";
  if jobs = 1 && Option.is_none pool then
    search_seq ~config ?ranker ~rerank_k evaluator op
  else
    Par_eval.with_pool ?pool ~jobs (fun pool ->
        search_par ~config ?ranker ~rerank_k ~pool evaluator op)
