(** Beam-search auto-scheduler.

    A cost-model-guided tree search in the style of the Halide and
    Tiramisu auto-schedulers the paper discusses (§2.2): states are
    partial schedules, actions are single transformations (one or two
    loops tiled per step, one adjacent swap, parallelization, im2col,
    vectorization), and each state is scored by the timing oracle with
    vectorization virtually appended. Complements the exhaustive
    baseline (§5.1.4) with a much smaller exploration budget. *)

type config = {
  beam_width : int;
  max_depth : int;  (** schedule length bound (the env's tau) *)
  sizes_per_loop : int;  (** divisor options considered per loop *)
  max_parallel_combos : int;
  max_tile_size : int;
}

val default_config : config
(** width 8, depth 7, 3 sizes/loop, 24 parallel combos, tiles <= 128. *)

type result = {
  best_schedule : Schedule.t;
  best_speedup : float;
  explored : int;  (** states evaluated by the oracle *)
}

val default_rerank_k : int
(** Per-depth exact-scoring budget of the staged mode (32). *)

val search :
  ?config:config ->
  ?ranker:(Sched_state.t array -> float array) ->
  ?rerank_k:int ->
  ?jobs:int ->
  ?pool:Util.Domain_pool.t ->
  Evaluator.t ->
  Linalg.t ->
  result
(** Deterministic for a given op and config. The returned schedule
    always ends with vectorization and applies cleanly.

    With [ranker] (predicted log-seconds per state, positionally;
    lower = faster) the search runs staged: at each depth the
    deduplicated children are ranked by the surrogate in one batched
    call — no cost-model call, no transformation applied — and only
    the [rerank_k] best proceed to exact scoring and beam selection.
    [explored] counts exact scorings only. Without [ranker], behavior
    is byte-identical to the exact search.

    [jobs] (default 1; [Invalid_argument] below 1) parallelizes each
    depth over OCaml domains: expansion and exact scoring fan out on a
    work-stealing pool — scoring on {!Evaluator.fork}s with noise
    streams derived from a global scored-state index — while dedup,
    ranking and beam selection merge results on the calling domain in
    expansion order. Results are byte-identical across all [jobs]
    values for noiseless evaluators, and across all [jobs >= 2] when
    the evaluator has [noise > 0]. Pass [pool] to reuse a caller-owned
    pool (then [jobs] only selects the parallel path). *)
