type config = {
  tile_sizes : int list;
  min_tiled_loops : int;
  par_loops_considered : int;
  include_interchange : bool;
  include_im2col : bool;
  max_schedules : int;
}

let default_config =
  {
    tile_sizes = [];
    (* empty = derive from divisors, capped at 64 (paper §5.1.4) *)
    min_tiled_loops = 2;
    par_loops_considered = 3;
    include_interchange = true;
    include_im2col = true;
    max_schedules = 3000;
  }

type result = {
  best_schedule : Schedule.t;
  best_speedup : float;
  explored : int;
  trace : (int * float) array;
}

let max_tile_size = 64
let max_options_per_loop = 4

(* Candidate tile sizes for one loop: the largest few divisors <= 64
   (or the configured list), always alongside 0 = untiled. *)
let loop_options config trip =
  let pool =
    match config.tile_sizes with
    | [] -> List.filter (fun d -> d <= max_tile_size && d > 1) (Loop_transforms.divisors trip)
    | sizes -> List.filter (fun s -> s > 1 && s <= trip && trip mod s = 0) sizes
  in
  let sorted = List.sort (fun a b -> compare b a) pool in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  0 :: take max_options_per_loop sorted

let count_nonzero l = List.length (List.filter (fun s -> s > 0) l)

let rec product (options : int list list) : int list Seq.t =
  match options with
  | [] -> Seq.return []
  | opts :: rest ->
      Seq.concat_map
        (fun choice -> Seq.map (fun tail -> choice :: tail) (product rest))
        (List.to_seq opts)

(* One schedule from (par combo option, tile combo, swap option). *)
let assemble ~prefix ~par_opt ~tile_combo ~swap_opt =
  (match par_opt with
  | Some sizes when count_nonzero (Array.to_list sizes) > 0 ->
      [ Schedule.Parallelize sizes ]
  | Some _ | None -> [])
  @ (if count_nonzero (Array.to_list tile_combo) > 0 then
       [ Schedule.Tile tile_combo ]
     else [])
  @ (match swap_opt with Some i -> [ Schedule.Swap i ] | None -> [])
  @ [ Schedule.Vectorize ]
  |> fun steps -> prefix @ steps

type domain_space = {
  prefix : Schedule.t;
  trips : int array;
  par_slots : (int * int list) list;  (* (loop index, size options incl 0) *)
  swap_opts : int option list;
}

let make_space config ~prefix ~trips ~iter_kinds =
  let n = Array.length trips in
  let par_slots =
    let eligible = ref [] in
    let taken = ref 0 in
    Array.iteri
      (fun l trip ->
        if
          !taken < config.par_loops_considered
          && trip > 1
          && l < Array.length iter_kinds
          && iter_kinds.(l) = Linalg.Parallel_iter
        then begin
          let opts = loop_options config trip in
          if List.length opts > 1 then begin
            eligible := (l, opts) :: !eligible;
            incr taken
          end
        end)
      trips;
    List.rev !eligible
  in
  let swap_opts =
    if config.include_interchange && n >= 2 then
      None :: List.init (n - 1) (fun i -> Some i)
    else [ None ]
  in
  { prefix; trips; par_slots; swap_opts }

(* Exhaustive stream over one domain space. *)
let space_candidates config (space : domain_space) : Schedule.t Seq.t =
  let n = Array.length space.trips in
  let par_combos : int array option Seq.t =
    let slot_opts = List.map snd space.par_slots in
    Seq.cons None
      (Seq.filter_map
         (fun combo ->
           if count_nonzero combo = 0 then None
           else begin
             let sizes = Array.make n 0 in
             List.iteri
               (fun k size -> sizes.(fst (List.nth space.par_slots k)) <- size)
               combo;
             Some (Some sizes)
           end)
         (product slot_opts))
  in
  Seq.concat_map
    (fun par_opt ->
      let effective =
        match par_opt with
        | None -> space.trips
        | Some sizes ->
            Array.mapi (fun l s -> if s > 0 then s else space.trips.(l)) sizes
      in
      let par_count =
        match par_opt with
        | None -> 0
        | Some sizes -> count_nonzero (Array.to_list sizes)
      in
      let tile_opts =
        Array.to_list (Array.map (fun trip -> loop_options config trip) effective)
      in
      Seq.concat_map
        (fun tile_combo ->
          if par_count + count_nonzero tile_combo < config.min_tiled_loops then
            Seq.empty
          else
            Seq.map
              (fun swap_opt ->
                assemble ~prefix:space.prefix ~par_opt
                  ~tile_combo:(Array.of_list tile_combo) ~swap_opt)
              (List.to_seq space.swap_opts))
        (product tile_opts))
    par_combos

(* [loop_options] enumerates, filters and sorts divisors — far too
   expensive to redo per sampling attempt per loop (the sampling loops
   below draw tens of thousands of candidates, and trip counts repeat
   constantly). One memo table per search invocation; [config] is fixed
   for the table's lifetime, so the key is just the trip count. *)
let loop_options_memo config =
  let tbl = Hashtbl.create 32 in
  fun trip ->
    match Hashtbl.find_opt tbl trip with
    | Some opts -> opts
    | None ->
        let opts = loop_options config trip in
        Hashtbl.add tbl trip opts;
        opts

(* Seeded random draw from one domain space. [opts] is the (memoized)
   tile-size option list per trip count. *)
let random_candidate rng config ~opts (space : domain_space) =
  let n = Array.length space.trips in
  let par_opt =
    if space.par_slots <> [] && Util.Rng.bool rng then begin
      let sizes = Array.make n 0 in
      List.iter
        (fun (l, opts) -> sizes.(l) <- Util.Rng.choice_list rng opts)
        space.par_slots;
      if Array.exists (fun s -> s > 0) sizes then Some sizes else None
    end
    else None
  in
  let effective =
    match par_opt with
    | None -> space.trips
    | Some sizes -> Array.mapi (fun l s -> if s > 0 then s else space.trips.(l)) sizes
  in
  let tile_combo =
    Array.map (fun trip -> Util.Rng.choice_list rng (opts trip)) effective
  in
  let count_nonzero_arr a =
    Array.fold_left (fun acc s -> if s > 0 then acc + 1 else acc) 0 a
  in
  let par_count =
    match par_opt with None -> 0 | Some sizes -> count_nonzero_arr sizes
  in
  if par_count + count_nonzero_arr tile_combo < config.min_tiled_loops then None
  else begin
    let swap_opt = Util.Rng.choice_list rng space.swap_opts in
    Some (assemble ~prefix:space.prefix ~par_opt ~tile_combo ~swap_opt)
  end

let spaces config (op : Linalg.t) =
  let plain =
    make_space config ~prefix:[] ~trips:(Linalg.loop_bounds op)
      ~iter_kinds:op.Linalg.iter_kinds
  in
  if config.include_im2col && Linalg.is_conv op then
    match Im2col.rewrite op with
    | Ok (gemm, _) ->
        [ plain;
          make_space config ~prefix:[ Schedule.Im2col ]
            ~trips:(Linalg.loop_bounds gemm)
            ~iter_kinds:gemm.Linalg.iter_kinds ]
    | Error _ -> [ plain ]
  else [ plain ]

let space_size config (space : domain_space) =
  let opt_count trip = List.length (loop_options config trip) in
  let par =
    List.fold_left (fun acc (_, opts) -> acc * List.length opts) 1 space.par_slots
  in
  let tiles = Array.fold_left (fun acc trip -> acc * opt_count trip) 1 space.trips in
  (* Upper bound: ignores the min-tiled filter. *)
  par * tiles * List.length space.swap_opts

let candidates config (op : Linalg.t) : Schedule.t Seq.t =
  Seq.cons
    [ Schedule.Vectorize ]
    (Seq.concat_map (space_candidates config) (List.to_seq (spaces config op)))

(* The size estimate the search dispatches on (full enumeration vs
   budgeted sampling): an upper bound on |candidates|, since the
   per-space product ignores the min-tiled filter. *)
let space_total config op =
  1 + List.fold_left (fun acc s -> acc + space_size config s) 0 (spaces config op)

(* Seeded from the full op digest (name, dims, iter kinds), not just
   op_name: two same-named ops with different shapes must not share a
   sampling stream — their spaces differ, and a shared stream made the
   "without replacement" budget behave differently per shape for no
   reason. Pinned by a determinism test. *)
let sampling_seed (op : Linalg.t) = Hashtbl.hash (Linalg.digest op)

(* The par-combo stream of a space: None (no Parallelize step) first,
   then every nonzero combination of the parallel slots, head slot
   varying slowest — shared by the sequential DFS and the frontier
   decomposition so both enumerate in the same order. *)
let par_combos (space : domain_space) : int array option Seq.t =
  let n = Array.length space.trips in
  let slot_opts = List.map snd space.par_slots in
  Seq.cons None
    (Seq.filter_map
       (fun combo ->
         if count_nonzero combo = 0 then None
         else begin
           let sizes = Array.make n 0 in
           List.iteri
             (fun k size -> sizes.(fst (List.nth space.par_slots k)) <- size)
             combo;
           Some (Some sizes)
         end)
       (product slot_opts))

(* A frontier subtask: one independent subtrie of the (prefix;
   parallelize; tile; swap; vectorize) decision trie — a space with its
   prefix already applied, one parallel combo, and the tile choices of
   the leading [frontier_depth] loops pinned. Subtasks share no mutable
   state, so they evaluate on any domain; enumerating them in order and
   concatenating their leaf streams reproduces the sequential DFS
   leaf-for-leaf. *)
type subtask = {
  st_space : domain_space;
  st_pre : Sched_state.t;  (* root with the space prefix applied *)
  st_par : int array option;
  st_par_count : int;
  st_tile_prefix : int list;  (* pinned tile choices of the leading loops *)
  st_rest_opts : int list list;  (* remaining loops' tile options *)
}

let rec split_at k l =
  if k = 0 then ([], l)
  else
    match l with
    | [] -> ([], [])
    | x :: rest ->
        let h, t = split_at (k - 1) rest in
        (x :: h, t)

(* Enumerate the frontier: (space, par combo, leading tile choices) in
   exact sequential DFS order. [product] varies its head slowest, so
   splitting the tile product at [frontier_depth] and enumerating
   (head combo) x (rest combo) preserves the global candidate order.
   Returns the root state alongside (the trivial [Vectorize] candidate
   is the driver's, not a subtask). *)
let subtasks ?(frontier_depth = 0) config op =
  let root = Sched_state.init op in
  let tasks = ref [] in
  List.iter
    (fun (space : domain_space) ->
      let prefixed =
        List.fold_left
          (fun acc tr -> Result.bind acc (fun s -> Sched_state.apply s tr))
          (Ok root) space.prefix
      in
      match prefixed with
      | Error _ -> ()
      | Ok pre ->
          Seq.iter
            (fun par_opt ->
              let effective =
                match par_opt with
                | None -> space.trips
                | Some sizes ->
                    Array.mapi
                      (fun l s -> if s > 0 then s else space.trips.(l))
                      sizes
              in
              let par_count =
                match par_opt with
                | None -> 0
                | Some sizes -> count_nonzero (Array.to_list sizes)
              in
              let tile_opts =
                Array.to_list
                  (Array.map (fun trip -> loop_options config trip) effective)
              in
              let head_opts, rest_opts = split_at frontier_depth tile_opts in
              Seq.iter
                (fun tile_prefix ->
                  tasks :=
                    {
                      st_space = space;
                      st_pre = pre;
                      st_par = par_opt;
                      st_par_count = par_count;
                      st_tile_prefix = tile_prefix;
                      st_rest_opts = rest_opts;
                    }
                    :: !tasks)
                (product head_opts))
            (par_combos space))
    (spaces config op);
  (root, List.rev !tasks)

(* One subtask's leaves, in sequential DFS order: apply Parallelize once
   for the whole subtrie, then enumerate the unpinned tile options, the
   swaps and the final vectorize. A transformation that fails prunes its
   subtree — exactly the candidates the naive loop would have skipped. *)
let run_subtask config (st : subtask) ~eval =
  let after_par =
    match st.st_par with
    | Some sizes when st.st_par_count > 0 -> (
        match Sched_state.apply st.st_pre (Schedule.Parallelize sizes) with
        | Ok s -> Some s
        | Error _ -> None)
    | Some _ | None -> Some st.st_pre
  in
  match after_par with
  | None -> ()
  | Some after_par ->
      Seq.iter
        (fun rest_combo ->
          let tile_combo = st.st_tile_prefix @ rest_combo in
          if st.st_par_count + count_nonzero tile_combo < config.min_tiled_loops
          then ()
          else begin
            let tile_arr = Array.of_list tile_combo in
            let after_tile =
              if count_nonzero tile_combo > 0 then
                match Sched_state.apply after_par (Schedule.Tile tile_arr) with
                | Ok s -> Some s
                | Error _ -> None
              else Some after_par
            in
            match after_tile with
            | None -> ()
            | Some after_tile ->
                List.iter
                  (fun swap_opt ->
                    let after_swap =
                      match swap_opt with
                      | None -> Some after_tile
                      | Some i -> (
                          match
                            Sched_state.apply after_tile (Schedule.Swap i)
                          with
                          | Ok s -> Some s
                          | Error _ -> None)
                    in
                    match after_swap with
                    | None -> ()
                    | Some swapped -> (
                        match Sched_state.apply swapped Schedule.Vectorize with
                        | Error _ -> ()
                        | Ok final ->
                            eval
                              (assemble ~prefix:st.st_space.prefix
                                 ~par_opt:st.st_par ~tile_combo:tile_arr
                                 ~swap_opt)
                              final))
                  st.st_space.swap_opts
          end)
        (product st.st_rest_opts)

(* Prefix-sharing enumeration of the exhaustive candidate stream: a DFS
   over the (prefix; parallelize; tile; swap; vectorize) decision trie
   that applies each transformation once per distinct trie node instead
   of replaying the whole schedule per leaf ([Sched_state.apply_all],
   which re-applies the shared prefix for every candidate containing
   it). [eval] receives the exact schedule [candidates] would have
   produced together with its fully applied terminal state.

   Bit-identity with mapping [apply_all] over [candidates] (the
   differential property tests assert it): leaves are visited in the
   same order; applying the same transformations in the same order from
   [init] yields the same states ([apply] is deterministic, and
   [apply_all] is its fold); and a transformation that fails at depth k
   fails identically inside every naive candidate sharing that prefix,
   so pruning the subtree skips exactly the candidates the naive loop
   would have skipped — explored counts, traces and the evaluator's
   jitter stream line up.

   Implemented as the concatenation of the frontier subtasks at depth 0
   (one subtask per (space, par combo)), which is the same trie walked
   in the same order — the parallel search reuses the identical pieces
   with a deeper frontier. *)
let iter_candidates_shared config op
    ~(eval : Schedule.t -> Sched_state.t -> unit) =
  let root, tasks = subtasks config op in
  (match Sched_state.apply root Schedule.Vectorize with
  | Ok final -> eval [ Schedule.Vectorize ] final
  | Error _ -> ());
  List.iter (fun st -> run_subtask config st ~eval) tasks

(* The shared skeleton of [search]/[search_naive]: bookkeeping plus the
   budgeted sampling fallback; only the exhaustive branch differs. *)
let search_with ~exhaustive ?(config = default_config) evaluator op =
  let best_schedule = ref [ Schedule.Vectorize ] in
  let best_speedup = ref 0.0 in
  let explored = ref 0 in
  let trace = ref [] in
  let record sched speedup =
    incr explored;
    if speedup > !best_speedup then begin
      best_speedup := speedup;
      best_schedule := sched
    end;
    trace := (!explored, !best_speedup) :: !trace
  in
  let evaluate sched =
    match Evaluator.schedule_speedup evaluator op sched with
    | Error _ -> ()
    | Ok speedup -> record sched speedup
  in
  let sps = spaces config op in
  let total_size = space_total config op in
  if total_size <= config.max_schedules then
    (* Small space: full exhaustive enumeration. *)
    exhaustive config op ~evaluate ~record
  else begin
    (* Large space: budgeted seeded sampling without replacement. *)
    evaluate [ Schedule.Vectorize ];
    let rng = Util.Rng.create (sampling_seed op) in
    let opts = loop_options_memo config in
    let seen = Hashtbl.create 1024 in
    let attempts = ref 0 in
    let max_attempts = config.max_schedules * 20 in
    while !explored < config.max_schedules && !attempts < max_attempts do
      incr attempts;
      let space = Util.Rng.choice_list rng sps in
      match random_candidate rng config ~opts space with
      | None -> ()
      | Some sched ->
          (* Structural keys: generic hashing beats building a string
             per attempt, and bucket collisions fall back to full
             structural equality, so dedup stays exact. *)
          if not (Hashtbl.mem seen sched) then begin
            Hashtbl.add seen sched ();
            evaluate sched
          end
    done
  end;
  {
    best_schedule = !best_schedule;
    best_speedup = !best_speedup;
    explored = !explored;
    trace = Array.of_list (List.rev !trace);
  }

(* ---- Domain-parallel search ---------------------------------------

   The decomposition follows Par_eval's determinism contract: subtask
   ENUMERATION stays sequential and jobs-independent, only EVALUATION
   fans out across the pool (on evaluator forks with trie-path-keyed
   noise streams), and results merge on this domain in enumeration
   order, replaying the sequential bookkeeping verbatim. With a
   noiseless evaluator every [jobs] value is byte-identical. *)

let default_frontier_depth = 2
let sampling_chunk = 32

let search_parallel ~config ~frontier_depth ~pool evaluator op =
  let best_schedule = ref [ Schedule.Vectorize ] in
  let best_speedup = ref 0.0 in
  let explored = ref 0 in
  let trace = ref [] in
  let record sched speedup =
    incr explored;
    if speedup > !best_speedup then begin
      best_speedup := speedup;
      best_schedule := sched
    end;
    trace := (!explored, !best_speedup) :: !trace
  in
  let sps = spaces config op in
  let total_size = space_total config op in
  (* Forks count their own evaluations; the deltas are summed back into
     the parent so [Evaluator.explored] reads the same as after a
     sequential run. *)
  let delta = ref 0 in
  if total_size <= config.max_schedules then begin
    (* Exhaustive: one pool task per frontier subtask. The trivial
       vectorize candidate is evaluated here on the parent, exactly
       where the sequential DFS evaluates it. *)
    let root, tasks = subtasks ~frontier_depth config op in
    (match Sched_state.apply root Schedule.Vectorize with
    | Ok final ->
        record [ Schedule.Vectorize ] (Evaluator.speedup evaluator final)
    | Error _ -> ());
    let base = Par_eval.noise_base evaluator in
    let results =
      Util.Domain_pool.map_array pool
        (fun (i, st) ->
          let fork = Par_eval.derived_fork evaluator ~base ~stream:i in
          let out = ref [] in
          run_subtask config st ~eval:(fun sched final ->
              out := (sched, Evaluator.speedup fork final) :: !out);
          (List.rev !out, Evaluator.explored fork))
        (Array.of_list (List.mapi (fun i st -> (i, st)) tasks))
    in
    Array.iter
      (fun (leaves, d) ->
        delta := !delta + d;
        List.iter (fun (sched, s) -> record sched s) leaves)
      results
  end
  else begin
    (* Sampled fallback: candidate DRAWS stay sequential on this domain
       — the rng / dedup / attempts stream is exactly the jobs=1 one —
       and only evaluations fan out, in chunks merged in draw order.
       Each chunk asks for at most the remaining budget, so successes
       never overflow it; when chunk evaluations fail ([apply_all]
       errors) the next chunk draws more, just as the sequential loop
       redraws after a failure. *)
    (match Evaluator.schedule_speedup evaluator op [ Schedule.Vectorize ] with
    | Error _ -> ()
    | Ok s -> record [ Schedule.Vectorize ] s);
    let base = Par_eval.noise_base evaluator in
    let rng = Util.Rng.create (sampling_seed op) in
    let opts = loop_options_memo config in
    let seen = Hashtbl.create 1024 in
    let attempts = ref 0 in
    let max_attempts = config.max_schedules * 20 in
    let cand_idx = ref 0 in
    let exhausted = ref false in
    while (not !exhausted) && !explored < config.max_schedules do
      let want = min sampling_chunk (config.max_schedules - !explored) in
      let chunk = ref [] in
      let got = ref 0 in
      while !got < want && !attempts < max_attempts do
        incr attempts;
        let space = Util.Rng.choice_list rng sps in
        match random_candidate rng config ~opts space with
        | None -> ()
        | Some sched ->
            if not (Hashtbl.mem seen sched) then begin
              Hashtbl.add seen sched ();
              chunk := sched :: !chunk;
              incr got
            end
      done;
      match List.rev !chunk with
      | [] -> exhausted := true
      | chunk ->
          let tagged =
            Array.of_list
              (List.mapi (fun k sched -> (!cand_idx + k, sched)) chunk)
          in
          cand_idx := !cand_idx + List.length chunk;
          let results =
            Util.Domain_pool.map_array pool
              (fun (i, sched) ->
                let fork = Par_eval.derived_fork evaluator ~base ~stream:i in
                (* Bind before reading the counter: tuple components
                   evaluate right-to-left, so an inline pair would read
                   [explored] before the evaluation bumps it. *)
                let r = Evaluator.schedule_speedup fork op sched in
                (r, Evaluator.explored fork))
              tagged
          in
          Array.iteri
            (fun k (r, d) ->
              delta := !delta + d;
              if !explored < config.max_schedules then
                match r with
                | Ok s -> record (snd tagged.(k)) s
                | Error _ -> ())
            results
    done
  end;
  Evaluator.set_explored evaluator (Evaluator.explored evaluator + !delta);
  {
    best_schedule = !best_schedule;
    best_speedup = !best_speedup;
    explored = !explored;
    trace = Array.of_list (List.rev !trace);
  }

let search ?(config = default_config) ?(jobs = 1) ?pool
    ?(frontier_depth = default_frontier_depth) evaluator op =
  if jobs < 1 then invalid_arg "Auto_scheduler.search: jobs must be >= 1";
  if jobs = 1 && Option.is_none pool then
    search_with ~config evaluator op
      ~exhaustive:(fun config op ~evaluate:_ ~record ->
        iter_candidates_shared config op ~eval:(fun sched final ->
            record sched (Evaluator.speedup evaluator final)))
  else
    Par_eval.with_pool ?pool ~jobs (fun pool ->
        search_parallel ~config ~frontier_depth ~pool evaluator op)

let search_naive ?config evaluator op =
  search_with ?config evaluator op ~exhaustive:(fun config op ~evaluate ~record:_ ->
      Seq.iter evaluate (candidates config op))

(* Staged re-ranking: a cheap learned ranker scores every candidate in
   the budgeted set WITHOUT applying it (the surrogate's features come
   from the schedule parameters alone), then only the [rerank_k] most
   promising candidates pay for the exact path ([Sched_state.apply_all]
   plus the analytical cost model). [explored] counts exact evaluations
   only, so traces stay comparable with [search].

   The ranker is a plain closure — this layer cannot depend on
   lib/surrogate (perf < autosched < surrogate in the library order);
   the CLI / bench construct it from a trained checkpoint. *)
let default_rerank_k = 64

let gather_candidates config op =
  let sps = spaces config op in
  let total_size = space_total config op in
  if total_size <= config.max_schedules then
    List.of_seq (candidates config op)
  else begin
    (* Same seeded sampling-without-replacement stream the exact search
       falls back to, collected instead of evaluated. *)
    let rng = Util.Rng.create (sampling_seed op) in
    let opts = loop_options_memo config in
    let seen = Hashtbl.create 1024 in
    let out = ref [ [ Schedule.Vectorize ] ] in
    Hashtbl.add seen [ Schedule.Vectorize ] ();
    let collected = ref 1 in
    let attempts = ref 0 in
    let max_attempts = config.max_schedules * 20 in
    while !collected < config.max_schedules && !attempts < max_attempts do
      incr attempts;
      let space = Util.Rng.choice_list rng sps in
      match random_candidate rng config ~opts space with
      | None -> ()
      | Some sched ->
          if not (Hashtbl.mem seen sched) then begin
            Hashtbl.add seen sched ();
            out := sched :: !out;
            incr collected
          end
    done;
    List.rev !out
  end

let search_staged ?(config = default_config) ?ranker
    ?(rerank_k = default_rerank_k) ?(jobs = 1) ?pool evaluator op =
  if jobs < 1 then
    invalid_arg "Auto_scheduler.search_staged: jobs must be >= 1";
  match ranker with
  | None -> search ~config ~jobs ?pool evaluator op
  | Some rank ->
      let cands = Array.of_list (gather_candidates config op) in
      (* One batched ranking pass over the WHOLE aggregated candidate
         set (the ranker amortizes it into a single network forward),
         then sort ascending by predicted log-seconds; ties (and equal
         predictions from a degenerate model) fall back to enumeration
         order, keeping the stage deterministic. *)
      let predictions = rank cands in
      if Array.length predictions <> Array.length cands then
        invalid_arg "Auto_scheduler.search_staged: ranker size mismatch";
      let scored =
        Array.mapi (fun i sched -> (predictions.(i), i, sched)) cands
      in
      Array.sort
        (fun (a, i, _) (b, j, _) ->
          match compare (a : float) b with 0 -> compare i j | c -> c)
        scored;
      let best_schedule = ref [ Schedule.Vectorize ] in
      let best_speedup = ref 0.0 in
      let explored = ref 0 in
      let trace = ref [] in
      let record sched speedup =
        incr explored;
        if speedup > !best_speedup then begin
          best_speedup := speedup;
          best_schedule := sched
        end;
        trace := (!explored, !best_speedup) :: !trace
      in
      let evaluate sched =
        match Evaluator.schedule_speedup evaluator op sched with
        | Error _ -> ()
        | Ok speedup -> record sched speedup
      in
      (* The trivial vectorize schedule is always exact-evaluated, so
         [best_speedup] is well-defined even if the ranker buries it.
         The survivors are selected before any evaluation (selection
         depends only on the ranking), which is what lets the parallel
         path fan their exact evaluations out. *)
      let trivial = [ Schedule.Vectorize ] in
      let trivial_key = Schedule.dedup_key trivial in
      let selected =
        let taken = ref 0 in
        let out = ref [] in
        Array.iter
          (fun (_, _, sched) ->
            if !taken < rerank_k && Schedule.dedup_key sched <> trivial_key
            then begin
              incr taken;
              out := sched :: !out
            end)
          scored;
        List.rev !out
      in
      if jobs = 1 && Option.is_none pool then begin
        evaluate trivial;
        List.iter evaluate selected
      end
      else
        Par_eval.with_pool ?pool ~jobs (fun pool ->
            evaluate trivial;
            let base = Par_eval.noise_base evaluator in
            let tagged =
              Array.of_list (List.mapi (fun i sched -> (i, sched)) selected)
            in
            let results =
              Util.Domain_pool.map_array pool
                (fun (i, sched) ->
                  let fork = Par_eval.derived_fork evaluator ~base ~stream:i in
                  (* let-bound: tuples evaluate right-to-left, and the
                     counter must be read after the evaluation. *)
                  let r = Evaluator.schedule_speedup fork op sched in
                  (r, Evaluator.explored fork))
                tagged
            in
            let delta = ref 0 in
            Array.iteri
              (fun k (r, d) ->
                delta := !delta + d;
                match r with
                | Ok s -> record (snd tagged.(k)) s
                | Error _ -> ())
              results;
            Evaluator.set_explored evaluator
              (Evaluator.explored evaluator + !delta));
      {
        best_schedule = !best_schedule;
        best_speedup = !best_speedup;
        explored = !explored;
        trace = Array.of_list (List.rev !trace);
      }
