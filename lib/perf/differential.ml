(* Differential sanitizer wiring for schedule states.

   The generic nest-vs-nest machinery lives in Sanitizer (lib/analysis,
   which cannot see transforms); this module knows about Sched_state —
   in particular that an im2col'd state executes over a packed column
   matrix instead of the original image, so the candidate's inputs must
   be derived from the reference's via Im2col.pack_input before the two
   outputs are comparable (the GEMM output is the conv output
   reshaped). Hooked into Evaluator.state_seconds: that is the one
   measurement path train, autosched and serve all share. *)

let sanitize_state (state : Sched_state.t) =
  if state.Sched_state.applied = [] then None
  else begin
    let reference = Lower.to_loop_nest state.Sched_state.original in
    let ref_digest = Loop_nest.digest reference in
    let cand_digest = state.Sched_state.nest_digest in
    if not (Sanitizer.fresh_pair ~reference:ref_digest ~candidate:cand_digest)
    then None
    else begin
      let ref_inputs = Sanitizer.seeded_inputs reference in
      let outcome =
        if state.Sched_state.packing_elements = 0 then
          Sanitizer.run_pair ~reference ~ref_inputs
            ~candidate:state.Sched_state.nest ~cand_inputs:ref_inputs ()
        else
          match
            ( state.Sched_state.original.Linalg.kind,
              List.assoc_opt "input" ref_inputs,
              List.assoc_opt "filter" ref_inputs )
          with
          | Linalg.Conv2d p, Some image, Some filter ->
              let packed = Im2col.pack_input p image in
              Sanitizer.run_pair ~reference ~ref_inputs
                ~candidate:state.Sched_state.nest
                ~cand_inputs:[ ("A", packed); ("B", filter) ]
                ()
          | _ -> Sanitizer.skip "packed state is not an NHWC convolution"
      in
      (match outcome with
      | Sanitizer.Mismatch msg ->
          Printf.eprintf
            "[sanitize] differential violation on %s (schedule %s): %s\n%!"
            state.Sched_state.original.Linalg.op_name
            (Schedule.to_string state.Sched_state.applied)
            msg
      | _ -> ());
      Some outcome
    end
  end
