(** Seeded fault injection for measurement backends.

    A real deployment of the paper's environment measures schedules by
    compiling and running them on shared hardware: runs time out,
    compilations fail spuriously, timings carry heavy-tailed outliers
    and the harness occasionally hangs or dies. This module models
    those failure modes as a deterministic, replayable stream so the
    resilience layer ({!Robust_evaluator}) and the training loop can be
    exercised — and regression-tested — against exact failure
    sequences. *)

type fault =
  | Transient_timeout  (** the run exceeded its time budget; retryable *)
  | Compile_failure  (** spurious toolchain failure; retryable *)
  | Latency_outlier of float
      (** multiplier applied to an otherwise-valid measurement *)
  | Hang of float
      (** the harness hung for this many seconds before being killed *)
  | Crash  (** the measurement process died *)

type config = {
  transient_timeout_prob : float;
  compile_failure_prob : float;
  outlier_prob : float;
  outlier_scale : float;
      (** tail weight of the Pareto outlier multiplier (0 disables) *)
  hang_prob : float;
  hang_seconds : float;  (** mean hang duration before the cap *)
  crash_prob : float;
  crash_on_call : int option;
      (** deterministically crash exactly the n-th call (1-based), on
          top of the probabilistic faults — for exception-safety tests *)
}

val none : config
(** All probabilities zero: a perfectly reliable backend. *)

val flaky : ?rate:float -> unit -> config
(** A representative flaky backend. [rate] (default 0.1) is the total
    transient-failure probability, split 40/30/30 between timeouts,
    compile failures and hangs; latency outliers occur at [rate *. 0.5]
    on top (they do not fail the measurement, only distort it). *)

val validate : config -> (unit, string) result

type t
(** A fault injector: a fault stream positioned at some call count. *)

val create : ?config:config -> seed:int -> unit -> t
(** Raises [Invalid_argument] on an invalid config. Two injectors with
    the same config and seed produce identical fault sequences. *)

val config : t -> config
val calls : t -> int

val fork : t -> t
(** Same config, zero calls, a fresh stream the caller is expected to
    position with {!restore} — one injector per parallel episode. *)

val draw : t -> fault option
(** Advance the stream by one measurement attempt. [None] means the
    attempt proceeds unharmed. Consumes exactly two random draws per
    call regardless of outcome, so replays stay aligned. *)

val to_string : fault -> string

val state : t -> int64 * int
(** Stream state (rng, call count) for checkpointing. *)

val restore : t -> int64 * int -> unit
(** Reposition the stream at a state saved by {!state}. *)

(** {1 Serving-side chaos}

    The fleet chaos harness ([bench/exp_fleet], the CI chaos smoke)
    injects failures into a {e running fleet} rather than into single
    measurements: replicas are SIGKILLed mid-load, SIGSTOPped so they
    stall past their health deadlines, or made to answer garbage. A
    plan is generated once from a seed and then replayed against the
    wall clock, so a chaos run is exactly reproducible. *)

type chaos_action =
  | Kill_replica  (** SIGKILL the replica process, no warning *)
  | Stall of float
      (** SIGSTOP the replica for this many seconds, then SIGCONT —
          alive but unresponsive, the breaker-opening case *)
  | Garble  (** corrupt the next reply to exercise the {!Replica}
                [Garbled] path *)

type chaos_event = { at_s : float; replica : int; action : chaos_action }

val chaos_plan :
  seed:int ->
  replicas:int ->
  duration_s:float ->
  ?kill_rate:float ->
  ?stall_rate:float ->
  ?garble_rate:float ->
  ?stall_seconds:float ->
  unit ->
  chaos_event list
(** A Poisson event schedule over [0, duration_s), sorted by time.
    Rates are events/second ([kill_rate] defaults to 0.5, the others
    to 0); stall durations are uniform in
    [[0.5, 1.5] * stall_seconds]. Deterministic: same arguments, same
    plan, on every host. Raises [Invalid_argument] on negative rates,
    durations or a non-positive replica count. *)

val chaos_action_to_string : chaos_action -> string

val chaos_event_to_string : chaos_event -> string
(** E.g. ["t=1.250s replica=2 kill"]. *)
