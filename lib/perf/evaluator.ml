type t = {
  machine : Machine.t;
  base_cache : (string, float) Util.Sharded_cache.t;
  mutable explored : int;
  noise : float;
  noise_rng : Util.Rng.t;
}

let timeout_factor = 10.0
let default_cache_capacity = 4096

let create ?(machine = Machine.e5_2680_v4) ?(noise = 0.0) ?(noise_seed = 0)
    ?(cache_capacity = default_cache_capacity) () =
  {
    machine;
    base_cache = Util.Sharded_cache.create ~capacity:cache_capacity ();
    explored = 0;
    noise;
    noise_rng = Util.Rng.create noise_seed;
  }

let fork t =
  (* Same machine and noise sigma, and the same (shared, domain-safe)
     base cache — base times are pure so every fork may reuse them. The
     explored counter and jitter stream are per-fork: each parallel
     episode runs its own decorrelated noise stream and reports its
     explored delta for the trainer to merge. *)
  {
    machine = t.machine;
    base_cache = t.base_cache;
    explored = 0;
    noise = t.noise;
    noise_rng = Util.Rng.create 0;
  }

let jitter t seconds =
  if t.noise <= 0.0 then seconds
  else seconds *. exp (t.noise *. Util.Rng.gaussian t.noise_rng)

let machine t = t.machine
let noise t = t.noise

let base_seconds t (op : Linalg.t) =
  (* Keyed by the canonical digest, not op_name: two ops sharing a name
     but differing in shape must not reuse each other's baseline. *)
  let key = Linalg.digest op in
  Util.Sharded_cache.find_or_compute t.base_cache key (fun () ->
      let nest = Lower.to_loop_nest op in
      Cost_model.seconds ~machine:t.machine ~iter_kinds:op.Linalg.iter_kinds
        nest)

let state_seconds t (state : Sched_state.t) =
  t.explored <- t.explored + 1;
  jitter t
    (Cost_model.seconds ~machine:t.machine
       ~iter_kinds:state.Sched_state.op.Linalg.iter_kinds
       ~packing_elements:state.Sched_state.packing_elements
       state.Sched_state.nest)

let measure t state =
  let base = base_seconds t state.Sched_state.original in
  let s = state_seconds t state in
  let cap = timeout_factor *. base in
  if s > cap then `Timeout cap else `Seconds s

let speedup t state =
  let base = base_seconds t state.Sched_state.original in
  match measure t state with
  | `Seconds s -> base /. s
  | `Timeout capped -> base /. capped

let schedule_speedup t op sched =
  Result.map (speedup t) (Sched_state.apply_all op sched)

let explored t = t.explored
let reset_explored t = t.explored <- 0
let set_explored t n = t.explored <- n
let noise_state t = Util.Rng.state t.noise_rng
let set_noise_state t s = Util.Rng.set_state t.noise_rng s
let cache_stats t = Util.Sharded_cache.stats t.base_cache
