type cache_stats = {
  base : Util.Sharded_cache.stats;
  state : Util.Sharded_cache.stats option;
  surrogate : Util.Sharded_cache.stats option;
}

type measure_hook = Sched_state.t -> seconds:float -> unit

type t = {
  machine : Machine.t;
  base_cache : (string, float) Util.Sharded_cache.t;
  state_cache : (string, float) Util.Sharded_cache.t option;
  mutable explored : int;
  noise : float;
  noise_rng : Util.Rng.t;
  (* Emulated hardware-measurement stall per state-seconds COMPUTATION
     (transposition-cache misses only — a cached measurement needs no
     re-measurement). The analytic cost model answers in microseconds,
     which no real deployment does; benches of parallel search scaling
     would otherwise measure this host's core count instead of how well
     the search overlaps measurement latency. Bit-invisible to every
     result: only wall-clock changes. 0 (off) by default. *)
  measure_delay_s : float;
  (* Physical-identity memo for [base_seconds]: a search evaluates
     thousands of candidates of the SAME original op, so the common case
     is the exact same [Linalg.t] value — skip even the digest+lookup.
     Per-fork (not shared), purely a wall-clock optimization. *)
  mutable base_memo : (Linalg.t * float) option;
  (* "|" ^ machine name, precomputed once for state_key. *)
  machine_suffix : string;
  (* Measurement tap: called once per state-seconds COMPUTATION with the
     pure, pre-jitter cost-model value — the surrogate's dataset logger
     installs itself here. With the transposition cache on, that is once
     per distinct (digest, kinds, packing, machine) key, so the log
     dedups for free; the hook never sees jitter and never perturbs the
     noise stream, so enabling it is bit-invisible to every consumer. *)
  mutable measure_hook : measure_hook option;
  (* A surrogate ranker's prediction-cache stats closure, attached so
     its counters surface through the one {!cache_stats} record (CLI
     stderr stats, serve /stats, Prometheus) instead of growing another
     ad-hoc stats path. A closure rather than the cache itself keeps
     the ranker's key type out of this interface. *)
  mutable surrogate_cache : (unit -> Util.Sharded_cache.stats) option;
}

let timeout_factor = 10.0
let default_cache_capacity = 4096
let default_state_cache_capacity = 65536

let create ?(machine = Machine.e5_2680_v4) ?(noise = 0.0) ?(noise_seed = 0)
    ?(cache_capacity = default_cache_capacity)
    ?(state_cache_capacity = default_state_cache_capacity)
    ?(measure_delay_s = 0.0) () =
  {
    machine;
    base_cache = Util.Sharded_cache.create ~capacity:cache_capacity ();
    state_cache =
      (if state_cache_capacity <= 0 then None
       else Some (Util.Sharded_cache.create ~capacity:state_cache_capacity ()));
    explored = 0;
    noise;
    noise_rng = Util.Rng.create noise_seed;
    measure_delay_s;
    base_memo = None;
    machine_suffix = "|" ^ machine.Machine.name;
    measure_hook = None;
    surrogate_cache = None;
  }

let fork t =
  (* Same machine and noise sigma, and the same (shared, domain-safe)
     caches — base times and pre-jitter state times are pure, so every
     fork may reuse them. The explored counter and jitter stream are
     per-fork: each parallel episode runs its own decorrelated noise
     stream and reports its explored delta for the trainer to merge. *)
  {
    machine = t.machine;
    base_cache = t.base_cache;
    state_cache = t.state_cache;
    explored = 0;
    noise = t.noise;
    noise_rng = Util.Rng.create 0;
    measure_delay_s = t.measure_delay_s;
    base_memo = None;
    machine_suffix = t.machine_suffix;
    (* Forks inherit the measurement tap (the dataset logger is
       mutex-protected) and the attached surrogate cache, like the
       other shared caches. *)
    measure_hook = t.measure_hook;
    surrogate_cache = t.surrogate_cache;
  }

let jitter t seconds =
  if t.noise <= 0.0 then seconds
  else seconds *. exp (t.noise *. Util.Rng.gaussian t.noise_rng)

let machine t = t.machine
let noise t = t.noise

let base_seconds t (op : Linalg.t) =
  match t.base_memo with
  | Some (memo_op, s) when memo_op == op -> s
  | _ ->
      (* Keyed by the canonical digest, not op_name: two ops sharing a
         name but differing in shape must not reuse each other's
         baseline. *)
      let key = Linalg.digest op in
      let s =
        Util.Sharded_cache.find_or_compute t.base_cache key (fun () ->
            let nest = Lower.to_loop_nest op in
            Cost_model.seconds ~machine:t.machine
              ~iter_kinds:op.Linalg.iter_kinds nest)
      in
      t.base_memo <- Some (op, s);
      s

(* The transposition cache memoizes the PURE part of a measurement —
   the cost-model seconds of (nest, iter kinds, packing, machine).
   Jitter is applied after the lookup and [explored] counts every
   logical call, so measurement noise streams, speedup values and
   paper-figure traces are byte-identical whether a call hits or
   misses; only wall-clock changes. The key leads with the O(1)
   structural digest maintained by {!Sched_state.apply}; iter kinds
   ride along because the cost model reads them through loop origins,
   which the nest digest records only as indices. *)
let state_key t (state : Sched_state.t) =
  let ik = state.Sched_state.op.Linalg.iter_kinds in
  let kinds =
    String.init (Array.length ik) (fun i ->
        match ik.(i) with
        | Linalg.Parallel_iter -> 'p'
        | Linalg.Reduction_iter -> 'r')
  in
  (* One-pass concat (no sprintf formatting machinery): this runs once
     per candidate on the search hot path. *)
  String.concat ""
    [
      Sched_state.digest state; "|"; kinds; "|";
      string_of_int state.Sched_state.packing_elements; t.machine_suffix;
    ]

let pure_state_seconds t (state : Sched_state.t) =
  let compute () =
    (* The sleep blocks only this domain's OS thread, so concurrent
       misses on distinct keys stall concurrently — which is exactly
       the overlap a parallel search buys on measurement-bound
       deployments. [find_or_compute] runs us outside the shard lock. *)
    if t.measure_delay_s > 0.0 then Unix.sleepf t.measure_delay_s;
    let s =
      Cost_model.seconds ~machine:t.machine
        ~iter_kinds:state.Sched_state.op.Linalg.iter_kinds
        ~packing_elements:state.Sched_state.packing_elements
        state.Sched_state.nest
    in
    (match t.measure_hook with None -> () | Some hook -> hook state ~seconds:s);
    s
  in
  match t.state_cache with
  | None -> compute ()
  | Some cache ->
      Util.Sharded_cache.find_or_compute cache (state_key t state) compute

let set_measure_hook t hook = t.measure_hook <- hook
let attach_surrogate_cache t stats = t.surrogate_cache <- Some stats

let state_seconds t (state : Sched_state.t) =
  t.explored <- t.explored + 1;
  (* Differential sanitizer (MLIR_RL_SANITIZE): every measurement path —
     train, autosched, serve — funnels through here, so this one hook
     covers them all. The digest-pair dedup inside sanitize_state keeps
     it to one interpretation per distinct transformed nest per process;
     when disabled the cost is a single atomic load. *)
  if Sanitizer.enabled () then ignore (Differential.sanitize_state state);
  jitter t (pure_state_seconds t state)

let measure t state =
  let base = base_seconds t state.Sched_state.original in
  let s = state_seconds t state in
  let cap = timeout_factor *. base in
  if s > cap then `Timeout cap else `Seconds s

let speedup t state =
  let base = base_seconds t state.Sched_state.original in
  match measure t state with
  | `Seconds s -> base /. s
  | `Timeout capped -> base /. capped

let schedule_speedup t op sched =
  Result.map (speedup t) (Sched_state.apply_all op sched)

let explored t = t.explored
let reset_explored t = t.explored <- 0
let set_explored t n = t.explored <- n
let noise_state t = Util.Rng.state t.noise_rng
let set_noise_state t s = Util.Rng.set_state t.noise_rng s

let cache_stats t =
  {
    base = Util.Sharded_cache.stats t.base_cache;
    state = Option.map Util.Sharded_cache.stats t.state_cache;
    surrogate = Option.map (fun stats -> stats ()) t.surrogate_cache;
  }

(* The tagged cache groups of a stats record, present-only — the single
   source both renderers (and serve's Prometheus dump) fold over. *)
let cache_stats_groups stats =
  [ ("base", Some stats.base); ("state", stats.state);
    ("surrogate", stats.surrogate) ]
  |> List.filter_map (fun (tag, s) -> Option.map (fun s -> (tag, s)) s)

let render_cache_stats stats =
  let one (tag, (s : Util.Sharded_cache.stats)) =
    let total = s.Util.Sharded_cache.hits + s.Util.Sharded_cache.misses in
    let rate =
      if total = 0 then 0.0
      else 100.0 *. float_of_int s.Util.Sharded_cache.hits /. float_of_int total
    in
    Printf.sprintf
      "%s %d/%d hits (%.1f%%, %d evictions, %d contended, %d live/%d cap)" tag
      s.Util.Sharded_cache.hits total rate s.Util.Sharded_cache.evictions
      s.Util.Sharded_cache.contention s.Util.Sharded_cache.size
      s.Util.Sharded_cache.capacity
  in
  let groups = List.map one (cache_stats_groups stats) in
  let groups =
    if stats.state = None then groups @ [ "state cache disabled" ] else groups
  in
  String.concat " | " groups

let render_cache_kv stats =
  String.concat " "
    (List.map
       (fun (tag, (s : Util.Sharded_cache.stats)) ->
         Printf.sprintf "eval_%s_hits=%d eval_%s_misses=%d eval_%s_contention=%d"
           tag s.Util.Sharded_cache.hits tag s.Util.Sharded_cache.misses tag
           s.Util.Sharded_cache.contention)
       (cache_stats_groups stats))
