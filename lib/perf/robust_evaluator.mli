(** Paper-style robust measurement on top of a flaky backend.

    The paper measures real execution times: every reported number is
    the aggregate of repeated runs, failed runs are retried, and a
    schedule whose measurement cannot be completed still needs a price.
    This module implements that discipline over {!Evaluator}, with an
    optional {!Faults} injector standing in for the unreliable world:

    - {b adaptive repeats}: measure at least [min_repeats] times and
      keep sampling (up to [max_repeats]) until the relative standard
      deviation drops below [stability_rsd], then aggregate by median
      or trimmed mean;
    - {b bounded retries}: transient failures (timeouts, compile
      failures, hangs, crashes) are retried up to [max_retries] times
      with exponential backoff, every pause charged to the simulated
      measurement clock;
    - {b graceful degradation}: when retries are exhausted the result
      falls back to the pure cost-model estimate and is flagged
      [Degraded] so the training loop can track how much of its signal
      was synthetic. *)

type aggregation = Median | Trimmed_mean of float

type config = {
  min_repeats : int;  (** samples required before aggregating *)
  max_repeats : int;  (** hard cap on samples per measurement *)
  stability_rsd : float;
      (** stop sampling once stddev/mean falls below this *)
  max_retries : int;  (** failure retries per measurement *)
  backoff_base : float;  (** seconds charged for the first retry pause *)
  backoff_factor : float;  (** exponential backoff multiplier *)
  hang_cap : float;  (** max seconds charged for a hung run *)
  aggregation : aggregation;
}

val default_config : config
(** 3..9 repeats to 5% stability, 4 retries with 1s/2x backoff, 60s
    hang cap, median aggregation. *)

val validate : config -> (unit, string) result

type quality =
  | Exact  (** aggregated from enough real samples *)
  | Degraded of string
      (** fell back to the cost-model estimate (or a partial sample
          set); the payload says why *)

type measurement = {
  seconds : float;  (** aggregated time, capped at the adaptive timeout *)
  timed_out : bool;  (** aggregate exceeded [timeout_factor *. base] *)
  quality : quality;
  samples : int;  (** successful runs aggregated *)
  retries : int;  (** failures retried *)
  charged : float;
      (** simulated wall-clock consumed: run times (capped), hang time
          and backoff pauses — what the caller should add to its
          measurement budget *)
}

type t

val create : ?config:config -> ?faults:Faults.t -> Evaluator.t -> t
(** Wrap an evaluator; without [faults] the backend never fails but
    repeats still smooth measurement noise. Raises [Invalid_argument]
    on an invalid config. *)

val fork : t -> t
(** Worker-local copy for parallel episode collection: same config, a
    {!Evaluator.fork}ed evaluator (shared base cache, fresh jitter
    stream), a {!Faults.fork}ed injector, zeroed counters, empty trace.
    The caller seeds the fork's noise/fault streams per episode and
    merges its counters back with {!absorb}. *)

val absorb : t -> measurements:int -> retries:int -> degraded:int -> unit
(** Add a fork's counter deltas to this instance (episode-merge step of
    the parallel trainer). The fork's trace is not merged. *)

val evaluator : t -> Evaluator.t
val faults : t -> Faults.t option
val config : t -> config

val base_seconds : t -> Linalg.t -> float
(** Baseline of the untransformed op (delegates to the evaluator's
    digest-keyed cache; never injected with faults, mirroring the
    paper's once-per-op baseline measurement). *)

val measure : t -> Sched_state.t -> measurement
(** Price one schedule state. Never raises: every failure mode ends in
    a retry, a timeout cap or a [Degraded] estimate. *)

val speedup : t -> Sched_state.t -> float
(** [base /. measured] using {!measure}; strictly positive. *)

val measurements : t -> int
(** Total {!measure} calls. *)

val degraded_count : t -> int
(** How many measurements were flagged [Degraded]. *)

val retry_count : t -> int
(** Total failure retries across all measurements. *)

val trace : t -> string list
(** One line per measurement in chronological order (samples, retries,
    charge, quality) — the replay log asserted identical across runs by
    the determinism smoke test. *)

val clear_trace : t -> unit
