type level_stats = { name : string; accesses : int; misses : int }

type level = {
  lv_name : string;
  n_sets : int;
  assoc : int;
  line_bytes : int;
  (* sets.(s) holds tags, most recently used first *)
  sets : int list array;
  mutable accesses : int;
  mutable misses : int;
}

type t = { levels : level list; base_addrs : (string, int) Hashtbl.t; mutable next_base : int }

let make_level name (c : Machine.cache) =
  let n_sets = max 1 (c.Machine.size_bytes / (c.Machine.line_bytes * c.Machine.assoc)) in
  {
    lv_name = name;
    n_sets;
    assoc = c.Machine.assoc;
    line_bytes = c.Machine.line_bytes;
    sets = Array.make n_sets [];
    accesses = 0;
    misses = 0;
  }

let create (m : Machine.t) =
  {
    levels =
      [ make_level "l1" m.Machine.l1; make_level "l2" m.Machine.l2; make_level "l3" m.Machine.l3 ];
    base_addrs = Hashtbl.create 8;
    next_base = 0;
  }

(* Probe one level; returns true on hit. On miss the line is installed
   with LRU replacement. *)
let probe level addr =
  let line = addr / level.line_bytes in
  let set_idx = line mod level.n_sets in
  let tag = line / level.n_sets in
  level.accesses <- level.accesses + 1;
  let set = level.sets.(set_idx) in
  if List.mem tag set then begin
    level.sets.(set_idx) <- tag :: List.filter (fun t -> t <> tag) set;
    true
  end
  else begin
    level.misses <- level.misses + 1;
    let set' = tag :: set in
    let set' =
      if List.length set' > level.assoc then
        List.filteri (fun i _ -> i < level.assoc) set'
      else set'
    in
    level.sets.(set_idx) <- set';
    false
  end

let buffer_base t buf ~bytes_needed =
  match Hashtbl.find_opt t.base_addrs buf with
  | Some base -> base
  | None ->
      let base = t.next_base in
      (* Page-align each buffer in its own region. *)
      let aligned = ((bytes_needed + 4095) / 4096 * 4096) + 4096 in
      t.next_base <- t.next_base + aligned;
      Hashtbl.add t.base_addrs buf base;
      base

let access t ~buf ~index ~elem_bytes =
  let base = buffer_base t buf ~bytes_needed:((index + 1) * elem_bytes) in
  let addr = base + (index * elem_bytes) in
  let rec go = function
    | [] -> ()
    | level :: rest -> if probe level addr then () else go rest
  in
  go t.levels

let stats t =
  List.map
    (fun l -> { name = l.lv_name; accesses = l.accesses; misses = l.misses })
    t.levels

let simulate_nest ?(machine = Machine.e5_2680_v4) (nest : Loop_nest.t) =
  match Loop_nest.validate nest with
  | Error msg -> Error msg
  | Ok () ->
      let sim = create machine in
      (* Pre-register buffers so address assignment is deterministic and
         covers the full extent of each buffer. *)
      List.iter
        (fun (name, shape) ->
          let bytes =
            Array.fold_left ( * ) 1 shape * machine.Machine.elem_bytes
          in
          ignore (buffer_base sim name ~bytes_needed:bytes))
        nest.Loop_nest.buffers;
      let rng = Util.Rng.create 17 in
      let inputs =
        List.map
          (fun (name, shape) ->
            let size = Array.fold_left ( * ) 1 shape in
            (name, Array.init size (fun _ -> Util.Rng.uniform rng)))
          nest.Loop_nest.buffers
      in
      let on_access (a : Interp.access) =
        access sim ~buf:a.Interp.acc_buf ~index:a.Interp.acc_index
          ~elem_bytes:machine.Machine.elem_bytes
      in
      let _ = Interp.run ~on_access nest ~inputs in
      Ok (nest.Loop_nest.name, stats sim)
