type aggregation = Median | Trimmed_mean of float

type config = {
  min_repeats : int;
  max_repeats : int;
  stability_rsd : float;
  max_retries : int;
  backoff_base : float;
  backoff_factor : float;
  hang_cap : float;
  aggregation : aggregation;
}

let default_config =
  {
    min_repeats = 3;
    max_repeats = 9;
    stability_rsd = 0.05;
    max_retries = 4;
    backoff_base = 1.0;
    backoff_factor = 2.0;
    hang_cap = 60.0;
    aggregation = Median;
  }

let validate c =
  if c.min_repeats < 1 then Error "min_repeats must be >= 1"
  else if c.max_repeats < c.min_repeats then
    Error "max_repeats must be >= min_repeats"
  else if c.stability_rsd < 0.0 then Error "stability_rsd must be >= 0"
  else if c.max_retries < 0 then Error "max_retries must be >= 0"
  else if c.backoff_base < 0.0 then Error "backoff_base must be >= 0"
  else if c.backoff_factor < 1.0 then Error "backoff_factor must be >= 1"
  else if c.hang_cap < 0.0 then Error "hang_cap must be >= 0"
  else
    match c.aggregation with
    | Trimmed_mean frac when frac < 0.0 || frac >= 0.5 ->
        Error "trimmed-mean fraction out of [0, 0.5)"
    | _ -> Ok ()

type quality = Exact | Degraded of string

type measurement = {
  seconds : float;
  timed_out : bool;
  quality : quality;
  samples : int;
  retries : int;
  charged : float;
}

type t = {
  config : config;
  ev : Evaluator.t;
  faults : Faults.t option;
  mutable measurements : int;
  mutable degraded : int;
  mutable total_retries : int;
  mutable trace : string list;  (* newest first *)
}

let create ?(config = default_config) ?faults ev =
  (match validate config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Robust_evaluator.create: " ^ e));
  {
    config;
    ev;
    faults;
    measurements = 0;
    degraded = 0;
    total_retries = 0;
    trace = [];
  }

let fork t =
  (* Worker-local copy for parallel rollouts: forked evaluator (shared
     base cache, fresh jitter stream), forked fault injector (caller
     seeds both), zeroed counters and an empty trace. The trainer merges
     counter deltas back with {!absorb} in deterministic episode order. *)
  {
    config = t.config;
    ev = Evaluator.fork t.ev;
    faults = Option.map Faults.fork t.faults;
    measurements = 0;
    degraded = 0;
    total_retries = 0;
    trace = [];
  }

let absorb t ~measurements ~retries ~degraded =
  t.measurements <- t.measurements + measurements;
  t.total_retries <- t.total_retries + retries;
  t.degraded <- t.degraded + degraded

let evaluator t = t.ev
let faults t = t.faults
let config t = t.config
let measurements t = t.measurements
let degraded_count t = t.degraded
let retry_count t = t.total_retries

let aggregate config xs =
  match config.aggregation with
  | Median -> Util.Stats.median xs
  | Trimmed_mean frac -> Util.Stats.trimmed_mean frac xs

(* The degradation fallback: the noiseless analytical estimate, exactly
   what the plain evaluator would report with jitter disabled. *)
let estimate_seconds t (state : Sched_state.t) =
  Cost_model.seconds
    ~machine:(Evaluator.machine t.ev)
    ~iter_kinds:state.Sched_state.op.Linalg.iter_kinds
    ~packing_elements:state.Sched_state.packing_elements
    state.Sched_state.nest

let base_seconds t op = Evaluator.base_seconds t.ev op

let measure t (state : Sched_state.t) =
  let cfg = t.config in
  t.measurements <- t.measurements + 1;
  let base = Evaluator.base_seconds t.ev state.Sched_state.original in
  let cap = Evaluator.timeout_factor *. base in
  let samples = ref [] in
  let n_samples = ref 0 in
  let retries = ref 0 in
  let charged = ref 0.0 in
  let exhausted = ref false in
  let last_failure = ref "" in
  let stable () =
    !n_samples >= cfg.min_repeats
    &&
    let m = Util.Stats.mean !samples in
    m > 0.0 && Util.Stats.stddev !samples /. m <= cfg.stability_rsd
  in
  let fail f =
    last_failure := Faults.to_string f;
    if !retries >= cfg.max_retries then exhausted := true
    else begin
      incr retries;
      t.total_retries <- t.total_retries + 1;
      (* Exponential backoff, charged to the simulated wall clock. *)
      charged :=
        !charged
        +. (cfg.backoff_base *. (cfg.backoff_factor ** float_of_int (!retries - 1)))
    end
  in
  while (not (stable ())) && !n_samples < cfg.max_repeats && not !exhausted do
    let fault = match t.faults with None -> None | Some f -> Faults.draw f in
    match fault with
    | None | Some (Faults.Latency_outlier _) ->
        let s = Evaluator.state_seconds t.ev state in
        let s =
          match fault with Some (Faults.Latency_outlier k) -> s *. k | _ -> s
        in
        (* A run is killed at the adaptive cap, so never charge above it. *)
        charged := !charged +. Float.min s cap;
        samples := s :: !samples;
        incr n_samples
    | Some (Faults.Transient_timeout as f) ->
        charged := !charged +. cap;
        fail f
    | Some (Faults.Hang h as f) ->
        charged := !charged +. Float.min h cfg.hang_cap;
        fail f
    | Some ((Faults.Compile_failure | Faults.Crash) as f) -> fail f
  done;
  let result =
    match !samples with
    | [] ->
        (* Retries exhausted with nothing measured: degrade gracefully
           to the pure cost-model estimate rather than aborting. *)
        t.degraded <- t.degraded + 1;
        let est = estimate_seconds t state in
        let timed_out = est > cap in
        {
          seconds = (if timed_out then cap else est);
          timed_out;
          quality = Degraded ("no samples: " ^ !last_failure);
          samples = 0;
          retries = !retries;
          charged = !charged;
        }
    | xs ->
        let agg = aggregate cfg xs in
        let timed_out = agg > cap in
        let quality =
          if !exhausted && !n_samples < cfg.min_repeats then begin
            t.degraded <- t.degraded + 1;
            Degraded
              (Printf.sprintf "only %d/%d samples: %s" !n_samples
                 cfg.min_repeats !last_failure)
          end
          else Exact
        in
        {
          seconds = (if timed_out then cap else agg);
          timed_out;
          quality;
          samples = !n_samples;
          retries = !retries;
          charged = !charged;
        }
  in
  let line =
    Printf.sprintf "#%d %s samples=%d retries=%d charged=%.6e seconds=%.6e%s"
      t.measurements
      (match result.quality with
      | Exact -> "ok"
      | Degraded why -> "degraded[" ^ why ^ "]")
      result.samples result.retries result.charged result.seconds
      (if result.timed_out then " TIMEOUT" else "")
  in
  t.trace <- line :: t.trace;
  result

let speedup t state =
  let base = Evaluator.base_seconds t.ev state.Sched_state.original in
  let m = measure t state in
  base /. m.seconds

let trace t = List.rev t.trace
let clear_trace t = t.trace <- []
