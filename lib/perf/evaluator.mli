(** Timing oracle over schedule states.

    The environment's stand-in for "compile and run": price a schedule
    state with the cost model, compute speedups against the untransformed
    op and enforce the paper's adaptive timeout (10x the base time maps
    to a capped, penalized measurement). *)

type t
(** An evaluator bound to a machine; caches base times per op and
    pre-jitter state times per nest digest (the transposition cache). *)

val create :
  ?machine:Machine.t ->
  ?noise:float ->
  ?noise_seed:int ->
  ?cache_capacity:int ->
  ?state_cache_capacity:int ->
  ?measure_delay_s:float ->
  unit ->
  t
(** Defaults to {!Machine.e5_2680_v4} and noiseless measurements.
    [noise] adds log-normal multiplicative jitter to every measurement
    (sigma of the log, e.g. 0.05 for ~5% timing noise) — real machines
    measure like this, and the paper's training signal carried such
    noise. Base times stay noiseless so speedups are jittered only
    through the measurement. [cache_capacity] bounds the base-time
    cache (default 4096 entries, FIFO eviction — an eviction only costs
    a recompute). [state_cache_capacity] bounds the state-seconds
    transposition cache, keyed by
    (nest digest, iter kinds, packing elements, machine); default
    65536 entries, [<= 0] disables it (the naive-reference mode the
    differential tests and benches compare against). The cache stores
    the pure pre-jitter cost-model value and jitter is applied after
    lookup, so results are bit-identical with the cache on or off.
    [measure_delay_s] emulates the hardware-measurement stall of a real
    deployment: every state-seconds computation (transposition-cache
    miss) sleeps that long before pricing, so parallel-search benches
    scale with how well the search overlaps measurement latency instead
    of with this host's core count — the same device the serve engine's
    [measure_delay_s] models at batch level. Cache hits stay instant
    and results are bit-identical with the delay on or off; 0 (off) by
    default. *)

val fork : t -> t
(** A worker-local evaluator for parallel rollouts: shares the (domain
    safe, sharded) base-time and state-seconds caches, copies machine
    and noise sigma, and starts a fresh explored counter and jitter
    stream. The caller is expected to seed the jitter stream via
    {!set_noise_state} and merge the fork's {!explored} delta back. *)

val machine : t -> Machine.t

val noise : t -> float
(** The jitter sigma this evaluator was created with. *)

val base_seconds : t -> Linalg.t -> float
(** Estimated time of the op with no transformation (cached). *)

val state_seconds : t -> Sched_state.t -> float
(** Estimated time of the current transformed nest, including the im2col
    packing charge. Memoized through the transposition cache (keyed by
    {!Sched_state.digest}): a state whose nest was already priced — by
    this evaluator or any fork sharing its caches — skips the cost
    model entirely. [explored] still counts every call and jitter is
    still drawn per call, so traces and noise streams are unchanged. *)

val timeout_factor : float
(** The paper's adaptive timeout: measurements above
    [timeout_factor *. base] are treated as timed out (10.0). *)

val measure : t -> Sched_state.t -> [ `Seconds of float | `Timeout of float ]
(** [measure t state] is [`Timeout capped] when the estimate exceeds the
    adaptive timeout, [`Seconds s] otherwise. *)

val speedup : t -> Sched_state.t -> float
(** [base /. measured], with timeouts evaluated at the cap (so a timeout
    yields [1. /. timeout_factor]). Always strictly positive. *)

val schedule_speedup : t -> Linalg.t -> Schedule.t -> (float, string) result
(** Apply a whole schedule and return its speedup. *)

val explored : t -> int
(** Number of [state_seconds]/[measure] calls so far — the "schedules
    explored" counter used by the Figure 6 search-efficiency bench. *)

val reset_explored : t -> unit

val set_explored : t -> int -> unit
(** Restore the explored counter (checkpoint resume). *)

val noise_state : t -> int64
(** State of the jitter stream, for checkpointing. *)

val set_noise_state : t -> int64 -> unit
(** Restore a jitter stream saved by {!noise_state}. *)

type measure_hook = Sched_state.t -> seconds:float -> unit
(** A tap on the state-seconds computation: receives the schedule state
    and the pure, pre-jitter cost-model seconds. *)

val set_measure_hook : t -> measure_hook option -> unit
(** Install (or clear) the measurement tap. The hook fires inside the
    transposition-cache miss path, so with the cache on it runs once
    per distinct (digest, iter kinds, packing, machine) key — the
    surrogate dataset logger gets a deduplicated stream for free. It
    must be fast and, if the evaluator is forked across domains,
    thread-safe; it never observes jitter and never perturbs the noise
    stream, so installing it is bit-invisible to all consumers. Forks
    inherit the hook. *)

val attach_surrogate_cache : t -> (unit -> Util.Sharded_cache.stats) -> unit
(** Attach a surrogate ranker's prediction-cache stats so its counters
    appear in {!cache_stats} (and hence CLI stderr stats, serve
    [/stats] and Prometheus) alongside the base/state caches. Takes a
    closure, not the cache, so rankers may key their cache however they
    like. Purely observational: the evaluator never touches the cache. *)

type cache_stats = {
  base : Util.Sharded_cache.stats;  (** base-time cache, keyed by op *)
  state : Util.Sharded_cache.stats option;
      (** state-seconds transposition cache; [None] when disabled *)
  surrogate : Util.Sharded_cache.stats option;
      (** attached surrogate prediction cache; [None] unless a ranker
          called {!attach_surrogate_cache} *)
}

val cache_stats : t -> cache_stats
(** Hit/miss/eviction counters of the caches. Forks share the caches,
    so the counters aggregate across all of them (and under parallel
    collection they depend on scheduling — report them on stderr or in
    metrics, never on determinism-checked stdout). *)

val cache_stats_groups :
  cache_stats -> (string * Util.Sharded_cache.stats) list
(** The present cache groups as [(tag, stats)] pairs, in fixed
    [base; state; surrogate] order — the single source every renderer
    (human, key=value, Prometheus) folds over. *)

val render_cache_stats : cache_stats -> string
(** One-line human-readable rendering of {!cache_stats} — what the CLI
    prints after [autoschedule]/[train] and serve exposes in stats. *)

val render_cache_kv : cache_stats -> string
(** [eval_<tag>_hits=N eval_<tag>_misses=N] pairs for each present
    cache, space-separated — the machine-readable form serve's
    [/stats] body embeds. *)
