(** Machine descriptions for the performance model.

    The default models the paper's testbed: a dual-socket 14-core Intel
    Xeon E5-2680 v4 (Broadwell, AVX2) at 2.4 GHz with 64 GB of RAM. *)

type cache = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;  (** ways; used by the trace-driven simulator *)
  latency_cycles : float;  (** cost of a hit at this level *)
}

type t = {
  name : string;
  cores : int;
  freq_ghz : float;
  vector_lanes : int;  (** f32 SIMD lanes (8 for AVX2) *)
  scalar_flops_per_cycle : float;  (** superscalar scalar FP throughput *)
  vector_flops_per_cycle : float;  (** peak vector FP throughput per core *)
  fma_latency_cycles : float;  (** loop-carried reduction chain cost *)
  load_ports : int;
  l1 : cache;
  l2 : cache;
  l3 : cache;  (** shared; [latency_cycles] is the average access cost *)
  mem_latency_cycles : float;
  single_core_bw_gbs : float;  (** streaming bandwidth one core can use *)
  total_bw_gbs : float;  (** machine-wide streaming bandwidth *)
  parallel_launch_cycles : float;  (** fork/join cost per parallel region *)
  parallel_efficiency : float;  (** fraction of linear scaling achieved *)
  elem_bytes : int;  (** f32 *)
}

val e5_2680_v4 : t
(** The paper's machine: 2 sockets x 14 cores. *)

val avx512_server : t
(** A wider modern server (36 cores, 16 f32 lanes, large L3) — used by
    the schedule-portability ablation. *)

val mobile_quad : t
(** A small 4-core mobile-class CPU with 128-bit SIMD and small caches. *)

val single_core : t -> t
(** Same machine restricted to one core (used for ablations). *)

val tiny_test_machine : t
(** Small caches and few cores, for unit tests that need cache effects to
    appear at toy problem sizes. *)

val line_elems : t -> cache -> int
(** Elements of the machine's scalar type per cache line. *)
