type cache = {
  size_bytes : int;
  line_bytes : int;
  assoc : int;
  latency_cycles : float;
}

type t = {
  name : string;
  cores : int;
  freq_ghz : float;
  vector_lanes : int;
  scalar_flops_per_cycle : float;
  vector_flops_per_cycle : float;
  fma_latency_cycles : float;
  load_ports : int;
  l1 : cache;
  l2 : cache;
  l3 : cache;
  mem_latency_cycles : float;
  single_core_bw_gbs : float;
  total_bw_gbs : float;
  parallel_launch_cycles : float;
  parallel_efficiency : float;
  elem_bytes : int;
}

let e5_2680_v4 =
  {
    name = "Intel Xeon E5-2680 v4 (2 sockets x 14 cores)";
    cores = 28;
    freq_ghz = 2.4;
    vector_lanes = 8;
    scalar_flops_per_cycle = 2.0;
    (* 2 FMA ports x 8 f32 lanes x 2 flops *)
    vector_flops_per_cycle = 32.0;
    fma_latency_cycles = 5.0;
    load_ports = 2;
    l1 = { size_bytes = 32 * 1024; line_bytes = 64; assoc = 8; latency_cycles = 4.0 };
    l2 = { size_bytes = 256 * 1024; line_bytes = 64; assoc = 8; latency_cycles = 12.0 };
    l3 =
      {
        size_bytes = 35 * 1024 * 1024;
        line_bytes = 64;
        assoc = 20;
        latency_cycles = 42.0;
      };
    mem_latency_cycles = 180.0;
    single_core_bw_gbs = 12.0;
    total_bw_gbs = 60.0;
    parallel_launch_cycles = 12000.0;
    parallel_efficiency = 0.9;
    elem_bytes = 4;
  }

let avx512_server =
  {
    name = "36-core AVX-512 server";
    cores = 36;
    freq_ghz = 2.8;
    vector_lanes = 16;
    scalar_flops_per_cycle = 2.0;
    vector_flops_per_cycle = 64.0;
    fma_latency_cycles = 4.0;
    load_ports = 2;
    l1 = { size_bytes = 48 * 1024; line_bytes = 64; assoc = 12; latency_cycles = 5.0 };
    l2 = { size_bytes = 1024 * 1024; line_bytes = 64; assoc = 16; latency_cycles = 14.0 };
    l3 =
      {
        size_bytes = 54 * 1024 * 1024;
        line_bytes = 64;
        assoc = 12;
        latency_cycles = 50.0;
      };
    mem_latency_cycles = 220.0;
    single_core_bw_gbs = 18.0;
    total_bw_gbs = 140.0;
    parallel_launch_cycles = 15000.0;
    parallel_efficiency = 0.88;
    elem_bytes = 4;
  }

let mobile_quad =
  {
    name = "4-core mobile CPU (128-bit SIMD)";
    cores = 4;
    freq_ghz = 2.0;
    vector_lanes = 4;
    scalar_flops_per_cycle = 2.0;
    vector_flops_per_cycle = 16.0;
    fma_latency_cycles = 4.0;
    load_ports = 2;
    l1 = { size_bytes = 64 * 1024; line_bytes = 64; assoc = 4; latency_cycles = 3.0 };
    l2 = { size_bytes = 512 * 1024; line_bytes = 64; assoc = 8; latency_cycles = 12.0 };
    l3 =
      {
        size_bytes = 4 * 1024 * 1024;
        line_bytes = 64;
        assoc = 16;
        latency_cycles = 35.0;
      };
    mem_latency_cycles = 150.0;
    single_core_bw_gbs = 8.0;
    total_bw_gbs = 18.0;
    parallel_launch_cycles = 8000.0;
    parallel_efficiency = 0.92;
    elem_bytes = 4;
  }

let single_core m = { m with cores = 1; total_bw_gbs = m.single_core_bw_gbs }

let tiny_test_machine =
  {
    name = "tiny-test";
    cores = 4;
    freq_ghz = 1.0;
    vector_lanes = 4;
    scalar_flops_per_cycle = 1.0;
    vector_flops_per_cycle = 8.0;
    fma_latency_cycles = 4.0;
    load_ports = 2;
    l1 = { size_bytes = 1024; line_bytes = 64; assoc = 2; latency_cycles = 2.0 };
    l2 = { size_bytes = 8 * 1024; line_bytes = 64; assoc = 4; latency_cycles = 8.0 };
    l3 = { size_bytes = 64 * 1024; line_bytes = 64; assoc = 8; latency_cycles = 24.0 };
    mem_latency_cycles = 100.0;
    single_core_bw_gbs = 2.0;
    total_bw_gbs = 6.0;
    parallel_launch_cycles = 1000.0;
    parallel_efficiency = 0.9;
    elem_bytes = 4;
  }

let line_elems m c = c.line_bytes / m.elem_bytes
