(** Analytical performance model.

    Substitutes for the paper's real executions on the Xeon testbed. The
    model prices a transformed loop nest by combining:

    - a locality analysis per memory reference: distinct cache lines
      touched (bounding-box extents with spatial merging in the last
      array dimension) multiplied by re-streaming factors for outer loops
      the reference does not depend on, whenever the inner working set
      exceeds a cache level — this is what rewards tiling and
      interchange;
    - an issue model per innermost iteration (FP throughput, load/store
      ports, SIMD lanes with a contiguity check, and the loop-carried
      reduction dependence chain) — this is what rewards vectorization
      and penalizes reductions left innermost without SIMD;
    - parallel scaling with load imbalance, fork/join launch overhead and
      a shared-bandwidth ceiling — this is what rewards (and bounds)
      parallelization;
    - a streamed packing charge for im2col.

    The output is deterministic, which stands in for the paper's median
    of repeated timings. *)

type level_traffic = {
  level : string;  (** "l1", "l2", "l3", "mem" *)
  miss_lines : float;  (** lines fetched into this level *)
  cycles : float;  (** single-thread cycles charged for them *)
}

type report = {
  seconds : float;  (** end-to-end estimated execution time *)
  compute_cycles : float;  (** single-thread issue/dependence cycles *)
  traffic : level_traffic list;
  parallel_factor : float;  (** effective speedup applied to core work *)
  launches : int;  (** number of parallel-region forks *)
  packing_seconds : float;  (** im2col column-matrix materialization *)
  vectorized : bool;
  vector_efficiency : float;  (** 0 when not vectorized *)
}

val estimate :
  machine:Machine.t ->
  iter_kinds:Linalg.iter_kind array ->
  ?packing_elements:int ->
  Loop_nest.t ->
  report
(** [estimate ~machine ~iter_kinds nest] prices one execution of [nest].
    [iter_kinds] gives the parallel/reduction kind of each original
    iteration dim, indexed by the loops' [origin] fields. *)

val seconds :
  machine:Machine.t ->
  iter_kinds:Linalg.iter_kind array ->
  ?packing_elements:int ->
  Loop_nest.t ->
  float
(** [seconds] is [(estimate ...).seconds]. *)

val fit_fraction : float
(** Fraction of a cache level the working set may occupy before the
    model considers it evicted across re-entries (0.5). *)

val prefetch_discount : float
(** Multiplier applied to latency charges of hardware-prefetchable
    (last-dimension-contiguous) streams. *)
