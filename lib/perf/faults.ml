type fault =
  | Transient_timeout
  | Compile_failure
  | Latency_outlier of float
  | Hang of float
  | Crash

type config = {
  transient_timeout_prob : float;
  compile_failure_prob : float;
  outlier_prob : float;
  outlier_scale : float;
  hang_prob : float;
  hang_seconds : float;
  crash_prob : float;
  crash_on_call : int option;
}

let none =
  {
    transient_timeout_prob = 0.0;
    compile_failure_prob = 0.0;
    outlier_prob = 0.0;
    outlier_scale = 3.0;
    hang_prob = 0.0;
    hang_seconds = 30.0;
    crash_prob = 0.0;
    crash_on_call = None;
  }

let flaky ?(rate = 0.1) () =
  {
    none with
    transient_timeout_prob = rate *. 0.4;
    compile_failure_prob = rate *. 0.3;
    hang_prob = rate *. 0.3;
    outlier_prob = rate *. 0.5;
  }

let validate c =
  let probs =
    [
      ("transient_timeout_prob", c.transient_timeout_prob);
      ("compile_failure_prob", c.compile_failure_prob);
      ("outlier_prob", c.outlier_prob);
      ("hang_prob", c.hang_prob);
      ("crash_prob", c.crash_prob);
    ]
  in
  match List.find_opt (fun (_, p) -> p < 0.0 || p > 1.0) probs with
  | Some (name, _) -> Error (name ^ " must be in [0, 1]")
  | None ->
      let total =
        c.transient_timeout_prob +. c.compile_failure_prob +. c.outlier_prob
        +. c.hang_prob +. c.crash_prob
      in
      if total > 1.0 then Error "fault probabilities sum above 1"
      else if c.outlier_scale < 0.0 then Error "outlier_scale must be >= 0"
      else if c.hang_seconds < 0.0 then Error "hang_seconds must be >= 0"
      else Ok ()

type t = { config : config; rng : Util.Rng.t; mutable calls : int }

let create ?(config = none) ~seed () =
  (match validate config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Faults.create: " ^ e));
  { config; rng = Util.Rng.create seed; calls = 0 }

let config t = t.config
let calls t = t.calls

let fork t =
  (* Same fault mix, fresh stream position: parallel episodes each get
     their own deterministic fault sequence (the trainer seeds it from
     the episode's derived rng). [crash_on_call] counts per fork. *)
  { config = t.config; rng = Util.Rng.create 0; calls = 0 }

let draw t =
  t.calls <- t.calls + 1;
  (* Exactly two uniforms per call regardless of outcome, so the stream
     stays aligned and a replay with the same seed reproduces the exact
     fault sequence. *)
  let u = Util.Rng.uniform t.rng in
  let mag = Util.Rng.uniform t.rng in
  match t.config.crash_on_call with
  | Some n when t.calls = n -> Some Crash
  | _ ->
      let c = t.config in
      let t0 = c.crash_prob in
      let t1 = t0 +. c.transient_timeout_prob in
      let t2 = t1 +. c.compile_failure_prob in
      let t3 = t2 +. c.hang_prob in
      let t4 = t3 +. c.outlier_prob in
      if u < t0 then Some Crash
      else if u < t1 then Some Transient_timeout
      else if u < t2 then Some Compile_failure
      else if u < t3 then Some (Hang (c.hang_seconds *. (0.5 +. mag)))
      else if u < t4 then
        (* Pareto tail (alpha = 1.5): rare but heavy latency outliers. *)
        Some
          (Latency_outlier
             (1.0 +. (c.outlier_scale *. (((1.0 -. mag) ** (-2.0 /. 3.0)) -. 1.0))))
      else None

let to_string = function
  | Transient_timeout -> "transient-timeout"
  | Compile_failure -> "compile-failure"
  | Latency_outlier k -> Printf.sprintf "latency-outlier(x%.2f)" k
  | Hang s -> Printf.sprintf "hang(%.1fs)" s
  | Crash -> "crash"

let state t = (Util.Rng.state t.rng, t.calls)

let restore t (s, n) =
  Util.Rng.set_state t.rng s;
  t.calls <- n
