type fault =
  | Transient_timeout
  | Compile_failure
  | Latency_outlier of float
  | Hang of float
  | Crash

type config = {
  transient_timeout_prob : float;
  compile_failure_prob : float;
  outlier_prob : float;
  outlier_scale : float;
  hang_prob : float;
  hang_seconds : float;
  crash_prob : float;
  crash_on_call : int option;
}

let none =
  {
    transient_timeout_prob = 0.0;
    compile_failure_prob = 0.0;
    outlier_prob = 0.0;
    outlier_scale = 3.0;
    hang_prob = 0.0;
    hang_seconds = 30.0;
    crash_prob = 0.0;
    crash_on_call = None;
  }

let flaky ?(rate = 0.1) () =
  {
    none with
    transient_timeout_prob = rate *. 0.4;
    compile_failure_prob = rate *. 0.3;
    hang_prob = rate *. 0.3;
    outlier_prob = rate *. 0.5;
  }

let validate c =
  let probs =
    [
      ("transient_timeout_prob", c.transient_timeout_prob);
      ("compile_failure_prob", c.compile_failure_prob);
      ("outlier_prob", c.outlier_prob);
      ("hang_prob", c.hang_prob);
      ("crash_prob", c.crash_prob);
    ]
  in
  match List.find_opt (fun (_, p) -> p < 0.0 || p > 1.0) probs with
  | Some (name, _) -> Error (name ^ " must be in [0, 1]")
  | None ->
      let total =
        c.transient_timeout_prob +. c.compile_failure_prob +. c.outlier_prob
        +. c.hang_prob +. c.crash_prob
      in
      if total > 1.0 then Error "fault probabilities sum above 1"
      else if c.outlier_scale < 0.0 then Error "outlier_scale must be >= 0"
      else if c.hang_seconds < 0.0 then Error "hang_seconds must be >= 0"
      else Ok ()

type t = { config : config; rng : Util.Rng.t; mutable calls : int }

let create ?(config = none) ~seed () =
  (match validate config with
  | Ok () -> ()
  | Error e -> invalid_arg ("Faults.create: " ^ e));
  { config; rng = Util.Rng.create seed; calls = 0 }

let config t = t.config
let calls t = t.calls

let fork t =
  (* Same fault mix, fresh stream position: parallel episodes each get
     their own deterministic fault sequence (the trainer seeds it from
     the episode's derived rng). [crash_on_call] counts per fork. *)
  { config = t.config; rng = Util.Rng.create 0; calls = 0 }

let draw t =
  t.calls <- t.calls + 1;
  (* Exactly two uniforms per call regardless of outcome, so the stream
     stays aligned and a replay with the same seed reproduces the exact
     fault sequence. *)
  let u = Util.Rng.uniform t.rng in
  let mag = Util.Rng.uniform t.rng in
  match t.config.crash_on_call with
  | Some n when t.calls = n -> Some Crash
  | _ ->
      let c = t.config in
      let t0 = c.crash_prob in
      let t1 = t0 +. c.transient_timeout_prob in
      let t2 = t1 +. c.compile_failure_prob in
      let t3 = t2 +. c.hang_prob in
      let t4 = t3 +. c.outlier_prob in
      if u < t0 then Some Crash
      else if u < t1 then Some Transient_timeout
      else if u < t2 then Some Compile_failure
      else if u < t3 then Some (Hang (c.hang_seconds *. (0.5 +. mag)))
      else if u < t4 then
        (* Pareto tail (alpha = 1.5): rare but heavy latency outliers. *)
        Some
          (Latency_outlier
             (1.0 +. (c.outlier_scale *. (((1.0 -. mag) ** (-2.0 /. 3.0)) -. 1.0))))
      else None

let to_string = function
  | Transient_timeout -> "transient-timeout"
  | Compile_failure -> "compile-failure"
  | Latency_outlier k -> Printf.sprintf "latency-outlier(x%.2f)" k
  | Hang s -> Printf.sprintf "hang(%.1fs)" s
  | Crash -> "crash"

let state t = (Util.Rng.state t.rng, t.calls)

let restore t (s, n) =
  Util.Rng.set_state t.rng s;
  t.calls <- n

(* ---------- serving-side chaos ---------- *)

type chaos_action =
  | Kill_replica
  | Stall of float
  | Garble

type chaos_event = { at_s : float; replica : int; action : chaos_action }

let chaos_action_to_string = function
  | Kill_replica -> "kill"
  | Stall s -> Printf.sprintf "stall(%.2fs)" s
  | Garble -> "garble"

let chaos_event_to_string e =
  Printf.sprintf "t=%.3fs replica=%d %s" e.at_s e.replica
    (chaos_action_to_string e.action)

(* Poisson process over the union of the three action rates: draw
   exponential interarrivals at the total rate, then attribute each
   event to an action proportionally. Exactly four uniforms per event
   whatever the outcome, so plans replay bit-identically from the
   seed. *)
let chaos_plan ~seed ~replicas ~duration_s ?(kill_rate = 0.5)
    ?(stall_rate = 0.0) ?(garble_rate = 0.0) ?(stall_seconds = 0.5) () =
  if replicas < 1 then invalid_arg "Faults.chaos_plan: replicas < 1";
  if duration_s < 0.0 then invalid_arg "Faults.chaos_plan: duration_s < 0";
  if kill_rate < 0.0 || stall_rate < 0.0 || garble_rate < 0.0 then
    invalid_arg "Faults.chaos_plan: negative rate";
  if stall_seconds < 0.0 then invalid_arg "Faults.chaos_plan: stall_seconds < 0";
  let total = kill_rate +. stall_rate +. garble_rate in
  if total <= 0.0 then []
  else begin
    let rng = Util.Rng.create seed in
    let rec go now acc =
      let u_dt = Util.Rng.uniform rng in
      let u_pick = Util.Rng.uniform rng in
      let u_replica = Util.Rng.uniform rng in
      let u_mag = Util.Rng.uniform rng in
      let now = now -. (log (Float.max 1e-12 (1.0 -. u_dt)) /. total) in
      if now >= duration_s then List.rev acc
      else
        let replica =
          Stdlib.min (replicas - 1) (int_of_float (u_replica *. float_of_int replicas))
        in
        let pick = u_pick *. total in
        let action =
          if pick < kill_rate then Kill_replica
          else if pick < kill_rate +. stall_rate then
            Stall (stall_seconds *. (0.5 +. u_mag))
          else Garble
        in
        go now ({ at_s = now; replica; action } :: acc)
    in
    go 0.0 []
  end
