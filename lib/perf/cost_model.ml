type level_traffic = { level : string; miss_lines : float; cycles : float }

type report = {
  seconds : float;
  compute_cycles : float;
  traffic : level_traffic list;
  parallel_factor : float;
  launches : int;
  packing_seconds : float;
  vectorized : bool;
  vector_efficiency : float;
}

let fit_fraction = 0.5
let prefetch_discount = 0.2

(* Per-iteration branch/index-arithmetic overhead of scalar loops; the
   vectorizer amortizes it across lanes. *)
let scalar_loop_overhead_cycles = 1.0

(* A deduplicated memory reference of the nest body. References that
   share coefficient structure and differ only in constant offsets
   (unrolled copies, neighbouring stencil taps) are merged: their
   footprints overlap almost entirely, so we keep one representative and
   fold the constant spread into the per-dimension extents. *)
type ref_info = {
  shape : int array;
  idx : Affine.expr array;
  deps : bool array;  (* per loop: does the subscript use it? *)
  const_spread : int array;  (* max - min constant per array dim *)
  count : int;  (* occurrences in the body (loads + stores) *)
}

let gather_refs (nest : Loop_nest.t) =
  let n = Loop_nest.n_loops nest in
  let tbl = Hashtbl.create 16 in
  let add (r : Loop_nest.mem_ref) =
    let key = (r.buf, Array.map (fun (e : Affine.expr) -> e.coeffs) r.idx) in
    let consts = Array.map (fun (e : Affine.expr) -> e.const) r.idx in
    match Hashtbl.find_opt tbl key with
    | Some (info, lo, hi) ->
        let lo = Array.map2 min lo consts and hi = Array.map2 max hi consts in
        Hashtbl.replace tbl key ({ info with count = info.count + 1 }, lo, hi)
    | None ->
        let shape = Loop_nest.buffer_shape nest r.buf in
        let deps =
          Array.init n (fun d ->
              Array.exists (fun (e : Affine.expr) -> e.coeffs.(d) <> 0) r.idx)
        in
        Hashtbl.replace tbl key
          ( { shape; idx = r.idx; deps; const_spread = Array.map (fun _ -> 0) consts; count = 1 },
            consts,
            Array.copy consts )
  in
  List.iter add (Loop_nest.loads_of_body nest);
  List.iter add (Loop_nest.stores_of_body nest);
  Hashtbl.fold
    (fun _ (info, lo, hi) acc ->
      { info with const_spread = Array.map2 (fun h l -> h - l) hi lo } :: acc)
    tbl []

(* Bounding-box extent of array dim [d] when loops [from_depth..n-1]
   iterate fully and the others are fixed. *)
let dim_extent (r : ref_info) trips ~from_depth d =
  let e = r.idx.(d) in
  let ext = ref (1 + r.const_spread.(d)) in
  Array.iteri
    (fun l c ->
      if l >= from_depth && c <> 0 then ext := !ext + (abs c * (trips.(l) - 1)))
    e.Affine.coeffs;
  min !ext r.shape.(d)

(* True when the last array dimension is traversed densely by some loop
   in the region, enabling spatial line reuse. A merged group with
   constant spread s and coefficient c covers offsets {0..s} every c
   elements, so it is dense whenever |c| <= s + 1 (e.g. plain unit
   stride, or an 8-way unrolled stride-8 access). *)
let dense_last_dim (r : ref_info) ~from_depth =
  let last = Array.length r.idx - 1 in
  if last < 0 then false
  else
    let e = r.idx.(last) in
    let max_step = r.const_spread.(last) + 1 in
    let dense = ref false in
    Array.iteri
      (fun l c ->
        if l >= from_depth && abs c >= 1 && abs c <= max_step then dense := true)
      e.Affine.coeffs;
    !dense

let distinct_lines machine (r : ref_info) trips ~from_depth =
  let nd = Array.length r.shape in
  if nd = 0 then 1.0
  else begin
    let elems_per_line =
      machine.Machine.l1.Machine.line_bytes / machine.Machine.elem_bytes
    in
    let last_extent = dim_extent r trips ~from_depth (nd - 1) in
    let last_lines =
      if dense_last_dim r ~from_depth then
        float_of_int
          ((last_extent + elems_per_line - 1) / elems_per_line)
      else float_of_int last_extent
    in
    let other = ref 1.0 in
    for d = 0 to nd - 2 do
      other := !other *. float_of_int (dim_extent r trips ~from_depth d)
    done;
    Float.max 1.0 (!other *. last_lines)
  end

(* Reuse tables shared by every cache level of one estimate: per
   reference, its distinct lines at every region depth (lines.(d) for
   loops d..n-1 iterating), and per depth the total working-set bytes.
   Previously each of the three cache-level charges recomputed both
   ([footprint_bytes] per depth, plus the depth-0 lines per reference)
   — the one-pass tables make [estimate] hash the memory behaviour of
   the gathered references exactly once. The fold over [refs] keeps the
   reference order and the per-term expression of the old
   [footprint_bytes], so the float sums are bit-identical. *)
type reuse_tables = {
  ref_lines : (ref_info * float array) list;  (* gather_refs order *)
  footprints : float array;  (* bytes of the region at each depth *)
}

let reuse_tables machine refs trips =
  let n = Array.length trips in
  let ref_lines =
    List.map
      (fun r ->
        (r, Array.init (n + 1) (fun d -> distinct_lines machine r trips ~from_depth:d)))
      refs
  in
  let line_bytes = float_of_int machine.Machine.l1.Machine.line_bytes in
  let footprints =
    Array.init (n + 1) (fun d ->
        List.fold_left
          (fun acc (_, lines) -> acc +. (lines.(d) *. line_bytes))
          0.0 ref_lines)
  in
  { ref_lines; footprints }

(* Miss lines brought into a cache of [capacity] bytes: the distinct
   lines of each reference, re-streamed across every outer loop the
   reference does not depend on whenever the working set inside that
   loop exceeds the cache. *)
let miss_lines tables trips ~capacity =
  let n = Array.length trips in
  (* fits.(d): working set of loops d..n-1 fits comfortably. *)
  let fits =
    Array.init (n + 1) (fun d ->
        tables.footprints.(d) <= fit_fraction *. float_of_int capacity)
  in
  List.map
    (fun (r, lines) ->
      let base = lines.(0) in
      let factor = ref 1.0 in
      for d = 0 to n - 1 do
        if (not r.deps.(d)) && not fits.(d + 1) then
          factor := !factor *. float_of_int trips.(d)
      done;
      (r, base *. !factor))
    tables.ref_lines

(* A reference whose innermost-varying traversal is last-dim contiguous
   benefits from hardware prefetching. *)
let is_streaming (r : ref_info) =
  let nd = Array.length r.idx in
  if nd = 0 then true
  else
    let last = r.idx.(nd - 1) in
    let max_step = r.const_spread.(nd - 1) + 1 in
    Array.exists (fun c -> abs c >= 1 && abs c <= max_step) last.Affine.coeffs

let flops_of_body (nest : Loop_nest.t) =
  let rec count (e : Loop_nest.sexpr) =
    match e with
    | Loop_nest.Load _ | Loop_nest.Const _ -> 0
    | Loop_nest.Binop (_, a, b) -> 1 + count a + count b
    | Loop_nest.Unop (_, a) -> 1 + count a
  in
  List.fold_left
    (fun acc (Loop_nest.Store (_, e)) -> acc + count e)
    0 nest.Loop_nest.body

let mem_ops_of_body (nest : Loop_nest.t) =
  List.length (Loop_nest.loads_of_body nest)
  + List.length (Loop_nest.stores_of_body nest)

(* Flat element stride of [r] when loop [d] advances by one. *)
let stride_wrt (r : ref_info) d =
  let nd = Array.length r.shape in
  let strides = Array.make nd 1 in
  for i = nd - 2 downto 0 do
    strides.(i) <- strides.(i + 1) * r.shape.(i + 1)
  done;
  let s = ref 0 in
  Array.iteri
    (fun i (e : Affine.expr) -> s := !s + (e.coeffs.(d) * strides.(i)))
    r.idx;
  !s

let estimate ~machine ~(iter_kinds : Linalg.iter_kind array)
    ?(packing_elements = 0) (nest : Loop_nest.t) =
  let open Machine in
  let n = Loop_nest.n_loops nest in
  let trips = Loop_nest.trip_counts nest in
  let total_iters =
    Array.fold_left (fun acc t -> acc *. float_of_int t) 1.0 trips
  in
  let refs = gather_refs nest in
  (* --- vectorization --- *)
  let vectorized = n > 0 && nest.loops.(n - 1).Loop_nest.kind = Loop_nest.Vector in
  let vec_trip = if n > 0 then trips.(n - 1) else 1 in
  let contiguous =
    (not vectorized)
    || List.for_all
         (fun r ->
           if not r.deps.(n - 1) then true
           else abs (stride_wrt r (n - 1)) <= 1)
         refs
  in
  let vec_eff =
    if not vectorized then 0.0
    else
      let lane_fill =
        Float.min 1.0
          (float_of_int vec_trip /. float_of_int machine.vector_lanes)
      in
      lane_fill *. if contiguous then 1.0 else 0.3
  in
  (* --- issue model --- *)
  let flops = float_of_int (flops_of_body nest) in
  let mem_ops =
    if not vectorized then float_of_int (mem_ops_of_body nest)
    else begin
      (* Vectorized code hoists loop-invariant operands out of the vector
         loop, and keeps the accumulator in registers across an adjacent
         inner reduction loop (unroll-and-jam). *)
      let stores = Loop_nest.stores_of_body nest in
      let store_bufs =
        List.map (fun (r : Loop_nest.mem_ref) -> r.Loop_nest.buf) stores
      in
      let dep_on (r : Loop_nest.mem_ref) d =
        Array.exists (fun (e : Affine.expr) -> e.coeffs.(d) <> 0) r.idx
      in
      let reduction_at d =
        d >= 0
        &&
        let origin = nest.loops.(d).Loop_nest.origin in
        origin < Array.length iter_kinds
        && iter_kinds.(origin) = Linalg.Reduction_iter
      in
      let cost_of (r : Loop_nest.mem_ref) =
        if not (dep_on r (n - 1)) then 1.0 /. float_of_int vec_trip
        else if
          List.mem r.Loop_nest.buf store_bufs
          && n >= 2
          && reduction_at (n - 2)
          && not (dep_on r (n - 2))
        then 1.0 /. float_of_int trips.(n - 2)
        else 1.0
      in
      List.fold_left
        (fun acc r -> acc +. cost_of r)
        0.0
        (Loop_nest.loads_of_body nest @ stores)
    end
  in
  let flop_rate =
    if vectorized then Float.max machine.scalar_flops_per_cycle
        (machine.vector_flops_per_cycle *. vec_eff)
    else machine.scalar_flops_per_cycle
  in
  let load_rate =
    float_of_int machine.load_ports
    *.
    if vectorized then Float.max 1.0 (float_of_int machine.vector_lanes *. vec_eff)
    else 1.0
  in
  let issue = Float.max (flops /. flop_rate) (mem_ops /. load_rate) in
  (* Loop-carried reduction chain: innermost loop iterating a reduction
     dim serializes the accumulator updates. *)
  let innermost_is_reduction =
    n > 0
    &&
    let origin = nest.loops.(n - 1).Loop_nest.origin in
    origin < Array.length iter_kinds
    && iter_kinds.(origin) = Linalg.Reduction_iter
  in
  (* Body replication from unrolling: several stores to the same ref
     mean the accumulator is register-promoted across the unrolled copies
     (one memory round-trip per iteration instead of one per copy). *)
  let replication =
    let stores = Loop_nest.stores_of_body nest in
    let distinct =
      List.sort_uniq compare
        (List.map
           (fun (r : Loop_nest.mem_ref) ->
             ( r.Loop_nest.buf,
               Array.map (fun (e : Affine.expr) -> (e.coeffs, e.const)) r.idx ))
           stores)
    in
    max 1 (List.length stores / max 1 (List.length distinct))
  in
  let chain =
    if innermost_is_reduction && flops > 0.0 then
      if vectorized then
        (* The vectorizer promotes the accumulator to a vector register;
           the carried dependence costs one FMA latency per vector. *)
        machine.fma_latency_cycles /. float_of_int machine.vector_lanes
      else
        (* Unvectorized structured-op code round-trips the accumulator
           through memory every iteration: load-to-use plus FMA plus
           store-to-load forwarding serialize. Unrolled copies keep the
           accumulator in a register between them. *)
        (machine.fma_latency_cycles *. float_of_int replication)
        +. (2.0 *. machine.l1.latency_cycles)
    else 0.0
  in
  let overhead =
    scalar_loop_overhead_cycles
    /. if vectorized then Float.max 1.0 (float_of_int machine.vector_lanes *. vec_eff)
       else 1.0
  in
  let cycles_per_iter = Float.max issue chain +. overhead in
  let compute_cycles = total_iters *. cycles_per_iter in
  (* --- memory hierarchy traffic --- *)
  let tables = reuse_tables machine refs trips in
  let charge ~capacity ~next_latency =
    let per_ref = miss_lines tables trips ~capacity in
    List.fold_left
      (fun (lines, cycles) (r, l) ->
        let discount = if is_streaming r then prefetch_discount else 1.0 in
        (lines +. l, cycles +. (l *. next_latency *. discount)))
      (0.0, 0.0) per_ref
  in
  let l1_lines, l1_cycles =
    charge ~capacity:machine.l1.size_bytes
      ~next_latency:machine.l2.latency_cycles
  in
  let l2_lines, l2_cycles =
    charge ~capacity:machine.l2.size_bytes
      ~next_latency:machine.l3.latency_cycles
  in
  let l3_lines, l3_cycles =
    charge ~capacity:machine.l3.size_bytes
      ~next_latency:machine.mem_latency_cycles
  in
  (* Streaming DRAM floor: bytes cannot move faster than bandwidth. *)
  let mem_bytes = l3_lines *. float_of_int machine.l1.line_bytes in
  let freq = machine.freq_ghz *. 1e9 in
  let mem_seconds_lat = l3_cycles /. freq in
  let mem_seconds_bw = mem_bytes /. (machine.single_core_bw_gbs *. 1e9) in
  let mem_seconds_single = Float.max mem_seconds_lat mem_seconds_bw in
  let cache_cycles = l1_cycles +. l2_cycles in
  (* --- parallelism --- *)
  let par_iters =
    Array.fold_left
      (fun acc (l : Loop_nest.loop) ->
        if l.Loop_nest.kind = Loop_nest.Parallel then acc * l.Loop_nest.ub
        else acc)
      1 nest.loops
  in
  let first_parallel =
    let rec find i =
      if i >= n then None
      else if nest.loops.(i).Loop_nest.kind = Loop_nest.Parallel then Some i
      else find (i + 1)
    in
    find 0
  in
  let launches =
    match first_parallel with
    | None -> 0
    | Some p ->
        let acc = ref 1 in
        for d = 0 to p - 1 do
          acc := !acc * trips.(d)
        done;
        !acc
  in
  let parallel_factor =
    if par_iters <= 1 then 1.0
    else begin
      let workers = min machine.cores par_iters in
      let chunks = (par_iters + workers - 1) / workers in
      let imbalance =
        float_of_int par_iters /. float_of_int (chunks * workers)
      in
      Float.max 1.0
        (float_of_int workers *. imbalance *. machine.parallel_efficiency)
    end
  in
  let bw_scale =
    Float.min parallel_factor (machine.total_bw_gbs /. machine.single_core_bw_gbs)
  in
  let core_seconds = (compute_cycles +. cache_cycles) /. freq /. parallel_factor in
  let mem_seconds = mem_seconds_single /. Float.max 1.0 bw_scale in
  let launch_seconds =
    float_of_int launches *. machine.parallel_launch_cycles /. freq
  in
  (* --- im2col packing: one streamed copy pass over M*K elements --- *)
  let packing_seconds =
    if packing_elements = 0 then 0.0
    else
      let bytes = float_of_int (packing_elements * machine.elem_bytes) in
      Float.max
        (2.0 *. bytes /. (machine.single_core_bw_gbs *. 1e9))
        (float_of_int packing_elements *. 1.0 /. freq)
  in
  let seconds = core_seconds +. mem_seconds +. launch_seconds +. packing_seconds in
  {
    seconds;
    compute_cycles;
    traffic =
      [
        { level = "l1"; miss_lines = l1_lines; cycles = l1_cycles };
        { level = "l2"; miss_lines = l2_lines; cycles = l2_cycles };
        { level = "l3"; miss_lines = l3_lines; cycles = l3_cycles };
      ];
    parallel_factor;
    launches;
    packing_seconds;
    vectorized;
    vector_efficiency = vec_eff;
  }

let seconds ~machine ~iter_kinds ?packing_elements nest =
  (estimate ~machine ~iter_kinds ?packing_elements nest).seconds
