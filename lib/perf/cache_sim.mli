(** Trace-driven set-associative cache simulator.

    Used to validate the analytical model's locality analysis on small
    nests: the interpreter replays a nest's exact access stream through a
    multi-level LRU cache hierarchy, and tests check that the analytical
    miss counts track the simulated ones (same ordering across schedules,
    same order of magnitude). *)

type level_stats = {
  name : string;
  accesses : int;
  misses : int;
}

type t
(** A cache hierarchy (L1 -> L2 -> L3 -> memory). *)

val create : Machine.t -> t
(** Build the hierarchy from a machine description. All levels start
    cold. *)

val access : t -> buf:string -> index:int -> elem_bytes:int -> unit
(** Replay one element access (load or store — the simulator models a
    write-allocate cache, so both probe identically). Buffers live in
    disjoint address regions. *)

val stats : t -> level_stats list
(** Per-level access/miss counters, outermost (L1) first. *)

val simulate_nest :
  ?machine:Machine.t -> Loop_nest.t -> (string * level_stats list, string) result
(** Run a nest through the interpreter with random inputs and replay all
    accesses; returns the nest name with the final statistics. Intended
    for small nests (the whole iteration space executes). *)
