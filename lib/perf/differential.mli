(** Differential sanitizer wiring for schedule states.

    Bridges the generic {!Sanitizer} (which compares two loop nests) to
    {!Sched_state}: picks the reference nest (the original op's
    canonical lowering), shares one set of seeded inputs between the
    two sides, and handles the im2col case where the candidate GEMM
    consumes a packed column matrix built with {!Im2col.pack_input}
    from the reference's image input. *)

val sanitize_state : Sched_state.t -> Sanitizer.outcome option
(** Differentially execute the state's nest against its original op.
    [None] when there is nothing to check (no transformations applied
    yet) or the (original, transformed) digest pair was already
    sanitized this process ({!Sanitizer.fresh_pair}). Mismatches are
    counted in {!Sanitizer.stats} and logged to stderr; nothing is
    raised. The caller is responsible for consulting
    {!Sanitizer.enabled}. *)
